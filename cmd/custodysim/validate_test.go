package main

import (
	"strings"
	"testing"
)

// goodFlags is a valid baseline every case perturbs.
func goodFlags() cliFlags {
	return cliFlags{
		manager: "custody", scheduler: "delay", workload: "WordCount",
		nodes: 10, execs: 2, slots: 4, apps: 2, jobs: 5, shards: 1,
		arrival: 4, wait: 3, mcSeeds: 10, mcCmds: 40,
	}
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name   string
		set    map[string]bool
		mutate func(*cliFlags)
		want   string // "" means accept
	}{
		{name: "defaults-ok"},
		{
			name:   "unknown-manager",
			mutate: func(f *cliFlags) { f.manager = "mesos" },
			want:   `unknown -manager "mesos"`,
		},
		{
			name:   "unknown-scheduler",
			mutate: func(f *cliFlags) { f.scheduler = "fair" },
			want:   `unknown -scheduler "fair"`,
		},
		{
			name:   "unknown-workload",
			mutate: func(f *cliFlags) { f.workload = "TeraSort" },
			want:   `unknown -workload "TeraSort"`,
		},
		{
			name:   "zero-nodes",
			mutate: func(f *cliFlags) { f.nodes = 0 },
			want:   "-nodes must be at least 1",
		},
		{
			name:   "negative-arrival",
			mutate: func(f *cliFlags) { f.arrival = -1 },
			want:   "-arrival must be positive",
		},
		{
			name: "mc-flag-without-modelcheck",
			set:  map[string]bool{"mc-cmds": true},
			want: "-mc-cmds requires -modelcheck",
		},
		{
			name: "mc-server-without-modelcheck",
			set:  map[string]bool{"mc-server": true},
			mutate: func(f *cliFlags) {
				f.mcServer = true
			},
			want: "-mc-server requires -modelcheck",
		},
		{
			name:   "modelcheck-with-replay",
			mutate: func(f *cliFlags) { f.mcMode = true; f.mcReplay = "x.repro" },
			want:   "mutually exclusive",
		},
		{
			name:   "modelcheck-with-sim-flag",
			set:    map[string]bool{"trace": true},
			mutate: func(f *cliFlags) { f.mcMode = true },
			want:   "-trace applies to simulation runs",
		},
		{
			name:   "modelcheck-with-explicit-workload",
			set:    map[string]bool{"workload": true},
			mutate: func(f *cliFlags) { f.mcMode = true },
			want:   "-workload applies to simulation runs",
		},
		{
			name:   "modelcheck-server-ok",
			set:    map[string]bool{"modelcheck": true, "mc-server": true},
			mutate: func(f *cliFlags) { f.mcMode = true; f.mcServer = true },
		},
		{
			name:   "zero-shards",
			mutate: func(f *cliFlags) { f.shards = 0 },
			want:   "-shards must be at least 1",
		},
		{
			name:   "shards-ok",
			set:    map[string]bool{"shards": true},
			mutate: func(f *cliFlags) { f.shards = 8 },
		},
		{
			name:   "shards-on-non-custody",
			set:    map[string]bool{"shards": true},
			mutate: func(f *cliFlags) { f.shards = 8; f.manager = "yarn" },
			want:   "-shards applies to the custody manager",
		},
		{
			name:   "modelcheck-with-shards",
			set:    map[string]bool{"shards": true},
			mutate: func(f *cliFlags) { f.mcMode = true; f.shards = 4 },
			want:   "-shards applies to simulation runs",
		},
		{
			name:   "cache-ok",
			set:    map[string]bool{"cache-mb": true, "cache-policy": true},
			mutate: func(f *cliFlags) { f.cacheMB = 256; f.cachePolicy = "2q" },
		},
		{
			name:   "negative-cache-mb",
			set:    map[string]bool{"cache-mb": true},
			mutate: func(f *cliFlags) { f.cacheMB = -1 },
			want:   "-cache-mb must be non-negative",
		},
		{
			name:   "unknown-cache-policy",
			set:    map[string]bool{"cache-mb": true, "cache-policy": true},
			mutate: func(f *cliFlags) { f.cacheMB = 256; f.cachePolicy = "arc" },
			want:   `unknown -cache-policy "arc"`,
		},
		{
			name:   "cache-policy-without-cache-mb",
			set:    map[string]bool{"cache-policy": true},
			mutate: func(f *cliFlags) { f.cachePolicy = "2q" },
			want:   "-cache-policy requires -cache-mb",
		},
		{
			name:   "modelcheck-with-cache",
			set:    map[string]bool{"cache-mb": true},
			mutate: func(f *cliFlags) { f.mcMode = true; f.cacheMB = 256 },
			want:   "-cache-mb applies to simulation runs",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f := goodFlags()
			if c.mutate != nil {
				c.mutate(&f)
			}
			set := c.set
			if set == nil {
				set = map[string]bool{}
			}
			err := validateFlags(set, f)
			if c.want == "" {
				if err != nil {
					t.Fatalf("valid flags rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("validateFlags = %v, want error containing %q", err, c.want)
			}
		})
	}
}
