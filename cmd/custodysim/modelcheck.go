package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/modelcheck"
)

// runModelCheck is custodysim's long-run model-checking mode: sweep `seeds`
// xrand seeds, each driving `cmds` randomized commands through the
// allocation/driver state machine with the independent model watching. When
// server is set the commands drive the custodyd service harness instead —
// every step a committed op, with crash/recovery cycles in the alphabet. On
// the first violation it shrinks to a minimal reproducer, prints the report
// (commands, violations, decision-provenance chain), optionally writes a
// .repro file, and exits nonzero.
func runModelCheck(seeds, cmds int, out string, server bool) {
	check, shrink := modelcheck.Check, modelcheck.ShrinkResult
	if server {
		check, shrink = modelcheck.CheckServer, modelcheck.ShrinkServerResult
	}
	checked := 0
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		r := check(seed, cmds)
		checked++
		if !r.Failed() {
			continue
		}
		fmt.Printf("modelcheck: seed %d violated invariants; shrinking...\n", seed)
		min := shrink(r)
		if err := min.WriteReport(os.Stdout); err != nil {
			log.Printf("custodysim: %v", err)
		}
		if out != "" {
			repro := modelcheck.Repro{Seed: min.Seed, Commands: min.Commands}
			if err := modelcheck.WriteRepro(out, repro); err != nil {
				log.Printf("custodysim: %v", err)
				os.Exit(1)
			}
			fmt.Printf("modelcheck: minimal reproducer written to %s (replay with -mc-replay %s)\n", out, out)
		}
		os.Exit(1)
	}
	fmt.Printf("modelcheck: %d seeds x %d commands, no invariant violations\n", checked, cmds)
}

// runModelCheckReplay replays a serialized .repro file and reports whether
// the violation still reproduces (exit 1 if it does, 0 if it no longer
// fails — e.g. after a fix).
func runModelCheckReplay(path string) {
	repro, err := modelcheck.ReadRepro(path)
	if err != nil {
		log.Printf("custodysim: %v", err)
		os.Exit(1)
	}
	r := modelcheck.Run(repro.Seed, repro.Commands)
	if err := r.WriteReport(os.Stdout); err != nil {
		log.Printf("custodysim: %v", err)
	}
	if r.Failed() {
		fmt.Println("modelcheck: reproducer still fails")
		os.Exit(1)
	}
	fmt.Println("modelcheck: reproducer no longer fails")
}
