// Command custodysim runs one cluster simulation and prints its metrics.
//
// Example:
//
//	custodysim -nodes 100 -manager custody -workload Sort -jobs 30 -apps 4
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/custody"
	"repro/internal/metrics"
	"repro/internal/obsv"
)

func main() {
	log.SetFlags(0)
	var (
		nodes    = flag.Int("nodes", 100, "worker nodes in the cluster")
		execs    = flag.Int("executors", 2, "executors per node")
		slots    = flag.Int("slots", 4, "task slots per executor")
		mgr      = flag.String("manager", "custody", "cluster manager: custody | spark | yarn | offer")
		wl       = flag.String("workload", "WordCount", "workload: WordCount | Sort | PageRank")
		apps     = flag.Int("apps", 4, "number of applications")
		jobs     = flag.Int("jobs", 30, "jobs per application")
		arrival  = flag.Float64("arrival", 4.0, "mean job inter-arrival time (s)")
		wait     = flag.Float64("wait", 3.0, "delay-scheduling locality wait (s)")
		seed     = flag.Uint64("seed", 1, "random seed")
		shards   = flag.Int("shards", 1, "allocation-session build shards (custody manager only; plans are byte-identical at any value)")
		policy   = flag.String("policy", "custody", "allocation policy (custody manager only): custody | quincy | wfair | locmatch")
		spec     = flag.Bool("speculation", false, "enable speculative execution")
		cacheMB  = flag.Int64("cache-mb", 0, "per-node block-cache capacity in MB (0 disables the cache tier)")
		cachePol = flag.String("cache-policy", "lru", "block-cache eviction policy: lru | 2q")
		sched    = flag.String("scheduler", "delay", "task scheduler: delay | delay-taskset | fifo | locality-hard | quincy")
		traceOut = flag.String("trace", "", "write an execution-timeline CSV to this file")
		explain  = flag.String("explain", "", "print the decision chain behind every grant of one job, as app.job (e.g. 0.5)")
		obsvOut  = flag.String("obsv-out", "", "write decision-provenance artifacts to <prefix>.jsonl, <prefix>.csv, <prefix>.om")
		verbose  = flag.Bool("v", false, "print per-workload breakdown")
		mcMode   = flag.Bool("modelcheck", false, "run the model-based checker instead of a simulation")
		mcSeeds  = flag.Int("seeds", 100, "modelcheck: number of seeds to sweep")
		mcCmds   = flag.Int("mc-cmds", 40, "modelcheck: commands per seed")
		mcOut    = flag.String("mc-out", "", "modelcheck: write the minimal reproducer to this .repro file on violation")
		mcServer = flag.Bool("mc-server", false, "modelcheck: drive the custodyd service harness (op log, crash/recovery) instead of the bare driver")
		mcReplay = flag.String("mc-replay", "", "replay a serialized .repro file and exit")
	)
	flag.Parse()

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if err := validateFlags(set, cliFlags{
		manager: *mgr, scheduler: *sched, workload: *wl, policy: *policy,
		nodes: *nodes, execs: *execs, slots: *slots, apps: *apps, jobs: *jobs,
		shards: *shards, arrival: *arrival, wait: *wait,
		cacheMB: *cacheMB, cachePolicy: *cachePol,
		mcMode: *mcMode, mcServer: *mcServer, mcSeeds: *mcSeeds, mcCmds: *mcCmds,
		mcReplay: *mcReplay, mcOut: *mcOut,
	}); err != nil {
		log.Printf("custodysim: %v (run 'custodysim -h' for usage)", err)
		os.Exit(2)
	}

	if *mcReplay != "" {
		runModelCheckReplay(*mcReplay)
		return
	}
	if *mcMode {
		runModelCheck(*mcSeeds, *mcCmds, *mcOut, *mcServer)
		return
	}

	cfg := custody.Config{
		Nodes:            *nodes,
		ExecutorsPerNode: *execs,
		SlotsPerExecutor: *slots,
		Seed:             *seed,
		Manager:          custody.ManagerName(*mgr),
		Shards:           *shards,
		Policy:           *policy,
		Scheduler:        *sched,
		LocalityWaitSec:  *wait,
		Speculation:      *spec,
		Trace:            *traceOut != "",
		CacheMB:          *cacheMB,
		CachePolicy:      *cachePol,
	}
	w := custody.Workload{
		Kind:             *wl,
		Apps:             *apps,
		JobsPerApp:       *jobs,
		MeanInterarrival: *arrival,
		Seed:             *seed,
	}

	// Decision provenance: a hub records every Algorithm 1 pick and grant;
	// -obsv-out additionally streams them into JSONL/CSV sinks and writes an
	// OpenMetrics exposition when the run finishes.
	var hub *custody.Observability
	var omCol *metrics.Collector // bound after the run, read at sink close
	if *explain != "" || *obsvOut != "" {
		hub = custody.NewObservability(0)
		cfg.Obsv = hub
	}
	if *obsvOut != "" {
		for _, ext := range []string{".jsonl", ".csv", ".om"} {
			f, err := os.Create(*obsvOut + ext)
			if err != nil {
				log.Printf("custodysim: %v", err)
				os.Exit(1)
			}
			switch ext {
			case ".jsonl":
				hub.AddSink(obsv.NewJSONLSink(f))
			case ".csv":
				hub.AddSink(obsv.NewCSVSink(f))
			case ".om":
				hub.AddSink(&obsv.OpenMetricsSink{
					W:         f,
					Flight:    hub.Flight,
					Collector: func() *metrics.Collector { return omCol },
				})
			}
		}
	}

	res, err := custody.Run(cfg, w)
	if err != nil {
		log.Printf("custodysim: %v", err)
		os.Exit(1)
	}
	if hub != nil {
		omCol = res.Collector
		if err := hub.Close(); err != nil {
			log.Printf("custodysim: provenance sink: %v", err)
			os.Exit(1)
		}
	}
	col := res.Collector
	fmt.Printf("manager=%s workload=%s nodes=%d apps=%d jobs=%d seed=%d\n",
		*mgr, *wl, *nodes, *apps, res.Jobs(), *seed)
	fmt.Printf("  locality (per job):   %s\n", metrics.Summarize(col.LocalityPerJob()))
	fmt.Printf("  job completion (s):   %s\n", metrics.Summarize(col.JobCompletionTimes()))
	fmt.Printf("  input stage (s):      %s\n", metrics.Summarize(col.InputStageTimes()))
	fmt.Printf("  scheduler delay (s):  %s\n", metrics.Summarize(col.SchedulerDelays()))
	fmt.Printf("  perfectly local jobs: %.3f   min-app locality: %.3f   Jain fairness: %.3f\n",
		col.PctLocalJobs(), col.MinAppLocality(), col.JainFairness())
	fmt.Printf("  reallocations=%d migrations=%d offer-rejections=%d\n",
		col.Reallocations, col.ExecutorMigrations, col.OfferRejections)
	if *verbose {
		perApp := col.PerApp()
		names := make([]int, 0, len(perApp))
		for name := range perApp {
			names = append(names, name)
		}
		sort.Ints(names)
		for _, name := range names {
			c := perApp[name]
			fmt.Printf("  app %d: localJobs=%.3f jct=%.2fs\n", name,
				c.PctLocalJobs(), metrics.Summarize(c.JobCompletionTimes()).Mean)
		}
	}
	if *traceOut != "" && res.Trace != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Printf("custodysim: %v", err)
			os.Exit(1)
		}
		err = res.Trace.WriteCSV(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Printf("custodysim: %v", err)
			os.Exit(1)
		}
		fmt.Printf("  trace: %d events → %s (utilization %.3f)\n",
			len(res.Trace.Events), *traceOut,
			res.Trace.Utilization(cfg.TotalSlots()))
	}
	if *obsvOut != "" {
		d, g := hub.Flight.Dropped()
		fmt.Printf("  provenance: %s.{jsonl,csv,om} (%d rounds, dropped %d decisions / %d grants)\n",
			*obsvOut, hub.Flight.Rounds(), d, g)
	}
	if *explain != "" {
		appStr, jobStr, ok := strings.Cut(*explain, ".")
		if !ok {
			log.Printf("custodysim: -explain wants app.job (e.g. 0.5), got %q", *explain)
			os.Exit(1)
		}
		appID, err1 := strconv.Atoi(appStr)
		jobID, err2 := strconv.Atoi(jobStr)
		if err1 != nil || err2 != nil {
			log.Printf("custodysim: -explain wants app.job (e.g. 0.5), got %q", *explain)
			os.Exit(1)
		}
		if err := hub.Flight.Explain(os.Stdout, appID, jobID); err != nil {
			log.Printf("custodysim: %v", err)
			os.Exit(1)
		}
	}
}
