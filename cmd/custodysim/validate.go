package main

import (
	"fmt"
	"strings"

	"repro/internal/policy"
	"repro/internal/workload"
)

// The closed name sets the CLI accepts. Unknown names used to fall through
// to silent defaults (custody.Config defaults an unrecognized manager to
// custody); now they are rejected up front with a one-line error.
var (
	validManagers   = []string{"custody", "spark", "yarn", "offer"}
	validSchedulers = []string{"delay", "delay-taskset", "fifo", "locality-hard", "quincy"}
	validPolicies   = policy.Names()
)

// cliFlags carries the parsed flag values through validation.
type cliFlags struct {
	manager, scheduler, workload string
	policy                       string
	nodes, execs, slots          int
	apps, jobs, shards           int
	arrival, wait                float64
	cacheMB                      int64
	cachePolicy                  string
	mcMode, mcServer             bool
	mcSeeds, mcCmds              int
	mcReplay, mcOut              string
}

func oneOf(val string, valid []string) bool {
	for _, v := range valid {
		if val == v {
			return true
		}
	}
	return false
}

// validateFlags rejects unknown names and contradictory combinations. set
// holds the flags explicitly provided on the command line (via flag.Visit),
// so defaults never trip the contradiction checks.
func validateFlags(set map[string]bool, f cliFlags) error {
	if !oneOf(f.manager, validManagers) {
		return fmt.Errorf("unknown -manager %q (valid: %s)", f.manager, strings.Join(validManagers, " | "))
	}
	if !oneOf(f.scheduler, validSchedulers) {
		return fmt.Errorf("unknown -scheduler %q (valid: %s)", f.scheduler, strings.Join(validSchedulers, " | "))
	}
	kinds := make([]string, 0, len(workload.Kinds()))
	for _, k := range workload.Kinds() {
		kinds = append(kinds, string(k))
	}
	if !oneOf(f.workload, kinds) {
		return fmt.Errorf("unknown -workload %q (valid: %s)", f.workload, strings.Join(kinds, " | "))
	}
	for _, c := range []struct {
		name string
		val  int
	}{
		{"nodes", f.nodes}, {"executors", f.execs}, {"slots", f.slots},
		{"apps", f.apps}, {"jobs", f.jobs}, {"shards", f.shards},
		{"seeds", f.mcSeeds}, {"mc-cmds", f.mcCmds},
	} {
		if c.val < 1 {
			return fmt.Errorf("-%s must be at least 1, got %d", c.name, c.val)
		}
	}
	if set["shards"] && f.shards > 1 && f.manager != "custody" {
		return fmt.Errorf("-shards applies to the custody manager, not -manager %s", f.manager)
	}
	if f.policy != "" && !oneOf(f.policy, validPolicies) {
		return fmt.Errorf("unknown -policy %q (valid: %s)", f.policy, strings.Join(validPolicies, " | "))
	}
	if set["policy"] && f.policy != policy.Custody && f.manager != "custody" {
		return fmt.Errorf("-policy applies to the custody manager, not -manager %s", f.manager)
	}
	if f.arrival <= 0 {
		return fmt.Errorf("-arrival must be positive, got %g", f.arrival)
	}
	if f.cacheMB < 0 {
		return fmt.Errorf("-cache-mb must be non-negative, got %d", f.cacheMB)
	}
	if !oneOf(f.cachePolicy, []string{"", "lru", "2q"}) {
		return fmt.Errorf("unknown -cache-policy %q (valid: lru | 2q)", f.cachePolicy)
	}
	if set["cache-policy"] && !set["cache-mb"] {
		return fmt.Errorf("-cache-policy requires -cache-mb (the cache tier is disabled by default)")
	}
	if f.wait < 0 {
		return fmt.Errorf("-wait must be non-negative, got %g", f.wait)
	}
	if f.mcMode && f.mcReplay != "" {
		return fmt.Errorf("-modelcheck and -mc-replay are mutually exclusive (the replay file fixes its own commands)")
	}
	if !f.mcMode {
		for _, name := range []string{"seeds", "mc-cmds", "mc-out", "mc-server"} {
			if set[name] {
				return fmt.Errorf("-%s requires -modelcheck", name)
			}
		}
	} else {
		for _, name := range []string{"trace", "explain", "obsv-out", "speculation", "workload", "manager", "scheduler", "shards", "policy", "cache-mb", "cache-policy"} {
			if set[name] {
				return fmt.Errorf("-%s applies to simulation runs and contradicts -modelcheck", name)
			}
		}
	}
	return nil
}
