// Command custodylint runs the project's static-analysis suite over the
// module: determinism (detrand, maporder), layering, and error-handling
// (errdrop) contracts. See internal/analysis for the rules and DESIGN.md
// ("Invariants & static analysis") for the rationale.
//
// Usage:
//
//	custodylint [flags] [packages]
//
// The package patterns are accepted for familiarity (`./...`) but the whole
// module is always analyzed; the tool walks the module tree itself so it
// works without go/packages or any external dependency. Exits 0 when clean,
// 1 on findings, 2 on usage or load errors.
//
// Flags:
//
//	-root dir      module root to analyze (default: walk up from cwd to go.mod)
//	-modpath path  module path override (for trees without a go.mod, e.g. fixtures)
//	-rules         print the rule set and exit
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	root := flag.String("root", "", "module root to analyze (default: nearest go.mod above cwd)")
	modpath := flag.String("modpath", "", "module path override (for fixture trees without a go.mod)")
	rules := flag.Bool("rules", false, "print the rule set and exit")
	flag.Parse()

	if *rules {
		for _, a := range analysis.All() {
			fmt.Printf("%-10s %s\n", a.Name(), a.Doc())
		}
		return
	}

	if *root == "" {
		cwd, err := os.Getwd()
		if err != nil {
			fatal(err)
		}
		r, err := analysis.FindModuleRoot(cwd)
		if err != nil {
			fatal(err)
		}
		*root = r
	}

	var m *analysis.Module
	var err error
	if *modpath != "" {
		m, err = analysis.Load(*root, *modpath)
	} else {
		m, err = analysis.LoadModule(*root)
	}
	if err != nil {
		fatal(err)
	}

	diags := analysis.Run(m, analysis.All())
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "custodylint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "custodylint:", err)
	os.Exit(2)
}
