// Command custodylint runs the project's static-analysis suite over the
// module: determinism (detrand, maporder), layering, error-handling
// (errdrop), concurrency-safety (guardedby, lockorder, goroutine,
// atomicmix), and hot-path allocation (noalloc) contracts. See
// internal/analysis for the rules and DESIGN.md ("Invariants & static
// analysis") for the rationale.
//
// Usage:
//
//	custodylint [flags] [packages]
//
// The package patterns are accepted for familiarity (`./...`) but the whole
// module is always analyzed; the tool walks the module tree itself so it
// works without go/packages or any external dependency. Exits 0 when clean,
// 1 on findings, 2 on usage or load errors.
//
// Flags:
//
//	-root dir      module root to analyze (default: walk up from cwd to go.mod)
//	-modpath path  module path override (for trees without a go.mod, e.g. fixtures)
//	-rules         print the rule set and exit
//	-rule names    run only the named rules (comma-separated, e.g. -rule noalloc,lockorder)
//	-json          emit findings as a JSON array on stdout (CI artifact format)
//	-lockreport    print the mutex acquisition graph and blessed order, then exit
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

// jsonFinding is the CI artifact schema for one diagnostic.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func main() {
	root := flag.String("root", "", "module root to analyze (default: nearest go.mod above cwd)")
	modpath := flag.String("modpath", "", "module path override (for fixture trees without a go.mod)")
	rules := flag.Bool("rules", false, "print the rule set and exit")
	ruleFilter := flag.String("rule", "", "run only the named rules (comma-separated)")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	lockReport := flag.Bool("lockreport", false, "print the mutex acquisition graph and blessed order, then exit")
	flag.Parse()

	if *rules {
		for _, a := range analysis.All() {
			fmt.Printf("%-10s %s\n", a.Name(), a.Doc())
		}
		return
	}

	analyzers := analysis.All()
	if *ruleFilter != "" {
		byName := map[string]analysis.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name()] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*ruleFilter, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fatal(fmt.Errorf("unknown rule %q (see -rules for the set)", name))
			}
			analyzers = append(analyzers, a)
		}
	}

	if *root == "" {
		cwd, err := os.Getwd()
		if err != nil {
			fatal(err)
		}
		r, err := analysis.FindModuleRoot(cwd)
		if err != nil {
			fatal(err)
		}
		*root = r
	}

	var m *analysis.Module
	var err error
	if *modpath != "" {
		m, err = analysis.Load(*root, *modpath)
	} else {
		m, err = analysis.LoadModule(*root)
	}
	if err != nil {
		fatal(err)
	}

	if *lockReport {
		fmt.Print(analysis.LockOrderReport(m))
		return
	}

	diags := analysis.Run(m, analyzers)
	if *asJSON {
		findings := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, jsonFinding{
				File: d.Pos.Filename, Line: d.Pos.Line, Rule: d.Rule, Message: d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "custodylint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "custodylint:", err)
	os.Exit(2)
}
