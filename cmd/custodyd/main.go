// Command custodyd is the long-running allocation service: a warm
// manager.Custody session and driver round machinery behind a versioned
// JSON-over-HTTP API, with admission control, a degraded-mode ladder, and
// checkpoint/replay crash recovery (see DESIGN.md §13).
//
// Example session:
//
//	custodyd -dir /tmp/custodyd -addr 127.0.0.1:7654 &
//	curl -s -XPOST localhost:7654/v1/register-app -d '{"name":"etl"}'
//	curl -s -XPOST localhost:7654/v1/submit-job -d '{"tenant":0,"workload":"Sort","file":1}'
//	curl -s localhost:7654/v1/status
//	curl -s localhost:7654/metrics
//
// SIGTERM/SIGINT drain gracefully: in-flight rounds complete, queued
// submissions run, provenance sinks flush, and a final checkpoint lands.
// kill -9 loses nothing durable: the next boot replays the intent log and
// verifies it against the last checkpoint digest.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/custodyd"
)

func main() {
	log.SetFlags(0)
	var (
		addr     = flag.String("addr", "127.0.0.1:7654", "HTTP listen address (use :0 for an ephemeral port; the bound address is written to <dir>/addr)")
		dir      = flag.String("dir", "custodyd-state", "state directory: intent log, checkpoint, metrics exposition, obsv sinks")
		seed     = flag.Uint64("seed", 1, "random seed for the simulated cluster")
		nodes    = flag.Int("nodes", 16, "worker nodes in the simulated cluster")
		tenants  = flag.Int("tenants", 8, "tenant slot pool size (max concurrent applications)")
		queueCap = flag.Int("queue-cap", 16, "per-tenant submission queue bound (shed with 429 beyond it)")
		roundMS  = flag.Int("round-ms", 100, "round pacing in milliseconds")
		budgetMS = flag.Int("round-budget-ms", 50, "per-round wall-clock budget; two consecutive overruns trip degraded mode")
		ckptN    = flag.Int("checkpoint-every", 8, "rounds between checkpoints")
		jsonl    = flag.Bool("obsv-jsonl", false, "stream decision provenance to <dir>/obsv.jsonl")
		csv      = flag.Bool("obsv-csv", false, "stream decision provenance to <dir>/obsv.csv")
		hbMS     = flag.Int("heartbeat-timeout-ms", 10000, "revoke an executor whose tenant stops reporting it for this long (0 disables the reaper)")
		cacheMB  = flag.Int64("cache-mb", 0, "per-node block-cache capacity in MB (0 disables the cache tier; caches are rebuilt cold on recovery)")
		cachePol = flag.String("cache-policy", "lru", "block-cache eviction policy: lru | 2q")
		pol      = flag.String("policy", "custody", "allocation policy: custody | quincy | wfair | locmatch (must match across restarts for replay)")
	)
	flag.Parse()

	if err := run(*addr, *dir, *seed, *nodes, *tenants, *queueCap, *roundMS, *budgetMS, *ckptN, *hbMS, *cacheMB, *cachePol, *pol, *jsonl, *csv); err != nil {
		log.Printf("custodyd: %v", err)
		os.Exit(1)
	}
}

// run boots the server, serves the API until SIGTERM/SIGINT, then drains.
// The wall clock and round ticker are injected here, at the binary edge —
// everything under internal/ stays clock-free and deterministic.
func run(addr, dir string, seed uint64, nodes, tenants, queueCap, roundMS, budgetMS, ckptN, hbMS int, cacheMB int64, cachePol, pol string, jsonl, csv bool) error {
	if nodes < 1 || tenants < 1 || queueCap < 1 || roundMS < 1 || budgetMS < 1 || ckptN < 1 {
		return fmt.Errorf("-nodes, -tenants, -queue-cap, -round-ms, -round-budget-ms, and -checkpoint-every must all be at least 1 (run 'custodyd -h' for usage)")
	}
	if hbMS < 0 {
		return fmt.Errorf("-heartbeat-timeout-ms must not be negative (0 disables the reaper)")
	}
	if cacheMB < 0 {
		return fmt.Errorf("-cache-mb must not be negative (0 disables the cache tier)")
	}
	scfg := custodyd.DefaultConfig()
	scfg.Seed = seed
	scfg.Nodes = nodes
	scfg.MaxTenants = tenants
	scfg.CacheMB = cacheMB
	scfg.CachePolicy = cachePol
	scfg.Policy = pol

	ticker := time.NewTicker(time.Duration(roundMS) * time.Millisecond)
	defer ticker.Stop()
	srv, err := custodyd.NewServer(custodyd.ServerConfig{
		Service:          scfg,
		Dir:              dir,
		QueueCap:         queueCap,
		BatchSize:        8,
		CheckpointEvery:  ckptN,
		RoundBudget:      time.Duration(budgetMS) * time.Millisecond,
		RoundInterval:    time.Duration(roundMS) * time.Millisecond,
		HeartbeatTimeout: time.Duration(hbMS) * time.Millisecond,
		Clock:            time.Now,
		Tick:             ticker.C,
		LogJSONL:         jsonl,
		LogCSV:           csv,
	})
	if err != nil {
		return err
	}
	boot := srv.Boot()
	if boot.Recovered {
		log.Printf("custodyd: recovered %d ops from the intent log (checkpoint seq %d, verified=%v)",
			boot.ReplayedOps, boot.CheckpointSeq, boot.CheckpointVerified)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// Publish the bound address (meaningful with -addr :0) so scripts and
	// CI can find an ephemeral port.
	if err := os.WriteFile(filepath.Join(dir, "addr"), []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
		return err
	}
	log.Printf("custodyd: serving on http://%s (state in %s)", ln.Addr(), dir)

	srv.Start()
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		log.Printf("custodyd: %v: draining", s)
	case err := <-serveErr:
		return fmt.Errorf("http server: %w", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("custodyd: http shutdown: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("custodyd: drained; final checkpoint and metrics in %s", dir)
	return nil
}
