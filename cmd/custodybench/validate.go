package main

import (
	"fmt"
	"sort"
	"strings"
)

// sweepFigs are the -fig values that run the full figure sweep; only they
// accept -repeats, -md, and -bars.
var sweepFigs = map[string]bool{"7": true, "8": true, "9": true, "10": true, "all": true}

// ablationFigs are the single-study -fig values.
var ablationFigs = map[string]bool{
	"approx": true, "intra": true, "scarlett": true, "offer": true,
	"wait": true, "spec": true, "managers": true, "schedulers": true,
	"failures": true, "selectors": true, "hetero": true, "hints": true,
	"chaos": true, "cache": true, "tournament": true,
}

func validFigNames() string {
	names := make([]string, 0, len(sweepFigs)+len(ablationFigs))
	for f := range sweepFigs {
		names = append(names, f)
	}
	for f := range ablationFigs {
		names = append(names, f)
	}
	sort.Strings(names)
	return strings.Join(names, " | ")
}

// validateFlags rejects unknown -fig names and contradictory flag
// combinations up front, before any experiment starts. set holds the flags
// explicitly provided on the command line, so defaults never trip the
// contradiction checks.
func validateFlags(set map[string]bool, fig string, repeats, shards int, emitJSON, baseline, pprofDir string) error {
	if !sweepFigs[fig] && !ablationFigs[fig] {
		return fmt.Errorf("unknown -fig %q (valid: %s)", fig, validFigNames())
	}
	if repeats < 1 {
		return fmt.Errorf("-repeats must be at least 1, got %d", repeats)
	}
	if shards < 1 {
		return fmt.Errorf("-shards must be at least 1, got %d", shards)
	}
	if emitJSON == "" {
		if baseline != "" {
			return fmt.Errorf("-baseline requires -emit-json")
		}
		if pprofDir != "" {
			return fmt.Errorf("-pprof requires -emit-json")
		}
	} else {
		for _, name := range []string{"fig", "repeats", "shards", "md", "bars"} {
			if set[name] {
				return fmt.Errorf("-%s applies to figure runs and contradicts -emit-json (the regression harness fixes its own cases)", name)
			}
		}
	}
	if !sweepFigs[fig] {
		for _, name := range []string{"repeats", "shards", "md", "bars"} {
			if set[name] {
				return fmt.Errorf("-%s applies only to the figure sweep (-fig 7 | 8 | 9 | 10 | all), not -fig %s", name, fig)
			}
		}
	}
	return nil
}
