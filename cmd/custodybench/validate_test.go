package main

import (
	"strings"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name     string
		set      map[string]bool
		fig      string
		repeats  int
		shards   int
		emitJSON string
		baseline string
		pprofDir string
		want     string // "" means accept
	}{
		{name: "sweep-default", fig: "all", repeats: 1},
		{name: "single-figure", fig: "7", repeats: 1},
		{name: "ablation", fig: "chaos", repeats: 1},
		{
			name: "unknown-fig", fig: "11", repeats: 1,
			want: `unknown -fig "11"`,
		},
		{
			name: "zero-repeats", fig: "all", repeats: 0,
			want: "-repeats must be at least 1",
		},
		{
			name: "baseline-without-emit", fig: "all", repeats: 1, baseline: "BENCH.json",
			want: "-baseline requires -emit-json",
		},
		{
			name: "pprof-without-emit", fig: "all", repeats: 1, pprofDir: "/tmp/prof",
			want: "-pprof requires -emit-json",
		},
		{
			name: "emit-with-explicit-fig", fig: "7", repeats: 1, emitJSON: "out.json",
			set:  map[string]bool{"fig": true},
			want: "-fig applies to figure runs and contradicts -emit-json",
		},
		{
			name: "emit-with-bars", fig: "all", repeats: 1, emitJSON: "out.json",
			set:  map[string]bool{"bars": true},
			want: "-bars applies to figure runs and contradicts -emit-json",
		},
		{name: "emit-plain", fig: "all", repeats: 1, emitJSON: "out.json"},
		{
			name: "repeats-on-ablation", fig: "approx", repeats: 3,
			set:  map[string]bool{"repeats": true},
			want: "-repeats applies only to the figure sweep",
		},
		{
			name: "md-on-ablation", fig: "hints", repeats: 1,
			set:  map[string]bool{"md": true},
			want: "-md applies only to the figure sweep",
		},
		{
			name: "repeats-on-sweep-ok", fig: "8", repeats: 3,
			set: map[string]bool{"repeats": true},
		},
		{
			name: "zero-shards", fig: "all", repeats: 1, shards: -4,
			want: "-shards must be at least 1",
		},
		{
			name: "shards-on-sweep-ok", fig: "7", repeats: 1, shards: 4,
			set: map[string]bool{"shards": true},
		},
		{
			name: "shards-on-ablation", fig: "chaos", repeats: 1, shards: 4,
			set:  map[string]bool{"shards": true},
			want: "-shards applies only to the figure sweep",
		},
		{
			name: "shards-with-emit", fig: "all", repeats: 1, shards: 4, emitJSON: "out.json",
			set:  map[string]bool{"shards": true},
			want: "-shards applies to figure runs and contradicts -emit-json",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			set := c.set
			if set == nil {
				set = map[string]bool{}
			}
			if c.shards == 0 {
				c.shards = 1
			}
			err := validateFlags(set, c.fig, c.repeats, c.shards, c.emitJSON, c.baseline, c.pprofDir)
			if c.want == "" {
				if err != nil {
					t.Fatalf("valid flags rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("validateFlags = %v, want error containing %q", err, c.want)
			}
		})
	}
}
