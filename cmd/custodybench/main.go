// Command custodybench regenerates the paper's tables and figures
// (Figures 7–10 of the evaluation) and the ablation studies listed in
// DESIGN.md.
//
// Examples:
//
//	custodybench -fig all            # the full §VI evaluation grid
//	custodybench -fig 7 -quick       # fast, shrunken workload
//	custodybench -fig approx         # ablation A1 (2-approx vs optimal)
//
// It is also the entry point of the benchmark-regression harness
// (internal/benchreg):
//
//	custodybench -quick -emit-json BENCH_PR3.json           # bless a baseline
//	custodybench -quick -emit-json /tmp/b.json -baseline BENCH_PR3.json  # gate
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/benchreg"
	"repro/internal/experiments"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	var (
		fig      = flag.String("fig", "all", "what to reproduce: 7 | 8 | 9 | 10 | all | approx | intra | scarlett | offer | wait | spec | managers | schedulers | failures | selectors | hetero | hints | chaos | cache")
		quick    = flag.Bool("quick", false, "shrink the workload (6 jobs/app) for fast runs")
		seed     = flag.Uint64("seed", 1, "random seed")
		repeats  = flag.Int("repeats", 1, "pool results over this many seeds (figures 7-10 only)")
		shards   = flag.Int("shards", 1, "allocation-session build shards for the Custody manager (figures 7-10 only; plans are byte-identical at any value)")
		bars     = flag.Bool("bars", false, "render figures as ASCII bar charts")
		mdOut    = flag.String("md", "", "also write a Markdown report of the figure sweep to this file")
		emitJSON = flag.String("emit-json", "", "run the benchmark-regression harness and write BENCH_*.json to this path (skips -fig)")
		baseline = flag.String("baseline", "", "with -emit-json: compare the fresh run against this committed baseline and exit nonzero on >15% regression")
		pprofDir = flag.String("pprof", "", "with -emit-json: write per-case CPU and heap profiles (<case>.cpu.pprof, <case>.heap.pprof) into this directory")
	)
	flag.Parse()

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if err := validateFlags(set, *fig, *repeats, *shards, *emitJSON, *baseline, *pprofDir); err != nil {
		log.Printf("custodybench: %v (run 'custodybench -h' for usage)", err)
		os.Exit(2)
	}

	if *emitJSON != "" {
		runBenchHarness(*emitJSON, *baseline, *pprofDir, *quick, *seed)
		return
	}

	opts := experiments.DefaultOptions()
	opts.Seed = *seed
	opts.Quick = *quick
	opts.Repeats = *repeats
	opts.Shards = *shards

	needSweep := map[string]bool{"7": true, "8": true, "9": true, "10": true, "all": true}
	if needSweep[*fig] {
		sw, err := experiments.RunSweep(experiments.PaperSizes, workload.Kinds(),
			[]experiments.ManagerKind{experiments.Standalone, experiments.Custody}, opts)
		if err != nil {
			fail(err)
		}
		if *mdOut != "" {
			f, ferr := os.Create(*mdOut)
			if ferr != nil {
				fail(ferr)
			}
			werr := experiments.WriteMarkdownReport(f, sw)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				fail(werr)
			}
			fmt.Printf("markdown report written to %s\n", *mdOut)
		}
		render := func(t experiments.Table) string {
			if *bars {
				return t.RenderBars()
			}
			return t.Render()
		}
		switch *fig {
		case "7":
			fmt.Println(render(sw.Fig7()))
		case "8":
			fmt.Println(render(sw.Fig8()))
		case "9":
			fmt.Println(render(sw.Fig9()))
		case "10":
			fmt.Println(render(sw.Fig10()))
		default:
			fmt.Println(render(sw.Fig7()))
			fmt.Println(render(sw.Fig8()))
			fmt.Println(render(sw.Fig9()))
			fmt.Println(render(sw.Fig10()))
			fmt.Printf("headline: avg locality gain %.2f%% (paper: +36.9%%), avg JCT gain %.2f%% (paper: −4.9%% JCT)\n",
				sw.Fig7().AverageGain(), sw.Fig8().AverageGain())
		}
		return
	}

	switch *fig {
	case "approx":
		n := 200
		if *quick {
			n = 40
		}
		fmt.Println(experiments.RunApprox(n, *seed).Render())
	case "intra":
		res, err := experiments.RunIntra(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Render())
	case "scarlett":
		res, err := experiments.RunScarlett(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Render())
	case "offer":
		res, err := experiments.RunOffer(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Render())
	case "wait":
		res, err := experiments.RunWait(opts, nil)
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Render())
	case "spec":
		res, err := experiments.RunSpeculation(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Render())
	case "managers":
		res, err := experiments.RunManagers(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Render())
	case "schedulers":
		res, err := experiments.RunSchedulers(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Render())
	case "failures":
		res, err := experiments.RunFailures(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Render())
	case "selectors":
		res, err := experiments.RunSelectors(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Render())
	case "hetero":
		res, err := experiments.RunHetero(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Render())
	case "hints":
		res, err := experiments.RunHints(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Render())
	case "chaos":
		res, err := experiments.RunChaos(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Render())
	case "cache":
		res, err := experiments.RunCache(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Render())
	case "tournament":
		res, err := experiments.RunTournament(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Render())
	default:
		fail(fmt.Errorf("unknown -fig %q", *fig))
	}
}

// benchTolerance is the regression gate's band: a case failing its baseline
// by more than this fraction (in normalized time or allocs/op) fails CI.
const benchTolerance = 0.15

// runBenchHarness runs the internal/benchreg cases, writes the JSON report,
// and optionally enforces the regression gate against a committed baseline.
// A non-empty profDir additionally captures per-case pprof profiles.
func runBenchHarness(outPath, basePath, profDir string, quick bool, seed uint64) {
	rep, err := benchreg.RunProfiled(quick, seed, profDir)
	if err != nil {
		fail(err)
	}
	if err := benchreg.WriteFile(outPath, rep); err != nil {
		fail(err)
	}
	fmt.Printf("benchmark report written to %s (mode=%s, speedup_1000=%.1fx)\n", outPath, rep.Mode, rep.Speedup1000)
	if profDir != "" {
		fmt.Printf("pprof profiles written to %s/ (one .cpu.pprof and .heap.pprof per case)\n", profDir)
	}
	for _, c := range rep.Cases {
		fmt.Printf("  %-24s %12.0f ns/op  %8d allocs/op  %9d peak-heap-B  (norm %.3f)\n",
			c.Name, c.NsPerOp, c.AllocsPerOp, c.PeakLiveHeapBytes, c.NsNorm)
	}
	if basePath == "" {
		return
	}
	base, err := benchreg.ReadFile(basePath)
	if err != nil {
		fail(err)
	}
	violations := benchreg.Compare(rep, base, benchTolerance)
	if len(violations) == 0 {
		fmt.Printf("regression gate: PASS against %s (tolerance %.0f%%)\n", basePath, benchTolerance*100)
		return
	}
	for _, v := range violations {
		log.Printf("custodybench: regression: %s", v)
	}
	os.Exit(1)
}

func fail(err error) {
	log.Printf("custodybench: %v", err)
	os.Exit(1)
}
