// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation (§VI, Figures 7–10) plus the DESIGN.md ablations, one
// benchmark per artifact. Benchmarks run a shrunken-but-structurally-
// identical grid so `go test -bench=.` completes in minutes; the
// full-scale harness is `go run ./cmd/custodybench -fig all` (or
// `go test ./internal/experiments -run TestPaperSweepShapes`).
package repro

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/workload"
)

// benchOpts is the shrunken grid configuration used by the figure benches.
func benchOpts() experiments.Options {
	o := experiments.DefaultOptions()
	o.Quick = true // 6 jobs per app instead of 30
	return o
}

// benchSweep runs a one-size paper grid (all three workloads, both
// managers).
func benchSweep(b *testing.B, size int) *experiments.Sweep {
	b.Helper()
	sw, err := experiments.RunSweep([]int{size}, workload.Kinds(),
		[]experiments.ManagerKind{experiments.Standalone, experiments.Custody}, benchOpts())
	if err != nil {
		b.Fatal(err)
	}
	return sw
}

// BenchmarkFig7Locality regenerates Fig. 7: percentage of local input tasks
// per job, Custody vs Spark standalone.
func BenchmarkFig7Locality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sw := benchSweep(b, 25)
		tbl := sw.Fig7()
		if len(tbl.Rows) != 3 {
			b.Fatalf("Fig7 rows = %d", len(tbl.Rows))
		}
	}
}

// BenchmarkFig8JCT regenerates Fig. 8: average job completion times.
func BenchmarkFig8JCT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sw := benchSweep(b, 50)
		tbl := sw.Fig8()
		if len(tbl.Rows) != 3 {
			b.Fatalf("Fig8 rows = %d", len(tbl.Rows))
		}
	}
}

// BenchmarkFig9InputStage regenerates Fig. 9: input (map) stage completion
// times on the largest cluster.
func BenchmarkFig9InputStage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sw := benchSweep(b, 100)
		tbl := sw.Fig9()
		if len(tbl.Rows) != 3 {
			b.Fatalf("Fig9 rows = %d", len(tbl.Rows))
		}
	}
}

// BenchmarkFig10SchedulerDelay regenerates Fig. 10: per-task scheduler
// delay.
func BenchmarkFig10SchedulerDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sw := benchSweep(b, 100)
		tbl := sw.Fig10()
		if len(tbl.Rows) != 3 {
			b.Fatalf("Fig10 rows = %d", len(tbl.Rows))
		}
	}
}

// BenchmarkAblationApprox regenerates ablation A1: Algorithm 2's greedy vs
// the exact optimum and the §III fractional bound.
func BenchmarkAblationApprox(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunApprox(40, 1)
		if res.MinRatio < 0.5 {
			b.Fatalf("2-approximation bound violated: %v", res.MinRatio)
		}
	}
}

// BenchmarkAblationIntra regenerates ablation A2: priority vs fairness
// intra-application strategy under scarce budgets (Fig. 4–5 at scale).
func BenchmarkAblationIntra(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := benchOpts()
		res, err := experiments.RunIntra(opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 2 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
}

// BenchmarkAblationScarlett regenerates ablation A3: popularity-based
// replication (Scarlett, §VII) under skewed access patterns.
func BenchmarkAblationScarlett(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunScarlett(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 4 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
}

// BenchmarkAblationOffer regenerates ablation A4: Mesos-like offer-based
// sharing vs Custody (§II-A).
func BenchmarkAblationOffer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunOffer(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 3 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
}

// BenchmarkAblationDelayWait regenerates ablation A5: the delay-scheduling
// locality-wait sweep.
func BenchmarkAblationDelayWait(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunWait(benchOpts(), []float64{0, 3})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 4 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
}

// BenchmarkAblationSpeculation regenerates ablation A6: speculative
// execution under high compute variance.
func BenchmarkAblationSpeculation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSpeculation(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 2 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
}

// BenchmarkAblationManagers regenerates ablation A7: the four
// cluster-manager families side by side (locality, JCT, utilization).
func BenchmarkAblationManagers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunManagers(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 4 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
}

// BenchmarkAblationSchedulers regenerates ablation A8: task schedulers ×
// managers.
func BenchmarkAblationSchedulers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSchedulers(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 8 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
}

// BenchmarkAblationFailures regenerates ablation A9: node failures mid-run.
func BenchmarkAblationFailures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFailures(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 4 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
}

// BenchmarkAblationSelectors regenerates ablation A10: replica-selection
// policies for non-local reads.
func BenchmarkAblationSelectors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSelectors(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 6 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
}

// BenchmarkAblationHetero regenerates ablation A11: heterogeneous node
// speeds with and without speculation.
func BenchmarkAblationHetero(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunHetero(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 6 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
}

// BenchmarkAblationHints regenerates ablation A12: Custody's scheduling
// suggestions honored vs ignored.
func BenchmarkAblationHints(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunHints(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 2 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
}
