#!/usr/bin/env bash
# ci.sh — the full verification pipeline, runnable locally and in CI.
#
# Order matters: formatting and static analysis run before the build so a
# contract violation fails fast with a precise diagnostic instead of a test
# log. custodylint (cmd/custodylint) enforces the project invariants
# documented in DESIGN.md: determinism (detrand, maporder), layering,
# error-handling (errdrop), concurrency safety (guardedby, lockorder,
# goroutine, atomicmix), and hot-path allocation (noalloc).
set -euo pipefail
cd "$(dirname "$0")"

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "$unformatted"
    echo "gofmt: the files above need formatting"
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== custodylint"
# Build the lint binary once and reuse it below; the full suite (including
# the module-wide lock graph and annotation indices) must stay fast enough
# to run on every push, so the self-lint is held under a 60s wall-clock
# budget.
mkdir -p artifacts
go build -o artifacts/custodylint ./cmd/custodylint
lint_start=$(date +%s)
artifacts/custodylint -json > artifacts/custodylint.json || {
    echo "custodylint findings:"
    cat artifacts/custodylint.json
    exit 1
}
lint_elapsed=$(( $(date +%s) - lint_start ))
echo "custodylint clean in ${lint_elapsed}s (JSON artifact: artifacts/custodylint.json)"
if [ "$lint_elapsed" -ge 60 ]; then
    echo "custodylint took ${lint_elapsed}s, over the 60s budget; profile the analyzers"
    exit 1
fi

echo "== custodylint lockreport determinism"
# The blessed-order report must be byte-identical across runs: CI diffs
# three consecutive renders.
artifacts/custodylint -lockreport > artifacts/lockreport.txt
for i in 1 2; do
    artifacts/custodylint -lockreport > /tmp/custody_lockreport_again.txt
    cmp -s artifacts/lockreport.txt /tmp/custody_lockreport_again.txt || {
        echo "custodylint -lockreport output differs between runs (run $i)"
        exit 1
    }
done

echo "== custodylint negative fixtures"
for d in internal/analysis/testdata/src/*_bad; do
    if artifacts/custodylint -root "$d" -modpath fixture >/dev/null 2>&1; then
        echo "custodylint unexpectedly exited 0 on negative fixture $d"
        exit 1
    fi
done

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== chaos smoke (-race)"
go test -race -count=1 -run TestChaosSmoke ./internal/chaos

echo "== fuzz smoke"
# Each target gets a short bounded run; go test accepts one fuzz target per
# invocation. New corpus entries land in testdata/fuzz/ — commit them.
go test -run='^$' -fuzz='^FuzzAllocateEquivalence$' -fuzztime=20s ./internal/core
go test -run='^$' -fuzz='^FuzzAllocate$' -fuzztime=20s ./internal/core
go test -run='^$' -fuzz='^FuzzMinCostFlow$' -fuzztime=10s ./internal/maxflow
go test -run='^$' -fuzz='^FuzzMaxWeightAssignment$' -fuzztime=10s ./internal/matching

echo "== sharded equivalence (-race)"
# The sharded-build lockdown battery (DESIGN.md §14): fuzz the sharded
# session against the frozen reference over the committed corpus, shuffle
# goroutine interleavings, and replay every golden trace at 2/4/8 shards —
# all under the race detector.
go test -race -run='^$' -fuzz='^FuzzShardedEquivalence$' -fuzztime=20s ./internal/core
go test -race -count=1 -run '^TestShardedDeterministicUnderShuffle$|^TestShardCountChangeMidSession$' ./internal/core
go test -race -count=1 -run '^TestGoldenTracesSharded$|^TestGoldenShardedTrace$' ./internal/experiments

echo "== modelcheck mutation smoke"
# Compile the seeded allocator bug (inverted fairness comparison, build tag
# custodymutate) and require the model checker to catch it and shrink the
# counterexample. Only the mutation test runs under the tag: the rest of
# the suite is *expected* to fail with the bug compiled in.
go test -count=1 -tags custodymutate -run '^TestMutationSmoke$' ./internal/modelcheck

echo "== shard mutation smoke"
# Same drill for the sharded build: the custodymutateshard tag reverses one
# shard's pre-list walk (descending per-node executor lists), a bug only
# the SelfCheck reference oracle can see; the checker must catch it and
# shrink the counterexample to a small reproducer.
go test -count=1 -tags custodymutateshard -run '^TestShardMutationSmoke$' ./internal/modelcheck

echo "== policy mutation smoke"
# And for the pluggable-policy layer: the custodymutatepolicy tag inverts
# the sign of every app→executor edge cost in the Quincy flow network, so
# the policy starves every application — a bug only the policy-generic
# invariant core (the plan contract's non-starvation rule) can catch, since
# the Custody-specific checks detach under a non-custody policy
# (DESIGN.md §16).
go test -count=1 -tags custodymutatepolicy -run '^TestPolicyMutationSmoke$' ./internal/modelcheck

echo "== modelcheck sweep (custodysim)"
# The long-run CLI entry on a clean build: a bounded seed sweep must come
# back violation-free.
go run ./cmd/custodysim -modelcheck -seeds 40 -mc-cmds 30

echo "== coverage gate"
# Combined statement coverage of the allocation stack — core + manager +
# driver, plus (since PR 10) the policy tournament surface: scheduler,
# maxflow, matching, and the policy layer itself — gated against the
# committed floor (COVERAGE_FLOOR.txt, recomputed honestly at 90.6% when
# the scope grew; the floor holds 90.0 to absorb sub-point jitter). Raise
# the floor when coverage improves; never lower it to make CI pass.
mkdir -p artifacts
go test -count=1 -coverprofile=artifacts/coverage.out \
    -coverpkg=./internal/core,./internal/manager,./internal/driver,./internal/scheduler,./internal/maxflow,./internal/matching,./internal/policy \
    ./internal/core ./internal/manager ./internal/driver ./internal/scheduler ./internal/maxflow ./internal/matching ./internal/policy > /dev/null
coverage=$(go tool cover -func=artifacts/coverage.out | awk '/^total:/ {gsub(/%/, "", $3); print $3}')
floor=$(cat COVERAGE_FLOOR.txt)
awk -v c="$coverage" -v f="$floor" 'BEGIN { exit !(c >= f) }' || {
    echo "coverage gate: ${coverage}% < floor ${floor}% (COVERAGE_FLOOR.txt)"
    exit 1
}
echo "coverage ${coverage}% >= floor ${floor}%"

echo "== bench regression gate"
# Fresh harness run (internal/benchreg) compared against the committed
# baseline; fails on >15% regression in normalized time or allocs/op, or if
# the incremental allocator drops below 5x the frozen reference at 1000
# nodes. The report (including the alloc-50k/alloc-100k shard sweep and
# shard_speedup_100k, which scales with the runner's core count and is
# informational) is left under artifacts/ for CI to upload. Bless a new
# baseline with:
#   go run ./cmd/custodybench -quick -emit-json BENCH_PR8.json
mkdir -p artifacts
go run ./cmd/custodybench -quick -emit-json artifacts/bench-current.json -baseline BENCH_PR8.json

echo "== observability sweep"
# Small seeded run with every provenance sink attached: exercises the
# JSONL/CSV/OpenMetrics exporters and the -explain chain end to end, and
# leaves the artifacts for CI to upload.
mkdir -p artifacts
go run ./cmd/custodysim -nodes 16 -apps 2 -jobs 3 -workload Sort -seed 7 \
    -obsv-out artifacts/obsv -explain 0.1 > artifacts/explain.txt
for f in artifacts/obsv.jsonl artifacts/obsv.csv artifacts/obsv.om artifacts/explain.txt; do
    if [ ! -s "$f" ]; then
        echo "observability sweep left $f empty or missing"
        exit 1
    fi
done
if ! tail -1 artifacts/obsv.om | grep -q '^# EOF$'; then
    echo "artifacts/obsv.om is not a terminated OpenMetrics exposition"
    exit 1
fi

echo "== block-cache sweep"
# Cache on: the quick A14 sweep must show real cache traffic (nonzero hits
# on a cached row) and lands as an artifact. Cache off is the default
# everywhere else in this script, so re-running the golden-trace suite
# right after proves the zero-default contract: with CacheBytes=0 the six
# golden replays stay byte-identical.
go run ./cmd/custodybench -fig cache -quick > artifacts/cache-sweep.txt
if [ ! -s artifacts/cache-sweep.txt ]; then
    echo "cache sweep left artifacts/cache-sweep.txt empty or missing"
    exit 1
fi
if ! awk '$1 == 256 && $7 > 0 { found = 1 } END { exit !found }' artifacts/cache-sweep.txt; then
    echo "cache sweep shows no hits on a cached row"
    cat artifacts/cache-sweep.txt
    exit 1
fi
go test -count=1 -run '^TestGoldenTraces$' ./internal/experiments

echo "== policy tournament (A15)"
# The quick tournament grid: every allocation policy under the Sort
# workload at the fault-free and medium chaos levels. Every cell must
# complete all jobs with zero invariant-audit violations; the ranking
# itself (JCT, locality, Jain fairness) is the figure, uploaded as a CI
# artifact.
go run ./cmd/custodybench -fig tournament -quick > artifacts/tournament.txt
if [ ! -s artifacts/tournament.txt ]; then
    echo "policy tournament left artifacts/tournament.txt empty or missing"
    exit 1
fi
if ! awk 'NR > 2 && NF > 0 { split($4, j, "/"); if (j[1] != j[2] || $NF != 0) bad = 1 } END { exit bad }' artifacts/tournament.txt; then
    echo "policy tournament has incomplete jobs or audit violations:"
    cat artifacts/tournament.txt
    exit 1
fi

echo "== custodyd service smoke"
# Boot the allocation service on an ephemeral port, drive a workload over
# the HTTP API, scrape /metrics, kill -9 the daemon, and require the
# restarted process to replay the intent log back to a byte-identical
# digest before draining it with SIGTERM. Server logs, the metrics
# exposition, and the final checkpoint are left under artifacts/ for CI to
# upload.
DDIR=artifacts/custodyd
rm -rf "$DDIR"
mkdir -p "$DDIR"
go build -o artifacts/custodyd.bin ./cmd/custodyd

# status_field <field> — extract a scalar field from /v1/status JSON.
status_field() {
    curl -sf "http://$CUSTODYD_ADDR/v1/status" | jq -r ".$1"
}
# wait_addr <logfile> — wait for the daemon to publish its bound address.
wait_addr() {
    for _ in $(seq 1 100); do
        if [ -s "$DDIR/addr" ]; then
            CUSTODYD_ADDR=$(cat "$DDIR/addr")
            return 0
        fi
        sleep 0.1
    done
    echo "custodyd did not publish $DDIR/addr; log:"
    cat "$1"
    exit 1
}

artifacts/custodyd.bin -addr 127.0.0.1:0 -dir "$DDIR" -round-ms 20 \
    -checkpoint-every 4 -obsv-jsonl > "$DDIR/server1.log" 2>&1 &
DPID=$!
wait_addr "$DDIR/server1.log"

curl -sf -XPOST "http://$CUSTODYD_ADDR/v1/register-app" -d '{"name":"ci-alice"}' > /dev/null
curl -sf -XPOST "http://$CUSTODYD_ADDR/v1/register-app" -d '{"name":"ci-bob"}' > /dev/null
for i in 0 1 2 3 4 5; do
    curl -sf -XPOST "http://$CUSTODYD_ADDR/v1/submit-job" \
        -d "{\"tenant\":$((i % 2)),\"workload\":\"Sort\",\"file\":$((i % 2))}" > /dev/null
done
for _ in $(seq 1 200); do
    if [ "$(status_field idle)" = "true" ] && [ "$(status_field queued)" = "0" ] &&
        [ "$(status_field jobs_finished)" = "6" ]; then
        break
    fi
    sleep 0.1
done
if [ "$(status_field jobs_finished)" != "6" ]; then
    echo "custodyd did not finish the workload; status:"
    curl -s "http://$CUSTODYD_ADDR/v1/status"
    exit 1
fi

curl -sf "http://$CUSTODYD_ADDR/metrics" > artifacts/custodyd-metrics.om
if [ "$(grep -c '^# EOF$' artifacts/custodyd-metrics.om)" != "1" ]; then
    echo "custodyd /metrics exposition is not terminated by exactly one # EOF"
    exit 1
fi

digest_before=$(status_field digest)
if [ -z "$digest_before" ] || [ "$digest_before" = "null" ]; then
    echo "custodyd status did not report a digest"
    exit 1
fi
kill -9 "$DPID"
wait "$DPID" 2>/dev/null || true

rm -f "$DDIR/addr"
artifacts/custodyd.bin -addr 127.0.0.1:0 -dir "$DDIR" -round-ms 20 \
    -checkpoint-every 4 -obsv-jsonl > "$DDIR/server2.log" 2>&1 &
DPID=$!
wait_addr "$DDIR/server2.log"
if [ "$(status_field recovered)" != "true" ]; then
    echo "restarted custodyd did not report recovery"
    exit 1
fi
digest_after=$(status_field digest)
if [ "$digest_before" != "$digest_after" ]; then
    echo "custodyd recovery digest mismatch: $digest_before != $digest_after"
    exit 1
fi
echo "custodyd recovered to identical digest $digest_after after kill -9"

kill -TERM "$DPID"
if ! wait "$DPID"; then
    echo "custodyd did not exit cleanly on SIGTERM; log:"
    cat "$DDIR/server2.log"
    exit 1
fi
if [ ! -s "$DDIR/checkpoint.json" ]; then
    echo "custodyd drain left no final checkpoint"
    exit 1
fi

echo "ci: OK"
