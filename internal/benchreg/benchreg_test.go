package benchreg

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/race"
	"repro/internal/xrand"
)

func sampleReport() *Report {
	r := &Report{
		Schema:      Schema,
		Mode:        "quick",
		YardstickNs: 1e8,
		Speedup1000: 9.0,
		Cases: []Case{
			{Name: CaseSweep, NsPerOp: 3e8, AllocsPerOp: 500000, NsNorm: 3.0},
			{Name: CaseAlloc1000, NsPerOp: 1.1e7, AllocsPerOp: 900, NsNorm: 0.11},
			{Name: CaseRef1000, NsPerOp: 1e8, AllocsPerOp: 40000, NsNorm: 1.0},
			{Name: CaseAlloc5000, NsPerOp: 6e7, AllocsPerOp: 4500, NsNorm: 0.6},
		},
	}
	return r
}

// TestCompareFlagsRegression exercises the gate the ci.sh bench stage relies
// on: a synthetic 2× slowdown (in normalized time) and a synthetic
// allocation regression must both be flagged at 15% tolerance, and an
// identical run must pass.
func TestCompareFlagsRegression(t *testing.T) {
	base := sampleReport()

	if v := Compare(sampleReport(), base, 0.15); len(v) != 0 {
		t.Fatalf("identical run flagged: %v", v)
	}

	slow := sampleReport()
	slow.Find(CaseAlloc1000).NsNorm *= 2
	v := Compare(slow, base, 0.15)
	if len(v) != 1 || !strings.Contains(v[0], CaseAlloc1000) || !strings.Contains(v[0], "normalized time") {
		t.Fatalf("2x normalized-time regression not flagged correctly: %v", v)
	}

	leaky := sampleReport()
	leaky.Find(CaseAlloc5000).AllocsPerOp *= 3
	v = Compare(leaky, base, 0.15)
	if len(v) != 1 || !strings.Contains(v[0], "allocs/op") {
		t.Fatalf("allocation regression not flagged correctly: %v", v)
	}

	// Within-tolerance noise must pass.
	noisy := sampleReport()
	noisy.Find(CaseSweep).NsNorm *= 1.10
	if v := Compare(noisy, base, 0.15); len(v) != 0 {
		t.Fatalf("10%% noise flagged at 15%% tolerance: %v", v)
	}
}

func TestCompareSpeedupFloor(t *testing.T) {
	cur := sampleReport()
	cur.Speedup1000 = 3.5
	v := Compare(cur, sampleReport(), 0.15)
	if len(v) != 1 || !strings.Contains(v[0], "speedup_1000") {
		t.Fatalf("speedup floor not enforced: %v", v)
	}
}

func TestCompareModeAndMissingCase(t *testing.T) {
	cur := sampleReport()
	cur.Mode = "full"
	if v := Compare(cur, sampleReport(), 0.15); len(v) != 1 || !strings.Contains(v[0], "mode mismatch") {
		t.Fatalf("mode mismatch not flagged: %v", v)
	}
	short := sampleReport()
	short.Cases = short.Cases[:2]
	v := Compare(short, sampleReport(), 0.15)
	if len(v) == 0 {
		t.Fatal("missing baseline case not flagged")
	}
}

func TestReportRoundTrip(t *testing.T) {
	path := t.TempDir() + "/bench.json"
	want := sampleReport()
	if err := WriteFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mode != want.Mode || got.Speedup1000 != want.Speedup1000 || len(got.Cases) != len(want.Cases) {
		t.Fatalf("round-trip mismatch: %+v vs %+v", got, want)
	}
	for i := range want.Cases {
		if got.Cases[i] != want.Cases[i] {
			t.Fatalf("case %d round-trip mismatch: %+v vs %+v", i, got.Cases[i], want.Cases[i])
		}
	}
}

// TestMicroInstanceEquivalence pins that on the benchmark instance itself
// the fast path and the reference yardstick agree byte-for-byte — without
// it a divergence could silently inflate the measured speedup. Scaled down
// under the race detector.
func TestMicroInstanceEquivalence(t *testing.T) {
	nodes := 300
	if race.Enabled {
		nodes = 60
	}
	demands, idle := MicroInstance(nodes, xrand.New(1))
	opts := core.DefaultOptions()
	want := core.AllocateReference(demands, idle, opts)
	got := core.NewSession().Allocate(demands, idle, opts)
	if len(want.Assignments) != len(got.Assignments) {
		t.Fatalf("plan length diverges: %d vs %d", len(got.Assignments), len(want.Assignments))
	}
	for i := range want.Assignments {
		if want.Assignments[i] != got.Assignments[i] {
			t.Fatalf("assignment %d diverges: %+v vs %+v", i, got.Assignments[i], want.Assignments[i])
		}
	}
}

// TestCompareShardSpeedupNotGated pins the decision that the shard sweep's
// speedup is informational: it scales with the runner's core count (on a
// single-core machine the parallel build cannot beat sequential), so a
// report measuring no speedup — or a slowdown — must still pass the gate.
func TestCompareShardSpeedupNotGated(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	cur.GOMAXPROCS = 1
	cur.ShardSpeedup100k = 0.8
	if v := Compare(cur, base, 0.15); len(v) != 0 {
		t.Fatalf("core-count-dependent shard speedup flagged by the gate: %v", v)
	}
}

func TestShardCaseNames(t *testing.T) {
	if got := ShardCase(100000, 16); got != "alloc-100k/shards-16" {
		t.Fatalf("ShardCase(100000, 16) = %q", got)
	}
	if got := ShardCase(50000, 1); got != "alloc-50k/shards-1" {
		t.Fatalf("ShardCase(50000, 1) = %q", got)
	}
}

// TestMicroInstanceShardedEquivalence is TestMicroInstanceEquivalence for
// the shard sweep: on the benchmark instance, every swept shard count must
// produce the reference plan byte-for-byte — otherwise the sweep would be
// timing different answers, not the same answer built differently.
func TestMicroInstanceShardedEquivalence(t *testing.T) {
	nodes := 300
	if race.Enabled {
		nodes = 60
	}
	demands, idle := MicroInstance(nodes, xrand.New(1))
	want := core.AllocateReference(demands, idle, core.DefaultOptions())
	for _, shards := range shardSweepShards {
		opts := core.DefaultOptions()
		opts.Shards = shards
		got := core.NewSession().Allocate(demands, idle, opts)
		if len(want.Assignments) != len(got.Assignments) {
			t.Fatalf("shards=%d: plan length diverges: %d vs %d", shards, len(got.Assignments), len(want.Assignments))
		}
		for i := range want.Assignments {
			if want.Assignments[i] != got.Assignments[i] {
				t.Fatalf("shards=%d: assignment %d diverges: %+v vs %+v", shards, i, got.Assignments[i], want.Assignments[i])
			}
		}
	}
}

// Benchmark entry points for `go test -bench` exploration. The 5000-node
// case is skipped under the race detector (internal/race pattern) so
// `go test -race -bench .` stays within CI timeouts; the harness binary
// (cmd/custodybench -emit-json) is never built with -race.
func BenchmarkAlloc1000Incremental(b *testing.B) {
	demands, idle := MicroInstance(1000, xrand.New(1))
	opts := core.DefaultOptions()
	sess := core.NewSession()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.Allocate(demands, idle, opts)
	}
}

func BenchmarkAlloc1000Reference(b *testing.B) {
	if race.Enabled {
		b.Skip("reference allocator at 1000 nodes is too slow under the race detector")
	}
	demands, idle := MicroInstance(1000, xrand.New(1))
	opts := core.DefaultOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.AllocateReference(demands, idle, opts)
	}
}

func BenchmarkAlloc5000Incremental(b *testing.B) {
	if race.Enabled {
		b.Skip("5000-node microbenchmark skipped under the race detector (internal/race gate)")
	}
	demands, idle := MicroInstance(5000, xrand.New(1))
	opts := core.DefaultOptions()
	sess := core.NewSession()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.Allocate(demands, idle, opts)
	}
}

func BenchmarkAlloc100kSharded(b *testing.B) {
	if race.Enabled {
		b.Skip("100k-node microbenchmark skipped under the race detector (internal/race gate)")
	}
	demands, idle := MicroInstance(100000, xrand.New(1))
	for _, shards := range shardSweepShards {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.Shards = shards
			sess := core.NewSession()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sess.Allocate(demands, idle, opts)
			}
		})
	}
}
