// Package benchreg is the benchmark-regression harness: it runs the
// performance-critical paths under testing.Benchmark, records ns/op,
// allocs/op, and peak live heap per case as JSON (the committed BENCH_*.json
// baselines), and compares a fresh run against a committed baseline with a
// tolerance band.
//
// Machine independence: wall-clock ns/op is meaningless across machines, so
// the regression gate compares *normalized* time — each case's ns/op divided
// by the same run's reference-allocator yardstick (the alloc-1000/reference
// case, the frozen pre-fast-path implementation). Both sides of the ratio
// move with the hardware; the ratio moves only when the measured code
// changes relative to the frozen yardstick. Allocation counts are compared
// directly: they are hardware-independent.
package benchreg

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hdfs"
	"repro/internal/policy"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// Schema is the BENCH_*.json format version.
const Schema = 1

// MinSpeedup1000 is the acceptance floor on the 1000-node microbenchmark:
// the incremental allocator must beat the frozen reference by at least this
// factor, measured in the same run.
const MinSpeedup1000 = 5.0

// Case is one benchmark case's measurements.
type Case struct {
	Name              string  `json:"name"`
	NsPerOp           float64 `json:"ns_per_op"`
	AllocsPerOp       int64   `json:"allocs_per_op"`
	BytesPerOp        int64   `json:"bytes_per_op"`
	PeakLiveHeapBytes uint64  `json:"peak_live_heap_bytes"`
	// NsNorm is NsPerOp divided by the run's yardstick (the
	// alloc-1000/reference case); this is what the regression gate compares.
	NsNorm float64 `json:"ns_norm"`
}

// Report is one harness run: the unit of BENCH_*.json.
type Report struct {
	Schema      int     `json:"schema"`
	Mode        string  `json:"mode"` // "quick" or "full"
	YardstickNs float64 `json:"yardstick_ns"`
	// GOMAXPROCS records the parallelism the run had available. The shard
	// sweep's speedups are only meaningful relative to it: the parallel
	// build cannot beat sequential on a single-core runner.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Speedup1000 is reference ns/op ÷ incremental ns/op on the 1000-node
	// microbenchmark, both measured in this run.
	Speedup1000 float64 `json:"speedup_1000"`
	// ShardSpeedup100k is round latency at shards=1 ÷ shards=16 on the
	// 100k-node instance, both measured in this run. Informational, never
	// gated: it scales with GOMAXPROCS, so a fixed floor would make the
	// gate's verdict depend on the runner's core count.
	ShardSpeedup100k float64 `json:"shard_speedup_100k,omitempty"`
	Cases            []Case  `json:"cases"`
}

// Find returns the named case, or nil.
func (r *Report) Find(name string) *Case {
	for i := range r.Cases {
		if r.Cases[i].Name == name {
			return &r.Cases[i]
		}
	}
	return nil
}

// The benchmark case names.
const (
	CaseSweep      = "sweep-quick-25"
	CaseAlloc1000  = "alloc-1000/incremental"
	CaseRef1000    = "alloc-1000/reference"
	CaseAlloc5000  = "alloc-5000/incremental"
	caseSweepSizes = 25
)

// ShardCase names one shard-sweep case: alloc-50k/shards-4 and friends.
func ShardCase(nodes, shards int) string {
	return fmt.Sprintf("alloc-%dk/shards-%d", nodes/1000, shards)
}

// PolicyCase names one policy-contender case: alloc-1k/policy-quincy and
// friends.
func PolicyCase(name string) string {
	return fmt.Sprintf("alloc-1k/policy-%s", name)
}

// The shard sweep grid: cluster sizes × shard counts, run warm like the
// other alloc cases.
var (
	shardSweepNodes  = []int{50000, 100000}
	shardSweepShards = []int{1, 4, 16}
)

// MicroInstance builds the deterministic allocation microbenchmark instance:
// nodes nodes with two 2-slot executors each, eight applications with a
// dozen jobs of forty 3-replicated tasks, budgets set to an even share.
func MicroInstance(nodes int, rng *xrand.Rand) ([]core.AppDemand, []core.ExecInfo) {
	const (
		execsPerNode = 2
		apps         = 8
		jobsPerApp   = 12
		tasksPerJob  = 40
		replicas     = 3
	)
	var idle []core.ExecInfo
	for n := 0; n < nodes; n++ {
		for e := 0; e < execsPerNode; e++ {
			idle = append(idle, core.ExecInfo{ID: n*execsPerNode + e, Node: n, Slots: 2})
		}
	}
	var demands []core.AppDemand
	block := 0
	for a := 0; a < apps; a++ {
		ad := core.AppDemand{
			App:        a,
			Budget:     nodes * execsPerNode / apps,
			ExtraTasks: 4,
			TotalJobs:  jobsPerApp,
			LocalJobs:  a % 3,
			TotalTasks: jobsPerApp * tasksPerJob,
			LocalTasks: (a % 3) * tasksPerJob,
		}
		for j := 0; j < jobsPerApp; j++ {
			jd := core.JobDemand{Job: j}
			for k := 0; k < tasksPerJob; k++ {
				reps := make([]int, replicas)
				for r := range reps {
					reps[r] = rng.Intn(nodes)
				}
				jd.Tasks = append(jd.Tasks, core.TaskDemand{Task: k, Block: hdfs.BlockID(block), Nodes: reps})
				block++
			}
			ad.Jobs = append(ad.Jobs, jd)
		}
		demands = append(demands, ad)
	}
	return demands, idle
}

// Run executes the harness and returns the report. Quick mode shrinks the
// sweep workload (it is also what CI and the committed baselines use, so
// comparisons are quick-vs-quick).
func Run(quick bool, seed uint64) (*Report, error) {
	return RunProfiled(quick, seed, "")
}

// RunProfiled is Run with optional profile capture: when profileDir is
// non-empty, each case's benchmark loop runs under a CPU profile and is
// followed by a post-GC heap profile, written as
// <dir>/<case>.cpu.pprof and <dir>/<case>.heap.pprof ("/" in case names
// becomes "-"). Profiling skews ns/op slightly, so profiled runs should
// not be blessed as baselines.
func RunProfiled(quick bool, seed uint64, profileDir string) (*Report, error) {
	if profileDir != "" {
		if err := os.MkdirAll(profileDir, 0o755); err != nil {
			return nil, fmt.Errorf("benchreg: %w", err)
		}
	}
	var profErr error
	measure := measureCase
	if profileDir != "" {
		measure = func(name string, bench func(b *testing.B), once func()) Case {
			c, err := profiledCase(name, profileDir, bench, once)
			if err != nil && profErr == nil {
				profErr = err
			}
			return c
		}
	}
	rep := &Report{Schema: Schema, Mode: mode(quick), GOMAXPROCS: runtime.GOMAXPROCS(0)}

	// Fig. 7–10 shrunken grid through the full simulation stack.
	opts := experiments.DefaultOptions()
	opts.Seed = seed
	opts.Quick = true
	var sweepErr error
	sweep := func() {
		_, sweepErr = experiments.RunSweep([]int{caseSweepSizes}, workload.Kinds(),
			[]experiments.ManagerKind{experiments.Standalone, experiments.Custody}, opts)
	}
	sweepCase := measure(CaseSweep, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sweep()
		}
	}, sweep)
	if sweepErr != nil {
		return nil, fmt.Errorf("benchreg: sweep case: %w", sweepErr)
	}

	// Allocation microbenchmarks: incremental fast path (warm session, the
	// production round-trip pattern) vs the frozen reference, same instance.
	demands1k, idle1k := MicroInstance(1000, xrand.New(seed))
	coreOpts := core.DefaultOptions()
	sess := core.NewSession()
	incr1k := measure(CaseAlloc1000, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sess.Allocate(demands1k, idle1k, coreOpts)
		}
	}, func() { sess.Allocate(demands1k, idle1k, coreOpts) })
	ref1k := measure(CaseRef1000, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.AllocateReference(demands1k, idle1k, coreOpts)
		}
	}, func() { core.AllocateReference(demands1k, idle1k, coreOpts) })

	demands5k, idle5k := MicroInstance(5000, xrand.New(seed))
	sess5k := core.NewSession()
	incr5k := measure(CaseAlloc5000, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sess5k.Allocate(demands5k, idle5k, coreOpts)
		}
	}, func() { sess5k.Allocate(demands5k, idle5k, coreOpts) })

	rep.Cases = []Case{sweepCase, incr1k, ref1k, incr5k}

	// Policy contenders on the same 1k-node instance. The custody policy is
	// alloc-1000/incremental by construction (the manager short-circuits it
	// to the warm session), so only the contenders get cases. They are
	// absent from the committed baseline, which makes them informational:
	// the gate ranks them without failing CI on their drift (DESIGN.md §16).
	for _, name := range policy.Names() {
		if name == policy.Custody {
			continue
		}
		p, err := policy.New(name)
		if err != nil {
			return nil, fmt.Errorf("benchreg: %w", err)
		}
		rep.Cases = append(rep.Cases, measure(PolicyCase(name), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.Allocate(demands1k, idle1k, coreOpts)
			}
		}, func() { p.Allocate(demands1k, idle1k, coreOpts) }))
	}

	// Shard sweep: 100k-node-scale rounds at increasing shard counts. The
	// demand profile is the same fixed MicroInstance workload, so these
	// instances are cluster-heavy — exactly the regime where the sharded
	// session build matters (DESIGN.md §14).
	for _, nodes := range shardSweepNodes {
		demands, idle := MicroInstance(nodes, xrand.New(seed))
		for _, shards := range shardSweepShards {
			shardOpts := core.DefaultOptions()
			shardOpts.Shards = shards
			shardSess := core.NewSession()
			rep.Cases = append(rep.Cases, measure(ShardCase(nodes, shards), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					shardSess.Allocate(demands, idle, shardOpts)
				}
			}, func() { shardSess.Allocate(demands, idle, shardOpts) }))
		}
	}
	if c1, c16 := rep.Find(ShardCase(100000, 1)), rep.Find(ShardCase(100000, 16)); c1 != nil && c16 != nil && c16.NsPerOp > 0 {
		rep.ShardSpeedup100k = c1.NsPerOp / c16.NsPerOp
	}

	rep.YardstickNs = ref1k.NsPerOp
	for i := range rep.Cases {
		rep.Cases[i].NsNorm = rep.Cases[i].NsPerOp / rep.YardstickNs
	}
	if incr1k.NsPerOp > 0 {
		rep.Speedup1000 = ref1k.NsPerOp / incr1k.NsPerOp
	}
	if profErr != nil {
		return nil, fmt.Errorf("benchreg: profile capture: %w", profErr)
	}
	return rep, nil
}

func mode(quick bool) string {
	if quick {
		return "quick"
	}
	return "full"
}

// measureCase runs one case under testing.Benchmark and samples its peak
// live heap: the growth of HeapAlloc across a single un-GC'd run after a
// forced collection — an approximation of the case's peak live working set.
func measureCase(name string, bench func(b *testing.B), once func()) Case {
	r := testing.Benchmark(bench)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	once()
	runtime.ReadMemStats(&after)
	peak := uint64(0)
	if after.HeapAlloc > before.HeapAlloc {
		peak = after.HeapAlloc - before.HeapAlloc
	}
	return Case{
		Name:              name,
		NsPerOp:           float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp:       r.AllocsPerOp(),
		BytesPerOp:        r.AllocedBytesPerOp(),
		PeakLiveHeapBytes: peak,
	}
}

// profiledCase is measureCase under runtime/pprof capture: the CPU profile
// covers the benchmark loop plus the heap-sampling run; the heap profile is
// written after a forced GC, so it shows the case's live retained set.
func profiledCase(name, dir string, bench func(b *testing.B), once func()) (Case, error) {
	base := filepath.Join(dir, strings.ReplaceAll(name, "/", "-"))
	cf, err := os.Create(base + ".cpu.pprof")
	if err != nil {
		return Case{}, err
	}
	if err := pprof.StartCPUProfile(cf); err != nil {
		cerr := cf.Close()
		if cerr != nil {
			return Case{}, fmt.Errorf("%w (and closing profile: %v)", err, cerr)
		}
		return Case{}, err
	}
	c := measureCase(name, bench, once)
	pprof.StopCPUProfile()
	if err := cf.Close(); err != nil {
		return c, err
	}
	hf, err := os.Create(base + ".heap.pprof")
	if err != nil {
		return c, err
	}
	runtime.GC()
	err = pprof.WriteHeapProfile(hf)
	if cerr := hf.Close(); err == nil {
		err = cerr
	}
	return c, err
}

// Compare checks a fresh run against a committed baseline and returns the
// violations (empty = gate passes). tol is the fractional tolerance band
// (0.15 = 15%). Normalized time and allocation counts are gated; peak heap
// is informational (it depends on GC timing). New cases absent from the
// baseline pass (they are blessed on the next baseline update); cases
// missing from the current run fail.
func Compare(cur, base *Report, tol float64) []string {
	var violations []string
	if cur.Mode != base.Mode {
		violations = append(violations,
			fmt.Sprintf("mode mismatch: current %q vs baseline %q (compare like with like)", cur.Mode, base.Mode))
		return violations
	}
	names := make([]string, 0, len(base.Cases))
	for _, c := range base.Cases {
		names = append(names, c.Name)
	}
	sort.Strings(names)
	for _, name := range names {
		bc := base.Find(name)
		cc := cur.Find(name)
		if cc == nil {
			violations = append(violations, fmt.Sprintf("%s: present in baseline but not in current run", name))
			continue
		}
		if limit := bc.NsNorm * (1 + tol); cc.NsNorm > limit {
			violations = append(violations,
				fmt.Sprintf("%s: normalized time %.3f exceeds baseline %.3f by more than %.0f%% (limit %.3f)",
					name, cc.NsNorm, bc.NsNorm, tol*100, limit))
		}
		// Small absolute slack absorbs counting jitter on tiny cases.
		if limit := float64(bc.AllocsPerOp)*(1+tol) + 16; float64(cc.AllocsPerOp) > limit {
			violations = append(violations,
				fmt.Sprintf("%s: allocs/op %d exceeds baseline %d by more than %.0f%% (limit %.0f)",
					name, cc.AllocsPerOp, bc.AllocsPerOp, tol*100, limit))
		}
	}
	if cur.Speedup1000 < MinSpeedup1000 {
		violations = append(violations,
			fmt.Sprintf("speedup_1000 = %.2f below the required %.0fx (incremental vs reference, same run)",
				cur.Speedup1000, MinSpeedup1000))
	}
	return violations
}

// WriteFile writes the report as indented JSON.
func WriteFile(path string, r *Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a BENCH_*.json report.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchreg: parse %s: %w", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("benchreg: %s has schema %d, this binary understands %d", path, r.Schema, Schema)
	}
	return &r, nil
}
