// Package manager implements the cluster-manager strategies compared in the
// paper: Spark's standalone manager (static, data-unaware — the baseline),
// Custody (data-aware two-level allocation, the contribution), and a
// Mesos-like offer-based dynamic manager (the other baseline family
// discussed in §II-A and §VII).
package manager

import (
	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/metrics"
	"repro/internal/xrand"
)

// Env is the slice of the simulation driver a manager interacts with.
type Env interface {
	// Now returns the current simulated time.
	Now() float64
	// Cluster exposes executor state.
	Cluster() *cluster.Cluster
	// NameNode answers block-location queries (§IV-C).
	NameNode() *hdfs.NameNode
	// Apps returns the registered applications in registration order.
	Apps() []*app.Application
	// PendingInputTasks returns an app's ready-but-unlaunched input tasks.
	PendingInputTasks(a *app.Application) []*app.Task
	// PendingCount returns the number of queued (unlaunched) tasks of an
	// app, input or not.
	PendingCount(a *app.Application) int
	// Allocate gives an idle, free executor to an application.
	Allocate(e *cluster.Executor, id cluster.AppID)
	// Release returns an app's idle executor to the free pool.
	Release(e *cluster.Executor)
	// TryLaunch offers an executor to an app's task scheduler; if the
	// scheduler accepts, the executor is allocated to the app and the task
	// launched, and TryLaunch reports true. Used by the offer-based manager.
	TryLaunch(e *cluster.Executor, a *app.Application) bool
	// Metrics exposes the run's collector for manager-side counters.
	Metrics() *metrics.Collector
	// Schedule runs fn after delay simulated seconds (for offer retries).
	Schedule(delay float64, fn func())
	// Hint records a scheduling suggestion: the manager proposes running
	// the task on the given executor (§V: Custody "can submit both the
	// list of executors and the scheduling suggestions"). Task schedulers
	// may honor or ignore it; hints are cleared when the task launches.
	Hint(t *app.Task, execID int)
}

// Manager decides which executors each application holds.
type Manager interface {
	Name() string
	// Register is called once, after all applications are registered and
	// before any job is submitted (apps register at t=0, §VI-A2).
	Register(env Env)
	// OnJobSubmit is called when a user submits a job, before its tasks are
	// dispatched — the moment Custody performs allocation (§IV, §V).
	OnJobSubmit(env Env, a *app.Application, j *app.Job)
	// OnJobFinish is called when a job's last task completes.
	OnJobFinish(env Env, a *app.Application, j *app.Job)
	// OnExecutorIdle is called when an executor finished a task and the
	// owning application's scheduler had nothing to run on it.
	OnExecutorIdle(env Env, e *cluster.Executor)
	// OnNodeFail is called after a node failure has been processed (tasks
	// re-queued, executors dead, DataNode decommissioned), so the manager
	// can re-plan around the lost capacity.
	OnNodeFail(env Env, node int)
}

// ExecutorFaultHandler is an optional Manager capability: managers that
// implement it are told when a single executor crashes or restarts
// (finer-grained than OnNodeFail), so they can repair allocation plans
// mid-flight. The driver discovers it by type assertion; managers without
// it simply see the effects at their next allocation round.
type ExecutorFaultHandler interface {
	// OnExecutorFail is called after one executor died (tasks re-queued,
	// executor freed and marked dead).
	OnExecutorFail(env Env, execID int)
	// OnExecutorRecover is called after a crashed executor rejoined the
	// free pool.
	OnExecutorRecover(env Env, execID int)
}

// fairShare computes the per-application executor budget σ_i — the paper
// shares the cluster evenly among the registered applications (§VI-A2).
func fairShare(env Env) int {
	n := len(env.Apps())
	if n == 0 {
		return 0
	}
	return env.Cluster().TotalExecutors() / n
}

// Standalone mimics Spark's default standalone cluster manager (§II, §VII):
// when an application registers, it is handed a fixed set of executors with
// no regard to data placement, which it keeps for its whole lifetime. The
// paper's characterization — "existing cluster managers randomly allocate
// available resources to applications when launching executors" — is the
// Random mode; SpreadOut reproduces spark.deploy.spreadOut's round-robin.
type Standalone struct {
	// SpreadOut mirrors spark.deploy.spreadOut: executors are taken
	// round-robin across a random node permutation, maximizing the number
	// of distinct nodes per application. When false, each application
	// receives a uniformly random subset of the free executor slots.
	SpreadOut bool
	rng       *xrand.Rand
}

// NewStandalone builds the baseline manager.
func NewStandalone(rng *xrand.Rand, spreadOut bool) *Standalone {
	return &Standalone{SpreadOut: spreadOut, rng: rng.Fork("standalone")}
}

// Name implements Manager.
func (s *Standalone) Name() string { return "spark-standalone" }

// Register implements Manager: static allocation, data-unaware.
func (s *Standalone) Register(env Env) {
	cl := env.Cluster()
	share := fairShare(env)
	if s.SpreadOut {
		perm := s.rng.Perm(cl.NumNodes())
		next := 0
		for _, a := range env.Apps() {
			got := 0
			for got < share {
				found := false
				for scan := 0; scan < cl.NumNodes() && got < share; scan++ {
					node := perm[next%len(perm)]
					next++
					free := cl.FreeOnNode(node)
					if len(free) == 0 {
						continue
					}
					env.Allocate(free[0], a.ID)
					got++
					found = true
				}
				if !found {
					return // cluster exhausted
				}
			}
		}
		return
	}
	// Random mode: uniformly random free slots per application.
	for _, a := range env.Apps() {
		free := cl.Free()
		if len(free) == 0 {
			return
		}
		n := share
		if n > len(free) {
			n = len(free)
		}
		for _, idx := range s.rng.Sample(len(free), n) {
			env.Allocate(free[idx], a.ID)
		}
	}
}

// OnJobSubmit implements Manager (no-op: allocation is static).
func (s *Standalone) OnJobSubmit(Env, *app.Application, *app.Job) {}

// OnJobFinish implements Manager (no-op).
func (s *Standalone) OnJobFinish(Env, *app.Application, *app.Job) {}

// OnExecutorIdle implements Manager (no-op: executors are never returned).
func (s *Standalone) OnExecutorIdle(Env, *cluster.Executor) {}

// OnNodeFail implements Manager (no-op: the static allocation simply shrank).
func (s *Standalone) OnNodeFail(Env, int) {}
