package manager

import (
	"fmt"
	"sort"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/policy"
)

// Custody is the paper's data-aware manager (§IV–§V). Allocation is deferred
// until users submit jobs; on every job arrival or departure it re-evaluates
// demand, consults the NameNode for the blocks of pending input tasks, and
// runs the two-level allocation of internal/core over the idle executors.
type Custody struct {
	// Opts configures the core allocator (intra-app strategy, budget fill).
	Opts core.Options
	// Sticky keeps an application's idle executors when they still carry
	// locality for its pending tasks, instead of churning them through the
	// pool every round. Enabled by default.
	Sticky bool
	// EmitHints forwards the plan's per-task executor choices to the
	// applications as scheduling suggestions (§V). Off by default: the
	// paper's experiments leave applications on unmodified delay
	// scheduling, which ignores the suggestions.
	EmitHints bool
	// SelfCheck re-runs every allocation round through the frozen
	// core.AllocateReference oracle and records the first divergence in
	// SelfCheckErr. Testing hook: the model-based checker turns it on so a
	// sharded-build bug surfaces as an invariant violation at the round
	// that introduced it instead of a silent misallocation rounds later.
	SelfCheck bool
	// SelfCheckErr holds the first divergence SelfCheck found, or nil.
	SelfCheckErr error
	// Policy, when non-nil, replaces Algorithms 1+2 with a pluggable
	// allocation policy (DESIGN.md §16): the manager snapshots demand and
	// idle executors exactly as for the default path and hands the snapshot
	// to the policy instead of the warm session. Nil — or the custody
	// policy, which wiring maps to nil — keeps the paper's allocator, and
	// with it the SelfCheck reference-oracle differential, which is a
	// Custody-specific invariant and is skipped for other policies.
	Policy policy.Policy
	// PlanCheck validates every plan against the policy-generic contract
	// (policy.Validate: executor membership, single ownership, slot and
	// budget bounds, locality integrity, non-starvation), recording the
	// first breach in PlanCheckErr. Testing hook, on in the model checker
	// for every policy including the default.
	PlanCheck bool
	// PlanCheckErr holds the first generic-contract breach, or nil.
	PlanCheckErr error

	// sess is the warm incremental allocation state (locality indices, pool
	// indexes, arenas) reused across driver round-trips; demandBuf and
	// idleBuf are the reused demand-snapshot buffers. Lazily initialized on
	// the first reallocation.
	sess      *core.Session
	demandBuf []core.AppDemand
	idleBuf   []core.ExecInfo

	// autoShardFor remembers the shard count the auto-installed rack-affine
	// ShardFn was built for, so a shard-count change rebuilds the map. 0
	// when the caller supplied (or nothing installed) its own ShardFn.
	autoShardFor int
}

// NewCustody builds the Custody manager with the paper's configuration.
func NewCustody() *Custody {
	return &Custody{Opts: core.DefaultOptions(), Sticky: true}
}

// Name implements Manager.
func (c *Custody) Name() string { return "custody" }

// SetPolicy selects the allocation policy by registry name. The custody
// name (and "") maps to the built-in warm-session path (Policy == nil),
// keeping the default byte-identical to the pre-policy manager and the
// SelfCheck reference differential armed.
func (c *Custody) SetPolicy(name string) error {
	if name == "" || name == policy.Custody {
		c.Policy = nil
		return nil
	}
	p, err := policy.New(name)
	if err != nil {
		return err
	}
	c.Policy = p
	return nil
}

// PolicyName returns the active policy's registry name; the built-in path
// reports as "custody".
func (c *Custody) PolicyName() string {
	if c.Policy != nil {
		return c.Policy.Name()
	}
	return policy.Custody
}

// Register implements Manager. Custody deliberately allocates nothing at
// registration: "we do not allocate executors until users submit requests"
// (§V).
func (c *Custody) Register(env Env) {}

// OnJobSubmit implements Manager: re-evaluate the demand of all unfinished
// jobs (§IV-C) and reallocate.
func (c *Custody) OnJobSubmit(env Env, a *app.Application, j *app.Job) {
	c.reallocate(env)
}

// OnJobFinish implements Manager: departures free executors; re-evaluate.
func (c *Custody) OnJobFinish(env Env, a *app.Application, j *app.Job) {
	c.reallocate(env)
}

// OnExecutorIdle implements Manager. Custody is invoked "whenever new jobs
// are submitted into the system or existing jobs finish and leave the
// system" (§V) — not on every task completion. An idle executor therefore
// stays with its owner while the owner still has queued work; only when the
// owner has nothing left does the driver's release message ("a specific
// executor can be released", §V) trigger a reallocation.
func (c *Custody) OnExecutorIdle(env Env, e *cluster.Executor) {
	owner := e.Owner()
	if owner == cluster.NoApp {
		return
	}
	for _, a := range env.Apps() {
		if a.ID == owner {
			if env.PendingCount(a) > 0 {
				return // the owner will reuse it
			}
			break
		}
	}
	c.reallocate(env)
}

// OnNodeFail implements Manager: replace the lost executors data-aware.
func (c *Custody) OnNodeFail(env Env, node int) {
	c.reallocate(env)
}

// OnExecutorFail implements ExecutorFaultHandler: an executor died
// mid-plan; re-run allocation so the lost capacity is replaced data-aware
// instead of leaving its covered tasks stranded.
func (c *Custody) OnExecutorFail(env Env, execID int) {
	c.reallocate(env)
}

// OnExecutorRecover implements ExecutorFaultHandler: restored capacity may
// carry locality; re-plan to use it.
func (c *Custody) OnExecutorRecover(env Env, execID int) {
	c.reallocate(env)
}

// Reallocate forces one full allocation round outside the usual event
// callbacks. The model-based checker (internal/modelcheck) uses it to drive
// rounds at arbitrary points in a command sequence; it is equivalent to the
// round every On* callback triggers.
func (c *Custody) Reallocate(env Env) { c.reallocate(env) }

// reallocate snapshots demand, reclaims useless idle executors, and applies
// Algorithms 1+2.
func (c *Custody) reallocate(env Env) {
	env.Metrics().Reallocations++
	cl := env.Cluster()
	apps := env.Apps()
	share := fairShare(env)

	type appPlan struct {
		a       *app.Application
		pending []*app.Task // unlaunched input tasks
		covered map[*app.Task]bool
		byKey   map[[2]int]*app.Task // (job, task index) → task
	}
	plans := make([]*appPlan, len(apps))
	for i, a := range apps {
		p := &appPlan{a: a, pending: env.PendingInputTasks(a), covered: map[*app.Task]bool{}, byKey: map[[2]int]*app.Task{}}
		for _, t := range p.pending {
			p.byKey[[2]int{t.Job.ID, t.Index}] = t
		}
		plans[i] = p
	}

	// Phase 1: decide which held idle executors to keep. Busy executors
	// cannot move; their free slots already cover pending local tasks. An
	// idle executor stays with its app if its node stores the block of a
	// pending task not yet covered (Sticky), up to its slot capacity and
	// the app's budget; otherwise it returns to the pool.
	coverTasks := func(p *appPlan, node, slots int) int {
		n := 0
		for _, t := range p.pending {
			if n == slots {
				break
			}
			if p.covered[t] {
				continue
			}
			if onNode(env, t, node) {
				p.covered[t] = true
				n++
			}
		}
		return n
	}
	for i, a := range apps {
		p := plans[i]
		owned := cl.Owned(a.ID)
		kept := 0
		busy := 0
		for _, e := range owned {
			if e.Running() > 0 {
				busy++
			}
		}
		for _, e := range owned {
			if e.Running() > 0 {
				// Free slots on busy executors serve pending work in place.
				coverTasks(p, e.Node.ID, e.FreeSlots())
				continue
			}
			keep := false
			if c.Sticky && busy+kept < share {
				keep = coverTasks(p, e.Node.ID, e.Slots()) > 0
			}
			if keep {
				kept++
			} else {
				env.Release(e)
				env.Metrics().ExecutorMigrations++
			}
		}
	}

	// Phase 2: build core demands from uncovered pending tasks, grouped by
	// job; history comes from the app's finished-job accounting.
	demands := c.demandBuf[:0]
	for i, a := range apps {
		p := plans[i]
		d := core.AppDemand{
			App:        int(a.ID),
			Budget:     share,
			Held:       cl.OwnedCount(a.ID),
			ExtraTasks: env.PendingCount(a) - len(p.pending),
			LocalJobs:  a.LocalJobs,
			TotalJobs:  a.TotalJobs,
			LocalTasks: a.LocalTasks,
			TotalTasks: a.TotalTasks,
		}
		byJob := map[int][]*app.Task{}
		var jobIDs []int
		for _, t := range p.pending {
			if p.covered[t] {
				continue
			}
			if _, ok := byJob[t.Job.ID]; !ok {
				jobIDs = append(jobIDs, t.Job.ID)
			}
			byJob[t.Job.ID] = append(byJob[t.Job.ID], t)
		}
		sort.Ints(jobIDs)
		for _, jid := range jobIDs {
			jd := core.JobDemand{Job: jid}
			for _, t := range byJob[jid] {
				nodes, fb := demandNodes(env, t)
				jd.Tasks = append(jd.Tasks, core.TaskDemand{
					Task:     t.Index,
					Block:    t.Block,
					Nodes:    nodes,
					Fallback: fb,
					Warm:     warmNodes(env, t, nodes, fb),
				})
			}
			d.Jobs = append(d.Jobs, jd)
		}
		demands = append(demands, d)
	}

	// Phase 3: allocate idle executors (slot-aware) on the warm session, so
	// round-trips reuse the previous round's index structures and arenas.
	idle := c.idleBuf[:0]
	for _, e := range cl.Free() {
		idle = append(idle, core.ExecInfo{ID: e.ID, Node: e.Node.ID, Slots: e.Slots()})
	}
	if c.sess == nil {
		c.sess = core.NewSession()
	}
	// Sharded builds default to rack affinity: install (and on a shard-count
	// change rebuild) the cluster's rack-affine shard map unless the caller
	// supplied a ShardFn of their own. autoShardFor distinguishes "ours" from
	// "theirs" so a caller-provided map is never silently replaced.
	if c.Opts.Shards > 1 && (c.Opts.ShardFn == nil || (c.autoShardFor != 0 && c.autoShardFor != c.Opts.Shards)) {
		c.Opts.ShardFn = cluster.RackShardFn(cl, c.Opts.Shards)
		c.autoShardFor = c.Opts.Shards
	}
	var plan core.Plan
	if c.Policy != nil {
		plan = c.Policy.Allocate(demands, idle, c.Opts)
	} else {
		plan = c.sess.Allocate(demands, idle, c.Opts)
	}
	c.demandBuf = demands
	c.idleBuf = idle
	if c.PlanCheck && c.PlanCheckErr == nil {
		c.PlanCheckErr = policy.Validate(demands, idle, plan, c.Opts)
	}
	if c.Policy == nil && c.SelfCheck && c.SelfCheckErr == nil {
		refOpts := c.Opts
		refOpts.Observer = nil
		want := core.AllocateReference(demands, idle, refOpts)
		if got, wantS := fmt.Sprintf("%#v", plan), fmt.Sprintf("%#v", want); got != wantS {
			c.SelfCheckErr = fmt.Errorf("allocation diverged from reference oracle at reallocation %d:\n got  %s\n want %s",
				env.Metrics().Reallocations, got, wantS)
		}
	}
	for _, as := range plan.Assignments {
		e := cl.Executor(as.Exec)
		if e.Owner() != cluster.AppID(as.App) {
			env.Allocate(e, cluster.AppID(as.App))
		}
		if c.EmitHints && as.Local {
			for _, p := range plans {
				if int(p.a.ID) != as.App {
					continue
				}
				if t, ok := p.byKey[[2]int{as.Job, as.Task}]; ok {
					env.Hint(t, as.Exec)
				}
				break
			}
		}
	}
}

// demandNodes returns the preferred nodes of a task's block. When every
// advertised replica holder is usable — the healthy-cluster fast path — the
// NameNode's answer passes through untouched, preserving the paper's
// behavior exactly. When locality metadata is stale or holders are down,
// the preference degrades gracefully: usable replica holders first, then
// usable nodes rack-local to a replica, then location-free. fallback is
// true only in the rack-local case, where the returned nodes are stand-ins
// rather than replica holders (a grant there is a rack-fallback grant in
// the provenance log, not a local-block one).
// warmNodes marks which preferred nodes hold the task's block warm in their
// block cache — provenance only (grants on warm nodes are tagged cache-hit
// in obsv). Nil whenever the cache tier is disabled (the default), no node
// is warm, or the nodes are rack-local stand-ins rather than holders, so
// the cacheless demand build stays allocation-free.
func warmNodes(env Env, t *app.Task, nodes []int, fallback bool) []bool {
	nn := env.NameNode()
	if fallback || !nn.CacheEnabled() {
		return nil
	}
	var warm []bool
	for i, n := range nodes {
		if nn.CacheContains(n, t.Block) {
			if warm == nil {
				warm = make([]bool, len(nodes))
			}
			warm[i] = true
		}
	}
	return warm
}

func demandNodes(env Env, t *app.Task) (nodes []int, fallback bool) {
	nn := env.NameNode()
	cl := env.Cluster()
	locs := nn.Locations(t.Block)
	usable := func(n int) bool { return cl.NodeAlive(n) && nn.DataNode(n).Alive() }
	ok := true
	for _, n := range locs {
		if !usable(n) {
			ok = false
			break
		}
	}
	if ok {
		return locs, false
	}
	fb := core.FallbackNodes(locs, usable, nn.Rack, cl.NumNodes())
	// FallbackNodes returns either the usable subset of the advertised
	// holders (still genuinely local) or rack-local non-holders; the two
	// sets are disjoint, so membership of the first element decides.
	if len(fb) > 0 && !containsNode(locs, fb[0]) {
		return fb, true
	}
	return fb, false
}

// containsNode reports whether nodes contains n (replica lists are short).
//
//custody:noalloc
func containsNode(nodes []int, n int) bool {
	for _, x := range nodes {
		if x == n {
			return true
		}
	}
	return false
}

// onNode reports whether the task's block has a replica on the node.
func onNode(env Env, t *app.Task, node int) bool {
	if !t.IsInput() {
		return false
	}
	for _, n := range env.NameNode().Locations(t.Block) {
		if n == node {
			return true
		}
	}
	return false
}
