package manager

import (
	"repro/internal/app"
	"repro/internal/cluster"
)

// YARN models YARN-style dynamic resource pools (§VII: "the resource
// manager in YARN dynamically partitions the cluster resources among
// various applications into different resource pools, which only captures
// computation resources as metrics and still lacks data awareness"):
// executors are granted on demand — one per pending task, up to the fair
// share — from whatever happens to be free, and are returned to the pool
// when the owner runs dry. It is dynamic like Custody but data-oblivious
// like the standalone manager.
type YARN struct{}

// NewYARN builds the YARN-like manager.
func NewYARN() *YARN { return &YARN{} }

// Name implements Manager.
func (y *YARN) Name() string { return "yarn-pool" }

// Register implements Manager: nothing up front; pools grow on demand.
func (y *YARN) Register(env Env) {}

// OnJobSubmit implements Manager: grow the submitting application's pool.
func (y *YARN) OnJobSubmit(env Env, a *app.Application, j *app.Job) {
	y.grow(env)
}

// OnJobFinish implements Manager.
func (y *YARN) OnJobFinish(env Env, a *app.Application, j *app.Job) {
	y.grow(env)
}

// OnExecutorIdle implements Manager: shrink pools with no demand, then let
// someone else grow.
func (y *YARN) OnExecutorIdle(env Env, e *cluster.Executor) {
	owner := e.Owner()
	if owner != cluster.NoApp && e.Running() == 0 {
		for _, a := range env.Apps() {
			if a.ID == owner {
				if env.PendingCount(a) == 0 {
					env.Release(e)
				}
				break
			}
		}
	}
	y.grow(env)
}

// OnNodeFail implements Manager: regrow pools from surviving capacity.
func (y *YARN) OnNodeFail(env Env, node int) {
	y.grow(env)
}

// grow hands free executors to applications with unmet demand, most-starved
// first (demand minus held capacity), entirely ignoring data placement.
func (y *YARN) grow(env Env) {
	cl := env.Cluster()
	share := fairShare(env)
	for {
		free := cl.Free()
		if len(free) == 0 {
			return
		}
		var pick *app.Application
		best := 0
		for _, a := range env.Apps() {
			held := cl.OwnedCount(a.ID)
			if held >= share {
				continue
			}
			slots := 0
			for _, e := range cl.Owned(a.ID) {
				slots += e.FreeSlots()
			}
			deficit := env.PendingCount(a) - slots
			if deficit > best {
				best = deficit
				pick = a
			}
		}
		if pick == nil {
			return
		}
		// Data-unaware: take the lowest-numbered free executor.
		env.Allocate(free[0], pick.ID)
	}
}
