package manager

import (
	"repro/internal/app"
	"repro/internal/cluster"
)

// Offer is a Mesos-like dynamic manager (§II-A): idle resources are offered
// to applications in turn; a data-aware application (running delay
// scheduling) rejects offers that carry no locality for its pending tasks,
// so the manager "has to resend an offer to multiple applications before any
// of them accepts it". Rejected executors are re-offered after RetryDelay.
type Offer struct {
	// RetryDelay is the pause before re-offering an executor every
	// application declined. Models Mesos's offer round-trip.
	RetryDelay float64

	rotation int
	retries  map[int]bool // executor ID → retry pending
}

// NewOffer builds the offer-based manager with a 1-second retry delay.
func NewOffer() *Offer {
	return &Offer{RetryDelay: 1.0, retries: map[int]bool{}}
}

// Name implements Manager.
func (o *Offer) Name() string { return "mesos-offer" }

// Register implements Manager: nothing is allocated up front.
func (o *Offer) Register(env Env) {}

// OnJobSubmit implements Manager: new demand → run an offer round.
func (o *Offer) OnJobSubmit(env Env, a *app.Application, j *app.Job) {
	o.offerAll(env)
}

// OnJobFinish implements Manager.
func (o *Offer) OnJobFinish(env Env, a *app.Application, j *app.Job) {
	o.offerAll(env)
}

// OnExecutorIdle implements Manager: fine-grained sharing returns the
// executor to the pool, then re-offers it.
func (o *Offer) OnExecutorIdle(env Env, e *cluster.Executor) {
	if e.Owner() != cluster.NoApp && e.Running() == 0 {
		env.Release(e)
	}
	o.offerOne(env, e)
}

// OnNodeFail implements Manager: re-offer the surviving free executors.
func (o *Offer) OnNodeFail(env Env, node int) {
	o.offerAll(env)
}

// offerAll offers every free executor.
func (o *Offer) offerAll(env Env) {
	for _, e := range env.Cluster().Free() {
		o.offerOne(env, e)
	}
}

// offerOne walks the applications round-robin, offering the executor to
// each until one accepts. Applications at their fair-share cap are skipped.
func (o *Offer) offerOne(env Env, e *cluster.Executor) {
	if e.Owner() != cluster.NoApp {
		return // someone took it meanwhile
	}
	apps := env.Apps()
	if len(apps) == 0 {
		return
	}
	share := fairShare(env)
	cl := env.Cluster()
	start := o.rotation
	o.rotation = (o.rotation + 1) % len(apps)
	for k := 0; k < len(apps); k++ {
		a := apps[(start+k)%len(apps)]
		if cl.OwnedCount(a.ID) >= share {
			continue
		}
		if env.TryLaunch(e, a) {
			return
		}
		env.Metrics().OfferRejections++
	}
	// Everyone declined: retry later (delay-scheduling waits may expire),
	// but only while someone still has queued work.
	anyPending := false
	for _, a := range apps {
		if env.PendingCount(a) > 0 {
			anyPending = true
			break
		}
	}
	if !anyPending || o.retries[e.ID] {
		return
	}
	o.retries[e.ID] = true
	env.Schedule(o.RetryDelay, func() {
		o.retries[e.ID] = false
		o.offerOne(env, e)
	})
}
