package manager

import (
	"testing"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hdfs"
	"repro/internal/metrics"
	"repro/internal/xrand"
)

// fakeEnv is a controllable manager.Env for unit tests.
type fakeEnv struct {
	cl      *cluster.Cluster
	nn      *hdfs.NameNode
	apps    []*app.Application
	pending map[cluster.AppID][]*app.Task
	col     *metrics.Collector
	now     float64
	sched   []func()
	hints   []int
	accepts map[cluster.AppID]bool // TryLaunch outcomes
}

func newFakeEnv(nodes, execPerNode, slots int) *fakeEnv {
	return &fakeEnv{
		cl:      cluster.New(cluster.Config{Nodes: nodes, ExecutorsPerNode: execPerNode, SlotsPerExecutor: slots}),
		nn:      hdfs.NewNameNode(nodes, xrand.New(1)),
		pending: map[cluster.AppID][]*app.Task{},
		col:     metrics.NewCollector(),
		accepts: map[cluster.AppID]bool{},
	}
}

func (f *fakeEnv) addApp(name string) *app.Application {
	a := app.NewApplication(cluster.AppID(len(f.apps)), name)
	f.apps = append(f.apps, a)
	return a
}

func (f *fakeEnv) Now() float64                { return f.now }
func (f *fakeEnv) Cluster() *cluster.Cluster   { return f.cl }
func (f *fakeEnv) NameNode() *hdfs.NameNode    { return f.nn }
func (f *fakeEnv) Apps() []*app.Application    { return f.apps }
func (f *fakeEnv) Metrics() *metrics.Collector { return f.col }

func (f *fakeEnv) PendingInputTasks(a *app.Application) []*app.Task {
	var out []*app.Task
	for _, t := range f.pending[a.ID] {
		if t.IsInput() {
			out = append(out, t)
		}
	}
	return out
}

func (f *fakeEnv) PendingCount(a *app.Application) int { return len(f.pending[a.ID]) }

func (f *fakeEnv) Allocate(e *cluster.Executor, id cluster.AppID) {
	if err := f.cl.Allocate(e, id); err != nil {
		panic(err)
	}
}

func (f *fakeEnv) Release(e *cluster.Executor) {
	if err := f.cl.Release(e); err != nil {
		panic(err)
	}
}

func (f *fakeEnv) TryLaunch(e *cluster.Executor, a *app.Application) bool {
	if !f.accepts[a.ID] {
		return false
	}
	f.Allocate(e, a.ID)
	f.cl.StartTask(e)
	return true
}

func (f *fakeEnv) Schedule(delay float64, fn func()) { f.sched = append(f.sched, fn) }

func (f *fakeEnv) Hint(t *app.Task, execID int) { f.hints = append(f.hints, execID) }

// mkTask builds a pending input task for a job of the app.
func mkTask(a *app.Application, jobID, idx int, block hdfs.BlockID) *app.Task {
	j := &app.Job{ID: jobID, App: a}
	s := &app.Stage{ID: 0, Job: j}
	return &app.Task{Job: j, Stage: s, Index: idx, Block: block, State: app.TaskReady, RanOnNode: -1}
}

func TestStandaloneFairShare(t *testing.T) {
	env := newFakeEnv(10, 2, 1)
	a0 := env.addApp("a0")
	a1 := env.addApp("a1")
	m := NewStandalone(xrand.New(3), false)
	m.Register(env)
	if got := env.cl.OwnedCount(a0.ID); got != 10 {
		t.Fatalf("app0 executors = %d, want 10 (20/2)", got)
	}
	if got := env.cl.OwnedCount(a1.ID); got != 10 {
		t.Fatalf("app1 executors = %d, want 10", got)
	}
	if len(env.cl.Free()) != 0 {
		t.Fatalf("free executors = %d", len(env.cl.Free()))
	}
}

func TestStandaloneSpreadOutDistinctNodes(t *testing.T) {
	env := newFakeEnv(10, 2, 1)
	a0 := env.addApp("a0")
	env.addApp("a1")
	m := NewStandalone(xrand.New(3), true)
	m.Register(env)
	// Spread-out: 10 executors over 10 nodes → all nodes distinct.
	nodes := env.cl.NodesOf(a0.ID)
	if len(nodes) != 10 {
		t.Fatalf("spread-out app covers %d nodes, want 10", len(nodes))
	}
}

func TestStandaloneStatic(t *testing.T) {
	env := newFakeEnv(4, 1, 1)
	a := env.addApp("a")
	m := NewStandalone(xrand.New(3), false)
	m.Register(env)
	before := env.cl.OwnedCount(a.ID)
	m.OnJobSubmit(env, a, nil)
	m.OnJobFinish(env, a, nil)
	m.OnExecutorIdle(env, env.cl.Executor(0))
	if env.cl.OwnedCount(a.ID) != before {
		t.Fatal("standalone allocation changed after registration")
	}
}

func TestCustodyAllocatesOnSubmit(t *testing.T) {
	env := newFakeEnv(6, 1, 1)
	a := env.addApp("a")
	f, err := env.nn.Create("in", 128<<20) // one block
	if err != nil {
		t.Fatal(err)
	}
	task := mkTask(a, 1, 0, f.Blocks[0].ID)
	env.pending[a.ID] = []*app.Task{task}
	m := NewCustody()
	m.Register(env) // no allocation at registration (§V)
	if env.cl.OwnedCount(a.ID) != 0 {
		t.Fatal("custody allocated at registration")
	}
	m.OnJobSubmit(env, a, task.Job)
	owned := env.cl.Owned(a.ID)
	if len(owned) == 0 {
		t.Fatal("custody allocated nothing on submit")
	}
	locs := env.nn.Locations(f.Blocks[0].ID)
	found := false
	for _, e := range owned {
		for _, n := range locs {
			if e.Node.ID == n {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("no allocated executor on replica nodes %v (owned %v)", locs, owned)
	}
	if env.col.Reallocations == 0 {
		t.Fatal("reallocation counter not incremented")
	}
}

func TestCustodyRespectsBudget(t *testing.T) {
	env := newFakeEnv(4, 1, 1)
	a0 := env.addApp("a0")
	env.addApp("a1")
	// Budget = 4/2 = 2 executors per app; app0 demands 4 blocks.
	f, _ := env.nn.Create("in", 4*128<<20)
	var tasks []*app.Task
	for i, b := range f.Blocks {
		tasks = append(tasks, mkTask(a0, 1, i, b.ID))
	}
	env.pending[a0.ID] = tasks
	m := NewCustody()
	m.OnJobSubmit(env, a0, tasks[0].Job)
	if got := env.cl.OwnedCount(a0.ID); got > 2 {
		t.Fatalf("app0 owns %d executors, budget is 2", got)
	}
}

func TestCustodyIdleExecutorKeptWhilePending(t *testing.T) {
	env := newFakeEnv(4, 1, 1)
	a := env.addApp("a")
	f, _ := env.nn.Create("in", 128<<20)
	task := mkTask(a, 1, 0, f.Blocks[0].ID)
	env.pending[a.ID] = []*app.Task{task}
	m := NewCustody()
	m.OnJobSubmit(env, a, task.Job)
	owned := env.cl.Owned(a.ID)
	if len(owned) == 0 {
		t.Fatal("no allocation")
	}
	// Executor idles but the app still has queued work → keep.
	m.OnExecutorIdle(env, owned[0])
	if owned[0].Owner() != a.ID {
		t.Fatal("custody reclaimed an executor its owner still needs")
	}
	// No queued work → reallocation may reclaim it.
	env.pending[a.ID] = nil
	m.OnExecutorIdle(env, owned[0])
	if owned[0].Owner() == a.ID {
		t.Fatal("custody kept an executor with no demand")
	}
}

func TestCustodyStickyKeepsCoveringExecutor(t *testing.T) {
	env := newFakeEnv(4, 1, 1)
	a := env.addApp("a")
	f, _ := env.nn.Create("in", 128<<20)
	task := mkTask(a, 1, 0, f.Blocks[0].ID)
	env.pending[a.ID] = []*app.Task{task}
	m := NewCustody()
	m.OnJobSubmit(env, a, task.Job)
	first := env.cl.Owned(a.ID)
	// A second reallocation must not migrate the covering executor.
	m.OnJobSubmit(env, a, task.Job)
	second := env.cl.Owned(a.ID)
	if len(first) == 0 || len(second) == 0 || first[0].ID != second[0].ID {
		t.Fatalf("sticky executor migrated: %v → %v", first, second)
	}
}

func TestOfferRoundRobinAndRejection(t *testing.T) {
	env := newFakeEnv(2, 1, 1)
	a0 := env.addApp("a0")
	a1 := env.addApp("a1")
	env.accepts[a0.ID] = false
	env.accepts[a1.ID] = true
	env.pending[a0.ID] = []*app.Task{mkTask(a0, 1, 0, -1)}
	m := NewOffer()
	m.OnJobSubmit(env, a0, nil)
	// a1 accepts everything; a0 rejections counted.
	if env.col.OfferRejections == 0 {
		t.Fatal("no rejections recorded")
	}
	if env.cl.OwnedCount(a1.ID) == 0 {
		t.Fatal("accepting app received nothing")
	}
}

func TestOfferRetryScheduledOnlyWithPendingWork(t *testing.T) {
	env := newFakeEnv(1, 1, 1)
	a0 := env.addApp("a0")
	env.accepts[a0.ID] = false
	m := NewOffer()
	// No pending work → no retry timers.
	m.OnJobSubmit(env, a0, nil)
	if len(env.sched) != 0 {
		t.Fatalf("retry scheduled with no pending work (%d)", len(env.sched))
	}
	// Pending work → exactly one retry per executor.
	env.pending[a0.ID] = []*app.Task{mkTask(a0, 1, 0, -1)}
	m.OnJobSubmit(env, a0, nil)
	if len(env.sched) != 1 {
		t.Fatalf("retries scheduled = %d, want 1", len(env.sched))
	}
	// A second round must not double-schedule the same executor.
	m.OnJobSubmit(env, a0, nil)
	if len(env.sched) != 1 {
		t.Fatalf("duplicate retry scheduled (%d)", len(env.sched))
	}
}

func TestOfferReleasesIdleExecutor(t *testing.T) {
	env := newFakeEnv(2, 1, 1)
	a0 := env.addApp("a0")
	env.accepts[a0.ID] = false
	e := env.cl.Executor(0)
	env.cl.Allocate(e, a0.ID)
	m := NewOffer()
	m.OnExecutorIdle(env, e)
	if e.Owner() == a0.ID {
		t.Fatal("offer manager kept an idle executor allocated")
	}
}

func TestFairShareMath(t *testing.T) {
	env := newFakeEnv(5, 2, 1)
	env.addApp("a")
	env.addApp("b")
	env.addApp("c")
	if got := fairShare(env); got != 3 { // 10/3
		t.Fatalf("fairShare = %d, want 3", got)
	}
}

func TestCustodyMultiSlotAllocation(t *testing.T) {
	env := newFakeEnv(2, 1, 4) // 2 executors, 4 slots each
	a := env.addApp("a")
	f, _ := env.nn.Create("in", 4*128<<20) // 4 blocks over 2 nodes
	var tasks []*app.Task
	for i, b := range f.Blocks {
		tasks = append(tasks, mkTask(a, 1, i, b.ID))
	}
	env.pending[a.ID] = tasks
	m := NewCustody()
	m.OnJobSubmit(env, a, tasks[0].Job)
	// Budget = 2 executors; all 4 tasks can be local across 8 slots.
	if got := env.cl.OwnedCount(a.ID); got == 0 || got > 2 {
		t.Fatalf("owned executors = %d", got)
	}
}

// Interface compliance.
var (
	_ Manager = (*Standalone)(nil)
	_ Manager = (*Custody)(nil)
	_ Manager = (*Offer)(nil)
	_ Env     = (*fakeEnv)(nil)
	_         = core.DefaultOptions
)

func TestYARNGrowsOnDemand(t *testing.T) {
	env := newFakeEnv(4, 1, 1)
	a := env.addApp("a")
	m := NewYARN()
	m.Register(env)
	if env.cl.OwnedCount(a.ID) != 0 {
		t.Fatal("YARN allocated at registration")
	}
	// Demand of 2 tasks → pool grows to 2 executors (deficit-driven).
	env.pending[a.ID] = []*app.Task{mkTask(a, 1, 0, -1), mkTask(a, 1, 1, -1)}
	m.OnJobSubmit(env, a, nil)
	if got := env.cl.OwnedCount(a.ID); got != 2 {
		t.Fatalf("pool = %d executors, want 2", got)
	}
}

func TestYARNRespectsFairShare(t *testing.T) {
	env := newFakeEnv(4, 1, 1) // share = 4/2 = 2
	a0 := env.addApp("a0")
	env.addApp("a1")
	var tasks []*app.Task
	for i := 0; i < 10; i++ {
		tasks = append(tasks, mkTask(a0, 1, i, -1))
	}
	env.pending[a0.ID] = tasks
	m := NewYARN()
	m.OnJobSubmit(env, a0, nil)
	if got := env.cl.OwnedCount(a0.ID); got > 2 {
		t.Fatalf("pool = %d executors, share is 2", got)
	}
}

func TestYARNShrinksIdlePool(t *testing.T) {
	env := newFakeEnv(4, 1, 1)
	a := env.addApp("a")
	env.pending[a.ID] = []*app.Task{mkTask(a, 1, 0, -1)}
	m := NewYARN()
	m.OnJobSubmit(env, a, nil)
	owned := env.cl.Owned(a.ID)
	if len(owned) == 0 {
		t.Fatal("no allocation")
	}
	// Demand gone → idle executor released.
	env.pending[a.ID] = nil
	m.OnExecutorIdle(env, owned[0])
	if owned[0].Owner() == a.ID {
		t.Fatal("YARN kept an idle executor with no demand")
	}
}

func TestYARNIsDataUnaware(t *testing.T) {
	// YARN must pick the lowest-numbered free executor regardless of where
	// the task's block lives.
	env := newFakeEnv(6, 1, 1)
	a := env.addApp("a")
	f, _ := env.nn.Create("in", 128<<20)
	task := mkTask(a, 1, 0, f.Blocks[0].ID)
	env.pending[a.ID] = []*app.Task{task}
	m := NewYARN()
	m.OnJobSubmit(env, a, nil)
	owned := env.cl.Owned(a.ID)
	if len(owned) != 1 || owned[0].ID != 0 {
		t.Fatalf("YARN allocation = %v, want executor 0 (data-unaware)", owned)
	}
}

func TestCustodyEmitsHints(t *testing.T) {
	env := newFakeEnv(6, 1, 1)
	a := env.addApp("a")
	f, _ := env.nn.Create("in", 2*128<<20)
	var tasks []*app.Task
	job := &app.Job{ID: 1, App: a}
	stage := &app.Stage{ID: 0, Job: job}
	for i, b := range f.Blocks {
		tasks = append(tasks, &app.Task{Job: job, Stage: stage, Index: i, Block: b.ID, State: app.TaskReady, RanOnNode: -1})
	}
	env.pending[a.ID] = tasks
	m := NewCustody()
	m.OnJobSubmit(env, a, job)
	if len(env.hints) != 0 {
		t.Fatalf("hints emitted with EmitHints off: %v", env.hints)
	}
	// Reset and re-run with hints on.
	env2 := newFakeEnv(6, 1, 1)
	a2 := env2.addApp("a")
	f2, _ := env2.nn.Create("in", 2*128<<20)
	var tasks2 []*app.Task
	job2 := &app.Job{ID: 1, App: a2}
	stage2 := &app.Stage{ID: 0, Job: job2}
	for i, b := range f2.Blocks {
		tasks2 = append(tasks2, &app.Task{Job: job2, Stage: stage2, Index: i, Block: b.ID, State: app.TaskReady, RanOnNode: -1})
	}
	env2.pending[a2.ID] = tasks2
	m2 := NewCustody()
	m2.EmitHints = true
	m2.OnJobSubmit(env2, a2, job2)
	if len(env2.hints) == 0 {
		t.Fatal("no hints emitted with EmitHints on")
	}
}
