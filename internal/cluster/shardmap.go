package cluster

// RackShardFn returns a rack-affine node → shard assignment for the
// cluster: every node of a rack lands on the same shard, chosen by a jump
// consistent hash of the rack ID. The Custody manager installs it as
// core.Options.ShardFn so the allocator's sharded round build keeps a
// rack's executor indexes — and the rack-local fallback lookups that hit
// them — inside one shard's partition.
//
// The returned function is pure and deterministic: it captures a
// precomputed per-node table, never the live cluster, so concurrent build
// workers can call it freely and the allocation plan cannot depend on
// cluster mutation order. (The plan does not depend on the partition at
// all — see DESIGN.md §14 — only build locality does.)
func RackShardFn(c *Cluster, shards int) func(node int) int {
	if shards < 1 {
		shards = 1
	}
	m := make([]int, len(c.nodes))
	for i, n := range c.nodes {
		m[i] = rackJumpHash(uint64(n.Rack), shards)
	}
	return func(node int) int {
		if node < 0 || node >= len(m) {
			return 0
		}
		return m[node]
	}
}

// rackJumpHash is Lamping & Veach's jump consistent hash (a private twin of
// internal/core's — cluster sits below core in the layering, so it cannot
// import it): O(ln buckets) and stable under bucket-count growth, so
// resizing the shard count moves only ~1/shards of the racks.
func rackJumpHash(key uint64, buckets int) int {
	var b, j int64 = -1, 0
	for j < int64(buckets) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}
