package cluster

import (
	"testing"

	"repro/internal/xrand"
)

// TestValidateUnderChurn is a property-style test: no interleaving of
// FailNode / RecoverNode / FailExecutor / RecoverExecutor / Allocate /
// Release / StartTask / FinishTask may ever break Validate's invariants.
func TestValidateUnderChurn(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		rng := xrand.New(seed).Fork("cluster-churn")
		c := New(Config{Nodes: 8, ExecutorsPerNode: 2, SlotsPerExecutor: 2, RackSize: 4})
		apps := []AppID{1, 2, 3}
		for step := 0; step < 2000; step++ {
			switch rng.Intn(8) {
			case 0: // fail a node
				c.FailNode(rng.Intn(c.NumNodes()))
			case 1: // recover a node
				c.RecoverNode(rng.Intn(c.NumNodes()))
			case 2: // crash one executor
				c.FailExecutor(c.Executor(rng.Intn(c.TotalExecutors())))
			case 3: // restart one executor
				c.RecoverExecutor(c.Executor(rng.Intn(c.TotalExecutors())))
			case 4: // allocate a free executor
				if free := c.Free(); len(free) > 0 {
					e := free[rng.Intn(len(free))]
					if err := c.Allocate(e, apps[rng.Intn(len(apps))]); err != nil {
						t.Fatalf("seed %d step %d: Allocate free executor: %v", seed, step, err)
					}
				}
			case 5: // release an idle owned executor
				if owned := c.Owned(apps[rng.Intn(len(apps))]); len(owned) > 0 {
					e := owned[rng.Intn(len(owned))]
					if e.Running() == 0 {
						if err := c.Release(e); err != nil {
							t.Fatalf("seed %d step %d: Release idle executor: %v", seed, step, err)
						}
					}
				}
			case 6: // start a task on an owned executor with a free slot
				if owned := c.Owned(apps[rng.Intn(len(apps))]); len(owned) > 0 {
					e := owned[rng.Intn(len(owned))]
					if !e.Busy() {
						if err := c.StartTask(e); err != nil {
							t.Fatalf("seed %d step %d: StartTask: %v", seed, step, err)
						}
					}
				}
			case 7: // finish a running task
				if owned := c.Owned(apps[rng.Intn(len(apps))]); len(owned) > 0 {
					e := owned[rng.Intn(len(owned))]
					if e.Running() > 0 {
						if err := c.FinishTask(e); err != nil {
							t.Fatalf("seed %d step %d: FinishTask: %v", seed, step, err)
						}
					}
				}
			}
			if err := c.Validate(); err != nil {
				t.Fatalf("seed %d step %d: Validate: %v", seed, step, err)
			}
		}
	}
}

func TestFailExecutor(t *testing.T) {
	c := New(Config{Nodes: 2, ExecutorsPerNode: 2})
	e := c.Executor(0)
	if err := c.Allocate(e, 7); err != nil {
		t.Fatal(err)
	}
	if err := c.StartTask(e); err != nil {
		t.Fatal(err)
	}
	if !c.FailExecutor(e) {
		t.Fatal("FailExecutor on a live executor returned false")
	}
	if c.FailExecutor(e) {
		t.Fatal("double FailExecutor returned true")
	}
	if e.Alive() || e.Owner() != NoApp || e.Running() != 0 {
		t.Fatalf("failed executor state: alive=%v owner=%d running=%d", e.Alive(), e.Owner(), e.Running())
	}
	if !c.NodeAlive(0) {
		t.Fatal("node reported down with a sibling executor still alive")
	}
	if err := c.Allocate(e, 7); err == nil {
		t.Fatal("Allocate on a dead executor succeeded")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if !c.RecoverExecutor(e) {
		t.Fatal("RecoverExecutor on a dead executor returned false")
	}
	if c.RecoverExecutor(e) {
		t.Fatal("RecoverExecutor on a live executor returned true")
	}
	if err := c.Allocate(e, 7); err != nil {
		t.Fatalf("Allocate after recovery: %v", err)
	}
}

func TestNodeAlive(t *testing.T) {
	c := New(Config{Nodes: 2, ExecutorsPerNode: 2})
	if !c.NodeAlive(0) {
		t.Fatal("fresh node reported down")
	}
	c.FailExecutor(c.Node(0).Executors()[0])
	if !c.NodeAlive(0) {
		t.Fatal("node down after one of two executors crashed")
	}
	c.FailExecutor(c.Node(0).Executors()[1])
	if c.NodeAlive(0) {
		t.Fatal("node alive with every executor dead")
	}
	c.FailNode(1)
	if c.NodeAlive(1) {
		t.Fatal("failed node reported alive")
	}
	c.RecoverNode(1)
	if !c.NodeAlive(1) {
		t.Fatal("recovered node reported down")
	}
}
