package cluster

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func small() *Cluster {
	return New(Config{Nodes: 4, ExecutorsPerNode: 2, SlotsPerExecutor: 1, RackSize: 2})
}

func TestConstruction(t *testing.T) {
	c := small()
	if c.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d", c.NumNodes())
	}
	if c.TotalExecutors() != 8 {
		t.Fatalf("TotalExecutors = %d", c.TotalExecutors())
	}
	for i, n := range c.Nodes() {
		if n.ID != i {
			t.Fatalf("node %d has ID %d", i, n.ID)
		}
		if len(n.Executors()) != 2 {
			t.Fatalf("node %d has %d executors", i, len(n.Executors()))
		}
		wantRack := i / 2
		if n.Rack != wantRack {
			t.Fatalf("node %d rack %d, want %d", i, n.Rack, wantRack)
		}
	}
	for i, e := range c.Executors() {
		if e.ID != i {
			t.Fatalf("executor %d has ID %d", i, e.ID)
		}
		if e.Owner() != NoApp {
			t.Fatalf("fresh executor owned by %d", e.Owner())
		}
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := New(DefaultConfig())
	if c.NumNodes() != 100 {
		t.Fatalf("paper cluster has 100 nodes, got %d", c.NumNodes())
	}
	if c.TotalExecutors() != 200 {
		t.Fatalf("paper cluster has 200 executors (2/node), got %d", c.TotalExecutors())
	}
	e := c.Executor(0)
	if e.Cores != 4 || e.Slots() != 1 {
		t.Fatalf("executor resources: cores=%d slots=%d", e.Cores, e.Slots())
	}
}

func TestAllocateRelease(t *testing.T) {
	c := small()
	e := c.Executor(0)
	if err := c.Allocate(e, 1); err != nil {
		t.Fatal(err)
	}
	if e.Owner() != 1 {
		t.Fatalf("Owner = %d", e.Owner())
	}
	if err := c.Allocate(e, 2); err == nil {
		t.Fatal("double allocation succeeded")
	}
	if err := c.Allocate(c.Executor(1), NoApp); err == nil {
		t.Fatal("allocation to NoApp succeeded")
	}
	if err := c.Release(e); err != nil {
		t.Fatal(err)
	}
	if e.Owner() != NoApp {
		t.Fatal("executor still owned after Release")
	}
	if err := c.Release(e); err == nil {
		t.Fatal("double release succeeded")
	}
}

func TestReleaseBusyFails(t *testing.T) {
	c := small()
	e := c.Executor(0)
	c.Allocate(e, 1)
	c.StartTask(e)
	if err := c.Release(e); err == nil {
		t.Fatal("released an executor with a running task")
	}
	c.FinishTask(e)
	if err := c.Release(e); err != nil {
		t.Fatal(err)
	}
}

func TestTaskLifecycle(t *testing.T) {
	c := small()
	e := c.Executor(3)
	if err := c.StartTask(e); err == nil {
		t.Fatal("StartTask on unallocated executor succeeded")
	}
	c.Allocate(e, 7)
	if e.Busy() {
		t.Fatal("idle executor reports Busy")
	}
	if err := c.StartTask(e); err != nil {
		t.Fatal(err)
	}
	if !e.Busy() || e.Running() != 1 || e.FreeSlots() != 0 {
		t.Fatalf("after StartTask: busy=%v running=%d free=%d", e.Busy(), e.Running(), e.FreeSlots())
	}
	if err := c.StartTask(e); err == nil {
		t.Fatal("second StartTask on single-slot executor succeeded")
	}
	if err := c.FinishTask(e); err != nil {
		t.Fatal(err)
	}
	if err := c.FinishTask(e); err == nil {
		t.Fatal("FinishTask on idle executor succeeded")
	}
}

func TestMultiSlotExecutor(t *testing.T) {
	c := New(Config{Nodes: 1, ExecutorsPerNode: 1, SlotsPerExecutor: 3})
	e := c.Executor(0)
	c.Allocate(e, 1)
	for i := 0; i < 3; i++ {
		if err := c.StartTask(e); err != nil {
			t.Fatalf("StartTask %d: %v", i, err)
		}
	}
	if err := c.StartTask(e); err == nil {
		t.Fatal("4th task on 3-slot executor succeeded")
	}
}

func TestOwnedAndFree(t *testing.T) {
	c := small()
	c.Allocate(c.Executor(0), 1)
	c.Allocate(c.Executor(3), 1)
	c.Allocate(c.Executor(5), 2)
	if got := len(c.Owned(1)); got != 2 {
		t.Fatalf("Owned(1) = %d", got)
	}
	if got := c.OwnedCount(2); got != 1 {
		t.Fatalf("OwnedCount(2) = %d", got)
	}
	if got := len(c.Free()); got != 5 {
		t.Fatalf("Free = %d", got)
	}
	nodes := c.NodesOf(1)
	if len(nodes) != 2 || nodes[0] != 0 || nodes[1] != 1 {
		t.Fatalf("NodesOf(1) = %v (executor 0 → node 0, executor 3 → node 1)", nodes)
	}
}

func TestFreeOnNode(t *testing.T) {
	c := small()
	c.Allocate(c.Executor(0), 1) // node 0 has executors 0,1
	free := c.FreeOnNode(0)
	if len(free) != 1 || free[0].ID != 1 {
		t.Fatalf("FreeOnNode(0) = %v", free)
	}
}

func TestValidate(t *testing.T) {
	c := small()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	e := c.Executor(0)
	c.Allocate(e, 1)
	c.StartTask(e)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	e.running = 5 // corrupt
	if err := c.Validate(); err == nil {
		t.Fatal("Validate accepted corrupted state")
	}
}

// Property: random allocate/release/start/finish sequences preserve
// invariants and accounting.
func TestQuickLifecycle(t *testing.T) {
	f := func(seed uint64, ops []uint8) bool {
		rng := xrand.New(seed)
		c := New(Config{Nodes: 3, ExecutorsPerNode: 2})
		owned := map[int]AppID{}
		running := map[int]int{}
		for _, op := range ops {
			id := rng.Intn(6)
			e := c.Executor(id)
			switch op % 4 {
			case 0: // allocate
				app := AppID(rng.Intn(3))
				err := c.Allocate(e, app)
				if (owned[id] != 0) == (err == nil) && owned[id] != 0 {
					return false
				}
				if err == nil {
					owned[id] = app + 1 // store shifted to distinguish zero
				}
			case 1: // release
				err := c.Release(e)
				wantOK := owned[id] != 0 && running[id] == 0
				if wantOK != (err == nil) {
					return false
				}
				if err == nil {
					delete(owned, id)
				}
			case 2: // start
				err := c.StartTask(e)
				wantOK := owned[id] != 0 && running[id] < 1
				if wantOK != (err == nil) {
					return false
				}
				if err == nil {
					running[id]++
				}
			case 3: // finish
				err := c.FinishTask(e)
				wantOK := running[id] > 0
				if wantOK != (err == nil) {
					return false
				}
				if err == nil {
					running[id]--
				}
			}
			if c.Validate() != nil {
				return false
			}
		}
		// Cross-check ownership view.
		for id, app := range owned {
			if c.Executor(id).Owner() != AppID(app-1) {
				return false
			}
		}
		return len(c.Free())+lenOwnedAll(c) == 6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func lenOwnedAll(c *Cluster) int {
	n := 0
	for _, e := range c.Executors() {
		if e.Owner() != NoApp {
			n++
		}
	}
	return n
}

func TestFailNode(t *testing.T) {
	c := small()
	e0 := c.Node(0).Executors()[0]
	e1 := c.Node(0).Executors()[1]
	c.Allocate(e0, 1)
	c.StartTask(e0)
	c.Allocate(e1, 2)

	interrupted := c.FailNode(0)
	if len(interrupted) != 1 || interrupted[0] != e0 {
		t.Fatalf("interrupted = %v, want [e0]", interrupted)
	}
	for _, e := range c.Node(0).Executors() {
		if e.Alive() || e.Owner() != NoApp || e.Running() != 0 {
			t.Fatalf("executor %d not fully failed: %+v", e.ID, e)
		}
	}
	// Dead executors refuse allocation and are invisible to Free.
	if err := c.Allocate(e0, 1); err == nil {
		t.Fatal("allocated a dead executor")
	}
	for _, e := range c.Free() {
		if e.Node.ID == 0 {
			t.Fatal("Free returned a dead executor")
		}
	}
	if len(c.FreeOnNode(0)) != 0 {
		t.Fatal("FreeOnNode returned dead executors")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverNode(t *testing.T) {
	c := small()
	c.FailNode(1)
	c.RecoverNode(1)
	e := c.Node(1).Executors()[0]
	if !e.Alive() {
		t.Fatal("executor dead after recovery")
	}
	if err := c.Allocate(e, 1); err != nil {
		t.Fatalf("cannot allocate recovered executor: %v", err)
	}
	found := false
	for _, fe := range c.Free() {
		if fe.Node.ID == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("recovered node missing from Free")
	}
}

func TestHeterogeneousSpeeds(t *testing.T) {
	c := New(Config{Nodes: 10, ExecutorsPerNode: 1, SlowNodeFraction: 0.2, SlowFactor: 4})
	slow := 0
	for _, n := range c.Nodes() {
		switch n.Speed {
		case 1:
		case 0.25:
			slow++
		default:
			t.Fatalf("node %d speed %v", n.ID, n.Speed)
		}
	}
	if slow != 2 {
		t.Fatalf("slow nodes = %d, want 2 (20%% of 10)", slow)
	}
	// Homogeneous default.
	c2 := New(Config{Nodes: 4, ExecutorsPerNode: 1})
	for _, n := range c2.Nodes() {
		if n.Speed != 1 {
			t.Fatalf("homogeneous node %d speed %v", n.ID, n.Speed)
		}
	}
}
