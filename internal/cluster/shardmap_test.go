package cluster

import "testing"

func shardTestCluster(t *testing.T, nodes, rackSize int) *Cluster {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Nodes = nodes
	cfg.ExecutorsPerNode = 1
	cfg.RackSize = rackSize
	return New(cfg)
}

// TestRackShardFnAffinity pins the rack-affinity contract: every node of a
// rack maps to the same shard, and every shard index is in range.
func TestRackShardFnAffinity(t *testing.T) {
	c := shardTestCluster(t, 64, 4)
	for _, shards := range []int{1, 2, 4, 16} {
		fn := RackShardFn(c, shards)
		rackShard := map[int]int{}
		for _, n := range c.Nodes() {
			s := fn(n.ID)
			if s < 0 || s >= shards {
				t.Fatalf("shards=%d: node %d mapped to out-of-range shard %d", shards, n.ID, s)
			}
			if prev, ok := rackShard[n.Rack]; ok && prev != s {
				t.Fatalf("shards=%d: rack %d split across shards %d and %d", shards, n.Rack, prev, s)
			}
			rackShard[n.Rack] = s
		}
	}
}

// TestRackShardFnDeterministic pins purity: two independently built maps
// over the same topology agree on every node, including out-of-range IDs.
func TestRackShardFnDeterministic(t *testing.T) {
	c := shardTestCluster(t, 40, 5)
	a, b := RackShardFn(c, 8), RackShardFn(c, 8)
	for id := -2; id < 50; id++ {
		if a(id) != b(id) {
			t.Fatalf("node %d: maps disagree (%d vs %d)", id, a(id), b(id))
		}
	}
}

// TestRackShardFnSpread sanity-checks balance: with many racks and few
// shards, no shard may be empty.
func TestRackShardFnSpread(t *testing.T) {
	c := shardTestCluster(t, 128, 4) // 32 racks
	const shards = 4
	fn := RackShardFn(c, shards)
	seen := map[int]bool{}
	for _, n := range c.Nodes() {
		seen[fn(n.ID)] = true
	}
	if len(seen) != shards {
		t.Fatalf("32 racks over %d shards left some shard empty: populated %v", shards, seen)
	}
}
