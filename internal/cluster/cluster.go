// Package cluster models the compute substrate: worker nodes that launch
// executor processes.
//
// Following the paper's system model (§III-A): each worker node can launch
// multiple executors based on its computation resources; each executor has
// identical computation capacity and runs one task at a time. An executor is
// allocated to at most one application at any instant (constraint (2)), and
// co-located executors share the node's datasets (container isolation, §II).
package cluster

import (
	"fmt"
	"sort"
)

// AppID identifies an application. NoApp marks an unallocated executor.
type AppID int

// NoApp is the owner of an executor that is not allocated to any application.
const NoApp AppID = -1

// NodeSpec describes a worker node's resources. The defaults mirror the
// paper's Linode testbed (§VI-A1): 8 cores, 16 GB memory, 384 GB SSD.
type NodeSpec struct {
	Cores    int
	MemoryMB int
	DiskGB   int
}

// LinodeSpec returns the paper's per-node resources.
func LinodeSpec() NodeSpec {
	return NodeSpec{Cores: 8, MemoryMB: 16 << 10, DiskGB: 384}
}

// Node is one worker machine.
type Node struct {
	ID   int
	Rack int
	Spec NodeSpec
	// Speed scales the node's compute rate (1.0 = nominal; 0.5 = half
	// speed). Heterogeneous clusters produce natural stragglers.
	Speed float64

	executors []*Executor
}

// Executors returns the executors resident on the node.
func (n *Node) Executors() []*Executor { return n.executors }

// Executor is a long-lived worker process that runs tasks for the
// application it is allocated to.
type Executor struct {
	ID   int
	Node *Node

	// CoresPerExecutor and MemoryMB are the resources the executor pins.
	Cores    int
	MemoryMB int

	owner   AppID
	running int // tasks currently executing (0 or 1 in the paper's model)
	slots   int
	dead    bool
}

// Alive reports whether the executor's node is in service.
func (e *Executor) Alive() bool { return !e.dead }

// Owner returns the application the executor is allocated to, or NoApp.
func (e *Executor) Owner() AppID { return e.owner }

// Busy reports whether a task is currently running on the executor.
func (e *Executor) Busy() bool { return e.running >= e.slots }

// Running returns the number of tasks currently executing.
func (e *Executor) Running() int { return e.running }

// Slots returns the executor's concurrent task capacity.
func (e *Executor) Slots() int { return e.slots }

// FreeSlots returns the number of tasks the executor could accept now.
func (e *Executor) FreeSlots() int { return e.slots - e.running }

// Cluster is a fixed set of nodes, each hosting a fixed set of executor
// "seats". Managers allocate seats to applications and release them; the
// executor processes themselves are modeled as always resident (launching a
// JVM is charged via Config.ExecutorStartupSec by the driver, if desired).
type Cluster struct {
	nodes     []*Node
	executors []*Executor
}

// Config controls cluster construction.
type Config struct {
	Nodes            int
	ExecutorsPerNode int // paper default: 2 (§VI-A1)
	SlotsPerExecutor int // paper model: 1 (§III-A)
	RackSize         int // nodes per rack; 0 → single rack
	Spec             NodeSpec

	// SlowNodeFraction makes this share of nodes run SlowFactor× slower
	// (deterministically spread: every ⌈1/fraction⌉-th node). Zero keeps
	// the cluster homogeneous, the paper's configuration.
	SlowNodeFraction float64
	SlowFactor       float64
}

// DefaultConfig mirrors the paper's 100-node setup.
func DefaultConfig() Config {
	return Config{
		Nodes:            100,
		ExecutorsPerNode: 2,
		SlotsPerExecutor: 1,
		RackSize:         20,
		Spec:             LinodeSpec(),
	}
}

// New builds a cluster from the config.
func New(cfg Config) *Cluster {
	if cfg.Nodes <= 0 {
		panic("cluster: Nodes <= 0")
	}
	if cfg.ExecutorsPerNode <= 0 {
		cfg.ExecutorsPerNode = 2
	}
	if cfg.SlotsPerExecutor <= 0 {
		cfg.SlotsPerExecutor = 1
	}
	if cfg.Spec.Cores == 0 {
		cfg.Spec = LinodeSpec()
	}
	rackSize := cfg.RackSize
	if rackSize <= 0 {
		rackSize = cfg.Nodes
	}
	slowEvery := 0
	if cfg.SlowNodeFraction > 0 {
		slowEvery = int(1 / cfg.SlowNodeFraction)
		if slowEvery < 1 {
			slowEvery = 1
		}
	}
	slowFactor := cfg.SlowFactor
	if slowFactor <= 1 {
		slowFactor = 2
	}
	c := &Cluster{}
	eid := 0
	for i := 0; i < cfg.Nodes; i++ {
		n := &Node{ID: i, Rack: i / rackSize, Spec: cfg.Spec, Speed: 1}
		if slowEvery > 0 && i%slowEvery == slowEvery-1 {
			n.Speed = 1 / slowFactor
		}
		for j := 0; j < cfg.ExecutorsPerNode; j++ {
			e := &Executor{
				ID:       eid,
				Node:     n,
				Cores:    cfg.Spec.Cores / cfg.ExecutorsPerNode,
				MemoryMB: cfg.Spec.MemoryMB / cfg.ExecutorsPerNode,
				owner:    NoApp,
				slots:    cfg.SlotsPerExecutor,
			}
			eid++
			n.executors = append(n.executors, e)
			c.executors = append(c.executors, e)
		}
		c.nodes = append(c.nodes, n)
	}
	return c
}

// Nodes returns all nodes.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// NumNodes returns the node count.
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// Executors returns all executors, ordered by ID.
func (c *Cluster) Executors() []*Executor { return c.executors }

// Executor returns the executor with the given ID.
func (c *Cluster) Executor(id int) *Executor { return c.executors[id] }

// Node returns the node with the given ID.
func (c *Cluster) Node(id int) *Node { return c.nodes[id] }

// Allocate assigns an unallocated executor to an application.
func (c *Cluster) Allocate(e *Executor, app AppID) error {
	if app == NoApp {
		return fmt.Errorf("cluster: Allocate to NoApp")
	}
	if e.dead {
		return fmt.Errorf("cluster: executor %d is on a failed node", e.ID)
	}
	if e.owner != NoApp {
		return fmt.Errorf("cluster: executor %d already owned by app %d", e.ID, e.owner)
	}
	e.owner = app
	return nil
}

// FailNode takes a node out of service: its executors are forcibly freed
// (any tasks on them are the caller's responsibility to re-queue) and
// refuse allocation until RecoverNode. Returns the executors that were
// running tasks at failure time.
func (c *Cluster) FailNode(node int) []*Executor {
	var interrupted []*Executor
	for _, e := range c.nodes[node].executors {
		if e.running > 0 {
			interrupted = append(interrupted, e)
		}
		e.running = 0
		e.owner = NoApp
		e.dead = true
	}
	return interrupted
}

// RecoverNode returns a failed node's executors to the free pool.
func (c *Cluster) RecoverNode(node int) {
	for _, e := range c.nodes[node].executors {
		e.dead = false
	}
}

// NodeAlive reports whether any executor on the node is in service. FailNode
// and FailExecutor keep it in sync; a node with every executor dead counts
// as down.
func (c *Cluster) NodeAlive(node int) bool {
	for _, e := range c.nodes[node].executors {
		if !e.dead {
			return true
		}
	}
	return false
}

// FailExecutor crashes a single executor process without taking down its
// node — the finer-grained failure mode (an OOM-killed JVM, not a machine
// loss). Any task on it is the caller's responsibility to re-queue. Returns
// false if the executor was already dead (no-op).
func (c *Cluster) FailExecutor(e *Executor) bool {
	if e.dead {
		return false
	}
	e.running = 0
	e.owner = NoApp
	e.dead = true
	return true
}

// RecoverExecutor restarts a crashed executor, returning it to the free
// pool. Returns false if the executor was not dead (no-op).
func (c *Cluster) RecoverExecutor(e *Executor) bool {
	if !e.dead {
		return false
	}
	e.dead = false
	return true
}

// Release returns an executor to the free pool. The executor must be idle.
func (c *Cluster) Release(e *Executor) error {
	if e.owner == NoApp {
		return fmt.Errorf("cluster: executor %d is already free", e.ID)
	}
	if e.running > 0 {
		return fmt.Errorf("cluster: executor %d still running %d task(s)", e.ID, e.running)
	}
	e.owner = NoApp
	return nil
}

// StartTask marks a task as running on the executor.
func (c *Cluster) StartTask(e *Executor) error {
	if e.owner == NoApp {
		return fmt.Errorf("cluster: StartTask on unallocated executor %d", e.ID)
	}
	if e.Busy() {
		return fmt.Errorf("cluster: executor %d has no free slot", e.ID)
	}
	e.running++
	return nil
}

// FinishTask marks a task as done on the executor.
func (c *Cluster) FinishTask(e *Executor) error {
	if e.running <= 0 {
		return fmt.Errorf("cluster: FinishTask on idle executor %d", e.ID)
	}
	e.running--
	return nil
}

// Free returns all live unallocated executors, ordered by ID.
func (c *Cluster) Free() []*Executor {
	var out []*Executor
	for _, e := range c.executors {
		if e.owner == NoApp && !e.dead {
			out = append(out, e)
		}
	}
	return out
}

// Owned returns the executors allocated to an application, ordered by ID.
func (c *Cluster) Owned(app AppID) []*Executor {
	var out []*Executor
	for _, e := range c.executors {
		if e.owner == app {
			out = append(out, e)
		}
	}
	return out
}

// OwnedCount returns the number of executors allocated to an application.
func (c *Cluster) OwnedCount(app AppID) int {
	n := 0
	for _, e := range c.executors {
		if e.owner == app {
			n++
		}
	}
	return n
}

// NodesOf returns the distinct node IDs hosting the application's executors,
// sorted ascending.
func (c *Cluster) NodesOf(app AppID) []int {
	seen := map[int]bool{}
	for _, e := range c.executors {
		if e.owner == app {
			seen[e.Node.ID] = true
		}
	}
	out := make([]int, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// FreeOnNode returns the live unallocated executors on a node.
func (c *Cluster) FreeOnNode(node int) []*Executor {
	var out []*Executor
	for _, e := range c.nodes[node].executors {
		if e.owner == NoApp && !e.dead {
			out = append(out, e)
		}
	}
	return out
}

// TotalExecutors returns the executor count.
func (c *Cluster) TotalExecutors() int { return len(c.executors) }

// Validate checks internal consistency; used by tests and the driver's
// failure-injection harness.
func (c *Cluster) Validate() error {
	for _, e := range c.executors {
		if e.running < 0 || e.running > e.slots {
			return fmt.Errorf("executor %d running=%d slots=%d", e.ID, e.running, e.slots)
		}
		if e.owner == NoApp && e.running > 0 {
			return fmt.Errorf("executor %d free but running tasks", e.ID)
		}
		if e.dead && (e.owner != NoApp || e.running > 0) {
			return fmt.Errorf("executor %d dead but owner=%d running=%d", e.ID, e.owner, e.running)
		}
	}
	return nil
}
