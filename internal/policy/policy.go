// Package policy defines the pluggable allocation-policy boundary between
// the cluster manager and the allocator cores, and implements the tournament
// contenders of DESIGN.md §16: the paper's Algorithm 1+2 ("custody", the
// default), a Quincy-style global min-cost-flow reallocator ("quincy"), a
// per-server-weighted fair allocator after Shan et al. ("wfair"), and a
// locality-aware matching policy after Zhao et al. ("locmatch",
// Hopcroft-Karp warm start + Hungarian refinement).
//
// Every policy consumes the same snapshot the manager hands to
// internal/core — application demands, idle executors, options — and returns
// a core.Plan. Policies are pure and deterministic: the same snapshot yields
// a byte-identical plan, with no wall-clock, map-iteration, or hidden-state
// dependence, so golden traces and the model checker replay exactly.
//
// The package is a leaf layer (enforced by custodylint): it may import the
// other algorithm leaves (core, maxflow, matching, obsv) but never the
// orchestration layers above it.
package policy

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/obsv"
)

// Policy is one allocation strategy behind the manager/core boundary. The
// manager snapshots demand and idle executors exactly as it does for the
// default path; the policy decides who gets which executor.
type Policy interface {
	// Name returns the policy's registry name.
	Name() string
	// Allocate returns the round's plan. It must be a pure, deterministic
	// function of its arguments and must honor the generic contract checked
	// by Validate: every granted executor comes from idle, goes to exactly
	// one application, within slot capacity and the executor budget, and
	// Local assignments land on nodes the task's demand advertised.
	Allocate(apps []core.AppDemand, idle []core.ExecInfo, opts core.Options) core.Plan
}

// Custody is the name of the default policy (Algorithm 1+2). The manager
// short-circuits it to its warm in-place session rather than going through
// the registry, so selecting it is byte-identical to not selecting anything.
const Custody = "custody"

// Names returns the registered policy names, default first, in the fixed
// order the modelcheck set-policy op indexes.
func Names() []string { return []string{Custody, "quincy", "wfair", "locmatch"} }

// New instantiates a policy by registry name.
func New(name string) (Policy, error) {
	switch name {
	case Custody:
		return NewCustodyPolicy(), nil
	case "quincy":
		return &Quincy{}, nil
	case "wfair":
		return &WeightedFair{}, nil
	case "locmatch":
		return &LocalityMatch{}, nil
	}
	return nil, fmt.Errorf("policy: unknown policy %q (valid: custody | quincy | wfair | locmatch)", name)
}

// ---- shared per-round working state of the contender policies ----

// taskRef addresses one unsatisfied input task inside an AppDemand.
type taskRef struct {
	job, task int // IDs, for the Assignment
	td        *core.TaskDemand
}

// inst is the scratch state of one allocation round: flattened demand,
// executor bookkeeping, plan accumulation, and observer emission. The
// contender policies are thin strategies over it.
type inst struct {
	apps []core.AppDemand
	idle []core.ExecInfo
	opts core.Options

	tasks [][]taskRef // per app: unsatisfied tasks in (job, task-position) order
	done  [][]bool    // per app: task granted locally this round
	unsat []int       // per app: tasks not yet granted locally

	free      []int // per idle-executor index: slots remaining
	owner     []int // per idle-executor index: app index that claimed it, or -1
	claimed   []int // per app: executors newly claimed this round
	fillGiven []int // per app: preference-free slots granted this round

	byNode map[int][]int // node → idle-executor indexes, ascending

	plan []core.Assignment

	decApp int // app index of the pending observer decision; -1 none
}

func newInst(apps []core.AppDemand, idle []core.ExecInfo, opts core.Options) *inst {
	// Canonicalize input order. The contender policies make the same
	// shuffle-invariance promise core.Session keeps: the app list, each
	// app's job list, and the idle-executor list are order-insensitive
	// input (task order within a job is meaningful and kept). Sorting
	// copies here honors it in one place instead of in every strategy.
	apps = append([]core.AppDemand(nil), apps...)
	sort.SliceStable(apps, func(i, j int) bool { return apps[i].App < apps[j].App })
	for ai := range apps {
		jobs := append([]core.JobDemand(nil), apps[ai].Jobs...)
		sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].Job < jobs[j].Job })
		apps[ai].Jobs = jobs
	}
	idle = append([]core.ExecInfo(nil), idle...)
	sort.SliceStable(idle, func(i, j int) bool { return idle[i].ID < idle[j].ID })

	in := &inst{apps: apps, idle: idle, opts: opts, decApp: -1}
	in.tasks = make([][]taskRef, len(apps))
	in.done = make([][]bool, len(apps))
	in.unsat = make([]int, len(apps))
	for ai := range apps {
		for ji := range apps[ai].Jobs {
			j := &apps[ai].Jobs[ji]
			for ti := range j.Tasks {
				in.tasks[ai] = append(in.tasks[ai], taskRef{job: j.Job, task: j.Tasks[ti].Task, td: &j.Tasks[ti]})
			}
		}
		in.done[ai] = make([]bool, len(in.tasks[ai]))
		in.unsat[ai] = len(in.tasks[ai])
	}
	in.free = make([]int, len(idle))
	in.owner = make([]int, len(idle))
	in.byNode = make(map[int][]int, len(idle))
	for ei := range idle {
		in.free[ei] = slotsOf(idle[ei])
		in.owner[ei] = -1
		in.byNode[idle[ei].Node] = append(in.byNode[idle[ei].Node], ei)
	}
	in.claimed = make([]int, len(apps))
	in.fillGiven = make([]int, len(apps))
	if opts.Observer != nil {
		opts.Observer.BeginRound(len(apps), len(idle))
	}
	return in
}

// slotsOf mirrors core's slot semantics: 0 means 1.
func slotsOf(e core.ExecInfo) int {
	if e.Slots <= 0 {
		return 1
	}
	return e.Slots
}

// headroom is the number of additional executors the app may still claim
// under its budget σ_i.
func (in *inst) headroom(ai int) int {
	h := in.apps[ai].Budget - in.apps[ai].Held - in.claimed[ai]
	if h < 0 {
		return 0
	}
	return h
}

// want is the app's residual slot demand: unsatisfied locality tasks plus
// preference-free pending tasks not yet covered by a fill grant.
func (in *inst) want(ai int) int {
	w := in.unsat[ai] + in.apps[ai].ExtraTasks - in.fillGiven[ai]
	if w < 0 {
		return 0
	}
	return w
}

// key is the app's static fairness key — the same fractions MINLOCALITY
// compares, computed once from the demand snapshot (denominator: history
// plus this round's pending work; empty history counts as fully local).
func (in *inst) key(ai int) obsv.Key {
	d := &in.apps[ai]
	k := obsv.Key{Jobs: 1, Tasks: 1}
	if den := d.TotalJobs + len(d.Jobs); den > 0 {
		k.Jobs = float64(d.LocalJobs) / float64(den)
	}
	if den := d.TotalTasks + len(in.tasks[ai]); den > 0 {
		k.Tasks = float64(d.LocalTasks) / float64(den)
	}
	return k
}

// localTo reports whether the executor's node stores a replica for the task.
func localTo(td *core.TaskDemand, node int) bool {
	for _, n := range td.Nodes {
		if n == node {
			return true
		}
	}
	return false
}

// decide emits one observer Decision for the app; subsequent grants belong
// to it. job is the first job served (-1 unknown/none).
func (in *inst) decide(ai int, phase obsv.Phase, job int) {
	in.decApp = ai
	if in.opts.Observer == nil {
		return
	}
	in.opts.Observer.Decide(obsv.Decision{
		Phase: phase, App: in.apps[ai].App, Key: in.key(ai),
		RunnerUp: -1, Job: job,
	})
}

// claim marks idle executor ei as owned by app ai, charging the budget on
// first claim. It must only be called when free slots remain.
func (in *inst) claim(ai, ei int) {
	if in.owner[ei] == -1 {
		in.owner[ei] = ai
		in.claimed[ai]++
	}
}

// grantLocal appends a locality-carrying assignment of one slot of executor
// ei to task ti of app ai, emitting provenance.
func (in *inst) grantLocal(ai, ei, ti int) {
	e := in.idle[ei]
	tr := in.tasks[ai][ti]
	in.claim(ai, ei)
	in.free[ei]--
	in.done[ai][ti] = true
	in.unsat[ai]--
	if in.opts.Observer != nil {
		reason := obsv.ReasonLocalBlock
		switch {
		case tr.td.Fallback:
			reason = obsv.ReasonRackFallback
		case warmOn(tr.td, e.Node):
			reason = obsv.ReasonCacheHit
		}
		in.opts.Observer.Grant(obsv.Grant{
			App: in.apps[ai].App, Exec: e.ID, Node: e.Node,
			Job: tr.job, Task: tr.task, Reason: reason,
		})
	}
	in.plan = append(in.plan, core.Assignment{
		App: in.apps[ai].App, Exec: e.ID, Node: e.Node,
		Job: tr.job, Task: tr.task, Block: tr.td.Block, Local: true,
	})
}

// grantFill appends a preference-free assignment of one slot of executor ei
// to app ai.
func (in *inst) grantFill(ai, ei int) {
	e := in.idle[ei]
	in.claim(ai, ei)
	in.free[ei]--
	in.fillGiven[ai]++
	if in.opts.Observer != nil {
		in.opts.Observer.Grant(obsv.Grant{
			App: in.apps[ai].App, Exec: e.ID, Node: e.Node,
			Job: -1, Task: -1, Reason: obsv.ReasonArbitraryFill,
		})
	}
	in.plan = append(in.plan, core.Assignment{
		App: in.apps[ai].App, Exec: e.ID, Node: e.Node,
		Job: -1, Task: -1, Block: -1,
	})
}

// serveExec hands the remaining free slots of a claimed executor to the app:
// local grants for unsatisfied tasks stored on its node first, then fill
// grants while residual demand remains. Returns the number of grants made.
func (in *inst) serveExec(ai, ei int) int {
	node := in.idle[ei].Node
	n := 0
	for ti := range in.tasks[ai] {
		if in.free[ei] == 0 {
			return n
		}
		if in.done[ai][ti] || !localTo(in.tasks[ai][ti].td, node) {
			continue
		}
		in.grantLocal(ai, ei, ti)
		n++
	}
	for in.free[ei] > 0 && in.want(ai) > 0 {
		in.grantFill(ai, ei)
		n++
	}
	return n
}

// warmOn mirrors core's cache-warm provenance test.
func warmOn(td *core.TaskDemand, node int) bool {
	if td.Warm == nil {
		return false
	}
	for i, n := range td.Nodes {
		if n == node {
			return i < len(td.Warm) && td.Warm[i]
		}
	}
	return false
}

// finish returns the accumulated plan.
func (in *inst) finish() core.Plan { return core.Plan{Assignments: in.plan} }
