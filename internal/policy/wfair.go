package policy

import (
	"repro/internal/core"
	"repro/internal/obsv"
)

// WeightedFair is a per-server weighted fair allocator after Shan et al.
// ("Online Scheduling of Spark Workloads with Mesos using Different Fair
// Allocation Algorithms"): progressive filling where each application's
// entitlement is weighted by its outstanding demand. The allocator
// repeatedly grants one executor to the application with the smallest
// held-executors/weight ratio (ties: application ID), preferring the
// lowest-ID idle executor on a server that stores a block of one of the
// application's unsatisfied tasks — the per-server dimension — and falling
// back to the lowest-ID idle executor otherwise. An application leaves the
// race when its budget σ_i or its residual demand is exhausted.
type WeightedFair struct{}

// Name implements Policy.
func (WeightedFair) Name() string { return "wfair" }

// Allocate implements Policy.
func (WeightedFair) Allocate(apps []core.AppDemand, idle []core.ExecInfo, opts core.Options) core.Plan {
	in := newInst(apps, idle, opts)
	apps, idle = in.apps, in.idle // canonical order, not input order
	// Demand weights are frozen at round start: the fairness target is
	// proportional to what each application asked for, not to what it has
	// been granted so far.
	weight := make([]int, len(apps))
	for ai := range apps {
		weight[ai] = len(in.tasks[ai]) + apps[ai].ExtraTasks
	}
	nFree := len(idle)
	for nFree > 0 {
		// Progressive filling: the next executor goes to the eligible
		// application with the smallest weighted share. held counts live
		// executors (Held) plus this round's claims, so the comparison is
		// (Held+claimed)/weight, evaluated cross-multiplied to stay exact.
		best := -1
		for ai := range apps {
			if weight[ai] == 0 || in.headroom(ai) == 0 || in.want(ai) == 0 {
				continue
			}
			if best < 0 {
				best = ai
				continue
			}
			ha, hb := apps[ai].Held+in.claimed[ai], apps[best].Held+in.claimed[best]
			if ha*weight[best] < hb*weight[ai] {
				best = ai
			}
		}
		if best < 0 {
			break
		}
		ei := in.pickExec(best)
		if ei < 0 {
			break
		}
		in.decide(best, obsv.PhaseLocality, -1)
		in.claim(best, ei)
		in.serveExec(best, ei)
		nFree--
	}
	return in.finish()
}

// pickExec chooses the executor the app should claim next: the lowest-ID
// unclaimed executor on a node storing a block of one of the app's
// unsatisfied tasks, else the lowest-ID unclaimed executor. Returns -1 when
// none remains.
func (in *inst) pickExec(ai int) int {
	best := -1
	for ti := range in.tasks[ai] {
		if in.done[ai][ti] {
			continue
		}
		for _, n := range in.tasks[ai][ti].td.Nodes {
			for _, ei := range in.byNode[n] {
				if in.owner[ei] == -1 && (best < 0 || in.idle[ei].ID < in.idle[best].ID) {
					best = ei
				}
			}
		}
	}
	if best >= 0 {
		return best
	}
	for ei := range in.idle {
		if in.owner[ei] == -1 && (best < 0 || in.idle[ei].ID < in.idle[best].ID) {
			best = ei
		}
	}
	return best
}
