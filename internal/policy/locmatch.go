package policy

import (
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/matching"
	"repro/internal/obsv"
)

// hungarianCap bounds the Hungarian refinement to instances where O(n³) is
// negligible; larger instances keep the Hopcroft-Karp matching, which is the
// same cardinality without the weight refinement.
const hungarianCap = 48

// LocalityMatch is a locality-aware assignment policy after Zhao et al.
// ("Data-Locality-Aware Task Assignment and Scheduling for Distributed Job
// Executions"): applications are served in fairness order (least-localized
// first, the MINLOCALITY order over static keys), and each application's
// unsatisfied tasks are matched to the slots of idle executors on replica
// nodes as a bipartite assignment problem. Hopcroft-Karp computes the
// maximum-cardinality matching (the warm start, near-linear); when the
// instance is small a Hungarian pass refines it to the maximum-weight
// matching of the same cardinality, preferring cache-warm replicas and
// genuine holders over rack fallbacks. Leftover budget is filled
// demand-proportionally in the same fairness order.
type LocalityMatch struct{}

// Name implements Policy.
func (LocalityMatch) Name() string { return "locmatch" }

// Allocate implements Policy.
func (LocalityMatch) Allocate(apps []core.AppDemand, idle []core.ExecInfo, opts core.Options) core.Plan {
	in := newInst(apps, idle, opts)
	apps = in.apps // canonical order, not input order
	order := make([]int, len(apps))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		kx, ky := in.key(order[x]), in.key(order[y])
		if kx.Jobs != ky.Jobs {
			return kx.Jobs < ky.Jobs
		}
		if kx.Tasks != ky.Tasks {
			return kx.Tasks < ky.Tasks
		}
		return apps[order[x]].App < apps[order[y]].App
	})
	for _, ai := range order {
		in.matchApp(ai)
	}
	// Fill phase: remaining slots go to applications that still have
	// pending work, least-localized first, one slot per pending task.
	for _, ai := range order {
		first := true
		for in.want(ai) > 0 && in.headroom(ai) > 0 {
			ei := in.pickExec(ai)
			if ei < 0 {
				break
			}
			if first {
				in.decide(ai, obsv.PhaseFill, -1)
				first = false
			}
			in.claim(ai, ei)
			in.serveExec(ai, ei)
		}
	}
	return in.finish()
}

// matchApp serves one application's locality demand: bipartite matching of
// its unsatisfied tasks against the slots of unclaimed executors on their
// replica nodes, capped by the executor budget.
func (in *inst) matchApp(ai int) {
	if in.unsat[ai] == 0 || in.headroom(ai) == 0 {
		return
	}
	// Candidate columns: one per free slot of each unclaimed executor local
	// to at least one unsatisfied task. Column order follows the first task
	// that discovered the executor — deterministic (task order, then the
	// demand's replica order, then the ascending byNode posting).
	var cols []int                              // column → idle-executor index
	colStart := make(map[int]int, len(in.idle)) // idle-exec index → first column
	var tasks []int                             // rows → task index, unsatisfied only
	for ti := range in.tasks[ai] {
		if in.done[ai][ti] {
			continue
		}
		tasks = append(tasks, ti)
		for _, n := range in.tasks[ai][ti].td.Nodes {
			for _, ei := range in.byNode[n] {
				if in.owner[ei] != -1 || in.free[ei] == 0 {
					continue
				}
				if _, ok := colStart[ei]; ok {
					continue
				}
				colStart[ei] = len(cols)
				for s := 0; s < in.free[ei]; s++ {
					cols = append(cols, ei)
				}
			}
		}
	}
	if len(tasks) == 0 || len(cols) == 0 {
		return
	}
	// Adjacency via the byNode index: a task row connects to every slot
	// column of a candidate executor on one of its replica nodes.
	adj := make([][]int, len(tasks))
	for r, ti := range tasks {
		for _, n := range in.tasks[ai][ti].td.Nodes {
			for _, ei := range in.byNode[n] {
				if cs, ok := colStart[ei]; ok {
					for s := 0; s < in.free[ei]; s++ {
						adj[r] = append(adj[r], cs+s)
					}
				}
			}
		}
	}
	matchL, size := matching.HopcroftKarp(len(tasks), len(cols), adj)
	if size == 0 {
		return
	}
	if len(tasks) <= hungarianCap && len(cols) <= hungarianCap {
		// Refinement: same cardinality (the base weight dwarfs the bonuses,
		// so maximum weight implies maximum cardinality at these sizes),
		// but cache-warm replicas and true holders outrank rack fallbacks.
		weights := make([][]float64, len(tasks))
		for r, ti := range tasks {
			weights[r] = make([]float64, len(cols))
			td := in.tasks[ai][ti].td
			for c, ei := range cols {
				node := in.idle[ei].Node
				if !localTo(td, node) {
					weights[r][c] = math.Inf(-1)
					continue
				}
				w := 100.0
				if warmOn(td, node) {
					w += 0.5
				}
				if td.Fallback {
					w -= 0.25
				}
				weights[r][c] = w
			}
		}
		if refined, _ := matching.MaxWeightAssignment(weights); refined != nil {
			matchL = refined
		}
	}
	// Apply in task order, claiming executors as their first slot is used
	// and stopping new claims at the budget.
	in.decide(ai, obsv.PhaseLocality, -1)
	for r, ti := range tasks {
		if matchL[r] < 0 {
			continue
		}
		ei := cols[matchL[r]]
		if in.owner[ei] == -1 && in.headroom(ai) == 0 {
			continue // budget exhausted; skip matches needing a new claim
		}
		if in.free[ei] == 0 {
			continue
		}
		in.grantLocal(ai, ei, ti)
	}
}
