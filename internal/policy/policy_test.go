package policy

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/hdfs"
	"repro/internal/xrand"
)

// randInstance builds a small random allocation instance: a handful of apps
// with jobbed task demands over a small cluster, budgets and history drawn
// from the generator. Shapes cover the edges: apps with no demand, apps
// over budget, replica lists pointing at nodes with no executors.
func randInstance(rng *xrand.Rand) ([]core.AppDemand, []core.ExecInfo) {
	nodes := 2 + rng.Intn(6)
	var idle []core.ExecInfo
	nExec := rng.Intn(nodes * 2)
	for e := 0; e < nExec; e++ {
		idle = append(idle, core.ExecInfo{ID: e, Node: rng.Intn(nodes), Slots: rng.Intn(3)})
	}
	nApps := 1 + rng.Intn(4)
	var apps []core.AppDemand
	block := 0
	for a := 0; a < nApps; a++ {
		d := core.AppDemand{
			App:        a,
			Budget:     rng.Intn(nExec + 2),
			Held:       rng.Intn(3),
			ExtraTasks: rng.Intn(3),
			LocalJobs:  rng.Intn(3),
			TotalJobs:  2 + rng.Intn(4),
			LocalTasks: rng.Intn(5),
			TotalTasks: 4 + rng.Intn(8),
		}
		for j := 0; j < rng.Intn(4); j++ {
			jd := core.JobDemand{Job: j}
			for t := 0; t < 1+rng.Intn(5); t++ {
				reps := make([]int, 1+rng.Intn(3))
				for r := range reps {
					reps[r] = rng.Intn(nodes + 2) // may point off-cluster
				}
				jd.Tasks = append(jd.Tasks, core.TaskDemand{Task: t, Block: hdfs.BlockID(block), Nodes: reps})
				block++
			}
			d.Jobs = append(d.Jobs, jd)
		}
		apps = append(apps, d)
	}
	return apps, idle
}

// TestCustodyPolicyByteIdentical: the registry's custody policy is the same
// allocator as core.Allocate — byte-identical plans on random instances.
func TestCustodyPolicyByteIdentical(t *testing.T) {
	p, err := New(Custody)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(11).Fork("policy-custody-ident")
	opts := core.DefaultOptions()
	for trial := 0; trial < 200; trial++ {
		apps, idle := randInstance(rng)
		got := p.Allocate(apps, idle, opts)
		want := core.Allocate(apps, idle, opts)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: custody policy diverged from core.Allocate\n got  %#v\n want %#v", trial, got, want)
		}
	}
}

// TestPoliciesHonorGenericContract: every registered policy's plans pass
// Validate on random instances — the same generic invariants the model
// checker enforces live.
func TestPoliciesHonorGenericContract(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			p, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			rng := xrand.New(7).Fork("policy-contract-" + name)
			opts := core.DefaultOptions()
			for trial := 0; trial < 300; trial++ {
				apps, idle := randInstance(rng)
				plan := p.Allocate(apps, idle, opts)
				if err := Validate(apps, idle, plan, opts); err != nil {
					t.Fatalf("trial %d: %v\nplan: %#v", trial, err, plan)
				}
			}
		})
	}
}

// TestPoliciesDeterministic: the same instance yields a byte-identical plan
// on repeated calls and on a fresh policy instance.
func TestPoliciesDeterministic(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			rng := xrand.New(23).Fork("policy-det-" + name)
			opts := core.DefaultOptions()
			for trial := 0; trial < 50; trial++ {
				apps, idle := randInstance(rng)
				p1, _ := New(name)
				p2, _ := New(name)
				a := p1.Allocate(apps, idle, opts)
				b := p2.Allocate(apps, idle, opts)
				c := p1.Allocate(apps, idle, opts) // warm repeat
				if !reflect.DeepEqual(a, b) || !reflect.DeepEqual(a, c) {
					t.Fatalf("trial %d: plans differ across instances/repeats", trial)
				}
			}
		})
	}
}

// TestPoliciesUseLocality: on an instance where every task's block is on a
// distinct executor's node, every contender achieves full locality — the
// policies are not just valid but actually data-aware.
func TestPoliciesUseLocality(t *testing.T) {
	const n = 6
	var idle []core.ExecInfo
	for e := 0; e < n; e++ {
		idle = append(idle, core.ExecInfo{ID: e, Node: e, Slots: 1})
	}
	app := core.AppDemand{App: 0, Budget: n, TotalJobs: 1, TotalTasks: n}
	jd := core.JobDemand{Job: 0}
	for tsk := 0; tsk < n; tsk++ {
		jd.Tasks = append(jd.Tasks, core.TaskDemand{Task: tsk, Block: hdfs.BlockID(tsk), Nodes: []int{tsk}})
	}
	app.Jobs = []core.JobDemand{jd}
	apps := []core.AppDemand{app}
	for _, name := range Names() {
		p, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		plan := p.Allocate(apps, idle, core.DefaultOptions())
		if got := plan.LocalCount(); got != n {
			t.Errorf("%s: %d/%d local assignments on a perfectly matchable instance", name, got, n)
		}
	}
}

// TestValidateRejectsBadPlans: Validate has teeth against each class of
// generic-contract breach.
func TestValidateRejectsBadPlans(t *testing.T) {
	idle := []core.ExecInfo{{ID: 0, Node: 0, Slots: 1}, {ID: 1, Node: 1, Slots: 2}}
	apps := []core.AppDemand{{
		App: 0, Budget: 1,
		Jobs:      []core.JobDemand{{Job: 0, Tasks: []core.TaskDemand{{Task: 0, Block: 7, Nodes: []int{1}}}}},
		TotalJobs: 1, TotalTasks: 1,
	}, {
		App: 1, Budget: 2, ExtraTasks: 1,
	}}
	opts := core.DefaultOptions()
	cases := []struct {
		name string
		plan core.Plan
		want string
	}{
		{"unknown-exec", core.Plan{Assignments: []core.Assignment{{App: 0, Exec: 9, Node: 0, Job: -1, Task: -1}}}, "not in the idle snapshot"},
		{"wrong-node", core.Plan{Assignments: []core.Assignment{{App: 0, Exec: 0, Node: 1, Job: -1, Task: -1}}}, "idle snapshot says node"},
		{"unknown-app", core.Plan{Assignments: []core.Assignment{{App: 9, Exec: 0, Node: 0, Job: -1, Task: -1}}}, "unknown app"},
		{"split-exec", core.Plan{Assignments: []core.Assignment{
			{App: 0, Exec: 1, Node: 1, Job: 0, Task: 0, Block: 7, Local: true},
			{App: 1, Exec: 1, Node: 1, Job: -1, Task: -1}}}, "splits executor"},
		{"over-slots", core.Plan{Assignments: []core.Assignment{
			{App: 1, Exec: 0, Node: 0, Job: -1, Task: -1},
			{App: 1, Exec: 0, Node: 0, Job: -1, Task: -1}}}, "slots of executor"},
		{"over-budget", core.Plan{Assignments: []core.Assignment{
			{App: 0, Exec: 0, Node: 0, Job: -1, Task: -1},
			{App: 0, Exec: 1, Node: 1, Job: 0, Task: 0, Block: 7, Local: true}}}, "over budget headroom"},
		{"bad-local-node", core.Plan{Assignments: []core.Assignment{
			{App: 0, Exec: 0, Node: 0, Job: 0, Task: 0, Block: 7, Local: true}}}, "not among its replica nodes"},
		{"bad-local-task", core.Plan{Assignments: []core.Assignment{
			{App: 0, Exec: 1, Node: 1, Job: 0, Task: 5, Block: 7, Local: true}}}, "unknown task"},
		{"wrong-block", core.Plan{Assignments: []core.Assignment{
			{App: 0, Exec: 1, Node: 1, Job: 0, Task: 0, Block: 8, Local: true}}}, "demand says"},
		{"double-local", core.Plan{Assignments: []core.Assignment{
			{App: 0, Exec: 1, Node: 1, Job: 0, Task: 0, Block: 7, Local: true},
			{App: 0, Exec: 1, Node: 1, Job: 0, Task: 0, Block: 7, Local: true}}}, "locally twice"},
		{"starvation", core.Plan{}, "starvation"},
	}
	for _, tc := range cases {
		err := Validate(apps, idle, tc.plan, opts)
		if err == nil {
			t.Errorf("%s: Validate accepted a bad plan", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// And a good plan passes.
	good := core.Plan{Assignments: []core.Assignment{
		{App: 0, Exec: 1, Node: 1, Job: 0, Task: 0, Block: 7, Local: true}}}
	if err := Validate(apps, idle, good, opts); err != nil {
		t.Errorf("good plan rejected: %v", err)
	}
}

// TestRegistry: Names round-trips through New; unknown names error.
func TestRegistry(t *testing.T) {
	for _, name := range Names() {
		p, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := New("nope"); err == nil {
		t.Error("New(nope) did not error")
	}
}
