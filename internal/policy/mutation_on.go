//go:build custodymutatepolicy

package policy

// mutatePolicyCostSign inverts the sign of every app→executor edge cost in
// the Quincy flow network. All edges turn non-negative, so the improving-only
// min-cost solver finds no augmenting path worth taking and the policy
// returns empty plans — starvation the policy-generic non-starvation
// invariant must catch (see internal/modelcheck/policy_mutation_test.go).
const mutatePolicyCostSign = true
