package policy

import (
	"fmt"

	"repro/internal/core"
)

// Validate checks the policy-generic plan invariants — the contract every
// Policy implementation owes the manager, independent of strategy:
//
//   - membership: every granted executor comes from the idle snapshot, with
//     the matching node;
//   - single ownership: an executor's slots go to exactly one application,
//     never exceeding its slot count;
//   - budget: an application claims at most max(0, Budget−Held) new
//     executors;
//   - locality integrity: a Local assignment names a real (job, task) of the
//     application's demand, lands on a node the demand advertised for that
//     task, carries the task's block, and no task is served locally twice;
//   - non-starvation (only when opts.FillToBudget): if any application has
//     outstanding demand and budget headroom while idle executors exist, the
//     plan is non-empty.
//
// The Custody-specific properties (fairness-key monotonicity, Algorithm 2
// job ordering, the reference-oracle differential) are deliberately absent:
// they live in the modelcheck observer and the manager's SelfCheck, attached
// only when the custody policy is active (DESIGN.md §16).
func Validate(apps []core.AppDemand, idle []core.ExecInfo, plan core.Plan, opts core.Options) error {
	type execState struct {
		node  int
		slots int
		app   int // granted app, or -1
		used  int
	}
	execs := make(map[int]*execState, len(idle))
	for _, e := range idle {
		execs[e.ID] = &execState{node: e.Node, slots: slotsOf(e), app: -1}
	}
	appIdx := make(map[int]int, len(apps))
	for ai := range apps {
		appIdx[apps[ai].App] = ai
	}
	newExecs := make([]int, len(apps))
	localSeen := map[[3]int]bool{} // (app, job, task) served locally

	for i, as := range plan.Assignments {
		es, ok := execs[as.Exec]
		if !ok {
			return fmt.Errorf("policy: plan[%d] grants executor %d not in the idle snapshot", i, as.Exec)
		}
		if es.node != as.Node {
			return fmt.Errorf("policy: plan[%d] places executor %d on node %d, idle snapshot says node %d", i, as.Exec, as.Node, es.node)
		}
		ai, ok := appIdx[as.App]
		if !ok {
			return fmt.Errorf("policy: plan[%d] grants to unknown app %d", i, as.App)
		}
		if es.app == -1 {
			es.app = as.App
			newExecs[ai]++
		} else if es.app != as.App {
			return fmt.Errorf("policy: plan[%d] splits executor %d between apps %d and %d", i, as.Exec, es.app, as.App)
		}
		es.used++
		if es.used > es.slots {
			return fmt.Errorf("policy: plan[%d] grants %d slots of executor %d, which has %d", i, es.used, as.Exec, es.slots)
		}
		if as.Local {
			td := findTask(&apps[ai], as.Job, as.Task)
			if td == nil {
				return fmt.Errorf("policy: plan[%d] local grant names unknown task %d.%d.%d", i, as.App, as.Job, as.Task)
			}
			if td.Block != as.Block {
				return fmt.Errorf("policy: plan[%d] local grant for task %d.%d.%d carries block %d, demand says %d", i, as.App, as.Job, as.Task, as.Block, td.Block)
			}
			if !localTo(td, as.Node) {
				return fmt.Errorf("policy: plan[%d] marks task %d.%d.%d local on node %d, not among its replica nodes %v", i, as.App, as.Job, as.Task, as.Node, td.Nodes)
			}
			key := [3]int{as.App, as.Job, as.Task}
			if localSeen[key] {
				return fmt.Errorf("policy: plan[%d] serves task %d.%d.%d locally twice", i, as.App, as.Job, as.Task)
			}
			localSeen[key] = true
		}
	}
	for ai := range apps {
		if limit := apps[ai].Budget - apps[ai].Held; newExecs[ai] > max0(limit) {
			return fmt.Errorf("policy: app %d claims %d new executors over budget headroom %d", apps[ai].App, newExecs[ai], max0(limit))
		}
	}
	if opts.FillToBudget && len(plan.Assignments) == 0 && len(idle) > 0 {
		for ai := range apps {
			if apps[ai].Held >= apps[ai].Budget {
				continue
			}
			if pendingTasks(&apps[ai])+apps[ai].ExtraTasks > 0 {
				return fmt.Errorf("policy: starvation — app %d has pending demand and budget headroom, %d executors idle, empty plan", apps[ai].App, len(idle))
			}
		}
	}
	return nil
}

func findTask(d *core.AppDemand, job, task int) *core.TaskDemand {
	for ji := range d.Jobs {
		if d.Jobs[ji].Job != job {
			continue
		}
		for ti := range d.Jobs[ji].Tasks {
			if d.Jobs[ji].Tasks[ti].Task == task {
				return &d.Jobs[ji].Tasks[ti]
			}
		}
	}
	return nil
}

func pendingTasks(d *core.AppDemand) int {
	n := 0
	for ji := range d.Jobs {
		n += len(d.Jobs[ji].Tasks)
	}
	return n
}

func max0(v int) int {
	if v < 0 {
		return 0
	}
	return v
}
