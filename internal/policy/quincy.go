package policy

import (
	"math"

	"repro/internal/core"
	"repro/internal/maxflow"
	"repro/internal/obsv"
)

// Quincy is a global min-cost-flow reallocator in the style of Quincy
// (Isard et al., SOSP'09), lifted from task granularity (the per-app
// scheduler in internal/scheduler) to executor granularity: one flow network
// covers every application and every idle executor, and the solver picks the
// cheapest joint executor→application assignment instead of serving
// applications one at a time.
//
// Network shape (node 0 = source, then one node per application, one per
// idle executor, then the sink):
//
//	source → app_i        cap = min(budget headroom, residual demand), cost 0
//	app_i  → exec_e       cap 1, cost −(1 + 2·min(localTasks(i,e), slots_e))
//	exec_e → sink         cap 1, cost 0
//
// A flow unit is one whole executor (the unit the budget σ_i counts). Edge
// costs are negated benefits, so MinCostFlowImproving — which augments only
// while paths improve the total — returns the maximum-benefit assignment of
// any cardinality: locality-rich placements are taken first and an
// executor is left unassigned only when no application can use it at all.
type Quincy struct{}

// Name implements Policy.
func (Quincy) Name() string { return "quincy" }

// Allocate implements Policy.
func (Quincy) Allocate(apps []core.AppDemand, idle []core.ExecInfo, opts core.Options) core.Plan {
	in := newInst(apps, idle, opts)
	apps, idle = in.apps, in.idle // canonical order, not input order
	if len(apps) == 0 || len(idle) == 0 {
		return in.finish()
	}
	nApps, nExecs := len(apps), len(idle)
	sink := 1 + nApps + nExecs
	g := maxflow.NewMinCostGraph(sink + 1)
	edgeOf := make([][]int, nApps) // app × exec → edge ID, -1 when absent
	for ai := range apps {
		edgeOf[ai] = make([]int, nExecs)
		for ei := range edgeOf[ai] {
			edgeOf[ai][ei] = -1
		}
		capacity := in.headroom(ai)
		if w := in.want(ai); capacity > w {
			capacity = w // never claim more executors than remaining demand
		}
		if capacity <= 0 {
			continue
		}
		g.AddEdge(0, 1+ai, float64(capacity), 0)
		for ei := range idle {
			local := 0
			for ti := range in.tasks[ai] {
				if localTo(in.tasks[ai][ti].td, idle[ei].Node) {
					local++
				}
			}
			if s := slotsOf(idle[ei]); local > s {
				local = s
			}
			cost := -float64(1 + 2*local)
			if mutatePolicyCostSign {
				cost = -cost // seeded bug: maximize cost; no path improves
			}
			edgeOf[ai][ei] = g.AddEdge(1+ai, 1+nApps+ei, 1, cost)
		}
	}
	for ei := range idle {
		g.AddEdge(1+nApps+ei, sink, 1, 0)
	}
	g.MinCostFlowImproving(0, sink, math.Inf(1))

	// Read the assignment back in deterministic (app, executor) order and
	// materialize slot-level grants: local tasks stored on the executor's
	// node first, then fill while residual demand remains.
	for ai := range apps {
		first := true
		for ei := range idle {
			if edgeOf[ai][ei] < 0 || g.Flow(edgeOf[ai][ei]) < 0.5 {
				continue
			}
			if first {
				in.decide(ai, obsv.PhaseLocality, -1)
				first = false
			}
			in.claim(ai, ei)
			in.serveExec(ai, ei)
		}
	}
	return in.finish()
}
