package policy

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obsv"
	"repro/internal/xrand"
)

// traceObserver stringifies the provenance stream so two runs can be
// compared byte-for-byte, plan and decisions together.
type traceObserver struct{ b strings.Builder }

func (o *traceObserver) BeginRound(apps, execs int) { fmt.Fprintf(&o.b, "round %d %d\n", apps, execs) }
func (o *traceObserver) Decide(d obsv.Decision)     { fmt.Fprintf(&o.b, "decide %#v\n", d) }
func (o *traceObserver) Grant(g obsv.Grant)         { fmt.Fprintf(&o.b, "grant %#v\n", g) }

// shuffledInstance returns deep-enough copies with every order-insensitive
// slice permuted — the app list, each app's job list, and the idle list —
// mirroring core's shuffle contract. Task order within a job is meaningful
// input and kept.
func shuffledInstance(rng *xrand.Rand, apps []core.AppDemand, idle []core.ExecInfo) ([]core.AppDemand, []core.ExecInfo) {
	as := append([]core.AppDemand(nil), apps...)
	rng.Shuffle(len(as), func(i, j int) { as[i], as[j] = as[j], as[i] })
	for i := range as {
		jobs := append([]core.JobDemand(nil), as[i].Jobs...)
		rng.Shuffle(len(jobs), func(x, y int) { jobs[x], jobs[y] = jobs[y], jobs[x] })
		as[i].Jobs = jobs
	}
	es := append([]core.ExecInfo(nil), idle...)
	rng.Shuffle(len(es), func(i, j int) { es[i], es[j] = es[j], es[i] })
	return as, es
}

// TestPoliciesDeterministicUnderShuffle extends core's shuffle contract to
// every policy in the registry: 20 trials with independently shuffled input
// slices must produce a byte-identical provenance stream and plan to the
// canonical ordering. Goroutine-free by construction, this pins that no
// policy leaks input order into its output — the property the per-policy
// golden traces rely on.
func TestPoliciesDeterministicUnderShuffle(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			rng := xrand.New(0x90110).Fork("policy-shuffle-" + name)
			for inst := 0; inst < 10; inst++ {
				apps, idle := randInstance(rng)
				run := func(a []core.AppDemand, e []core.ExecInfo) string {
					p, err := New(name)
					if err != nil {
						t.Fatal(err)
					}
					opts := core.DefaultOptions()
					obs := &traceObserver{}
					opts.Observer = obs
					plan := p.Allocate(a, e, opts)
					return obs.b.String() + fmt.Sprintf("%#v", plan)
				}
				want := run(apps, idle)
				shuf := rng.Fork(fmt.Sprintf("shuffle-%d", inst))
				for trial := 0; trial < 20; trial++ {
					as, es := shuffledInstance(shuf, apps, idle)
					if got := run(as, es); got != want {
						t.Fatalf("instance %d trial %d: trace differs under shuffled input\n got: %s\nwant: %s",
							inst, trial, got, want)
					}
				}
			}
		})
	}
}
