package policy

import "repro/internal/core"

// CustodyPolicy is the paper's two-level allocation (Algorithms 1 and 2)
// exposed behind the Policy interface. It delegates to a warm core.Session,
// so its plans are byte-identical to the manager's built-in path — the
// manager in fact short-circuits the "custody" name to its own session and
// never routes through this type; it exists so the registry is total and the
// tournament can treat the default like any other contender.
type CustodyPolicy struct {
	sess *core.Session
}

// NewCustodyPolicy builds the default policy with a fresh warm session.
func NewCustodyPolicy() *CustodyPolicy { return &CustodyPolicy{sess: core.NewSession()} }

// Name implements Policy.
func (*CustodyPolicy) Name() string { return Custody }

// Allocate implements Policy by running Algorithm 1+2 on the warm session.
func (p *CustodyPolicy) Allocate(apps []core.AppDemand, idle []core.ExecInfo, opts core.Options) core.Plan {
	if p.sess == nil {
		p.sess = core.NewSession()
	}
	return p.sess.Allocate(apps, idle, opts)
}
