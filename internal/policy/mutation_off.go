//go:build !custodymutatepolicy

package policy

// mutatePolicyCostSign gates the seeded Quincy bug used to prove the
// policy-generic modelcheck invariants have teeth. Off in normal builds;
// `go test -tags custodymutatepolicy ./internal/modelcheck` turns it on.
const mutatePolicyCostSign = false
