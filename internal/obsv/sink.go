package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/metrics"
)

// Record is the flat, sink-facing projection of every provenance event:
// decisions, grants, round boundaries, audit results, and chaos fault
// no-ops all share one schema so a single JSONL or CSV artifact
// reconstructs a run end-to-end. Unused integer fields are -1, mirroring
// trace.Event.
type Record struct {
	T     float64 `json:"t"`
	Kind  string  `json:"kind"` // round-begin | decision | grant | audit | fault-noop | mode
	Round int     `json:"round"`
	Seq   int     `json:"seq"`
	Phase string  `json:"phase,omitempty"`
	App   int     `json:"app"`
	Job   int     `json:"job"`
	Task  int     `json:"task"`
	Exec  int     `json:"exec"`
	Node  int     `json:"node"`

	Reason string `json:"reason,omitempty"`

	KeyJobs       float64 `json:"key_jobs"`
	KeyTasks      float64 `json:"key_tasks"`
	RunnerUp      int     `json:"runner_up"`
	RunnerUpJobs  float64 `json:"ru_jobs"`
	RunnerUpTasks float64 `json:"ru_tasks"`
	Unsat         int     `json:"unsat"`

	Apps       int    `json:"apps"`       // round-begin: competing applications
	Execs      int    `json:"execs"`      // round-begin: idle executors offered
	Violations int    `json:"violations"` // audit: invariant violations found
	Detail     string `json:"detail,omitempty"`
}

// blankRecord returns a Record with every integer field at its -1
// sentinel; emitters fill in what applies.
func blankRecord(t float64, kind string, round int) Record {
	return Record{
		T: t, Kind: kind, Round: round,
		Seq: -1, App: -1, Job: -1, Task: -1, Exec: -1, Node: -1,
		RunnerUp: -1, Unsat: -1, Apps: -1, Execs: -1, Violations: -1,
	}
}

// Sink consumes provenance records. Emit is called synchronously from the
// simulation; implementations should be cheap or buffered. Close flushes.
type Sink interface {
	Emit(Record) error
	Close() error
}

// JSONLSink streams records as JSON Lines.
type JSONLSink struct {
	enc *json.Encoder
	c   io.Closer
}

// NewJSONLSink writes records to w, one JSON object per line. If w is
// also an io.Closer it is closed by Close.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{enc: json.NewEncoder(w)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Emit implements Sink.
func (s *JSONLSink) Emit(r Record) error { return s.enc.Encode(r) }

// Close implements Sink.
func (s *JSONLSink) Close() error {
	if s.c != nil {
		return s.c.Close()
	}
	return nil
}

// csvHeader is the fixed column layout of CSVSink.
const csvHeader = "t,kind,round,seq,phase,app,job,task,exec,node,reason,key_jobs,key_tasks,runner_up,ru_jobs,ru_tasks,unsat,apps,execs,violations,detail"

// CSVSink streams records as CSV with a fixed header.
type CSVSink struct {
	w      io.Writer
	c      io.Closer
	headed bool
}

// NewCSVSink writes records to w as CSV. If w is also an io.Closer it is
// closed by Close.
func NewCSVSink(w io.Writer) *CSVSink {
	s := &CSVSink{w: w}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Emit implements Sink.
func (s *CSVSink) Emit(r Record) error {
	if !s.headed {
		s.headed = true
		if _, err := fmt.Fprintln(s.w, csvHeader); err != nil {
			return err
		}
	}
	row := strings.Join([]string{
		strconv.FormatFloat(r.T, 'f', 6, 64),
		r.Kind,
		strconv.Itoa(r.Round), strconv.Itoa(r.Seq), r.Phase,
		strconv.Itoa(r.App), strconv.Itoa(r.Job), strconv.Itoa(r.Task),
		strconv.Itoa(r.Exec), strconv.Itoa(r.Node),
		r.Reason,
		strconv.FormatFloat(r.KeyJobs, 'g', -1, 64),
		strconv.FormatFloat(r.KeyTasks, 'g', -1, 64),
		strconv.Itoa(r.RunnerUp),
		strconv.FormatFloat(r.RunnerUpJobs, 'g', -1, 64),
		strconv.FormatFloat(r.RunnerUpTasks, 'g', -1, 64),
		strconv.Itoa(r.Unsat),
		strconv.Itoa(r.Apps), strconv.Itoa(r.Execs), strconv.Itoa(r.Violations),
		strconv.Quote(r.Detail),
	}, ",")
	_, err := fmt.Fprintln(s.w, row)
	return err
}

// Close implements Sink.
func (s *CSVSink) Close() error {
	if s.c != nil {
		return s.c.Close()
	}
	return nil
}

// Counts aggregates the record stream by kind — the tallies behind the
// OpenMetrics counters. CountingSink and OpenMetricsSink both accumulate
// one; services can snapshot it to render a live exposition.
type Counts struct {
	Decisions   int
	Grants      int
	Audits      int
	Violations  int
	FaultNoops  int
	ModeChanges int
}

// observe tallies one record into the counts.
func (n *Counts) observe(r Record) {
	switch r.Kind {
	case "decision":
		n.Decisions++
	case "grant":
		n.Grants++
	case "audit":
		n.Audits++
		if r.Violations > 0 {
			n.Violations += r.Violations
		}
	case "fault-noop":
		n.FaultNoops++
	case "mode":
		n.ModeChanges++
	}
}

// CountingSink tallies the record stream without writing anywhere. A
// long-running service attaches one to feed a live /metrics exposition via
// RenderOpenMetrics while the stream itself goes to file sinks.
type CountingSink struct {
	n Counts
}

// Emit implements Sink.
func (s *CountingSink) Emit(r Record) error {
	s.n.observe(r)
	return nil
}

// Close implements Sink.
func (s *CountingSink) Close() error { return nil }

// Counts returns a snapshot of the tallies so far.
func (s *CountingSink) Counts() Counts { return s.n }

// OpenMetricsSink counts the record stream and, on Close, writes an
// OpenMetrics text exposition derived from those counts, the flight
// recorder, and (when bound) the run's metrics.Collector. Collector is a
// late-binding accessor because the collector typically exists only after
// the simulation has been configured; it may be nil or return nil.
type OpenMetricsSink struct {
	W         io.Writer
	Collector func() *metrics.Collector
	Flight    *FlightRecorder

	n Counts
}

// Emit implements Sink.
func (s *OpenMetricsSink) Emit(r Record) error {
	s.n.observe(r)
	return nil
}

// Close implements Sink: render the exposition.
func (s *OpenMetricsSink) Close() error {
	var col *metrics.Collector
	if s.Collector != nil {
		col = s.Collector()
	}
	if err := RenderOpenMetrics(s.W, col, s.Flight, s.n); err != nil {
		return err
	}
	if c, ok := s.W.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// Metric is one extra exposition line appended by RenderOpenMetrics — the
// hook for service-level series (queue depth, shed counts) that live above
// the provenance stream. Kind is "counter" or "gauge"; counters follow the
// OpenMetrics convention of a _total-suffixed sample.
type Metric struct {
	Name string
	Help string
	Kind string // "counter" | "gauge"
	Val  float64
}

// jctBuckets are the fixed upper bounds of the job-completion-time
// histogram, in simulated seconds. Fixed (rather than data-derived) so
// expositions from different runs are comparable.
var jctBuckets = []float64{5, 10, 20, 40, 80, 160, 320}

// RenderOpenMetrics renders one complete OpenMetrics text exposition:
// counters and gauges from the collector (locality percentages, retries,
// blacklist events), a fixed-bucket JCT histogram, flight-recorder gauges
// (fairness-heap size, retained/dropped records), and any extra
// service-level series. The output is a single buffered write ending with
// exactly one "# EOF" terminator, so a live /metrics endpoint can serve
// each render as one atomic page even under concurrent scrapes.
func RenderOpenMetrics(w io.Writer, col *metrics.Collector, fr *FlightRecorder, n Counts, extra ...Metric) error {
	var b strings.Builder
	counter := func(name, help string, v int) {
		fmt.Fprintf(&b, "# TYPE %s counter\n# HELP %s %s\n%s_total %d\n", name, name, help, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# TYPE %s gauge\n# HELP %s %s\n%s %s\n", name, name, help, name, strconv.FormatFloat(v, 'g', -1, 64))
	}

	counter("custody_decisions", "Algorithm 1 picks recorded", n.Decisions)
	counter("custody_grants", "executor slots granted", n.Grants)
	counter("custody_audits", "driver invariant audits run", n.Audits)
	counter("custody_audit_violations", "invariant violations found by audits", n.Violations)
	counter("custody_fault_noops", "chaos faults that found nothing to break", n.FaultNoops)
	counter("custody_mode_changes", "degraded-mode ladder transitions", n.ModeChanges)

	if fr != nil {
		apps, execs := fr.LastRound()
		gauge("custody_fairness_heap_size", "competing applications in the last allocation round", float64(apps))
		gauge("custody_idle_executors_offered", "idle executors offered in the last allocation round", float64(execs))
		gauge("custody_rounds", "allocation rounds observed", float64(fr.Rounds()))
		dd, dg := fr.Dropped()
		gauge("custody_flight_dropped_decisions", "decisions evicted from the flight recorder", float64(dd))
		gauge("custody_flight_dropped_grants", "grants evicted from the flight recorder", float64(dg))
	}

	if col != nil {
		gauge("custody_pct_local_jobs", "fraction of jobs with perfect input locality", col.PctLocalJobs())
		gauge("custody_pct_local_tasks", "fraction of input tasks reading locally", col.PctLocalTasks())
		counter("custody_jobs", "jobs finished", len(col.Jobs))
		counter("custody_tasks", "tasks finished", len(col.Tasks))
		counter("custody_reallocations", "manager allocation rounds", col.Reallocations)
		counter("custody_executor_migrations", "executor ownership changes", col.ExecutorMigrations)
		counter("custody_offer_rejections", "data-locality offer rejections", col.OfferRejections)
		counter("custody_task_retries", "task attempts re-queued after faults", col.TaskRetries)
		counter("custody_attempt_failures", "task attempts killed by faults", col.AttemptFailures)
		counter("custody_blacklist_events", "nodes excluded after repeated failures", col.BlacklistEvents)
		counter("custody_replication_stalls", "re-replication plans that could not be made", col.ReplicationStalls)
		counter("custody_replicas_restored", "re-replication transfers completed", col.ReplicasRestored)
		counter("custody_cache_hits", "block-cache hits across all nodes", col.CacheHits)
		counter("custody_cache_misses", "block-cache misses across all nodes", col.CacheMisses)
		counter("custody_cache_evictions", "block-cache evictions across all nodes", col.CacheEvictions)
		// One family, aggregate series plus one labeled series per node
		// with cache traffic. All zero when the cache tier is disabled.
		fmt.Fprintf(&b, "# TYPE custody_cache_hit_ratio gauge\n# HELP custody_cache_hit_ratio block-cache hits / lookups, aggregate and per node\n")
		fmt.Fprintf(&b, "custody_cache_hit_ratio %s\n", strconv.FormatFloat(col.CacheHitRatio(), 'g', -1, 64))
		nodes := make([]int, 0, len(col.CacheByNode))
		for n := range col.CacheByNode {
			nodes = append(nodes, n)
		}
		sort.Ints(nodes)
		for _, n := range nodes {
			nc := col.CacheByNode[n]
			ratio := 0.0
			if total := nc.Hits + nc.Misses; total > 0 {
				ratio = float64(nc.Hits) / float64(total)
			}
			fmt.Fprintf(&b, "custody_cache_hit_ratio{node=\"%d\"} %s\n", n, strconv.FormatFloat(ratio, 'g', -1, 64))
		}

		jct := col.JobCompletionTimes()
		fmt.Fprintf(&b, "# TYPE custody_jct_seconds histogram\n# HELP custody_jct_seconds job completion time\n")
		sum := 0.0
		for _, le := range jctBuckets {
			c := 0
			for _, x := range jct {
				if x <= le {
					c++
				}
			}
			fmt.Fprintf(&b, "custody_jct_seconds_bucket{le=\"%s\"} %d\n", strconv.FormatFloat(le, 'g', -1, 64), c)
		}
		for _, x := range jct {
			sum += x
		}
		fmt.Fprintf(&b, "custody_jct_seconds_bucket{le=\"+Inf\"} %d\n", len(jct))
		fmt.Fprintf(&b, "custody_jct_seconds_sum %s\n", strconv.FormatFloat(sum, 'g', -1, 64))
		fmt.Fprintf(&b, "custody_jct_seconds_count %d\n", len(jct))
	}

	for _, m := range extra {
		if m.Kind == "counter" {
			counter(m.Name, m.Help, int(m.Val))
		} else {
			gauge(m.Name, m.Help, m.Val)
		}
	}

	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Hub fans provenance out: it stamps every event into its FlightRecorder
// and streams the corresponding Record into every attached sink. It
// implements AllocObserver (for core.Options.Observer) and adds the taps
// the driver feeds directly: Audit results and chaos fault no-ops.
//
// With no sinks attached, every path through the Hub is allocation-free —
// the nil/empty checks keep the allocator hot path clean, which is what
// lets the benchmark-regression gate hold with observability compiled in.
type Hub struct {
	Flight *FlightRecorder

	// Clock supplies the simulated time stamped onto records; the driver
	// wires it to the event engine's clock. When nil, records carry t=0.
	Clock func() float64

	sinks []Sink
	err   error
}

// NewHub returns a Hub with a flight recorder of the given decision-ring
// capacity (grant ring is 4×; non-positive selects the defaults).
func NewHub(decisionCap int) *Hub {
	grantCap := 0
	if decisionCap > 0 {
		grantCap = 4 * decisionCap
	}
	return &Hub{Flight: NewFlightRecorder(decisionCap, grantCap)}
}

// AddSink attaches a sink; records emitted from now on stream into it.
func (h *Hub) AddSink(s Sink) { h.sinks = append(h.sinks, s) }

// Err returns the first sink error encountered, if any.
func (h *Hub) Err() error { return h.err }

// Close closes every sink, keeping the first error.
func (h *Hub) Close() error {
	for _, s := range h.sinks {
		if err := s.Close(); err != nil && h.err == nil {
			h.err = err
		}
	}
	return h.err
}

func (h *Hub) now() float64 {
	if h.Clock == nil {
		return 0
	}
	return h.Clock()
}

func (h *Hub) emit(r Record) {
	for _, s := range h.sinks {
		if err := s.Emit(r); err != nil && h.err == nil {
			h.err = err
		}
	}
}

// BeginRound implements AllocObserver.
func (h *Hub) BeginRound(apps, execs int) {
	h.Flight.BeginRound(apps, execs)
	if len(h.sinks) == 0 {
		return
	}
	r := blankRecord(h.now(), "round-begin", h.Flight.Rounds())
	r.Apps = apps
	r.Execs = execs
	h.emit(r)
}

// Decide implements AllocObserver.
func (h *Hub) Decide(d Decision) {
	d = h.Flight.pushDecision(d)
	if len(h.sinks) == 0 {
		return
	}
	r := blankRecord(h.now(), "decision", d.Round)
	r.Seq = d.Seq
	r.Phase = d.Phase.String()
	r.App = d.App
	r.Job = d.Job
	r.KeyJobs = d.Key.Jobs
	r.KeyTasks = d.Key.Tasks
	r.RunnerUp = d.RunnerUp
	r.RunnerUpJobs = d.RunnerUpKey.Jobs
	r.RunnerUpTasks = d.RunnerUpKey.Tasks
	r.Unsat = d.Unsat
	h.emit(r)
}

// Grant implements AllocObserver.
func (h *Hub) Grant(g Grant) {
	g = h.Flight.pushGrant(g)
	if len(h.sinks) == 0 {
		return
	}
	r := blankRecord(h.now(), "grant", g.Round)
	r.Seq = g.Decision
	r.App = g.App
	r.Job = g.Job
	r.Task = g.Task
	r.Exec = g.Exec
	r.Node = g.Node
	r.Reason = g.Reason.String()
	h.emit(r)
}

// Audit taps a Driver.Audit result into the sinks: the number of invariant
// violations found (0 for a clean audit) and their rendered detail.
func (h *Hub) Audit(violations int, detail string) {
	if len(h.sinks) == 0 {
		return
	}
	r := blankRecord(h.now(), "audit", h.Flight.Rounds())
	r.Violations = violations
	r.Detail = detail
	h.emit(r)
}

// Mode taps a service-mode transition (the custodyd degraded-mode ladder)
// into the sinks: Reason carries the new mode ("degraded" or "normal") and
// Detail the trigger, so overload degradation is visible in the same
// provenance artifacts as the decisions it coarsens.
func (h *Hub) Mode(degraded bool, detail string) {
	if len(h.sinks) == 0 {
		return
	}
	r := blankRecord(h.now(), "mode", h.Flight.Rounds())
	if degraded {
		r.Reason = "degraded"
	} else {
		r.Reason = "normal"
	}
	r.Detail = detail
	h.emit(r)
}

// FaultNoop taps a chaos fault that found nothing to break (the fault-noop
// trace event) into the sinks.
func (h *Hub) FaultNoop(node, exec int) {
	if len(h.sinks) == 0 {
		return
	}
	r := blankRecord(h.now(), "fault-noop", h.Flight.Rounds())
	r.Node = node
	r.Exec = exec
	h.emit(r)
}
