package obsv

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func TestFlightRecorderStampsAndRetains(t *testing.T) {
	fr := NewFlightRecorder(8, 8)
	fr.BeginRound(3, 12)
	fr.Decide(Decision{App: 1, Key: Key{Jobs: 0.5, Tasks: 0.25}, RunnerUp: 2, Job: 4, Unsat: 7})
	fr.Grant(Grant{App: 1, Exec: 9, Node: 3, Job: 4, Task: 0, Reason: ReasonLocalBlock})
	fr.Grant(Grant{App: 1, Exec: 10, Node: 5, Job: -1, Task: -1, Reason: ReasonArbitraryFill})

	if fr.Rounds() != 1 {
		t.Fatalf("rounds = %d", fr.Rounds())
	}
	if apps, execs := fr.LastRound(); apps != 3 || execs != 12 {
		t.Fatalf("last round = %d apps %d execs", apps, execs)
	}
	ds := fr.Decisions()
	if len(ds) != 1 || ds[0].Round != 1 || ds[0].Seq != 0 {
		t.Fatalf("decisions = %+v", ds)
	}
	gs := fr.Grants()
	if len(gs) != 2 || gs[0].Round != 1 || gs[0].Decision != 0 || gs[1].Decision != 0 {
		t.Fatalf("grants = %+v", gs)
	}
	if d, g := fr.Dropped(); d != 0 || g != 0 {
		t.Fatalf("dropped = %d/%d before any wrap", d, g)
	}
}

func TestFlightRecorderRingWrap(t *testing.T) {
	fr := NewFlightRecorder(4, 4)
	fr.BeginRound(1, 1)
	for i := 0; i < 10; i++ {
		fr.Decide(Decision{App: i, RunnerUp: -1, Job: -1})
		fr.Grant(Grant{App: i, Job: -1, Task: -1})
	}
	if d, g := fr.Dropped(); d != 6 || g != 6 {
		t.Fatalf("dropped = %d/%d, want 6/6", d, g)
	}
	ds := fr.Decisions()
	if len(ds) != 4 {
		t.Fatalf("retained %d decisions, want 4", len(ds))
	}
	// Oldest-first window: the last four pushes, in push order.
	for i, d := range ds {
		if want := 6 + i; d.App != want || d.Seq != want {
			t.Fatalf("decisions[%d] = %+v, want app/seq %d", i, d, want)
		}
	}
	gs := fr.Grants()
	if len(gs) != 4 || gs[0].Decision != 6 || gs[3].Decision != 9 {
		t.Fatalf("grants window = %+v", gs)
	}
}

// TestRecordingDoesNotAllocate pins the flight recorder's zero-allocation
// contract: this is what lets observability stay attached without moving
// the benchmark-regression gate. A sinkless Hub must be equally free.
func TestRecordingDoesNotAllocate(t *testing.T) {
	fr := NewFlightRecorder(64, 64)
	if n := testing.AllocsPerRun(1000, func() {
		fr.BeginRound(4, 8)
		fr.Decide(Decision{App: 1, RunnerUp: 2, Job: 3})
		fr.Grant(Grant{App: 1, Exec: 5, Node: 2, Job: 3, Task: 0})
	}); n != 0 {
		t.Fatalf("FlightRecorder allocates %.1f per round", n)
	}
	h := NewHub(64)
	if n := testing.AllocsPerRun(1000, func() {
		h.BeginRound(4, 8)
		h.Decide(Decision{App: 1, RunnerUp: 2, Job: 3})
		h.Grant(Grant{App: 1, Exec: 5, Node: 2, Job: 3, Task: 0})
		h.Audit(0, "")
		h.FaultNoop(3, -1)
	}); n != 0 {
		t.Fatalf("sinkless Hub allocates %.1f per round", n)
	}
}

func TestWriteLogPairsGrantsWithDecisions(t *testing.T) {
	fr := NewFlightRecorder(8, 8)
	fr.BeginRound(2, 4)
	fr.Decide(Decision{Phase: PhaseLocality, App: 0, Key: Key{Jobs: 0.5, Tasks: 0.5}, RunnerUp: 1, RunnerUpKey: Key{Jobs: 1, Tasks: 1}, Job: 2, Unsat: 3})
	fr.Grant(Grant{App: 0, Exec: 7, Node: 1, Job: 2, Task: 5, Reason: ReasonRackFallback})
	fr.Decide(Decision{Phase: PhaseFill, App: 1, RunnerUp: -1, Job: -1})
	fr.Grant(Grant{App: 1, Exec: 8, Node: 2, Job: -1, Task: -1, Reason: ReasonArbitraryFill})

	var b strings.Builder
	if err := fr.WriteLog(&b); err != nil {
		t.Fatal(err)
	}
	want := "decision 0 round=1 phase=locality app=0 key=0.5/0.5 runner-up=1 key=1/1 job=2 unsat=3\n" +
		"  grant exec=7 node=1 job=2 task=5 reason=rack-fallback\n" +
		"decision 1 round=1 phase=fill app=1 key=0/0 uncontested\n" +
		"  grant exec=8 node=2 reason=arbitrary-fill\n"
	if b.String() != want {
		t.Fatalf("log:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestExplainChain(t *testing.T) {
	fr := NewFlightRecorder(8, 8)
	fr.BeginRound(2, 4)
	fr.Decide(Decision{Phase: PhaseLocality, App: 0, Key: Key{Jobs: 0, Tasks: 0}, RunnerUp: 1, RunnerUpKey: Key{Jobs: 1, Tasks: 1}, Job: 5, Unsat: 9})
	fr.Grant(Grant{App: 0, Exec: 3, Node: 1, Job: 5, Task: 2, Reason: ReasonLocalBlock})
	fr.Grant(Grant{App: 0, Exec: 4, Node: 2, Job: 6, Task: 0, Reason: ReasonLocalBlock})

	var b strings.Builder
	if err := fr.Explain(&b, 0, 5); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"provenance for app 0 job 5\n",
		"grant 1: exec 3 on node 1 (local-block), round 1\n",
		"picked by decision 0 (locality phase): app 0 key 0/0 beat app 1 key 1/1\n",
		"algorithm 2 served job 5 first (9 unsatisfied tasks)\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "exec 4") {
		t.Fatalf("explain leaked another job's grant:\n%s", out)
	}

	b.Reset()
	if err := fr.Explain(&b, 7, 7); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no grants recorded") {
		t.Fatalf("empty explain = %q", b.String())
	}
}

// hubFeed drives one of each record kind through a hub.
func hubFeed(h *Hub) {
	h.BeginRound(2, 6)
	h.Decide(Decision{Phase: PhaseLocality, App: 0, Key: Key{Jobs: 0.5}, RunnerUp: 1, Job: 3, Unsat: 2})
	h.Grant(Grant{App: 0, Exec: 1, Node: 0, Job: 3, Task: 7, Reason: ReasonLocalBlock})
	h.Audit(2, "ghost exec; slot leak")
	h.FaultNoop(4, -1)
}

func TestJSONLSinkShape(t *testing.T) {
	var b strings.Builder
	h := NewHub(8)
	h.Clock = func() float64 { return 1.5 }
	h.AddSink(NewJSONLSink(&b))
	hubFeed(h)
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d records, want 5:\n%s", len(lines), b.String())
	}
	kinds := []string{"round-begin", "decision", "grant", "audit", "fault-noop"}
	for i, line := range lines {
		var r Record
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if r.Kind != kinds[i] {
			t.Fatalf("line %d kind = %q, want %q", i, r.Kind, kinds[i])
		}
		if r.T != 1.5 {
			t.Fatalf("line %d t = %v, want clock value", i, r.T)
		}
	}
	var audit Record
	if err := json.Unmarshal([]byte(lines[3]), &audit); err != nil {
		t.Fatal(err)
	}
	if audit.Violations != 2 || audit.Detail != "ghost exec; slot leak" {
		t.Fatalf("audit record = %+v", audit)
	}
}

func TestCSVSinkShape(t *testing.T) {
	var b strings.Builder
	h := NewHub(8)
	h.AddSink(NewCSVSink(&b))
	hubFeed(h)
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if lines[0] != csvHeader {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 6 {
		t.Fatalf("got %d lines, want header + 5 records:\n%s", len(lines), b.String())
	}
	cols := strings.Count(csvHeader, ",") + 1
	for i, line := range lines[1:] {
		// Detail is the only quoted field and the records above embed no
		// commas in it, so a plain count is safe here.
		if got := strings.Count(line, ",") + 1; got != cols {
			t.Fatalf("record %d has %d columns, want %d: %q", i, got, cols, line)
		}
	}
	if !strings.Contains(lines[3], "local-block") {
		t.Fatalf("grant row missing reason: %q", lines[3])
	}
}

func TestOpenMetricsSinkExposition(t *testing.T) {
	var b strings.Builder
	col := metrics.NewCollector()
	col.AddJob(metrics.JobRecord{App: 0, Submit: 0, Finish: 12, LocalInput: 1, TotalInput: 1})
	h := NewHub(8)
	h.AddSink(&OpenMetricsSink{
		W:         &b,
		Flight:    h.Flight,
		Collector: func() *metrics.Collector { return col },
	})
	hubFeed(h)
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}

	out := b.String()
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatalf("exposition does not end with # EOF:\n%s", out)
	}
	for _, want := range []string{
		"custody_decisions_total 1\n",
		"custody_grants_total 1\n",
		"custody_audits_total 1\n",
		"custody_audit_violations_total 2\n",
		"custody_fault_noops_total 1\n",
		"custody_fairness_heap_size 2\n",
		"custody_idle_executors_offered 6\n",
		"custody_pct_local_jobs 1\n",
		"custody_jct_seconds_bucket{le=\"20\"} 1\n",
		"custody_jct_seconds_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestOpenMetricsSinkNilCollector covers the -explain-only path, where no
// collector is ever bound: the exposition must still be well-formed.
func TestOpenMetricsSinkNilCollector(t *testing.T) {
	var b strings.Builder
	s := &OpenMetricsSink{W: &b}
	if err := s.Emit(Record{Kind: "decision"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasSuffix(out, "# EOF\n") || !strings.Contains(out, "custody_decisions_total 1\n") {
		t.Fatalf("nil-collector exposition malformed:\n%s", out)
	}
	if strings.Contains(out, "custody_jct_seconds") {
		t.Fatalf("nil collector should omit the JCT histogram:\n%s", out)
	}
}

func TestHubDroppedAccounting(t *testing.T) {
	h := NewHub(4) // grants ring = 16
	h.BeginRound(1, 1)
	for i := 0; i < 6; i++ {
		h.Decide(Decision{App: i, RunnerUp: -1, Job: -1})
	}
	if d, _ := h.Flight.Dropped(); d != 2 {
		t.Fatalf("dropped decisions = %d, want 2", d)
	}
}
