// Package obsv is Custody's decision-provenance and live-observability
// layer. Where internal/trace answers *what* the simulation did (a flat
// post-hoc event list), obsv answers *why*: every pick of Algorithm 1
// emits a structured Decision — the chosen application, its fairness key,
// the runner-up it beat, and the job Algorithm 2 served — and every granted
// executor slot emits a Grant tagged with the reason it was usable
// (local-block, rack-fallback, or arbitrary-fill).
//
// The package is a leaf: core, manager, and driver may import it, and it
// imports only internal/metrics (for the OpenMetrics exporter) and the
// standard library. Recording is allocation-free on the allocator's hot
// path — the FlightRecorder writes into preallocated rings — so the
// observability layer can stay attached in production runs without
// disturbing the benchmark-regression gate.
package obsv

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Phase distinguishes which half of Algorithm 1 produced a decision: the
// locality-driven MINLOCALITY loop or the budget-fill distribution of
// leftover slots.
type Phase uint8

// Decision phases.
const (
	PhaseLocality Phase = iota
	PhaseFill
)

// String returns the phase's wire name.
func (p Phase) String() string {
	switch p {
	case PhaseLocality:
		return "locality"
	case PhaseFill:
		return "fill"
	}
	return "unknown"
}

// Reason classifies why one executor slot was grantable to the task it was
// granted for.
type Reason uint8

// Grant reasons.
const (
	// ReasonLocalBlock: the executor's node stores a replica of the task's
	// input block — the NameNode's advertised holders were usable and one
	// of them supplied the slot.
	ReasonLocalBlock Reason = iota
	// ReasonRackFallback: every advertised holder was unusable and the
	// preference degraded to a node rack-local to a replica
	// (core.FallbackNodes case 2); the grant still counts as "local" for
	// the fairness metric but reads the block over the rack switch.
	ReasonRackFallback
	// ReasonArbitraryFill: a leftover slot handed out in the fill phase
	// with no locality claim at all.
	ReasonArbitraryFill
	// ReasonCacheHit: the executor's node stores a replica of the task's
	// input block *and* held it warm in its block cache when the demand
	// was built — the read is expected to stream from memory, not disk.
	// Only emitted when the cache tier is enabled.
	ReasonCacheHit
)

// String returns the reason's wire name.
func (r Reason) String() string {
	switch r {
	case ReasonLocalBlock:
		return "local-block"
	case ReasonRackFallback:
		return "rack-fallback"
	case ReasonArbitraryFill:
		return "arbitrary-fill"
	case ReasonCacheHit:
		return "cache-hit"
	}
	return "unknown"
}

// Key is one application's fairness key at a pick: the fraction of its
// jobs with perfect locality (Algorithm 1's metric) and the fraction of
// its tasks running local (the tie-breaker).
type Key struct {
	Jobs  float64
	Tasks float64
}

// String formats the key as jobs/tasks with exact float representation,
// so logs are byte-identical across runs and platforms.
func (k Key) String() string {
	return strconv.FormatFloat(k.Jobs, 'g', -1, 64) + "/" + strconv.FormatFloat(k.Tasks, 'g', -1, 64)
}

// Decision records one pick of Algorithm 1: which application was chosen,
// by what fairness-key comparison, and what Algorithm 2 did with the pick.
// Round and Seq are stamped by the FlightRecorder.
type Decision struct {
	Round int // 1-based allocation round (BeginRound count)
	Seq   int // global decision sequence number, 0-based
	Phase Phase

	App int // chosen application
	Key Key // its fairness key at pick time

	// RunnerUp is the application the pick was compared against: the next
	// entry in Algorithm 1's heap order (or, in the fill phase, the next
	// app in the frozen fill order). -1 when the pick was uncontested.
	RunnerUp    int
	RunnerUpKey Key

	// Job is the first job Algorithm 2 served for this pick (the job with
	// the fewest unsatisfied input tasks), and Unsat that job's
	// unsatisfied-task count when its first slot was granted. Job is -1
	// when the pick produced no grant (the pool had nothing useful and the
	// app was marked exhausted) or when the decision is a fill-phase one.
	Job   int
	Unsat int
}

// Grant records one executor slot granted under a decision.
type Grant struct {
	Round    int
	Decision int // Seq of the owning Decision
	App      int
	Exec     int
	Node     int
	Job      int // -1 for fill grants
	Task     int // -1 for fill grants
	Reason   Reason
}

// AllocObserver receives allocation provenance from core.Session. All
// methods are called synchronously on the allocator's goroutine; an
// implementation must not retain pointers into the allocator's state (the
// arguments are plain values).
type AllocObserver interface {
	// BeginRound marks the start of one allocation round with the size of
	// its inputs: the number of competing applications (the fairness-heap
	// size) and the number of idle executors offered.
	BeginRound(apps, execs int)
	// Decide reports one pick of Algorithm 1.
	Decide(Decision)
	// Grant reports one executor slot granted under the latest decision.
	Grant(Grant)
}

// FlightRecorder is a fixed-size ring buffer of decisions and grants — a
// flight recorder for the allocator. Writes are allocation-free; when a
// ring wraps, the oldest records are evicted and counted in Dropped. It
// implements AllocObserver directly for recorder-only use; wrap it in a
// Hub to stream records into sinks as well.
type FlightRecorder struct {
	decisions []Decision
	grants    []Grant
	dn, gn    int // monotonic push counts; ring index = (count-1) % cap

	round     int // current round, 1-based
	lastApps  int
	lastExecs int
}

// Default ring capacities: enough for every decision of a full sweep-scale
// run while keeping the recorder under ~10 MB.
const (
	DefaultDecisionCap = 1 << 15
	DefaultGrantCap    = 1 << 17
)

// NewFlightRecorder returns a recorder with the given ring capacities;
// non-positive values select the defaults. All memory is allocated up
// front so recording never allocates.
func NewFlightRecorder(decisionCap, grantCap int) *FlightRecorder {
	if decisionCap <= 0 {
		decisionCap = DefaultDecisionCap
	}
	if grantCap <= 0 {
		grantCap = DefaultGrantCap
	}
	return &FlightRecorder{
		decisions: make([]Decision, decisionCap),
		grants:    make([]Grant, grantCap),
	}
}

// BeginRound implements AllocObserver.
//
//custody:noalloc
func (fr *FlightRecorder) BeginRound(apps, execs int) {
	fr.round++
	fr.lastApps = apps
	fr.lastExecs = execs
}

// Decide implements AllocObserver.
//
//custody:noalloc
func (fr *FlightRecorder) Decide(d Decision) { fr.pushDecision(d) }

// Grant implements AllocObserver.
//
//custody:noalloc
func (fr *FlightRecorder) Grant(g Grant) { fr.pushGrant(g) }

// pushDecision stamps Round/Seq and records the decision, returning the
// stamped copy for streaming.
//
//custody:noalloc
func (fr *FlightRecorder) pushDecision(d Decision) Decision {
	d.Round = fr.round
	d.Seq = fr.dn
	fr.decisions[fr.dn%len(fr.decisions)] = d
	fr.dn++
	return d
}

// pushGrant stamps Round and the owning decision's Seq, records the grant,
// and returns the stamped copy.
//
//custody:noalloc
func (fr *FlightRecorder) pushGrant(g Grant) Grant {
	g.Round = fr.round
	g.Decision = fr.dn - 1
	fr.grants[fr.gn%len(fr.grants)] = g
	fr.gn++
	return g
}

// Rounds returns the number of allocation rounds observed.
func (fr *FlightRecorder) Rounds() int { return fr.round }

// LastRound returns the most recent round's input sizes: the number of
// competing applications (fairness-heap size) and idle executors.
func (fr *FlightRecorder) LastRound() (apps, execs int) { return fr.lastApps, fr.lastExecs }

// Dropped returns how many decisions and grants were evicted by ring wrap.
func (fr *FlightRecorder) Dropped() (decisions, grants int) {
	if d := fr.dn - len(fr.decisions); d > 0 {
		decisions = d
	}
	if g := fr.gn - len(fr.grants); g > 0 {
		grants = g
	}
	return decisions, grants
}

// Decisions returns the retained decisions in emission order (oldest
// first). The slice is freshly allocated.
func (fr *FlightRecorder) Decisions() []Decision {
	return ringSnapshot(fr.decisions, fr.dn)
}

// Grants returns the retained grants in emission order (oldest first).
func (fr *FlightRecorder) Grants() []Grant {
	return ringSnapshot(fr.grants, fr.gn)
}

// ringSnapshot copies the live window of a ring in push order.
func ringSnapshot[T any](ring []T, n int) []T {
	if n <= len(ring) {
		return append([]T(nil), ring[:n]...)
	}
	out := make([]T, 0, len(ring))
	start := n % len(ring)
	out = append(out, ring[start:]...)
	return append(out, ring[:start]...)
}

// formatDecision renders one decision as a stable single line.
func formatDecision(b *strings.Builder, d Decision) {
	fmt.Fprintf(b, "decision %d round=%d phase=%s app=%d key=%s", d.Seq, d.Round, d.Phase, d.App, d.Key)
	if d.RunnerUp >= 0 {
		fmt.Fprintf(b, " runner-up=%d key=%s", d.RunnerUp, d.RunnerUpKey)
	} else {
		b.WriteString(" uncontested")
	}
	if d.Job >= 0 {
		fmt.Fprintf(b, " job=%d unsat=%d", d.Job, d.Unsat)
	} else if d.Phase == PhaseLocality {
		b.WriteString(" no-grant")
	}
	b.WriteByte('\n')
}

// formatGrant renders one grant as a stable single line.
func formatGrant(b *strings.Builder, g Grant) {
	fmt.Fprintf(b, "  grant exec=%d node=%d", g.Exec, g.Node)
	if g.Job >= 0 {
		fmt.Fprintf(b, " job=%d task=%d", g.Job, g.Task)
	}
	fmt.Fprintf(b, " reason=%s\n", g.Reason)
}

// WriteLog writes the full retained decision log — every decision with its
// grants nested under it — in a stable text format. Two runs of the same
// seeded simulation produce byte-identical logs; the determinism property
// test in internal/core pins this.
func (fr *FlightRecorder) WriteLog(w io.Writer) error {
	decisions := fr.Decisions()
	grants := fr.Grants()
	var b strings.Builder
	dd, dg := fr.Dropped()
	if dd > 0 || dg > 0 {
		fmt.Fprintf(&b, "# ring wrapped: %d decisions and %d grants evicted\n", dd, dg)
	}
	gi := 0
	for _, d := range decisions {
		formatDecision(&b, d)
		for gi < len(grants) && grants[gi].Decision < d.Seq {
			gi++ // grants of evicted decisions
		}
		for gi < len(grants) && grants[gi].Decision == d.Seq {
			formatGrant(&b, grants[gi])
			gi++
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Explain writes the decision chain behind every grant of one (app, job)
// pair: for each retained grant of that job, the fairness-key comparison
// that picked the app, the runner-up it beat, and the reason the slot was
// usable. This is the engine behind custodysim's -explain flag.
func (fr *FlightRecorder) Explain(w io.Writer, app, job int) error {
	decisions := fr.Decisions()
	bySeq := make(map[int]Decision, len(decisions))
	for _, d := range decisions {
		bySeq[d.Seq] = d
	}
	var b strings.Builder
	fmt.Fprintf(&b, "provenance for app %d job %d\n", app, job)
	if dd, dg := fr.Dropped(); dd > 0 || dg > 0 {
		fmt.Fprintf(&b, "# ring wrapped: %d decisions and %d grants evicted; chain may be incomplete\n", dd, dg)
	}
	n := 0
	for _, g := range fr.Grants() {
		if g.App != app || g.Job != job {
			continue
		}
		n++
		fmt.Fprintf(&b, "grant %d: exec %d on node %d (%s), round %d\n", n, g.Exec, g.Node, g.Reason, g.Round)
		d, ok := bySeq[g.Decision]
		if !ok {
			fmt.Fprintf(&b, "  decision %d evicted from flight recorder\n", g.Decision)
			continue
		}
		fmt.Fprintf(&b, "  picked by decision %d (%s phase): app %d key %s", d.Seq, d.Phase, d.App, d.Key)
		if d.RunnerUp >= 0 {
			fmt.Fprintf(&b, " beat app %d key %s\n", d.RunnerUp, d.RunnerUpKey)
		} else {
			b.WriteString(" uncontested\n")
		}
		if d.Job >= 0 {
			fmt.Fprintf(&b, "  algorithm 2 served job %d first (%d unsatisfied tasks)\n", d.Job, d.Unsat)
		}
	}
	if n == 0 {
		b.WriteString("no grants recorded for this job\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}
