package maxflow

// ConcurrentInstance describes a maximum concurrent flow instance built the
// way §III-B constructs it:
//
//	source_i → task nodes (capacity 1 each) → executor nodes → sink,
//
// where commodity i's demand equals the application's number of input tasks
// τ_i. The objective is the largest common fraction λ such that every
// application can simultaneously route λ·τ_i units.
type ConcurrentInstance struct {
	// Demands[i] is commodity i's demand (τ_i).
	Demands []float64
	// Build constructs the network with a super-source edge of capacity
	// demand*lambda for each commodity and returns (graph, source, sink).
	// It is invoked once per λ probe.
	Build func(lambda float64) (g *Graph, s, t int)
}

// MaxConcurrentFraction binary-searches the largest λ ∈ [0,1] for which the
// single-super-source max-flow saturates all scaled demands. Because all
// commodities share disjoint task nodes in the paper's construction, the
// multicommodity problem collapses to a single-commodity feasibility check.
// The returned λ is the fractional (LP-relaxed) optimum within tol — an
// upper bound on what any integral allocation (and hence Custody) can
// achieve (§III-B: the integral problem is NP-hard).
func MaxConcurrentFraction(inst ConcurrentInstance, tol float64) float64 {
	if tol <= 0 {
		tol = 1e-4
	}
	total := 0.0
	for _, d := range inst.Demands {
		total += d
	}
	if total == 0 {
		return 1
	}
	feasible := func(lambda float64) bool {
		g, s, t := inst.Build(lambda)
		want := 0.0
		for _, d := range inst.Demands {
			want += d * lambda
		}
		got := g.MaxFlow(s, t)
		return got+1e-7 >= want
	}
	lo, hi := 0.0, 1.0
	if feasible(1) {
		return 1
	}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		if feasible(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// LocalityInstance is the concrete §III-B network for the task-level
// data-aware sharing problem: application i has Tasks[i] input tasks, task k
// of application i can run locally on the executors in Candidates[i][k]
// (executor indices are cluster-wide, 0..Executors-1).
type LocalityInstance struct {
	Executors  int
	Candidates [][][]int // [app][task] → executor indices with the block
}

// FractionalUpperBound returns the LP-relaxed max-min fraction of local
// tasks per application, and the per-application demands used.
func (li LocalityInstance) FractionalUpperBound(tol float64) float64 {
	demands := make([]float64, len(li.Candidates))
	for i, tasks := range li.Candidates {
		demands[i] = float64(len(tasks))
	}
	inst := ConcurrentInstance{
		Demands: demands,
		Build: func(lambda float64) (*Graph, int, int) {
			// Node layout: 0 = super source, 1..A = app sources,
			// then one node per task, then one per executor, then sink.
			apps := len(li.Candidates)
			taskBase := 1 + apps
			nTasks := 0
			for _, ts := range li.Candidates {
				nTasks += len(ts)
			}
			execBase := taskBase + nTasks
			sink := execBase + li.Executors
			g := NewGraph(sink + 1)
			tn := taskBase
			for i, tasks := range li.Candidates {
				g.AddEdge(0, 1+i, demands[i]*lambda)
				for _, cands := range tasks {
					g.AddEdge(1+i, tn, 1)
					for _, e := range cands {
						g.AddEdge(tn, execBase+e, 1)
					}
					tn++
				}
			}
			for e := 0; e < li.Executors; e++ {
				g.AddEdge(execBase+e, sink, 1)
			}
			return g, 0, sink
		},
	}
	return MaxConcurrentFraction(inst, tol)
}
