package maxflow

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestMaxFlowTrivial(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1, 5)
	if f := g.MaxFlow(0, 1); f != 5 {
		t.Fatalf("MaxFlow = %v, want 5", f)
	}
}

func TestMaxFlowSameSourceSink(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1, 5)
	if f := g.MaxFlow(0, 0); f != 0 {
		t.Fatalf("MaxFlow(s,s) = %v", f)
	}
}

func TestMaxFlowClassic(t *testing.T) {
	// CLRS-style example.
	g := NewGraph(6)
	g.AddEdge(0, 1, 16)
	g.AddEdge(0, 2, 13)
	g.AddEdge(1, 2, 10)
	g.AddEdge(2, 1, 4)
	g.AddEdge(1, 3, 12)
	g.AddEdge(3, 2, 9)
	g.AddEdge(2, 4, 14)
	g.AddEdge(4, 3, 7)
	g.AddEdge(3, 5, 20)
	g.AddEdge(4, 5, 4)
	if f := g.MaxFlow(0, 5); f != 23 {
		t.Fatalf("MaxFlow = %v, want 23", f)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, 10)
	g.AddEdge(2, 3, 10)
	if f := g.MaxFlow(0, 3); f != 0 {
		t.Fatalf("MaxFlow across disconnected graph = %v", f)
	}
}

func TestEdgeFlowAccessors(t *testing.T) {
	g := NewGraph(3)
	a := g.AddEdge(0, 1, 7)
	b := g.AddEdge(1, 2, 4)
	g.MaxFlow(0, 2)
	if g.Flow(a) != 4 || g.Flow(b) != 4 {
		t.Fatalf("edge flows = %v, %v, want 4, 4", g.Flow(a), g.Flow(b))
	}
	if g.ResidualCap(a) != 3 {
		t.Fatalf("residual = %v, want 3", g.ResidualCap(a))
	}
}

func TestBipartiteViaMaxFlow(t *testing.T) {
	// 3 tasks, 3 executors; task i can go to executor i and (i+1)%3.
	// Perfect matching of size 3 exists.
	g := NewGraph(8) // 0 src, 1-3 tasks, 4-6 execs, 7 sink
	for i := 0; i < 3; i++ {
		g.AddEdge(0, 1+i, 1)
		g.AddEdge(1+i, 4+i, 1)
		g.AddEdge(1+i, 4+(i+1)%3, 1)
		g.AddEdge(4+i, 7, 1)
	}
	if f := g.MaxFlow(0, 7); f != 3 {
		t.Fatalf("matching size = %v, want 3", f)
	}
}

// Property: max-flow equals min-cut on random small graphs (verified by
// brute-force min-cut enumeration).
func TestQuickMaxFlowMinCut(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := rng.IntRange(2, 7)
		type edge struct {
			u, v int
			c    float64
		}
		var edges []edge
		m := rng.IntRange(1, 12)
		for i := 0; i < m; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			edges = append(edges, edge{u, v, float64(rng.IntRange(0, 10))})
		}
		g := NewGraph(n)
		for _, e := range edges {
			g.AddEdge(e.u, e.v, e.c)
		}
		s, t0 := 0, n-1
		got := g.MaxFlow(s, t0)
		// Brute-force min cut over all subsets containing s but not t.
		best := math.Inf(1)
		for mask := 0; mask < (1 << n); mask++ {
			if mask&(1<<s) == 0 || mask&(1<<t0) != 0 {
				continue
			}
			cut := 0.0
			for _, e := range edges {
				if mask&(1<<e.u) != 0 && mask&(1<<e.v) == 0 {
					cut += e.c
				}
			}
			if cut < best {
				best = cut
			}
		}
		return math.Abs(got-best) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestClone(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 5)
	c := g.Clone()
	if f := c.MaxFlow(0, 2); f != 5 {
		t.Fatalf("clone MaxFlow = %v", f)
	}
	// Solving the clone must not disturb the original.
	if g.ResidualCap(0) != 5 {
		t.Fatal("solving clone mutated original")
	}
}

func TestConcurrentFractionPerfect(t *testing.T) {
	// Two apps, two tasks each, four executors, disjoint candidates:
	// λ = 1 achievable (the Fig. 1 example).
	li := LocalityInstance{
		Executors: 4,
		Candidates: [][][]int{
			{{0}, {1}},
			{{2}, {3}},
		},
	}
	if got := li.FractionalUpperBound(1e-4); got != 1 {
		t.Fatalf("fraction = %v, want 1", got)
	}
}

func TestConcurrentFractionContended(t *testing.T) {
	// Two apps, one task each, both only runnable on executor 0:
	// only one can be local → λ* = 1/2 fractionally.
	li := LocalityInstance{
		Executors:  1,
		Candidates: [][][]int{{{0}}, {{0}}},
	}
	got := li.FractionalUpperBound(1e-4)
	if math.Abs(got-0.5) > 1e-3 {
		t.Fatalf("fraction = %v, want 0.5", got)
	}
}

func TestConcurrentFractionZeroTasks(t *testing.T) {
	li := LocalityInstance{Executors: 2, Candidates: [][][]int{{}, {}}}
	if got := li.FractionalUpperBound(1e-4); got != 1 {
		t.Fatalf("fraction with no demand = %v, want 1", got)
	}
}

// Property: the fractional bound is monotone — adding executors to a task's
// candidate set never lowers the bound.
func TestQuickConcurrentMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		apps := rng.IntRange(1, 3)
		execs := rng.IntRange(2, 6)
		cands := make([][][]int, apps)
		for i := range cands {
			tasks := rng.IntRange(1, 4)
			for k := 0; k < tasks; k++ {
				c := rng.Sample(execs, rng.IntRange(1, 2))
				cands[i] = append(cands[i], c)
			}
		}
		base := LocalityInstance{Executors: execs, Candidates: cands}.FractionalUpperBound(1e-3)
		// Widen one random task's candidates to all executors.
		wider := make([][][]int, apps)
		for i := range cands {
			wider[i] = append([][]int(nil), cands[i]...)
		}
		ai := rng.Intn(apps)
		ti := rng.Intn(len(wider[ai]))
		all := make([]int, execs)
		for e := range all {
			all[e] = e
		}
		wider[ai][ti] = all
		after := LocalityInstance{Executors: execs, Candidates: wider}.FractionalUpperBound(1e-3)
		return after+5e-3 >= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMinCostFlowSimple(t *testing.T) {
	// Two parallel paths: cheap (cost 1, cap 2) and expensive (cost 5, cap 10).
	g := NewMinCostGraph(2)
	g.AddEdge(0, 1, 2, 1)
	g.AddEdge(0, 1, 10, 5)
	flow, cost := g.MinCostFlow(0, 1, 5)
	if flow != 5 {
		t.Fatalf("flow = %v, want 5", flow)
	}
	if cost != 2*1+3*5 {
		t.Fatalf("cost = %v, want 17", cost)
	}
}

func TestMinCostFlowPath(t *testing.T) {
	g := NewMinCostGraph(4)
	g.AddEdge(0, 1, 2, 1)
	g.AddEdge(0, 2, 1, 2)
	g.AddEdge(1, 3, 1, 3)
	g.AddEdge(1, 2, 1, 1)
	g.AddEdge(2, 3, 2, 1)
	flow, cost := g.MinCostFlow(0, 3, 3)
	if flow != 3 {
		t.Fatalf("flow = %v, want 3", flow)
	}
	// Cheapest: 0→1→2→3 (cost 3), 0→2→3 (cost 3), 0→1→3 (cost 4) = 10.
	if cost != 10 {
		t.Fatalf("cost = %v, want 10", cost)
	}
}

func TestMinCostFlowNegativeCosts(t *testing.T) {
	g := NewMinCostGraph(3)
	g.AddEdge(0, 1, 1, -2)
	g.AddEdge(1, 2, 1, 1)
	g.AddEdge(0, 2, 1, 5)
	flow, cost := g.MinCostFlow(0, 2, 2)
	if flow != 2 {
		t.Fatalf("flow = %v, want 2", flow)
	}
	if cost != (-2+1)+5 {
		t.Fatalf("cost = %v, want 4", cost)
	}
}

func TestMinCostFlowAssignment(t *testing.T) {
	// 2 tasks × 2 executors assignment: costs [[1, 10], [10, 1]].
	// Min-cost perfect assignment = 2.
	g := NewMinCostGraph(6) // 0 src, 1-2 tasks, 3-4 execs, 5 sink
	g.AddEdge(0, 1, 1, 0)
	g.AddEdge(0, 2, 1, 0)
	g.AddEdge(1, 3, 1, 1)
	g.AddEdge(1, 4, 1, 10)
	g.AddEdge(2, 3, 1, 10)
	g.AddEdge(2, 4, 1, 1)
	g.AddEdge(3, 5, 1, 0)
	g.AddEdge(4, 5, 1, 0)
	flow, cost := g.MinCostFlow(0, 5, 2)
	if flow != 2 || cost != 2 {
		t.Fatalf("flow=%v cost=%v, want 2, 2", flow, cost)
	}
}

// Property: min-cost flow pushes the same total flow as max-flow.
func TestQuickMinCostMatchesMaxFlow(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := rng.IntRange(2, 7)
		type edge struct {
			u, v int
			c    float64
			w    float64
		}
		var edges []edge
		for i := 0; i < rng.IntRange(1, 12); i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			edges = append(edges, edge{u, v, float64(rng.IntRange(0, 8)), float64(rng.IntRange(0, 5))})
		}
		mf := NewGraph(n)
		mc := NewMinCostGraph(n)
		for _, e := range edges {
			mf.AddEdge(e.u, e.v, e.c)
			mc.AddEdge(e.u, e.v, e.c, e.w)
		}
		want := mf.MaxFlow(0, n-1)
		got, _ := mc.MinCostFlow(0, n-1, math.Inf(1))
		return math.Abs(got-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDinicBipartite(b *testing.B) {
	rng := xrand.New(11)
	const tasks, execs = 200, 200
	for i := 0; i < b.N; i++ {
		g := NewGraph(2 + tasks + execs)
		sink := 1 + tasks + execs
		for t := 0; t < tasks; t++ {
			g.AddEdge(0, 1+t, 1)
			for _, e := range rng.Sample(execs, 3) {
				g.AddEdge(1+t, 1+tasks+e, 1)
			}
		}
		for e := 0; e < execs; e++ {
			g.AddEdge(1+tasks+e, sink, 1)
		}
		if g.MaxFlow(0, sink) == 0 {
			b.Fatal("no flow")
		}
	}
}

func BenchmarkConcurrentFractionalBound(b *testing.B) {
	rng := xrand.New(13)
	const execs = 60
	cands := make([][][]int, 3)
	for a := range cands {
		for k := 0; k < 20; k++ {
			cands[a] = append(cands[a], rng.Sample(execs, 3))
		}
	}
	li := LocalityInstance{Executors: execs, Candidates: cands}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if li.FractionalUpperBound(1e-3) <= 0 {
			b.Fatal("zero bound")
		}
	}
}
