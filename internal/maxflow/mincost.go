package maxflow

import (
	"container/heap"
	"math"
)

// MinCostGraph is a flow network with per-edge costs, solved with successive
// shortest augmenting paths (Dijkstra + Johnson potentials). It backs the
// Quincy-style scheduler comparator (§VII related work).
type MinCostGraph struct {
	n    int
	head []int
	next []int
	to   []int
	cap  []float64
	cost []float64
}

// NewMinCostGraph creates an empty min-cost flow network with n nodes.
func NewMinCostGraph(n int) *MinCostGraph {
	head := make([]int, n)
	for i := range head {
		head[i] = -1
	}
	return &MinCostGraph{n: n, head: head}
}

// AddEdge adds a directed edge u→v with the given capacity and cost and
// returns its index. Costs may be negative only on edges never part of a
// residual cycle (the solver assumes no negative cycles).
func (g *MinCostGraph) AddEdge(u, v int, capacity, cost float64) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic("maxflow: mincost edge endpoint out of range")
	}
	if capacity < 0 {
		panic("maxflow: mincost negative capacity")
	}
	id := len(g.to)
	g.to = append(g.to, v)
	g.cap = append(g.cap, capacity)
	g.cost = append(g.cost, cost)
	g.next = append(g.next, g.head[u])
	g.head[u] = id

	g.to = append(g.to, u)
	g.cap = append(g.cap, 0)
	g.cost = append(g.cost, -cost)
	g.next = append(g.next, g.head[v])
	g.head[v] = id + 1
	return id
}

// Flow returns the flow pushed through edge id.
func (g *MinCostGraph) Flow(id int) float64 { return g.cap[id^1] }

type pqItem struct {
	node int
	dist float64
}

type pq []pqItem

func (p pq) Len() int           { return len(p) }
func (p pq) Less(i, j int) bool { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x any)        { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() any          { old := *p; n := len(old); it := old[n-1]; *p = old[:n-1]; return it }

// MinCostFlow pushes up to maxFlow units from s to t minimizing total cost.
// It returns the flow actually pushed and its cost. Initial negative edge
// costs are handled with one Bellman–Ford pass to seed the potentials.
func (g *MinCostGraph) MinCostFlow(s, t int, maxFlow float64) (flow, cost float64) {
	return g.minCostFlow(s, t, maxFlow, false)
}

// MinCostFlowImproving is MinCostFlow but stops as soon as the next
// augmenting path has non-negative cost: the result is the cheapest flow of
// any value ≤ maxFlow. With negated weights this solves maximum-weight
// matching under a cardinality budget (successive shortest paths find flows
// of value k that are optimal for each k, with monotonically non-decreasing
// path costs).
func (g *MinCostGraph) MinCostFlowImproving(s, t int, maxFlow float64) (flow, cost float64) {
	return g.minCostFlow(s, t, maxFlow, true)
}

func (g *MinCostGraph) minCostFlow(s, t int, maxFlow float64, improvingOnly bool) (flow, cost float64) {
	if s == t {
		return 0, 0
	}
	h := make([]float64, g.n) // potentials
	// Bellman–Ford to initialize potentials when negative costs exist.
	hasNeg := false
	for _, c := range g.cost {
		if c < 0 {
			hasNeg = true
			break
		}
	}
	if hasNeg {
		for i := range h {
			h[i] = math.Inf(1)
		}
		h[s] = 0
		for iter := 0; iter < g.n; iter++ {
			changed := false
			for u := 0; u < g.n; u++ {
				if math.IsInf(h[u], 1) {
					continue
				}
				for id := g.head[u]; id != -1; id = g.next[id] {
					if g.cap[id] > eps && h[u]+g.cost[id] < h[g.to[id]]-1e-12 {
						h[g.to[id]] = h[u] + g.cost[id]
						changed = true
					}
				}
			}
			if !changed {
				break
			}
		}
		for i := range h {
			if math.IsInf(h[i], 1) {
				h[i] = 0
			}
		}
	}

	dist := make([]float64, g.n)
	prevEdge := make([]int, g.n)
	for flow < maxFlow {
		// Dijkstra on reduced costs.
		for i := range dist {
			dist[i] = math.Inf(1)
			prevEdge[i] = -1
		}
		dist[s] = 0
		q := pq{{s, 0}}
		for len(q) > 0 {
			it := heap.Pop(&q).(pqItem)
			if it.dist > dist[it.node]+1e-12 {
				continue
			}
			u := it.node
			for id := g.head[u]; id != -1; id = g.next[id] {
				if g.cap[id] <= eps {
					continue
				}
				v := g.to[id]
				nd := dist[u] + g.cost[id] + h[u] - h[v]
				if nd < dist[v]-1e-12 {
					dist[v] = nd
					prevEdge[v] = id
					heap.Push(&q, pqItem{v, nd})
				}
			}
		}
		if math.IsInf(dist[t], 1) {
			break
		}
		if improvingOnly && dist[t]+h[t]-h[s] >= -1e-12 {
			break // the cheapest remaining path would not improve the cost
		}
		for i := range h {
			if !math.IsInf(dist[i], 1) {
				h[i] += dist[i]
			}
		}
		// Find bottleneck along the path.
		push := maxFlow - flow
		for v := t; v != s; {
			id := prevEdge[v]
			if g.cap[id] < push {
				push = g.cap[id]
			}
			v = g.to[id^1]
		}
		for v := t; v != s; {
			id := prevEdge[v]
			g.cap[id] -= push
			g.cap[id^1] += push
			cost += push * g.cost[id]
			v = g.to[id^1]
		}
		flow += push
	}
	return flow, cost
}
