// Package maxflow implements the network-flow machinery used by the paper's
// theoretical analysis (§III): Dinic's maximum-flow algorithm (integer and
// floating-point capacities), a successive-shortest-path min-cost flow, and
// the fractional maximum concurrent flow bound obtained by binary search
// over the common throughput fraction λ.
package maxflow

import "math"

// Graph is a flow network under construction. Nodes are dense ints.
type Graph struct {
	n     int
	head  []int
	next  []int
	to    []int
	cap   []float64
	level []int
	iter  []int
}

// NewGraph creates a flow network with n nodes and no edges.
func NewGraph(n int) *Graph {
	head := make([]int, n)
	for i := range head {
		head[i] = -1
	}
	return &Graph{n: n, head: head}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// AddEdge adds a directed edge u→v with the given capacity and returns its
// edge index; the reverse edge (capacity 0) is the returned index ^ 1.
func (g *Graph) AddEdge(u, v int, capacity float64) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic("maxflow: edge endpoint out of range")
	}
	if capacity < 0 {
		panic("maxflow: negative capacity")
	}
	id := len(g.to)
	g.to = append(g.to, v)
	g.cap = append(g.cap, capacity)
	g.next = append(g.next, g.head[u])
	g.head[u] = id

	g.to = append(g.to, u)
	g.cap = append(g.cap, 0)
	g.next = append(g.next, g.head[v])
	g.head[v] = id + 1
	return id
}

// Flow returns the flow pushed through edge id (the reverse edge's residual).
func (g *Graph) Flow(id int) float64 { return g.cap[id^1] }

// ResidualCap returns the remaining capacity of edge id.
func (g *Graph) ResidualCap(id int) float64 { return g.cap[id] }

// eps is the tolerance below which a residual capacity counts as zero for
// float networks. Integer uses exact comparisons since values stay integral.
const eps = 1e-9

// MaxFlow computes the maximum s→t flow with Dinic's algorithm. For integral
// capacities the result is integral (Dinic preserves integrality).
func (g *Graph) MaxFlow(s, t int) float64 {
	if s == t {
		return 0
	}
	total := 0.0
	for g.bfs(s, t) {
		for i := range g.iter {
			g.iter[i] = g.head[i]
		}
		for {
			f := g.dfs(s, t, math.Inf(1))
			if f <= eps {
				break
			}
			total += f
		}
	}
	return total
}

func (g *Graph) bfs(s, t int) bool {
	if g.level == nil {
		g.level = make([]int, g.n)
		g.iter = make([]int, g.n)
	}
	for i := range g.level {
		g.level[i] = -1
	}
	queue := make([]int, 0, g.n)
	g.level[s] = 0
	queue = append(queue, s)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for id := g.head[u]; id != -1; id = g.next[id] {
			v := g.to[id]
			if g.cap[id] > eps && g.level[v] < 0 {
				g.level[v] = g.level[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return g.level[t] >= 0
}

func (g *Graph) dfs(u, t int, limit float64) float64 {
	if u == t {
		return limit
	}
	for ; g.iter[u] != -1; g.iter[u] = g.next[g.iter[u]] {
		id := g.iter[u]
		v := g.to[id]
		if g.cap[id] <= eps || g.level[v] != g.level[u]+1 {
			continue
		}
		f := g.dfs(v, t, math.Min(limit, g.cap[id]))
		if f > eps {
			g.cap[id] -= f
			g.cap[id^1] += f
			return f
		}
	}
	return 0
}

// Clone returns a deep copy of the graph (useful for re-solving with
// different parameters, as the concurrent-flow search does).
func (g *Graph) Clone() *Graph {
	c := &Graph{n: g.n}
	c.head = append([]int(nil), g.head...)
	c.next = append([]int(nil), g.next...)
	c.to = append([]int(nil), g.to...)
	c.cap = append([]float64(nil), g.cap...)
	return c
}

// SetCap overwrites the capacity of edge id (and zeroes any pushed flow on
// its reverse edge). Only meaningful before solving.
func (g *Graph) SetCap(id int, capacity float64) {
	g.cap[id] = capacity
	g.cap[id^1] = 0
}
