package maxflow

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

// The min-cost differential battery checks the successive-shortest-path
// solver against a brute-force oracle that enumerates every integer flow on
// small DAGs (≤6 nodes, ≤8 edges, capacities ≤2, so at most 3^8 = 6561
// assignments). DAG edges (u < v) rule out cycles entirely, so negative
// costs — the regime the Quincy policy drives the solver in — are safe to
// generate without tripping the no-negative-cycle precondition.

// diffEdge is one generated edge of a differential instance.
type diffEdge struct {
	u, v int
	cap  int
	cost float64
}

// oracleFlows enumerates every feasible integer flow and returns
// costAt[f] = minimal cost of a flow of value exactly f, for f = 0..fmax.
func oracleFlows(n int, edges []diffEdge, s, t int) []float64 {
	costAt := []float64{0} // the zero flow always exists
	assign := make([]int, len(edges))
	var rec func(i int)
	rec = func(i int) {
		if i < len(edges) {
			for f := 0; f <= edges[i].cap; f++ {
				assign[i] = f
				rec(i + 1)
			}
			return
		}
		// Conservation at every node except s and t.
		net := make([]int, n)
		cost := 0.0
		for j, e := range edges {
			net[e.u] -= assign[j]
			net[e.v] += assign[j]
			cost += float64(assign[j]) * e.cost
		}
		for v := 0; v < n; v++ {
			if v != s && v != t && net[v] != 0 {
				return
			}
		}
		val := -net[s]
		if val < 0 {
			return
		}
		for len(costAt) <= val {
			costAt = append(costAt, math.Inf(1))
		}
		if cost < costAt[val] {
			costAt[val] = cost
		}
	}
	rec(0)
	return costAt
}

// genDiffInstance draws one small DAG instance.
func genDiffInstance(rng *xrand.Rand) (n int, edges []diffEdge) {
	n = rng.IntRange(2, 6)
	m := rng.IntRange(1, 8)
	for i := 0; i < m; i++ {
		u := rng.Intn(n - 1)
		v := u + 1 + rng.Intn(n-1-u)
		edges = append(edges, diffEdge{
			u: u, v: v,
			cap:  rng.Intn(3),
			cost: float64(rng.IntRange(-4, 6)),
		})
	}
	return n, edges
}

// buildGraph loads the instance into a solver graph, returning edge IDs.
func buildGraph(n int, edges []diffEdge) (*MinCostGraph, []int) {
	g := NewMinCostGraph(n)
	ids := make([]int, len(edges))
	for i, e := range edges {
		ids[i] = g.AddEdge(e.u, e.v, float64(e.cap), e.cost)
	}
	return g, ids
}

// checkFeasible verifies the solver's per-edge flows form a feasible flow
// of the returned value and cost.
func checkFeasible(t *testing.T, g *MinCostGraph, n int, edges []diffEdge, ids []int, s, tt int, flow, cost float64) {
	t.Helper()
	net := make([]float64, n)
	sum := 0.0
	for i, e := range edges {
		f := g.Flow(ids[i])
		if f < -1e-9 || f > float64(e.cap)+1e-9 {
			t.Fatalf("edge %d→%d flow %v outside [0, %d]", e.u, e.v, f, e.cap)
		}
		net[e.u] -= f
		net[e.v] += f
		sum += f * e.cost
	}
	for v := 0; v < n; v++ {
		if v != s && v != tt && math.Abs(net[v]) > 1e-9 {
			t.Fatalf("conservation violated at node %d: net %v", v, net[v])
		}
	}
	if math.Abs(-net[s]-flow) > 1e-9 {
		t.Fatalf("returned flow %v but edges carry %v out of the source", flow, -net[s])
	}
	if math.Abs(sum-cost) > 1e-9 {
		t.Fatalf("returned cost %v but edge flows cost %v", cost, sum)
	}
}

// TestMinCostFlowDifferential: MinCostFlow must push min(fmax, maxFlow)
// units at exactly the oracle's minimal cost for that value.
func TestMinCostFlowDifferential(t *testing.T) {
	for seed := uint64(1); seed <= 400; seed++ {
		rng := xrand.New(seed).Fork("mincost-diff")
		n, edges := genDiffInstance(rng)
		s, tt := 0, n-1
		maxFlow := rng.Intn(5)
		costAt := oracleFlows(n, edges, s, tt)

		g, ids := buildGraph(n, edges)
		flow, cost := g.MinCostFlow(s, tt, float64(maxFlow))

		wantFlow := len(costAt) - 1
		if maxFlow < wantFlow {
			wantFlow = maxFlow
		}
		if math.Abs(flow-float64(wantFlow)) > 1e-9 {
			t.Fatalf("seed %d: flow = %v, oracle says %d (n=%d edges=%+v maxFlow=%d)",
				seed, flow, wantFlow, n, edges, maxFlow)
		}
		if math.Abs(cost-costAt[wantFlow]) > 1e-9 {
			t.Fatalf("seed %d: cost = %v, oracle says %v (n=%d edges=%+v maxFlow=%d)",
				seed, cost, costAt[wantFlow], n, edges, maxFlow)
		}
		checkFeasible(t, g, n, edges, ids, s, tt, flow, cost)
	}
}

// TestMinCostFlowImprovingDifferential: MinCostFlowImproving must return
// the cheapest flow of any value ≤ maxFlow — the quantity the Quincy
// policy's negated-benefit network relies on.
func TestMinCostFlowImprovingDifferential(t *testing.T) {
	for seed := uint64(1); seed <= 400; seed++ {
		rng := xrand.New(seed).Fork("mincost-diff-improving")
		n, edges := genDiffInstance(rng)
		s, tt := 0, n-1
		costAt := oracleFlows(n, edges, s, tt)

		g, ids := buildGraph(n, edges)
		flow, cost := g.MinCostFlowImproving(s, tt, math.Inf(1))

		want := 0.0
		for _, c := range costAt {
			if c < want {
				want = c
			}
		}
		if math.Abs(cost-want) > 1e-9 {
			t.Fatalf("seed %d: improving cost = %v, oracle says %v (n=%d edges=%+v)",
				seed, cost, want, n, edges)
		}
		checkFeasible(t, g, n, edges, ids, s, tt, flow, cost)
	}
}

// FuzzMinCostFlow drives the same differential from fuzzer-chosen bytes, so
// the corpus can wander outside xrand's distribution.
func FuzzMinCostFlow(f *testing.F) {
	f.Add([]byte{3, 2, 0, 1, 2, 1, 1, 2, 1, 9})
	f.Add([]byte{5, 4, 0, 4, 2, 0, 1, 3, 1, 1, 2, 2, 2, 3, 0, 10})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		n := 2 + int(data[0])%5
		maxFlow := int(data[1]) % 5
		var edges []diffEdge
		for i := 2; i+2 < len(data) && len(edges) < 8; i += 3 {
			u := int(data[i]) % (n - 1)
			v := u + 1 + int(data[i+1])%(n-1-u)
			edges = append(edges, diffEdge{
				u: u, v: v,
				cap:  int(data[i+2]) % 3,
				cost: float64(int(data[i+2]/3)%11 - 4),
			})
		}
		if len(edges) == 0 {
			return
		}
		s, tt := 0, n-1
		costAt := oracleFlows(n, edges, s, tt)

		g, ids := buildGraph(n, edges)
		flow, cost := g.MinCostFlow(s, tt, float64(maxFlow))
		wantFlow := len(costAt) - 1
		if maxFlow < wantFlow {
			wantFlow = maxFlow
		}
		if math.Abs(flow-float64(wantFlow)) > 1e-9 || math.Abs(cost-costAt[wantFlow]) > 1e-9 {
			t.Fatalf("flow=%v cost=%v, oracle wants flow=%d cost=%v (edges=%+v)",
				flow, cost, wantFlow, costAt[wantFlow], edges)
		}
		checkFeasible(t, g, n, edges, ids, s, tt, flow, cost)

		g2, ids2 := buildGraph(n, edges)
		flow2, cost2 := g2.MinCostFlowImproving(s, tt, math.Inf(1))
		want := 0.0
		for _, c := range costAt {
			if c < want {
				want = c
			}
		}
		if math.Abs(cost2-want) > 1e-9 {
			t.Fatalf("improving cost=%v, oracle wants %v (edges=%+v)", cost2, want, edges)
		}
		checkFeasible(t, g2, n, edges, ids2, s, tt, flow2, cost2)
	})
}
