package experiments

import (
	"fmt"
	"strings"

	"repro/internal/driver"
	"repro/internal/metrics"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// HeteroRow is one heterogeneity configuration's outcome.
type HeteroRow struct {
	Manager     ManagerKind
	Slow        bool // 20% of nodes at 1/3 speed
	Speculation bool
	JCT         float64
	P95         float64
	Locality    float64
}

// HeteroResult is ablation A11: persistent stragglers from heterogeneous
// hardware, with and without speculative execution, under both managers.
type HeteroResult struct{ Rows []HeteroRow }

// RunHetero measures how hardware heterogeneity erodes each manager's gains
// and how much speculation recovers.
func RunHetero(opts Options) (HeteroResult, error) {
	opts = opts.normalize()
	spec := workload.DefaultSpec(workload.Sort)
	spec.Apps = opts.Apps
	spec.JobsPerApp = opts.JobsPerApp
	sched := workload.Generate(spec, xrand.New(opts.Seed))
	var out HeteroResult
	for _, slow := range []bool{false, true} {
		for _, mk := range []ManagerKind{Standalone, Custody} {
			specs := []bool{false}
			if slow {
				specs = []bool{false, true}
			}
			for _, specOn := range specs {
				cfg := driver.DefaultConfig()
				cfg.Seed = opts.Seed
				cfg.LocalityWait = opts.LocalityWait
				cfg.Manager = NewManager(mk, opts.Seed)
				if slow {
					cfg.SlowNodeFraction = 0.2
					cfg.SlowFactor = 3
				}
				cfg.Speculation = specOn
				col, err := driver.RunSchedule(cfg, sched)
				if err != nil {
					return out, err
				}
				s := metrics.Summarize(col.JobCompletionTimes())
				out.Rows = append(out.Rows, HeteroRow{
					Manager: mk, Slow: slow, Speculation: specOn,
					JCT: s.Mean, P95: s.P95,
					Locality: metrics.Summarize(col.LocalityPerJob()).Mean,
				})
			}
		}
	}
	return out, nil
}

// Render formats the heterogeneity ablation.
func (r HeteroResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A11 — heterogeneous nodes (20%% at 1/3 speed), Sort, 100 nodes\n")
	fmt.Fprintf(&b, "%-10s %-6s %-6s %12s %10s %10s\n", "manager", "slow", "spec", "meanJCT(s)", "p95(s)", "locality")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %-6v %-6v %11.2f %9.2f %9.3f\n",
			row.Manager, row.Slow, row.Speculation, row.JCT, row.P95, row.Locality)
	}
	return b.String()
}
