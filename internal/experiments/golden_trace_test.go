package experiments

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/driver"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/internal/xrand"
)

var updateGolden = flag.Bool("update", false, "regenerate the golden trace files under testdata/golden")

// goldenRun replays one canonical shrunken experiment — one seed of the
// workload kind under the manager — and returns its full timeline.
func goldenRun(kind workload.Kind, mk ManagerKind) (*trace.Recorder, error) {
	spec := workload.DefaultSpec(kind)
	spec.Apps = 2
	spec.JobsPerApp = 3
	sched := workload.Generate(spec, xrand.New(7))
	cfg := driver.DefaultConfig()
	cfg.Seed = 7
	cfg.Nodes = 16
	cfg.RackSize = 4
	cfg.Manager = NewManager(mk, 7)
	rec := trace.NewRecorder()
	cfg.Tracer = rec
	if _, err := driver.RunSchedule(cfg, sched); err != nil {
		return nil, err
	}
	return rec, nil
}

// TestGoldenTraces pins the end-to-end behavior of the whole stack — the
// allocator fast path included — byte-for-byte: every simulation timeline
// must match the recorded canonical trace exactly, for one seed of each
// workload kind under both managers. Regenerate after an intentional
// behavior change with:
//
//	go test ./internal/experiments -run TestGoldenTraces -update
func TestGoldenTraces(t *testing.T) {
	for _, kind := range workload.Kinds() {
		for _, mk := range []ManagerKind{Standalone, Custody} {
			kind, mk := kind, mk
			name := fmt.Sprintf("%s-%s", strings.ToLower(string(kind)), mk)
			t.Run(name, func(t *testing.T) {
				rec, err := goldenRun(kind, mk)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := rec.WriteCSV(&buf); err != nil {
					t.Fatal(err)
				}
				path := filepath.Join("testdata", "golden", name+".trace")
				if *updateGolden {
					blessGolden(t, path, buf.Bytes())
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden trace: %v (regenerate with -update)", err)
				}
				if !bytes.Equal(buf.Bytes(), want) {
					t.Fatalf("trace diverges from golden %s at line %d:\n got: %s\nwant: %s",
						path, firstDiffLine(buf.Bytes(), want), lineAt(buf.Bytes(), firstDiffLine(buf.Bytes(), want)), lineAt(want, firstDiffLine(buf.Bytes(), want)))
				}
			})
		}
	}
}

// firstDiffLine returns the 1-based index of the first differing line.
func firstDiffLine(a, b []byte) int {
	la := strings.Split(string(a), "\n")
	lb := strings.Split(string(b), "\n")
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		if la[i] != lb[i] {
			return i + 1
		}
	}
	return n + 1
}

// lineAt returns the 1-based line of the buffer, or a marker past the end.
func lineAt(buf []byte, line int) string {
	ls := strings.Split(string(buf), "\n")
	if line-1 < len(ls) {
		return ls[line-1]
	}
	return "<past end of trace>"
}
