package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/driver"
	"repro/internal/manager"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// goldenRunSharded is goldenRun with the allocator's build shard count
// forced. For non-Custody managers the option is inert (they never run the
// core allocator), which the sharded golden check still exercises on
// purpose: a -shards flag must never change any manager's timeline.
func goldenRunSharded(kind workload.Kind, mk ManagerKind, shards int) (*trace.Recorder, error) {
	spec := workload.DefaultSpec(kind)
	spec.Apps = 2
	spec.JobsPerApp = 3
	sched := workload.Generate(spec, xrand.New(7))
	cfg := driver.DefaultConfig()
	cfg.Seed = 7
	cfg.Nodes = 16
	cfg.RackSize = 4
	cfg.Manager = NewManager(mk, 7)
	if m, ok := cfg.Manager.(*manager.Custody); ok {
		m.Opts.Shards = shards
	}
	rec := trace.NewRecorder()
	cfg.Tracer = rec
	if _, err := driver.RunSchedule(cfg, sched); err != nil {
		return nil, err
	}
	return rec, nil
}

// TestGoldenTracesSharded pins the merge contract end-to-end: every golden
// timeline recorded by the sequential allocator must stay byte-identical
// when the session build runs on 2, 4, or 8 parallel shards (DESIGN.md
// §14). Custody goldens run the full shard sweep; the Standalone goldens
// run once at 4 shards to pin that the option cannot leak into managers
// that never touch the core allocator.
func TestGoldenTracesSharded(t *testing.T) {
	for _, kind := range workload.Kinds() {
		for _, mk := range []ManagerKind{Standalone, Custody} {
			counts := []int{2, 4, 8}
			if mk == Standalone {
				counts = []int{4}
			}
			for _, shards := range counts {
				kind, mk, shards := kind, mk, shards
				name := fmt.Sprintf("%s-%s", strings.ToLower(string(kind)), mk)
				t.Run(fmt.Sprintf("%s/shards-%d", name, shards), func(t *testing.T) {
					rec, err := goldenRunSharded(kind, mk, shards)
					if err != nil {
						t.Fatal(err)
					}
					var buf bytes.Buffer
					if err := rec.WriteCSV(&buf); err != nil {
						t.Fatal(err)
					}
					path := filepath.Join("testdata", "golden", name+".trace")
					want, err := os.ReadFile(path)
					if err != nil {
						t.Fatalf("missing golden trace: %v (regenerate with -update)", err)
					}
					if !bytes.Equal(buf.Bytes(), want) {
						d := firstDiffLine(buf.Bytes(), want)
						t.Fatalf("%d-shard trace diverges from golden %s at line %d:\n got: %s\nwant: %s",
							shards, path, d, lineAt(buf.Bytes(), d), lineAt(want, d))
					}
				})
			}
		}
	}
}

// TestGoldenShardedTrace pins a canonical trace that was RECORDED under a
// 4-shard build on a topology none of the other goldens use (32 nodes ×
// 8-node racks, 3 apps), so the sharded path has a golden of its own: a
// regression that somehow bit only wide sharded builds cannot hide behind
// the sequential fixtures. Regenerate after an intentional behavior change
// with:
//
//	go test ./internal/experiments -run TestGoldenShardedTrace -update
func TestGoldenShardedTrace(t *testing.T) {
	spec := workload.DefaultSpec(workload.WordCount)
	spec.Apps = 3
	spec.JobsPerApp = 2
	sched := workload.Generate(spec, xrand.New(11))
	cfg := driver.DefaultConfig()
	cfg.Seed = 11
	cfg.Nodes = 32
	cfg.RackSize = 8
	m := manager.NewCustody()
	m.Opts.Shards = 4
	cfg.Manager = m
	rec := trace.NewRecorder()
	cfg.Tracer = rec
	if _, err := driver.RunSchedule(cfg, sched); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden", "wordcount-custody-shards4.trace")
	if *updateGolden {
		blessGolden(t, path, buf.Bytes())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden trace: %v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		d := firstDiffLine(buf.Bytes(), want)
		t.Fatalf("trace diverges from golden %s at line %d:\n got: %s\nwant: %s",
			path, d, lineAt(buf.Bytes(), d), lineAt(want, d))
	}
}
