package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/race"
	"repro/internal/workload"
)

// quickOpts shrinks runs so the unit-test suite stays fast.
func quickOpts() Options {
	o := DefaultOptions()
	o.Quick = true
	return o
}

func TestRunSweepQuickGrid(t *testing.T) {
	sw, err := RunSweep([]int{25}, []workload.Kind{workload.WordCount}, []ManagerKind{Standalone, Custody}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(sw.Cells))
	}
	for _, c := range sw.Cells {
		if len(c.Col.Jobs) != 4*6 {
			t.Fatalf("%v: jobs = %d, want 24", c.Manager, len(c.Col.Jobs))
		}
	}
	if sw.Find(25, workload.WordCount, Custody) == nil {
		t.Fatal("Find missed an existing cell")
	}
	if sw.Find(99, workload.WordCount, Custody) != nil {
		t.Fatal("Find invented a cell")
	}
	if got := sw.Sizes(); len(got) != 1 || got[0] != 25 {
		t.Fatalf("Sizes = %v", got)
	}
	if got := sw.Kinds(); len(got) != 1 || got[0] != workload.WordCount {
		t.Fatalf("Kinds = %v", got)
	}
}

func TestFigureTablesRender(t *testing.T) {
	sw, err := RunSweep([]int{16}, []workload.Kind{workload.Sort}, []ManagerKind{Standalone, Custody}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, tbl := range []Table{sw.Fig7(), sw.Fig8(), sw.Fig9(), sw.Fig10()} {
		if len(tbl.Rows) == 0 {
			t.Fatalf("%s: no rows", tbl.Title)
		}
		out := tbl.Render()
		if !strings.Contains(out, "Sort") || !strings.Contains(out, "custody") {
			t.Fatalf("%s render malformed:\n%s", tbl.Title, out)
		}
		_ = tbl.AverageGain()
	}
}

func TestGainDirections(t *testing.T) {
	if g := gain(10, 12, true); g != 20 {
		t.Fatalf("higher-better gain = %v", g)
	}
	if g := gain(10, 8, false); g != 20 {
		t.Fatalf("lower-better gain = %v", g)
	}
	if g := gain(0, 5, true); g != 0 {
		t.Fatalf("zero-baseline gain = %v", g)
	}
}

func TestNewManagerKinds(t *testing.T) {
	for _, k := range []ManagerKind{Standalone, Custody, Offer} {
		if m := NewManager(k, 1); m == nil || m.Name() == "" {
			t.Fatalf("NewManager(%v) broken", k)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown manager did not panic")
		}
	}()
	NewManager("bogus", 1)
}

func TestRunApprox(t *testing.T) {
	res := RunApprox(30, 7)
	if len(res.Rows) != 30 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.MinRatio < 0.5-1e-9 {
		t.Fatalf("greedy broke the 2-approximation bound: min ratio %v", res.MinRatio)
	}
	if res.MeanRatio < res.MinRatio || res.MeanRatio > 1+1e-9 {
		t.Fatalf("mean ratio %v out of range", res.MeanRatio)
	}
	for _, r := range res.Rows {
		if r.Greedy > r.Optimal+1e-9 {
			t.Fatalf("greedy exceeded optimal: %+v", r)
		}
		if r.Fractional < 0 || r.Fractional > 1 {
			t.Fatalf("fractional bound out of [0,1]: %+v", r)
		}
	}
	if !strings.Contains(res.Render(), "2-approx") && !strings.Contains(res.Render(), "0.5") {
		t.Fatal("render missing bound")
	}
}

func TestRunIntraQuick(t *testing.T) {
	res, err := RunIntra(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var prio, fair StrategyRow
	for _, r := range res.Rows {
		switch r.Strategy {
		case "priority":
			prio = r
		case "fairness":
			fair = r
		}
	}
	// The priority strategy must yield more perfectly local jobs and a
	// lower stylized completion time than job-fairness (Fig. 4–5).
	if prio.LocalJobs+1e-9 < fair.LocalJobs {
		t.Fatalf("priority localJobs %.3f < fairness %.3f", prio.LocalJobs, fair.LocalJobs)
	}
	if prio.AvgUnits > fair.AvgUnits+1e-9 {
		t.Fatalf("priority avg units %.3f > fairness %.3f", prio.AvgUnits, fair.AvgUnits)
	}
	if !strings.Contains(res.Render(), "priority") {
		t.Fatal("render missing strategy")
	}
}

func TestRunScarlettQuick(t *testing.T) {
	res, err := RunScarlett(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if !strings.Contains(res.Render(), "popularity") {
		t.Fatal("render missing policy")
	}
}

func TestRunOfferQuick(t *testing.T) {
	res, err := RunOffer(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Custody must not be rejected: it never uses the offer path.
	for _, r := range res.Rows {
		if r.Manager == Custody && r.Rejections != 0 {
			t.Fatalf("custody recorded offer rejections: %+v", r)
		}
	}
	_ = res.Render()
}

func TestRunWaitQuick(t *testing.T) {
	res, err := RunWait(quickOpts(), []float64{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// With zero wait the baseline's locality can only drop (or stay) vs 3 s.
	var w0, w3 float64
	for _, r := range res.Rows {
		if r.Manager == Standalone && r.WaitSec == 0 {
			w0 = r.Locality
		}
		if r.Manager == Standalone && r.WaitSec == 3 {
			w3 = r.Locality
		}
	}
	if w0 > w3+0.05 {
		t.Fatalf("locality with wait=0 (%.3f) above wait=3 (%.3f)", w0, w3)
	}
	_ = res.Render()
}

func TestRunSpeculationQuick(t *testing.T) {
	res, err := RunSpeculation(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	_ = res.Render()
}

// TestPaperSweepShapes is the headline integration test: it runs the full
// paper grid (skipped with -short) and asserts the qualitative claims of
// §VI hold in the reproduction.
func TestPaperSweepShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full paper sweep is slow; run without -short")
	}
	if race.Enabled {
		t.Skip("full paper sweep is ~10x slower under the race detector; TestRunSweepQuickGrid covers the same paths")
	}
	sw, err := RunSweep(PaperSizes, workload.Kinds(), []ManagerKind{Standalone, Custody}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	fig7 := sw.Fig7()
	t.Logf("\n%s\n%s\n%s\n%s", fig7.Render(), sw.Fig8().Render(), sw.Fig9().Render(), sw.Fig10().Render())

	// Claim 1 (Fig. 7): at the largest cluster, Custody improves locality
	// substantially for every workload.
	for _, r := range fig7.Rows {
		if r.Size != 100 {
			continue
		}
		if r.GainPct < 5 {
			t.Errorf("Fig7 %v@100: locality gain %.2f%% < 5%%", r.Kind, r.GainPct)
		}
		if r.Custody.Mean < 0.90 {
			t.Errorf("Fig7 %v@100: custody locality %.3f < 0.90", r.Kind, r.Custody.Mean)
		}
	}
	// Claim 2 (Fig. 7 / §VI-C): Custody's locality gain grows with the
	// cluster size (compare smallest vs largest size per workload).
	for _, kind := range sw.Kinds() {
		var small, large float64
		for _, r := range fig7.Rows {
			if r.Kind != kind {
				continue
			}
			switch r.Size {
			case 25:
				small = r.GainPct
			case 100:
				large = r.GainPct
			}
		}
		if large <= small {
			t.Errorf("locality gain for %v did not grow with cluster size: %.2f%% → %.2f%%", kind, small, large)
		}
	}
	// Claim 3 (Fig. 8): Custody reduces mean JCT at the largest cluster.
	for _, r := range sw.Fig8().Rows {
		if r.Size == 100 && r.GainPct <= 0 {
			t.Errorf("Fig8 %v@100: JCT gain %.2f%% <= 0", r.Kind, r.GainPct)
		}
	}
	// Claim 4 (Fig. 9): input stages are faster under Custody.
	for _, r := range sw.Fig9().Rows {
		if r.GainPct <= 0 {
			t.Errorf("Fig9 %v: input-stage gain %.2f%% <= 0", r.Kind, r.GainPct)
		}
	}
	// Claim 5 (Fig. 10): scheduler delay under Custody is lower at the
	// largest cluster ("tasks under Custody experience shorter delay").
	for _, r := range sw.Fig10().Rows {
		if r.Size == 100 && r.GainPct <= 0 {
			t.Errorf("Fig10 %v@100: delay gain %.2f%% <= 0", r.Kind, r.GainPct)
		}
	}
}

func TestRunManagersQuick(t *testing.T) {
	res, err := RunManagers(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byMgr := map[ManagerKind]ManagerRow{}
	for _, r := range res.Rows {
		byMgr[r.Manager] = r
		if r.Utilization < 0 || r.Utilization > 1 {
			t.Fatalf("utilization out of range: %+v", r)
		}
	}
	// Custody must beat the data-unaware managers on locality.
	if byMgr[Custody].Locality < byMgr[Standalone].Locality {
		t.Fatalf("custody locality %.3f < standalone %.3f",
			byMgr[Custody].Locality, byMgr[Standalone].Locality)
	}
	if byMgr[Custody].Locality < byMgr[YARN].Locality {
		t.Fatalf("custody locality %.3f < yarn %.3f",
			byMgr[Custody].Locality, byMgr[YARN].Locality)
	}
	if !strings.Contains(res.Render(), "yarn") {
		t.Fatal("render missing yarn")
	}
}

func TestRunSchedulersQuick(t *testing.T) {
	if race.Enabled {
		t.Skip("scheduler comparison grid is too slow under the race detector; the other Quick sims cover the same engine paths")
	}
	res, err := RunSchedulers(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// FIFO is data-unaware: delay scheduling must not lose to it on
	// locality under the same manager.
	loc := map[string]float64{}
	for _, r := range res.Rows {
		loc[string(r.Scheduler)+"/"+string(r.Manager)] = r.Locality
	}
	if loc["delay/spark"]+1e-9 < loc["fifo/spark"] {
		t.Fatalf("delay %.3f < fifo %.3f under spark", loc["delay/spark"], loc["fifo/spark"])
	}
	_ = res.Render()
}

func TestRunFailuresQuick(t *testing.T) {
	res, err := RunFailures(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Failures == 0 && r.Retried != 0 {
			t.Fatalf("retries without failures: %+v", r)
		}
	}
	_ = res.Render()
}

func TestRepeatsPoolsRecords(t *testing.T) {
	opts := quickOpts()
	opts.Repeats = 2
	sw, err := RunSweep([]int{16}, []workload.Kind{workload.WordCount}, []ManagerKind{Custody}, opts)
	if err != nil {
		t.Fatal(err)
	}
	c := sw.Find(16, workload.WordCount, Custody)
	// 2 seeds × 4 apps × 6 jobs = 48 jobs pooled.
	if len(c.Col.Jobs) != 48 {
		t.Fatalf("pooled jobs = %d, want 48", len(c.Col.Jobs))
	}
}

func TestRenderBars(t *testing.T) {
	sw, err := RunSweep([]int{16}, []workload.Kind{workload.Sort}, []ManagerKind{Standalone, Custody}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	out := sw.Fig7().RenderBars()
	if !strings.Contains(out, "#") || !strings.Contains(out, "=") || !strings.Contains(out, "custody") {
		t.Fatalf("bars malformed:\n%s", out)
	}
}

func TestRunSelectorsQuick(t *testing.T) {
	res, err := RunSelectors(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if !strings.Contains(res.Render(), "closest") {
		t.Fatal("render missing selector")
	}
}

func TestRunHeteroQuick(t *testing.T) {
	res, err := RunHetero(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// homogeneous ×2 managers + slow ×2 managers ×2 speculation = 6 rows.
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Slowing 20% of nodes must not speed anything up.
	var homo, slow float64
	for _, r := range res.Rows {
		if r.Manager == Custody && !r.Speculation {
			if r.Slow {
				slow = r.JCT
			} else {
				homo = r.JCT
			}
		}
	}
	if slow < homo {
		t.Fatalf("heterogeneous cluster faster than homogeneous: %.2f < %.2f", slow, homo)
	}
	_ = res.Render()
}

func TestWriteMarkdownReport(t *testing.T) {
	sw, err := RunSweep([]int{16}, []workload.Kind{workload.Sort}, []ManagerKind{Standalone, Custody}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMarkdownReport(&buf, sw); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# Custody reproduction report", "| nodes |", "Headline aggregates", "Fig. 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRunHintsQuick(t *testing.T) {
	res, err := RunHints(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	_ = res.Render()
}

func TestRunChaosQuick(t *testing.T) {
	if race.Enabled {
		t.Skip("the chaos sweep runs 8 full sims; the dedicated -race smoke in internal/chaos covers the fault paths")
	}
	res, err := RunChaos(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if want := len(ChaosLevels) * 2; len(res.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(res.Rows), want)
	}
	for _, r := range res.Rows {
		if r.Violations != 0 {
			t.Errorf("%s/%s: %d invariant violations", r.Level, r.Manager, r.Violations)
		}
		if r.JobsDone != r.JobsTotal {
			t.Errorf("%s/%s: %d of %d jobs completed", r.Level, r.Manager, r.JobsDone, r.JobsTotal)
		}
		if r.Level == "none" && r.Faults != 0 {
			t.Errorf("control row applied %d faults", r.Faults)
		}
		if r.Level == "high" && r.Faults == 0 {
			t.Errorf("high level applied no faults")
		}
	}
	if !strings.Contains(res.Render(), "chaos sweep") {
		t.Fatal("render missing header")
	}
}
