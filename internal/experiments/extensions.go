package experiments

import (
	"fmt"
	"strings"

	"repro/internal/app"
	"repro/internal/driver"
	"repro/internal/hdfs"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// YARN is the YARN-like dynamic-pool manager (§VII), available to the
// extension ablations.
const YARN ManagerKind = "yarn"

// ManagerRow is one row of the manager grand comparison.
type ManagerRow struct {
	Manager     ManagerKind
	Locality    float64
	LocalJobs   float64
	JCT         float64
	Delay       float64
	Utilization float64
	Migrations  int
}

// ManagersResult is ablation A7: all four manager families on one workload,
// including cluster utilization from the execution trace.
type ManagersResult struct{ Rows []ManagerRow }

// RunManagers compares Spark-standalone, YARN-pool, Mesos-offer, and
// Custody on the Sort workload.
func RunManagers(opts Options) (ManagersResult, error) {
	opts = opts.normalize()
	spec := workload.DefaultSpec(workload.Sort)
	spec.Apps = opts.Apps
	spec.JobsPerApp = opts.JobsPerApp
	sched := workload.Generate(spec, xrand.New(opts.Seed))
	var out ManagersResult
	for _, mk := range []ManagerKind{Standalone, YARN, Offer, Custody} {
		rec := trace.NewRecorder()
		cfg := driver.DefaultConfig()
		cfg.Seed = opts.Seed
		cfg.LocalityWait = opts.LocalityWait
		cfg.Manager = NewManager(mk, opts.Seed)
		cfg.Tracer = rec
		col, err := driver.RunSchedule(cfg, sched)
		if err != nil {
			return out, err
		}
		slots := cfg.Nodes * cfg.ExecutorsPerNode * cfg.SlotsPerExecutor
		out.Rows = append(out.Rows, ManagerRow{
			Manager:     mk,
			Locality:    metrics.Summarize(col.LocalityPerJob()).Mean,
			LocalJobs:   col.PctLocalJobs(),
			JCT:         metrics.Summarize(col.JobCompletionTimes()).Mean,
			Delay:       metrics.Summarize(col.SchedulerDelays()).Mean,
			Utilization: rec.Utilization(slots),
			Migrations:  rec.MigrationCount(),
		})
	}
	return out, nil
}

// Render formats the manager comparison.
func (r ManagersResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A7 — cluster-manager families (Sort, 100 nodes)\n")
	fmt.Fprintf(&b, "%-10s %10s %11s %12s %10s %12s %11s\n",
		"manager", "locality", "localJobs", "meanJCT(s)", "delay(s)", "utilization", "migrations")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %9.3f %10.3f %11.2f %9.3f %11.3f %11d\n",
			row.Manager, row.Locality, row.LocalJobs, row.JCT, row.Delay, row.Utilization, row.Migrations)
	}
	return b.String()
}

// SchedulerRow is one row of the task-scheduler comparison.
type SchedulerRow struct {
	Scheduler driver.SchedulerKind
	Manager   ManagerKind
	Locality  float64
	JCT       float64
	Delay     float64
}

// SchedulersResult is ablation A8: task schedulers under both managers —
// Custody "essentially complements task schedulers by maximizing the upper
// bound locality that task schedulers can achieve" (§VII).
type SchedulersResult struct{ Rows []SchedulerRow }

// RunSchedulers sweeps task schedulers × managers on WordCount.
func RunSchedulers(opts Options) (SchedulersResult, error) {
	opts = opts.normalize()
	spec := workload.DefaultSpec(workload.WordCount)
	spec.Apps = opts.Apps
	spec.JobsPerApp = opts.JobsPerApp
	sched := workload.Generate(spec, xrand.New(opts.Seed))
	var out SchedulersResult
	kinds := []driver.SchedulerKind{
		driver.SchedFIFO, driver.SchedDelay, driver.SchedDelayTaskSet, driver.SchedQuincy,
	}
	for _, sk := range kinds {
		for _, mk := range []ManagerKind{Standalone, Custody} {
			cfg := driver.DefaultConfig()
			cfg.Seed = opts.Seed
			cfg.Scheduler = sk
			cfg.LocalityWait = opts.LocalityWait
			cfg.Manager = NewManager(mk, opts.Seed)
			col, err := driver.RunSchedule(cfg, sched)
			if err != nil {
				return out, err
			}
			out.Rows = append(out.Rows, SchedulerRow{
				Scheduler: sk,
				Manager:   mk,
				Locality:  metrics.Summarize(col.LocalityPerJob()).Mean,
				JCT:       metrics.Summarize(col.JobCompletionTimes()).Mean,
				Delay:     metrics.Summarize(col.SchedulerDelays()).Mean,
			})
		}
	}
	return out, nil
}

// Render formats the scheduler comparison.
func (r SchedulersResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A8 — task schedulers × managers (WordCount, 100 nodes)\n")
	fmt.Fprintf(&b, "%-15s %-10s %10s %12s %10s\n", "scheduler", "manager", "locality", "meanJCT(s)", "delay(s)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-15s %-10s %9.3f %11.2f %9.3f\n",
			row.Scheduler, row.Manager, row.Locality, row.JCT, row.Delay)
	}
	return b.String()
}

// FailureRow is one row of the failure-resilience experiment.
type FailureRow struct {
	Manager  ManagerKind
	Failures int
	JCT      float64
	Locality float64
	Retried  int // tasks with more than one attempt
}

// FailureResult is ablation A9: node failures mid-run.
type FailureResult struct{ Rows []FailureRow }

// RunFailures injects node failures during the Sort workload and measures
// how each manager's completion times and locality degrade.
func RunFailures(opts Options) (FailureResult, error) {
	opts = opts.normalize()
	spec := workload.DefaultSpec(workload.Sort)
	spec.Apps = opts.Apps
	spec.JobsPerApp = opts.JobsPerApp
	sched := workload.Generate(spec, xrand.New(opts.Seed))
	var out FailureResult
	for _, failures := range []int{0, 3} {
		for _, mk := range []ManagerKind{Standalone, Custody} {
			cfg := driver.DefaultConfig()
			cfg.Seed = opts.Seed
			cfg.Manager = NewManager(mk, opts.Seed)
			d := driver.New(cfg)
			files := make([]*hdfs.File, len(sched.Files))
			for i, fs := range sched.Files {
				f, err := d.CreateInput(fs.Name, fs.Size)
				if err != nil {
					return out, err
				}
				files[i] = f
			}
			handles := make([]*app.Application, spec.Apps)
			for i := range handles {
				handles[i] = d.RegisterApp(fmt.Sprintf("app%d", i))
			}
			d.Start()
			for i, sub := range sched.Subs {
				d.SubmitJobAt(sub.At, handles[sub.App], workload.BuildJob(spec.Kind, i+1, files[sub.FileIdx]))
			}
			horizon := sched.Horizon()
			for k := 0; k < failures; k++ {
				at := horizon * float64(k+1) / float64(failures+1)
				d.FailNodeAt(at, (k*17+3)%cfg.Nodes)
			}
			col := d.Run()
			retried := 0
			for _, h := range handles {
				for _, j := range h.Jobs {
					for _, s := range j.Stages {
						for _, task := range s.Tasks {
							if task.Attempts > 1 {
								retried++
							}
						}
					}
				}
			}
			out.Rows = append(out.Rows, FailureRow{
				Manager:  mk,
				Failures: failures,
				JCT:      metrics.Summarize(col.JobCompletionTimes()).Mean,
				Locality: metrics.Summarize(col.LocalityPerJob()).Mean,
				Retried:  retried,
			})
		}
	}
	return out, nil
}

// Render formats the failure experiment.
func (r FailureResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A9 — node failures mid-run (Sort, 100 nodes)\n")
	fmt.Fprintf(&b, "%-10s %9s %12s %10s %9s\n", "manager", "failures", "meanJCT(s)", "locality", "retried")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %9d %11.2f %9.3f %9d\n",
			row.Manager, row.Failures, row.JCT, row.Locality, row.Retried)
	}
	return b.String()
}
