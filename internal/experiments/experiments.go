// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI) plus the ablations listed in DESIGN.md. Each harness runs
// the same workload schedule under the managers being compared and reports
// the metric the corresponding figure plots.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/driver"
	"repro/internal/manager"
	"repro/internal/metrics"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// ManagerKind names a cluster-manager strategy under test.
type ManagerKind string

// The managers compared in the evaluation.
const (
	Standalone ManagerKind = "spark"   // the paper's baseline
	Custody    ManagerKind = "custody" // the contribution
	Offer      ManagerKind = "offer"   // Mesos-like (§II-A ablation)
)

// NewManager instantiates a manager by kind. Each run gets a fresh instance.
func NewManager(kind ManagerKind, seed uint64) manager.Manager {
	switch kind {
	case Standalone:
		return manager.NewStandalone(xrand.New(seed), false)
	case Custody:
		return manager.NewCustody()
	case Offer:
		return manager.NewOffer()
	case YARN:
		return manager.NewYARN()
	default:
		panic(fmt.Sprintf("experiments: unknown manager %q", kind))
	}
}

// PaperSizes are the evaluated cluster sizes (§VI-A1: 25, 50, and 100
// worker nodes).
var PaperSizes = []int{25, 50, 100}

// Options tune a sweep without changing its structure.
type Options struct {
	Seed         uint64
	JobsPerApp   int     // default 30 (§VI-A2)
	Apps         int     // default 4
	LocalityWait float64 // default 3 s
	Quick        bool    // shrink the workload for fast tests
	// Repeats runs each grid point under this many seeds (Seed, Seed+1, …)
	// and pools the records, so reported std includes cross-seed variance.
	// Zero or one means a single run (the paper's methodology).
	Repeats int
	// Shards partitions the Custody allocator's per-round session build
	// (DESIGN.md §14). Zero or one keeps the sequential build; plans are
	// byte-identical either way, so sweep results never depend on it.
	Shards int
}

// DefaultOptions mirrors the paper.
func DefaultOptions() Options {
	return Options{Seed: 1, JobsPerApp: 30, Apps: 4, LocalityWait: 3.0}
}

func (o Options) normalize() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.JobsPerApp == 0 {
		o.JobsPerApp = 30
	}
	if o.Apps == 0 {
		o.Apps = 4
	}
	if o.LocalityWait == 0 {
		o.LocalityWait = 3.0
	}
	if o.Quick {
		o.JobsPerApp = 6
	}
	return o
}

// Cell is one (cluster size, workload, manager) measurement.
type Cell struct {
	Size    int
	Kind    workload.Kind
	Manager ManagerKind
	Col     *metrics.Collector
}

// Sweep runs the full evaluation grid once; Figures 7–10 are different
// projections of the same runs, exactly as in the paper.
type Sweep struct {
	Opts  Options
	Cells []Cell
}

// RunSweep executes the grid for the given sizes, workloads, and managers.
func RunSweep(sizes []int, kinds []workload.Kind, managers []ManagerKind, opts Options) (*Sweep, error) {
	opts = opts.normalize()
	repeats := opts.Repeats
	if repeats < 1 {
		repeats = 1
	}
	sw := &Sweep{Opts: opts}
	for _, kind := range kinds {
		for _, size := range sizes {
			for _, mk := range managers {
				pooled := metrics.NewCollector()
				for r := 0; r < repeats; r++ {
					seed := opts.Seed + uint64(r)
					spec := workload.DefaultSpec(kind)
					spec.Apps = opts.Apps
					spec.JobsPerApp = opts.JobsPerApp
					// One schedule per (workload, seed), shared across
					// sizes and managers ("a common job submission
					// schedule that is shared by all the experiments",
					// §VI-A2).
					sched := workload.Generate(spec, xrand.New(seed))
					cfg := driver.DefaultConfig()
					cfg.Seed = seed
					cfg.Nodes = size
					cfg.RackSize = rackSize(size)
					cfg.LocalityWait = opts.LocalityWait
					cfg.Manager = NewManager(mk, seed)
					if opts.Shards > 1 {
						if m, ok := cfg.Manager.(*manager.Custody); ok {
							m.Opts.Shards = opts.Shards
						}
					}
					col, err := driver.RunSchedule(cfg, sched)
					if err != nil {
						return nil, fmt.Errorf("sweep %s/%d/%s/seed%d: %w", kind, size, mk, seed, err)
					}
					merge(pooled, col)
				}
				sw.Cells = append(sw.Cells, Cell{Size: size, Kind: kind, Manager: mk, Col: pooled})
			}
		}
	}
	return sw, nil
}

// merge appends src's records and counters into dst.
func merge(dst, src *metrics.Collector) {
	dst.Tasks = append(dst.Tasks, src.Tasks...)
	dst.Jobs = append(dst.Jobs, src.Jobs...)
	dst.OfferRejections += src.OfferRejections
	dst.Reallocations += src.Reallocations
	dst.ExecutorMigrations += src.ExecutorMigrations
	dst.TaskRetries += src.TaskRetries
	dst.AttemptFailures += src.AttemptFailures
	dst.BlacklistEvents += src.BlacklistEvents
	dst.ReplicationStalls += src.ReplicationStalls
	dst.ReplicasRestored += src.ReplicasRestored
	dst.RecoverySec = append(dst.RecoverySec, src.RecoverySec...)
	dst.CacheHits += src.CacheHits
	dst.CacheMisses += src.CacheMisses
	dst.CacheEvictions += src.CacheEvictions
	if src.CacheByNode != nil {
		nodes := make([]int, 0, len(src.CacheByNode))
		for n := range src.CacheByNode {
			nodes = append(nodes, n)
		}
		sort.Ints(nodes)
		for _, n := range nodes {
			s, d := src.CacheByNode[n], dst.NodeCache(n)
			d.Hits += s.Hits
			d.Misses += s.Misses
			d.Evictions += s.Evictions
		}
	}
}

func rackSize(nodes int) int {
	rs := nodes / 5
	if rs < 1 {
		rs = 1
	}
	return rs
}

// Find returns the cell for a grid point, or nil.
func (s *Sweep) Find(size int, kind workload.Kind, mk ManagerKind) *Cell {
	for i := range s.Cells {
		c := &s.Cells[i]
		if c.Size == size && c.Kind == kind && c.Manager == mk {
			return c
		}
	}
	return nil
}

// Sizes returns the distinct cluster sizes in the sweep, ascending.
func (s *Sweep) Sizes() []int {
	seen := map[int]bool{}
	var out []int
	for _, c := range s.Cells {
		if !seen[c.Size] {
			seen[c.Size] = true
			out = append(out, c.Size)
		}
	}
	sort.Ints(out)
	return out
}

// Kinds returns the distinct workloads in the sweep.
func (s *Sweep) Kinds() []workload.Kind {
	seen := map[workload.Kind]bool{}
	var out []workload.Kind
	for _, c := range s.Cells {
		if !seen[c.Kind] {
			seen[c.Kind] = true
			out = append(out, c.Kind)
		}
	}
	return out
}

// Row is one comparison row in a rendered figure table.
type Row struct {
	Size     int
	Kind     workload.Kind
	Baseline metrics.Summary
	Custody  metrics.Summary
	// GainPct is the improvement of Custody over the baseline in percent;
	// positive is better for Custody regardless of metric direction.
	GainPct float64
}

// Table is a rendered figure.
type Table struct {
	Title  string
	Metric string
	Rows   []Row
}

// gain computes a percentage improvement where "higherBetter" selects the
// metric's direction.
func gain(base, cust float64, higherBetter bool) float64 {
	if base == 0 {
		return 0
	}
	if higherBetter {
		return (cust - base) / base * 100
	}
	return (base - cust) / base * 100
}

// project renders a table by applying an extractor to every grid point.
func (s *Sweep) project(title, metric string, higherBetter bool, sizes []int,
	extract func(*metrics.Collector) []float64) Table {

	t := Table{Title: title, Metric: metric}
	for _, size := range sizes {
		for _, kind := range s.Kinds() {
			base := s.Find(size, kind, Standalone)
			cust := s.Find(size, kind, Custody)
			if base == nil || cust == nil {
				continue
			}
			b := metrics.Summarize(extract(base.Col))
			c := metrics.Summarize(extract(cust.Col))
			t.Rows = append(t.Rows, Row{
				Size: size, Kind: kind,
				Baseline: b, Custody: c,
				GainPct: gain(b.Mean, c.Mean, higherBetter),
			})
		}
	}
	return t
}

// Fig7 is the data-locality figure: percentage of local input tasks per job
// (mean ± std), per workload and cluster size.
func (s *Sweep) Fig7() Table {
	return s.project(
		"Fig. 7 — Data locality of input tasks (fraction of local input tasks per job)",
		"locality", true, s.Sizes(),
		func(c *metrics.Collector) []float64 { return c.LocalityPerJob() })
}

// Fig8 is the average job completion time figure.
func (s *Sweep) Fig8() Table {
	return s.project(
		"Fig. 8 — Average job completion times (s)",
		"JCT(s)", false, s.Sizes(),
		func(c *metrics.Collector) []float64 { return c.JobCompletionTimes() })
}

// Fig9 is the input-stage completion time figure (100-node cluster in the
// paper; we render the largest size in the sweep).
func (s *Sweep) Fig9() Table {
	sizes := s.Sizes()
	if len(sizes) > 1 {
		sizes = sizes[len(sizes)-1:]
	}
	return s.project(
		"Fig. 9 — Average completion time of input (map) stages (s), largest cluster",
		"input-stage(s)", false, sizes,
		func(c *metrics.Collector) []float64 { return c.InputStageTimes() })
}

// Fig10 is the scheduler-delay figure, per cluster size (aggregated over
// workloads, as the paper plots delay against cluster size).
func (s *Sweep) Fig10() Table {
	return s.project(
		"Fig. 10 — Scheduler delay (s) per task",
		"delay(s)", false, s.Sizes(),
		func(c *metrics.Collector) []float64 { return c.SchedulerDelays() })
}

// Render formats a table for terminals.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%-6s %-10s %14s %14s %9s\n", "nodes", "workload",
		"spark(mean±std)", "custody(mean±std)", "gain")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-6d %-10s %7.3f±%-6.3f %7.3f±%-6.3f %8.2f%%\n",
			r.Size, r.Kind, r.Baseline.Mean, r.Baseline.Std,
			r.Custody.Mean, r.Custody.Std, r.GainPct)
	}
	return b.String()
}

// AverageGain returns the mean gain over the table's rows — e.g. the
// paper's headline "+36.9% locality / −4.9% JCT" aggregates.
func (t Table) AverageGain() float64 {
	if len(t.Rows) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range t.Rows {
		sum += r.GainPct
	}
	return sum / float64(len(t.Rows))
}

// RenderBars draws the table as grouped ASCII bars (one pair per row),
// the terminal stand-in for the paper's bar charts.
func (t Table) RenderBars() string {
	const width = 40
	maxv := 0.0
	for _, r := range t.Rows {
		if r.Baseline.Mean > maxv {
			maxv = r.Baseline.Mean
		}
		if r.Custody.Mean > maxv {
			maxv = r.Custody.Mean
		}
	}
	if maxv == 0 {
		maxv = 1
	}
	bar := func(v float64, ch string) string {
		n := int(v / maxv * width)
		if n < 0 {
			n = 0
		}
		return strings.Repeat(ch, n)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  [%s]\n", t.Title, t.Metric)
	for _, r := range t.Rows {
		label := fmt.Sprintf("%d/%s", r.Size, r.Kind)
		fmt.Fprintf(&b, "%-16s spark   %8.3f |%s\n", label, r.Baseline.Mean, bar(r.Baseline.Mean, "#"))
		fmt.Fprintf(&b, "%-16s custody %8.3f |%s\n", "", r.Custody.Mean, bar(r.Custody.Mean, "="))
	}
	return b.String()
}
