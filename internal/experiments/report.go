package experiments

import (
	"fmt"
	"io"
	"strings"
)

// WriteMarkdownReport renders a sweep as a self-contained Markdown report —
// the machine-generated counterpart of EXPERIMENTS.md. It includes every
// figure table, the headline aggregates, and the run configuration, so a
// regeneration run can be archived or diffed against the committed results.
func WriteMarkdownReport(w io.Writer, sw *Sweep) error {
	var b strings.Builder
	b.WriteString("# Custody reproduction report\n\n")
	fmt.Fprintf(&b, "Configuration: %d application(s) × %d job(s), locality wait %.1f s, seed %d",
		sw.Opts.Apps, sw.Opts.JobsPerApp, sw.Opts.LocalityWait, sw.Opts.Seed)
	if r := sw.Opts.Repeats; r > 1 {
		fmt.Fprintf(&b, ", pooled over %d seeds", r)
	}
	b.WriteString(".\n\n")

	for _, tbl := range []Table{sw.Fig7(), sw.Fig8(), sw.Fig9(), sw.Fig10()} {
		fmt.Fprintf(&b, "## %s\n\n", tbl.Title)
		b.WriteString("| nodes | workload | spark (mean±std) | custody (mean±std) | gain |\n")
		b.WriteString("|---|---|---|---|---|\n")
		for _, r := range tbl.Rows {
			fmt.Fprintf(&b, "| %d | %s | %.3f±%.3f | %.3f±%.3f | %+.2f%% |\n",
				r.Size, r.Kind, r.Baseline.Mean, r.Baseline.Std,
				r.Custody.Mean, r.Custody.Std, r.GainPct)
		}
		b.WriteString("\n")
	}

	fmt.Fprintf(&b, "## Headline aggregates\n\n")
	fmt.Fprintf(&b, "- Average locality gain: **%+.2f%%** (paper: +36.9%%)\n", sw.Fig7().AverageGain())
	fmt.Fprintf(&b, "- Average JCT gain: **%+.2f%%** (paper headline: 4.9%% JCT reduction)\n", sw.Fig8().AverageGain())
	fmt.Fprintf(&b, "- Average input-stage gain at the largest cluster: **%+.2f%%**\n", sw.Fig9().AverageGain())
	fmt.Fprintf(&b, "- Average scheduler-delay gain: **%+.2f%%**\n", sw.Fig10().AverageGain())

	_, err := io.WriteString(w, b.String())
	return err
}
