package experiments

import (
	"fmt"
	"strings"

	"repro/internal/driver"
	"repro/internal/hdfs"
	"repro/internal/metrics"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// SelectorRow is one replica-selection policy's outcome.
type SelectorRow struct {
	Selector string
	Manager  ManagerKind
	JCT      float64
	ReadSec  float64 // mean input read time
	Locality float64
}

// SelectorResult is ablation A10: how the source-replica choice for
// non-local reads affects the baseline and Custody. Custody makes most
// reads local, so it should be nearly insensitive to the policy, while the
// baseline's non-local reads benefit from smarter selection.
type SelectorResult struct{ Rows []SelectorRow }

// RunSelectors sweeps replica-selection policies under both managers.
func RunSelectors(opts Options) (SelectorResult, error) {
	opts = opts.normalize()
	spec := workload.DefaultSpec(workload.WordCount)
	spec.Apps = opts.Apps
	spec.JobsPerApp = opts.JobsPerApp
	sched := workload.Generate(spec, xrand.New(opts.Seed))
	var out SelectorResult
	mkSel := []func() hdfs.ReplicaSelector{
		func() hdfs.ReplicaSelector { return hdfs.RandomSelector{} },
		func() hdfs.ReplicaSelector { return hdfs.ClosestSelector{} },
		func() hdfs.ReplicaSelector { return hdfs.NewLeastLoadedSelector() },
	}
	for _, mk := range []ManagerKind{Standalone, Custody} {
		for _, ms := range mkSel {
			sel := ms()
			cfg := driver.DefaultConfig()
			cfg.Seed = opts.Seed
			cfg.LocalityWait = opts.LocalityWait
			cfg.ReplicaSelection = sel
			cfg.Manager = NewManager(mk, opts.Seed)
			col, err := driver.RunSchedule(cfg, sched)
			if err != nil {
				return out, err
			}
			reads := make([]float64, 0, len(col.Tasks))
			for _, t := range col.Tasks {
				if t.Input {
					reads = append(reads, t.ReadSec)
				}
			}
			out.Rows = append(out.Rows, SelectorRow{
				Selector: sel.Name(),
				Manager:  mk,
				JCT:      metrics.Summarize(col.JobCompletionTimes()).Mean,
				ReadSec:  metrics.Summarize(reads).Mean,
				Locality: metrics.Summarize(col.LocalityPerJob()).Mean,
			})
		}
	}
	return out, nil
}

// Render formats the selector ablation.
func (r SelectorResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A10 — replica selection for non-local reads (WordCount, 100 nodes)\n")
	fmt.Fprintf(&b, "%-10s %-14s %12s %10s %10s\n", "manager", "selector", "meanJCT(s)", "read(s)", "locality")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %-14s %11.2f %9.3f %9.3f\n",
			row.Manager, row.Selector, row.JCT, row.ReadSec, row.Locality)
	}
	return b.String()
}
