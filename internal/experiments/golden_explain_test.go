package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/driver"
	"repro/internal/manager"
	"repro/internal/obsv"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// explainRun replays the canonical Sort-under-Custody golden experiment
// with a provenance hub attached and renders the -explain chain for app 0
// job 1 — the same chain `custodysim -explain 0.1` prints.
func explainRun() (*obsv.Hub, error) {
	spec := workload.DefaultSpec(workload.Sort)
	spec.Apps = 2
	spec.JobsPerApp = 3
	sched := workload.Generate(spec, xrand.New(7))
	cfg := driver.DefaultConfig()
	cfg.Seed = 7
	cfg.Nodes = 16
	cfg.RackSize = 4
	cfg.Manager = NewManager(Custody, 7)
	hub := obsv.NewHub(0)
	cfg.Obsv = hub
	cfg.Manager.(*manager.Custody).Opts.Observer = hub
	if _, err := driver.RunSchedule(cfg, sched); err != nil {
		return nil, err
	}
	return hub, nil
}

// TestGoldenExplain pins the -explain output byte-for-byte against a
// committed fixture: the decision chain behind every grant of one job is
// part of the repo's observable contract, exactly like the golden traces.
// Regenerate after an intentional allocator or provenance change with:
//
//	go test ./internal/experiments -run TestGoldenExplain -update
func TestGoldenExplain(t *testing.T) {
	hub, err := explainRun()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := hub.Flight.Explain(&buf, 0, 1); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("explain produced no output")
	}

	// The chain must also be reproducible: a second identical run must
	// render byte-identical provenance before we compare to the fixture.
	hub2, err := explainRun()
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := hub2.Flight.Explain(&buf2, 0, 1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("explain output differs between identical seeded runs at line %d:\n got: %s\nwant: %s",
			firstDiffLine(buf2.Bytes(), buf.Bytes()),
			lineAt(buf2.Bytes(), firstDiffLine(buf2.Bytes(), buf.Bytes())),
			lineAt(buf.Bytes(), firstDiffLine(buf2.Bytes(), buf.Bytes())))
	}

	path := filepath.Join("testdata", "golden", "explain-sort-custody.txt")
	if *updateGolden {
		blessGolden(t, path, buf.Bytes())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden explain fixture: %v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("explain output diverges from golden %s at line %d:\n got: %s\nwant: %s",
			path, firstDiffLine(buf.Bytes(), want),
			lineAt(buf.Bytes(), firstDiffLine(buf.Bytes(), want)),
			lineAt(want, firstDiffLine(buf.Bytes(), want)))
	}
}
