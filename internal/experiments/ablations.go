package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/hdfs"
	"repro/internal/metrics"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// ApproxRow compares Algorithm 2's greedy intra-application allocation with
// the exact optimum (min-cost-flow) and the fractional concurrent-flow upper
// bound on one random instance.
type ApproxRow struct {
	Instance   int
	Tasks      int
	Executors  int
	Budget     int
	Greedy     float64 // Σ 1/µ objective (Eq. 9)
	Optimal    float64
	Ratio      float64 // Greedy / Optimal (≥ 0.5 by the 2-approx bound)
	Fractional float64 // λ* upper bound for the single-app instance
}

// ApproxResult is ablation A1 (§III/§IV-B theory).
type ApproxResult struct {
	Rows      []ApproxRow
	MinRatio  float64
	MeanRatio float64
}

// RunApprox generates random intra-application instances and measures the
// greedy-vs-optimal objective ratio.
func RunApprox(instances int, seed uint64) ApproxResult {
	rng := xrand.New(seed)
	res := ApproxResult{MinRatio: 1}
	sum := 0.0
	for i := 0; i < instances; i++ {
		nodes := rng.IntRange(8, 24)
		var idle []core.ExecInfo
		for n := 0; n < nodes; n++ {
			idle = append(idle, core.ExecInfo{ID: n, Node: n})
		}
		var jobs []core.JobDemand
		taskCount := 0
		for j := 0; j < rng.IntRange(2, 6); j++ {
			jd := core.JobDemand{Job: j}
			for k := 0; k < rng.IntRange(1, 6); k++ {
				jd.Tasks = append(jd.Tasks, core.TaskDemand{
					Task:  k,
					Block: hdfs.BlockID(taskCount),
					Nodes: rng.Sample(nodes, rng.IntRange(1, 3)),
				})
				taskCount++
			}
			jobs = append(jobs, jd)
		}
		budget := rng.IntRange(1, nodes)
		greedy, _ := core.GreedyIntraObjective(jobs, idle, budget)
		opt := core.OptimalIntraObjective(jobs, idle, budget)
		frac := core.FractionalMaxMin([]core.AppDemand{{App: 0, Budget: budget, Jobs: jobs}}, idle, 1e-3)
		ratio := 1.0
		if opt > 0 {
			ratio = greedy / opt
		}
		res.Rows = append(res.Rows, ApproxRow{
			Instance: i, Tasks: taskCount, Executors: nodes, Budget: budget,
			Greedy: greedy, Optimal: opt, Ratio: ratio, Fractional: frac,
		})
		if ratio < res.MinRatio {
			res.MinRatio = ratio
		}
		sum += ratio
	}
	if len(res.Rows) > 0 {
		res.MeanRatio = sum / float64(len(res.Rows))
	}
	return res
}

// Render formats the approximation ablation.
func (r ApproxResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A1 — greedy (Algorithm 2) vs optimal intra-app allocation (Eq. 9)\n")
	fmt.Fprintf(&b, "instances=%d  mean ratio=%.4f  min ratio=%.4f (theory bound: ≥ 0.5)\n",
		len(r.Rows), r.MeanRatio, r.MinRatio)
	return b.String()
}

// StrategyRow compares intra-application strategies on one-shot allocation
// rounds (Fig. 4–5's regime: a budget smaller than the demand).
type StrategyRow struct {
	Strategy string
	// LocalJobs is the mean fraction of perfectly-local jobs per instance.
	LocalJobs float64
	// LocalTasks is the mean fraction of local tasks per instance.
	LocalTasks float64
	// AvgUnits is the mean job completion time under the paper's Fig. 5
	// cost model: a local task finishes in 0.5 time units and a network
	// fetch takes 2, so a perfectly local job completes in 0.5 units and a
	// straggling one in 2.
	AvgUnits float64
}

// IntraResult is ablation A2.
type IntraResult struct {
	Rows      []StrategyRow
	Instances int
}

// RunIntra draws random scarce-budget allocation instances and compares the
// paper's priority rule (Algorithm 2) against job-fairness, measuring the
// number of perfectly-local jobs and the Fig. 5 stylized completion time.
func RunIntra(opts Options) (IntraResult, error) {
	opts = opts.normalize()
	instances := 300
	if opts.Quick {
		instances = 50
	}
	rng := xrand.New(opts.Seed)
	type acc struct{ localJobs, localTasks, units, n float64 }
	accs := map[string]*acc{"priority": {}, "fairness": {}}
	for i := 0; i < instances; i++ {
		nodes := rng.IntRange(6, 20)
		var idle []core.ExecInfo
		for n := 0; n < nodes; n++ {
			idle = append(idle, core.ExecInfo{ID: n, Node: n})
		}
		var jobs []core.JobDemand
		totalTasks := 0
		for j := 0; j < rng.IntRange(2, 6); j++ {
			jd := core.JobDemand{Job: j}
			for k := 0; k < rng.IntRange(1, 5); k++ {
				jd.Tasks = append(jd.Tasks, core.TaskDemand{
					Task: k, Block: hdfs.BlockID(totalTasks),
					Nodes: rng.Sample(nodes, rng.IntRange(1, 3)),
				})
				totalTasks++
			}
			jobs = append(jobs, jd)
		}
		// Scarce budget: roughly half the demand.
		budget := totalTasks/2 + 1
		for _, strat := range []core.IntraStrategy{core.PriorityIntra{}, core.FairnessIntra{}} {
			plan := core.Allocate(
				[]core.AppDemand{{App: 0, Budget: budget, Jobs: jobs}},
				idle, core.Options{FillToBudget: false, Intra: strat})
			perJob := map[int]int{}
			for _, as := range plan.Assignments {
				if as.Local {
					perJob[as.Job]++
				}
			}
			localJobs, localTasks, units := 0, 0, 0.0
			for _, jd := range jobs {
				localTasks += perJob[jd.Job]
				if perJob[jd.Job] == len(jd.Tasks) {
					localJobs++
					units += 0.5
				} else {
					units += 2 // the straggler dominates the completion time
				}
			}
			a := accs[strat.Name()]
			a.localJobs += float64(localJobs) / float64(len(jobs))
			a.localTasks += float64(localTasks) / float64(totalTasks)
			a.units += units / float64(len(jobs))
			a.n++
		}
	}
	var out IntraResult
	out.Instances = instances
	for _, name := range []string{"priority", "fairness"} {
		a := accs[name]
		out.Rows = append(out.Rows, StrategyRow{
			Strategy:   name,
			LocalJobs:  a.localJobs / a.n,
			LocalTasks: a.localTasks / a.n,
			AvgUnits:   a.units / a.n,
		})
	}
	return out, nil
}

// Render formats the intra-strategy ablation.
func (r IntraResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A2 — intra-application strategy under scarce budgets (Fig. 4–5), %d instances\n", r.Instances)
	fmt.Fprintf(&b, "%-10s %11s %12s %14s\n", "strategy", "localJobs", "localTasks", "avgJCT(units)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %10.3f %11.3f %13.3f\n",
			row.Strategy, row.LocalJobs, row.LocalTasks, row.AvgUnits)
	}
	return b.String()
}

// PlacementRow is one row of the Scarlett ablation.
type PlacementRow struct {
	Policy   string
	Manager  ManagerKind
	Locality float64
	JCT      float64
}

// ScarlettResult is ablation A3: popularity-based replication (§VII) under
// skewed file popularity, for both managers.
type ScarlettResult struct{ Rows []PlacementRow }

// RunScarlett compares random placement with Scarlett-style popularity
// placement under a heavily skewed access pattern.
func RunScarlett(opts Options) (ScarlettResult, error) {
	opts = opts.normalize()
	spec := workload.DefaultSpec(workload.WordCount)
	spec.Apps = opts.Apps
	spec.JobsPerApp = opts.JobsPerApp
	spec.ZipfSkew = 1.4 // hot files
	spec.DatasetFiles = 10
	sched := workload.Generate(spec, xrand.New(opts.Seed))

	// Popularity weights follow the Zipf ranks the generator uses.
	weights := map[string]float64{}
	for i, f := range sched.Files {
		w := 3.0 / float64(i+1) * 3
		if w < 1 {
			w = 1
		}
		weights[f.Name] = w
	}
	var out ScarlettResult
	for _, mk := range []ManagerKind{Standalone, Custody} {
		for _, pol := range []hdfs.PlacementPolicy{hdfs.RandomPolicy{}, &hdfs.PopularityPolicy{Weights: weights, MaxExtra: 6}} {
			cfg := driver.DefaultConfig()
			cfg.Seed = opts.Seed
			cfg.Placement = pol
			cfg.Manager = NewManager(mk, opts.Seed)
			col, err := driver.RunSchedule(cfg, sched)
			if err != nil {
				return out, err
			}
			out.Rows = append(out.Rows, PlacementRow{
				Policy:   pol.Name(),
				Manager:  mk,
				Locality: metrics.Summarize(col.LocalityPerJob()).Mean,
				JCT:      metrics.Summarize(col.JobCompletionTimes()).Mean,
			})
		}
	}
	return out, nil
}

// Render formats the Scarlett ablation.
func (r ScarlettResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A3 — popularity-based replication (Scarlett, §VII) under skew\n")
	fmt.Fprintf(&b, "%-10s %-12s %10s %12s\n", "manager", "placement", "locality", "meanJCT(s)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %-12s %9.3f %11.2f\n", row.Manager, row.Policy, row.Locality, row.JCT)
	}
	return b.String()
}

// OfferRow is one row of the Mesos-offer ablation.
type OfferRow struct {
	Manager    ManagerKind
	Locality   float64
	JCT        float64
	SchedDelay float64
	Rejections int
}

// OfferResult is ablation A4: the offer-based dynamic manager suffers
// repeated rejections under data-aware task scheduling (§II-A).
type OfferResult struct{ Rows []OfferRow }

// RunOffer compares standalone, offer-based, and Custody managers.
func RunOffer(opts Options) (OfferResult, error) {
	opts = opts.normalize()
	spec := workload.DefaultSpec(workload.WordCount)
	spec.Apps = opts.Apps
	spec.JobsPerApp = opts.JobsPerApp
	sched := workload.Generate(spec, xrand.New(opts.Seed))
	var out OfferResult
	for _, mk := range []ManagerKind{Standalone, Offer, Custody} {
		cfg := driver.DefaultConfig()
		cfg.Seed = opts.Seed
		cfg.Manager = NewManager(mk, opts.Seed)
		col, err := driver.RunSchedule(cfg, sched)
		if err != nil {
			return out, err
		}
		out.Rows = append(out.Rows, OfferRow{
			Manager:    mk,
			Locality:   metrics.Summarize(col.LocalityPerJob()).Mean,
			JCT:        metrics.Summarize(col.JobCompletionTimes()).Mean,
			SchedDelay: metrics.Summarize(col.SchedulerDelays()).Mean,
			Rejections: col.OfferRejections,
		})
	}
	return out, nil
}

// Render formats the offer ablation.
func (r OfferResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A4 — offer-based dynamic sharing (Mesos-like, §II-A), WordCount\n")
	fmt.Fprintf(&b, "%-10s %10s %12s %12s %11s\n", "manager", "locality", "meanJCT(s)", "delay(s)", "rejections")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %9.3f %11.2f %11.3f %11d\n",
			row.Manager, row.Locality, row.JCT, row.SchedDelay, row.Rejections)
	}
	return b.String()
}

// WaitRow is one locality-wait setting's outcome.
type WaitRow struct {
	WaitSec  float64
	Manager  ManagerKind
	Locality float64
	JCT      float64
	Delay    float64
}

// WaitResult is ablation A5: sensitivity to the delay-scheduling wait.
type WaitResult struct{ Rows []WaitRow }

// RunWait sweeps spark.locality.wait for both managers.
func RunWait(opts Options, waits []float64) (WaitResult, error) {
	opts = opts.normalize()
	if len(waits) == 0 {
		waits = []float64{0, 1, 3, 10}
	}
	spec := workload.DefaultSpec(workload.Sort)
	spec.Apps = opts.Apps
	spec.JobsPerApp = opts.JobsPerApp
	sched := workload.Generate(spec, xrand.New(opts.Seed))
	var out WaitResult
	for _, w := range waits {
		for _, mk := range []ManagerKind{Standalone, Custody} {
			cfg := driver.DefaultConfig()
			cfg.Seed = opts.Seed
			cfg.LocalityWait = w
			cfg.Manager = NewManager(mk, opts.Seed)
			col, err := driver.RunSchedule(cfg, sched)
			if err != nil {
				return out, err
			}
			out.Rows = append(out.Rows, WaitRow{
				WaitSec: w, Manager: mk,
				Locality: metrics.Summarize(col.LocalityPerJob()).Mean,
				JCT:      metrics.Summarize(col.JobCompletionTimes()).Mean,
				Delay:    metrics.Summarize(col.SchedulerDelays()).Mean,
			})
		}
	}
	return out, nil
}

// Render formats the wait ablation.
func (r WaitResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A5 — delay-scheduling wait sweep (Sort)\n")
	fmt.Fprintf(&b, "%-8s %-10s %10s %12s %10s\n", "wait(s)", "manager", "locality", "meanJCT(s)", "delay(s)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8.1f %-10s %9.3f %11.2f %9.3f\n",
			row.WaitSec, row.Manager, row.Locality, row.JCT, row.Delay)
	}
	return b.String()
}

// SpecRow is one speculation setting's outcome.
type SpecRow struct {
	Speculation bool
	JCT         metrics.Summary
	TailJCT     float64 // p95
}

// SpecResult is ablation A6: straggler mitigation (speculative execution)
// interacting with Custody (§IV-B mentions straggler mitigation as
// complementary).
type SpecResult struct{ Rows []SpecRow }

// RunSpeculation compares Custody with and without speculative execution
// under high compute-time variance.
func RunSpeculation(opts Options) (SpecResult, error) {
	opts = opts.normalize()
	spec := workload.DefaultSpec(workload.Sort)
	spec.Apps = opts.Apps
	spec.JobsPerApp = opts.JobsPerApp
	sched := workload.Generate(spec, xrand.New(opts.Seed))
	var out SpecResult
	for _, on := range []bool{false, true} {
		cfg := driver.DefaultConfig()
		cfg.Seed = opts.Seed
		cfg.Manager = NewManager(Custody, opts.Seed)
		cfg.StragglerProb = 0.05 // heavy tail: 5% of tasks run 4× longer
		cfg.StragglerFactor = 4
		cfg.Speculation = on
		col, err := driver.RunSchedule(cfg, sched)
		if err != nil {
			return out, err
		}
		s := metrics.Summarize(col.JobCompletionTimes())
		out.Rows = append(out.Rows, SpecRow{Speculation: on, JCT: s, TailJCT: s.P95})
	}
	return out, nil
}

// Render formats the speculation ablation.
func (r SpecResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A6 — speculative execution under high variance (Sort + Custody)\n")
	fmt.Fprintf(&b, "%-12s %12s %12s\n", "speculation", "meanJCT(s)", "p95JCT(s)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12v %11.2f %11.2f\n", row.Speculation, row.JCT.Mean, row.TailJCT)
	}
	return b.String()
}
