package experiments

import (
	"fmt"
	"strings"

	"repro/internal/app"
	"repro/internal/chaos"
	"repro/internal/driver"
	"repro/internal/hdfs"
	"repro/internal/manager"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// TournamentRow is one (policy, workload, level) cell of the policy
// tournament: the custody manager with one pluggable allocation policy,
// measured under one workload and fault intensity.
type TournamentRow struct {
	Policy     string
	Workload   workload.Kind
	Level      string
	JobsDone   int
	JobsTotal  int
	JCT        float64
	Locality   float64
	Fairness   float64 // Jain index over per-app locality
	Violations int     // invariant-audit failures (must be 0)
}

// TournamentResult is ablation A15: every allocation policy under every
// workload and fault level, same cluster, same seed.
type TournamentResult struct{ Rows []TournamentRow }

// tournamentGrid picks the sweep axes. The quick grid keeps one workload
// and the fault-free/medium endpoints so CI finishes in seconds; the full
// grid crosses all policies with all workloads and all chaos levels.
func tournamentGrid(quick bool) (kinds []workload.Kind, levels []ChaosLevel) {
	if quick {
		return []workload.Kind{workload.Sort},
			[]ChaosLevel{ChaosLevels[0], ChaosLevels[2]}
	}
	return []workload.Kind{workload.WordCount, workload.Sort, workload.PageRank}, ChaosLevels
}

// RunTournament runs ablation A15, the policy tournament: the custody
// manager's four allocation policies (Algorithm 1+2, Quincy-style min-cost
// flow, weighted fair, locality-aware matching) under each workload × fault
// level, with resilience on and the invariant auditor running after every
// fault. Every cell must complete all jobs with zero audit violations —
// the tournament ranks policies on JCT, locality, and Jain fairness, it
// does not tolerate correctness regressions from any of them.
func RunTournament(opts Options) (TournamentResult, error) {
	opts = opts.normalize()
	kinds, levels := tournamentGrid(opts.Quick)
	var out TournamentResult
	for _, kind := range kinds {
		spec := workload.DefaultSpec(kind)
		spec.Apps = opts.Apps
		spec.JobsPerApp = opts.JobsPerApp
		sched := workload.Generate(spec, xrand.New(opts.Seed))
		for _, level := range levels {
			for _, pol := range policy.Names() {
				cfg := driver.DefaultConfig()
				cfg.Seed = opts.Seed
				cfg.LocalityWait = opts.LocalityWait
				mgr := manager.NewCustody()
				if err := mgr.SetPolicy(pol); err != nil {
					return out, err
				}
				cfg.Manager = mgr
				cfg.EnableResilience()
				if opts.Quick {
					cfg.Nodes = 16
					cfg.RackSize = 4
				}
				d := driver.New(cfg)
				files := make([]*hdfs.File, len(sched.Files))
				for i, fs := range sched.Files {
					f, err := d.CreateInput(fs.Name, fs.Size)
					if err != nil {
						return out, err
					}
					files[i] = f
				}
				handles := make([]*app.Application, spec.Apps)
				for i := range handles {
					handles[i] = d.RegisterApp(fmt.Sprintf("app%d", i))
				}
				d.Start()
				for i, sub := range sched.Subs {
					d.SubmitJobAt(sub.At, handles[sub.App], workload.BuildJob(spec.Kind, i+1, files[sub.FileIdx]))
				}
				profile := chaos.DefaultProfile().Scale(level.Scale)
				plan := chaos.Plan(profile, sched.Horizon(), cfg.Nodes, cfg.Nodes*cfg.ExecutorsPerNode,
					xrand.New(opts.Seed).Fork("chaos-plan"))
				rep := chaos.Inject(d, plan, true)
				col := d.Run()
				out.Rows = append(out.Rows, TournamentRow{
					Policy:     pol,
					Workload:   kind,
					Level:      level.Name,
					JobsDone:   len(col.Jobs),
					JobsTotal:  len(sched.Subs),
					JCT:        metrics.Summarize(col.JobCompletionTimes()).Mean,
					Locality:   metrics.Summarize(col.LocalityPerJob()).Mean,
					Fairness:   col.JainFairness(),
					Violations: len(rep.Violations),
				})
			}
		}
	}
	return out, nil
}

// Render formats the tournament grid.
func (r TournamentResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A15 — policy tournament: allocation policies × workload × fault level\n")
	fmt.Fprintf(&b, "%-10s %-10s %-8s %9s %12s %9s %9s %11s\n",
		"policy", "workload", "level", "jobs", "meanJCT(s)", "locality", "fairness", "violations")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %-10s %-8s %5d/%-3d %11.2f %9.3f %9.3f %11d\n",
			row.Policy, row.Workload, row.Level, row.JobsDone, row.JobsTotal,
			row.JCT, row.Locality, row.Fairness, row.Violations)
	}
	return b.String()
}
