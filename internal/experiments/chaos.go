package experiments

import (
	"fmt"
	"strings"

	"repro/internal/app"
	"repro/internal/chaos"
	"repro/internal/driver"
	"repro/internal/hdfs"
	"repro/internal/metrics"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// ChaosLevel names a fault intensity in the chaos sweep.
type ChaosLevel struct {
	Name  string
	Scale float64 // multiplier on chaos.DefaultProfile fault counts
}

// ChaosLevels is the sweep's intensity axis: a fault-free control, then
// increasing multiples of the mixed default profile.
var ChaosLevels = []ChaosLevel{
	{"none", 0},
	{"low", 1},
	{"medium", 2},
	{"high", 4},
}

// ChaosRow is one (level, manager) measurement of the chaos experiment.
type ChaosRow struct {
	Level      string
	Manager    ManagerKind
	Faults     int // faults applied (idempotency noops excluded)
	JobsDone   int
	JobsTotal  int
	JCT        float64
	Locality   float64
	Retries    int     // task attempts re-queued after a fault
	Blacklists int     // node exclusion events
	Recovery   float64 // mean seconds from fault to re-launch of an interrupted task
	Violations int     // invariant-audit failures (must be 0)
}

// ChaosResult is ablation A13: both managers under escalating fault rates.
type ChaosResult struct{ Rows []ChaosRow }

// RunChaos runs the Sort workload under increasing fault intensity for the
// baseline and Custody, with the resilience layer enabled and the invariant
// auditor running after every fault application and reversal. Degradation
// must stay bounded: every job completes at every level and no audit
// violation occurs — the sweep measures the cost (JCT, locality, retries),
// not survival.
func RunChaos(opts Options) (ChaosResult, error) {
	opts = opts.normalize()
	spec := workload.DefaultSpec(workload.Sort)
	spec.Apps = opts.Apps
	spec.JobsPerApp = opts.JobsPerApp
	sched := workload.Generate(spec, xrand.New(opts.Seed))
	var out ChaosResult
	for _, level := range ChaosLevels {
		for _, mk := range []ManagerKind{Standalone, Custody} {
			cfg := driver.DefaultConfig()
			cfg.Seed = opts.Seed
			cfg.LocalityWait = opts.LocalityWait
			cfg.Manager = NewManager(mk, opts.Seed)
			cfg.EnableResilience()
			if opts.Quick {
				cfg.Nodes = 16
				cfg.RackSize = 4
			}
			d := driver.New(cfg)
			files := make([]*hdfs.File, len(sched.Files))
			for i, fs := range sched.Files {
				f, err := d.CreateInput(fs.Name, fs.Size)
				if err != nil {
					return out, err
				}
				files[i] = f
			}
			handles := make([]*app.Application, spec.Apps)
			for i := range handles {
				handles[i] = d.RegisterApp(fmt.Sprintf("app%d", i))
			}
			d.Start()
			for i, sub := range sched.Subs {
				d.SubmitJobAt(sub.At, handles[sub.App], workload.BuildJob(spec.Kind, i+1, files[sub.FileIdx]))
			}
			profile := chaos.DefaultProfile().Scale(level.Scale)
			plan := chaos.Plan(profile, sched.Horizon(), cfg.Nodes, cfg.Nodes*cfg.ExecutorsPerNode,
				xrand.New(opts.Seed).Fork("chaos-plan"))
			rep := chaos.Inject(d, plan, true)
			col := d.Run()
			out.Rows = append(out.Rows, ChaosRow{
				Level:      level.Name,
				Manager:    mk,
				Faults:     rep.Applied,
				JobsDone:   len(col.Jobs),
				JobsTotal:  len(sched.Subs),
				JCT:        metrics.Summarize(col.JobCompletionTimes()).Mean,
				Locality:   metrics.Summarize(col.LocalityPerJob()).Mean,
				Retries:    col.TaskRetries,
				Blacklists: col.BlacklistEvents,
				Recovery:   col.MeanRecoverySec(),
				Violations: len(rep.Violations),
			})
		}
	}
	return out, nil
}

// Render formats the chaos sweep.
func (r ChaosResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A13 — chaos sweep: escalating faults, resilience on (Sort)\n")
	fmt.Fprintf(&b, "%-8s %-10s %7s %9s %12s %9s %8s %11s %12s %11s\n",
		"level", "manager", "faults", "jobs", "meanJCT(s)", "locality", "retries", "blacklists", "recovery(s)", "violations")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s %-10s %7d %5d/%-3d %11.2f %8.3f %8d %11d %12.2f %11d\n",
			row.Level, row.Manager, row.Faults, row.JobsDone, row.JobsTotal,
			row.JCT, row.Locality, row.Retries, row.Blacklists, row.Recovery, row.Violations)
	}
	return b.String()
}
