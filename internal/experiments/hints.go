package experiments

import (
	"fmt"
	"strings"

	"repro/internal/driver"
	"repro/internal/manager"
	"repro/internal/metrics"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// HintRow is one scheduling-suggestion configuration's outcome.
type HintRow struct {
	Hints    bool
	Locality float64
	JCT      float64
	Delay    float64
}

// HintsResult is ablation A12: Custody's scheduling suggestions (§V). The
// paper submits them but does not make applications follow them; this
// ablation measures what following them is worth.
type HintsResult struct{ Rows []HintRow }

// RunHints compares Custody with and without honored scheduling
// suggestions on the Sort workload.
func RunHints(opts Options) (HintsResult, error) {
	opts = opts.normalize()
	spec := workload.DefaultSpec(workload.Sort)
	spec.Apps = opts.Apps
	spec.JobsPerApp = opts.JobsPerApp
	sched := workload.Generate(spec, xrand.New(opts.Seed))
	var out HintsResult
	for _, hints := range []bool{false, true} {
		mgr := manager.NewCustody()
		mgr.EmitHints = hints
		cfg := driver.DefaultConfig()
		cfg.Seed = opts.Seed
		cfg.LocalityWait = opts.LocalityWait
		cfg.Manager = mgr
		col, err := driver.RunSchedule(cfg, sched)
		if err != nil {
			return out, err
		}
		out.Rows = append(out.Rows, HintRow{
			Hints:    hints,
			Locality: metrics.Summarize(col.LocalityPerJob()).Mean,
			JCT:      metrics.Summarize(col.JobCompletionTimes()).Mean,
			Delay:    metrics.Summarize(col.SchedulerDelays()).Mean,
		})
	}
	return out, nil
}

// Render formats the hints ablation.
func (r HintsResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A12 — Custody scheduling suggestions (§V), Sort, 100 nodes\n")
	fmt.Fprintf(&b, "%-8s %10s %12s %10s\n", "hints", "locality", "meanJCT(s)", "delay(s)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8v %9.3f %11.2f %9.3f\n", row.Hints, row.Locality, row.JCT, row.Delay)
	}
	return b.String()
}
