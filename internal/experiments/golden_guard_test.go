package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// blessGolden rewrites one golden fixture under testdata/golden. Blessing
// is a deliberate local act — running `-update` in CI would silently
// overwrite the very fixtures the pipeline is supposed to check against —
// so it refuses outright when CI=true.
func blessGolden(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := blessGoldenErr(path, data); err != nil {
		t.Fatal(err)
	}
	t.Logf("updated %s (%d bytes)", path, len(data))
}

// blessGoldenErr is the testable core of blessGolden.
func blessGoldenErr(path string, data []byte) error {
	if os.Getenv("CI") == "true" {
		return fmt.Errorf("refusing to bless golden %s: -update must not run under CI=true; regenerate locally and commit the diff", path)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// TestBlessGoldenRefusesInCI pins the guard: with CI=true the bless helper
// must refuse and must not touch the target file.
func TestBlessGoldenRefusesInCI(t *testing.T) {
	path := filepath.Join(t.TempDir(), "golden", "fixture.txt")

	t.Setenv("CI", "true")
	err := blessGoldenErr(path, []byte("overwrite attempt"))
	if err == nil {
		t.Fatal("blessGoldenErr wrote a golden fixture with CI=true")
	}
	if !strings.Contains(err.Error(), "CI") {
		t.Fatalf("refusal should name the CI guard, got: %v", err)
	}
	if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
		t.Fatalf("refused bless still created %s", path)
	}

	t.Setenv("CI", "false")
	if err := blessGoldenErr(path, []byte("local bless")); err != nil {
		t.Fatalf("local bless failed: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "local bless" {
		t.Fatalf("local bless wrote %q, %v", got, err)
	}
}
