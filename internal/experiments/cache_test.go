package experiments

import (
	"strings"
	"testing"

	"repro/internal/race"
)

func TestRunCacheQuick(t *testing.T) {
	if race.Enabled {
		t.Skip("the cache sweep runs 15 full sims; the hdfs/driver/chaos cache tests cover these paths under -race")
	}
	res, err := RunCache(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// 3 managers × (no cache + 256MB lru + 256MB 2q + 1024MB lru + 4096MB lru).
	if len(res.Rows) != 15 {
		t.Fatalf("rows = %d, want 15", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.CacheMB == 0 {
			if r.Hits != 0 || r.Misses != 0 || r.Evictions != 0 || r.Policy != "-" {
				t.Errorf("cache-off row has cache activity: %+v", r)
			}
			continue
		}
		// The acceptance bar: a cached sweep row must show real traffic.
		if r.Hits == 0 || r.Misses == 0 {
			t.Errorf("%dMB/%s/%s: hits=%d misses=%d, want both nonzero", r.CacheMB, r.Policy, r.Manager, r.Hits, r.Misses)
		}
		if r.CacheMB == 256 && r.Evictions == 0 {
			t.Errorf("256MB/%s/%s: no evictions under pressure", r.Policy, r.Manager)
		}
		if r.HitRatio <= 0 || r.HitRatio >= 1 {
			t.Errorf("%dMB/%s/%s: hit ratio %v out of range", r.CacheMB, r.Policy, r.Manager, r.HitRatio)
		}
	}
	out := res.Render()
	if !strings.Contains(out, "block cache") || !strings.Contains(out, "2q") {
		t.Fatalf("render malformed:\n%s", out)
	}
}

// Seed stability: the sweep's cache counters are part of the deterministic
// surface — three identical invocations must agree exactly.
func TestRunCacheSeedStable(t *testing.T) {
	if race.Enabled {
		t.Skip("three full sweeps; determinism is seed-driven, not scheduling-driven")
	}
	first, err := RunCache(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 2; trial++ {
		again, err := RunCache(quickOpts())
		if err != nil {
			t.Fatal(err)
		}
		if len(again.Rows) != len(first.Rows) {
			t.Fatalf("trial %d: %d rows vs %d", trial, len(again.Rows), len(first.Rows))
		}
		for i := range again.Rows {
			if again.Rows[i] != first.Rows[i] {
				t.Fatalf("trial %d row %d differs:\n%+v\n%+v", trial, i, again.Rows[i], first.Rows[i])
			}
		}
	}
}
