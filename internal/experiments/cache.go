package experiments

import (
	"fmt"
	"strings"

	"repro/internal/driver"
	"repro/internal/hdfs"
	"repro/internal/metrics"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// CacheRow is one (cache size, eviction policy, manager) cell of the
// block-cache ablation.
type CacheRow struct {
	CacheMB   int64 // per-node cache capacity; 0 = tier disabled
	Policy    string
	Manager   ManagerKind
	JCT       float64
	Locality  float64
	HitRatio  float64
	Hits      int
	Misses    int
	Evictions int
}

// CacheResult is ablation A14: the A-series JCT/locality outcomes re-run
// across per-node block-cache sizes × managers, asking where an in-memory
// tier erases — or amplifies — Custody's locality advantage over the
// Standalone and Offer baselines. Rows with a cache attach the cache-aware
// replica selector, the read path a cache-equipped deployment would run.
type CacheResult struct{ Rows []CacheRow }

// cacheSizesMB are the swept per-node capacities. Zero is the cacheless
// A-series baseline; with 128 MB blocks the nonzero sizes hold 2, 8, and
// 32 blocks per node.
var cacheSizesMB = []int64{0, 256, 1024, 4096}

// RunCache sweeps cache sizes × managers (LRU everywhere, plus 2Q at the
// smallest nonzero size, where eviction pressure makes the policy choice
// visible).
func RunCache(opts Options) (CacheResult, error) {
	opts = opts.normalize()
	spec := workload.DefaultSpec(workload.WordCount)
	spec.Apps = opts.Apps
	spec.JobsPerApp = opts.JobsPerApp
	sched := workload.Generate(spec, xrand.New(opts.Seed))
	var out CacheResult
	for _, mb := range cacheSizesMB {
		policies := []hdfs.CachePolicy{hdfs.CacheLRU}
		if mb == 256 {
			policies = append(policies, hdfs.Cache2Q)
		}
		if mb == 0 {
			policies = []hdfs.CachePolicy{""}
		}
		for _, pol := range policies {
			for _, mk := range []ManagerKind{Standalone, Custody, Offer} {
				cfg := driver.DefaultConfig()
				cfg.Seed = opts.Seed
				cfg.LocalityWait = opts.LocalityWait
				cfg.Manager = NewManager(mk, opts.Seed)
				polName := "-"
				if mb > 0 {
					cfg.EnableCache(mb<<20, pol)
					cfg.ReplicaSelection = &hdfs.CacheAwareSelector{}
					polName = string(pol)
				}
				col, err := driver.RunSchedule(cfg, sched)
				if err != nil {
					return out, err
				}
				out.Rows = append(out.Rows, CacheRow{
					CacheMB:   mb,
					Policy:    polName,
					Manager:   mk,
					JCT:       metrics.Summarize(col.JobCompletionTimes()).Mean,
					Locality:  metrics.Summarize(col.LocalityPerJob()).Mean,
					HitRatio:  col.CacheHitRatio(),
					Hits:      col.CacheHits,
					Misses:    col.CacheMisses,
					Evictions: col.CacheEvictions,
				})
			}
		}
	}
	return out, nil
}

// Render formats the cache ablation.
func (r CacheResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A14 — per-node block cache & tiered reads (WordCount, 100 nodes; cached rows use the cache-aware selector)\n")
	fmt.Fprintf(&b, "%-8s %-7s %-10s %12s %10s %9s %9s %9s %10s\n",
		"cacheMB", "policy", "manager", "meanJCT(s)", "locality", "hitRatio", "hits", "misses", "evictions")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8d %-7s %-10s %11.2f %9.3f %8.3f %9d %9d %10d\n",
			row.CacheMB, row.Policy, row.Manager, row.JCT, row.Locality,
			row.HitRatio, row.Hits, row.Misses, row.Evictions)
	}
	return b.String()
}
