package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/driver"
	"repro/internal/manager"
	"repro/internal/policy"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// goldenRunPolicy is goldenRun with the custody manager's allocation policy
// forced through the same SetPolicy path the CLIs use.
func goldenRunPolicy(kind workload.Kind, pol string) (*trace.Recorder, error) {
	spec := workload.DefaultSpec(kind)
	spec.Apps = 2
	spec.JobsPerApp = 3
	sched := workload.Generate(spec, xrand.New(7))
	cfg := driver.DefaultConfig()
	cfg.Seed = 7
	cfg.Nodes = 16
	cfg.RackSize = 4
	m := manager.NewCustody()
	if err := m.SetPolicy(pol); err != nil {
		return nil, err
	}
	cfg.Manager = m
	rec := trace.NewRecorder()
	cfg.Tracer = rec
	if _, err := driver.RunSchedule(cfg, sched); err != nil {
		return nil, err
	}
	return rec, nil
}

// TestGoldenTracesPolicy pins every allocation policy's end-to-end timeline
// byte-for-byte, one seed of each workload kind. The custody entry does not
// get a fixture of its own: selecting it through SetPolicy must replay the
// existing <kind>-custody.trace goldens exactly, which is the whole
// byte-identity contract of the default policy (DESIGN.md §16). The
// contenders each get their own fixture. Regenerate after an intentional
// behavior change with:
//
//	go test ./internal/experiments -run TestGoldenTracesPolicy -update
func TestGoldenTracesPolicy(t *testing.T) {
	for _, kind := range workload.Kinds() {
		for _, pol := range policy.Names() {
			kind, pol := kind, pol
			base := fmt.Sprintf("%s-custody", strings.ToLower(string(kind)))
			name := fmt.Sprintf("%s-policy-%s", base, pol)
			t.Run(name, func(t *testing.T) {
				rec, err := goldenRunPolicy(kind, pol)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := rec.WriteCSV(&buf); err != nil {
					t.Fatal(err)
				}
				fixture := name
				if pol == policy.Custody {
					fixture = base // must replay the default golden exactly
				}
				path := filepath.Join("testdata", "golden", fixture+".trace")
				if *updateGolden && pol != policy.Custody {
					blessGolden(t, path, buf.Bytes())
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden trace: %v (regenerate with -update)", err)
				}
				if !bytes.Equal(buf.Bytes(), want) {
					d := firstDiffLine(buf.Bytes(), want)
					t.Fatalf("policy %s trace diverges from golden %s at line %d:\n got: %s\nwant: %s",
						pol, path, d, lineAt(buf.Bytes(), d), lineAt(want, d))
				}
			})
		}
	}
}
