package modelcheck

import (
	"fmt"

	"repro/internal/obsv"
)

// keyLess orders fairness keys lexicographically over (Jobs, Tasks) — the
// comparison MINLOCALITY uses, minus the app-ID tie-break.
func keyLess(a, b obsv.Key) bool {
	if a.Jobs != b.Jobs {
		return a.Jobs < b.Jobs
	}
	return a.Tasks < b.Tasks
}

// checkObserver tees allocation provenance: every Decision and Grant is
// checked against the round invariants and then forwarded to the hub (so
// the -explain chain stays available for violation reports).
//
// Invariants (grant-follow and round-double-grant are policy-generic; the
// rest are Custody-specific and attach only while the custody policy is
// active — see the custody field):
//
//   - fairness-monotone: within one round, the locality-phase decision keys
//     are lexicographically non-decreasing. Sound because an app's fairness
//     counters only grow within a round, so the minimum over the wanting
//     set is non-decreasing over successive picks.
//   - fill-monotone: the fill phase freezes keys and sorts ascending, so
//     its emitted decision keys are non-decreasing too.
//   - runner-up-order: a pick's chosen key is never lexicographically
//     greater than the runner-up it beat (it was the heap minimum).
//   - grant-follow: every grant belongs to the round's latest decision and
//     carries that decision's app.
//   - round-double-grant: within one round, an executor's slots go to a
//     single application and never more than its slot count.
//   - job-ordering (Algorithm 2): within one pick, all grants of a job are
//     issued before the next job — a served job never reappears.
type checkObserver struct {
	hub    obsv.AllocObserver // may be nil
	slots  []int              // executor ID → slot count
	report func(rule, detail string, app, job int)

	// custody gates the Custody-specific rules (key-range,
	// fairness-monotone, fill-monotone, runner-up-order, job-ordering):
	// they encode Algorithm 1/2's pick order and mean nothing for the
	// contender policies, which emit one decision per served application in
	// their own order. grant-follow and round-double-grant are
	// policy-generic and always checked. Toggled by the set-policy op.
	custody bool

	rounds     int
	haveLoc    bool
	lastLoc    obsv.Key
	haveFill   bool
	lastFill   obsv.Key
	haveDec    bool
	dec        obsv.Decision
	grantApp   map[int]int // exec → app granted this round
	grantCount map[int]int // exec → slots granted this round
	pickJobs   []int       // jobs served under the current decision, in order

	decisions int
	grants    int
}

func newCheckObserver(slots []int, hub obsv.AllocObserver, report func(rule, detail string, app, job int)) *checkObserver {
	return &checkObserver{
		hub:        hub,
		slots:      slots,
		report:     report,
		custody:    true,
		grantApp:   map[int]int{},
		grantCount: map[int]int{},
	}
}

// fail reports one violation; app/job give the -explain anchor (-1 unknown).
func (o *checkObserver) fail(rule string, app, job int, format string, args ...any) {
	o.report(rule, fmt.Sprintf(format, args...), app, job)
}

// BeginRound implements obsv.AllocObserver.
func (o *checkObserver) BeginRound(apps, execs int) {
	o.rounds++
	o.haveLoc, o.haveFill, o.haveDec = false, false, false
	for k := range o.grantApp {
		delete(o.grantApp, k)
	}
	for k := range o.grantCount {
		delete(o.grantCount, k)
	}
	o.pickJobs = o.pickJobs[:0]
	if o.hub != nil {
		o.hub.BeginRound(apps, execs)
	}
}

// Decide implements obsv.AllocObserver.
func (o *checkObserver) Decide(d obsv.Decision) {
	o.decisions++
	if o.custody {
		if d.Key.Jobs < 0 || d.Key.Jobs > 1 || d.Key.Tasks < 0 || d.Key.Tasks > 1 {
			o.fail("key-range", d.App, d.Job, "decision for app %d has key %s outside [0,1]", d.App, d.Key)
		}
		switch d.Phase {
		case obsv.PhaseLocality:
			if o.haveLoc && keyLess(d.Key, o.lastLoc) {
				o.fail("fairness-monotone", d.App, d.Job, "locality pick of app %d (job %d) at key %s after key %s in the same round",
					d.App, d.Job, d.Key, o.lastLoc)
			}
			o.haveLoc, o.lastLoc = true, d.Key
		case obsv.PhaseFill:
			if o.haveFill && keyLess(d.Key, o.lastFill) {
				o.fail("fill-monotone", d.App, d.Job, "fill pick of app %d at key %s after key %s in the same round",
					d.App, d.Key, o.lastFill)
			}
			o.haveFill, o.lastFill = true, d.Key
		}
		if d.RunnerUp >= 0 && keyLess(d.RunnerUpKey, d.Key) {
			o.fail("runner-up-order", d.App, d.Job, "app %d picked at key %s over runner-up app %d with smaller key %s",
				d.App, d.Key, d.RunnerUp, d.RunnerUpKey)
		}
	}
	o.haveDec, o.dec = true, d
	o.pickJobs = o.pickJobs[:0]
	if o.hub != nil {
		o.hub.Decide(d)
	}
}

// Grant implements obsv.AllocObserver.
func (o *checkObserver) Grant(g obsv.Grant) {
	o.grants++
	if !o.haveDec {
		o.fail("grant-follow", g.App, g.Job, "grant of exec %d to app %d with no decision in this round", g.Exec, g.App)
	} else if g.App != o.dec.App {
		o.fail("grant-follow", g.App, g.Job, "grant of exec %d to app %d under a decision for app %d", g.Exec, g.App, o.dec.App)
	}
	if prev, ok := o.grantApp[g.Exec]; ok && prev != g.App {
		o.fail("round-double-grant", g.App, g.Job, "exec %d granted to app %d and app %d in the same round", g.Exec, prev, g.App)
	}
	o.grantApp[g.Exec] = g.App
	o.grantCount[g.Exec]++
	if g.Exec >= 0 && g.Exec < len(o.slots) && o.grantCount[g.Exec] > o.slots[g.Exec] {
		o.fail("round-double-grant", g.App, g.Job, "exec %d granted %d slots, has %d", g.Exec, o.grantCount[g.Exec], o.slots[g.Exec])
	}
	if o.custody && g.Job >= 0 {
		n := len(o.pickJobs)
		if n == 0 || o.pickJobs[n-1] != g.Job {
			for _, served := range o.pickJobs {
				if served == g.Job {
					o.fail("job-ordering", g.App, g.Job, "pick for app %d returned to job %d after serving later jobs (Algorithm 2 orders all tasks of a job before the next)",
						g.App, g.Job)
					break
				}
			}
			o.pickJobs = append(o.pickJobs, g.Job)
		}
	}
	if o.hub != nil {
		o.hub.Grant(g)
	}
}
