//go:build custodymutate

package modelcheck

// mutationEnabled mirrors internal/core's custodymutate build tag; see
// mutation_off.go.
const mutationEnabled = true
