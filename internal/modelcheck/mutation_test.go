package modelcheck

import (
	"bytes"
	"testing"
)

// TestMutationSmoke proves the checker has teeth: under the custodymutate
// build tag, internal/core's fairness comparison is inverted (the allocator
// prefers the MOST-localized application), and the checker must (a) catch
// it within a bounded seed scan and (b) shrink the counterexample to at
// most 12 commands.
//
// Run with: go test -tags custodymutate -run TestMutationSmoke ./internal/modelcheck
func TestMutationSmoke(t *testing.T) {
	if !mutationEnabled {
		t.Skip("requires -tags custodymutate (seeded allocator bug not compiled in)")
	}
	const (
		maxSeeds    = 80
		cmdsPerSeed = 40
		maxShrunk   = 12
	)
	for seed := uint64(1); seed <= maxSeeds; seed++ {
		r := Check(seed, cmdsPerSeed)
		if !r.Failed() {
			continue
		}
		min := ShrinkResult(r)
		if !min.Failed() {
			t.Fatalf("seed %d: shrunken sequence no longer fails", seed)
		}
		var b bytes.Buffer
		if err := min.WriteReport(&b); err != nil {
			t.Fatalf("WriteReport: %v", err)
		}
		t.Logf("seed %d caught the mutation; minimal reproducer:\n%s", seed, b.String())
		if len(min.Commands) > maxShrunk {
			t.Fatalf("seed %d: shrunk to %d commands, want <= %d", seed, len(min.Commands), maxShrunk)
		}
		// Replaying the minimal commands must reproduce the violation.
		replay := Run(min.Seed, min.Commands)
		if !replay.Failed() || replay.Digest != min.Digest {
			t.Fatalf("minimal reproducer does not replay (failed=%v digest %s vs %s)",
				replay.Failed(), replay.Digest, min.Digest)
		}
		return
	}
	t.Fatalf("seeded fairness inversion never detected in %d seeds — the checker is blind", maxSeeds)
}
