//go:build custodymutateshard

package modelcheck

// shardMutationEnabled mirrors internal/core's custodymutateshard build tag;
// see shard_mutation_off.go.
const shardMutationEnabled = true
