//go:build custodymutatepolicy

package modelcheck

// policyMutationEnabled mirrors internal/policy's custodymutatepolicy build
// tag; see policy_mutation_off.go.
const policyMutationEnabled = true
