package modelcheck

import (
	"testing"
)

// TestServerSequencesHoldInvariants sweeps seeded server-mode sequences —
// submissions, degraded and normal rounds, fault windows, drains, and
// crash/recover cycles — expecting the full battery (model ledger, round
// observer, driver audit, digest-identical recovery) to stay quiet.
func TestServerSequencesHoldInvariants(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		r := CheckServer(seed, 60)
		if r.Failed() {
			shrunk := ShrinkServerResult(r)
			for _, v := range shrunk.Violations {
				t.Errorf("seed %d: %s", seed, v)
			}
			for i, c := range shrunk.Commands {
				t.Logf("seed %d repro %2d: %s", seed, i, c)
			}
			t.FailNow()
		}
	}
}

// TestServerRunDeterministic re-runs the same seeded sequence and requires
// byte-identical digests — crashes included, since recovery replay is part
// of the digested history.
func TestServerRunDeterministic(t *testing.T) {
	cmds := GenerateServer(42, 60)
	a := RunServer(42, cmds)
	b := RunServer(42, cmds)
	if a.Failed() || b.Failed() {
		t.Fatalf("unexpected violations: %v / %v", a.Violations, b.Violations)
	}
	if a.Digest != b.Digest {
		t.Fatalf("digest %s != %s across identical runs", a.Digest, b.Digest)
	}
}

// TestServerCrashSequence pins an explicit crash-heavy script: crashes
// mid-workload, mid-fault-window, and back-to-back must all recover
// digest-identically and keep every invariant.
func TestServerCrashSequence(t *testing.T) {
	cmds := []Command{
		{Op: OpSrvRegister},
		{Op: OpSrvRegister},
		{Op: OpSrvSubmit, A: 0, B: 0},
		{Op: OpSrvSubmit, A: 1, B: 1},
		{Op: OpSrvRound, F: 0.5},
		{Op: OpSrvCrash},
		{Op: OpSrvInject, A: 1, B: 3},  // executor crash
		{Op: OpSrvRound, A: 1, F: 1.0}, // degraded round mid-fault
		{Op: OpSrvCrash},
		{Op: OpSrvCrash},
		{Op: OpSrvRestore, A: 1},
		{Op: OpSrvRound, F: 2.0},
		{Op: OpSrvDrain},
		{Op: OpSrvCrash},
	}
	r := RunServer(7, cmds)
	if r.Failed() {
		for _, v := range r.Violations {
			t.Errorf("%s", v)
		}
	}
	if r.Applied != len(cmds) {
		t.Fatalf("applied %d of %d commands", r.Applied, len(cmds))
	}
}

// TestGenerateServerCoversAlphabet checks generation reaches every
// server op, crash included, and is a pure function of (seed, n).
func TestGenerateServerCoversAlphabet(t *testing.T) {
	cmds := GenerateServer(3, 400)
	seen := map[Op]bool{}
	for _, c := range cmds {
		seen[c.Op] = true
	}
	for _, op := range []Op{OpSrvRegister, OpSrvSubmit, OpSrvRound, OpSrvInject, OpSrvRestore, OpSrvCrash, OpSrvDrain} {
		if !seen[op] {
			t.Errorf("generation never produced %s", op)
		}
	}
	again := GenerateServer(3, 400)
	for i := range cmds {
		if cmds[i] != again[i] {
			t.Fatalf("generation not deterministic at %d: %v vs %v", i, cmds[i], again[i])
		}
	}
}
