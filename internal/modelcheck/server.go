package modelcheck

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/chaos"
	"repro/internal/custodyd"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// Server-mode checking drives the custodyd.Service op log instead of the
// bare driver: every command becomes a committed, replayable op, and the
// alphabet gains srv-crash — kill the incarnation and recover a fresh one
// from the intent log, requiring a digest-identical resurrection. The same
// model/observer battery checks every step, rebuilt per incarnation via
// custodyd's BootHook so replay re-feeds the model from genesis.
const (
	// OpSrvRegister activates the next tenant slot (no-op at quota).
	OpSrvRegister Op = "srv-register"
	// OpSrvSubmit submits workload B to tenant A mod tenants.
	OpSrvSubmit Op = "srv-submit"
	// OpSrvRound commits one allocation round covering F simulated seconds;
	// odd A makes it a degraded round (fallback-only locality).
	OpSrvRound Op = "srv-round"
	// OpSrvInject logs and applies chaos fault family A on target B.
	OpSrvInject Op = "srv-inject"
	// OpSrvRestore logs and reverts fault family A.
	OpSrvRestore Op = "srv-restore"
	// OpSrvCrash kills the service and recovers it by replaying the intent
	// log; recovery must reproduce the pre-crash state digest.
	OpSrvCrash Op = "srv-crash"
	// OpSrvDrain runs the engine until every accepted job finishes.
	OpSrvDrain Op = "srv-drain"
)

// GenerateServer produces n server-mode commands from the seed; like
// Generate it is a pure function of (seed, n).
func GenerateServer(seed uint64, n int) []Command {
	rng := xrand.New(seed).Fork("modelcheck-server-commands")
	cmds := make([]Command, 0, n)
	for i := 0; i < n; i++ {
		c := Command{A: rng.Intn(64), B: rng.Intn(64)}
		switch w := rng.Intn(20); {
		case w < 2:
			c.Op = OpSrvRegister
		case w < 7:
			c.Op = OpSrvSubmit
		case w < 12:
			c.Op = OpSrvRound
			c.F = rng.Range(0.2, 3.0)
		case w < 14:
			c.Op = OpSrvInject
		case w < 16:
			c.Op = OpSrvRestore
		case w < 18:
			c.Op = OpSrvCrash
		default:
			c.Op = OpSrvDrain
		}
		cmds = append(cmds, c)
	}
	return cmds
}

// serverHarness wires a custodyd.Service to the model checker. The
// forwardTracer and BootHook combination re-attaches a fresh Model and
// checkObserver to every incarnation — including the replay phase of a
// crash recovery, so the model is reconstructed from the same trace stream
// the original incarnation produced.
type serverHarness struct {
	cfg custodyd.Config
	svc *custodyd.Service
	jnl *custodyd.MemJournal
	fw  *forwardTracer

	model *Model
	obs   *checkObserver

	// Fault bookkeeping for target selection (selection only — checking
	// never reads these). Node failures are capped at Replication-1
	// concurrent, as in the driver harness.
	failedNode int
	slowDisk   map[int]bool
	degraded   map[int]bool

	curCmd     int
	crashes    int
	violations []Violation
	report     func(rule, detail string, app, job int)
}

func newServerHarness(seed uint64) *serverHarness {
	h := &serverHarness{failedNode: -1, slowDisk: map[int]bool{}, degraded: map[int]bool{}}
	h.report = func(rule, detail string, app, job int) {
		h.violations = append(h.violations, Violation{Cmd: h.curCmd, Rule: rule, Detail: detail, App: app, Job: job})
	}
	h.fw = &forwardTracer{}
	cfg := custodyd.DefaultConfig()
	cfg.Seed = seed
	cfg.Nodes = checkNodes
	cfg.ExecutorsPerNode = execsPerNode
	cfg.SlotsPerExecutor = slotsPerExec
	cfg.RackSize = 3
	cfg.Replication = 2
	cfg.MaxTenants = MaxApps
	cfg.Files = []custodyd.FileSpec{{Name: "mc-a", Blocks: 4}, {Name: "mc-b", Blocks: 6}}
	cfg.Tracer = h.fw
	cfg.BootHook = h.attach
	h.cfg = cfg
	h.jnl = custodyd.NewMemJournal()
	svc, err := custodyd.NewService(cfg, h.jnl)
	if err != nil {
		panic(err) // static configuration; cannot fail
	}
	h.svc = svc
	return h
}

// attach is the BootHook: called on every incarnation between stack
// construction and intent-log replay, so the fresh model and observer see
// the replayed history exactly as the original incarnation emitted it.
func (h *serverHarness) attach(s *custodyd.Service) {
	h.model = newModel(s.Driver().Cluster(), h.report)
	h.fw.dst = h.model
	var slots []int
	for _, e := range s.Driver().Cluster().Executors() {
		slots = append(slots, e.Slots())
	}
	h.obs = newCheckObserver(slots, s.Hub(), h.report)
	s.Manager().Opts.Observer = h.obs
}

// opError records a rejected or failed service op. Ops refused by
// validation (quota, no tenants) are expected no-ops, filtered by callers;
// anything else is a counterexample.
func (h *serverHarness) opError(err error) {
	h.violations = append(h.violations, Violation{Cmd: h.curCmd, Rule: "op-error", Detail: err.Error(), App: -1, Job: -1})
}

// apply executes one command against the service. Inapplicable targets
// degrade to no-ops so every subsequence of a sequence stays valid.
func (h *serverHarness) apply(c Command) {
	switch c.Op {
	case OpSrvRegister:
		if _, err := h.svc.Register(fmt.Sprintf("srv-%d", h.svc.Tenants())); err != nil && !errors.Is(err, custodyd.ErrTenantQuota) {
			h.opError(err)
		}
	case OpSrvSubmit:
		if h.svc.Tenants() == 0 {
			return
		}
		kinds := workload.Kinds()
		kind := string(kinds[c.B%len(kinds)])
		if _, err := h.svc.Submit(c.A%h.svc.Tenants(), kind, c.B%len(h.svc.Files())); err != nil {
			h.opError(err)
		}
	case OpSrvRound:
		if err := h.svc.Round(c.F, c.A%2 == 1); err != nil {
			h.opError(err)
		}
	case OpSrvInject:
		if f, ok := h.pickInject(c); ok {
			if err := h.svc.InjectFault(f); err != nil {
				h.opError(err)
			}
		}
	case OpSrvRestore:
		if f, ok := h.pickRestore(c); ok {
			if err := h.svc.RestoreFault(f); err != nil {
				h.opError(err)
			}
		}
	case OpSrvCrash:
		h.crash()
	case OpSrvDrain:
		if err := h.svc.Drain(); err != nil {
			h.opError(err)
		}
	}
}

// pickInject maps (A, B) to a concrete driver-level fault. Node failures
// are capped at one concurrent so no block can lose every replica.
func (h *serverHarness) pickInject(c Command) (chaos.Fault, bool) {
	cl := h.svc.Driver().Cluster()
	node := c.B % checkNodes
	switch c.A % nFaultKinds {
	case 0:
		if h.failedNode >= 0 || !cl.NodeAlive(node) {
			return chaos.Fault{}, false
		}
		h.failedNode = node
		return chaos.Fault{Kind: chaos.NodeFlap, Node: node, Exec: -1}, true
	case 1:
		return chaos.Fault{Kind: chaos.ExecutorCrash, Node: -1, Exec: c.B % cl.TotalExecutors()}, true
	case 2:
		return chaos.Fault{Kind: chaos.FlakyDataNode, Node: node, Exec: -1}, true
	case 3:
		return chaos.Fault{Kind: chaos.StaleMetadata, Node: -1, Exec: -1}, true
	case 4:
		h.slowDisk[node] = true
		return chaos.Fault{Kind: chaos.SlowDisk, Node: node, Exec: -1, Factor: 0.25}, true
	case 5:
		h.degraded[node] = true
		return chaos.Fault{Kind: chaos.LinkDegrade, Node: node, Exec: -1, Factor: 0.25}, true
	default:
		groups := make([]int, checkNodes)
		for i := range groups {
			if i >= checkNodes/2 {
				groups[i] = 1
			}
		}
		return chaos.Fault{Kind: chaos.Partition, Node: -1, Exec: -1, Groups: groups}, true
	}
}

// pickRestore maps fault family A to the lowest-numbered active target,
// deterministically.
func (h *serverHarness) pickRestore(c Command) (chaos.Fault, bool) {
	cl := h.svc.Driver().Cluster()
	nn := h.svc.Driver().NameNode()
	switch c.A % nFaultKinds {
	case 0:
		if h.failedNode < 0 {
			return chaos.Fault{}, false
		}
		f := chaos.Fault{Kind: chaos.NodeFlap, Node: h.failedNode, Exec: -1}
		h.failedNode = -1
		return f, true
	case 1:
		for _, e := range cl.Executors() {
			if !e.Alive() && cl.NodeAlive(e.Node.ID) {
				return chaos.Fault{Kind: chaos.ExecutorCrash, Node: -1, Exec: e.ID}, true
			}
		}
	case 2:
		for n := 0; n < checkNodes; n++ {
			if nn.DataNode(n).Suspended() {
				return chaos.Fault{Kind: chaos.FlakyDataNode, Node: n, Exec: -1}, true
			}
		}
	case 3:
		return chaos.Fault{Kind: chaos.StaleMetadata, Node: -1, Exec: -1}, true
	case 4:
		for n := 0; n < checkNodes; n++ {
			if h.slowDisk[n] {
				delete(h.slowDisk, n)
				return chaos.Fault{Kind: chaos.SlowDisk, Node: n, Exec: -1, Factor: 0.25}, true
			}
		}
	case 5:
		for n := 0; n < checkNodes; n++ {
			if h.degraded[n] {
				delete(h.degraded, n)
				return chaos.Fault{Kind: chaos.LinkDegrade, Node: n, Exec: -1, Factor: 0.25}, true
			}
		}
	default:
		return chaos.Fault{Kind: chaos.Partition, Node: -1, Exec: -1}, true
	}
	return chaos.Fault{}, false
}

// crash kills the incarnation and recovers a fresh one from the intent
// log. The recovered digest must equal the pre-crash digest — the
// crash-tolerance invariant — and the fresh model (rebuilt by attach during
// replay) must still agree with the live cluster, which the post-command
// check verifies.
func (h *serverHarness) crash() {
	before := h.svc.Digest()
	jnl := custodyd.NewMemJournal(h.jnl.Ops()...)
	svc, err := custodyd.NewService(h.cfg, jnl)
	if err != nil {
		h.violations = append(h.violations, Violation{Cmd: h.curCmd, Rule: "crash-recovery",
			Detail: fmt.Sprintf("replay failed: %v", err), App: -1, Job: -1})
		return
	}
	if got := svc.Digest(); got != before {
		h.violations = append(h.violations, Violation{Cmd: h.curCmd, Rule: "crash-recovery",
			Detail: fmt.Sprintf("recovered digest %s != pre-crash digest %s", got, before), App: -1, Job: -1})
	}
	h.svc, h.jnl = svc, jnl
	h.crashes++
}

// check runs the post-command invariant battery against the service's
// stack.
func (h *serverHarness) check() {
	h.model.Compare(h.svc.Driver().Cluster())
	h.model.CheckReplicaMap(h.svc.Driver().NameNode(), h.svc.Files())
	if err := h.svc.Driver().Audit(); err != nil {
		h.violations = append(h.violations, Violation{Cmd: h.curCmd, Rule: "audit", Detail: err.Error(), App: -1, Job: -1})
	}
}

// step applies one command and checks invariants, converting panics into
// violations.
func (h *serverHarness) step(i int, c Command) {
	h.curCmd = i
	defer func() {
		if r := recover(); r != nil {
			h.violations = append(h.violations, Violation{Cmd: i, Rule: "panic", Detail: fmt.Sprint(r), App: -1, Job: -1})
		}
	}()
	h.apply(c)
	h.check()
}

// digest fingerprints the final server-mode state: the service digest
// (which covers the op log position, tenant ledgers, and driver metrics),
// the model ledger, observer counters, and crash count.
func (h *serverHarness) digest() string {
	var b strings.Builder
	fmt.Fprintf(&b, "svc=%s crashes=%d\n", h.svc.Digest(), h.crashes)
	for _, l := range h.model.digestLines() {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "rounds=%d decisions=%d grants=%d\n", h.obs.rounds, h.obs.decisions, h.obs.grants)
	for _, v := range h.violations {
		b.WriteString(v.String())
		b.WriteByte('\n')
	}
	s := b.String()
	hash := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		hash = (hash ^ uint64(s[i])) * 0x100000001B3
	}
	return fmt.Sprintf("%016x", hash)
}

// RunServer executes a server-mode command sequence on a fresh service
// seeded with seed, stopping at the first violating command. Like Run it is
// a pure function of its arguments.
func RunServer(seed uint64, cmds []Command) *Result {
	h := newServerHarness(seed)
	applied := 0
	for i, c := range cmds {
		h.step(i, c)
		applied++
		if len(h.violations) > 0 {
			break
		}
	}
	return &Result{
		Seed:       seed,
		Commands:   cmds,
		Applied:    applied,
		Violations: h.violations,
		Digest:     h.digest(),
		hub:        h.svc.Hub(),
	}
}

// CheckServer generates n server-mode commands from seed and runs them.
func CheckServer(seed uint64, n int) *Result { return RunServer(seed, GenerateServer(seed, n)) }

// ShrinkServerResult shrinks a failing server-mode Result to a minimal
// reproducer, re-running RunServer for every candidate subsequence.
func ShrinkServerResult(r *Result) *Result {
	if !r.Failed() {
		return r
	}
	minimal := ShrinkCommands(r.Commands, func(cmds []Command) bool {
		return RunServer(r.Seed, cmds).Failed()
	})
	return RunServer(r.Seed, minimal)
}
