package modelcheck

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// TestPolicyMutationSmoke proves the policy-generic invariants have teeth:
// under the custodymutatepolicy build tag, internal/policy inverts the sign
// of every app→executor edge cost in the Quincy flow network, so the
// improving-only min-cost solver never augments and the policy starves every
// application. The harness — with a set-policy quincy prefix so the mutated
// policy is active from the first round — must (a) catch the starvation via
// the plan-contract check (policy.Validate's non-starvation rule) within a
// bounded seed scan, (b) shrink the counterexample to at most 12 commands,
// and (c) round-trip it through a .repro file that replays to the same
// digest. The Custody-specific invariants are detached while quincy is
// active, so a detection here is attributable to the generic core alone.
//
// Run with: go test -tags custodymutatepolicy -run TestPolicyMutationSmoke ./internal/modelcheck
func TestPolicyMutationSmoke(t *testing.T) {
	if !policyMutationEnabled {
		t.Skip("requires -tags custodymutatepolicy (seeded Quincy cost-sign bug not compiled in)")
	}
	const (
		maxSeeds    = 80
		cmdsPerSeed = 40
		maxShrunk   = 12
	)
	// policyTarget(1) must resolve to quincy: the prefix arms the mutated
	// policy before any generated command runs.
	if policyTarget(1) != "quincy" {
		t.Fatalf("policyTarget(1) = %q, want quincy (registry order changed?)", policyTarget(1))
	}
	for seed := uint64(1); seed <= maxSeeds; seed++ {
		cmds := append([]Command{{Op: OpSetPolicy, A: 1}}, Generate(seed, cmdsPerSeed)...)
		r := Run(seed, cmds)
		if !r.Failed() {
			continue
		}
		min := ShrinkResult(r)
		if !min.Failed() {
			t.Fatalf("seed %d: shrunken sequence no longer fails", seed)
		}
		var b bytes.Buffer
		if err := min.WriteReport(&b); err != nil {
			t.Fatalf("WriteReport: %v", err)
		}
		t.Logf("seed %d caught the policy mutation; minimal reproducer:\n%s", seed, b.String())
		if len(min.Commands) > maxShrunk {
			t.Fatalf("seed %d: shrunk to %d commands, want <= %d", seed, len(min.Commands), maxShrunk)
		}
		generic := false
		for _, v := range min.Violations {
			if v.Rule == "plancheck" || v.Rule == "audit" || strings.HasPrefix(v.Rule, "model-") || v.Rule == "round-double-grant" || v.Rule == "grant-follow" {
				generic = true
			}
			if v.Rule == "selfcheck" {
				t.Fatalf("seed %d: selfcheck fired under a non-custody policy (should be detached): %s", seed, v)
			}
		}
		if !generic {
			t.Fatalf("seed %d: no policy-generic rule fired; violations: %v", seed, min.Violations)
		}
		path := filepath.Join(t.TempDir(), "policy-cost-sign.repro")
		if err := WriteRepro(path, Repro{Seed: min.Seed, Commands: min.Commands}); err != nil {
			t.Fatalf("WriteRepro: %v", err)
		}
		got, err := ReadRepro(path)
		if err != nil {
			t.Fatalf("ReadRepro: %v", err)
		}
		replay := Run(got.Seed, got.Commands)
		if !replay.Failed() || replay.Digest != min.Digest {
			t.Fatalf(".repro does not replay (failed=%v digest %s vs %s)",
				replay.Failed(), replay.Digest, min.Digest)
		}
		return
	}
	t.Fatalf("seeded Quincy cost-sign bug never detected in %d seeds — the generic invariants are blind", maxSeeds)
}
