//go:build !custodymutate

package modelcheck

// mutationEnabled mirrors internal/core's custodymutate build tag so the
// mutation smoke test can live in an always-compiled file and skip itself
// when the seeded bug is not compiled in.
const mutationEnabled = false
