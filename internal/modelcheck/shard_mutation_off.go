//go:build !custodymutateshard

package modelcheck

// shardMutationEnabled mirrors internal/core's custodymutateshard build tag
// (the seeded sharded-build tie-break bug) so the shard mutation smoke test
// can live in an always-compiled file and skip itself when the bug is not
// compiled in.
const shardMutationEnabled = false
