package modelcheck

import (
	"bytes"
	"path/filepath"
	"testing"
)

// TestShardMutationSmoke proves the checker guards the sharded-build merge
// contract: under the custodymutateshard build tag, internal/core reverses
// the per-shard executor scan order (so same-node ties resolve to the
// highest executor ID instead of the lowest whenever Shards > 1), and the
// harness's manager self-check must (a) catch the divergence from the
// reference oracle within a bounded seed scan, (b) shrink the
// counterexample to at most 12 commands, and (c) round-trip it through a
// .repro file that replays to the same digest.
//
// Each scanned sequence gets a set-shards prefix so the mutation's
// Shards > 1 guard is armed from the first round; shrinking is free to
// drop the prefix, and keeps it exactly because sequential builds do not
// fail.
//
// Run with: go test -tags custodymutateshard -run TestShardMutationSmoke ./internal/modelcheck
func TestShardMutationSmoke(t *testing.T) {
	if !shardMutationEnabled {
		t.Skip("requires -tags custodymutateshard (seeded sharded tie-break bug not compiled in)")
	}
	const (
		maxSeeds    = 80
		cmdsPerSeed = 40
		maxShrunk   = 12
	)
	for seed := uint64(1); seed <= maxSeeds; seed++ {
		cmds := append([]Command{{Op: OpSetShards, A: 3}}, Generate(seed, cmdsPerSeed)...)
		r := Run(seed, cmds)
		if !r.Failed() {
			continue
		}
		min := ShrinkResult(r)
		if !min.Failed() {
			t.Fatalf("seed %d: shrunken sequence no longer fails", seed)
		}
		var b bytes.Buffer
		if err := min.WriteReport(&b); err != nil {
			t.Fatalf("WriteReport: %v", err)
		}
		t.Logf("seed %d caught the shard mutation; minimal reproducer:\n%s", seed, b.String())
		if len(min.Commands) > maxShrunk {
			t.Fatalf("seed %d: shrunk to %d commands, want <= %d", seed, len(min.Commands), maxShrunk)
		}
		path := filepath.Join(t.TempDir(), "shard-tie.repro")
		if err := WriteRepro(path, Repro{Seed: min.Seed, Commands: min.Commands}); err != nil {
			t.Fatalf("WriteRepro: %v", err)
		}
		got, err := ReadRepro(path)
		if err != nil {
			t.Fatalf("ReadRepro: %v", err)
		}
		replay := Run(got.Seed, got.Commands)
		if !replay.Failed() || replay.Digest != min.Digest {
			t.Fatalf(".repro does not replay (failed=%v digest %s vs %s)",
				replay.Failed(), replay.Digest, min.Digest)
		}
		return
	}
	t.Fatalf("seeded sharded tie-break bug never detected in %d seeds — the self-check is blind", maxSeeds)
}
