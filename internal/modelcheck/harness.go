package modelcheck

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/driver"
	"repro/internal/hdfs"
	"repro/internal/manager"
	"repro/internal/netsim"
	"repro/internal/obsv"
	"repro/internal/policy"
	"repro/internal/trace"
)

// Harness shape: a cluster small enough that a 25-command sequence runs in
// about a millisecond, yet contended enough (3 apps over 12 executors, 2
// replicas) that allocation rounds actually compete.
const (
	// MaxApps is the number of pre-registered applications; SubmitApp
	// activates them one by one (the driver forbids registration after
	// Start).
	MaxApps      = 3
	checkNodes   = 6
	execsPerNode = 2
	slotsPerExec = 2
	nFaultKinds  = 7
)

// Violation is one invariant breach detected during a run. App/Job anchor
// the provenance -explain chain when the breach involves a decision or
// grant; both are -1 for model-side breaches.
type Violation struct {
	Cmd    int    `json:"cmd"` // index of the command being applied
	Rule   string `json:"rule"`
	Detail string `json:"detail"`
	App    int    `json:"app"`
	Job    int    `json:"job"`
}

func (v Violation) String() string {
	return fmt.Sprintf("cmd %d [%s] %s", v.Cmd, v.Rule, v.Detail)
}

// Result is the outcome of running one command sequence.
type Result struct {
	Seed       uint64
	Commands   []Command
	Applied    int // commands applied (stops at the first violating command)
	Violations []Violation
	Digest     string // stable fingerprint of the final model state

	hub *obsv.Hub // retained for the -explain chain of violation reports
}

// Failed reports whether any invariant was violated.
func (r *Result) Failed() bool { return len(r.Violations) > 0 }

// forwardTracer breaks the construction cycle: the driver needs its Tracer
// at New time, but the Model needs the driver's cluster topology.
type forwardTracer struct{ dst trace.Tracer }

func (f *forwardTracer) Emit(e trace.Event) {
	if f.dst != nil {
		f.dst.Emit(e)
	}
}

// harness wires one fresh core+manager+driver stack to the model checker.
type harness struct {
	drv   *driver.Driver
	mgr   *manager.Custody
	hub   *obsv.Hub
	model *Model
	obs   *checkObserver
	apps  []*app.Application
	files []*hdfs.File

	active  int   // activated applications (≥1)
	nextJob []int // per-app next job ID

	// Fault bookkeeping for restore target selection (selection only —
	// checking never reads these).
	failedNode int // ≤1 concurrent node failure; -1 when none
	slowDisk   map[int]bool
	degraded   map[int]bool

	curCmd     int
	violations []Violation
}

func newHarness(seed uint64) *harness {
	h := &harness{failedNode: -1, slowDisk: map[int]bool{}, degraded: map[int]bool{}}
	report := func(rule, detail string, app, job int) {
		h.violations = append(h.violations, Violation{Cmd: h.curCmd, Rule: rule, Detail: detail, App: app, Job: job})
	}

	cfg := driver.DefaultConfig()
	cfg.Seed = seed
	cfg.Nodes = checkNodes
	cfg.ExecutorsPerNode = execsPerNode
	cfg.SlotsPerExecutor = slotsPerExec
	cfg.RackSize = 3
	cfg.BlockSize = 32 << 20
	cfg.Replication = 2
	cfg.Net = netsim.Config{UplinkBps: 250e6, DownlinkBps: 5e9, DiskBps: 400e6}
	cfg.LocalityWait = 0.5
	cfg.ExecutorStartupSec = 0
	cfg.ComputeNoise = 0
	cfg.EnableResilience()

	h.mgr = manager.NewCustody()
	cfg.Manager = h.mgr
	h.hub = obsv.NewHub(0)
	cfg.Obsv = h.hub
	fw := &forwardTracer{}
	cfg.Tracer = fw

	h.drv = driver.New(cfg)
	h.model = newModel(h.drv.Cluster(), report)
	fw.dst = h.model

	var slots []int
	for _, e := range h.drv.Cluster().Executors() {
		slots = append(slots, e.Slots())
	}
	h.obs = newCheckObserver(slots, h.hub, report)
	h.mgr.Opts.Observer = h.obs
	// Re-run every round through the frozen reference oracle: observer
	// invariants see fairness-key order but not which executor a tie
	// resolved to, so a sharded-build tie-break bug is only visible as a
	// plan divergence.
	h.mgr.SelfCheck = true
	// Policy-generic plan contract (policy.Validate) for whichever policy
	// the set-policy op selects, the default included.
	h.mgr.PlanCheck = true

	for _, in := range []struct {
		name   string
		blocks int64
	}{{"mc-a", 4}, {"mc-b", 6}} {
		f, err := h.drv.CreateInput(in.name, in.blocks*cfg.BlockSize)
		if err != nil {
			panic(err) // static configuration; cannot fail
		}
		h.files = append(h.files, f)
	}
	for i := 0; i < MaxApps; i++ {
		h.apps = append(h.apps, h.drv.RegisterApp(fmt.Sprintf("mc-%d", i)))
	}
	h.drv.Start()
	h.active = 1
	h.nextJob = make([]int, MaxApps)
	return h
}

// apply executes one command against the live stack. Inapplicable targets
// degrade to no-ops so every subsequence of a sequence stays valid.
func (h *harness) apply(c Command) {
	eng := h.drv.Engine()
	cl := h.drv.Cluster()
	switch c.Op {
	case OpSubmitApp:
		if h.active < MaxApps {
			h.active++
		}
	case OpSubmitJob:
		ai := c.A % h.active
		a := h.apps[ai]
		h.nextJob[ai]++
		h.drv.SubmitJobAt(eng.Now(), a, h.buildJob(h.nextJob[ai], c.B))
		eng.RunUntil(eng.Now()) // deliver the submission event
	case OpGrantRound:
		h.mgr.Reallocate(h.drv)
		h.drv.Kick()
	case OpRevokeExecutor:
		e := cl.Executor(c.A % cl.TotalExecutors())
		if e.Alive() && e.Owner() != cluster.NoApp && e.Running() == 0 {
			h.drv.Release(e)
		}
	case OpInjectFault:
		h.injectFault(c)
	case OpRestoreFault:
		h.restoreFault(c)
	case OpAdvanceClock:
		eng.RunUntil(eng.Now() + c.F)
	case OpCompleteTask:
		target := h.model.doneCount + 1
		for steps := 0; h.model.doneCount < target && steps < 20000; steps++ {
			if !eng.Step() {
				break
			}
		}
	case OpSetShards:
		h.mgr.Opts.Shards = shardTarget(c.A)
	case OpSetPolicy:
		h.setPolicy(c.A)
	}
}

// shardTarget maps a command operand to a shard count in [1, 8].
func shardTarget(a int) int {
	if a < 0 {
		a = -a
	}
	return 1 + a%8
}

// policyTarget maps a command operand to a registry policy name.
func policyTarget(a int) string {
	names := policy.Names()
	if a < 0 {
		a = -a
	}
	return names[a%len(names)]
}

// setPolicy switches the manager's allocation policy and re-attaches or
// detaches the Custody-specific invariants: the SelfCheck reference
// differential and the observer's fairness/ordering rules apply only while
// the custody policy is active; the policy-generic core (model ledger,
// double-grant, replica hygiene, audit, plan contract) always runs.
func (h *harness) setPolicy(a int) {
	name := policyTarget(a)
	if err := h.mgr.SetPolicy(name); err != nil {
		panic(err) // registry names are closed; cannot fail
	}
	custody := name == policy.Custody
	h.mgr.SelfCheck = custody
	h.obs.custody = custody
}

// buildJob constructs one of four small job shapes; all input blocks come
// from the two pre-created files.
func (h *harness) buildJob(id, shape int) *app.Job {
	fa, fb := h.files[0], h.files[1]
	switch shape % 4 {
	case 0:
		b := app.NewJob(id, "mc-tiny", "mc-a")
		b.AddInputStage("map", fa.Blocks[:2], app.TaskSpec{ComputeSec: 0.3, OutputBytes: 4 << 20})
		return b.Build()
	case 1:
		b := app.NewJob(id, "mc-wide", "mc-a")
		b.AddInputStage("map", fa.Blocks, app.TaskSpec{ComputeSec: 0.25, OutputBytes: 4 << 20})
		return b.Build()
	case 2:
		b := app.NewJob(id, "mc-mid", "mc-b")
		b.AddInputStage("map", fb.Blocks[2:5], app.TaskSpec{ComputeSec: 0.4, OutputBytes: 4 << 20})
		return b.Build()
	default:
		b := app.NewJob(id, "mc-shuffle", "mc-b")
		in := b.AddInputStage("map", fb.Blocks[:3], app.TaskSpec{ComputeSec: 0.3, OutputBytes: 8 << 20})
		b.AddShuffleStage("reduce", []*app.Stage{in}, 2, 8<<20, app.TaskSpec{ComputeSec: 0.2})
		return b.Build()
	}
}

// injectFault applies fault family A on target B. Concurrent whole-node
// failures are capped at Replication-1 (= 1) so no block can lose every
// replica: data loss is a legal outcome of over-failing, not a scheduler
// bug, and would drown the audit signal.
func (h *harness) injectFault(c Command) {
	cl := h.drv.Cluster()
	node := c.B % checkNodes
	switch c.A % nFaultKinds {
	case 0:
		if h.failedNode < 0 && h.drv.InjectNodeFail(node) {
			h.failedNode = node
		}
	case 1:
		h.drv.InjectExecutorFail(c.B % cl.TotalExecutors())
	case 2:
		h.drv.InjectDataNodeFlake(node)
	case 3:
		h.drv.InjectStaleMetadata()
	case 4:
		if h.drv.InjectSlowDisk(node, 0.25) {
			h.slowDisk[node] = true
		}
	case 5:
		if h.drv.InjectLinkDegrade(node, 0.25) {
			h.degraded[node] = true
		}
	case 6:
		groups := make([]int, checkNodes)
		for i := range groups {
			if i >= checkNodes/2 {
				groups[i] = 1
			}
		}
		h.drv.InjectPartition(groups)
	}
}

// restoreFault reverts fault family A, picking the lowest-numbered active
// target deterministically.
func (h *harness) restoreFault(c Command) {
	cl := h.drv.Cluster()
	nn := h.drv.NameNode()
	switch c.A % nFaultKinds {
	case 0:
		if h.failedNode >= 0 && h.drv.InjectNodeRecover(h.failedNode) {
			h.failedNode = -1
		}
	case 1:
		for _, e := range cl.Executors() {
			if !e.Alive() && cl.NodeAlive(e.Node.ID) {
				h.drv.InjectExecutorRecover(e.ID)
				break
			}
		}
	case 2:
		for n := 0; n < checkNodes; n++ {
			if nn.DataNode(n).Suspended() {
				h.drv.RestoreDataNode(n)
				break
			}
		}
	case 3:
		h.drv.RestoreMetadata()
	case 4:
		for n := 0; n < checkNodes; n++ {
			if h.slowDisk[n] {
				h.drv.RestoreDisk(n)
				delete(h.slowDisk, n)
				break
			}
		}
	case 5:
		for n := 0; n < checkNodes; n++ {
			if h.degraded[n] {
				h.drv.RestoreLinks(n)
				delete(h.degraded, n)
				break
			}
		}
	case 6:
		h.drv.HealPartition()
	}
}

// check runs the post-command invariant battery: model-vs-cluster slot
// ledger, replica-map hygiene, and the driver's cross-layer audit.
func (h *harness) check() {
	h.model.Compare(h.drv.Cluster())
	h.model.CheckReplicaMap(h.drv.NameNode(), h.files)
	if err := h.drv.Audit(); err != nil {
		h.violations = append(h.violations, Violation{Cmd: h.curCmd, Rule: "audit", Detail: err.Error(), App: -1, Job: -1})
	}
	if err := h.mgr.SelfCheckErr; err != nil {
		h.violations = append(h.violations, Violation{Cmd: h.curCmd, Rule: "selfcheck", Detail: err.Error(), App: -1, Job: -1})
	}
	if err := h.mgr.PlanCheckErr; err != nil {
		h.violations = append(h.violations, Violation{Cmd: h.curCmd, Rule: "plancheck", Detail: err.Error(), App: -1, Job: -1})
	}
}

// step applies one command and checks invariants, converting panics
// anywhere in the stack into violations (a crash is a counterexample, not
// a harness failure).
func (h *harness) step(i int, c Command) {
	h.curCmd = i
	defer func() {
		if r := recover(); r != nil {
			h.violations = append(h.violations, Violation{Cmd: i, Rule: "panic", Detail: fmt.Sprint(r), App: -1, Job: -1})
		}
	}()
	h.apply(c)
	h.check()
}

// Run executes the command sequence on a fresh stack seeded with seed,
// stopping at the first command that produces a violation. It is a pure
// function of its arguments: the same (seed, cmds) yields a byte-identical
// Result, including the digest.
func Run(seed uint64, cmds []Command) *Result {
	h := newHarness(seed)
	applied := 0
	for i, c := range cmds {
		h.step(i, c)
		applied++
		if len(h.violations) > 0 {
			break
		}
	}
	return &Result{
		Seed:       seed,
		Commands:   cmds,
		Applied:    applied,
		Violations: h.violations,
		Digest:     h.digest(),
		hub:        h.hub,
	}
}

// Check generates n commands from seed and runs them.
func Check(seed uint64, n int) *Result { return Run(seed, Generate(seed, n)) }

// digest fingerprints the final state: model ledger, observer counters,
// simulated time, and any violations. Two identical runs must produce the
// same digest — the determinism test's gate.
func (h *harness) digest() string {
	var b strings.Builder
	line := func(format string, args ...any) {
		fmt.Fprintf(&b, format, args...)
		b.WriteByte('\n')
	}
	for _, l := range h.model.digestLines() {
		line("%s", l)
	}
	line("rounds=%d decisions=%d grants=%d", h.obs.rounds, h.obs.decisions, h.obs.grants)
	line("policy=%s", h.mgr.PolicyName())
	line("t=%.6f", h.drv.Engine().Now())
	for _, v := range h.violations {
		line("%s", v.String())
	}
	// Inline FNV-1a, matching xrand's label-hash idiom.
	s := b.String()
	hash := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		hash = (hash ^ uint64(s[i])) * 0x100000001B3
	}
	return fmt.Sprintf("%016x", hash)
}

// WriteReport renders a violation report: the (shrunken) command sequence,
// each violation, and — when a violation anchors to an (app, job) pair —
// the decision-provenance explain chain behind the offending grants.
func (r *Result) WriteReport(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "modelcheck seed=%d: %d command(s), %d violation(s)\n", r.Seed, len(r.Commands), len(r.Violations))
	for i, c := range r.Commands {
		fmt.Fprintf(&b, "  %2d: %s\n", i, c)
	}
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "violation: %s\n", v)
	}
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	for _, v := range r.Violations {
		if v.App >= 0 && v.Job >= 0 && r.hub != nil {
			return r.hub.Flight.Explain(w, v.App, v.Job)
		}
	}
	return nil
}
