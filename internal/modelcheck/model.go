package modelcheck

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/trace"
)

// modelExec is the model's view of one executor: ownership and liveness
// reconstructed purely from trace events, independent of the cluster
// substrate's own bookkeeping.
type modelExec struct {
	node  int
	slots int
	owner int // app ID, -1 when free
	dead  bool
}

// taskKey identifies a task attempt slot in the model's ledger.
type taskKey struct{ app, job, stage, task int }

// Model is the checker's independent state machine. It implements
// trace.Tracer: the driver feeds it every state transition, and the model
// replays the transitions against its own ledger, reporting a violation
// whenever an event is impossible under the rules it believes hold. It
// never reads driver or cluster state while consuming events; the live
// state is only consulted in Compare, the explicit cross-check.
type Model struct {
	execs    []modelExec
	nodeDead map[int]bool
	flaky    map[int]bool // suspended DataNodes
	stale    bool         // a stale-metadata window is open

	appJobs   map[int]map[int]bool // app → submitted, unfinished jobs
	finished  map[int]int          // app → finished job count
	launched  map[taskKey]int      // live attempts per task
	taskDone  map[taskKey]bool
	doneCount int

	report func(rule, detail string, app, job int)
}

// newModel builds the model for a static cluster topology.
func newModel(cl *cluster.Cluster, report func(rule, detail string, app, job int)) *Model {
	m := &Model{
		nodeDead: map[int]bool{},
		flaky:    map[int]bool{},
		appJobs:  map[int]map[int]bool{},
		finished: map[int]int{},
		launched: map[taskKey]int{},
		taskDone: map[taskKey]bool{},
		report:   report,
	}
	for _, e := range cl.Executors() {
		m.execs = append(m.execs, modelExec{node: e.Node.ID, slots: e.Slots(), owner: -1})
	}
	return m
}

func (m *Model) fail(rule, format string, args ...any) {
	m.report(rule, fmt.Sprintf(format, args...), -1, -1)
}

// Emit implements trace.Tracer: advance the model by one observed event.
func (m *Model) Emit(ev trace.Event) {
	switch ev.Kind {
	case trace.ExecAlloc:
		e := &m.execs[ev.Exec]
		if e.dead {
			m.fail("double-grant", "exec %d allocated to app %d while model believes it dead", ev.Exec, ev.App)
		} else if e.owner >= 0 && e.owner != ev.App {
			m.fail("double-grant", "exec %d allocated to app %d while model believes app %d owns it", ev.Exec, ev.App, e.owner)
		}
		e.owner = ev.App
	case trace.ExecRelease:
		e := &m.execs[ev.Exec]
		if e.owner < 0 {
			m.fail("slot-ledger", "exec %d released while model believes it free", ev.Exec)
		}
		e.owner = -1
	case trace.ExecFail:
		e := &m.execs[ev.Exec]
		if e.dead {
			m.fail("slot-ledger", "exec %d failed twice without recovery", ev.Exec)
		}
		e.dead, e.owner = true, -1
	case trace.ExecRecover:
		e := &m.execs[ev.Exec]
		if !e.dead {
			m.fail("slot-ledger", "exec %d recovered while model believes it alive", ev.Exec)
		}
		e.dead = false
	case trace.NodeFail:
		if m.nodeDead[ev.Node] {
			m.fail("replica-map", "node %d failed twice without recovery", ev.Node)
		}
		m.nodeDead[ev.Node] = true
		for i := range m.execs {
			if m.execs[i].node == ev.Node {
				m.execs[i].dead, m.execs[i].owner = true, -1
			}
		}
	case trace.NodeRecover:
		if !m.nodeDead[ev.Node] {
			m.fail("replica-map", "node %d recovered while model believes it alive", ev.Node)
		}
		delete(m.nodeDead, ev.Node)
		for i := range m.execs {
			if m.execs[i].node == ev.Node {
				m.execs[i].dead = false
			}
		}
	case trace.DataNodeFlake:
		m.flaky[ev.Node] = true
	case trace.DataNodeResume:
		delete(m.flaky, ev.Node)
	case trace.MetaStale:
		m.stale = true
	case trace.MetaFresh:
		m.stale = false
	case trace.JobSubmit:
		if m.appJobs[ev.App] == nil {
			m.appJobs[ev.App] = map[int]bool{}
		}
		if m.appJobs[ev.App][ev.Job] {
			m.fail("demand-ledger", "app %d job %d submitted twice", ev.App, ev.Job)
		}
		m.appJobs[ev.App][ev.Job] = true
	case trace.JobFinish:
		if !m.appJobs[ev.App][ev.Job] {
			m.fail("demand-ledger", "app %d job %d finished but model never saw it submitted", ev.App, ev.Job)
		}
		delete(m.appJobs[ev.App], ev.Job)
		m.finished[ev.App]++
	case trace.TaskLaunch:
		k := taskKey{ev.App, ev.Job, ev.Stage, ev.Task}
		if m.taskDone[k] {
			m.fail("demand-ledger", "task %v launched after it finished", k)
		}
		e := &m.execs[ev.Exec]
		if e.dead {
			m.fail("slot-ledger", "task %v launched on dead exec %d", k, ev.Exec)
		}
		if e.owner != ev.App {
			m.fail("slot-ledger", "task %v of app %d launched on exec %d owned by %d", k, ev.App, ev.Exec, e.owner)
		}
		m.launched[k]++
	case trace.TaskFinish:
		k := taskKey{ev.App, ev.Job, ev.Stage, ev.Task}
		if m.launched[k] == 0 {
			m.fail("demand-ledger", "task %v finished with no live attempt in the model", k)
		} else {
			m.launched[k]--
		}
		if m.taskDone[k] {
			m.fail("demand-ledger", "task %v finished twice", k)
		}
		m.taskDone[k] = true
		m.doneCount++
	case trace.TaskRetry:
		// Emitted at fault time: the attempt's slot was reclaimed. Attempts
		// may already be gone from the ledger when the executor died first
		// (ExecFail/NodeFail clear ownership, not attempts), so only drain.
		k := taskKey{ev.App, ev.Job, ev.Stage, ev.Task}
		if m.launched[k] > 0 {
			m.launched[k]--
		}
	}
}

// Compare cross-checks the model's executor ledger against the live
// cluster: ownership and liveness must agree executor by executor, running
// tasks must fit in slots, and the free/owned partition must conserve the
// total (slot conservation).
func (m *Model) Compare(cl *cluster.Cluster) {
	free, owned := 0, 0
	for i, me := range m.execs {
		e := cl.Executor(i)
		if me.dead == e.Alive() {
			m.fail("slot-ledger", "exec %d: model dead=%v, cluster alive=%v", i, me.dead, e.Alive())
		}
		liveOwner := -1
		if e.Owner() != cluster.NoApp {
			liveOwner = int(e.Owner())
		}
		if me.owner != liveOwner {
			m.fail("slot-ledger", "exec %d: model owner=%d, cluster owner=%d", i, me.owner, liveOwner)
		}
		if e.Running() > e.Slots() || e.Running() < 0 {
			m.fail("slot-conservation", "exec %d: running=%d outside [0,%d]", i, e.Running(), e.Slots())
		}
		if me.dead {
			continue
		}
		if me.owner < 0 {
			free++
		} else {
			owned++
		}
	}
	alive := 0
	for _, e := range cl.Executors() {
		if e.Alive() {
			alive++
		}
	}
	if free+owned != alive {
		m.fail("slot-conservation", "model partitions %d free + %d owned != %d alive executors", free, owned, alive)
	}
}

// CheckReplicaMap verifies that, while no stale-metadata window is open,
// the NameNode's advertised locations for every tracked block exclude the
// nodes the model knows are dead or flaky.
func (m *Model) CheckReplicaMap(nn *hdfs.NameNode, files []*hdfs.File) {
	if m.stale {
		return // stale answers are allowed to be wrong; that is the fault
	}
	for _, f := range files {
		for _, b := range f.Blocks {
			for _, n := range nn.Locations(b.ID) {
				if m.nodeDead[n] {
					m.fail("replica-map", "block %d advertised on node %d the model believes failed", b.ID, n)
				}
				if m.flaky[n] {
					m.fail("replica-map", "block %d advertised on flaky DataNode %d", b.ID, n)
				}
			}
		}
	}
}

// UnfinishedJobs returns the model's total count of submitted, unfinished
// jobs (used by the digest).
func (m *Model) UnfinishedJobs() int {
	n := 0
	for _, jobs := range m.appJobs {
		n += len(jobs)
	}
	return n
}

// digestLines renders the model's final state as stable sorted lines for
// the determinism digest.
func (m *Model) digestLines() []string {
	var lines []string
	for i, e := range m.execs {
		lines = append(lines, fmt.Sprintf("exec %d owner=%d dead=%v", i, e.owner, e.dead))
	}
	var nodes []int
	for n := range m.nodeDead {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	for _, n := range nodes {
		lines = append(lines, fmt.Sprintf("node-dead %d", n))
	}
	var apps []int
	for a := range m.finished {
		apps = append(apps, a)
	}
	sort.Ints(apps)
	for _, a := range apps {
		lines = append(lines, fmt.Sprintf("app %d finished=%d", a, m.finished[a]))
	}
	lines = append(lines, fmt.Sprintf("tasks-done %d unfinished-jobs %d stale=%v", m.doneCount, m.UnfinishedJobs(), m.stale))
	return lines
}
