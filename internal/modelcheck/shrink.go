package modelcheck

// ShrinkCommands minimizes a failing command sequence with delta debugging
// (ddmin): repeatedly try removing chunks of the sequence, halving the
// chunk size when no removal preserves the failure, finishing with a
// single-command removal pass so the result is 1-minimal — removing any
// one remaining command makes the violation disappear.
//
// Shrinking is sound because commands are state-independent data: every
// subsequence of a valid sequence is itself a valid sequence (inapplicable
// targets degrade to no-ops), so `fails` is well-defined on any subset.
func ShrinkCommands(cmds []Command, fails func([]Command) bool) []Command {
	if len(cmds) == 0 || fails(nil) {
		// An empty-sequence failure means the harness itself is broken;
		// return the input untouched rather than "shrinking" to nothing.
		return cmds
	}
	cur := append([]Command(nil), cmds...)
	for chunk := len(cur) / 2; chunk >= 1; {
		removed := false
		for start := 0; start+chunk <= len(cur); {
			trial := make([]Command, 0, len(cur)-chunk)
			trial = append(trial, cur[:start]...)
			trial = append(trial, cur[start+chunk:]...)
			if fails(trial) {
				cur = trial
				removed = true
				// Do not advance: the next chunk slid into this window.
			} else {
				start += chunk
			}
		}
		if !removed {
			chunk /= 2
		} else if chunk > len(cur) {
			chunk = len(cur)
		}
	}
	return cur
}

// ShrinkResult shrinks a failing Result to a minimal reproducer, re-running
// the harness under the same seed for every candidate subsequence, and
// returns the Result of the minimal sequence (so its report and explain
// chain describe exactly the commands in the reproducer).
func ShrinkResult(r *Result) *Result {
	if !r.Failed() {
		return r
	}
	minimal := ShrinkCommands(r.Commands, func(cmds []Command) bool {
		return Run(r.Seed, cmds).Failed()
	})
	return Run(r.Seed, minimal)
}
