package modelcheck

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"
)

// seedSet returns the fixed seed set for the randomized sweeps: 500 seeds
// in full mode, a bounded prefix under -short.
func seedSet(t *testing.T) []uint64 {
	n := 500
	if testing.Short() {
		n = 60
	}
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	return seeds
}

// TestGenerateIsPure pins that sequence generation depends only on
// (seed, n): equal inputs give equal sequences, prefixes agree, and
// different seeds diverge.
func TestGenerateIsPure(t *testing.T) {
	a := Generate(42, 30)
	b := Generate(42, 30)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Generate(42, 30) is not deterministic")
	}
	if !reflect.DeepEqual(a[:10], Generate(42, 10)) {
		t.Fatal("Generate prefix does not agree with shorter generation")
	}
	if reflect.DeepEqual(a, Generate(43, 30)) {
		t.Fatal("different seeds generated identical sequences")
	}
}

// TestRandomSequencesHoldInvariants is the tier-1 bounded-budget entry: on
// an unmutated build, every seed in the fixed set must run violation-free,
// and the run must be byte-identical across three repeats (same digest,
// same violation list, same applied count).
func TestRandomSequencesHoldInvariants(t *testing.T) {
	if mutationEnabled {
		t.Skip("custodymutate build: sequences are expected to violate")
	}
	const cmdsPerSeed = 25
	for _, seed := range seedSet(t) {
		first := Check(seed, cmdsPerSeed)
		if first.Failed() {
			min := ShrinkResult(first)
			var b bytes.Buffer
			if err := min.WriteReport(&b); err != nil {
				t.Fatalf("seed %d: WriteReport: %v", seed, err)
			}
			t.Fatalf("seed %d violated invariants; minimal reproducer:\n%s", seed, b.String())
		}
		for rep := 0; rep < 2; rep++ {
			again := Check(seed, cmdsPerSeed)
			if again.Digest != first.Digest {
				t.Fatalf("seed %d: digest %s on repeat %d, want %s — run is not deterministic",
					seed, again.Digest, rep+2, first.Digest)
			}
			if again.Applied != first.Applied || len(again.Violations) != len(first.Violations) {
				t.Fatalf("seed %d: repeat diverged (applied %d vs %d)", seed, again.Applied, first.Applied)
			}
		}
	}
}

// TestReproRoundTrip pins the .repro serialization: encode → decode → equal,
// and replaying the decoded reproducer gives the original digest.
func TestReproRoundTrip(t *testing.T) {
	r := Repro{Seed: 7, Commands: Generate(7, 12)}
	path := filepath.Join(t.TempDir(), "case.repro")
	if err := WriteRepro(path, r); err != nil {
		t.Fatalf("WriteRepro: %v", err)
	}
	got, err := ReadRepro(path)
	if err != nil {
		t.Fatalf("ReadRepro: %v", err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("round trip changed the reproducer:\n got %+v\nwant %+v", got, r)
	}
	if a, b := Run(r.Seed, r.Commands).Digest, Run(got.Seed, got.Commands).Digest; a != b {
		t.Fatalf("replayed reproducer digest %s != original %s", b, a)
	}
}

// TestShrinkCommandsMinimizes drives ddmin against a synthetic predicate:
// the failure needs commands with markers 3 AND 11 present, in order. The
// shrinker must find exactly that 2-command core from a 40-command haystack.
func TestShrinkCommandsMinimizes(t *testing.T) {
	cmds := make([]Command, 40)
	for i := range cmds {
		cmds[i] = Command{Op: OpAdvanceClock, A: i}
	}
	fails := func(sub []Command) bool {
		seen3 := false
		for _, c := range sub {
			if c.A == 3 {
				seen3 = true
			}
			if c.A == 11 && seen3 {
				return true
			}
		}
		return false
	}
	min := ShrinkCommands(cmds, fails)
	if len(min) != 2 || min[0].A != 3 || min[1].A != 11 {
		t.Fatalf("ShrinkCommands = %v, want the [3, 11] core", min)
	}
	// 1-minimality: removing either remaining command breaks the failure.
	for i := range min {
		sub := append(append([]Command(nil), min[:i]...), min[i+1:]...)
		if fails(sub) {
			t.Fatalf("result is not 1-minimal: still fails without %v", min[i])
		}
	}
}

// TestShrinkCommandsRejectsBrokenPredicate pins the harness-is-broken
// guard: a predicate that fails on the empty sequence must not shrink.
func TestShrinkCommandsRejectsBrokenPredicate(t *testing.T) {
	cmds := Generate(1, 10)
	min := ShrinkCommands(cmds, func([]Command) bool { return true })
	if !reflect.DeepEqual(min, cmds) {
		t.Fatalf("a predicate failing on nil must return the input unshrunk, got %v", min)
	}
}

// TestViolationReportsCarryProvenance checks that a run forced into a
// model/live disagreement produces a readable report (using a doctored
// observer report channel rather than a real allocator bug).
func TestViolationReportsCarryProvenance(t *testing.T) {
	r := Run(3, Generate(3, 15))
	// Healthy run on an unmutated build; forge a violation to exercise the
	// report path including the explain chain.
	if !mutationEnabled && r.Failed() {
		t.Fatalf("seed 3 unexpectedly failed: %v", r.Violations)
	}
	r.Violations = append(r.Violations, Violation{Cmd: 1, Rule: "synthetic", Detail: "forged for report test", App: 0, Job: 1})
	var b bytes.Buffer
	if err := r.WriteReport(&b); err != nil {
		t.Fatalf("WriteReport: %v", err)
	}
	out := b.String()
	for _, want := range []string{"modelcheck seed=3", "synthetic", "forged for report test"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
