// Package modelcheck is the model-based checking layer: a stateful
// property-testing harness that drives randomized, xrand-seeded command
// sequences against the real core.Session + manager.Custody + driver stack
// while maintaining a small independent model (slot ledger, per-app demand,
// replica map), checking invariants after every command. The battery splits
// into a policy-generic core, checked for every allocation policy the
// set-policy op can select (DESIGN.md §16):
//
//   - slot conservation and ownership agreement between the model's
//     trace-fed executor ledger and the live cluster;
//   - no double-grant: an executor is never allocated while the model still
//     believes another application owns it, and within one round its slots
//     go to a single application;
//   - the plan contract (policy.Validate): granted executors come from the
//     idle snapshot, budgets and slot counts are respected, Local
//     assignments land on advertised replica nodes, and no application
//     starves while demand, budget, and idle executors coexist;
//   - the driver's cross-layer Audit (task conservation, replica bounds,
//     fabric hygiene) holds after every command;
//   - replica-map hygiene: while no stale-metadata window is open, the
//     NameNode never advertises a node the model knows is dead or flaky;
//
// and Custody-specific checks attached only while the custody policy is
// active:
//
//   - fairness-key monotonicity: within one allocation round, the keys of
//     Algorithm 1's locality picks are lexicographically non-decreasing
//     (the minimum of a set whose elements only grow is non-decreasing),
//     and the fill phase's frozen sort order likewise;
//   - Algorithm 2 ordering: within one pick, all grants of a job are issued
//     before the next job is served (job IDs never revisit);
//   - the SelfCheck differential: every round's plan is byte-identical to
//     the frozen core.AllocateReference oracle.
//
// On violation the harness shrinks the command sequence with delta
// debugging to a minimal deterministic reproducer, serializable as a .repro
// file and replayable via `custodysim -mc-replay`. Build-tag-gated
// mutations prove the checker has teeth: custodymutate and
// custodymutateshard seed bugs in internal/core's fairness and sharded
// build, custodymutatepolicy seeds a cost-sign bug in the Quincy policy
// that only the policy-generic invariants can catch.
//
// The QuickCheck stateful-testing lineage and Jepsen-style history checking
// are the reference points; see DESIGN.md §12.
package modelcheck

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/xrand"
)

// Op is one command kind of the checker's alphabet.
type Op string

// The command alphabet. Every op is total: when its target is not
// applicable in the current state (no inactive app left, no revocable
// executor, no active fault to restore) it degrades to a recorded no-op, so
// any subsequence of a generated sequence is itself a valid sequence —
// the property delta debugging relies on.
const (
	// OpSubmitApp activates the next pre-registered application. The driver
	// forbids registration after Start, so the harness registers MaxApps
	// applications up front and activation makes them eligible for jobs.
	OpSubmitApp Op = "submit-app"
	// OpSubmitJob submits a small job (shape selected by B) to active app
	// A mod active-count.
	OpSubmitJob Op = "submit-job"
	// OpGrantRound forces one full Custody allocation round followed by a
	// dispatch pass.
	OpGrantRound Op = "grant-round"
	// OpRevokeExecutor releases owned idle executor A mod executors back to
	// the pool (the §V "a specific executor can be released" message).
	OpRevokeExecutor Op = "revoke-executor"
	// OpInjectFault injects fault family A mod nFaults on target B.
	OpInjectFault Op = "inject-fault"
	// OpRestoreFault reverts fault family A mod nFaults.
	OpRestoreFault Op = "restore-fault"
	// OpAdvanceClock runs the event engine F simulated seconds forward.
	OpAdvanceClock Op = "advance-clock"
	// OpCompleteTask steps the engine until one more task finishes (or the
	// queue drains).
	OpCompleteTask Op = "complete-task"
	// OpSetShards reconfigures the allocator's build shard count to
	// 1 + A mod 8 for all subsequent rounds. Plans must stay byte-identical
	// to the reference oracle for every count (DESIGN.md §14), which the
	// harness's always-on manager self-check enforces.
	OpSetShards Op = "set-shards"
	// OpSetPolicy switches the manager's allocation policy to
	// policy.Names()[A mod len] for all subsequent rounds. Selecting custody
	// re-arms the Custody-specific invariants (SelfCheck differential,
	// fairness-key monotonicity, Algorithm 2 job ordering); any other policy
	// detaches them and leaves the policy-generic core (slot conservation,
	// double-grant, replica hygiene, audit, plan contract) in force
	// (DESIGN.md §16).
	OpSetPolicy Op = "set-policy"
)

// Command is one step of a checker sequence. A and B select targets, F is
// the operand of time-valued ops. Commands are plain data: their meaning is
// resolved against the harness state at apply time, so removing commands
// never invalidates later ones.
type Command struct {
	Op Op      `json:"op"`
	A  int     `json:"a,omitempty"`
	B  int     `json:"b,omitempty"`
	F  float64 `json:"f,omitempty"`
}

func (c Command) String() string {
	switch c.Op {
	case OpAdvanceClock:
		return fmt.Sprintf("%s %.2fs", c.Op, c.F)
	case OpSetShards:
		return fmt.Sprintf("%s %d", c.Op, shardTarget(c.A))
	case OpSetPolicy:
		return fmt.Sprintf("%s %s", c.Op, policyTarget(c.A))
	case OpSubmitApp, OpGrantRound, OpCompleteTask, OpSrvCrash, OpSrvDrain, OpSrvRegister:
		return string(c.Op)
	case OpSrvRound:
		mode := "normal"
		if c.A%2 == 1 {
			mode = "degraded"
		}
		return fmt.Sprintf("%s %.2fs %s", c.Op, c.F, mode)
	default:
		return fmt.Sprintf("%s a=%d b=%d", c.Op, c.A, c.B)
	}
}

// Generate produces n commands from the seed. Generation is a pure function
// of (seed, n): it consumes the generator in a fixed order regardless of
// harness state, so the same seed always yields the same sequence and a
// shrunken subsequence replays identically from the serialized commands.
func Generate(seed uint64, n int) []Command {
	rng := xrand.New(seed).Fork("modelcheck-commands")
	cmds := make([]Command, 0, n)
	for i := 0; i < n; i++ {
		cmds = append(cmds, genCommand(rng))
	}
	return cmds
}

// genCommand draws one weighted command. Weights favor the submit/grant/
// complete cycle so sequences exercise contended allocation rounds, with
// enough faults and clock advances to explore the chaos surface.
func genCommand(rng *xrand.Rand) Command {
	c := Command{A: rng.Intn(64), B: rng.Intn(64)}
	switch w := rng.Intn(22); {
	case w < 2:
		c.Op = OpSubmitApp
	case w < 6:
		c.Op = OpSubmitJob
	case w < 9:
		c.Op = OpGrantRound
	case w < 11:
		c.Op = OpRevokeExecutor
	case w < 13:
		c.Op = OpInjectFault
	case w < 15:
		c.Op = OpRestoreFault
	case w < 17:
		c.Op = OpAdvanceClock
		c.F = rng.Range(0.1, 4.0)
	case w < 18:
		c.Op = OpSetShards
	case w < 19:
		c.Op = OpSetPolicy
	default:
		c.Op = OpCompleteTask
	}
	return c
}

// Repro is a serialized minimal reproducer: the harness seed (which fixes
// HDFS placement and all driver randomness) plus the exact command list.
type Repro struct {
	Seed     uint64    `json:"seed"`
	Commands []Command `json:"commands"`
}

// Encode renders the reproducer as indented JSON.
func (r Repro) Encode() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// DecodeRepro parses a serialized reproducer.
func DecodeRepro(data []byte) (Repro, error) {
	var r Repro
	if err := json.Unmarshal(data, &r); err != nil {
		return Repro{}, fmt.Errorf("modelcheck: bad repro: %w", err)
	}
	return r, nil
}

// WriteRepro writes the reproducer to path.
func WriteRepro(path string, r Repro) error {
	data, err := r.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadRepro loads a reproducer from path.
func ReadRepro(path string) (Repro, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Repro{}, err
	}
	return DecodeRepro(data)
}
