//go:build !custodymutatepolicy

package modelcheck

// policyMutationEnabled mirrors internal/policy's custodymutatepolicy build
// tag, which inverts the Quincy policy's flow edge-cost sign. The smoke test
// requiring the policy-generic invariants to catch it only runs when the
// mutation is compiled in.
const policyMutationEnabled = false
