package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/hdfs"
	"repro/internal/xrand"
)

func mkFile(t *testing.T, size int64) *hdfs.File {
	t.Helper()
	nn := hdfs.NewNameNode(20, xrand.New(5))
	f, err := nn.Create("in", size)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestInputSizeRanges(t *testing.T) {
	rng := xrand.New(9)
	gb := int64(1) << 30
	for i := 0; i < 200; i++ {
		if s := InputSize(PageRank, rng); s != gb {
			t.Fatalf("PageRank size = %d, want 1GB", s)
		}
		if s := InputSize(WordCount, rng); s < 4*gb || s > 8*gb {
			t.Fatalf("WordCount size = %d, want 4–8GB", s)
		}
		if s := InputSize(Sort, rng); s < 1*gb || s > 8*gb {
			t.Fatalf("Sort size = %d, want 1–8GB", s)
		}
	}
}

func TestInputSizeUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kind did not panic")
		}
	}()
	InputSize("Bogus", xrand.New(1))
}

func TestWordCountShape(t *testing.T) {
	f := mkFile(t, 4<<30) // 32 blocks
	j := BuildJob(WordCount, 1, f)
	if j.Workload != "WordCount" || len(j.Stages) != 2 {
		t.Fatalf("job shape: %s %d stages", j.Workload, len(j.Stages))
	}
	in := j.InputStage()
	if len(in.Tasks) != 32 {
		t.Fatalf("map tasks = %d, want 32", len(in.Tasks))
	}
	red := j.Stages[1]
	if len(red.Tasks) != 4 { // 32/8
		t.Fatalf("reduce tasks = %d, want 4", len(red.Tasks))
	}
	// Network-light: shuffle volume is a small fraction of input.
	var shuffle int64
	for _, task := range in.Tasks {
		shuffle += task.OutputBytes
	}
	if frac := float64(shuffle) / float64(f.Size); frac > 0.1 {
		t.Fatalf("WordCount shuffle fraction %v, want <= 0.1", frac)
	}
}

func TestSortShape(t *testing.T) {
	f := mkFile(t, 2<<30) // 16 blocks
	j := BuildJob(Sort, 1, f)
	in := j.InputStage()
	if len(in.Tasks) != 16 {
		t.Fatalf("map tasks = %d", len(in.Tasks))
	}
	red := j.Stages[1]
	if len(red.Tasks) != 8 { // 16/2
		t.Fatalf("reduce tasks = %d, want 8", len(red.Tasks))
	}
	// Network-heavy: the whole input crosses the shuffle.
	var shuffle int64
	for _, task := range in.Tasks {
		shuffle += task.OutputBytes
	}
	if math.Abs(float64(shuffle)-float64(f.Size)) > float64(f.Size)*0.01 {
		t.Fatalf("Sort shuffle = %d, want ≈ input %d", shuffle, f.Size)
	}
}

func TestPageRankShape(t *testing.T) {
	f := mkFile(t, 1<<30) // 8 blocks
	j := BuildJob(PageRank, 1, f)
	// load + 5 iterations + collect
	if len(j.Stages) != 7 {
		t.Fatalf("stages = %d, want 7", len(j.Stages))
	}
	if len(j.InputStage().Tasks) != 8 {
		t.Fatalf("load tasks = %d", len(j.InputStage().Tasks))
	}
	for i := 1; i <= 5; i++ {
		s := j.Stages[i]
		if s.Input() || len(s.Tasks) != 8 {
			t.Fatalf("iter stage %d malformed", i)
		}
		if len(s.Parents) != 1 || s.Parents[0] != j.Stages[i-1] {
			t.Fatalf("iter stage %d parents wrong", i)
		}
	}
	// Iteration compute must dominate the input stage (the paper's reason
	// PageRank benefits least from input locality).
	inputWork := 0.0
	for _, task := range j.InputStage().Tasks {
		inputWork += task.ComputeSec
	}
	iterWork := 0.0
	for i := 1; i <= 5; i++ {
		for _, task := range j.Stages[i].Tasks {
			iterWork += task.ComputeSec
		}
	}
	if iterWork <= inputWork {
		t.Fatalf("iterations (%.1fs) do not dominate input (%.1fs)", iterWork, inputWork)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := DefaultSpec(Sort)
	a := Generate(spec, xrand.New(11))
	b := Generate(spec, xrand.New(11))
	if len(a.Subs) != len(b.Subs) || len(a.Files) != len(b.Files) {
		t.Fatal("schedules differ in size")
	}
	for i := range a.Subs {
		if a.Subs[i] != b.Subs[i] {
			t.Fatalf("submission %d differs", i)
		}
	}
	c := Generate(spec, xrand.New(12))
	same := true
	for i := range a.Subs {
		if a.Subs[i] != c.Subs[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestGenerateStructure(t *testing.T) {
	spec := DefaultSpec(WordCount)
	s := Generate(spec, xrand.New(3))
	if s.TotalJobs() != 120 {
		t.Fatalf("total jobs = %d, want 4×30", s.TotalJobs())
	}
	perApp := map[int]int{}
	lastAt := map[int]float64{}
	for _, sub := range s.Subs {
		perApp[sub.App]++
		if sub.At <= lastAt[sub.App] {
			t.Fatalf("app %d arrivals not increasing", sub.App)
		}
		lastAt[sub.App] = sub.At
		if sub.FileIdx < 0 || sub.FileIdx >= len(s.Files) {
			t.Fatalf("file index %d out of range", sub.FileIdx)
		}
	}
	for a := 0; a < 4; a++ {
		if perApp[a] != 30 {
			t.Fatalf("app %d has %d jobs", a, perApp[a])
		}
	}
	if s.Horizon() <= 0 {
		t.Fatal("empty horizon")
	}
}

func TestGenerateInterarrivalMean(t *testing.T) {
	spec := DefaultSpec(Sort)
	spec.JobsPerApp = 2000
	spec.Apps = 1
	s := Generate(spec, xrand.New(17))
	mean := s.Horizon() / float64(len(s.Subs))
	if math.Abs(mean-4.0) > 0.4 {
		t.Fatalf("mean inter-arrival = %v, want ~4s", mean)
	}
}

func TestZipfSkewConcentratesFiles(t *testing.T) {
	spec := DefaultSpec(Sort)
	spec.JobsPerApp = 500
	spec.DatasetFiles = 20
	spec.ZipfSkew = 1.2
	s := Generate(spec, xrand.New(19))
	counts := make([]int, 20)
	for _, sub := range s.Subs {
		counts[sub.FileIdx]++
	}
	if counts[0] <= counts[19] {
		t.Fatalf("no popularity skew: first=%d last=%d", counts[0], counts[19])
	}
}

// Property: any valid spec yields a well-formed schedule.
func TestQuickGenerate(t *testing.T) {
	f := func(seed uint64, appsRaw, jobsRaw, filesRaw uint8) bool {
		spec := Spec{
			Kind:             Sort,
			Apps:             int(appsRaw%6) + 1,
			JobsPerApp:       int(jobsRaw%20) + 1,
			MeanInterarrival: 4,
			DatasetFiles:     int(filesRaw % 10), // 0 → default
		}
		s := Generate(spec, xrand.New(seed))
		if s.TotalJobs() != spec.Apps*spec.JobsPerApp {
			return false
		}
		if len(s.Files) == 0 {
			return false
		}
		for _, sub := range s.Subs {
			if sub.At <= 0 || sub.App < 0 || sub.App >= spec.Apps {
				return false
			}
			if sub.FileIdx < 0 || sub.FileIdx >= len(s.Files) {
				return false
			}
		}
		for _, fl := range s.Files {
			if fl.Size <= 0 || fl.Name == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestKindsOrder(t *testing.T) {
	ks := Kinds()
	if len(ks) != 3 || ks[0] != WordCount || ks[1] != Sort || ks[2] != PageRank {
		t.Fatalf("Kinds = %v", ks)
	}
}
