// Package workload generates the paper's three evaluation workloads
// (§VI-A2) as job DAGs plus the shared submission schedule:
//
//   - PageRank: iterative and network-heavy; 1 GB input per job, several
//     all-to-all iterations over rank data.
//   - WordCount: network-light; 4–8 GB input, one map stage and a very
//     short reduce.
//   - Sort: compute- and network-heavy; 1–8 GB input, full-size shuffle.
//
// Arrivals are exponential with a 4-second mean "in accordance with the
// Facebook trace", and the same schedule is shared by every compared run
// "to minimize the influence of random factors".
package workload

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/hdfs"
	"repro/internal/xrand"
)

// Kind names a workload.
type Kind string

// The paper's three workloads.
const (
	PageRank  Kind = "PageRank"
	WordCount Kind = "WordCount"
	Sort      Kind = "Sort"
)

// Kinds lists the workloads in the paper's presentation order.
func Kinds() []Kind { return []Kind{WordCount, Sort, PageRank} }

// Calibrated task-model constants. Absolute values are chosen so that task
// and job durations land in a realistic range for the paper's hardware
// (128 MB block ≈ 0.32 s local read at 400 MB/s); only relative behaviour
// matters for the reproduction.
const (
	mb = 1 << 20

	// WordCount: CPU-heavy map, tiny intermediate data (§VI-A2: "the
	// intermediate results of WordCount are significantly reduced").
	wcMapSecPerMB    = 0.03
	wcMapOutputFrac  = 0.05
	wcReduceSecPerMB = 0.01
	wcReducePerMaps  = 8 // one reduce task per 8 map tasks

	// Sort: the full input crosses the network in the shuffle ("not only
	// call for extensive computation resources but also incur a large
	// amount of network transmissions").
	sortMapSecPerMB    = 0.02
	sortMapOutputFrac  = 1.0
	sortReduceSecPerMB = 0.012
	sortReducePerMaps  = 2

	// PageRank: 5 rank-exchange iterations over ~50% of the input per
	// iteration ("usually involve a large amount of network transfers");
	// iteration work dominates the input stage, so expediting input tasks
	// helps PageRank least (§VI-B).
	prIterations     = 5
	prMapSecPerMB    = 0.02
	prIterFrac       = 0.50
	prIterSecPerMB   = 0.03
	prFinalSecPerMB  = 0.005
	prFinalFrac      = 0.02
	prTasksPerBlocks = 1 // iteration width = number of input blocks
)

// InputSize returns a deterministic input size for the j-th job of a
// workload, inside the paper's per-workload ranges.
func InputSize(kind Kind, rng *xrand.Rand) int64 {
	gb := int64(1) << 30
	switch kind {
	case PageRank:
		return 1 * gb // "The size of the input data file for a PageRank job is 1GB"
	case WordCount:
		return int64(rng.IntRange(4, 8)) * gb // 4–8 GB
	case Sort:
		return int64(rng.IntRange(1, 8)) * gb // 1–8 GB
	default:
		panic(fmt.Sprintf("workload: unknown kind %q", kind))
	}
}

// BuildJob constructs the DAG for one job of the given kind reading file f.
func BuildJob(kind Kind, id int, f *hdfs.File) *app.Job {
	switch kind {
	case WordCount:
		return buildWordCount(id, f)
	case Sort:
		return buildSort(id, f)
	case PageRank:
		return buildPageRank(id, f)
	default:
		panic(fmt.Sprintf("workload: unknown kind %q", kind))
	}
}

func blockMB(f *hdfs.File) float64 {
	if len(f.Blocks) == 0 {
		return 0
	}
	return float64(f.Blocks[0].Size) / mb
}

func buildWordCount(id int, f *hdfs.File) *app.Job {
	b := app.NewJob(id, string(WordCount), f.Name)
	perBlockMB := blockMB(f)
	in := b.AddInputStage("map", f.Blocks, app.TaskSpec{
		ComputeSec:  wcMapSecPerMB * perBlockMB,
		OutputBytes: int64(wcMapOutputFrac * float64(f.Blocks[0].Size)),
	})
	reduces := len(f.Blocks) / wcReducePerMaps
	if reduces < 1 {
		reduces = 1
	}
	shuffleTotal := wcMapOutputFrac * float64(f.Size)
	perReduceMB := shuffleTotal / float64(reduces) / mb
	b.AddShuffleStage("reduce", []*app.Stage{in}, reduces, int64(shuffleTotal/float64(reduces)), app.TaskSpec{
		ComputeSec: wcReduceSecPerMB * perReduceMB,
	})
	return b.Build()
}

func buildSort(id int, f *hdfs.File) *app.Job {
	b := app.NewJob(id, string(Sort), f.Name)
	perBlockMB := blockMB(f)
	in := b.AddInputStage("map", f.Blocks, app.TaskSpec{
		ComputeSec:  sortMapSecPerMB * perBlockMB,
		OutputBytes: int64(sortMapOutputFrac * float64(f.Blocks[0].Size)),
	})
	reduces := len(f.Blocks) / sortReducePerMaps
	if reduces < 1 {
		reduces = 1
	}
	shuffleTotal := sortMapOutputFrac * float64(f.Size)
	perReduceMB := shuffleTotal / float64(reduces) / mb
	b.AddShuffleStage("reduce", []*app.Stage{in}, reduces, int64(shuffleTotal/float64(reduces)), app.TaskSpec{
		ComputeSec: sortReduceSecPerMB * perReduceMB,
	})
	return b.Build()
}

func buildPageRank(id int, f *hdfs.File) *app.Job {
	b := app.NewJob(id, string(PageRank), f.Name)
	perBlockMB := blockMB(f)
	width := len(f.Blocks) * prTasksPerBlocks
	if width < 1 {
		width = 1
	}
	iterTotal := prIterFrac * float64(f.Size)
	perIterTaskBytes := int64(iterTotal / float64(width))
	perIterTaskMB := float64(perIterTaskBytes) / mb

	prev := b.AddInputStage("load", f.Blocks, app.TaskSpec{
		ComputeSec:  prMapSecPerMB * perBlockMB,
		OutputBytes: perIterTaskBytes, // ranks handed to iteration 1
	})
	for it := 1; it <= prIterations; it++ {
		prev = b.AddShuffleStage(fmt.Sprintf("iter%d", it), []*app.Stage{prev}, width, perIterTaskBytes, app.TaskSpec{
			ComputeSec:  prIterSecPerMB * perIterTaskMB,
			OutputBytes: perIterTaskBytes,
		})
	}
	finalBytes := int64(prFinalFrac * float64(f.Size))
	b.AddShuffleStage("collect", []*app.Stage{prev}, 1, finalBytes, app.TaskSpec{
		ComputeSec: prFinalSecPerMB * float64(finalBytes) / mb,
	})
	return b.Build()
}

// Spec configures a generated experiment schedule.
type Spec struct {
	Kind             Kind
	Apps             int     // paper: 4
	JobsPerApp       int     // paper: 30
	MeanInterarrival float64 // paper: 4 s
	// DatasetFiles is the size of the shared input-file pool; jobs pick
	// files with Zipf-skewed popularity, producing the hot blocks §IV-A
	// discusses. Zero defaults to Apps*JobsPerApp/6.
	DatasetFiles int
	// ZipfSkew is the popularity exponent (0 = uniform).
	ZipfSkew float64
}

// DefaultSpec mirrors §VI-A2.
func DefaultSpec(kind Kind) Spec {
	return Spec{
		Kind:             kind,
		Apps:             4,
		JobsPerApp:       30,
		MeanInterarrival: 4.0,
		ZipfSkew:         0.8,
	}
}

// FileSpec describes one input file of the dataset pool.
type FileSpec struct {
	Name string
	Size int64
}

// Submission schedules one job: application appIdx submits a job reading
// pool file FileIdx at time At.
type Submission struct {
	App     int
	At      float64
	FileIdx int
}

// Schedule is a complete, deterministic experiment plan: the dataset to
// pre-load into HDFS and the job arrivals. The same Schedule is replayed
// under every manager being compared.
type Schedule struct {
	Spec  Spec
	Files []FileSpec
	Subs  []Submission
}

// Generate builds a schedule from a spec and seed stream.
func Generate(spec Spec, rng *xrand.Rand) Schedule {
	if spec.Apps <= 0 || spec.JobsPerApp <= 0 {
		panic("workload: Spec needs Apps and JobsPerApp > 0")
	}
	if spec.MeanInterarrival <= 0 {
		spec.MeanInterarrival = 4.0
	}
	files := spec.DatasetFiles
	if files <= 0 {
		files = spec.Apps * spec.JobsPerApp / 6
		if files < 1 {
			files = 1
		}
	}
	sizeRng := rng.Fork("sizes:" + string(spec.Kind))
	sched := Schedule{Spec: spec}
	for i := 0; i < files; i++ {
		sched.Files = append(sched.Files, FileSpec{
			Name: fmt.Sprintf("%s/input-%03d", spec.Kind, i),
			Size: InputSize(spec.Kind, sizeRng),
		})
	}
	zipf := xrand.NewZipf(rng.Fork("popularity"), files, spec.ZipfSkew)
	for a := 0; a < spec.Apps; a++ {
		arr := rng.Fork(fmt.Sprintf("arrivals:%d", a))
		t := 0.0
		for j := 0; j < spec.JobsPerApp; j++ {
			t += arr.Exp(spec.MeanInterarrival)
			sched.Subs = append(sched.Subs, Submission{App: a, At: t, FileIdx: zipf.Next()})
		}
	}
	return sched
}

// TotalJobs returns the number of scheduled submissions.
func (s Schedule) TotalJobs() int { return len(s.Subs) }

// Horizon returns the last submission time.
func (s Schedule) Horizon() float64 {
	h := 0.0
	for _, sub := range s.Subs {
		if sub.At > h {
			h = sub.At
		}
	}
	return h
}
