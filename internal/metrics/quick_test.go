package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

// clamp maps arbitrary generated floats into a finite, well-behaved series;
// testing/quick generates values across the full float64 range, and the
// statistical properties below are only specified for finite inputs.
func clamp(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		out = append(out, math.Mod(x, 1e9))
	}
	return out
}

// TestQuickCDFMonotone: for any series and any ascending probability grid,
// the CDF quantiles are non-decreasing (a distribution function is
// monotone) and every value lies inside [min, max] of the series.
func TestQuickCDFMonotone(t *testing.T) {
	prop := func(raw []float64, nPoints uint8) bool {
		xs := clamp(raw)
		if len(xs) == 0 {
			return CDF(xs, []float64{0, 0.5, 1}) == nil
		}
		n := int(nPoints%32) + 2
		points := make([]float64, n)
		for i := range points {
			points[i] = float64(i) / float64(n-1)
		}
		got := CDF(xs, points)
		if len(got) != len(points) {
			return false
		}
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		for i, q := range got {
			if q < lo || q > hi {
				return false
			}
			if i > 0 && q < got[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPercentileBrackets: any quantile of a sorted series is bracketed
// by the series' min and max, and the extreme quantiles hit them exactly.
func TestQuickPercentileBrackets(t *testing.T) {
	prop := func(raw []float64, pRaw uint16) bool {
		xs := clamp(raw)
		if len(xs) == 0 {
			return math.IsNaN(Percentile(xs, 0.5))
		}
		sort.Float64s(xs)
		p := float64(pRaw) / math.MaxUint16
		q := Percentile(xs, p)
		if q < xs[0] || q > xs[len(xs)-1] {
			return false
		}
		return Percentile(xs, 0) == xs[0] && Percentile(xs, 1) == xs[len(xs)-1]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSummarizeConsistent: Summarize's fields respect their own
// definitions on any finite series — min ≤ median ≤ p95 ≤ max, the mean is
// bracketed by min and max, and Std is non-negative.
func TestQuickSummarizeConsistent(t *testing.T) {
	prop := func(raw []float64) bool {
		xs := clamp(raw)
		s := Summarize(xs)
		if len(xs) == 0 {
			return s == Summary{}
		}
		if s.N != len(xs) || s.Std < 0 {
			return false
		}
		eps := 1e-9 * (math.Abs(s.Min) + math.Abs(s.Max) + 1)
		if s.Mean < s.Min-eps || s.Mean > s.Max+eps {
			return false
		}
		return s.Min <= s.Median && s.Median <= s.P95 && s.P95 <= s.Max
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
