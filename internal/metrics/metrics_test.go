package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary = %+v", s)
	}
	wantStd := math.Sqrt(2) // population std of 1..5
	if math.Abs(s.Std-wantStd) > 1e-12 {
		t.Fatalf("std = %v, want %v", s.Std, wantStd)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if got := Percentile(xs, 0); got != 10 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(xs, 1); got != 40 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(xs, 0.5); got != 25 {
		t.Fatalf("p50 = %v, want 25 (interpolated)", got)
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Fatal("percentile of empty not NaN")
	}
}

func TestJobRecordDerived(t *testing.T) {
	j := JobRecord{Submit: 5, Finish: 25, LocalInput: 3, TotalInput: 4}
	if j.CompletionSec() != 20 {
		t.Fatalf("completion = %v", j.CompletionSec())
	}
	if j.PctLocal() != 0.75 {
		t.Fatalf("pct = %v", j.PctLocal())
	}
	if j.Perfect() {
		t.Fatal("3/4 local reported perfect")
	}
	j.LocalInput = 4
	if !j.Perfect() {
		t.Fatal("4/4 local not perfect")
	}
	empty := JobRecord{}
	if empty.PctLocal() != 1 {
		t.Fatal("job with no input tasks should count as fully local")
	}
}

func TestCollectorAggregates(t *testing.T) {
	c := NewCollector()
	c.AddJob(JobRecord{App: 0, Workload: "Sort", Submit: 0, Finish: 10, InputStageSec: 4, LocalInput: 2, TotalInput: 2})
	c.AddJob(JobRecord{App: 1, Workload: "Sort", Submit: 0, Finish: 30, InputStageSec: 8, LocalInput: 1, TotalInput: 2})
	c.AddTask(TaskRecord{App: 0, Input: true, Local: true, SchedulerDelay: 1})
	c.AddTask(TaskRecord{App: 0, Input: true, Local: false, SchedulerDelay: 3})
	c.AddTask(TaskRecord{App: 1, Input: false, SchedulerDelay: 2})

	if got := Summarize(c.JobCompletionTimes()).Mean; got != 20 {
		t.Fatalf("mean JCT = %v", got)
	}
	if got := Summarize(c.InputStageTimes()).Mean; got != 6 {
		t.Fatalf("mean input stage = %v", got)
	}
	if got := Summarize(c.LocalityPerJob()).Mean; got != 0.75 {
		t.Fatalf("mean locality = %v", got)
	}
	if got := c.PctLocalJobs(); got != 0.5 {
		t.Fatalf("pct local jobs = %v", got)
	}
	if got := c.PctLocalTasks(); got != 0.5 {
		t.Fatalf("pct local tasks = %v (only input tasks count)", got)
	}
	if got := Summarize(c.SchedulerDelays()).Mean; got != 2 {
		t.Fatalf("mean sched delay = %v", got)
	}
}

func TestPerAppSplit(t *testing.T) {
	c := NewCollector()
	c.AddJob(JobRecord{App: 0, LocalInput: 1, TotalInput: 1})
	c.AddJob(JobRecord{App: 1, LocalInput: 0, TotalInput: 1})
	per := c.PerApp()
	if len(per) != 2 {
		t.Fatalf("apps = %d", len(per))
	}
	if per[0].PctLocalJobs() != 1 || per[1].PctLocalJobs() != 0 {
		t.Fatalf("per-app locality wrong: %v %v", per[0].PctLocalJobs(), per[1].PctLocalJobs())
	}
	if c.MinAppLocality() != 0 {
		t.Fatalf("min app locality = %v", c.MinAppLocality())
	}
}

func TestPerWorkloadSplit(t *testing.T) {
	c := NewCollector()
	c.AddJob(JobRecord{Workload: "Sort", Submit: 0, Finish: 10})
	c.AddJob(JobRecord{Workload: "WordCount", Submit: 0, Finish: 20})
	per := c.PerWorkload()
	if Summarize(per["Sort"].JobCompletionTimes()).Mean != 10 {
		t.Fatal("per-workload split broken")
	}
}

func TestJainFairness(t *testing.T) {
	c := NewCollector()
	c.AddJob(JobRecord{App: 0, LocalInput: 1, TotalInput: 1})
	c.AddJob(JobRecord{App: 1, LocalInput: 1, TotalInput: 1})
	if f := c.JainFairness(); math.Abs(f-1) > 1e-12 {
		t.Fatalf("even locality Jain = %v, want 1", f)
	}
	c2 := NewCollector()
	c2.AddJob(JobRecord{App: 0, LocalInput: 1, TotalInput: 1})
	c2.AddJob(JobRecord{App: 1, LocalInput: 0, TotalInput: 1})
	if f := c2.JainFairness(); math.Abs(f-0.5) > 1e-12 {
		t.Fatalf("skewed locality Jain = %v, want 0.5", f)
	}
}

// Property: Summarize is order-invariant and bounds hold.
func TestQuickSummarize(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r) / 7.0
		}
		s1 := Summarize(xs)
		shuffled := append([]float64(nil), xs...)
		sort.Sort(sort.Reverse(sort.Float64Slice(shuffled)))
		s2 := Summarize(shuffled)
		if math.Abs(s1.Mean-s2.Mean) > 1e-9 || s1.Min != s2.Min || s1.Max != s2.Max {
			return false
		}
		return s1.Min <= s1.Median && s1.Median <= s1.Max &&
			s1.Min <= s1.Mean && s1.Mean <= s1.Max && s1.Std >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Percentile is monotone in p.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []uint8, aRaw, bRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		sort.Float64s(xs)
		a := float64(aRaw) / 255
		b := float64(bRaw) / 255
		if a > b {
			a, b = b, a
		}
		return Percentile(xs, a) <= Percentile(xs, b)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	counts, lo, width := Histogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if lo != 0 || math.Abs(width-1.8) > 1e-12 {
		t.Fatalf("lo=%v width=%v", lo, width)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 10 {
		t.Fatalf("histogram lost values: %v", counts)
	}
	// Degenerate inputs.
	if c, _, _ := Histogram(nil, 5); c != nil {
		t.Fatal("histogram of empty input")
	}
	counts, _, width = Histogram([]float64{3, 3, 3}, 4)
	if counts[0] != 3 || width != 0 {
		t.Fatalf("constant histogram: %v width %v", counts, width)
	}
}

func TestCDF(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	q := CDF(xs, []float64{0, 0.5, 1})
	if q[0] != 1 || q[2] != 4 {
		t.Fatalf("CDF endpoints: %v", q)
	}
	if q[1] != 2.5 {
		t.Fatalf("median = %v", q[1])
	}
}

// TestCDFEmptySeries pins the NaN guard: an empty series (a workload with
// zero input tasks) must yield nil, not a slice of Percentile's NaN
// sentinel, which would leak into Markdown/CSV report cells.
func TestCDFEmptySeries(t *testing.T) {
	if q := CDF(nil, []float64{0, 0.5, 1}); q != nil {
		t.Fatalf("CDF of empty series = %v, want nil", q)
	}
	if q := CDF([]float64{}, []float64{0.5}); q != nil {
		t.Fatalf("CDF of empty series = %v, want nil", q)
	}
	// Non-empty series are unaffected by the guard.
	if q := CDF([]float64{7}, []float64{0, 1}); len(q) != 2 || q[0] != 7 || q[1] != 7 {
		t.Fatalf("CDF of singleton = %v", q)
	}
}
