// Package metrics collects per-task and per-job records during a simulation
// and aggregates them into the statistics the paper reports: percentage of
// local input tasks (Fig. 7), job completion times (Fig. 8), input-stage
// completion times (Fig. 9), and scheduler delay (Fig. 10).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// TaskRecord captures one finished task.
type TaskRecord struct {
	App, Job, Stage, Index int
	Workload               string
	Input                  bool // true for input (map) tasks reading HDFS blocks
	Local                  bool // input was read from the local node
	SchedulerDelay         float64
	ReadSec                float64
	Duration               float64 // launch → finish
	Speculative            bool
}

// JobRecord captures one finished job.
type JobRecord struct {
	App, Job      int
	Workload      string
	Submit        float64
	Finish        float64
	InputStageSec float64
	LocalInput    int
	TotalInput    int
}

// CompletionSec returns the job's completion time.
func (j JobRecord) CompletionSec() float64 { return j.Finish - j.Submit }

// PctLocal returns the fraction of the job's input tasks that were local.
func (j JobRecord) PctLocal() float64 {
	if j.TotalInput == 0 {
		return 1
	}
	return float64(j.LocalInput) / float64(j.TotalInput)
}

// Perfect reports whether the job achieved perfect locality (a "local job").
func (j JobRecord) Perfect() bool { return j.LocalInput == j.TotalInput }

// Collector accumulates records.
type Collector struct {
	Tasks []TaskRecord
	Jobs  []JobRecord

	// OfferRejections counts data-locality offer rejections (Mesos-like
	// manager ablation, §II-A).
	OfferRejections int
	// Reallocation counts manager allocation rounds.
	Reallocations int
	// ExecutorMigrations counts executor ownership changes.
	ExecutorMigrations int

	// TaskRetries counts task attempts re-queued after a failure (chaos
	// resilience layer).
	TaskRetries int
	// AttemptFailures counts task attempts killed by faults (node/executor
	// crashes, unreachable replica sources).
	AttemptFailures int
	// BlacklistEvents counts nodes excluded from scheduling after repeated
	// failures (Spark excludeOnFailure-style).
	BlacklistEvents int
	// ReplicationStalls counts Decommission calls that could not plan
	// re-replication (error surfaced instead of dropped).
	ReplicationStalls int
	// ReplicasRestored counts re-replication transfers that completed and
	// re-registered a replica with the NameNode.
	ReplicasRestored int
	// RecoverySec records, per fault-interrupted task, the wall-clock
	// seconds from the fault until the task was re-launched.
	RecoverySec []float64

	// CacheHits/CacheMisses/CacheEvictions aggregate the block-cache tier
	// across nodes; CacheByNode carries the per-node breakdown. All zero
	// (and CacheByNode nil) when the cache is disabled — the default.
	CacheHits      int
	CacheMisses    int
	CacheEvictions int
	CacheByNode    map[int]*CacheCounts
}

// CacheCounts is one node's block-cache accounting.
type CacheCounts struct {
	Hits, Misses, Evictions int
}

// NodeCache returns the cache accounting for a node, allocating it on first
// use.
func (c *Collector) NodeCache(node int) *CacheCounts {
	if c.CacheByNode == nil {
		c.CacheByNode = make(map[int]*CacheCounts)
	}
	nc := c.CacheByNode[node]
	if nc == nil {
		nc = &CacheCounts{}
		c.CacheByNode[node] = nc
	}
	return nc
}

// CacheHitRatio returns hits / (hits + misses), or 0 with no lookups.
func (c *Collector) CacheHitRatio() float64 {
	total := c.CacheHits + c.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(c.CacheHits) / float64(total)
}

// MeanRecoverySec returns the mean fault-recovery time, or 0 with no faults.
func (c *Collector) MeanRecoverySec() float64 {
	if len(c.RecoverySec) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range c.RecoverySec {
		sum += x
	}
	return sum / float64(len(c.RecoverySec))
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// AddTask records a finished task.
func (c *Collector) AddTask(r TaskRecord) { c.Tasks = append(c.Tasks, r) }

// AddJob records a finished job.
func (c *Collector) AddJob(r JobRecord) { c.Jobs = append(c.Jobs, r) }

// Summary aggregates a scalar series.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Max, Median float64
	P95              float64
}

// Summarize computes summary statistics of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	s.Mean = sum / float64(s.N)
	varsum := 0.0
	for _, x := range sorted {
		d := x - s.Mean
		varsum += d * d
	}
	s.Std = math.Sqrt(varsum / float64(s.N))
	s.Min = sorted[0]
	s.Max = sorted[s.N-1]
	s.Median = Percentile(sorted, 0.5)
	s.P95 = Percentile(sorted, 0.95)
	return s
}

// Percentile returns the p-quantile (0..1) of an ascending-sorted slice
// using linear interpolation.
func Percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	pos := p * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f std=%.3f min=%.3f med=%.3f p95=%.3f max=%.3f",
		s.N, s.Mean, s.Std, s.Min, s.Median, s.P95, s.Max)
}

// LocalityPerJob returns each job's fraction of local input tasks — the
// quantity plotted in Fig. 7 (mean and std over jobs).
func (c *Collector) LocalityPerJob() []float64 {
	out := make([]float64, 0, len(c.Jobs))
	for _, j := range c.Jobs {
		if j.TotalInput == 0 {
			continue
		}
		out = append(out, j.PctLocal())
	}
	return out
}

// JobCompletionTimes returns every job's completion time (Fig. 8).
func (c *Collector) JobCompletionTimes() []float64 {
	out := make([]float64, 0, len(c.Jobs))
	for _, j := range c.Jobs {
		out = append(out, j.CompletionSec())
	}
	return out
}

// InputStageTimes returns every job's input (map) stage completion time
// (Fig. 9).
func (c *Collector) InputStageTimes() []float64 {
	out := make([]float64, 0, len(c.Jobs))
	for _, j := range c.Jobs {
		out = append(out, j.InputStageSec)
	}
	return out
}

// SchedulerDelays returns every task's scheduler delay (Fig. 10).
func (c *Collector) SchedulerDelays() []float64 {
	out := make([]float64, 0, len(c.Tasks))
	for _, t := range c.Tasks {
		out = append(out, t.SchedulerDelay)
	}
	return out
}

// PctLocalJobs returns the fraction of jobs with perfect input locality —
// Custody's inter-application fairness metric (Algorithm 1).
func (c *Collector) PctLocalJobs() float64 {
	if len(c.Jobs) == 0 {
		return 1
	}
	local := 0
	for _, j := range c.Jobs {
		if j.Perfect() {
			local++
		}
	}
	return float64(local) / float64(len(c.Jobs))
}

// PctLocalTasks returns the overall fraction of local input tasks.
func (c *Collector) PctLocalTasks() float64 {
	total, local := 0, 0
	for _, t := range c.Tasks {
		if !t.Input {
			continue
		}
		total++
		if t.Local {
			local++
		}
	}
	if total == 0 {
		return 1
	}
	return float64(local) / float64(total)
}

// PerApp returns per-application collectors, keyed by app id.
func (c *Collector) PerApp() map[int]*Collector {
	out := map[int]*Collector{}
	get := func(app int) *Collector {
		if out[app] == nil {
			out[app] = NewCollector()
		}
		return out[app]
	}
	for _, t := range c.Tasks {
		get(t.App).AddTask(t)
	}
	for _, j := range c.Jobs {
		get(j.App).AddJob(j)
	}
	return out
}

// PerWorkload splits records by workload name.
func (c *Collector) PerWorkload() map[string]*Collector {
	out := map[string]*Collector{}
	get := func(w string) *Collector {
		if out[w] == nil {
			out[w] = NewCollector()
		}
		return out[w]
	}
	for _, t := range c.Tasks {
		get(t.Workload).AddTask(t)
	}
	for _, j := range c.Jobs {
		get(j.Workload).AddJob(j)
	}
	return out
}

// MinAppLocality returns the minimum over applications of the fraction of
// local jobs — the objective of Eq. (6).
func (c *Collector) MinAppLocality() float64 {
	per := c.PerApp()
	minv := 1.0
	for _, cc := range per {
		if v := cc.PctLocalJobs(); v < minv {
			minv = v
		}
	}
	return minv
}

// JainFairness computes Jain's fairness index over per-application local-job
// percentages (1 = perfectly even).
func (c *Collector) JainFairness() float64 {
	per := c.PerApp()
	if len(per) == 0 {
		return 1
	}
	var sum, sumsq float64
	n := 0
	for _, cc := range per {
		v := cc.PctLocalJobs()
		sum += v
		sumsq += v * v
		n++
	}
	if sumsq == 0 {
		return 1
	}
	return sum * sum / (float64(n) * sumsq)
}

// Histogram bins xs into n equal-width buckets over [min, max] and returns
// the bucket counts plus the bucket width. Returns nil for empty input.
func Histogram(xs []float64, n int) (counts []int, lo, width float64) {
	if len(xs) == 0 || n <= 0 {
		return nil, 0, 0
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	counts = make([]int, n)
	if hi == lo {
		counts[0] = len(xs)
		return counts, lo, 0
	}
	width = (hi - lo) / float64(n)
	for _, x := range xs {
		b := int((x - lo) / width)
		if b >= n {
			b = n - 1
		}
		counts[b]++
	}
	return counts, lo, width
}

// CDF evaluates the empirical distribution of xs at the given probability
// points (each in [0,1]), returning the corresponding quantiles. Returns
// nil for an empty series: there is no distribution to evaluate, and
// propagating Percentile's NaN sentinel would leak NaN cells into the
// Markdown/CSV reports built on top of this (a workload with zero input
// tasks produces exactly such empty series).
func CDF(xs []float64, points []float64) []float64 {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]float64, len(points))
	for i, p := range points {
		out[i] = Percentile(sorted, p)
	}
	return out
}
