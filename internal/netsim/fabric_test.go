package netsim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/event"
	"repro/internal/xrand"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v, want %v (±%v)", msg, got, want, tol)
	}
}

func cfg(up, down, disk float64) Config {
	return Config{UplinkBps: up, DownlinkBps: down, DiskBps: disk}
}

func TestSingleLocalRead(t *testing.T) {
	eng := event.NewEngine()
	fb := NewFabric(eng, 2, cfg(100, 100, 50))
	var finish float64 = -1
	fb.LocalRead(0, 500, func() { finish = eng.Now() })
	eng.Run()
	approx(t, finish, 10, 1e-6, "local read of 500B at 50B/s") // 500/50
}

func TestSingleRemoteRead(t *testing.T) {
	eng := event.NewEngine()
	// uplink is the bottleneck: 20 B/s.
	fb := NewFabric(eng, 2, cfg(20, 100, 50))
	var finish float64 = -1
	fb.RemoteRead(0, 1, 100, func() { finish = eng.Now() })
	eng.Run()
	approx(t, finish, 5, 1e-6, "remote read bottlenecked by uplink")
}

func TestRemoteReadSameNodeIsLocal(t *testing.T) {
	eng := event.NewEngine()
	fb := NewFabric(eng, 2, cfg(1, 1, 50)) // network would take forever
	var finish float64 = -1
	fb.RemoteRead(1, 1, 100, func() { finish = eng.Now() })
	eng.Run()
	approx(t, finish, 2, 1e-6, "same-node remote read must use disk only")
}

func TestFairShareTwoFlows(t *testing.T) {
	eng := event.NewEngine()
	fb := NewFabric(eng, 2, cfg(100, 100, 40))
	var t1, t2 float64 = -1, -1
	fb.LocalRead(0, 200, func() { t1 = eng.Now() })
	fb.LocalRead(0, 200, func() { t2 = eng.Now() })
	eng.Run()
	// Both share the 40 B/s disk: each gets 20 B/s, finishing at 10s.
	approx(t, t1, 10, 1e-6, "flow 1 fair share")
	approx(t, t2, 10, 1e-6, "flow 2 fair share")
}

func TestShorterFlowFreesBandwidth(t *testing.T) {
	eng := event.NewEngine()
	fb := NewFabric(eng, 2, cfg(100, 100, 40))
	var tShort, tLong float64 = -1, -1
	fb.LocalRead(0, 100, func() { tShort = eng.Now() })
	fb.LocalRead(0, 300, func() { tLong = eng.Now() })
	eng.Run()
	// Phase 1: both at 20 B/s until short finishes at t=5 (100B).
	// Phase 2: long has 200B left at 40 B/s → 5 more seconds.
	approx(t, tShort, 5, 1e-6, "short flow")
	approx(t, tLong, 10, 1e-6, "long flow speeds up after short finishes")
}

func TestMaxMinUnevenBottlenecks(t *testing.T) {
	eng := event.NewEngine()
	// Node 0 uplink 30; node 1 downlink 100; node 2 downlink 12.
	fb := NewFabric(eng, 3, cfg(30, 100, 1000))
	// Flow A: 0→1 (up0, down1). Flow B: 0→2 (up0, down2 where down2 cap=100
	// too). To get asymmetric bottlenecks use a custom resource set.
	down2 := fb.DownlinkResource(2)
	down2.Capacity = 12
	var ta, tb float64 = -1, -1
	fb.Transfer(0, 1, 180, func() { ta = eng.Now() })
	fb.Transfer(0, 2, 120, func() { tb = eng.Now() })
	eng.Run()
	// Max-min: down2 share = 12 < up0 share = 15 → B frozen at 12,
	// A then gets up0 residual 18.
	// B: 120/12 = 10s. A: 180/18 = 10s.
	approx(t, ta, 10, 1e-6, "flow A rate 18")
	approx(t, tb, 10, 1e-6, "flow B rate 12")
}

func TestCancelStopsFlow(t *testing.T) {
	eng := event.NewEngine()
	fb := NewFabric(eng, 2, cfg(100, 100, 10))
	fired := false
	fl := fb.LocalRead(0, 100, func() { fired = true })
	eng.Schedule(1, func() { fb.Cancel(fl) })
	eng.Run()
	if fired {
		t.Fatal("cancelled flow invoked done callback")
	}
	if fb.ActiveFlows() != 0 {
		t.Fatalf("ActiveFlows = %d after cancel", fb.ActiveFlows())
	}
}

func TestCancelRestoresBandwidth(t *testing.T) {
	eng := event.NewEngine()
	fb := NewFabric(eng, 2, cfg(100, 100, 40))
	var tKeep float64 = -1
	fl := fb.LocalRead(0, 400, nil)
	fb.LocalRead(0, 400, func() { tKeep = eng.Now() })
	eng.Schedule(5, func() { fb.Cancel(fl) })
	eng.Run()
	// 0–5s at 20 B/s → 100B done; remaining 300B at 40 B/s → 7.5s more.
	approx(t, tKeep, 12.5, 1e-6, "survivor speeds up after cancel")
}

func TestZeroByteFlow(t *testing.T) {
	eng := event.NewEngine()
	fb := NewFabric(eng, 1, cfg(1, 1, 1))
	fired := false
	fb.LocalRead(0, 0, func() { fired = true })
	eng.Run()
	if !fired {
		t.Fatal("zero-byte flow never completed")
	}
	if eng.Now() != 0 {
		t.Fatalf("zero-byte flow advanced the clock to %v", eng.Now())
	}
}

func TestZeroByteFlowCancel(t *testing.T) {
	eng := event.NewEngine()
	fb := NewFabric(eng, 1, cfg(1, 1, 1))
	fired := false
	fl := fb.LocalRead(0, 0, func() { fired = true })
	fb.Cancel(fl)
	eng.Run()
	if fired {
		t.Fatal("cancelled zero-byte flow fired")
	}
}

func TestManyFlowsConservation(t *testing.T) {
	eng := event.NewEngine()
	fb := NewFabric(eng, 10, cfg(100, 400, 300))
	rng := xrand.New(99)
	total := 0.0
	count := 0
	for i := 0; i < 200; i++ {
		src := rng.Intn(10)
		dst := rng.Intn(10)
		size := rng.Range(10, 1000)
		total += size
		delay := rng.Range(0, 50)
		eng.Schedule(delay, func() {
			fb.Transfer(src, dst, size, func() { count++ })
		})
	}
	eng.Run()
	if count != 200 {
		t.Fatalf("completed %d flows, want 200", count)
	}
	if fb.ActiveFlows() != 0 {
		t.Fatalf("ActiveFlows = %d at end", fb.ActiveFlows())
	}
}

func TestLinodeConfigSanity(t *testing.T) {
	c := LinodeConfig()
	if c.UplinkBps >= c.DownlinkBps {
		t.Fatal("paper testbed has asymmetric links: uplink < downlink")
	}
	if c.DiskBps <= c.UplinkBps {
		t.Fatal("local disk must out-run the uplink or locality would not matter")
	}
}

// Property: with random flows over random resources, rates never exceed any
// resource capacity and no flow is starved while capacity remains.
func TestQuickCapacityRespected(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		eng := event.NewEngine()
		n := rng.IntRange(2, 8)
		fb := NewFabric(eng, n, cfg(rng.Range(10, 100), rng.Range(10, 100), rng.Range(10, 100)))
		k := rng.IntRange(1, 30)
		for i := 0; i < k; i++ {
			src := rng.Intn(n)
			dst := rng.Intn(n)
			fb.Transfer(src, dst, rng.Range(1, 100), nil)
		}
		// Inspect allocation right after setup.
		for i := 0; i < n; i++ {
			for _, r := range []*Resource{fb.UplinkResource(i), fb.DownlinkResource(i), fb.DiskResource(i)} {
				sum := 0.0
				for fl := range r.flows {
					if fl.rate < -1e-9 {
						return false // unfrozen flow escaped
					}
					sum += fl.rate
				}
				if sum > r.Capacity*(1+1e-9) {
					return false
				}
			}
		}
		// Every flow must have a strictly positive rate.
		for fl := range fb.flows {
			if fl.rate <= 0 {
				return false
			}
		}
		eng.Run()
		return fb.ActiveFlows() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: a flow alone on its resources gets the full bottleneck rate.
func TestQuickLoneFlowFullRate(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		eng := event.NewEngine()
		up := rng.Range(10, 100)
		down := rng.Range(10, 100)
		disk := rng.Range(10, 100)
		fb := NewFabric(eng, 2, cfg(up, down, disk))
		bytes := rng.Range(100, 1000)
		var finish float64 = -1
		fb.RemoteRead(0, 1, bytes, func() { finish = eng.Now() })
		eng.Run()
		want := bytes / math.Min(disk, math.Min(up, down))
		return math.Abs(finish-want) < 1e-6*want+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkReallocate200Flows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := event.NewEngine()
		fb := NewFabric(eng, 100, LinodeConfig())
		rng := xrand.New(7)
		for j := 0; j < 200; j++ {
			fb.Transfer(rng.Intn(100), rng.Intn(100), 128e6, nil)
		}
		eng.Run()
	}
}

func TestLatencyDelaysCompletion(t *testing.T) {
	eng := event.NewEngine()
	fb := NewFabric(eng, 2, Config{UplinkBps: 100, DownlinkBps: 100, DiskBps: 50, LatencySec: 2})
	var finish float64 = -1
	fb.LocalRead(0, 100, func() { finish = eng.Now() })
	eng.Run()
	// 2s setup + 100B at 50B/s = 4s.
	approx(t, finish, 4, 1e-6, "latency + transfer")
}

func TestLatencyZeroByteFlow(t *testing.T) {
	eng := event.NewEngine()
	fb := NewFabric(eng, 1, Config{UplinkBps: 1, DownlinkBps: 1, DiskBps: 1, LatencySec: 0.5})
	var finish float64 = -1
	fb.LocalRead(0, 0, func() { finish = eng.Now() })
	eng.Run()
	approx(t, finish, 0.5, 1e-9, "zero-byte flow pays only latency")
}

func TestLatencyCancelDuringSetup(t *testing.T) {
	eng := event.NewEngine()
	fb := NewFabric(eng, 1, Config{UplinkBps: 1, DownlinkBps: 1, DiskBps: 10, LatencySec: 5})
	fired := false
	fl := fb.LocalRead(0, 100, func() { fired = true })
	eng.Schedule(1, func() { fb.Cancel(fl) })
	eng.Run()
	if fired {
		t.Fatal("flow cancelled during setup still completed")
	}
	if fb.ActiveFlows() != 0 {
		t.Fatalf("ActiveFlows = %d", fb.ActiveFlows())
	}
}

func TestLatencySetupDoesNotConsumeBandwidth(t *testing.T) {
	eng := event.NewEngine()
	fb := NewFabric(eng, 1, Config{UplinkBps: 1, DownlinkBps: 1, DiskBps: 50, LatencySec: 10})
	var tFast float64 = -1
	// A latency-free path does not exist per-flow, but a second flow started
	// during the first's setup window should see the full disk.
	fb.LocalRead(0, 1000, nil) // activates at t=10
	eng.Schedule(0, func() {
		// This flow also activates at t=10; both then share.
		fb.LocalRead(0, 1000, func() { tFast = eng.Now() })
	})
	eng.Run()
	// Both active from t=10 at 25 B/s → done at t=50.
	approx(t, tFast, 50, 1e-6, "shared after simultaneous activation")
}
