// Package netsim models data movement as max-min fair fluid flows over a set
// of capacitated resources.
//
// Each simulated node exposes three resources: an uplink, a downlink, and a
// local disk. A transfer (Flow) consumes one or more resources — a local disk
// read uses only {disk[n]}, a remote HDFS read uses {disk[src], up[src],
// down[dst]}, and a shuffle fetch uses {up[src], down[dst]}. Whenever the set
// of active flows changes, rates are recomputed with progressive filling
// (water-filling): repeatedly find the most contended resource, freeze all
// flows crossing it at the fair share, and continue with the residual
// capacities. The result is the classic max-min fair allocation.
//
// Flow completions are event-driven: after every rate change the fabric
// advances each flow's remaining bytes and reschedules a single timer for the
// earliest completion.
package netsim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/event"
)

// ResourceKind identifies what a resource models.
type ResourceKind int

const (
	// Uplink is a node's egress network capacity.
	Uplink ResourceKind = iota
	// Downlink is a node's ingress network capacity.
	Downlink
	// Disk is a node's local storage read/write bandwidth.
	Disk
	// FlowCap is a per-flow private rate limit.
	FlowCap
	// Memory is a node's in-memory block-cache read bandwidth — the serving
	// tier of a warm cache hit, far above disk.
	Memory
)

func (k ResourceKind) String() string {
	switch k {
	case Uplink:
		return "up"
	case Downlink:
		return "down"
	case Disk:
		return "disk"
	case FlowCap:
		return "flowcap"
	case Memory:
		return "mem"
	}
	return "unknown"
}

// Resource is a capacitated link or device shared by flows.
type Resource struct {
	Kind     ResourceKind
	Node     int
	Capacity float64 // bytes per second

	flows map[*Flow]struct{}
}

// Flow is an in-progress transfer across a set of resources.
type Flow struct {
	ID        int64
	Bytes     float64 // total size
	remaining float64
	rate      float64
	resources []*Resource
	done      func()
	started   float64
	finished  bool
	cancelled bool
	src, dst  int // endpoint nodes; -1 for custom flows
}

// Src returns the flow's source node (-1 for custom flows).
func (f *Flow) Src() int { return f.src }

// Dst returns the flow's destination node (-1 for custom flows).
func (f *Flow) Dst() int { return f.dst }

// Rate returns the flow's current max-min fair rate in bytes/second.
func (f *Flow) Rate() float64 { return f.rate }

// Remaining returns the bytes left to transfer as of the last rate update.
func (f *Flow) Remaining() float64 { return f.remaining }

// Started returns the simulated time at which the flow was started.
func (f *Flow) Started() float64 { return f.started }

// Done reports whether the flow completed (not cancelled).
func (f *Flow) Done() bool { return f.finished }

// Fabric owns all node resources and active flows.
type Fabric struct {
	eng     *event.Engine
	up      []*Resource
	down    []*Resource
	disk    []*Resource
	mem     []*Resource
	flows   map[*Flow]struct{}
	nextID  int64
	latency float64

	lastUpdate float64
	timer      *event.Timer

	// baseCap remembers a resource's nominal capacity while it is scaled
	// away from it (degraded links, slow disks). Populated lazily on the
	// first scale so capacity adjustments made at construction time (e.g.
	// heterogeneous node speeds) are treated as the baseline.
	baseCap map[*Resource]float64

	// partition, when non-nil, assigns each node to a group; flows crossing
	// group boundaries are throttled through the shared choke resource.
	partition []int
	choke     *Resource

	// TotalBytesMoved accumulates completed flow volume for diagnostics.
	TotalBytesMoved float64
	// CompletedFlows counts flows that ran to completion.
	CompletedFlows int64
}

// Config describes per-node capacities in bytes per second.
type Config struct {
	UplinkBps   float64
	DownlinkBps float64
	DiskBps     float64
	// MemoryBps is the in-memory block-cache read bandwidth used by
	// memory-tier reads (TierMemory). Zero defaults to DefaultMemoryBps.
	// Memory resources are inert until a tiered read references them, so
	// the default leaves every disk-tier simulation byte-identical.
	MemoryBps float64
	// LatencySec is a fixed per-transfer setup delay (connection
	// establishment, RPC round-trip) charged before a flow starts moving
	// bytes. Zero disables it.
	LatencySec float64
}

// DefaultMemoryBps is the default memory-tier bandwidth: 10 GB/s, an order
// of magnitude above the testbed's SSD and well above any single link.
const DefaultMemoryBps = 10e9

// LinodeConfig mirrors the paper's testbed (§VI-A1): 2 Gbps uplink,
// 40 Gbps downlink, SSD local storage (~400 MB/s effective).
func LinodeConfig() Config {
	return Config{
		UplinkBps:   2e9 / 8,
		DownlinkBps: 40e9 / 8,
		DiskBps:     400e6,
	}
}

// NewFabric builds a fabric with n nodes, each with the given capacities.
func NewFabric(eng *event.Engine, n int, cfg Config) *Fabric {
	if n <= 0 {
		panic("netsim: NewFabric with n <= 0")
	}
	if cfg.UplinkBps <= 0 || cfg.DownlinkBps <= 0 || cfg.DiskBps <= 0 {
		panic("netsim: NewFabric with non-positive capacity")
	}
	f := &Fabric{
		eng:     eng,
		flows:   make(map[*Flow]struct{}),
		latency: cfg.LatencySec,
		baseCap: make(map[*Resource]float64),
	}
	memBps := cfg.MemoryBps
	if memBps <= 0 {
		memBps = DefaultMemoryBps
	}
	for i := 0; i < n; i++ {
		f.up = append(f.up, &Resource{Kind: Uplink, Node: i, Capacity: cfg.UplinkBps, flows: map[*Flow]struct{}{}})
		f.down = append(f.down, &Resource{Kind: Downlink, Node: i, Capacity: cfg.DownlinkBps, flows: map[*Flow]struct{}{}})
		f.disk = append(f.disk, &Resource{Kind: Disk, Node: i, Capacity: cfg.DiskBps, flows: map[*Flow]struct{}{}})
		f.mem = append(f.mem, &Resource{Kind: Memory, Node: i, Capacity: memBps, flows: map[*Flow]struct{}{}})
	}
	return f
}

// Tier selects the storage tier a read is served from.
type Tier int

const (
	// TierDisk serves from the node's local storage.
	TierDisk Tier = iota
	// TierMemory serves from the node's in-memory block cache.
	TierMemory
)

// serving returns node n's serving resource for a tier.
func (fb *Fabric) serving(n int, tier Tier) *Resource {
	if tier == TierMemory {
		return fb.mem[n]
	}
	return fb.disk[n]
}

// Nodes returns the number of nodes in the fabric.
func (fb *Fabric) Nodes() int { return len(fb.up) }

// ActiveFlows returns the number of flows currently in flight.
func (fb *Fabric) ActiveFlows() int { return len(fb.flows) }

// LocalRead starts a disk-only read of the given size on node n.
func (fb *Fabric) LocalRead(n int, bytes float64, done func()) *Flow {
	return fb.LocalReadTier(n, bytes, TierDisk, done)
}

// LocalReadTier starts a node-local read served from the given tier: the
// flow consumes the node's disk (TierDisk) or its cache-memory bandwidth
// (TierMemory, a warm block-cache hit).
func (fb *Fabric) LocalReadTier(n int, bytes float64, tier Tier, done func()) *Flow {
	return fb.start(n, n, bytes, done, fb.serving(n, tier))
}

// RemoteRead starts a read of a block stored on src delivered to dst:
// it consumes the source disk, the source uplink and the destination
// downlink.
func (fb *Fabric) RemoteRead(src, dst int, bytes float64, done func()) *Flow {
	return fb.RemoteReadCap(src, dst, bytes, 0, done)
}

// RemoteReadCap is RemoteRead with an additional per-flow rate cap in
// bytes/second (0 = uncapped), modeling protocol overhead on single-stream
// remote block reads (HDFS remote reads do not reach line rate; the paper
// cites network reads as "as much as 20 times slower than local data
// access", §III-C). The cap is realized as a private resource of the flow,
// so max-min fairness still applies below it.
func (fb *Fabric) RemoteReadCap(src, dst int, bytes, capBps float64, done func()) *Flow {
	return fb.RemoteReadCapTier(src, dst, bytes, capBps, TierDisk, done)
}

// RemoteReadCapTier is RemoteReadCap with the source's serving tier made
// explicit: a warm cache hit on src streams from its memory bandwidth
// instead of its disk, leaving the disk free for other readers — the
// network path (src uplink, dst downlink, optional per-flow cap) is
// unchanged.
func (fb *Fabric) RemoteReadCapTier(src, dst int, bytes, capBps float64, tier Tier, done func()) *Flow {
	if src == dst {
		return fb.LocalReadTier(src, bytes, tier, done)
	}
	res := []*Resource{fb.serving(src, tier), fb.up[src], fb.down[dst]}
	if capBps > 0 {
		res = append(res, &Resource{Kind: FlowCap, Node: dst, Capacity: capBps, flows: map[*Flow]struct{}{}})
	}
	return fb.start(src, dst, bytes, done, res...)
}

// Transfer starts a memory-to-memory network transfer (e.g., a shuffle
// fetch) consuming the source uplink and destination downlink.
func (fb *Fabric) Transfer(src, dst int, bytes float64, done func()) *Flow {
	if src == dst {
		// Node-local shuffle data short-circuits the network; model it as a
		// (fast) local disk read of the map output.
		return fb.LocalRead(src, bytes, done)
	}
	return fb.start(src, dst, bytes, done, fb.up[src], fb.down[dst])
}

// StartCustom starts a flow over an explicit resource set. Intended for
// tests and extensions. Custom flows carry no endpoints and are exempt from
// partitions.
func (fb *Fabric) StartCustom(bytes float64, done func(), resources ...*Resource) *Flow {
	return fb.start(-1, -1, bytes, done, resources...)
}

// UplinkResource exposes node n's uplink (for StartCustom and tests).
func (fb *Fabric) UplinkResource(n int) *Resource { return fb.up[n] }

// DownlinkResource exposes node n's downlink.
func (fb *Fabric) DownlinkResource(n int) *Resource { return fb.down[n] }

// DiskResource exposes node n's disk.
func (fb *Fabric) DiskResource(n int) *Resource { return fb.disk[n] }

// MemoryResource exposes node n's cache-memory bandwidth.
func (fb *Fabric) MemoryResource(n int) *Resource { return fb.mem[n] }

func (fb *Fabric) start(src, dst int, bytes float64, done func(), resources ...*Resource) *Flow {
	if bytes < 0 || math.IsNaN(bytes) {
		panic(fmt.Sprintf("netsim: flow with invalid size %v", bytes))
	}
	if len(resources) == 0 {
		panic("netsim: flow with no resources")
	}
	if fb.crossesPartition(src, dst) {
		resources = append(resources, fb.choke)
	}
	fb.nextID++
	fl := &Flow{
		ID:        fb.nextID,
		Bytes:     bytes,
		remaining: bytes,
		resources: resources,
		done:      done,
		started:   fb.eng.Now(),
		src:       src,
		dst:       dst,
	}
	if bytes == 0 {
		// Zero-byte flows complete after the setup latency without
		// touching the rate allocation.
		fb.eng.Schedule(fb.latency, func() {
			if fl.cancelled {
				return
			}
			fl.finished = true
			fb.CompletedFlows++
			if done != nil {
				done()
			}
		})
		return fl
	}
	if fb.latency > 0 {
		// Charge connection setup before the flow contends for bandwidth.
		fb.eng.Schedule(fb.latency, func() {
			if fl.cancelled {
				return
			}
			fb.activate(fl)
		})
		return fl
	}
	fb.activate(fl)
	return fl
}

// activate admits a flow into the fluid rate allocation.
func (fb *Fabric) activate(fl *Flow) {
	fb.advance()
	fb.flows[fl] = struct{}{}
	for _, r := range fl.resources {
		r.flows[fl] = struct{}{}
	}
	fb.reallocate()
}

// Cancel aborts a flow in flight. Its done callback never runs. Cancelling a
// finished or already-cancelled flow is a no-op.
func (fb *Fabric) Cancel(fl *Flow) {
	if fl == nil || fl.finished || fl.cancelled {
		return
	}
	fl.cancelled = true
	fb.advance()
	fb.detach(fl)
	fb.reallocate()
}

func (fb *Fabric) detach(fl *Flow) {
	delete(fb.flows, fl)
	for _, r := range fl.resources {
		delete(r.flows, fl)
	}
}

// advance applies elapsed progress to every active flow at the current rates.
func (fb *Fabric) advance() {
	now := fb.eng.Now()
	dt := now - fb.lastUpdate
	fb.lastUpdate = now
	if dt <= 0 {
		return
	}
	for fl := range fb.flows {
		fl.remaining -= fl.rate * dt
		if fl.remaining < 0 {
			fl.remaining = 0
		}
	}
}

// reallocate recomputes max-min fair rates via progressive filling and
// reschedules the completion timer.
func (fb *Fabric) reallocate() {
	if fb.timer != nil {
		fb.eng.Cancel(fb.timer)
		fb.timer = nil
	}
	if len(fb.flows) == 0 {
		return
	}

	// Progressive filling. residual[r] tracks unallocated capacity;
	// unfrozen[r] the number of still-unfrozen flows on r. All iteration
	// happens over deterministically ordered slices so tie-breaking (and
	// floating-point accumulation order) is reproducible run to run.
	type rstate struct {
		residual float64
		unfrozen int
	}
	states := make(map[*Resource]*rstate)
	var active []*Resource // deterministic order of first touch
	flows := fb.sortedFlows()
	for _, fl := range flows {
		fl.rate = -1 // unfrozen marker
		for _, r := range fl.resources {
			st, ok := states[r]
			if !ok {
				st = &rstate{residual: r.Capacity}
				states[r] = st
				active = append(active, r)
			}
			st.unfrozen++
		}
	}
	remaining := len(flows)
	for remaining > 0 {
		// Find the bottleneck: the resource with the smallest fair share
		// (first touched wins ties).
		var bottleneck *Resource
		best := math.Inf(1)
		for _, r := range active {
			st := states[r]
			if st.unfrozen == 0 {
				continue
			}
			share := st.residual / float64(st.unfrozen)
			if share < best {
				best = share
				bottleneck = r
			}
		}
		if bottleneck == nil {
			// No contended resources left; should not happen since every
			// flow crosses at least one resource.
			panic("netsim: progressive filling found no bottleneck")
		}
		// Freeze every unfrozen flow crossing the bottleneck at the share,
		// in flow-ID order.
		for _, fl := range flows {
			if fl.rate >= 0 || !crosses(fl, bottleneck) {
				continue
			}
			fl.rate = best
			remaining--
			for _, r := range fl.resources {
				st := states[r]
				st.residual -= best
				if st.residual < 0 {
					st.residual = 0
				}
				st.unfrozen--
			}
		}
	}

	// Schedule the earliest completion.
	soonest := math.Inf(1)
	for fl := range fb.flows {
		if fl.rate <= 0 {
			continue
		}
		t := fl.remaining / fl.rate
		if t < soonest {
			soonest = t
		}
	}
	if math.IsInf(soonest, 1) {
		panic("netsim: active flows but no positive rates")
	}
	fb.timer = fb.eng.Schedule(soonest, fb.onCompletion)
}

// sortedFlows returns the active flows ordered by ID.
func (fb *Fabric) sortedFlows() []*Flow {
	out := make([]*Flow, 0, len(fb.flows))
	for fl := range fb.flows {
		out = append(out, fl)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// crosses reports whether fl uses resource r.
func crosses(fl *Flow, r *Resource) bool {
	for _, rr := range fl.resources {
		if rr == r {
			return true
		}
	}
	return false
}

// onCompletion fires when at least one flow should have drained.
func (fb *Fabric) onCompletion() {
	fb.timer = nil
	fb.advance()
	const eps = 1e-9
	var finished []*Flow
	for _, fl := range fb.sortedFlows() {
		if fl.remaining <= fl.Bytes*eps+eps {
			finished = append(finished, fl)
		}
	}
	for _, fl := range finished {
		fl.remaining = 0
		fl.finished = true
		fb.detach(fl)
		fb.TotalBytesMoved += fl.Bytes
		fb.CompletedFlows++
	}
	fb.reallocate()
	// Run callbacks after rates are consistent so callbacks that start new
	// flows observe a clean state.
	for _, fl := range finished {
		if fl.done != nil {
			fl.done()
		}
	}
}

// Flows returns the active flows ordered by ID (audits and tests).
func (fb *Fabric) Flows() []*Flow { return fb.sortedFlows() }

// Partitioned reports whether a network partition is in effect.
func (fb *Fabric) Partitioned() bool { return fb.partition != nil }

// crossesPartition reports whether a flow between the endpoints would span
// the active partition boundary.
func (fb *Fabric) crossesPartition(src, dst int) bool {
	return fb.partition != nil && src >= 0 && dst >= 0 && fb.partition[src] != fb.partition[dst]
}

// SetPartition splits the fabric into groups (groups[node] is the node's
// group id): flows crossing a group boundary — in-flight and new — are
// throttled through a single shared choke of chokeBps bytes/second, the
// fluid-model stand-in for a partition where only a trickle of traffic
// leaks across. Replaces any partition already in effect.
func (fb *Fabric) SetPartition(groups []int, chokeBps float64) {
	if len(groups) != len(fb.up) {
		panic(fmt.Sprintf("netsim: SetPartition with %d groups for %d nodes", len(groups), len(fb.up)))
	}
	if chokeBps <= 0 {
		panic("netsim: SetPartition with non-positive choke capacity")
	}
	if fb.partition != nil {
		fb.ClearPartition()
	}
	fb.advance()
	fb.partition = append([]int(nil), groups...)
	fb.choke = &Resource{Kind: FlowCap, Node: -1, Capacity: chokeBps, flows: map[*Flow]struct{}{}}
	for _, fl := range fb.sortedFlows() {
		if fb.crossesPartition(fl.src, fl.dst) {
			fl.resources = append(fl.resources, fb.choke)
			fb.choke.flows[fl] = struct{}{}
		}
	}
	fb.reallocate()
}

// ClearPartition heals the partition: choked flows regain their normal
// max-min fair rates.
func (fb *Fabric) ClearPartition() {
	if fb.partition == nil {
		return
	}
	fb.advance()
	for _, fl := range fb.sortedFlows() {
		if _, ok := fb.choke.flows[fl]; !ok {
			continue
		}
		for i, r := range fl.resources {
			if r == fb.choke {
				fl.resources = append(fl.resources[:i], fl.resources[i+1:]...)
				break
			}
		}
	}
	fb.partition = nil
	fb.choke = nil
	fb.reallocate()
}

// scale sets a resource's capacity to factor × its nominal capacity,
// remembering the nominal value across repeated scalings.
func (fb *Fabric) scale(r *Resource, factor float64) {
	if factor <= 0 || math.IsNaN(factor) {
		panic(fmt.Sprintf("netsim: scale with invalid factor %v", factor))
	}
	base, ok := fb.baseCap[r]
	if !ok {
		base = r.Capacity
		fb.baseCap[r] = base
	}
	r.Capacity = base * factor
	if factor == 1 {
		delete(fb.baseCap, r)
	}
}

// ScaleLinks degrades (or restores, with factor 1) a node's uplink and
// downlink to factor × nominal capacity. In-flight flows re-converge to the
// new max-min fair rates immediately.
func (fb *Fabric) ScaleLinks(node int, factor float64) {
	fb.advance()
	fb.scale(fb.up[node], factor)
	fb.scale(fb.down[node], factor)
	fb.reallocate()
}

// ScaleDisk degrades (or restores, with factor 1) a node's disk bandwidth
// to factor × nominal capacity — a slow-disk straggler.
func (fb *Fabric) ScaleDisk(node int, factor float64) {
	fb.advance()
	fb.scale(fb.disk[node], factor)
	fb.reallocate()
}

// Utilization returns the fraction of a resource's capacity currently
// allocated; useful in tests and metrics.
func (fb *Fabric) Utilization(r *Resource) float64 {
	sum := 0.0
	for fl := range r.flows {
		sum += fl.rate
	}
	return sum / r.Capacity
}
