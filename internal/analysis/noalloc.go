package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NoAlloc turns the dynamic zero-allocation pins (obsv's
// TestRecordingDoesNotAllocate, the benchreg allocs/op gate) into a static,
// whole-repo contract: a function annotated //custody:noalloc must not
// contain constructs that allocate. Flagged constructs:
//
//   - append (growth may allocate; warm-arena appends carry a reasoned
//     //custody:ignore noalloc),
//   - make, new, slice and map composite literals, &T{} literals,
//   - closures (func literals), go statements, defers,
//   - string concatenation and string<->[]byte/[]rune conversions,
//   - interface boxing of non-pointer values (arguments, assignments),
//   - fmt calls,
//   - calls to functions not themselves annotated //custody:noalloc
//     (standard-library calls, dynamic dispatch, and unannotated
//     module-local functions).
//
// The call rule makes the contract transitive: the allocator's pick/update
// chain, the flight recorder's record path, and the event heap are each
// annotated end to end, so a future allocation cannot hide one call deep.
// Map index writes are not flagged (warm maps reuse buckets across rounds);
// the dynamic allocs/op gate still covers them.
type NoAlloc struct{}

// Name implements Analyzer.
func (NoAlloc) Name() string { return "noalloc" }

// Doc implements Analyzer.
func (NoAlloc) Doc() string {
	return "functions annotated //custody:noalloc must not allocate: no append/make/new, map/slice/closure " +
		"literals, string concatenation, interface boxing, fmt, or calls to non-noalloc functions"
}

// allocSafeBuiltins never allocate.
var allocSafeBuiltins = map[string]bool{
	"len": true, "cap": true, "copy": true, "delete": true, "clear": true,
	"min": true, "max": true, "real": true, "imag": true, "panic": true,
	"recover": true, "print": true, "println": true,
}

// Run implements Analyzer.
func (NoAlloc) Run(m *Module, pkg *Package) []Diagnostic {
	idx := m.annotations()
	diags := append([]Diagnostic(nil), filterRule(idx.bad[pkg], "noalloc")...)
	if pkg.Info == nil {
		return diags
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pkg.Info.Defs[fd.Name]
			if obj == nil || !idx.noalloc[obj] {
				continue
			}
			diags = append(diags, checkNoAllocFunc(m, pkg, fd)...)
		}
	}
	return diags
}

// checkNoAllocFunc flags every allocating construct in one annotated
// function body.
func checkNoAllocFunc(m *Module, pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	var diags []Diagnostic
	flag := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:     m.Fset.Position(pos),
			Rule:    "noalloc",
			Message: fmt.Sprintf("//custody:noalloc %s: ", fd.Name.Name) + fmt.Sprintf(format, args...),
		})
	}

	addrOfLit := map[*ast.CompositeLit]bool{} // &T{} literals, flagged at the &
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			diags = append(diags, checkNoAllocCall(m, pkg, fd, x, flag)...)
		case *ast.CompositeLit:
			if addrOfLit[x] {
				return true
			}
			t := pkg.Info.TypeOf(x)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				flag(x.Pos(), "slice literal allocates")
			case *types.Map:
				flag(x.Pos(), "map literal allocates")
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if lit, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					addrOfLit[lit] = true
					flag(x.Pos(), "&composite-literal allocates (escapes to the heap)")
				}
			}
		case *ast.FuncLit:
			flag(x.Pos(), "closure literal allocates")
			return false // body is the closure's problem, not this function's
		case *ast.GoStmt:
			flag(x.Pos(), "go statement allocates a goroutine")
		case *ast.DeferStmt:
			flag(x.Pos(), "defer may allocate its frame")
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(pkg.Info.TypeOf(x)) {
				flag(x.Pos(), "string concatenation allocates; use a preallocated buffer")
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isStringType(pkg.Info.TypeOf(x.Lhs[0])) {
				flag(x.Pos(), "string += allocates; use a preallocated buffer")
			}
			diags = append(diags, checkBoxingAssign(m, pkg, fd, x)...)
		}
		return true
	})
	return diags
}

// checkNoAllocCall classifies one call inside a noalloc function: builtins,
// conversions, fmt, dynamic dispatch, and the transitive noalloc rule.
func checkNoAllocCall(m *Module, pkg *Package, fd *ast.FuncDecl, call *ast.CallExpr, flag func(token.Pos, string, ...any)) []Diagnostic {
	info := pkg.Info
	fun := ast.Unparen(call.Fun)

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if obj, ok := info.Uses[id]; ok {
			if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
				switch id.Name {
				case "append":
					flag(call.Pos(), "append may grow its backing array; prove the arena is warm and suppress with a reason")
				case "make":
					flag(call.Pos(), "make allocates")
				case "new":
					flag(call.Pos(), "new allocates")
				default:
					if !allocSafeBuiltins[id.Name] {
						flag(call.Pos(), "builtin %s may allocate", id.Name)
					}
				}
				return nil
			}
		}
	}

	// Type conversions: string <-> []byte/[]rune copy; boxing into an
	// interface type.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		to := tv.Type
		if len(call.Args) == 1 {
			from := info.TypeOf(call.Args[0])
			switch {
			case isStringType(to) && !isStringType(from):
				flag(call.Pos(), "conversion to string copies")
			case !isStringType(to) && isStringType(from) && isByteOrRuneSlice(to):
				flag(call.Pos(), "conversion from string copies")
			case isInterfaceType(to) && boxes(from):
				flag(call.Pos(), "conversion to interface boxes a non-pointer value")
			}
		}
		return nil
	}

	// fmt calls.
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			for _, f := range pkg.Files {
				if within(f, call.Pos()) {
					if importedPackage(pkg, f, id) == "fmt" {
						flag(call.Pos(), "fmt.%s allocates (boxing and formatting buffers)", sel.Sel.Name)
						return nil
					}
					break
				}
			}
		}
	}

	var diags []Diagnostic

	// Argument boxing against the callee signature.
	if sig, ok := typeAsSignature(info.TypeOf(call.Fun)); ok {
		diags = append(diags, checkBoxingArgs(m, pkg, fd, call, sig)...)
	}

	// Callee annotation: the transitive noalloc rule.
	callee := calleeObject(info, fun)
	switch {
	case callee == nil:
		flag(call.Pos(), "dynamic call to %s cannot be verified noalloc; devirtualize or suppress with a "+
			"reason stating the implementation contract", calleeString(call))
	case callee.Pkg() == nil:
		// error() method and friends; harmless.
	case strings.HasPrefix(callee.Pkg().Path(), m.Path+"/") || callee.Pkg().Path() == m.Path:
		if !m.isNoAlloc(callee) {
			flag(call.Pos(), "call to %s, which is not annotated //custody:noalloc; annotate the callee "+
				"or suppress with a reason", calleeString(call))
		}
	default:
		flag(call.Pos(), "call to %s is outside the //custody:noalloc contract; suppress with a reason "+
			"if it provably does not allocate", calleeString(call))
	}
	return diags
}

// calleeObject resolves the called function's object: a module-local or
// imported *types.Func for static calls, nil for dynamic ones (interface
// methods, function values).
func calleeObject(info *types.Info, fun ast.Expr) types.Object {
	switch f := fun.(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[f]; ok {
			if _, isFunc := obj.(*types.Func); isFunc {
				return obj
			}
		}
	case *ast.SelectorExpr:
		if s, ok := info.Selections[f]; ok {
			// Method call: dynamic when the receiver is an interface.
			if types.IsInterface(s.Recv()) {
				return nil
			}
			return s.Obj()
		}
		// Package-qualified call.
		if obj, ok := info.Uses[f.Sel]; ok {
			if _, isFunc := obj.(*types.Func); isFunc {
				return obj
			}
		}
	}
	return nil
}

// checkBoxingArgs flags call arguments whose parameter is an interface type
// while the argument's static type is a boxable (non-pointer, non-interface)
// value.
func checkBoxingArgs(m *Module, pkg *Package, fd *ast.FuncDecl, call *ast.CallExpr, sig *types.Signature) []Diagnostic {
	var diags []Diagnostic
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			pt = params.At(i).Type()
		case sig.Variadic():
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		}
		if pt == nil || !isInterfaceType(pt) {
			continue
		}
		at := pkg.Info.TypeOf(arg)
		if boxes(at) {
			diags = append(diags, Diagnostic{
				Pos:  m.Fset.Position(arg.Pos()),
				Rule: "noalloc",
				Message: fmt.Sprintf("//custody:noalloc %s: passing %s as interface %s boxes the value",
					fd.Name.Name, at, pt),
			})
		}
	}
	return diags
}

// checkBoxingAssign flags assignments that box a non-pointer value into an
// interface-typed destination.
func checkBoxingAssign(m *Module, pkg *Package, fd *ast.FuncDecl, s *ast.AssignStmt) []Diagnostic {
	var diags []Diagnostic
	if len(s.Lhs) != len(s.Rhs) {
		return nil
	}
	for i := range s.Lhs {
		lt := pkg.Info.TypeOf(s.Lhs[i])
		rt := pkg.Info.TypeOf(s.Rhs[i])
		if lt != nil && isInterfaceType(lt) && boxes(rt) {
			diags = append(diags, Diagnostic{
				Pos:  m.Fset.Position(s.Rhs[i].Pos()),
				Rule: "noalloc",
				Message: fmt.Sprintf("//custody:noalloc %s: assigning %s into interface %s boxes the value",
					fd.Name.Name, rt, lt),
			})
		}
	}
	return diags
}

// boxes reports whether storing a value of type t into an interface
// allocates: true for concrete non-pointer, non-interface, non-nil types.
func boxes(t types.Type) bool {
	if t == nil {
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	if isInterfaceType(t) {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Signature:
		return false // pointer-shaped: stored directly in the iface word
	}
	return true
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isInterfaceType(t types.Type) bool {
	return t != nil && types.IsInterface(t)
}

// typeAsSignature unwraps a call target's type to its signature.
func typeAsSignature(t types.Type) (*types.Signature, bool) {
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

// within reports whether pos falls inside the file's span.
func within(f *ast.File, pos token.Pos) bool {
	return pos >= f.FileStart && pos <= f.FileEnd
}
