package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix enforces all-or-nothing atomicity: a variable or struct field
// that is accessed through sync/atomic anywhere in the module must be
// accessed atomically everywhere. Mixing atomic.AddInt64(&x, 1) with a
// plain `x++` (or even a plain read) is a data race the compiler accepts
// and the race detector only catches when the schedule cooperates; the
// sharded allocator's per-shard counters make this the easiest concurrency
// bug to write. A deliberate non-atomic access (e.g. a read during
// single-threaded initialization) needs a //custody:ignore atomicmix with
// the reason.
type AtomicMix struct{}

// Name implements Analyzer.
func (AtomicMix) Name() string { return "atomicmix" }

// Doc implements Analyzer.
func (AtomicMix) Doc() string {
	return "a variable or field accessed via sync/atomic anywhere must be accessed atomically everywhere"
}

// atomicIndex is the module-wide table of atomically-accessed objects.
type atomicIndex struct {
	objs map[types.Object]token.Position // object → first atomic site
	ok   map[token.Pos]bool              // ident positions inside atomic call args
}

// atomicIndexOf builds (once) the module's atomic-access table.
func atomicIndexOf(m *Module) *atomicIndex {
	if m.atomix != nil {
		return m.atomix
	}
	idx := &atomicIndex{objs: map[types.Object]token.Position{}, ok: map[token.Pos]bool{}}
	for _, pkg := range m.Packages {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicCall(pkg, f, call) {
					return true
				}
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					id := selectedIdent(un.X)
					if id == nil {
						continue
					}
					obj := pkg.Info.Uses[id]
					if obj == nil {
						continue
					}
					p := m.Fset.Position(id.Pos())
					if old, seen := idx.objs[obj]; !seen || posLess(p, old) {
						idx.objs[obj] = p
					}
					idx.ok[id.Pos()] = true
				}
				return true
			})
		}
	}
	m.atomix = idx
	return idx
}

// isAtomicCall reports whether call invokes a sync/atomic function.
func isAtomicCall(pkg *Package, f *ast.File, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	return importedPackage(pkg, f, id) == "sync/atomic"
}

// selectedIdent returns the field/variable ident addressed by &expr: the
// Sel of a selector, or a plain ident.
func selectedIdent(e ast.Expr) *ast.Ident {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return x.Sel
	case *ast.Ident:
		return x
	case *ast.IndexExpr:
		return selectedIdent(x.X)
	}
	return nil
}

// Run implements Analyzer.
func (AtomicMix) Run(m *Module, pkg *Package) []Diagnostic {
	idx := atomicIndexOf(m)
	if len(idx.objs) == 0 || pkg.Info == nil {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || idx.ok[id.Pos()] {
				return true
			}
			obj := pkg.Info.Uses[id]
			if obj == nil {
				return true
			}
			first, atomicObj := idx.objs[obj]
			if !atomicObj {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:  m.Fset.Position(id.Pos()),
				Rule: "atomicmix",
				Message: fmt.Sprintf("%s is accessed via sync/atomic (first at %s:%d) but non-atomically here; "+
					"use the atomic API everywhere or suppress with the reason the mixed access is safe",
					id.Name, first.Filename, first.Line),
			})
			return true
		})
	}
	return diags
}
