package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// MapOrder flags `for range` loops over maps whose bodies do
// ordering-sensitive work: appending to a slice that outlives the loop,
// emitting output, or sending on a channel. Go randomizes map iteration
// order, so any of these silently injects nondeterminism into allocation
// plans and experiment reports.
//
// Two escapes are recognized:
//
//   - the appended-to slice is passed to a sort or slices call later in the
//     same function (the newExecPool pattern in internal/core/allocate.go:
//     collect keys from the map, then sort.Ints them);
//   - the loop carries a //custody:ordered annotation (trailing on the
//     `for` line or on the line above), asserting order does not matter.
//
// Writes into other maps, counters, and reductions (sums, min/max) are
// commutative and deliberately not flagged.
type MapOrder struct{}

// Name implements Analyzer.
func (MapOrder) Name() string { return "maporder" }

// Doc implements Analyzer.
func (MapOrder) Doc() string {
	return "forbid order-sensitive work (append/output/send) fed from map iteration unless the result " +
		"is sorted in the same function or the loop is annotated //custody:ordered"
}

// Run implements Analyzer.
func (MapOrder) Run(m *Module, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ordered := orderedLines(m.Fset, f)
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if r, ok := n.(*ast.RangeStmt); ok {
				diags = append(diags, checkMapRange(m, pkg, f, r, stack, ordered)...)
			}
			return true
		})
	}
	return diags
}

func checkMapRange(m *Module, pkg *Package, f *ast.File, r *ast.RangeStmt, stack []ast.Node, ordered map[int]bool) []Diagnostic {
	if ordered[m.Fset.Position(r.Pos()).Line] {
		return nil
	}
	if pkg.Info == nil {
		return nil
	}
	t := pkg.Info.TypeOf(r.X)
	if t == nil {
		return nil
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return nil
	}

	type sink struct {
		expr string
		pos  ast.Node
	}
	var appends []sink
	var diags []Diagnostic

	ast.Inspect(r.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				if !isAppendCall(pkg, rhs) || i >= len(s.Lhs) {
					continue
				}
				lhs := s.Lhs[i]
				if declaredWithin(pkg, lhs, r.Body) {
					continue // per-iteration scratch slice; order across iterations irrelevant
				}
				appends = append(appends, sink{expr: types.ExprString(lhs), pos: lhs})
			}
		case *ast.SendStmt:
			diags = append(diags, Diagnostic{
				Pos:  m.Fset.Position(s.Pos()),
				Rule: "maporder",
				Message: "channel send inside map iteration publishes values in nondeterministic order; " +
					"collect into a slice and sort, or annotate //custody:ordered",
			})
		case *ast.CallExpr:
			if name := printCallName(pkg, f, s); name != "" {
				diags = append(diags, Diagnostic{
					Pos:  m.Fset.Position(s.Pos()),
					Rule: "maporder",
					Message: fmt.Sprintf("%s inside map iteration emits output in nondeterministic order; "+
						"collect into a slice and sort, or annotate //custody:ordered", name),
				})
			}
		}
		return true
	})

	if len(appends) > 0 {
		sorted := sortedAfter(pkg, f, r, stack)
		for _, s := range appends {
			if sorted[s.expr] {
				continue
			}
			diags = append(diags, Diagnostic{
				Pos:  m.Fset.Position(s.pos.Pos()),
				Rule: "maporder",
				Message: fmt.Sprintf("map iteration appends to %s in nondeterministic order; sort %s after the loop "+
					"or annotate //custody:ordered", s.expr, s.expr),
			})
		}
	}
	return diags
}

// isAppendCall reports whether e is a call to the builtin append (possibly
// shadowed — resolved through type info when available).
func isAppendCall(pkg *Package, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if pkg.Info != nil {
		if obj, ok := pkg.Info.Uses[id]; ok {
			_, builtin := obj.(*types.Builtin)
			return builtin
		}
	}
	return true
}

// declaredWithin reports whether the root identifier of e is declared
// inside the node span of body (i.e. is loop-local state).
func declaredWithin(pkg *Package, e ast.Expr, body *ast.BlockStmt) bool {
	id := rootIdent(e)
	if id == nil || pkg.Info == nil {
		return false
	}
	obj := pkg.Info.ObjectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() >= body.Pos() && obj.Pos() <= body.End()
}

// rootIdent unwraps selectors, indexes, and stars down to the base
// identifier of an lvalue expression.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// printCallName returns a display name if call writes output (the fmt print
// family or the builtin print/println), else "".
func printCallName(pkg *Package, f *ast.File, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name == "print" || fun.Name == "println" {
			return fun.Name
		}
	case *ast.SelectorExpr:
		id, ok := fun.X.(*ast.Ident)
		if !ok {
			return ""
		}
		if importedPackage(pkg, f, id) != "fmt" {
			return ""
		}
		if strings.HasPrefix(fun.Sel.Name, "Print") || strings.HasPrefix(fun.Sel.Name, "Fprint") {
			return "fmt." + fun.Sel.Name
		}
	}
	return ""
}

// sortedAfter returns the set of expression strings passed to a sorting
// call in statements that follow r within its nearest enclosing statement
// list. A sorting call is anything in the sort or slices packages, or a
// local helper whose name contains "sort" (e.g. sortTasks(requeue)).
func sortedAfter(pkg *Package, f *ast.File, r *ast.RangeStmt, stack []ast.Node) map[string]bool {
	sorted := map[string]bool{}
	for _, st := range followingStmts(stack) {
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isSortCall(pkg, f, call) {
				return true
			}
			for _, arg := range call.Args {
				sorted[types.ExprString(arg)] = true
			}
			return true
		})
	}
	return sorted
}

func isSortCall(pkg *Package, f *ast.File, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(fun.Name), "sort")
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if p := importedPackage(pkg, f, id); p == "sort" || p == "slices" {
				return true
			}
		}
		return strings.Contains(strings.ToLower(fun.Sel.Name), "sort")
	}
	return false
}

// followingStmts returns the statements after the top of stack (the range
// statement) in its nearest enclosing statement list — the rest of the
// surrounding block, case clause, or comm clause.
func followingStmts(stack []ast.Node) []ast.Stmt {
	for i := len(stack) - 2; i >= 0; i-- {
		var list []ast.Stmt
		switch p := stack[i].(type) {
		case *ast.BlockStmt:
			list = p.List
		case *ast.CaseClause:
			list = p.Body
		case *ast.CommClause:
			list = p.Body
		default:
			continue
		}
		child := stack[i+1]
		for j, st := range list {
			if st == child {
				return list[j+1:]
			}
		}
	}
	return nil
}
