// Package tool is binary-layer scaffolding for the fixture.
package tool

// Name identifies the package for the fixture.
var Name = "tool"
