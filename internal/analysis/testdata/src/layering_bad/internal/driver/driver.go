// Package driver is orchestration-layer scaffolding for the fixture.
package driver

// Name identifies the package for the fixture.
var Name = "driver"
