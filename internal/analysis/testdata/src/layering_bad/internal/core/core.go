// Package core is a negative fixture: a leaf layer importing both an
// orchestration layer and a binary.
package core

import (
	"fixture/cmd/tool"
	"fixture/internal/driver"
)

// Names pulls symbols through the forbidden imports.
func Names() string { return driver.Name + tool.Name }
