// Package p is a positive fixture: errors handled, conventionally
// infallible writers used, and one suppression with a reason.
package p

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
)

func work() error { return errors.New("boom") }

// Handled propagates the error.
func Handled() error {
	if err := work(); err != nil {
		return err
	}
	return nil
}

// Prints exercises the allowlist: stdout/stderr prints and the
// never-failing builders.
func Prints(buf *bytes.Buffer) string {
	fmt.Println("stdout is conventionally unchecked")
	fmt.Fprintf(os.Stderr, "stderr too\n")
	var b strings.Builder
	fmt.Fprintf(&b, "builders never fail: %d\n", 1)
	b.WriteString("neither do their methods")
	buf.WriteString(b.String())
	return b.String()
}

// Suppressed carries the mandatory reason.
func Suppressed(f *os.File) {
	defer f.Close() //custody:ignore errdrop read-only handle; close error carries no signal
}
