// Package p is a negative fixture: ordering-sensitive work fed straight
// from map iteration, never sorted and never annotated.
package p

import "fmt"

// Keys leaks map order into a slice.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Dump emits output in map order.
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

// Publish sends in map order.
func Publish(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k
	}
}
