// Package p is a positive fixture: atomically-accessed state is atomic
// everywhere, with one reasoned exception during construction.
package p

import "sync/atomic"

var hits int64

// gauge is accessed only through the atomic API.
type gauge struct {
	level int64
}

// Bump writes atomically.
func Bump(g *gauge) {
	atomic.AddInt64(&g.level, 1)
	atomic.AddInt64(&hits, 1)
}

// Read loads atomically.
func Read(g *gauge) int64 {
	return atomic.LoadInt64(&g.level) + atomic.LoadInt64(&hits)
}

// New initializes before publication; the plain store cannot race and
// carries the mandatory reason.
func New(seed int64) *gauge {
	g := &gauge{}
	g.level = seed //custody:ignore atomicmix construction happens-before publication; no concurrent access yet
	return g
}
