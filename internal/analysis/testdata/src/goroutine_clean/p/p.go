// Package p is a positive fixture: goroutines that pass loop values as
// arguments and guard shared fields.
package p

import "sync"

// box guards its count.
type box struct {
	mu sync.Mutex
	//custody:guardedby mu
	n int
}

// Fan passes the loop variable as an argument and locks around the shared
// field.
func Fan(xs []int, b *box) {
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			b.mu.Lock()
			b.n += v
			b.mu.Unlock()
		}(x)
	}
	wg.Wait()
}

// Local spawns over goroutine-local state only.
func Local() chan int {
	ch := make(chan int, 1)
	go func() {
		ch <- 1
	}()
	return ch
}
