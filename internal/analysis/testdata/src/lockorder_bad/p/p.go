// Package p is a negative fixture: two mutexes acquired in opposite orders
// on different call paths — the classic ABBA deadlock.
package p

import "sync"

// Ledger owns two independent locks.
type Ledger struct {
	accounts sync.Mutex
	journal  sync.Mutex
}

// Post takes accounts, then journal.
func (l *Ledger) Post() {
	l.accounts.Lock()
	defer l.accounts.Unlock()
	l.journal.Lock()
	defer l.journal.Unlock()
}

// Audit takes journal, then accounts — the opposite order.
func (l *Ledger) Audit() {
	l.journal.Lock()
	defer l.journal.Unlock()
	l.accounts.Lock()
	defer l.accounts.Unlock()
}
