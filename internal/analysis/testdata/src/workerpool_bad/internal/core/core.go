// Package core is a negative fixture: worker pools that break the
// fork-join blessing inside a single-threaded deterministic leaf.
package core

import "sync"

// Forked spawns under the blessing but never joins its workers.
//
//custody:workerpool build phases write disjoint partitions
func Forked(parts []int) {
	var wg sync.WaitGroup
	for i := range parts {
		wg.Add(1)
		go forkWorker(&wg, parts, i)
	}
}

func forkWorker(wg *sync.WaitGroup, parts []int, i int) {
	defer wg.Done()
	parts[i] = i
}

// Unblessed spawns without any annotation: the plain leaf ban applies.
func Unblessed() {
	go idle()
}

func idle() {}

// Reasonless carries a blessing with no reason, which is itself an error,
// and therefore does not lift the leaf ban either.
//
//custody:workerpool
func Reasonless(parts []int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go forkWorker(&wg, parts, 0)
	wg.Wait()
}
