// Package core is a positive fixture: a blessed fork-join worker pool
// inside a single-threaded deterministic leaf. The annotation carries a
// reason and every spawn is joined before the function returns, so the
// goroutine rule stays silent.
package core

import "sync"

// Build fans a partitioned build out to workers and joins them.
//
//custody:workerpool workers write disjoint partitions and are joined before any read
func Build(parts []int) {
	var wg sync.WaitGroup
	for i := range parts {
		wg.Add(1)
		go buildWorker(&wg, parts, i)
	}
	wg.Wait()
}

func buildWorker(wg *sync.WaitGroup, parts []int, i int) {
	defer wg.Done()
	parts[i] = i
}
