// Package p is a negative fixture: every way of silently dropping an
// error, plus malformed suppressions.
package p

import (
	"errors"
	"fmt"
	"os"
)

func work() error { return errors.New("boom") }

func pair() (int, error) { return 1, nil }

// Discard swallows errors into the blank identifier.
func Discard() int {
	_ = work()
	n, _ := pair()
	return n
}

// Ignore drops errors by never receiving them.
func Ignore(f *os.File) {
	work()
	defer work()
	fmt.Fprintln(f, "file writers can fail")
}

// Sloppy shows that a suppression without a reason both fails to suppress
// and is itself reported.
func Sloppy() {
	work() //custody:ignore errdrop
}

// Typo shows that a suppression naming an unknown rule is reported.
func Typo() {
	work() //custody:ignore errdorp fat-fingered rule name
}

// Package-level declaration discard: the ValueSpec form of `_ = f()`.
var _ = work()

// Declared shows the same form inside a function body.
func Declared() {
	var _ = work()
	var keep, _ = pair()
	_ = keep
}
