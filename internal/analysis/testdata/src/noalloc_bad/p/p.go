// Package p is a negative fixture: every allocating construct inside
// //custody:noalloc functions.
package p

import "fmt"

type pool struct{ buf []int }

type doer interface{ do() }

var sink any

func helper() int { return 1 }

// Hot is annotated and allocates in every way the rule knows.
//
//custody:noalloc
func Hot(p *pool, d doer, a, b string) string {
	p.buf = append(p.buf, 1)
	m := make(map[int]int)
	_ = m
	xs := []int{1, 2}
	_ = xs
	pp := &pool{}
	_ = pp
	f := func() int { return 0 }
	_ = f
	defer helper()
	fmt.Println("hot")
	d.do()
	_ = helper()
	sink = 42
	bs := []byte(a)
	_ = bs
	return a + b
}

// Grow boxes through a variadic interface parameter.
//
//custody:noalloc
func Grow(n int) {
	variadic(n)
}

func variadic(vs ...any) {}
