// Package p is a negative fixture: guarded fields accessed outside their
// mutex span, plus every malformed form of the annotation.
package p

import "sync"

// Counter guards its count behind mu.
type Counter struct {
	mu sync.Mutex
	//custody:guardedby mu
	n int
	//custody:guardedby phantom
	orphan int
	//custody:guardedby
	nameless int
}

// Inc holds the lock — clean.
func (c *Counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Peek reads without the lock — flagged.
func (c *Counter) Peek() int {
	return c.n
}

// Bump writes after the unlock — flagged.
func (c *Counter) Bump() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.n++
}

// Escape hands the field to a closure that runs at an unknown time —
// the closure body has no lock span, so the access is flagged.
func (c *Counter) Escape() func() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() int { return c.n }
}

//custody:holds mu
func floating() {}

// Stale claims a mutex the receiver does not have.
//
//custody:holds
func (c *Counter) Stale() {}
