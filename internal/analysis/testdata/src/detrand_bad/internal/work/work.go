// Package work is a negative fixture: every ambient nondeterminism source
// banned inside internal/ appears here.
package work

import (
	"math/rand"
	"os"
	"time"
)

// Seed mixes three forbidden ambient sources.
func Seed() int64 {
	if os.Getenv("CUSTODY_SEED") != "" {
		return 1
	}
	return time.Now().UnixNano()
}

// Jitter leans on the global math/rand stream.
func Jitter() float64 { return rand.Float64() }

// Elapsed measures against the wall clock.
func Elapsed(t0 time.Time) time.Duration { return time.Since(t0) }

// Wait schedules on the wall clock instead of internal/event.
func Wait() {
	<-time.After(1)
	t := time.NewTimer(1)
	t.Stop()
}

// ID leans on the process ID, a favorite accidental seed.
func ID() int { return os.Getpid() }
