// Package work is a negative fixture: every ambient nondeterminism source
// banned inside internal/ appears here.
package work

import (
	"math/rand"
	"os"
	"time"
)

// Seed mixes three forbidden ambient sources.
func Seed() int64 {
	if os.Getenv("CUSTODY_SEED") != "" {
		return 1
	}
	return time.Now().UnixNano()
}

// Jitter leans on the global math/rand stream.
func Jitter() float64 { return rand.Float64() }
