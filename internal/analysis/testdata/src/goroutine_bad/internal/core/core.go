// Package core is a negative fixture: goroutines and channel operations in
// a single-threaded deterministic leaf.
package core

// Pump spawns and communicates inside the leaf.
func Pump(ch chan int) int {
	go drain(ch)
	ch <- 1
	return <-ch
}

func drain(ch chan int) {}
