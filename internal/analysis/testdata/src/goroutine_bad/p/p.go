// Package p is a negative fixture: goroutines capturing loop variables,
// package-level state, and unguarded struct fields.
package p

var total int

// stats has no declared guard.
type stats struct {
	hits int
}

// Fan spawns the classic capture bugs.
func Fan(xs []int, st *stats) {
	for _, x := range xs {
		go func() {
			total += x
			st.hits++
		}()
	}
}

// Indexed captures a three-clause loop variable.
func Indexed(xs []int) {
	for i := 0; i < len(xs); i++ {
		go func() {
			_ = xs[i]
		}()
	}
}
