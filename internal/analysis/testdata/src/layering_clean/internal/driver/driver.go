// Package driver is a positive fixture: orchestration importing the leaf
// below it is the intended direction of the DAG.
package driver

import "fixture/internal/core"

// Plan allocates through the leaf layer.
func Plan(demand, execs int) int { return core.Bound(demand, execs) }
