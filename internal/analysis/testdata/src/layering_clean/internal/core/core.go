// Package core is a positive fixture: a leaf importing a utility leaf is
// fine; the DAG only forbids upward imports.
package core

import "fixture/internal/util"

// Bound trims a demand to the executor count.
func Bound(demand, execs int) int { return util.Clamp(demand, 0, execs) }
