// Package util is a utility leaf the other leaves may import.
package util

// Clamp bounds v to [lo, hi].
func Clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
