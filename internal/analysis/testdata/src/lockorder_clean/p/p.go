// Package p is a positive fixture: three mutexes always acquired in one
// blessed order (state → queue → stats), including through a
// //custody:holds-annotated helper.
package p

import "sync"

// Broker layers three locks.
type Broker struct {
	state sync.Mutex
	queue sync.Mutex
	stats sync.Mutex
}

// Dispatch takes all three in the blessed order.
func (b *Broker) Dispatch() {
	b.state.Lock()
	defer b.state.Unlock()
	b.queue.Lock()
	defer b.queue.Unlock()
	b.stats.Lock()
	defer b.stats.Unlock()
}

// Drain takes a suffix of the order — consistent with Dispatch.
func (b *Broker) Drain() {
	b.queue.Lock()
	defer b.queue.Unlock()
	b.stats.Lock()
	defer b.stats.Unlock()
}

// countLocked extends the chain from a documented precondition: queue is
// held by the caller, so the stats acquisition records queue → stats.
//
//custody:holds queue
func (b *Broker) countLocked() {
	b.stats.Lock()
	defer b.stats.Unlock()
}
