// Command tool sits at the edge of the system: reading clocks and the
// environment is allowed outside internal/.
package main

import (
	"fmt"
	"os"
	"time"
)

func main() {
	fmt.Println(time.Now(), os.Getenv("HOME"))
}
