package work

import "time"

// Stamp labels human-facing reports with wall-clock time; the value never
// reaches an allocation decision, so the finding is suppressed with a
// reason.
func Stamp() time.Time {
	return time.Now() //custody:ignore detrand wall-clock label on reports; never feeds allocation decisions
}
