// Package work is a positive fixture: randomness and time are injected by
// the caller, so nothing ambient leaks into internal code.
package work

// Pick consumes an explicitly injected random stream.
func Pick(next func() uint64, n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return next() % n
}

// Deadline works on a timestamp the caller supplies.
func Deadline(now float64, timeout float64) float64 { return now + timeout }
