// Package xrand is exempt from detrand: it is the one place ambient
// entropy may be captured and turned into explicit seeds.
package xrand

import "time"

// WallSeed captures ambient time as a seed. Allowed only here.
func WallSeed() int64 { return time.Now().UnixNano() }
