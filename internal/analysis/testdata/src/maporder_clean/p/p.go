// Package p is a positive fixture: every map iteration either does
// commutative work, restores order afterwards, or is annotated.
package p

import "sort"

// Keys collects then sorts — the canonical allowed pattern
// (newExecPool in internal/core/allocate.go).
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Sum is a commutative reduction; iteration order cannot matter.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Invert writes into another map; distinct keys commute.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Batch asserts order-independence explicitly.
func Batch(m map[string]int, sink func([]string)) {
	var out []string
	//custody:ordered sink treats the batch as an unordered set
	for k := range m {
		out = append(out, k)
	}
	sink(out)
}

// Scratch appends only to a loop-local slice; order across iterations is
// not observable.
func Scratch(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var tmp []int
		tmp = append(tmp, vs...)
		n += len(tmp)
	}
	return n
}

// Helper restores order through a local sort helper rather than the sort
// package directly.
func Helper(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sortInts(out)
	return out
}

func sortInts(xs []int) { sort.Ints(xs) }

// Ordered ranges over a slice, which iterates deterministically.
func Ordered(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
