// Package work exercises every edge of //custody:ignore parsing: trailing
// vs line-above placement, several suppressions in one comment, unknown
// rule names, and missing reasons.
package work

import (
	"errors"
	"time"
)

func run(t time.Time) error { return errors.New("x") }

// Trailing suppresses on the same line.
func Trailing() int64 {
	return time.Now().UnixNano() //custody:ignore detrand fixture pins trailing placement
}

// Above suppresses from the line above; this line fires two different
// rules and one comment carries both suppressions.
func Above() {
	//custody:ignore detrand clock is the fixture's point custody:ignore errdrop error carries no signal here
	_ = run(time.Now())
}

// Unknown names a rule that does not exist: the typo is reported and the
// errdrop finding survives.
func Unknown() {
	_ = run(time.Now()) //custody:ignore detrand pinned custody:ignore errdorp fat-fingered
}

// NoReason suppresses nothing and is itself reported.
func NoReason() {
	_ = run(time.Now()) //custody:ignore detrand pinned custody:ignore errdrop
}

// Bare is the degenerate form: no rule at all.
func Bare() {
	_ = run(time.Now()) //custody:ignore detrand pinned custody:ignore
}
