// Package p is a positive fixture: every recognized locking idiom around a
// //custody:guardedby field.
package p

import "sync"

// Table guards its rows behind a read-write mutex.
type Table struct {
	mu sync.RWMutex
	//custody:guardedby mu
	rows int
}

// Grow uses the canonical lock/defer-unlock shape.
func (t *Table) Grow() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows++
}

// Len takes the read side.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows
}

// Reset pairs lock and unlock in one block.
func (t *Table) Reset() {
	t.mu.Lock()
	t.rows = 0
	t.mu.Unlock()
}

// rowsLocked documents its precondition instead of locking.
//
//custody:holds mu
func (t *Table) rowsLocked() int { return t.rows }

// Snapshot calls the holds-annotated helper under the lock.
func (t *Table) Snapshot() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rowsLocked()
}

// Bootstrap runs before any goroutine exists; the access is deliberately
// unlocked and carries the mandatory reason.
func (t *Table) Bootstrap() {
	t.rows = 1 //custody:ignore guardedby single-threaded construction, no concurrent readers yet
}
