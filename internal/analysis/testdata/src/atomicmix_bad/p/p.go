// Package p is a negative fixture: fields and variables accessed both
// through sync/atomic and with plain loads/stores.
package p

import "sync/atomic"

var hits int64

// gauge mixes access styles on its level field.
type gauge struct {
	level int64
}

// Bump is the atomic side.
func Bump(g *gauge) {
	atomic.AddInt64(&g.level, 1)
	atomic.AddInt64(&hits, 1)
}

// Read is the racy side: plain loads of atomically-written state.
func Read(g *gauge) int64 {
	return g.level + hits
}

// Store is a racy plain write.
func Store(g *gauge) {
	g.level = 0
}
