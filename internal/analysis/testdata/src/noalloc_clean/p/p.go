// Package p is a positive fixture: //custody:noalloc functions doing only
// non-allocating work, with one reasoned suppression for a warm append.
package p

// ring is a preallocated buffer reused across rounds.
type ring struct {
	buf  []int
	next int
}

// push writes into the warm region of the buffer.
//
//custody:noalloc
func (r *ring) push(v int) {
	if r.next < len(r.buf) {
		r.buf[r.next] = v
		r.next++
		return
	}
	r.buf = append(r.buf, v) //custody:ignore noalloc buffer is preallocated to capacity in New; append never grows after warmup
	r.next++
}

// Sum chains to another annotated function — the transitive contract.
//
//custody:noalloc
func (r *ring) Sum() int {
	t := 0
	for i := 0; i < r.next; i++ {
		t += at(r.buf, i)
	}
	return t
}

// at is annotated, so Sum may call it.
//
//custody:noalloc
func at(xs []int, i int) int {
	if i < len(xs) {
		return xs[i]
	}
	return 0
}

// Reset uses only alloc-safe builtins.
//
//custody:noalloc
func (r *ring) Reset() {
	clear(r.buf)
	r.next = min(r.next, 0)
}

// New builds the ring; it is deliberately NOT annotated, so its
// allocations are fine.
func New(capacity int) *ring {
	return &ring{buf: make([]int, 0, capacity)}
}
