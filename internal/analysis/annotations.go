package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// This file builds the module-wide annotation index behind the concurrency
// and performance contracts:
//
//	//custody:guardedby <mutexField>  on a struct field: every access must be
//	                                  lexically inside a Lock/RLock span of
//	                                  the named sibling mutex, or in a method
//	                                  annotated //custody:holds.
//	//custody:holds <mutexField>...   on a method: callers guarantee the named
//	                                  receiver mutexes are held on entry.
//	//custody:noalloc                 on a function: its body must not contain
//	                                  allocating constructs (see NoAlloc).
//	//custody:workerpool <reason>     on a function: blesses fork-join
//	                                  goroutine spawns inside a
//	                                  single-threaded leaf; the function must
//	                                  join every spawn (contain a .Wait()
//	                                  call) before returning.
//
// Malformed annotations are diagnostics (rule "guardedby" or "noalloc"), the
// same never-rot policy as reasonless //custody:ignore suppressions.

// guardInfo describes one //custody:guardedby annotation.
type guardInfo struct {
	Mutex      string // sibling mutex field name
	StructName string // declaring struct type, for messages
	Field      string // annotated field name
}

// annIndex is the module-wide annotation table, built once per Module.
type annIndex struct {
	guarded    map[types.Object]guardInfo       // field object → its guard
	holds      map[types.Object]map[string]bool // func object → held mutex field names
	noalloc    map[types.Object]bool            // func object → //custody:noalloc
	workerpool map[types.Object]bool            // func object → //custody:workerpool
	bad        map[*Package][]Diagnostic        // malformed annotations, per declaring package
}

// annotations returns the module's annotation index, building it on first
// use. Run is sequential over packages, so no locking is needed.
func (m *Module) annotations() *annIndex {
	if m.ann != nil {
		return m.ann
	}
	idx := &annIndex{
		guarded:    map[types.Object]guardInfo{},
		holds:      map[types.Object]map[string]bool{},
		noalloc:    map[types.Object]bool{},
		workerpool: map[types.Object]bool{},
		bad:        map[*Package][]Diagnostic{},
	}
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			idx.collectFile(m, pkg, f)
		}
	}
	m.ann = idx
	return idx
}

// annotationLines extracts "custody:<verb> <args>" lines from a comment
// group, returning verb → trimmed args (last one wins per verb).
func annotationLines(cg *ast.CommentGroup) map[string]string {
	if cg == nil {
		return nil
	}
	var out map[string]string
	for _, c := range cg.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		for _, verb := range []string{"guardedby", "holds", "noalloc", "workerpool"} {
			if rest, ok := strings.CutPrefix(text, "custody:"+verb); ok {
				if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
					continue // e.g. custody:noallocX
				}
				if out == nil {
					out = map[string]string{}
				}
				out[verb] = strings.TrimSpace(rest)
			}
		}
	}
	return out
}

// collectFile harvests the annotations of one file into the index.
func (idx *annIndex) collectFile(m *Module, pkg *Package, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.TypeSpec:
			st, ok := d.Type.(*ast.StructType)
			if !ok {
				return true
			}
			idx.collectStruct(m, pkg, d.Name.Name, st)
			return false
		case *ast.FuncDecl:
			idx.collectFunc(m, pkg, d)
			return false
		}
		return true
	})
}

// collectStruct records //custody:guardedby annotations on the fields of one
// struct declaration, validating that the named mutex is a sibling field.
func (idx *annIndex) collectStruct(m *Module, pkg *Package, typeName string, st *ast.StructType) {
	fieldNames := map[string]bool{}
	for _, fld := range st.Fields.List {
		for _, name := range fld.Names {
			fieldNames[name.Name] = true
		}
	}
	for _, fld := range st.Fields.List {
		mutex, annotated := "", false
		for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
			if ann := annotationLines(cg); ann != nil {
				if v, ok := ann["guardedby"]; ok {
					mutex, annotated = v, true
				}
			}
		}
		if !annotated {
			continue
		}
		if mutex == "" {
			idx.bad[pkg] = append(idx.bad[pkg], Diagnostic{
				Pos: m.Fset.Position(fld.Pos()), Rule: "guardedby",
				Message: "custody:guardedby needs a mutex field name: //custody:guardedby <mutexField>",
			})
			continue
		}
		if !fieldNames[mutex] {
			idx.bad[pkg] = append(idx.bad[pkg], Diagnostic{
				Pos: m.Fset.Position(fld.Pos()), Rule: "guardedby",
				Message: fmt.Sprintf("custody:guardedby names %q, which is not a field of %s", mutex, typeName),
			})
			continue
		}
		if len(fld.Names) == 0 {
			idx.bad[pkg] = append(idx.bad[pkg], Diagnostic{
				Pos: m.Fset.Position(fld.Pos()), Rule: "guardedby",
				Message: "custody:guardedby on an embedded field is not supported; name the field",
			})
			continue
		}
		for _, name := range fld.Names {
			if pkg.Info == nil {
				continue
			}
			if obj := pkg.Info.Defs[name]; obj != nil {
				idx.guarded[obj] = guardInfo{Mutex: mutex, StructName: typeName, Field: name.Name}
			}
		}
	}
}

// collectFunc records //custody:holds and //custody:noalloc annotations on
// one function declaration.
func (idx *annIndex) collectFunc(m *Module, pkg *Package, fd *ast.FuncDecl) {
	ann := annotationLines(fd.Doc)
	if ann == nil {
		return
	}
	var obj types.Object
	if pkg.Info != nil {
		obj = pkg.Info.Defs[fd.Name]
	}
	if _, ok := ann["noalloc"]; ok && obj != nil {
		idx.noalloc[obj] = true
	}
	if reason, ok := ann["workerpool"]; ok {
		if reason == "" {
			idx.bad[pkg] = append(idx.bad[pkg], Diagnostic{
				Pos: m.Fset.Position(fd.Pos()), Rule: "goroutine",
				Message: "custody:workerpool needs a reason: //custody:workerpool <why this fork-join is deterministic>",
			})
		} else if obj != nil {
			idx.workerpool[obj] = true
		}
	}
	if fields, ok := ann["holds"]; ok {
		if fd.Recv == nil {
			idx.bad[pkg] = append(idx.bad[pkg], Diagnostic{
				Pos: m.Fset.Position(fd.Pos()), Rule: "guardedby",
				Message: "custody:holds is only meaningful on a method (it names receiver mutex fields)",
			})
			return
		}
		names := strings.Fields(fields)
		if len(names) == 0 {
			idx.bad[pkg] = append(idx.bad[pkg], Diagnostic{
				Pos: m.Fset.Position(fd.Pos()), Rule: "guardedby",
				Message: "custody:holds needs at least one mutex field name: //custody:holds <mutexField>",
			})
			return
		}
		if obj != nil {
			set := map[string]bool{}
			for _, n := range names {
				set[n] = true
			}
			idx.holds[obj] = set
		}
	}
}

// holdsFields returns the mutex field names a //custody:holds annotation
// declares held for fd, or nil.
func (m *Module) holdsFields(pkg *Package, fd *ast.FuncDecl) map[string]bool {
	if pkg.Info == nil {
		return nil
	}
	obj := pkg.Info.Defs[fd.Name]
	if obj == nil {
		return nil
	}
	return m.annotations().holds[obj]
}

// isWorkerPool reports whether the function object carries a reasoned
// //custody:workerpool annotation.
func (m *Module) isWorkerPool(obj types.Object) bool {
	if obj == nil {
		return false
	}
	return m.annotations().workerpool[obj]
}

// isNoAlloc reports whether the function object carries //custody:noalloc.
func (m *Module) isNoAlloc(obj types.Object) bool {
	if obj == nil {
		return false
	}
	return m.annotations().noalloc[obj]
}

// NoAllocFuncs returns the module-relative names of every function annotated
// //custody:noalloc, as "<pkg>.<recv.>name", sorted. Tests use it to pin
// that the static contract covers the paths the dynamic allocation pins
// cover.
func (m *Module) NoAllocFuncs() []string {
	idx := m.annotations()
	var out []string
	for obj := range idx.noalloc {
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		name := fn.Name()
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			name = recvTypeName(sig.Recv().Type()) + "." + name
		}
		pkgRel := strings.TrimPrefix(fn.Pkg().Path(), m.Path+"/")
		out = append(out, pkgRel+"."+name)
	}
	sort.Strings(out)
	return out
}

// recvTypeName names a receiver type with pointers stripped.
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}
