package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file implements the lexical lock-span tracking shared by the
// guardedby and lockorder analyzers. The model is deliberately lexical, not
// flow-sensitive: a mutex is "held" from a `x.Lock()` statement to the
// matching `x.Unlock()` in the same statement list, or to the end of the
// function when the unlock is deferred. Locks taken inside a nested block
// are considered released when the block ends (the common Go idioms —
// lock/defer-unlock at the top, or a paired lock/unlock in one block — are
// all recognized; exotic shapes need a //custody:ignore with a reason).

// heldEntry is one lexically-held mutex.
type heldEntry struct {
	canon string    // module-wide canonical name ("" when not canonicalizable)
	pos   token.Pos // the Lock call position
	read  bool      // RLock (read side) rather than Lock
}

// heldSet maps the lexical key of a mutex expression (types.ExprString of
// the receiver, e.g. "s.mu") to its held entry.
type heldSet map[string]heldEntry

func (h heldSet) clone() heldSet {
	c := make(heldSet, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// lockWalker walks one function body maintaining the held set.
type lockWalker struct {
	m   *Module
	pkg *Package

	// onExpr is invoked for every expression node outside nested function
	// literals, with the current held set. Used by guardedby.
	onExpr func(n ast.Node, held heldSet)

	// onLock is invoked when a Lock/RLock call is encountered, with the set
	// held at that moment (excluding the new lock). Used by lockorder.
	onLock func(canon string, pos token.Pos, held heldSet)
}

// walkFunc walks fd's body. initial seeds the held set (from
// //custody:holds annotations); keys are lexical, e.g. "c.mu".
func (w *lockWalker) walkFunc(fd *ast.FuncDecl, initial heldSet) {
	if fd.Body == nil {
		return
	}
	held := heldSet{}
	for k, v := range initial {
		held[k] = v
	}
	w.stmts(fd.Body.List, held)
}

func (w *lockWalker) stmts(list []ast.Stmt, held heldSet) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

// stmt processes one statement, mutating held for lock/unlock statements at
// this nesting level and recursing into control flow with cloned sets.
func (w *lockWalker) stmt(s ast.Stmt, held heldSet) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if key, canon, op, pos := w.lockOp(st.X); op != "" {
			switch op {
			case "Lock", "RLock":
				if w.onLock != nil {
					w.onLock(canon, pos, held)
				}
				held[key] = heldEntry{canon: canon, pos: pos, read: op == "RLock"}
			case "Unlock", "RUnlock":
				delete(held, key)
			}
			return
		}
		w.exprs(held, st.X)
	case *ast.DeferStmt:
		if _, _, op, _ := w.lockOp(st.Call); op == "Unlock" || op == "RUnlock" {
			return // deferred unlock: held to end of function
		}
		w.exprs(held, st.Call)
	case *ast.AssignStmt:
		w.exprs(held, exprsOf(st.Lhs, st.Rhs)...)
	case *ast.ReturnStmt:
		w.exprs(held, st.Results...)
	case *ast.IfStmt:
		inner := held.clone()
		if st.Init != nil {
			w.stmt(st.Init, inner)
		}
		w.exprs(inner, st.Cond)
		w.stmts(st.Body.List, inner.clone())
		if st.Else != nil {
			w.stmt(st.Else, inner.clone())
		}
	case *ast.ForStmt:
		inner := held.clone()
		if st.Init != nil {
			w.stmt(st.Init, inner)
		}
		if st.Cond != nil {
			w.exprs(inner, st.Cond)
		}
		if st.Post != nil {
			w.stmt(st.Post, inner)
		}
		w.stmts(st.Body.List, inner.clone())
	case *ast.RangeStmt:
		inner := held.clone()
		w.exprs(inner, st.X)
		w.stmts(st.Body.List, inner)
	case *ast.SwitchStmt:
		inner := held.clone()
		if st.Init != nil {
			w.stmt(st.Init, inner)
		}
		if st.Tag != nil {
			w.exprs(inner, st.Tag)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.exprs(inner, cc.List...)
				w.stmts(cc.Body, inner.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		inner := held.clone()
		if st.Init != nil {
			w.stmt(st.Init, inner)
		}
		w.stmt(st.Assign, inner)
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, inner.clone())
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				inner := held.clone()
				if cc.Comm != nil {
					w.stmt(cc.Comm, inner)
				}
				w.stmts(cc.Body, inner)
			}
		}
	case *ast.BlockStmt:
		w.stmts(st.List, held.clone())
	case *ast.LabeledStmt:
		w.stmt(st.Stmt, held)
	case *ast.GoStmt:
		w.exprs(held, st.Call)
	case *ast.SendStmt:
		w.exprs(held, st.Chan, st.Value)
	case *ast.IncDecStmt:
		w.exprs(held, st.X)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.exprs(held, vs.Values...)
				}
			}
		}
	}
}

func exprsOf(lists ...[]ast.Expr) []ast.Expr {
	var out []ast.Expr
	for _, l := range lists {
		out = append(out, l...)
	}
	return out
}

// exprs reports every expression node to onExpr, skipping nested function
// literals (their bodies execute at an unknown time, so the current held
// set does not apply; they are walked with an empty set).
func (w *lockWalker) exprs(held heldSet, es ...ast.Expr) {
	for _, e := range es {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				w.stmts(fl.Body.List, heldSet{})
				return false
			}
			if n != nil && w.onExpr != nil {
				w.onExpr(n, held)
			}
			return true
		})
	}
}

// lockOp recognizes a mutex Lock/Unlock/RLock/RUnlock call and returns the
// lexical key of the receiver, its canonical module-wide name, the
// operation, and the call position. op is "" for anything else.
func (w *lockWalker) lockOp(e ast.Expr) (key, canon, op string, pos token.Pos) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", "", "", token.NoPos
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", "", "", token.NoPos
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", "", token.NoPos
	}
	if !w.isSyncMethod(sel) {
		return "", "", "", token.NoPos
	}
	return types.ExprString(sel.X), w.canonMutex(sel.X), name, call.Pos()
}

// isSyncMethod reports whether the selected method is declared by the sync
// package (directly or promoted through an embedded sync.Mutex/RWMutex).
func (w *lockWalker) isSyncMethod(sel *ast.SelectorExpr) bool {
	if w.pkg.Info == nil {
		return false
	}
	obj := w.pkg.Info.Uses[sel.Sel]
	if obj == nil {
		if s, ok := w.pkg.Info.Selections[sel]; ok {
			obj = s.Obj()
		}
	}
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// canonMutex derives a module-wide canonical name for a mutex expression:
// "<Type>.<field>" for struct-field mutexes, "<pkg>.<var>" for package-level
// mutexes, or "" for locals and anything else (excluded from the
// acquisition graph but still tracked lexically).
func (w *lockWalker) canonMutex(mu ast.Expr) string {
	mu = ast.Unparen(mu)
	info := w.pkg.Info
	if info == nil {
		return ""
	}
	switch x := mu.(type) {
	case *ast.SelectorExpr:
		base := info.TypeOf(x.X)
		if base == nil {
			return ""
		}
		if name := recvTypeName(base); name != "" && !strings.Contains(name, " ") {
			return name + "." + x.Sel.Name
		}
	case *ast.Ident:
		obj := info.ObjectOf(x)
		if obj == nil || obj.Pkg() == nil {
			return ""
		}
		if obj.Parent() == obj.Pkg().Scope() {
			pkgRel := strings.TrimPrefix(obj.Pkg().Path(), w.m.Path+"/")
			return pkgRel + "." + x.Name
		}
	}
	return ""
}
