package analysis

import (
	"fmt"
	"go/ast"
	"strings"
)

// DetRand enforces the determinism contract on internal/ packages: the
// allocator, simulator, and their supporting layers must be pure functions
// of their inputs so that runs reproduce byte-for-byte. Ambient sources of
// nondeterminism — the global math/rand generators, wall-clock time, and
// environment variables — are banned inside internal/ (internal/xrand, the
// seeded generator that randomness must flow through, is exempt). cmd/ and
// examples/ sit at the edge of the system and may read clocks and flags.
type DetRand struct{}

// Name implements Analyzer.
func (DetRand) Name() string { return "detrand" }

// Doc implements Analyzer.
func (DetRand) Doc() string {
	return "forbid math/rand, time.Now/Since/After/NewTimer, os.Getenv, and os.Getpid inside internal/ " +
		"(outside internal/xrand); seeded randomness must be injected explicitly via internal/xrand"
}

// Run implements Analyzer.
func (DetRand) Run(m *Module, pkg *Package) []Diagnostic {
	prefix := m.Path + "/internal/"
	if !strings.HasPrefix(pkg.Path, prefix) {
		return nil
	}
	xrand := m.Path + "/internal/xrand"
	if pkg.Path == xrand || strings.HasPrefix(pkg.Path, xrand+"/") {
		return nil
	}

	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, spec := range f.Imports {
			p := strings.Trim(spec.Path.Value, `"`)
			if p == "math/rand" || p == "math/rand/v2" {
				diags = append(diags, Diagnostic{
					Pos:  m.Fset.Position(spec.Pos()),
					Rule: "detrand",
					Message: fmt.Sprintf("import of %s in internal code: use %s with an explicit seed "+
						"so results are reproducible", p, xrand),
				})
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			path := importedPackage(pkg, f, id)
			var msg string
			switch {
			case path == "time" && sel.Sel.Name == "Now":
				msg = "time.Now in internal code makes runs irreproducible; take the timestamp or a clock as a parameter"
			case path == "time" && sel.Sel.Name == "Since":
				msg = "time.Since reads the wall clock; take durations or a clock as a parameter"
			case path == "time" && (sel.Sel.Name == "After" || sel.Sel.Name == "NewTimer" || sel.Sel.Name == "Tick" || sel.Sel.Name == "NewTicker"):
				msg = "time." + sel.Sel.Name + " schedules on the wall clock; simulated time must flow through internal/event"
			case path == "os" && sel.Sel.Name == "Getenv":
				msg = "os.Getenv in internal code hides configuration from the caller; plumb the value through Options"
			case path == "os" && sel.Sel.Name == "Getpid":
				msg = "os.Getpid in internal code is ambient nondeterminism (a favorite accidental seed); plumb an explicit ID through Options"
			default:
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:     m.Fset.Position(sel.Pos()),
				Rule:    "detrand",
				Message: msg,
			})
			return true
		})
	}
	return diags
}
