// Package analysis implements custodylint, the project-specific static
// checks that keep the reproduction honest: determinism of the allocator
// hot paths, the package layering DAG, error-handling hygiene, and the
// concurrency-safety and allocation contracts that gate the sharded
// allocator. The checks are built on the standard library only (go/ast,
// go/parser, go/types) so the module keeps zero external dependencies.
//
// Nine analyzers are provided (see All):
//
//   - detrand: no ambient nondeterminism (math/rand, time.Now/Since and
//     the timer constructors, os.Getenv, os.Getpid) inside internal/
//     outside internal/xrand — seeded randomness, clocks, and
//     configuration must flow in explicitly.
//   - maporder: no ordering-sensitive work (appends, output, channel sends)
//     fed directly from map iteration unless the result is sorted in the
//     same function or the loop is annotated //custody:ordered.
//   - layering: the leaf layers (core, matching, maxflow, netsim, xrand)
//     must not import the orchestration layers (driver, experiments, sim,
//     manager) or cmd/*.
//   - errdrop: no silently discarded error returns outside tests — neither
//     `_ =` assignments, `var _ =` declarations, nor bare call statements.
//   - guardedby: fields annotated //custody:guardedby <mutexField> may only
//     be accessed inside a lexical Lock/Unlock (or RLock/RUnlock) span of
//     the named sibling mutex, or in a method annotated
//     //custody:holds <mutexField>.
//   - lockorder: the module-wide mutex acquisition graph must stay acyclic;
//     the blessed (deterministic topological) order is rendered by
//     LockOrderReport and `custodylint -lockreport`.
//   - goroutine: `go` statements must not capture loop variables, mutable
//     package state, or unguarded struct fields, and single-threaded leaf
//     packages (internal/core, internal/event, internal/obsv) stay free of
//     goroutines and channel operations entirely.
//   - noalloc: functions annotated //custody:noalloc must not contain
//     allocating constructs (append, make/new, composite and function
//     literals, string concatenation, interface boxing, fmt, go/defer) and
//     may only call other noalloc functions — the contract is transitive.
//   - atomicmix: state accessed through sync/atomic anywhere must be
//     accessed atomically everywhere.
//
// A finding can be suppressed with a trailing comment, or one on the line
// above, of the form
//
//	//custody:ignore <rule> <reason>
//
// where the reason is mandatory: suppressions without a reason are
// themselves diagnostics (rule "ignore"). One comment may carry several
// suppressions by repeating the custody:ignore marker.
//
// The full annotation vocabulary is //custody:guardedby, //custody:holds,
// //custody:noalloc, //custody:ordered, and //custody:ignore; malformed
// guardedby/holds/noalloc annotations are diagnostics in their own right,
// so annotations cannot rot silently.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, formatted as "file:line: [rule] message".
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Message)
}

// Analyzer is one custodylint rule.
type Analyzer interface {
	// Name is the rule identifier used in diagnostics and suppressions.
	Name() string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc() string
	// Run analyzes one package of the module and returns raw findings;
	// suppression filtering is applied by Run afterwards.
	Run(m *Module, pkg *Package) []Diagnostic
}

// All returns the full custodylint rule set: the PR-1 determinism/layering/
// error-handling suite plus the concurrency-safety and performance-contract
// suite (guardedby, lockorder, goroutine, noalloc, atomicmix) that gates
// the sharded-allocator transition.
func All() []Analyzer {
	return []Analyzer{
		DetRand{}, MapOrder{}, Layering{}, ErrDrop{},
		GuardedBy{}, LockOrder{}, Goroutine{}, NoAlloc{}, AtomicMix{},
	}
}

// Run executes the analyzers over every package of the module, applies
// //custody:ignore suppressions, and returns the surviving diagnostics
// sorted by position.
func Run(m *Module, analyzers []Analyzer) []Diagnostic {
	// The suppression vocabulary is always the full rule set: running a
	// filtered subset (custodylint -rule) must not turn suppressions of the
	// other rules into "unknown rule" diagnostics.
	known := map[string]bool{"ordered": true}
	for _, a := range All() {
		known[a.Name()] = true
	}
	for _, a := range analyzers {
		known[a.Name()] = true
	}

	var diags []Diagnostic
	suppress := map[suppressKey]bool{}
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			dirs, bad := parseDirectives(m.Fset, f, known)
			diags = append(diags, bad...)
			for _, d := range dirs {
				if d.kind != "ignore" {
					continue
				}
				// A directive covers its own line (trailing comment) and
				// the line below it (comment-above style).
				fn := m.Fset.Position(d.pos).Filename
				suppress[suppressKey{fn, d.line, d.rule}] = true
				suppress[suppressKey{fn, d.line + 1, d.rule}] = true
			}
		}
		for _, a := range analyzers {
			diags = append(diags, a.Run(m, pkg)...)
		}
	}

	kept := diags[:0]
	for _, d := range diags {
		if suppress[suppressKey{d.Pos.Filename, d.Pos.Line, d.Rule}] {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return kept
}

type suppressKey struct {
	file string
	line int
	rule string
}

// directive is one parsed //custody:... comment.
type directive struct {
	kind   string // "ignore" or "ordered"
	rule   string // for ignore: the rule being suppressed
	reason string
	line   int
	pos    token.Pos
}

// parseDirectives extracts //custody:ignore and //custody:ordered comments
// from a file. Malformed ignores (missing rule or reason, unknown rule) are
// returned as diagnostics under the "ignore" rule so that suppressions can
// never silently rot.
func parseDirectives(fset *token.FileSet, f *ast.File, known map[string]bool) ([]directive, []Diagnostic) {
	var dirs []directive
	var bad []Diagnostic
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			pos := fset.Position(c.Pos())
			switch {
			case strings.HasPrefix(text, "custody:ignore"):
				// One comment may carry several suppressions:
				//   //custody:ignore errdrop io best-effort custody:ignore detrand clock label
				// Each "custody:ignore" introduces a new <rule> <reason> pair.
				for _, rest := range strings.Split(text, "custody:ignore")[1:] {
					fields := strings.Fields(rest)
					if len(fields) == 0 {
						bad = append(bad, Diagnostic{Pos: pos, Rule: "ignore",
							Message: "custody:ignore needs a rule and a reason: //custody:ignore <rule> <reason>"})
						continue
					}
					rule := fields[0]
					if !known[rule] {
						bad = append(bad, Diagnostic{Pos: pos, Rule: "ignore",
							Message: fmt.Sprintf("custody:ignore names unknown rule %q", rule)})
						continue
					}
					reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), rule))
					if reason == "" {
						bad = append(bad, Diagnostic{Pos: pos, Rule: "ignore",
							Message: fmt.Sprintf("custody:ignore %s needs a reason: //custody:ignore %s <reason>", rule, rule)})
						continue
					}
					dirs = append(dirs, directive{kind: "ignore", rule: rule, reason: reason, line: pos.Line, pos: c.Pos()})
				}
			case strings.HasPrefix(text, "custody:ordered"):
				reason := strings.TrimSpace(strings.TrimPrefix(text, "custody:ordered"))
				dirs = append(dirs, directive{kind: "ordered", reason: reason, line: pos.Line, pos: c.Pos()})
			}
		}
	}
	return dirs, bad
}

// orderedLines returns the set of lines covered by //custody:ordered
// annotations in f: the annotation line itself and the line below it.
func orderedLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	dirs, _ := parseDirectives(fset, f, map[string]bool{})
	for _, d := range dirs {
		if d.kind == "ordered" {
			lines[d.line] = true
			lines[d.line+1] = true
		}
	}
	return lines
}

// importedPackage resolves the package an identifier refers to, returning
// its import path, or "" if the identifier is not a package name (e.g. it
// is shadowed by a local variable). Type information is used when present;
// otherwise the file's import table is consulted syntactically.
func importedPackage(pkg *Package, f *ast.File, id *ast.Ident) string {
	if pkg.Info != nil {
		if obj, ok := pkg.Info.Uses[id]; ok {
			if pn, ok := obj.(*types.PkgName); ok {
				return pn.Imported().Path()
			}
			return "" // resolved to something that is not a package
		}
	}
	for _, spec := range f.Imports {
		p := strings.Trim(spec.Path.Value, `"`)
		name := p
		if i := strings.LastIndex(p, "/"); i >= 0 {
			name = p[i+1:]
		}
		if spec.Name != nil {
			name = spec.Name.Name
		}
		if name == id.Name {
			return p
		}
	}
	return ""
}
