package analysis_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// loadFixture loads one testdata/src fixture tree as a module named
// "fixture" and runs the full rule set over it.
func loadFixture(t *testing.T, dir string) []analysis.Diagnostic {
	t.Helper()
	m, err := analysis.Load(dir, "fixture")
	if err != nil {
		t.Fatalf("Load(%s): %v", dir, err)
	}
	return analysis.Run(m, analysis.All())
}

// render reduces diagnostics to the golden "file:line: [rule]" triples so
// messages can be reworded without touching every expectation.
func render(diags []analysis.Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, fmt.Sprintf("%s:%d: [%s]", d.Pos.Filename, d.Pos.Line, d.Rule))
	}
	return out
}

// readExpect reads a fixture's expect.txt; a missing file means the
// fixture must be clean.
func readExpect(t *testing.T, dir string) []string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, "expect.txt"))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, line := range strings.Split(string(data), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			out = append(out, line)
		}
	}
	return out
}

// TestFixtures runs every analyzer over every fixture module and compares
// the diagnostics against the fixture's golden expect.txt. Diagnostics are
// emitted sorted by position, so the goldens are position-sorted too.
func TestFixtures(t *testing.T) {
	entries, err := os.ReadDir("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no fixtures under testdata/src")
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join("testdata/src", e.Name())
		t.Run(e.Name(), func(t *testing.T) {
			got := render(loadFixture(t, dir))
			want := readExpect(t, dir)
			if len(got) != len(want) {
				t.Fatalf("diagnostic count mismatch: got %d, want %d\ngot:\n  %s\nwant:\n  %s",
					len(got), len(want), strings.Join(got, "\n  "), strings.Join(want, "\n  "))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("diagnostic %d: got %q, want %q", i, got[i], want[i])
				}
			}
		})
	}
}

// TestRuleCoverage pins the acceptance criterion directly: each of the nine
// rules has a fixture where it fires and a sibling fixture that stays
// clean.
func TestRuleCoverage(t *testing.T) {
	for _, rule := range []string{
		"detrand", "maporder", "layering", "errdrop",
		"guardedby", "lockorder", "goroutine", "noalloc", "atomicmix",
	} {
		t.Run(rule, func(t *testing.T) {
			bad := filepath.Join("testdata/src", rule+"_bad")
			fired := false
			for _, d := range loadFixture(t, bad) {
				if d.Rule == rule {
					fired = true
					break
				}
			}
			if !fired {
				t.Errorf("rule %s did not fire on %s", rule, bad)
			}

			clean := filepath.Join("testdata/src", rule+"_clean")
			if diags := loadFixture(t, clean); len(diags) != 0 {
				t.Errorf("rule %s: %s is not clean: %v", rule, clean, render(diags))
			}
		})
	}
}

// TestSuppressionRequiresReason pins the suppression contract: a reasoned
// //custody:ignore silences the finding, a reasonless one does not and is
// itself reported.
func TestSuppressionRequiresReason(t *testing.T) {
	diags := loadFixture(t, filepath.Join("testdata/src", "errdrop_bad"))
	var ignores int
	for _, d := range diags {
		if d.Rule == "ignore" {
			ignores++
		}
	}
	if ignores != 2 {
		t.Errorf("expected 2 [ignore] diagnostics (missing reason + unknown rule), got %d", ignores)
	}

	clean := loadFixture(t, filepath.Join("testdata/src", "errdrop_clean"))
	if len(clean) != 0 {
		t.Errorf("reasoned suppression failed to silence findings: %v", render(clean))
	}
}

// TestSuppressionEdgeCases pins the corners of //custody:ignore parsing
// against the suppress_bad fixture: trailing and line-above placement both
// work, one comment can carry several suppressions, and unknown rules,
// missing reasons, and bare ignores are each reported without silencing
// the underlying finding.
func TestSuppressionEdgeCases(t *testing.T) {
	diags := loadFixture(t, filepath.Join("testdata/src", "suppress_bad"))

	var ignores, errdrops, detrands int
	for _, d := range diags {
		switch d.Rule {
		case "ignore":
			ignores++
		case "errdrop":
			errdrops++
		case "detrand":
			detrands++
		}
	}
	// Three malformed segments: unknown rule, missing reason, bare ignore.
	if ignores != 3 {
		t.Errorf("expected 3 [ignore] diagnostics, got %d:\n  %s", ignores, strings.Join(render(diags), "\n  "))
	}
	// Each malformed segment fails to suppress its errdrop finding.
	if errdrops != 3 {
		t.Errorf("expected 3 surviving [errdrop] findings, got %d:\n  %s", errdrops, strings.Join(render(diags), "\n  "))
	}
	// Every detrand finding is covered by a well-formed segment — including
	// the one sharing a comment with a malformed segment, and the
	// line-above comment carrying two suppressions at once.
	if detrands != 0 {
		t.Errorf("expected all detrand findings suppressed, got %d:\n  %s", detrands, strings.Join(render(diags), "\n  "))
	}
}

// TestLockOrderReportDeterministic pins the -lockreport contract: three
// independent loads of the same module render byte-identical reports, and
// the report names the blessed acquisition order.
func TestLockOrderReportDeterministic(t *testing.T) {
	dir := filepath.Join("testdata/src", "lockorder_clean")
	var first string
	for i := 0; i < 3; i++ {
		m, err := analysis.Load(dir, "fixture")
		if err != nil {
			t.Fatal(err)
		}
		got := analysis.LockOrderReport(m)
		if i == 0 {
			first = got
			continue
		}
		if got != first {
			t.Fatalf("report differs between runs:\n--- run 0 ---\n%s--- run %d ---\n%s", first, i, got)
		}
	}
	for _, want := range []string{
		"lockorder: 3 mutex(es)",
		"Broker.state -> Broker.queue",
		"blessed acquisition order:",
		"1. Broker.state",
	} {
		if !strings.Contains(first, want) {
			t.Errorf("report missing %q:\n%s", want, first)
		}
	}
	if strings.Contains(first, "cycle") {
		t.Errorf("clean fixture reported a cycle:\n%s", first)
	}
}

// TestLockOrderReportCoversCustodyd pins that the module's own blessed-
// order report names the custodyd server mutex: the service edge is the
// repo's first long-lived concurrent component, and its lock must be part
// of the machine-checked acquisition order.
func TestLockOrderReportCoversCustodyd(t *testing.T) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	m, err := analysis.LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	report := analysis.LockOrderReport(m)
	if !strings.Contains(report, "Server.mu") {
		t.Errorf("lock report does not cover custodyd's Server.mu:\n%s", report)
	}
	if strings.Contains(report, "cycle") {
		t.Errorf("module lock graph reports a cycle:\n%s", report)
	}
}

// TestNoAllocHotPathsAnnotated pins that the static //custody:noalloc
// contract covers the paths the dynamic allocation gates cover: the flight
// recorder's record path (TestRecordingDoesNotAllocate) and the allocator's
// pick/update chain (the benchreg allocs/op gate).
func TestNoAllocHotPathsAnnotated(t *testing.T) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	m, err := analysis.LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, name := range m.NoAllocFuncs() {
		got[name] = true
	}
	for _, want := range []string{
		// obsv record path.
		"internal/obsv.FlightRecorder.BeginRound",
		"internal/obsv.FlightRecorder.Decide",
		"internal/obsv.FlightRecorder.Grant",
		"internal/obsv.FlightRecorder.pushDecision",
		"internal/obsv.FlightRecorder.pushGrant",
		// core pick/update chain.
		"internal/core.allocator.run",
		"internal/core.allocator.assign",
		"internal/core.allocator.emitPick",
		"internal/core.allocator.minLocality",
		"internal/core.execPool.takeSlot",
		"internal/core.execPool.takeAny",
		"internal/core.execPool.takeOnAny",
		// event heap.
		"internal/event.Engine.push",
		"internal/event.Engine.popRoot",
		"internal/event.Engine.siftDown",
	} {
		if !got[want] {
			t.Errorf("hot-path function %s is not annotated //custody:noalloc (have: %v)", want, m.NoAllocFuncs())
		}
	}
}

// TestDiagnosticFormat pins the file:line: [rule] message contract the
// tooling (and CI log scraping) relies on.
func TestDiagnosticFormat(t *testing.T) {
	diags := loadFixture(t, filepath.Join("testdata/src", "layering_bad"))
	if len(diags) == 0 {
		t.Fatal("expected findings")
	}
	s := diags[0].String()
	if !strings.HasPrefix(s, "internal/core/core.go:6: [layering] ") {
		t.Errorf("diagnostic format changed: %q", s)
	}
}

// TestSelfLint runs custodylint over this repository: the module must stay
// clean. This is the machine-checked version of the determinism, layering,
// and error-handling contracts documented in DESIGN.md — a regression here
// means a contract was broken (or needs an annotated, reasoned exception).
func TestSelfLint(t *testing.T) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	m, err := analysis.LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range analysis.Run(m, analysis.All()) {
		t.Errorf("%s", d)
	}
}
