package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// Goroutine guards the transition from a deliberately single-threaded
// codebase to a concurrent one. Module-wide, it flags `go` statements whose
// function literals capture loop variables (per-iteration copies still
// interleave nondeterministically, and shared captures race) or mutable
// package-level state, and closure accesses to struct fields that are not
// //custody:guardedby-annotated. Inside the determinism-load-bearing leaves
// — internal/core, internal/event, internal/obsv — it bans goroutine
// spawns and channel operations outright: single-threaded execution is what
// makes golden traces byte-identical, so concurrency there must arrive with
// an explicit, reasoned annotation, not by accident.
//
// The one blessed exception is the fork-join worker pool: a function
// annotated //custody:workerpool <reason> may spawn goroutines in a leaf,
// provided it also joins them (contains a .Wait() call) before returning —
// the shape of core's sharded round build, where parallelism never escapes
// the round. The capture checks still apply to blessed spawns.
type Goroutine struct{}

// singleThreadedLeaves are internal packages where single-threaded
// determinism is load-bearing (golden traces, the event queue's total
// order, the zero-alloc flight recorder).
var singleThreadedLeaves = []string{"core", "event", "obsv"}

// Name implements Analyzer.
func (Goroutine) Name() string { return "goroutine" }

// Doc implements Analyzer.
func (Goroutine) Doc() string {
	return "forbid goroutines capturing loop variables, package-level state, or unguarded struct fields; " +
		"forbid goroutine spawns and channel ops in the single-threaded leaves (internal/core, event, obsv)"
}

// Run implements Analyzer.
func (Goroutine) Run(m *Module, pkg *Package) []Diagnostic {
	leaf := isSingleThreadedLeaf(m, pkg)
	diags := append([]Diagnostic(nil), filterRule(m.annotations().bad[pkg], "goroutine")...)
	for _, f := range pkg.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			switch s := n.(type) {
			case *ast.GoStmt:
				if leaf {
					switch fd := enclosingFuncDecl(stack); {
					case fd != nil && pkg.Info != nil && m.isWorkerPool(pkg.Info.Defs[fd.Name]):
						if !funcHasWaitJoin(fd) {
							diags = append(diags, Diagnostic{
								Pos:  m.Fset.Position(s.Pos()),
								Rule: "goroutine",
								Message: "//custody:workerpool function spawns a goroutine but never joins it " +
									"(no .Wait() call); the blessing covers fork-join only — join every spawn before returning",
							})
						}
					default:
						diags = append(diags, Diagnostic{
							Pos:  m.Fset.Position(s.Pos()),
							Rule: "goroutine",
							Message: "goroutine spawn in a single-threaded deterministic leaf; concurrency here breaks " +
								"golden-trace determinism — bless a fork-join with //custody:workerpool <reason>, " +
								"move orchestration up a layer, or suppress with a reason",
						})
					}
				}
				diags = append(diags, checkGoCaptures(m, pkg, s, stack)...)
			case *ast.SendStmt:
				if leaf {
					diags = append(diags, Diagnostic{
						Pos:  m.Fset.Position(s.Pos()),
						Rule: "goroutine",
						Message: "channel send in a single-threaded deterministic leaf; cross-goroutine " +
							"communication here breaks determinism — suppress with a reason if the channel is not shared",
					})
				}
			case *ast.UnaryExpr:
				if leaf && s.Op.String() == "<-" {
					diags = append(diags, Diagnostic{
						Pos:  m.Fset.Position(s.Pos()),
						Rule: "goroutine",
						Message: "channel receive in a single-threaded deterministic leaf; cross-goroutine " +
							"communication here breaks determinism — suppress with a reason if the channel is not shared",
					})
				}
			}
			return true
		})
	}
	return diags
}

// enclosingFuncDecl returns the innermost function declaration on the
// ancestor stack, or nil.
func enclosingFuncDecl(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

// funcHasWaitJoin reports whether the function body contains a .Wait()
// call — the join of a fork-join worker pool. The check is syntactic on
// purpose: the blessing demands the join be lexically present in the same
// function that forks, not delegated somewhere the reader cannot see.
func funcHasWaitJoin(fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				found = true
			}
		}
		return !found
	})
	return found
}

// isSingleThreadedLeaf reports whether pkg is one of the internal leaves
// where goroutines and channels are banned.
func isSingleThreadedLeaf(m *Module, pkg *Package) bool {
	rel, ok := strings.CutPrefix(pkg.Path, m.Path+"/internal/")
	if !ok {
		return false
	}
	layer := rel
	if i := strings.Index(rel, "/"); i >= 0 {
		layer = rel[:i]
	}
	for _, l := range singleThreadedLeaves {
		if l == layer {
			return true
		}
	}
	return false
}

// checkGoCaptures inspects a `go func(){...}()` literal for captures of
// loop variables, package-level mutable state, and unguarded struct fields.
func checkGoCaptures(m *Module, pkg *Package, g *ast.GoStmt, stack []ast.Node) []Diagnostic {
	fl, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok || pkg.Info == nil {
		return nil
	}
	loopVars := enclosingLoopVars(pkg, stack)
	guarded := m.annotations().guarded

	var diags []Diagnostic
	seen := map[types.Object]bool{}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			obj := pkg.Info.Uses[x]
			if obj == nil || seen[obj] {
				return true
			}
			if _, isVar := obj.(*types.Var); !isVar {
				return true
			}
			if obj.Pos() >= fl.Pos() && obj.Pos() <= fl.End() {
				return true // declared inside the literal
			}
			switch {
			case loopVars[obj]:
				seen[obj] = true
				diags = append(diags, Diagnostic{
					Pos:  m.Fset.Position(x.Pos()),
					Rule: "goroutine",
					Message: fmt.Sprintf("goroutine captures loop variable %q; iterations interleave "+
						"nondeterministically — pass it as an argument to the goroutine's function", x.Name),
				})
			case obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope():
				seen[obj] = true
				diags = append(diags, Diagnostic{
					Pos:  m.Fset.Position(x.Pos()),
					Rule: "goroutine",
					Message: fmt.Sprintf("goroutine captures mutable package-level state %q without a guard; "+
						"annotate the state //custody:guardedby under a struct, or pass a copy", x.Name),
				})
			}
		case *ast.SelectorExpr:
			// Field access through a captured base: require the field to be
			// guardedby-annotated (the guardedby rule then checks the span).
			base := rootIdent(x.X)
			if base == nil {
				return true
			}
			baseObj := pkg.Info.Uses[base]
			if baseObj == nil || baseObj.Pos() >= fl.Pos() && baseObj.Pos() <= fl.End() {
				return true // base declared inside the literal
			}
			fieldObj := pkg.Info.Uses[x.Sel]
			if fieldObj == nil {
				return true
			}
			fv, isVar := fieldObj.(*types.Var)
			if !isVar || !fv.IsField() {
				return true
			}
			if isSyncPrimitive(fv.Type()) {
				return true // mutexes, wait groups, etc. synchronize themselves
			}
			if _, ok := guarded[fieldObj]; ok {
				return true
			}
			if seen[fieldObj] {
				return true
			}
			seen[fieldObj] = true
			diags = append(diags, Diagnostic{
				Pos:  m.Fset.Position(x.Pos()),
				Rule: "goroutine",
				Message: fmt.Sprintf("goroutine accesses struct field %q through captured %q without a "+
					"//custody:guardedby annotation; shared mutable state needs a declared guard", x.Sel.Name, base.Name),
			})
		}
		return true
	})
	return diags
}

// isSyncPrimitive reports whether t is one of the self-synchronizing sync
// package types, which a goroutine may touch without a declared guard.
func isSyncPrimitive(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.String() {
	case "sync.Mutex", "sync.RWMutex", "sync.WaitGroup", "sync.Once", "sync.Map", "sync.Pool", "sync.Cond":
		return true
	}
	return false
}

// enclosingLoopVars collects the loop variables of every for/range
// statement on the ancestor stack.
func enclosingLoopVars(pkg *Package, stack []ast.Node) map[types.Object]bool {
	vars := map[types.Object]bool{}
	addIdent := func(e ast.Expr) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return
		}
		if obj := pkg.Info.Defs[id]; obj != nil {
			vars[obj] = true
		} else if obj := pkg.Info.Uses[id]; obj != nil {
			vars[obj] = true
		}
	}
	for _, n := range stack {
		switch s := n.(type) {
		case *ast.RangeStmt:
			if s.Key != nil {
				addIdent(s.Key)
			}
			if s.Value != nil {
				addIdent(s.Value)
			}
		case *ast.ForStmt:
			if init, ok := s.Init.(*ast.AssignStmt); ok {
				for _, lhs := range init.Lhs {
					addIdent(lhs)
				}
			}
		}
	}
	return vars
}
