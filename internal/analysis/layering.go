package analysis

import (
	"fmt"
	"strings"
)

// Layering enforces the import DAG that keeps the algorithmic kernel
// reusable and testable in isolation. The leaf layers — core, matching,
// maxflow, netsim, obsv, policy, xrand — hold pure algorithms over plain data and
// must never reach up into the orchestration layers (driver, experiments,
// sim, manager, custodyd) or into the binaries (cmd/*). Upward imports
// would drag simulation state, experiment configuration, or I/O into the
// hot paths and make the kernel impossible to verify against the paper's
// algorithms. obsv is the decision-provenance leaf: core, manager, and
// driver all feed it, so it must stay below them all. custodyd is the
// topmost internal layer — the allocation service wrapping driver and
// manager — so nothing below it may import it.
type Layering struct{}

// leafLayers are internal packages that must remain dependency leaves
// (they may import each other and utility leaves such as hdfs or metrics).
var leafLayers = []string{"core", "matching", "maxflow", "netsim", "obsv", "policy", "xrand"}

// forbiddenLayers are the orchestration packages leaves must not import.
var forbiddenLayers = []string{"driver", "experiments", "sim", "manager", "custodyd"}

// Name implements Analyzer.
func (Layering) Name() string { return "layering" }

// Doc implements Analyzer.
func (Layering) Doc() string {
	return "leaf layers (internal/core, matching, maxflow, netsim, obsv, policy, xrand) must not import " +
		"orchestration layers (internal/driver, experiments, sim, manager, custodyd) or cmd/*"
}

// Run implements Analyzer.
func (Layering) Run(m *Module, pkg *Package) []Diagnostic {
	rel, ok := strings.CutPrefix(pkg.Path, m.Path+"/internal/")
	if !ok {
		return nil
	}
	layer := rel
	if i := strings.Index(rel, "/"); i >= 0 {
		layer = rel[:i]
	}
	if !contains(leafLayers, layer) {
		return nil
	}

	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, spec := range f.Imports {
			ipath := strings.Trim(spec.Path.Value, `"`)
			bad := ""
			if irel, ok := strings.CutPrefix(ipath, m.Path+"/internal/"); ok {
				seg := irel
				if i := strings.Index(irel, "/"); i >= 0 {
					seg = irel[:i]
				}
				if contains(forbiddenLayers, seg) {
					bad = "internal/" + seg
				}
			}
			if strings.HasPrefix(ipath, m.Path+"/cmd/") {
				bad = "cmd/*"
			}
			if bad == "" {
				continue
			}
			diags = append(diags, Diagnostic{
				Pos:  m.Fset.Position(spec.Pos()),
				Rule: "layering",
				Message: fmt.Sprintf("leaf layer internal/%s must not import %s (import of %s breaks the layering DAG; "+
					"move shared types down or invert the dependency)", layer, bad, ipath),
			})
		}
	}
	return diags
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
