package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and (best-effort) type-checked package of the module
// under analysis. Test files (_test.go) are excluded: custodylint guards the
// production sources; tests are free to use wall clocks and ad-hoc ordering.
type Package struct {
	Path  string      // import path, e.g. "repro/internal/core"
	Dir   string      // absolute directory
	Files []*ast.File // non-test files, sorted by filename

	// Types and Info are filled by type checking. Checking is best-effort:
	// a package that fails to fully type-check still gets analyzed with
	// whatever information was recovered, and TypeErrors records what went
	// wrong. Analyzers must tolerate missing type information.
	Types      *types.Package
	Info       *types.Info
	TypeErrors []error
}

// Module is a whole Go module loaded for analysis.
type Module struct {
	Root     string // absolute module root directory
	Path     string // module path from go.mod (or caller-supplied)
	Fset     *token.FileSet
	Packages []*Package // sorted by import path

	byPath map[string]*Package

	// Lazily built module-wide indices shared by the analyzers. Run is
	// sequential over packages, so plain memoization suffices.
	ann    *annIndex
	locks  *lockGraph
	atomix *atomicIndex
}

// FindModuleRoot walks up from dir looking for a go.mod and returns the
// directory that contains it.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		abs = parent
	}
}

// LoadModule loads the module rooted at root, reading the module path from
// root/go.mod.
func LoadModule(root string) (*Module, error) {
	path, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	return Load(root, path)
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// Load parses every package under root (skipping testdata, hidden, and
// underscore-prefixed directories) and type-checks them in dependency order.
// modPath is used as the module path when mapping directories to import
// paths; it lets fixture trees without a go.mod be loaded as modules.
//
// Load walks the directory tree itself instead of shelling out to the go
// tool or depending on golang.org/x/tools/go/packages, so the module's
// go.mod stays dependency-free.
func Load(root, modPath string) (*Module, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	m := &Module{
		Root:   absRoot,
		Path:   modPath,
		Fset:   token.NewFileSet(),
		byPath: map[string]*Package{},
	}

	dirs := map[string][]string{} // dir -> .go files (non-test)
	err = filepath.WalkDir(absRoot, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if p != absRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		dir := filepath.Dir(p)
		dirs[dir] = append(dirs[dir], p)
		return nil
	})
	if err != nil {
		return nil, err
	}

	for dir, files := range dirs {
		rel, err := filepath.Rel(absRoot, dir)
		if err != nil {
			return nil, err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg := &Package{Path: importPath, Dir: dir}
		sort.Strings(files)
		for _, fp := range files {
			src, err := os.ReadFile(fp)
			if err != nil {
				return nil, err
			}
			relName, err := filepath.Rel(absRoot, fp)
			if err != nil {
				return nil, err
			}
			// Parse under the root-relative name so diagnostics print
			// stable, readable positions regardless of where the tool runs.
			f, err := parser.ParseFile(m.Fset, filepath.ToSlash(relName), src, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parse %s: %w", fp, err)
			}
			pkg.Files = append(pkg.Files, f)
		}
		m.Packages = append(m.Packages, pkg)
		m.byPath[importPath] = pkg
	}
	sort.Slice(m.Packages, func(i, j int) bool { return m.Packages[i].Path < m.Packages[j].Path })

	imp := &moduleImporter{
		m:        m,
		fallback: importer.ForCompiler(m.Fset, "source", nil),
		checking: map[string]bool{},
	}
	for _, pkg := range m.Packages {
		m.check(pkg, imp)
	}
	return m, nil
}

// moduleImporter resolves module-local import paths against the loaded
// packages (type-checking them on demand) and everything else — in practice
// the standard library — through the stdlib source importer.
type moduleImporter struct {
	m        *Module
	fallback types.Importer
	checking map[string]bool
}

func (imp *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := imp.m.byPath[path]; ok {
		if pkg.Types == nil {
			if imp.checking[path] {
				return nil, fmt.Errorf("import cycle through %s", path)
			}
			imp.m.check(pkg, imp)
		}
		return pkg.Types, nil
	}
	return imp.fallback.Import(path)
}

// check type-checks pkg, recording rather than failing on errors so that
// analysis stays best-effort on in-progress code.
func (m *Module) check(pkg *Package, imp *moduleImporter) {
	if pkg.Types != nil {
		return
	}
	imp.checking[pkg.Path] = true
	defer delete(imp.checking, pkg.Path)

	conf := types.Config{
		Importer:    imp,
		FakeImportC: true,
		Error:       func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tpkg, _ := conf.Check(pkg.Path, m.Fset, pkg.Files, pkg.Info) //custody:ignore errdrop type errors are collected via conf.Error; analysis is best-effort
	pkg.Types = tpkg                                             // non-nil even when Check reports errors
}
