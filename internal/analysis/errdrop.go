package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags silently dropped error returns outside tests: assignments
// that discard an error into the blank identifier, and call statements
// (including defer and go) whose error result is never looked at. Dropped
// errors turn I/O failures into silently truncated experiment reports.
//
// A small allowlist covers calls whose errors are conventionally
// meaningless: the fmt.Print family writing to stdout, and the never-failing
// writers strings.Builder and bytes.Buffer. Everything else needs handling
// or an explicit //custody:ignore errdrop <reason>.
type ErrDrop struct{}

// Name implements Analyzer.
func (ErrDrop) Name() string { return "errdrop" }

// Doc implements Analyzer.
func (ErrDrop) Doc() string {
	return "forbid _-discarded and entirely ignored error returns outside tests " +
		"(fmt.Print* to stdout and strings.Builder/bytes.Buffer writes are exempt)"
}

// Run implements Analyzer.
func (ErrDrop) Run(m *Module, pkg *Package) []Diagnostic {
	if pkg.Info == nil {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				diags = append(diags, checkAssign(m, pkg, s)...)
			case *ast.ExprStmt:
				diags = append(diags, checkIgnoredCall(m, pkg, f, s.X, "")...)
			case *ast.DeferStmt:
				diags = append(diags, checkIgnoredCall(m, pkg, f, s.Call, "deferred ")...)
			case *ast.GoStmt:
				diags = append(diags, checkIgnoredCall(m, pkg, f, s.Call, "spawned ")...)
			case *ast.ValueSpec:
				diags = append(diags, checkValueSpec(m, pkg, s)...)
			}
			return true
		})
	}
	return diags
}

// checkAssign flags blank-identifier positions that swallow an error, for
// both forms: `_ = f()` / `v, _ := f()` (one call, tuple results) and
// `a, _ := x, erroringCall()` (paired assignment).
func checkAssign(m *Module, pkg *Package, s *ast.AssignStmt) []Diagnostic {
	var diags []Diagnostic
	flag := func(call *ast.CallExpr) {
		diags = append(diags, Diagnostic{
			Pos:  m.Fset.Position(s.Pos()),
			Rule: "errdrop",
			Message: fmt.Sprintf("error result of %s discarded with _; handle it or suppress with "+
				"//custody:ignore errdrop <reason>", calleeString(call)),
		})
	}
	if len(s.Rhs) == 1 {
		call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return nil
		}
		results := resultTypes(pkg, call)
		for i, lhs := range s.Lhs {
			if isBlank(lhs) && i < len(results) && isErrorType(results[i]) {
				flag(call)
				break // one diagnostic per statement is enough
			}
		}
		return diags
	}
	for i, rhs := range s.Rhs {
		if i >= len(s.Lhs) || !isBlank(s.Lhs[i]) {
			continue
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		results := resultTypes(pkg, call)
		if len(results) == 1 && isErrorType(results[0]) {
			flag(call)
		}
	}
	return diags
}

// checkValueSpec flags the declaration form of a blank discard —
// `var _ = f()` and `var v, _ = f()` — which the AssignStmt path does
// not see. Both the tuple form (one call, several names) and the paired
// form (`var a, _ = x, erroringCall()`) are handled, mirroring checkAssign.
func checkValueSpec(m *Module, pkg *Package, s *ast.ValueSpec) []Diagnostic {
	var diags []Diagnostic
	if len(s.Values) == 1 && len(s.Names) >= 1 {
		call, ok := ast.Unparen(s.Values[0]).(*ast.CallExpr)
		if !ok {
			return nil
		}
		results := resultTypes(pkg, call)
		for i, name := range s.Names {
			if name.Name == "_" && i < len(results) && isErrorType(results[i]) {
				diags = append(diags, Diagnostic{
					Pos:  m.Fset.Position(s.Pos()),
					Rule: "errdrop",
					Message: fmt.Sprintf("error result of %s discarded with var _; handle it or suppress with "+
						"//custody:ignore errdrop <reason>", calleeString(call)),
				})
				break
			}
		}
		return diags
	}
	for i, v := range s.Values {
		if i >= len(s.Names) || s.Names[i].Name != "_" {
			continue
		}
		call, ok := ast.Unparen(v).(*ast.CallExpr)
		if !ok {
			continue
		}
		results := resultTypes(pkg, call)
		if len(results) == 1 && isErrorType(results[0]) {
			diags = append(diags, Diagnostic{
				Pos:  m.Fset.Position(s.Pos()),
				Rule: "errdrop",
				Message: fmt.Sprintf("error result of %s discarded with var _; handle it or suppress with "+
					"//custody:ignore errdrop <reason>", calleeString(call)),
			})
		}
	}
	return diags
}

// checkIgnoredCall flags expression/defer/go statements whose callee
// returns an error that nothing receives.
func checkIgnoredCall(m *Module, pkg *Package, f *ast.File, e ast.Expr, kind string) []Diagnostic {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	hasErr := false
	for _, t := range resultTypes(pkg, call) {
		if isErrorType(t) {
			hasErr = true
			break
		}
	}
	if !hasErr || allowlisted(pkg, f, call) {
		return nil
	}
	return []Diagnostic{{
		Pos:  m.Fset.Position(call.Pos()),
		Rule: "errdrop",
		Message: fmt.Sprintf("%scall to %s ignores its error result; handle it or suppress with "+
			"//custody:ignore errdrop <reason>", kind, calleeString(call)),
	}}
}

// resultTypes returns the result types of a call, or nil when type
// information is unavailable (analysis stays best-effort).
func resultTypes(pkg *Package, call *ast.CallExpr) []types.Type {
	if pkg.Info == nil {
		return nil
	}
	t := pkg.Info.TypeOf(call)
	if t == nil {
		return nil
	}
	if tuple, ok := t.(*types.Tuple); ok {
		out := make([]types.Type, tuple.Len())
		for i := 0; i < tuple.Len(); i++ {
			out[i] = tuple.At(i).Type()
		}
		return out
	}
	return []types.Type{t}
}

func isErrorType(t types.Type) bool {
	return t != nil && t.String() == "error"
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// allowlisted reports whether the call's error is conventionally
// meaningless: fmt prints to stdout/stderr, or writes into the
// never-failing strings.Builder / bytes.Buffer (directly via their methods
// or as the destination of a fmt.Fprint* call).
func allowlisted(pkg *Package, f *ast.File, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if isIdent && importedPackage(pkg, f, id) == "fmt" {
		name := sel.Sel.Name
		if name == "Print" || name == "Printf" || name == "Println" {
			return true
		}
		if strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 {
			return infallibleWriter(pkg, call.Args[0])
		}
		return false
	}
	// Method call: allow writes on the never-failing builders.
	if pkg.Info != nil {
		if rt := pkg.Info.TypeOf(sel.X); rt != nil {
			if isBuilderType(rt.String()) {
				return true
			}
		}
	}
	return false
}

// infallibleWriter reports whether the destination expression of a
// fmt.Fprint* call can never return a write error: os.Stdout/os.Stderr by
// convention, strings.Builder and bytes.Buffer by contract.
func infallibleWriter(pkg *Package, dst ast.Expr) bool {
	switch types.ExprString(ast.Unparen(dst)) {
	case "os.Stdout", "os.Stderr":
		return true
	}
	if pkg.Info != nil {
		if t := pkg.Info.TypeOf(dst); t != nil && isBuilderType(t.String()) {
			return true
		}
	}
	return false
}

func isBuilderType(s string) bool {
	return strings.HasSuffix(s, "strings.Builder") || strings.HasSuffix(s, "bytes.Buffer")
}

// calleeString renders the called expression for diagnostics.
func calleeString(call *ast.CallExpr) string {
	return types.ExprString(ast.Unparen(call.Fun))
}
