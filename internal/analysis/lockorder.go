package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// LockOrder builds the module-wide mutex acquisition graph — an edge A → B
// for every site that takes B while lexically holding A (including holds
// asserted by //custody:holds) — and rejects cycles: two call paths that
// acquire the same pair of mutexes in opposite orders can deadlock once the
// sharded allocator and custodyd run them on concurrent goroutines. The
// blessed (topological) acquisition order is printed deterministically by
// `custodylint -lockreport`; CI pins that three runs are byte-identical.
//
// Mutexes are canonicalized as "<Type>.<field>" (struct fields) or
// "<pkg>.<var>" (package-level); function-local mutexes never escape a
// single goroutine's scope and are excluded from the graph.
type LockOrder struct{}

// Name implements Analyzer.
func (LockOrder) Name() string { return "lockorder" }

// Doc implements Analyzer.
func (LockOrder) Doc() string {
	return "the module-wide mutex acquisition graph must be acyclic (a cycle is deadlock potential); " +
		"the blessed order is reported by custodylint -lockreport"
}

// lockEdge is one "B acquired while A held" observation.
type lockEdge struct {
	from, to string
}

// lockGraph is the module-wide acquisition graph.
type lockGraph struct {
	nodes map[string]bool
	edges map[lockEdge]token.Position // first (smallest-position) site per edge
	diags []Diagnostic                // cycle diagnostics
}

// lockGraphOf builds (once) the module's acquisition graph and its cycle
// diagnostics.
func lockGraphOf(m *Module) *lockGraph {
	if m.locks != nil {
		return m.locks
	}
	g := &lockGraph{nodes: map[string]bool{}, edges: map[lockEdge]token.Position{}}
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				g.collect(m, pkg, fd)
			}
		}
	}
	g.diags = g.cycleDiagnostics()
	m.locks = g
	return g
}

// collect walks one function recording acquisitions and held-while edges.
func (g *lockGraph) collect(m *Module, pkg *Package, fd *ast.FuncDecl) {
	initial := heldSet{}
	if holds := m.holdsFields(pkg, fd); holds != nil {
		if recv := receiverName(fd); recv != "" {
			for field := range holds {
				initial[recv+"."+field] = heldEntry{canon: holdsCanon(pkg, fd, field)}
			}
		}
	}
	w := &lockWalker{m: m, pkg: pkg}
	w.onLock = func(canon string, pos token.Pos, held heldSet) {
		if canon == "" {
			return
		}
		g.nodes[canon] = true
		p := m.Fset.Position(pos)
		for _, h := range held {
			if h.canon == "" || h.canon == canon {
				continue
			}
			e := lockEdge{from: h.canon, to: canon}
			if old, ok := g.edges[e]; !ok || posLess(p, old) {
				g.edges[e] = p
			}
			g.nodes[h.canon] = true
		}
	}
	w.walkFunc(fd, initial)
}

// holdsCanon canonicalizes a //custody:holds field as "<RecvType>.<field>".
func holdsCanon(pkg *Package, fd *ast.FuncDecl, field string) string {
	if pkg.Info == nil || fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := pkg.Info.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return ""
	}
	return recvTypeName(t) + "." + field
}

func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

// cycleDiagnostics finds strongly connected components with more than one
// node (or a self-edge) and emits one deterministic diagnostic per cycle,
// anchored at the smallest edge site inside it.
func (g *lockGraph) cycleDiagnostics() []Diagnostic {
	nodes := g.sortedNodes()
	adj := map[string][]string{}
	//custody:ordered every adjacency list is sorted in the loop below
	for e := range g.edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	for _, vs := range adj {
		sort.Strings(vs)
	}

	// Tarjan's SCC, iterative over deterministically sorted nodes.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, wv := range adj[v] {
			if _, seen := index[wv]; !seen {
				strongconnect(wv)
				if low[wv] < low[v] {
					low[v] = low[wv]
				}
			} else if onStack[wv] {
				if index[wv] < low[v] {
					low[v] = index[wv]
				}
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}

	var diags []Diagnostic
	for _, scc := range sccs {
		if len(scc) == 1 {
			v := scc[0]
			if _, self := g.edges[lockEdge{from: v, to: v}]; !self {
				continue
			}
		}
		sort.Strings(scc)
		inSCC := map[string]bool{}
		for _, v := range scc {
			inSCC[v] = true
		}
		var at token.Position
		first := true
		for e, p := range g.edges {
			if !inSCC[e.from] || !inSCC[e.to] {
				continue
			}
			if first || posLess(p, at) {
				at = p
				first = false
			}
		}
		diags = append(diags, Diagnostic{
			Pos:  at,
			Rule: "lockorder",
			Message: fmt.Sprintf("mutex acquisition cycle {%s}: these mutexes are taken in conflicting orders "+
				"(deadlock potential); pick one blessed order (see custodylint -lockreport) and restructure",
				strings.Join(scc, ", ")),
		})
	}
	sort.Slice(diags, func(i, j int) bool { return posLess(diags[i].Pos, diags[j].Pos) })
	return diags
}

func (g *lockGraph) sortedNodes() []string {
	nodes := make([]string, 0, len(g.nodes))
	for n := range g.nodes {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	return nodes
}

// Run implements Analyzer. The graph is module-wide; each cycle diagnostic
// is emitted by the package that owns the file it is anchored in, so every
// diagnostic appears exactly once.
func (LockOrder) Run(m *Module, pkg *Package) []Diagnostic {
	g := lockGraphOf(m)
	if len(g.diags) == 0 {
		return nil
	}
	files := map[string]bool{}
	for _, f := range pkg.Files {
		files[m.Fset.Position(f.Pos()).Filename] = true
	}
	var out []Diagnostic
	for _, d := range g.diags {
		if files[d.Pos.Filename] {
			out = append(out, d)
		}
	}
	return out
}

// LockOrderReport renders the module's mutex acquisition graph: every
// mutex, every held-while edge with its first site, and the blessed
// (topological) acquisition order. The output is deterministic —
// byte-identical across runs — so CI can diff it; cycles are reported in
// place of an order when present.
func LockOrderReport(m *Module) string {
	g := lockGraphOf(m)
	var b strings.Builder
	nodes := g.sortedNodes()
	fmt.Fprintf(&b, "lockorder: %d mutex(es), %d edge(s)\n", len(nodes), len(g.edges))

	type edgeAt struct {
		e lockEdge
		p token.Position
	}
	edges := make([]edgeAt, 0, len(g.edges))
	for e, p := range g.edges {
		edges = append(edges, edgeAt{e, p})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].e.from != edges[j].e.from {
			return edges[i].e.from < edges[j].e.from
		}
		return edges[i].e.to < edges[j].e.to
	})
	if len(edges) > 0 {
		b.WriteString("edges (A -> B: B acquired while A held):\n")
		for _, ea := range edges {
			fmt.Fprintf(&b, "  %s -> %s (%s:%d)\n", ea.e.from, ea.e.to, ea.p.Filename, ea.p.Line)
		}
	}

	if len(g.diags) > 0 {
		b.WriteString("cycles:\n")
		for _, d := range g.diags {
			fmt.Fprintf(&b, "  %s\n", d.Message)
		}
		return b.String()
	}

	// Kahn's algorithm with a sorted ready set: the deterministic blessed
	// order. Mutexes not constrained by any edge sort to wherever their
	// name places them in the ready set.
	indeg := map[string]int{}
	out := map[string][]string{}
	for _, n := range nodes {
		indeg[n] = 0
	}
	//custody:ordered successor lists are sorted before use in the Kahn loop
	for e := range g.edges {
		indeg[e.to]++
		out[e.from] = append(out[e.from], e.to)
	}
	ready := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if indeg[n] == 0 {
			ready = append(ready, n)
		}
	}
	sort.Strings(ready)
	b.WriteString("blessed acquisition order:\n")
	rank := 1
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		fmt.Fprintf(&b, "  %d. %s\n", rank, n)
		rank++
		next := out[n]
		sort.Strings(next)
		for _, v := range next {
			indeg[v]--
			if indeg[v] == 0 {
				ready = append(ready, v)
			}
		}
		sort.Strings(ready)
	}
	if rank == 1 {
		b.WriteString("  (no mutexes in the module)\n")
	}
	return b.String()
}
