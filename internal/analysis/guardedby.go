package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// GuardedBy enforces the //custody:guardedby <mutexField> field annotation:
// every read or write of an annotated struct field must be lexically inside
// a Lock/Unlock (or RLock/RUnlock) span of the named sibling mutex on the
// same receiver expression, or inside a method annotated
// //custody:holds <mutexField> (callers guarantee the lock). The sharded
// allocator and custodyd turn today's single-threaded state into shared
// state; this rule makes the locking discipline a compile-gate instead of a
// race-detector lottery.
//
// The span model is lexical (see spans.go): lock/defer-unlock at the top of
// a function and paired lock/unlock in one block are recognized; aliased
// receivers and cross-function lock passing need //custody:holds or a
// reasoned //custody:ignore.
type GuardedBy struct{}

// Name implements Analyzer.
func (GuardedBy) Name() string { return "guardedby" }

// Doc implements Analyzer.
func (GuardedBy) Doc() string {
	return "fields annotated //custody:guardedby <mutexField> may only be accessed inside a lexical " +
		"Lock/Unlock span of that mutex or in a method annotated //custody:holds <mutexField>"
}

// Run implements Analyzer.
func (GuardedBy) Run(m *Module, pkg *Package) []Diagnostic {
	idx := m.annotations()
	diags := append([]Diagnostic(nil), filterRule(idx.bad[pkg], "guardedby")...)
	if pkg.Info == nil {
		return diags
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			diags = append(diags, checkGuardedFunc(m, pkg, fd, idx)...)
		}
	}
	return diags
}

// filterRule keeps only the diagnostics of one rule.
func filterRule(diags []Diagnostic, rule string) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Rule == rule {
			out = append(out, d)
		}
	}
	return out
}

// checkGuardedFunc walks one function with lexical lock tracking and flags
// guarded-field accesses outside their mutex span.
func checkGuardedFunc(m *Module, pkg *Package, fd *ast.FuncDecl, idx *annIndex) []Diagnostic {
	var diags []Diagnostic
	initial := heldSet{}
	if holds := m.holdsFields(pkg, fd); holds != nil {
		if recv := receiverName(fd); recv != "" {
			for field := range holds {
				initial[recv+"."+field] = heldEntry{}
			}
		}
	}
	w := &lockWalker{m: m, pkg: pkg}
	w.onExpr = func(n ast.Node, held heldSet) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return
		}
		obj := pkg.Info.Uses[sel.Sel]
		if obj == nil {
			return
		}
		guard, guarded := idx.guarded[obj]
		if !guarded {
			return
		}
		key := types.ExprString(sel.X) + "." + guard.Mutex
		if _, ok := held[key]; ok {
			return
		}
		diags = append(diags, Diagnostic{
			Pos:  m.Fset.Position(sel.Pos()),
			Rule: "guardedby",
			Message: fmt.Sprintf("%s.%s is annotated //custody:guardedby %s but is accessed without %s held; "+
				"wrap the access in %s.Lock()/Unlock(), annotate the method //custody:holds %s, or suppress with a reason",
				guard.StructName, guard.Field, guard.Mutex, key, key, guard.Mutex),
		})
	}
	w.walkFunc(fd, initial)
	return diags
}

// receiverName returns the name of fd's receiver variable, or "".
func receiverName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}
