// Package xrand provides a small, fast, deterministic random number
// generator for simulations.
//
// It is built on SplitMix64, which has excellent statistical properties for
// simulation purposes, a tiny state, and — crucially for reproducible
// experiments — supports cheap forking of independent sub-streams keyed by a
// label. Forked streams let each subsystem (placement, arrivals, task
// durations, ...) consume randomness without perturbing the others, so adding
// a consumer does not change every downstream result.
package xrand

import "math"

// Rand is a deterministic pseudo-random number generator.
// The zero value is a valid generator seeded with 0.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// splitmix64 advances the state and returns the next 64 random bits.
func (r *Rand) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 { return r.next() }

// Fork returns a new generator whose stream is independent of r's and is
// determined by r's seed and the label. Forking does not advance r.
func (r *Rand) Fork(label string) *Rand {
	h := r.state ^ 0x51A7C0DE00C0FFEE
	for i := 0; i < len(label); i++ {
		h = (h ^ uint64(label[i])) * 0x100000001B3
	}
	// Scramble once so similar labels diverge fully.
	s := &Rand{state: h}
	return &Rand{state: s.next()}
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). Panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(r.next() % uint64(n))
}

// Int63 returns a non-negative 63-bit value.
func (r *Rand) Int63() int64 {
	return int64(r.next() >> 1)
}

// Range returns a uniform float in [lo, hi).
func (r *Rand) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// IntRange returns a uniform int in [lo, hi]. Panics if hi < lo.
func (r *Rand) IntRange(lo, hi int) int {
	if hi < lo {
		panic("xrand: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Exp returns an exponentially distributed value with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles s in place (Fisher–Yates).
func (r *Rand) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns k distinct values drawn uniformly from [0, n).
// Panics if k > n or k < 0.
func (r *Rand) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("xrand: Sample with k out of range")
	}
	if k == 0 {
		return nil
	}
	// Partial Fisher–Yates over an index map keeps this O(k) in space for
	// small k and O(n) at worst.
	if k*4 >= n {
		p := r.Perm(n)
		return p[:k]
	}
	chosen := make(map[int]int, k)
	out := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		vj, ok := chosen[j]
		if !ok {
			vj = j
		}
		vi, ok := chosen[i]
		if !ok {
			vi = i
		}
		out[i] = vj
		chosen[j] = vi
	}
	return out
}

// Pareto returns a bounded Pareto-ish heavy-tailed value with the given
// minimum and shape alpha (>0). Used for skewed popularity distributions.
func (r *Rand) Pareto(min, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return min / math.Pow(u, 1/alpha)
}

// Zipf draws a value in [0, n) with probability proportional to
// 1/(rank+1)^s using inverse-CDF sampling over precomputed weights.
type Zipf struct {
	cdf []float64
	r   *Rand
}

// NewZipf builds a Zipf sampler over n items with exponent s (s >= 0).
func NewZipf(r *Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with n <= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, r: r}
}

// Next returns the next Zipf-distributed rank in [0, n).
func (z *Zipf) Next() int {
	u := z.r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
