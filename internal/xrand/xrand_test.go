package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with same seed diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestForkIndependence(t *testing.T) {
	r := New(7)
	f1 := r.Fork("alpha")
	f2 := r.Fork("beta")
	f1again := r.Fork("alpha")
	if f1.Uint64() != f1again.Uint64() {
		t.Fatal("Fork with same label not reproducible")
	}
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("Fork with different labels produced same stream")
	}
	// Forking must not advance the parent.
	before := New(7).Uint64()
	if r.Uint64() != before {
		t.Fatal("Fork advanced parent state")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	seen := make([]bool, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) out of range: %d", v)
		}
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("Intn(10) never produced %d", i)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	r := New(13)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(4.0)
	}
	mean := sum / n
	if math.Abs(mean-4.0) > 0.1 {
		t.Fatalf("Exp(4) mean = %v, want ~4", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(19)
	for _, tc := range []struct{ n, k int }{{10, 0}, {10, 1}, {10, 3}, {10, 10}, {1000, 5}, {1000, 900}} {
		s := r.Sample(tc.n, tc.k)
		if len(s) != tc.k {
			t.Fatalf("Sample(%d,%d) returned %d values", tc.n, tc.k, len(s))
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= tc.n {
				t.Fatalf("Sample(%d,%d) value %d out of range", tc.n, tc.k, v)
			}
			if seen[v] {
				t.Fatalf("Sample(%d,%d) repeated %d", tc.n, tc.k, v)
			}
			seen[v] = true
		}
	}
}

func TestSampleUniformish(t *testing.T) {
	r := New(23)
	counts := make([]int, 20)
	const trials = 20000
	for i := 0; i < trials; i++ {
		for _, v := range r.Sample(20, 3) {
			counts[v]++
		}
	}
	want := float64(trials) * 3 / 20
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Fatalf("Sample index %d drawn %d times, want ~%v", i, c, want)
		}
	}
}

func TestIntRange(t *testing.T) {
	r := New(29)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(4, 8)
		if v < 4 || v > 8 {
			t.Fatalf("IntRange(4,8) = %d", v)
		}
	}
	if v := r.IntRange(5, 5); v != 5 {
		t.Fatalf("IntRange(5,5) = %d", v)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(31)
	z := NewZipf(r, 100, 1.2)
	counts := make([]int, 100)
	for i := 0; i < 50000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("Zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
	if counts[0] == 0 || counts[99] < 0 {
		t.Fatal("Zipf produced impossible counts")
	}
}

func TestZipfZeroExponentUniform(t *testing.T) {
	r := New(37)
	z := NewZipf(r, 10, 0)
	counts := make([]int, 10)
	const trials = 50000
	for i := 0; i < trials; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-trials/10) > trials/10*0.1 {
			t.Fatalf("Zipf(s=0) not uniform at %d: %d", i, c)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(41)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate %v", frac)
	}
}

// Property: Sample(n, k) always returns k distinct in-range values.
func TestQuickSample(t *testing.T) {
	f := func(seed uint64, nRaw, kRaw uint16) bool {
		n := int(nRaw%500) + 1
		k := int(kRaw) % (n + 1)
		s := New(seed).Sample(n, k)
		if len(s) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Exp never returns negative or NaN values.
func TestQuickExpPositive(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 100; i++ {
			v := r.Exp(4)
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
