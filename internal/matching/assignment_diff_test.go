package matching

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

// The assignment differential battery stresses MaxWeightAssignment on the
// full ≤7×7 envelope the locmatch policy uses — mixed-sign weights, random
// forbidden pairs, rectangular shapes — against the exhaustive bruteAssign
// oracle, and verifies every structural property of the returned
// assignment, not just its total.

// checkAssignment verifies assign is injective, respects forbidden pairs,
// never picks a negative weight, and sums to total.
func checkAssignment(t *testing.T, w [][]float64, assign []int, total float64) {
	t.Helper()
	if len(assign) != len(w) {
		t.Fatalf("assign has %d rows, want %d", len(assign), len(w))
	}
	usedR := map[int]bool{}
	sum := 0.0
	for i, j := range assign {
		if j == -1 {
			continue
		}
		if j < 0 || j >= len(w[i]) {
			t.Fatalf("row %d assigned to out-of-range column %d", i, j)
		}
		if usedR[j] {
			t.Fatalf("column %d assigned twice", j)
		}
		usedR[j] = true
		if math.IsInf(w[i][j], -1) {
			t.Fatalf("row %d assigned to forbidden column %d", i, j)
		}
		if w[i][j] < 0 {
			t.Fatalf("row %d assigned to negative-weight column %d (w=%v); skipping pays 0", i, j, w[i][j])
		}
		sum += w[i][j]
	}
	if math.Abs(sum-total) > 1e-9 {
		t.Fatalf("returned total %v but chosen weights sum to %v", total, sum)
	}
}

// genWeights draws one ≤7×7 mixed-sign instance. Integer weights keep the
// float comparison exact.
func genWeights(rng *xrand.Rand) [][]float64 {
	nl := rng.IntRange(1, 7)
	nr := rng.IntRange(1, 7)
	w := make([][]float64, nl)
	for i := range w {
		w[i] = make([]float64, nr)
		for j := range w[i] {
			switch {
			case rng.Bool(0.2):
				w[i][j] = math.Inf(-1)
			default:
				w[i][j] = float64(rng.IntRange(-10, 20))
			}
		}
	}
	return w
}

// TestMaxWeightAssignmentDifferential: optimal total and valid structure on
// every random instance.
func TestMaxWeightAssignmentDifferential(t *testing.T) {
	for seed := uint64(1); seed <= 300; seed++ {
		rng := xrand.New(seed).Fork("assign-diff")
		w := genWeights(rng)
		assign, total := MaxWeightAssignment(w)
		checkAssignment(t, w, assign, total)
		if want := bruteAssign(w); math.Abs(total-want) > 1e-9 {
			t.Fatalf("seed %d: total = %v, oracle says %v (w=%v)", seed, total, want, w)
		}
	}
}

// FuzzMaxWeightAssignment drives the same differential from fuzzer-chosen
// bytes: each byte encodes one cell (high bits select forbidden), the first
// byte the shape.
func FuzzMaxWeightAssignment(f *testing.F) {
	f.Add([]byte{0x23, 10, 200, 3, 0x80, 7})
	f.Add([]byte{0x77, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 1 {
			return
		}
		nl := 1 + int(data[0]>>4)%7
		nr := 1 + int(data[0])%7
		w := make([][]float64, nl)
		k := 1
		for i := range w {
			w[i] = make([]float64, nr)
			for j := range w[i] {
				var b byte
				if k < len(data) {
					b = data[k]
					k++
				}
				if b >= 0xF0 {
					w[i][j] = math.Inf(-1)
				} else {
					w[i][j] = float64(int(b)%31 - 10)
				}
			}
		}
		assign, total := MaxWeightAssignment(w)
		checkAssignment(t, w, assign, total)
		if want := bruteAssign(w); math.Abs(total-want) > 1e-9 {
			t.Fatalf("total = %v, oracle says %v (w=%v)", total, want, w)
		}
	})
}
