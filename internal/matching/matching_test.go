package matching

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestHopcroftKarpPerfect(t *testing.T) {
	adj := [][]int{{0, 1}, {1, 2}, {2, 0}}
	_, size := HopcroftKarp(3, 3, adj)
	if size != 3 {
		t.Fatalf("size = %d, want 3", size)
	}
}

func TestHopcroftKarpBottleneck(t *testing.T) {
	// All three left vertices share a single right vertex.
	adj := [][]int{{0}, {0}, {0}}
	matchL, size := HopcroftKarp(3, 1, adj)
	if size != 1 {
		t.Fatalf("size = %d, want 1", size)
	}
	matched := 0
	for _, m := range matchL {
		if m != -1 {
			matched++
		}
	}
	if matched != 1 {
		t.Fatalf("matched %d left vertices, want 1", matched)
	}
}

func TestHopcroftKarpEmpty(t *testing.T) {
	if _, size := HopcroftKarp(0, 0, nil); size != 0 {
		t.Fatalf("empty graph size = %d", size)
	}
	adj := [][]int{{}, {}}
	if _, size := HopcroftKarp(2, 3, adj); size != 0 {
		t.Fatalf("edgeless graph size = %d", size)
	}
}

func TestHopcroftKarpAugmenting(t *testing.T) {
	// Requires an augmenting path: greedy left-to-right would match
	// 0→0, 1 stuck; HK must re-route 0→1, 1→0.
	adj := [][]int{{0, 1}, {0}}
	_, size := HopcroftKarp(2, 2, adj)
	if size != 2 {
		t.Fatalf("size = %d, want 2 (needs augmenting path)", size)
	}
}

// brute-force maximum matching by bitmask DP over right side.
func bruteMatch(nLeft, nRight int, adj [][]int) int {
	best := 0
	var rec func(u, usedMask, count int)
	rec = func(u, usedMask, count int) {
		if count+(nLeft-u) <= best {
			return
		}
		if u == nLeft {
			if count > best {
				best = count
			}
			return
		}
		rec(u+1, usedMask, count)
		for _, v := range adj[u] {
			if usedMask&(1<<v) == 0 {
				rec(u+1, usedMask|1<<v, count+1)
			}
		}
	}
	rec(0, 0, 0)
	return best
}

// Property: HK matches brute force on random small graphs and returns a
// consistent matching.
func TestQuickHopcroftKarp(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		nl := rng.IntRange(1, 7)
		nr := rng.IntRange(1, 7)
		adj := make([][]int, nl)
		for u := 0; u < nl; u++ {
			for v := 0; v < nr; v++ {
				if rng.Bool(0.4) {
					adj[u] = append(adj[u], v)
				}
			}
		}
		matchL, size := HopcroftKarp(nl, nr, adj)
		if size != bruteMatch(nl, nr, adj) {
			return false
		}
		// Validity: matched pairs must be edges and right side distinct.
		usedR := map[int]bool{}
		count := 0
		for u, v := range matchL {
			if v == -1 {
				continue
			}
			count++
			ok := false
			for _, w := range adj[u] {
				if w == v {
					ok = true
				}
			}
			if !ok || usedR[v] {
				return false
			}
			usedR[v] = true
		}
		return count == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHungarianSimple(t *testing.T) {
	w := [][]float64{
		{3, 1},
		{1, 3},
	}
	assign, total := MaxWeightAssignment(w)
	if total != 6 {
		t.Fatalf("total = %v, want 6", total)
	}
	if assign[0] != 0 || assign[1] != 1 {
		t.Fatalf("assign = %v", assign)
	}
}

func TestHungarianAntiGreedy(t *testing.T) {
	// Greedy takes (0,0)=10 then (1,1)=1 → 11; optimal is 9+8=17? no:
	// weights chosen so optimal differs from greedy.
	w := [][]float64{
		{10, 9},
		{9, 1},
	}
	_, total := MaxWeightAssignment(w)
	if total != 18 { // (0,1)+(1,0) = 9+9
		t.Fatalf("total = %v, want 18", total)
	}
}

func TestHungarianForbidden(t *testing.T) {
	ninf := math.Inf(-1)
	w := [][]float64{
		{ninf, 5},
		{ninf, 7},
	}
	assign, total := MaxWeightAssignment(w)
	if total != 7 {
		t.Fatalf("total = %v, want 7 (only one item can take column 1)", total)
	}
	if assign[0] != -1 || assign[1] != 1 {
		t.Fatalf("assign = %v", assign)
	}
}

func TestHungarianRectangular(t *testing.T) {
	// More left items than right slots.
	w := [][]float64{
		{4},
		{9},
		{2},
	}
	assign, total := MaxWeightAssignment(w)
	if total != 9 {
		t.Fatalf("total = %v, want 9", total)
	}
	if assign[1] != 0 || assign[0] != -1 || assign[2] != -1 {
		t.Fatalf("assign = %v", assign)
	}
}

func TestHungarianEmpty(t *testing.T) {
	assign, total := MaxWeightAssignment(nil)
	if assign != nil || total != 0 {
		t.Fatalf("empty: %v %v", assign, total)
	}
}

// brute-force optimal assignment for verification.
func bruteAssign(w [][]float64) float64 {
	nl := len(w)
	if nl == 0 {
		return 0
	}
	nr := len(w[0])
	best := 0.0
	var rec func(i, mask int, sum float64)
	rec = func(i, mask int, sum float64) {
		if i == nl {
			if sum > best {
				best = sum
			}
			return
		}
		rec(i+1, mask, sum) // skip
		for j := 0; j < nr; j++ {
			if mask&(1<<j) != 0 || math.IsInf(w[i][j], -1) {
				continue
			}
			rec(i+1, mask|1<<j, sum+w[i][j])
		}
	}
	rec(0, 0, 0)
	return best
}

// Property: Hungarian equals brute force on random instances with
// non-negative weights and random forbidden pairs.
func TestQuickHungarianOptimal(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		nl := rng.IntRange(1, 5)
		nr := rng.IntRange(1, 5)
		w := make([][]float64, nl)
		for i := range w {
			w[i] = make([]float64, nr)
			for j := range w[i] {
				if rng.Bool(0.25) {
					w[i][j] = math.Inf(-1)
				} else {
					w[i][j] = float64(rng.IntRange(0, 20))
				}
			}
		}
		_, got := MaxWeightAssignment(w)
		want := bruteAssign(w)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyMatchingBasic(t *testing.T) {
	edges := []Edge{
		{0, 0, 5}, {0, 1, 4}, {1, 0, 4}, {1, 1, 1},
	}
	pairs, total := GreedyMatching(edges)
	// Greedy takes (0,0,5) then (1,1,1) → 6. Optimal is 8; ratio ≥ 1/2 holds.
	if len(pairs) != 2 || total != 6 {
		t.Fatalf("pairs=%v total=%v", pairs, total)
	}
}

func TestGreedyDeterministicTieBreak(t *testing.T) {
	edges := []Edge{{1, 1, 2}, {0, 0, 2}, {0, 1, 2}, {1, 0, 2}}
	p1, _ := GreedyMatching(edges)
	p2, _ := GreedyMatching([]Edge{{0, 1, 2}, {1, 0, 2}, {0, 0, 2}, {1, 1, 2}})
	if len(p1) != len(p2) {
		t.Fatalf("tie-break not deterministic: %v vs %v", p1, p2)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("tie-break not input-order independent: %v vs %v", p1, p2)
		}
	}
}

func TestGreedyBudgeted(t *testing.T) {
	edges := []Edge{{0, 0, 5}, {1, 1, 4}, {2, 2, 3}}
	pairs, total := GreedyBudgeted(edges, 2)
	if len(pairs) != 2 || total != 9 {
		t.Fatalf("budgeted: %v %v", pairs, total)
	}
	pairs, _ = GreedyBudgeted(edges, 0)
	if len(pairs) != 0 {
		t.Fatalf("budget 0 chose %v", pairs)
	}
	pairs, _ = GreedyBudgeted(edges, 10)
	if len(pairs) != 3 {
		t.Fatalf("slack budget chose %v", pairs)
	}
}

// Property: greedy achieves at least half the optimal weight
// (2-approximation), and forms a valid matching.
func TestQuickGreedyHalfOptimal(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		nl := rng.IntRange(1, 5)
		nr := rng.IntRange(1, 5)
		var edges []Edge
		w := make([][]float64, nl)
		for i := range w {
			w[i] = make([]float64, nr)
			for j := range w[i] {
				w[i][j] = math.Inf(-1)
				if rng.Bool(0.5) {
					wt := float64(rng.IntRange(1, 20))
					w[i][j] = wt
					edges = append(edges, Edge{i, j, wt})
				}
			}
		}
		pairs, total := GreedyMatching(edges)
		usedL, usedR := map[int]bool{}, map[int]bool{}
		for _, e := range pairs {
			if usedL[e.Left] || usedR[e.Right] {
				return false
			}
			usedL[e.Left] = true
			usedR[e.Right] = true
		}
		opt := bruteAssign(w)
		return total*2+1e-9 >= opt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHopcroftKarp(b *testing.B) {
	rng := xrand.New(3)
	const nl, nr = 200, 200
	adj := make([][]int, nl)
	for u := 0; u < nl; u++ {
		for _, v := range rng.Sample(nr, 5) {
			adj[u] = append(adj[u], v)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, size := HopcroftKarp(nl, nr, adj); size == 0 {
			b.Fatal("empty matching")
		}
	}
}

func BenchmarkHungarian100(b *testing.B) {
	rng := xrand.New(5)
	const n = 100
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
		for j := range w[i] {
			w[i][j] = float64(rng.IntRange(0, 1000))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, total := MaxWeightAssignment(w); total <= 0 {
			b.Fatal("zero assignment")
		}
	}
}
