package matching

import "sort"

// Edge is a weighted bipartite edge.
type Edge struct {
	Left, Right int
	Weight      float64
}

// GreedyMatching computes a matching by repeatedly taking the heaviest
// remaining edge whose endpoints are both free — the classical greedy
// 2-approximation for maximum-weight matching. The paper's intra-application
// priority rule (Algorithm 2) is exactly this algorithm applied to the
// job/executor allocation graph, where every edge of job J_ij has weight
// 1/µ_ij: "a job with fewer input tasks should be assigned with higher
// priority" (§IV-B). Ties are broken by (weight desc, left asc, right asc)
// for determinism.
func GreedyMatching(edges []Edge) (pairs []Edge, total float64) {
	sorted := append([]Edge(nil), edges...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Weight != sorted[j].Weight {
			return sorted[i].Weight > sorted[j].Weight
		}
		if sorted[i].Left != sorted[j].Left {
			return sorted[i].Left < sorted[j].Left
		}
		return sorted[i].Right < sorted[j].Right
	})
	usedL := map[int]bool{}
	usedR := map[int]bool{}
	for _, e := range sorted {
		if usedL[e.Left] || usedR[e.Right] {
			continue
		}
		usedL[e.Left] = true
		usedR[e.Right] = true
		pairs = append(pairs, e)
		total += e.Weight
	}
	return pairs, total
}

// GreedyBudgeted is GreedyMatching with a cap on the number of edges chosen
// — the σ_i executor budget of the constrained bipartite matching problem
// (§IV-B, Eq. 9–10).
func GreedyBudgeted(edges []Edge, budget int) (pairs []Edge, total float64) {
	all, _ := GreedyMatching(edges)
	if budget < 0 {
		budget = 0
	}
	if len(all) > budget {
		all = all[:budget]
	}
	for _, e := range all {
		total += e.Weight
	}
	return all, total
}
