// Package matching implements the bipartite-matching algorithms referenced
// by the paper's intra-application analysis (§IV-B): maximum-cardinality
// matching (Hopcroft–Karp) for task-level locality bounds, maximum-weight
// assignment (Hungarian) as the exact comparator for constrained bipartite
// matching, and the weight-greedy 2-approximation that Custody's job
// prioritization is derived from.
package matching

// HopcroftKarp computes a maximum-cardinality matching in a bipartite graph
// with nLeft left vertices and nRight right vertices. adj[u] lists the right
// vertices adjacent to left vertex u. It returns matchL (left → right, -1 if
// unmatched) and the matching size. Runs in O(E·sqrt(V)).
func HopcroftKarp(nLeft, nRight int, adj [][]int) (matchL []int, size int) {
	matchL = make([]int, nLeft)
	matchR := make([]int, nRight)
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}
	const inf = int(^uint(0) >> 1)
	dist := make([]int, nLeft)
	queue := make([]int, 0, nLeft)

	bfs := func() bool {
		queue = queue[:0]
		for u := 0; u < nLeft; u++ {
			if matchL[u] == -1 {
				dist[u] = 0
				queue = append(queue, u)
			} else {
				dist[u] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, v := range adj[u] {
				w := matchR[v]
				if w == -1 {
					found = true
				} else if dist[w] == inf {
					dist[w] = dist[u] + 1
					queue = append(queue, w)
				}
			}
		}
		return found
	}

	var dfs func(u int) bool
	dfs = func(u int) bool {
		for _, v := range adj[u] {
			w := matchR[v]
			if w == -1 || (dist[w] == dist[u]+1 && dfs(w)) {
				matchL[u] = v
				matchR[v] = u
				return true
			}
		}
		dist[u] = inf
		return false
	}

	for bfs() {
		for u := 0; u < nLeft; u++ {
			if matchL[u] == -1 && dfs(u) {
				size++
			}
		}
	}
	return matchL, size
}
