package matching

import "math"

// MaxWeightAssignment solves the rectangular assignment problem: weights is
// an nLeft×nRight matrix where weights[i][j] is the value of assigning left
// item i to right item j; math.Inf(-1) marks a forbidden pair. It returns
// the assignment (left → right, -1 if unassigned) maximizing total weight,
// together with the total. Items may stay unassigned (contributing zero), so
// negative-weight pairs are never chosen. O((nLeft+nRight)³) Hungarian
// algorithm on the negated weights, padded with per-item zero-cost "skip"
// slots so the square perfect-matching formulation never forces a forbidden
// or harmful pair.
func MaxWeightAssignment(weights [][]float64) (assign []int, total float64) {
	nLeft := len(weights)
	if nLeft == 0 {
		return nil, 0
	}
	nRight := len(weights[0])
	if nRight == 0 {
		assign = make([]int, nLeft)
		for i := range assign {
			assign[i] = -1
		}
		return assign, 0
	}
	// Pad to (nLeft+nRight) × (nLeft+nRight): each row gets a private
	// zero-cost skip column and each column a private zero-cost skip row.
	n := nLeft + nRight
	maxAbs := 1.0
	for i := 0; i < nLeft; i++ {
		for j := 0; j < nRight; j++ {
			if w := weights[i][j]; !math.IsInf(w, -1) && math.Abs(w) > maxAbs {
				maxAbs = math.Abs(w)
			}
		}
	}
	big := maxAbs*float64(n+1) + 1 // worse than any real schedule, precision-safe

	cost := make([][]float64, n+1)
	for i := range cost {
		cost[i] = make([]float64, n+1)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			c := 0.0
			switch {
			case i < nLeft && j < nRight:
				if w := weights[i][j]; math.IsInf(w, -1) {
					c = big
				} else {
					c = -w
				}
			case i < nLeft && j >= nRight:
				if j-nRight != i {
					c = big // skip column j is private to row j-nRight
				}
			case i >= nLeft && j < nRight:
				if i-nLeft != j {
					c = big // skip row i is private to column i-nLeft
				}
			default:
				c = 0 // skip-skip corner: free
			}
			cost[i+1][j+1] = c
		}
	}

	// Standard O(n³) Hungarian with potentials (1-indexed).
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1) // p[j] = row matched to column j
	way := make([]int, n+1)
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := -1
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0][j] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	assign = make([]int, nLeft)
	for i := range assign {
		assign[i] = -1
	}
	for j := 1; j <= nRight; j++ {
		i := p[j] - 1
		jj := j - 1
		if i < 0 || i >= nLeft {
			continue // matched to a skip row
		}
		w := weights[i][jj]
		if math.IsInf(w, -1) || w < 0 {
			continue // should not happen given the skip structure
		}
		assign[i] = jj
		total += w
	}
	return assign, total
}
