// Package scheduler implements the intra-application task schedulers that
// place ready tasks onto the executors the cluster manager has allocated.
//
// All experiments in the paper run Spark's delay scheduling unchanged on
// both sides (§V: "all the applications use the standard delay scheduling of
// Spark to accept resource offers and schedule tasks"), so Delay is the
// default here. FIFO and LocalityHard (Sparrow-like hard constraints, §VII)
// are provided as comparators.
package scheduler

import (
	"math"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/hdfs"
)

// Locator answers block-location queries; satisfied by *hdfs.NameNode.
type Locator interface {
	Locations(hdfs.BlockID) []int
}

// RackLocator additionally answers node→rack queries; *hdfs.NameNode
// satisfies it. Schedulers use it for the RACK_LOCAL level when available.
type RackLocator interface {
	Locator
	Rack(node int) int
}

// Scheduler is an application-side task scheduler. The driver offers idle
// executors; the scheduler picks a pending task or declines.
type Scheduler interface {
	Name() string
	// Submit adds ready tasks to the pending queue.
	Submit(tasks []*app.Task, now float64)
	// Offer proposes an idle executor. The scheduler returns the task to
	// launch on it, or nil to decline the offer.
	Offer(e *cluster.Executor, now float64) *app.Task
	// Pending returns the number of queued tasks.
	Pending() int
	// PendingTasks returns the queued tasks in FIFO order.
	PendingTasks() []*app.Task
	// NextDeadline returns the earliest future time at which an offer that
	// is currently declined could be accepted (locality-wait expiry), and
	// whether such a deadline exists.
	NextDeadline(now float64) (float64, bool)
	// Remove withdraws a pending task (e.g., on speculative completion);
	// reports whether the task was queued.
	Remove(t *app.Task) bool
}

// localOn reports whether one of the task's input-block replicas lives on
// the node.
func localOn(loc Locator, t *app.Task, node int) bool {
	if !t.IsInput() {
		return false
	}
	for _, n := range loc.Locations(t.Block) {
		if n == node {
			return true
		}
	}
	return false
}

// hasPreference reports whether the task constrains placement at all: input
// tasks with at least one live replica do, everything else launches anywhere
// immediately (Spark's "no-pref"/ANY level).
func hasPreference(loc Locator, t *app.Task) bool {
	return t.IsInput() && len(loc.Locations(t.Block)) > 0
}

// Delay implements delay scheduling (Zaharia et al., EuroSys'10; Spark's
// spark.locality.wait): a task waits up to Wait seconds for an offer from a
// node storing its input before degrading to rack locality (when RackWait
// is set and the locator knows racks) and finally to any executor.
type Delay struct {
	Loc  Locator
	Wait float64 // seconds; Spark default 3.0
	// RackWait is the additional wait before giving up on rack locality and
	// accepting any executor; zero disables the RACK_LOCAL level (node →
	// any, the paper's measured configuration).
	RackWait float64
	// Hint optionally returns the manager's scheduling suggestion for a
	// task (the executor Custody allocated with it in mind, §V). A pending
	// task hinted to the offered executor is taken before anything else;
	// nil disables suggestions.
	Hint func(*app.Task) (execID int, ok bool)

	queue []*app.Task
}

// DefaultWait is Spark's spark.locality.wait default.
const DefaultWait = 3.0

// NewDelay builds a delay scheduler with the given locality wait.
func NewDelay(loc Locator, wait float64) *Delay {
	if wait < 0 {
		wait = 0
	}
	return &Delay{Loc: loc, Wait: wait}
}

// Name implements Scheduler.
func (d *Delay) Name() string { return "delay" }

// Submit implements Scheduler.
func (d *Delay) Submit(tasks []*app.Task, now float64) {
	d.queue = append(d.queue, tasks...)
}

// rackLocalOn reports whether a replica of the task's block shares a rack
// with the node. Requires a RackLocator; false otherwise.
func (d *Delay) rackLocalOn(t *app.Task, node int) bool {
	rl, ok := d.Loc.(RackLocator)
	if !ok || !t.IsInput() {
		return false
	}
	rack := rl.Rack(node)
	for _, n := range rl.Locations(t.Block) {
		if rl.Rack(n) == rack {
			return true
		}
	}
	return false
}

// Offer implements Scheduler: node-local tasks first (FIFO), then
// no-preference tasks, then — after the node wait — rack-local tasks, then
// — after the rack wait — anything whose waits have fully expired.
func (d *Delay) Offer(e *cluster.Executor, now float64) *app.Task {
	node := e.Node.ID
	// Level 0: the manager suggested this very executor for the task.
	if d.Hint != nil {
		for i, t := range d.queue {
			if id, ok := d.Hint(t); ok && id == e.ID {
				return d.take(i)
			}
		}
	}
	// Level 1: node-local.
	for i, t := range d.queue {
		if localOn(d.Loc, t, node) {
			return d.take(i)
		}
	}
	// Level 2: tasks with no locality preference launch anywhere.
	for i, t := range d.queue {
		if !hasPreference(d.Loc, t) {
			return d.take(i)
		}
	}
	// Level 3 (optional): rack-local after the node-level wait.
	if d.RackWait > 0 {
		for i, t := range d.queue {
			if now-t.ReadyAt >= d.Wait && d.rackLocalOn(t, node) {
				return d.take(i)
			}
		}
	}
	// Level 4: all waits expired → accept any slot.
	for i, t := range d.queue {
		if now-t.ReadyAt >= d.Wait+d.RackWait {
			return d.take(i)
		}
	}
	return nil
}

func (d *Delay) take(i int) *app.Task {
	t := d.queue[i]
	d.queue = append(d.queue[:i], d.queue[i+1:]...)
	return t
}

// Pending implements Scheduler.
func (d *Delay) Pending() int { return len(d.queue) }

// PendingTasks implements Scheduler.
func (d *Delay) PendingTasks() []*app.Task {
	return append([]*app.Task(nil), d.queue...)
}

// NextDeadline implements Scheduler: the earliest upcoming level change
// (node→rack at ReadyAt+Wait, rack→any at ReadyAt+Wait+RackWait).
func (d *Delay) NextDeadline(now float64) (float64, bool) {
	earliest := math.Inf(1)
	for _, t := range d.queue {
		if !hasPreference(d.Loc, t) {
			continue
		}
		for _, dl := range [2]float64{t.ReadyAt + d.Wait, t.ReadyAt + d.Wait + d.RackWait} {
			if dl > now && dl < earliest {
				earliest = dl
			}
		}
	}
	if math.IsInf(earliest, 1) {
		return 0, false
	}
	return earliest, true
}

// Remove implements Scheduler.
func (d *Delay) Remove(t *app.Task) bool {
	for i, q := range d.queue {
		if q == t {
			d.take(i)
			return true
		}
	}
	return false
}

// FIFO launches the oldest pending task on any offered executor — no data
// awareness at all.
type FIFO struct {
	queue []*app.Task
}

// NewFIFO builds a FIFO scheduler.
func NewFIFO() *FIFO { return &FIFO{} }

// Name implements Scheduler.
func (f *FIFO) Name() string { return "fifo" }

// Submit implements Scheduler.
func (f *FIFO) Submit(tasks []*app.Task, now float64) { f.queue = append(f.queue, tasks...) }

// Offer implements Scheduler.
func (f *FIFO) Offer(e *cluster.Executor, now float64) *app.Task {
	if len(f.queue) == 0 {
		return nil
	}
	t := f.queue[0]
	f.queue = f.queue[1:]
	return t
}

// Pending implements Scheduler.
func (f *FIFO) Pending() int { return len(f.queue) }

// PendingTasks implements Scheduler.
func (f *FIFO) PendingTasks() []*app.Task { return append([]*app.Task(nil), f.queue...) }

// NextDeadline implements Scheduler.
func (f *FIFO) NextDeadline(now float64) (float64, bool) { return 0, false }

// Remove implements Scheduler.
func (f *FIFO) Remove(t *app.Task) bool {
	for i, q := range f.queue {
		if q == t {
			f.queue = append(f.queue[:i], f.queue[i+1:]...)
			return true
		}
	}
	return false
}

// LocalityHard imposes locality as a hard constraint (Sparrow-style, §VII):
// input tasks with live replicas only ever launch on nodes storing their
// block; they wait indefinitely otherwise. Beware: under multi-application
// contention a hard-constrained task can starve forever if its replica
// nodes' executors belong to other applications — exactly the gap the paper
// points out ("while lacks discussions about how to access the executors
// storing the relevant data").
type LocalityHard struct {
	Loc   Locator
	queue []*app.Task
}

// NewLocalityHard builds a hard-constraint scheduler.
func NewLocalityHard(loc Locator) *LocalityHard { return &LocalityHard{Loc: loc} }

// Name implements Scheduler.
func (l *LocalityHard) Name() string { return "locality-hard" }

// Submit implements Scheduler.
func (l *LocalityHard) Submit(tasks []*app.Task, now float64) { l.queue = append(l.queue, tasks...) }

// Offer implements Scheduler.
func (l *LocalityHard) Offer(e *cluster.Executor, now float64) *app.Task {
	node := e.Node.ID
	for i, t := range l.queue {
		if localOn(l.Loc, t, node) || !hasPreference(l.Loc, t) {
			q := l.queue[i]
			l.queue = append(l.queue[:i], l.queue[i+1:]...)
			return q
		}
	}
	return nil
}

// Pending implements Scheduler.
func (l *LocalityHard) Pending() int { return len(l.queue) }

// PendingTasks implements Scheduler.
func (l *LocalityHard) PendingTasks() []*app.Task { return append([]*app.Task(nil), l.queue...) }

// NextDeadline implements Scheduler.
func (l *LocalityHard) NextDeadline(now float64) (float64, bool) { return 0, false }

// Remove implements Scheduler.
func (l *LocalityHard) Remove(t *app.Task) bool {
	for i, q := range l.queue {
		if q == t {
			l.queue = append(l.queue[:i], l.queue[i+1:]...)
			return true
		}
	}
	return false
}
