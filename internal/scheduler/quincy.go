package scheduler

import (
	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/maxflow"
)

// Quincy is a Quincy-style scheduler (Isard et al., SOSP'09; §VII related
// work): instead of waiting for locality like delay scheduling, it solves a
// global min-cost flow over the application's *entire* executor set, with
// edge costs encoding data-placement preference, and launches tasks
// according to the resulting plan. Unlike real Quincy it does not preempt
// running tasks; the plan covers pending tasks and free capacity only.
type Quincy struct {
	Loc Locator
	// View returns the executors currently allocated to the application;
	// supplied by the driver.
	View func() []*cluster.Executor
	// Costs of placing an input task relative to its block's replicas.
	LocalCost, RackCost, AnyCost float64

	queue []*app.Task
	plan  map[int][]*app.Task // executor ID → tasks planned onto it
	dirty bool
}

// NewQuincy builds the flow-based scheduler.
func NewQuincy(loc Locator, view func() []*cluster.Executor) *Quincy {
	return &Quincy{
		Loc: loc, View: view,
		LocalCost: 0, RackCost: 2, AnyCost: 10,
		plan: map[int][]*app.Task{},
	}
}

// Name implements Scheduler.
func (q *Quincy) Name() string { return "quincy" }

// Submit implements Scheduler.
func (q *Quincy) Submit(tasks []*app.Task, now float64) {
	q.queue = append(q.queue, tasks...)
	q.dirty = true
}

// Offer implements Scheduler: consult (recomputing if stale) the flow plan
// and launch the task planned for this executor.
func (q *Quincy) Offer(e *cluster.Executor, now float64) *app.Task {
	if len(q.queue) == 0 {
		return nil
	}
	if q.dirty {
		q.replan()
	}
	planned := q.plan[e.ID]
	for len(planned) > 0 {
		t := planned[0]
		planned = planned[1:]
		q.plan[e.ID] = planned
		if q.takeFromQueue(t) {
			return t
		}
	}
	// Nothing planned here: replan once in case the world moved on.
	q.replan()
	planned = q.plan[e.ID]
	if len(planned) > 0 {
		t := planned[0]
		q.plan[e.ID] = planned[1:]
		if q.takeFromQueue(t) {
			return t
		}
	}
	return nil
}

func (q *Quincy) takeFromQueue(t *app.Task) bool {
	for i, qt := range q.queue {
		if qt == t {
			q.queue = append(q.queue[:i], q.queue[i+1:]...)
			return true
		}
	}
	return false
}

// replan solves the min-cost assignment of pending tasks to executor slots.
func (q *Quincy) replan() {
	q.dirty = false
	q.plan = map[int][]*app.Task{}
	execs := q.View()
	if len(execs) == 0 || len(q.queue) == 0 {
		return
	}
	// Node layout: 0 source, 1..T tasks, then executors, then sink.
	nT := len(q.queue)
	execBase := 1 + nT
	sink := execBase + len(execs)
	g := maxflow.NewMinCostGraph(sink + 1)
	type edgeRef struct {
		id   int
		task *app.Task
		exec *cluster.Executor
	}
	var refs []edgeRef
	rl, hasRacks := q.Loc.(RackLocator)
	for ei, e := range execs {
		cap := float64(e.Slots())
		g.AddEdge(execBase+ei, sink, cap, 0)
	}
	for ti, t := range q.queue {
		g.AddEdge(0, 1+ti, 1, 0)
		for ei, e := range execs {
			cost := q.AnyCost
			if !hasPreference(q.Loc, t) {
				cost = q.LocalCost // no preference: any slot is fine
			} else if localOn(q.Loc, t, e.Node.ID) {
				cost = q.LocalCost
			} else if hasRacks && q.rackLocal(rl, t, e.Node.ID) {
				cost = q.RackCost
			}
			id := g.AddEdge(1+ti, execBase+ei, 1, cost)
			refs = append(refs, edgeRef{id: id, task: t, exec: e})
		}
	}
	g.MinCostFlow(0, sink, float64(nT))
	for _, r := range refs {
		if g.Flow(r.id) > 0.5 {
			q.plan[r.exec.ID] = append(q.plan[r.exec.ID], r.task)
		}
	}
}

func (q *Quincy) rackLocal(rl RackLocator, t *app.Task, node int) bool {
	rack := rl.Rack(node)
	for _, n := range rl.Locations(t.Block) {
		if rl.Rack(n) == rack {
			return true
		}
	}
	return false
}

// Pending implements Scheduler.
func (q *Quincy) Pending() int { return len(q.queue) }

// PendingTasks implements Scheduler.
func (q *Quincy) PendingTasks() []*app.Task { return append([]*app.Task(nil), q.queue...) }

// NextDeadline implements Scheduler: Quincy never waits, so there is no
// time-based retry.
func (q *Quincy) NextDeadline(now float64) (float64, bool) { return 0, false }

// Remove implements Scheduler.
func (q *Quincy) Remove(t *app.Task) bool {
	q.dirty = true
	return q.takeFromQueue(t)
}
