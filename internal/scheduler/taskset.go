package scheduler

import (
	"math"

	"repro/internal/app"
	"repro/internal/cluster"
)

// DelayTaskSet is the Spark-faithful variant of delay scheduling: pending
// tasks are grouped into TaskSets (one per stage), processed in submission
// order, and each TaskSet carries its own locality level that degrades when
// no task has launched for Wait seconds and resets whenever a task launches
// (TaskSetManager.lastLaunchTime semantics). Compared to the flat Delay
// queue, a busy TaskSet that keeps launching locally never degrades to ANY,
// while an idle one degrades once and then backfills freely.
type DelayTaskSet struct {
	Loc  Locator
	Wait float64

	sets []*taskSet
}

type taskSet struct {
	stage      *app.Stage
	tasks      []*app.Task
	lastLaunch float64
}

// NewDelayTaskSet builds the per-TaskSet delay scheduler.
func NewDelayTaskSet(loc Locator, wait float64) *DelayTaskSet {
	if wait < 0 {
		wait = 0
	}
	return &DelayTaskSet{Loc: loc, Wait: wait}
}

// Name implements Scheduler.
func (d *DelayTaskSet) Name() string { return "delay-taskset" }

// Submit implements Scheduler: tasks are grouped by stage; a new stage
// starts a new TaskSet whose wait clock begins at submission.
func (d *DelayTaskSet) Submit(tasks []*app.Task, now float64) {
	for _, t := range tasks {
		var ts *taskSet
		for _, s := range d.sets {
			if s.stage == t.Stage {
				ts = s
				break
			}
		}
		if ts == nil {
			ts = &taskSet{stage: t.Stage, lastLaunch: now}
			d.sets = append(d.sets, ts)
		}
		ts.tasks = append(ts.tasks, t)
	}
}

// Offer implements Scheduler. TaskSets are visited in submission order; a
// node-local task launches at any time, a non-local one only once the
// TaskSet's level has degraded (no launch for Wait seconds).
func (d *DelayTaskSet) Offer(e *cluster.Executor, now float64) *app.Task {
	node := e.Node.ID
	// Pass 1: node-local (or no-preference) anywhere, FIFO by TaskSet.
	for _, ts := range d.sets {
		for i, t := range ts.tasks {
			if localOn(d.Loc, t, node) || !hasPreference(d.Loc, t) {
				return d.takeFrom(ts, i, now)
			}
		}
	}
	// Pass 2: degraded TaskSets accept any executor.
	for _, ts := range d.sets {
		if now-ts.lastLaunch < d.Wait {
			continue
		}
		if len(ts.tasks) > 0 {
			return d.takeFrom(ts, 0, now)
		}
	}
	return nil
}

func (d *DelayTaskSet) takeFrom(ts *taskSet, i int, now float64) *app.Task {
	t := ts.tasks[i]
	ts.tasks = append(ts.tasks[:i], ts.tasks[i+1:]...)
	ts.lastLaunch = now // every launch resets the TaskSet's wait clock
	d.compact()
	return t
}

func (d *DelayTaskSet) compact() {
	out := d.sets[:0]
	for _, ts := range d.sets {
		if len(ts.tasks) > 0 {
			out = append(out, ts)
		}
	}
	d.sets = out
}

// Pending implements Scheduler.
func (d *DelayTaskSet) Pending() int {
	n := 0
	for _, ts := range d.sets {
		n += len(ts.tasks)
	}
	return n
}

// PendingTasks implements Scheduler.
func (d *DelayTaskSet) PendingTasks() []*app.Task {
	var out []*app.Task
	for _, ts := range d.sets {
		out = append(out, ts.tasks...)
	}
	return out
}

// NextDeadline implements Scheduler: the earliest TaskSet degradation.
func (d *DelayTaskSet) NextDeadline(now float64) (float64, bool) {
	earliest := math.Inf(1)
	for _, ts := range d.sets {
		hasPref := false
		for _, t := range ts.tasks {
			if hasPreference(d.Loc, t) {
				hasPref = true
				break
			}
		}
		if !hasPref {
			continue
		}
		dl := ts.lastLaunch + d.Wait
		if dl > now && dl < earliest {
			earliest = dl
		}
	}
	if math.IsInf(earliest, 1) {
		return 0, false
	}
	return earliest, true
}

// Remove implements Scheduler.
func (d *DelayTaskSet) Remove(t *app.Task) bool {
	for _, ts := range d.sets {
		for i, q := range ts.tasks {
			if q == t {
				ts.tasks = append(ts.tasks[:i], ts.tasks[i+1:]...)
				d.compact()
				return true
			}
		}
	}
	return false
}
