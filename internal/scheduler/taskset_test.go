package scheduler

import (
	"testing"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/hdfs"
)

func TestTaskSetGroupsByStage(t *testing.T) {
	j, s1 := scaffold()
	s2 := &app.Stage{ID: 1, Job: j}
	d := NewDelayTaskSet(fakeLoc{}, 3)
	d.Submit([]*app.Task{mkShuffleTask(j, s1, 0, 0), mkShuffleTask(j, s2, 0, 0), mkShuffleTask(j, s1, 1, 0)}, 0)
	if d.Pending() != 3 {
		t.Fatalf("pending = %d", d.Pending())
	}
	if len(d.sets) != 2 {
		t.Fatalf("tasksets = %d, want 2", len(d.sets))
	}
}

func TestTaskSetLocalLaunchAnytime(t *testing.T) {
	j, s := scaffold()
	loc := fakeLoc{0: {2}}
	d := NewDelayTaskSet(loc, 3)
	t0 := mkInputTask(j, s, 0, 0, 0)
	d.Submit([]*app.Task{t0}, 0)
	c := mkCluster()
	if got := d.Offer(c.Node(2).Executors()[0], 0.0); got != t0 {
		t.Fatalf("local offer declined: %v", got)
	}
}

func TestTaskSetDegradesAfterWait(t *testing.T) {
	j, s := scaffold()
	loc := fakeLoc{0: {2}}
	d := NewDelayTaskSet(loc, 3)
	t0 := mkInputTask(j, s, 0, 0, 0)
	d.Submit([]*app.Task{t0}, 0)
	c := mkCluster()
	e1 := c.Node(1).Executors()[0]
	if got := d.Offer(e1, 2.0); got != nil {
		t.Fatalf("non-local offer accepted before degradation: %v", got)
	}
	if got := d.Offer(e1, 3.0); got != t0 {
		t.Fatalf("degraded taskset declined: %v", got)
	}
}

func TestTaskSetLaunchResetsClock(t *testing.T) {
	// Spark semantics: a launch at ANY level resets lastLaunchTime, so the
	// taskset reverts to preferring locality.
	j, s := scaffold()
	loc := fakeLoc{0: {2}, 1: {2}}
	d := NewDelayTaskSet(loc, 3)
	t0 := mkInputTask(j, s, 0, 0, 0)
	t1 := mkInputTask(j, s, 1, 1, 0)
	d.Submit([]*app.Task{t0, t1}, 0)
	c := mkCluster()
	e1 := c.Node(1).Executors()[0]
	// At t=3 the set degrades; t0 launches non-locally and resets the clock.
	if got := d.Offer(e1, 3.0); got != t0 {
		t.Fatalf("first degraded launch = %v", got)
	}
	// Immediately after, the set is back at the local level: t1 declines e1.
	if got := d.Offer(e1, 3.5); got != nil {
		t.Fatalf("taskset did not reset after launch: %v", got)
	}
	// But still launches locally right away.
	if got := d.Offer(c.Node(2).Executors()[0], 3.5); got != t1 {
		t.Fatalf("local launch after reset declined: %v", got)
	}
}

func TestTaskSetFIFOAcrossSets(t *testing.T) {
	j, s1 := scaffold()
	s2 := &app.Stage{ID: 1, Job: j}
	d := NewDelayTaskSet(fakeLoc{}, 3)
	a := mkShuffleTask(j, s1, 0, 0)
	b := mkShuffleTask(j, s2, 0, 0)
	d.Submit([]*app.Task{a}, 0)
	d.Submit([]*app.Task{b}, 1)
	c := mkCluster()
	if got := d.Offer(c.Node(0).Executors()[0], 2); got != a {
		t.Fatalf("older taskset skipped: %v", got)
	}
}

func TestTaskSetNextDeadline(t *testing.T) {
	j, s := scaffold()
	loc := fakeLoc{0: {2}}
	d := NewDelayTaskSet(loc, 3)
	d.Submit([]*app.Task{mkInputTask(j, s, 0, 0, 1.0)}, 1.0)
	dl, ok := d.NextDeadline(1.0)
	if !ok || dl != 4.0 {
		t.Fatalf("deadline = %v,%v", dl, ok)
	}
	// No-preference-only sets have no deadline.
	d2 := NewDelayTaskSet(fakeLoc{}, 3)
	d2.Submit([]*app.Task{mkShuffleTask(j, s, 0, 0)}, 0)
	if _, ok := d2.NextDeadline(0); ok {
		t.Fatal("deadline for no-pref taskset")
	}
}

func TestTaskSetRemoveAndCompact(t *testing.T) {
	j, s := scaffold()
	d := NewDelayTaskSet(fakeLoc{}, 3)
	t0 := mkShuffleTask(j, s, 0, 0)
	d.Submit([]*app.Task{t0}, 0)
	if !d.Remove(t0) {
		t.Fatal("Remove failed")
	}
	if d.Pending() != 0 || len(d.sets) != 0 {
		t.Fatalf("pending=%d sets=%d after Remove", d.Pending(), len(d.sets))
	}
	if d.Remove(t0) {
		t.Fatal("double Remove succeeded")
	}
}

func TestQuincyPlansLocally(t *testing.T) {
	j, s := scaffold()
	loc := fakeLoc{0: {2}, 1: {3}}
	c := mkCluster()
	for i := 0; i < 4; i++ {
		if err := c.Allocate(c.Node(i).Executors()[0], 0); err != nil {
			t.Fatal(err)
		}
	}
	q := NewQuincy(loc, func() []*cluster.Executor { return c.Owned(0) })
	t0 := mkInputTask(j, s, 0, 0, 0) // wants node 2
	t1 := mkInputTask(j, s, 1, 1, 0) // wants node 3
	q.Submit([]*app.Task{t0, t1}, 0)
	// Quincy's global plan puts each task on its block's node, so offering
	// node 2 yields t0 and node 3 yields t1 — regardless of FIFO order.
	if got := q.Offer(c.Node(3).Executors()[0], 0); got != t1 {
		t.Fatalf("Offer(node3) = %v, want t1", got)
	}
	if got := q.Offer(c.Node(2).Executors()[0], 0); got != t0 {
		t.Fatalf("Offer(node2) = %v, want t0", got)
	}
}

func TestQuincyNeverWaits(t *testing.T) {
	// Unlike delay scheduling, Quincy launches immediately even non-locally
	// when the plan says so (no local capacity exists at all).
	j, s := scaffold()
	loc := fakeLoc{0: {9}} // replica on a node with no executor
	c := mkCluster()
	c.Allocate(c.Node(1).Executors()[0], 0)
	q := NewQuincy(loc, func() []*cluster.Executor { return c.Owned(0) })
	t0 := mkInputTask(j, s, 0, 0, 0)
	q.Submit([]*app.Task{t0}, 0)
	if got := q.Offer(c.Node(1).Executors()[0], 0); got != t0 {
		t.Fatalf("Quincy waited: %v", got)
	}
	if _, ok := q.NextDeadline(0); ok {
		t.Fatal("Quincy reported a wait deadline")
	}
}

func TestQuincyCapacityRespected(t *testing.T) {
	// More tasks than slots: the plan covers slot capacity; leftovers stay
	// queued until offers recur.
	j, s := scaffold()
	loc := fakeLoc{}
	c := mkCluster()
	c.Allocate(c.Node(0).Executors()[0], 0)
	q := NewQuincy(loc, func() []*cluster.Executor { return c.Owned(0) })
	var tasks []*app.Task
	for i := 0; i < 3; i++ {
		tasks = append(tasks, mkShuffleTask(j, s, i, 0))
	}
	q.Submit(tasks, 0)
	e := c.Node(0).Executors()[0]
	if got := q.Offer(e, 0); got == nil {
		t.Fatal("first offer declined")
	}
	if q.Pending() != 2 {
		t.Fatalf("pending = %d", q.Pending())
	}
}

func TestQuincyRemove(t *testing.T) {
	j, s := scaffold()
	c := mkCluster()
	q := NewQuincy(fakeLoc{}, func() []*cluster.Executor { return c.Owned(0) })
	t0 := mkShuffleTask(j, s, 0, 0)
	q.Submit([]*app.Task{t0}, 0)
	if !q.Remove(t0) || q.Pending() != 0 {
		t.Fatal("Remove failed")
	}
}

func TestDelayRackLevel(t *testing.T) {
	j, s := scaffold()
	// rackLoc: nodes 0,1 in rack 0; nodes 2,3 in rack 1. Block on node 2.
	loc := rackLoc{replicas: fakeLoc{0: {2}}, rackSize: 2}
	d := NewDelay(loc, 3)
	d.RackWait = 2
	t0 := mkInputTask(j, s, 0, 0, 0)
	d.Submit([]*app.Task{t0}, 0)
	c := mkCluster()
	eSameRack := c.Node(3).Executors()[0]  // rack 1, same as replica
	eOtherRack := c.Node(0).Executors()[0] // rack 0
	// Before the node wait: decline everything non-node-local.
	if got := d.Offer(eSameRack, 1.0); got != nil {
		t.Fatalf("rack offer accepted before node wait: %v", got)
	}
	// After node wait but before rack wait: accept rack-local only.
	if got := d.Offer(eOtherRack, 3.5); got != nil {
		t.Fatalf("off-rack offer accepted during rack window: %v", got)
	}
	if got := d.Offer(eSameRack, 3.5); got != t0 {
		t.Fatalf("rack-local offer declined after node wait: %v", got)
	}
	// Fully expired: anything goes.
	d2 := NewDelay(loc, 3)
	d2.RackWait = 2
	d2.Submit([]*app.Task{mkInputTask(j, s, 1, 0, 0)}, 0)
	if got := d2.Offer(eOtherRack, 5.0); got == nil {
		t.Fatal("off-rack offer declined after all waits expired")
	}
}

func TestDelayRackDeadlines(t *testing.T) {
	j, s := scaffold()
	loc := rackLoc{replicas: fakeLoc{0: {2}}, rackSize: 2}
	d := NewDelay(loc, 3)
	d.RackWait = 2
	d.Submit([]*app.Task{mkInputTask(j, s, 0, 0, 1.0)}, 1.0)
	dl, ok := d.NextDeadline(1.0)
	if !ok || dl != 4.0 {
		t.Fatalf("first deadline = %v,%v want 4.0", dl, ok)
	}
	dl, ok = d.NextDeadline(4.5)
	if !ok || dl != 6.0 {
		t.Fatalf("second deadline = %v,%v want 6.0 (rack expiry)", dl, ok)
	}
}

// rackLoc is a RackLocator for tests: rackSize nodes per rack.
type rackLoc struct {
	replicas fakeLoc
	rackSize int
}

func (r rackLoc) Locations(b hdfs.BlockID) []int { return r.replicas[b] }
func (r rackLoc) Rack(node int) int              { return node / r.rackSize }
