package scheduler

import (
	"testing"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/hdfs"
)

// fakeLoc maps block → replica nodes.
type fakeLoc map[hdfs.BlockID][]int

func (f fakeLoc) Locations(b hdfs.BlockID) []int { return f[b] }

func mkCluster() *cluster.Cluster {
	return cluster.New(cluster.Config{Nodes: 4, ExecutorsPerNode: 1})
}

// mkInputTask builds a ready input task reading the given block.
func mkInputTask(job *app.Job, stage *app.Stage, idx int, block hdfs.BlockID, readyAt float64) *app.Task {
	t := &app.Task{Job: job, Stage: stage, Index: idx, Block: block, State: app.TaskReady, ReadyAt: readyAt, RanOnNode: -1}
	return t
}

func mkShuffleTask(job *app.Job, stage *app.Stage, idx int, readyAt float64) *app.Task {
	t := &app.Task{Job: job, Stage: stage, Index: idx, Block: -1, State: app.TaskReady, ReadyAt: readyAt, RanOnNode: -1}
	return t
}

func scaffold() (*app.Job, *app.Stage) {
	a := app.NewApplication(0, "t")
	j := &app.Job{ID: 1, App: a}
	s := &app.Stage{ID: 0, Job: j}
	return j, s
}

func TestDelayPrefersLocal(t *testing.T) {
	j, s := scaffold()
	loc := fakeLoc{0: {2}, 1: {0}}
	d := NewDelay(loc, 3)
	t0 := mkInputTask(j, s, 0, 0, 0) // wants node 2
	t1 := mkInputTask(j, s, 1, 1, 0) // wants node 0
	d.Submit([]*app.Task{t0, t1}, 0)

	c := mkCluster()
	// Executor on node 0: t1 is local there even though t0 is older.
	got := d.Offer(c.Node(0).Executors()[0], 0.1)
	if got != t1 {
		t.Fatalf("Offer(node0) = %v, want the node-local task t1", got)
	}
}

func TestDelayDeclinesThenAccepts(t *testing.T) {
	j, s := scaffold()
	loc := fakeLoc{0: {2}}
	d := NewDelay(loc, 3)
	t0 := mkInputTask(j, s, 0, 0, 0)
	d.Submit([]*app.Task{t0}, 0)
	c := mkCluster()
	e1 := c.Node(1).Executors()[0] // non-local

	if got := d.Offer(e1, 1.0); got != nil {
		t.Fatalf("offer before wait expiry accepted: %v", got)
	}
	if got := d.Offer(e1, 3.0); got != t0 {
		t.Fatalf("offer at wait expiry declined: %v", got)
	}
}

func TestDelayNoPreferenceImmediate(t *testing.T) {
	j, s := scaffold()
	d := NewDelay(fakeLoc{}, 3)
	sh := mkShuffleTask(j, s, 0, 0)
	d.Submit([]*app.Task{sh}, 0)
	c := mkCluster()
	if got := d.Offer(c.Node(3).Executors()[0], 0.0); got != sh {
		t.Fatalf("no-pref task not launched immediately: %v", got)
	}
}

func TestDelayBlockWithNoReplicasIsNoPref(t *testing.T) {
	j, s := scaffold()
	d := NewDelay(fakeLoc{5: {}}, 3)
	t0 := mkInputTask(j, s, 0, 5, 0)
	d.Submit([]*app.Task{t0}, 0)
	c := mkCluster()
	if got := d.Offer(c.Node(1).Executors()[0], 0.0); got != t0 {
		t.Fatal("task with no live replicas should launch anywhere immediately")
	}
}

func TestDelayFIFOWithinLevel(t *testing.T) {
	j, s := scaffold()
	loc := fakeLoc{0: {1}, 1: {1}}
	d := NewDelay(loc, 3)
	t0 := mkInputTask(j, s, 0, 0, 0)
	t1 := mkInputTask(j, s, 1, 1, 0)
	d.Submit([]*app.Task{t0, t1}, 0)
	c := mkCluster()
	if got := d.Offer(c.Node(1).Executors()[0], 0); got != t0 {
		t.Fatalf("same-level tie broke FIFO: %v", got)
	}
}

func TestDelayNextDeadline(t *testing.T) {
	j, s := scaffold()
	loc := fakeLoc{0: {2}, 1: {2}}
	d := NewDelay(loc, 3)
	d.Submit([]*app.Task{mkInputTask(j, s, 0, 0, 1.0), mkInputTask(j, s, 1, 1, 2.0)}, 2.0)
	dl, ok := d.NextDeadline(2.0)
	if !ok || dl != 4.0 {
		t.Fatalf("deadline = %v,%v want 4.0 (1.0+3)", dl, ok)
	}
	// After the first deadline passes, the next one applies.
	dl, ok = d.NextDeadline(4.5)
	if !ok || dl != 5.0 {
		t.Fatalf("second deadline = %v,%v want 5.0", dl, ok)
	}
	// No pending preference tasks → no deadline.
	d2 := NewDelay(fakeLoc{}, 3)
	if _, ok := d2.NextDeadline(0); ok {
		t.Fatal("deadline with empty queue")
	}
}

func TestDelayRemove(t *testing.T) {
	j, s := scaffold()
	d := NewDelay(fakeLoc{}, 3)
	t0 := mkShuffleTask(j, s, 0, 0)
	d.Submit([]*app.Task{t0}, 0)
	if !d.Remove(t0) {
		t.Fatal("Remove failed")
	}
	if d.Pending() != 0 {
		t.Fatal("task still pending after Remove")
	}
	if d.Remove(t0) {
		t.Fatal("double Remove succeeded")
	}
}

func TestFIFOIgnoresLocality(t *testing.T) {
	j, s := scaffold()
	f := NewFIFO()
	t0 := mkInputTask(j, s, 0, 0, 0)
	t1 := mkInputTask(j, s, 1, 1, 0)
	f.Submit([]*app.Task{t0, t1}, 0)
	c := mkCluster()
	if got := f.Offer(c.Node(3).Executors()[0], 0); got != t0 {
		t.Fatalf("FIFO returned %v, want oldest", got)
	}
	if f.Pending() != 1 {
		t.Fatalf("pending = %d", f.Pending())
	}
	if got := f.Offer(c.Node(3).Executors()[0], 0); got != t1 {
		t.Fatalf("FIFO second offer = %v", got)
	}
	if got := f.Offer(c.Node(3).Executors()[0], 0); got != nil {
		t.Fatalf("empty FIFO returned %v", got)
	}
}

func TestLocalityHardNeverCompromises(t *testing.T) {
	j, s := scaffold()
	loc := fakeLoc{0: {2}}
	l := NewLocalityHard(loc)
	t0 := mkInputTask(j, s, 0, 0, 0)
	l.Submit([]*app.Task{t0}, 0)
	c := mkCluster()
	if got := l.Offer(c.Node(1).Executors()[0], 1e9); got != nil {
		t.Fatalf("hard scheduler launched non-locally: %v", got)
	}
	if got := l.Offer(c.Node(2).Executors()[0], 0); got != t0 {
		t.Fatalf("hard scheduler declined a local offer: %v", got)
	}
}

func TestPendingTasksCopy(t *testing.T) {
	j, s := scaffold()
	d := NewDelay(fakeLoc{}, 3)
	t0 := mkShuffleTask(j, s, 0, 0)
	d.Submit([]*app.Task{t0}, 0)
	view := d.PendingTasks()
	view[0] = nil
	if d.PendingTasks()[0] != t0 {
		t.Fatal("PendingTasks exposed internal slice")
	}
}

func TestDelayHintLevelZero(t *testing.T) {
	j, s := scaffold()
	loc := fakeLoc{0: {2}, 1: {1}}
	d := NewDelay(loc, 3)
	t0 := mkInputTask(j, s, 0, 0, 0) // block on node 2
	t1 := mkInputTask(j, s, 1, 1, 0) // block on node 1
	hints := map[*app.Task]int{}
	d.Hint = func(t *app.Task) (int, bool) { e, ok := hints[t]; return e, ok }
	d.Submit([]*app.Task{t0, t1}, 0)
	c := mkCluster()
	e1 := c.Node(1).Executors()[0]
	// t0 is hinted to executor e1 even though its block is elsewhere: the
	// hint wins over t1's node-locality (level 0 < level 1).
	hints[t0] = e1.ID
	if got := d.Offer(e1, 0); got != t0 {
		t.Fatalf("hinted task not taken first: %v", got)
	}
	// Without a hint the normal locality order applies.
	if got := d.Offer(e1, 0); got != t1 {
		t.Fatalf("after hint consumed, local task expected: %v", got)
	}
}
