// Package sim re-exports the deterministic discrete-event engine that now
// lives in internal/event.
//
// The engine was moved down the layering DAG so that leaf packages (netsim
// in particular) can schedule events without importing the simulation
// orchestration layer: custodylint's layering rule forbids leaf → sim
// imports. This package remains as a thin alias shim for the orchestration
// layers that already depend on the sim name; new code should import
// internal/event directly.
package sim

import "repro/internal/event"

// Timer is a handle to a scheduled event. See event.Timer.
type Timer = event.Timer

// Engine is a deterministic discrete-event simulation engine. See
// event.Engine.
type Engine = event.Engine

// NewEngine returns an empty engine with the clock at zero.
func NewEngine() *Engine { return event.NewEngine() }
