package sim

import "testing"

// TestShimAliases pins the alias shim: a Timer scheduled through the sim
// names must be the internal/event implementation, cancellable and ordered.
func TestShimAliases(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(2, func() { got = append(got, 2) })
	tm := e.Schedule(1, func() { got = append(got, 1) })
	e.Cancel(tm)
	e.Run()
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("shim run executed %v, want [2]", got)
	}
	if !tm.Cancelled() {
		t.Fatalf("cancelled timer not marked cancelled through alias")
	}
}
