// Package app models data-parallel applications the way the paper does
// (§III-A): an application A_i submits jobs J_ij; each job is a DAG of
// stages; the input stage has one task per HDFS block (T_ijk reads block
// d_ijk); downstream stages read shuffled intermediate data from their
// parent stages.
package app

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/hdfs"
)

// TaskState tracks a task through its lifecycle.
type TaskState int

const (
	// TaskWaiting means the task's stage is not ready yet.
	TaskWaiting TaskState = iota
	// TaskReady means the task may be launched.
	TaskReady
	// TaskRunning means the task occupies an executor.
	TaskRunning
	// TaskDone means the task finished.
	TaskDone
)

func (s TaskState) String() string {
	switch s {
	case TaskWaiting:
		return "waiting"
	case TaskReady:
		return "ready"
	case TaskRunning:
		return "running"
	case TaskDone:
		return "done"
	}
	return "unknown"
}

// Task is one unit of parallel work.
type Task struct {
	Job   *Job
	Stage *Stage
	Index int // position within the stage

	// Block is the HDFS block an input task reads; -1 for non-input tasks.
	Block hdfs.BlockID
	// InputBytes is the volume read from HDFS (input tasks) or fetched via
	// shuffle (downstream tasks).
	InputBytes int64
	// ComputeSec is the pure computation time once input is available.
	ComputeSec float64
	// OutputBytes is the intermediate data produced for the next stage.
	OutputBytes int64

	State TaskState

	// Runtime bookkeeping (owned by the driver).
	ReadyAt    float64
	LaunchedAt float64
	FinishedAt float64
	RanOnNode  int
	RanLocal   bool
	Attempts   int
}

// IsInput reports whether the task reads an HDFS block directly.
func (t *Task) IsInput() bool { return t.Block >= 0 }

// String identifies the task for logs and errors.
func (t *Task) String() string {
	return fmt.Sprintf("app%d/job%d/stage%d/task%d", t.Job.App.ID, t.Job.ID, t.Stage.ID, t.Index)
}

// Stage is a set of homogeneous tasks with shared dependencies.
type Stage struct {
	ID      int
	Job     *Job
	Name    string
	Tasks   []*Task
	Parents []*Stage

	done     int
	ready    bool
	finished float64
}

// Input reports whether this is the job's input (map) stage.
func (s *Stage) Input() bool { return len(s.Parents) == 0 }

// Complete reports whether every task in the stage has finished.
func (s *Stage) Complete() bool { return s.done == len(s.Tasks) }

// Done returns the number of finished tasks.
func (s *Stage) Done() int { return s.done }

// Ready reports whether all parent stages are complete (tasks may launch).
func (s *Stage) Ready() bool {
	for _, p := range s.Parents {
		if !p.Complete() {
			return false
		}
	}
	return true
}

// FinishedAt returns the time the stage's last task finished (0 if not yet).
func (s *Stage) FinishedAt() float64 { return s.finished }

// Job is a DAG of stages submitted by a user request.
type Job struct {
	ID        int
	App       *Application
	Workload  string
	InputFile string
	Stages    []*Stage

	SubmitAt   float64
	FinishedAt float64
	submitted  bool
}

// InputStage returns the job's HDFS-reading stage.
func (j *Job) InputStage() *Stage {
	for _, s := range j.Stages {
		if s.Input() {
			return s
		}
	}
	return nil
}

// Complete reports whether all stages are complete.
func (j *Job) Complete() bool {
	for _, s := range j.Stages {
		if !s.Complete() {
			return false
		}
	}
	return true
}

// InputTasks returns the tasks of the input stage.
func (j *Job) InputTasks() []*Task {
	in := j.InputStage()
	if in == nil {
		return nil
	}
	return in.Tasks
}

// UnfinishedInputTasks returns input tasks that have not completed — the
// demand set Custody allocates executors for.
func (j *Job) UnfinishedInputTasks() []*Task {
	var out []*Task
	for _, t := range j.InputTasks() {
		if t.State != TaskDone {
			out = append(out, t)
		}
	}
	return out
}

// ReadyStages returns stages whose parents are complete but which still have
// unfinished tasks.
func (j *Job) ReadyStages() []*Stage {
	var out []*Stage
	for _, s := range j.Stages {
		if !s.Complete() && s.Ready() {
			out = append(out, s)
		}
	}
	return out
}

// MarkTaskDone advances stage/job accounting and reports whether the task's
// stage and job completed as a result.
func (j *Job) MarkTaskDone(t *Task, now float64) (stageDone, jobDone bool) {
	if t.State == TaskDone {
		return false, false
	}
	t.State = TaskDone
	t.FinishedAt = now
	t.Stage.done++
	if t.Stage.Complete() {
		t.Stage.finished = now
		stageDone = true
	}
	if j.Complete() {
		j.FinishedAt = now
		jobDone = true
	}
	return stageDone, jobDone
}

// Application is a long-running framework instance that submits jobs.
type Application struct {
	ID   cluster.AppID
	Name string

	Jobs []*Job

	// Locality history over finished jobs, feeding Algorithm 1's fairness
	// metric.
	LocalJobs, TotalJobs   int
	LocalTasks, TotalTasks int
}

// NewApplication creates an application.
func NewApplication(id cluster.AppID, name string) *Application {
	return &Application{ID: id, Name: name}
}

// AddJob registers a submitted job and marks its input-stage tasks ready.
func (a *Application) AddJob(j *Job, now float64) {
	if j.submitted {
		panic("app: job submitted twice")
	}
	j.submitted = true
	j.SubmitAt = now
	j.App = a
	a.Jobs = append(a.Jobs, j)
	for _, s := range j.Stages {
		if s.Ready() {
			for _, t := range s.Tasks {
				if t.State == TaskWaiting {
					t.State = TaskReady
					t.ReadyAt = now
				}
			}
		}
	}
}

// ActiveJobs returns submitted, incomplete jobs.
func (a *Application) ActiveJobs() []*Job {
	var out []*Job
	for _, j := range a.Jobs {
		if j.submitted && !j.Complete() {
			out = append(out, j)
		}
	}
	return out
}

// RecordJobLocality folds a finished job into the history counters.
func (a *Application) RecordJobLocality(local, total int) {
	a.TotalJobs++
	if local == total {
		a.LocalJobs++
	}
	a.LocalTasks += local
	a.TotalTasks += total
}

// StageBuilder constructs job DAGs.
type StageBuilder struct {
	job     *Job
	nextID  int
	nameIdx int
}

// NewJob begins building a job.
func NewJob(id int, workload, inputFile string) *StageBuilder {
	return &StageBuilder{job: &Job{ID: id, Workload: workload, InputFile: inputFile}}
}

// TaskSpec configures the homogeneous tasks of one stage.
type TaskSpec struct {
	ComputeSec  float64
	OutputBytes int64
}

// AddInputStage appends the HDFS-reading stage with one task per block.
func (b *StageBuilder) AddInputStage(name string, blocks []*hdfs.Block, spec TaskSpec) *Stage {
	s := &Stage{ID: b.nextID, Job: b.job, Name: name}
	b.nextID++
	for i, blk := range blocks {
		s.Tasks = append(s.Tasks, &Task{
			Job:         b.job,
			Stage:       s,
			Index:       i,
			Block:       blk.ID,
			InputBytes:  blk.Size,
			ComputeSec:  spec.ComputeSec,
			OutputBytes: spec.OutputBytes,
			RanOnNode:   -1,
		})
	}
	b.job.Stages = append(b.job.Stages, s)
	return s
}

// AddShuffleStage appends a stage of nTasks tasks, each fetching
// bytesPerTask of intermediate data from the parent stages.
func (b *StageBuilder) AddShuffleStage(name string, parents []*Stage, nTasks int, bytesPerTask int64, spec TaskSpec) *Stage {
	s := &Stage{ID: b.nextID, Job: b.job, Name: name, Parents: parents}
	b.nextID++
	for i := 0; i < nTasks; i++ {
		s.Tasks = append(s.Tasks, &Task{
			Job:         b.job,
			Stage:       s,
			Index:       i,
			Block:       -1,
			InputBytes:  bytesPerTask,
			ComputeSec:  spec.ComputeSec,
			OutputBytes: spec.OutputBytes,
			RanOnNode:   -1,
		})
	}
	b.job.Stages = append(b.job.Stages, s)
	return s
}

// Build finalizes and returns the job.
func (b *StageBuilder) Build() *Job {
	if len(b.job.Stages) == 0 {
		panic("app: job with no stages")
	}
	return b.job
}
