package app

import (
	"testing"

	"repro/internal/hdfs"
	"repro/internal/xrand"
)

func blocks(t *testing.T, n int) []*hdfs.Block {
	t.Helper()
	nn := hdfs.NewNameNode(10, xrand.New(1), hdfs.WithBlockSize(100))
	f, err := nn.Create("in", int64(n*100))
	if err != nil {
		t.Fatal(err)
	}
	return f.Blocks
}

func buildSortJob(t *testing.T, nMaps, nReduces int) *Job {
	b := NewJob(1, "Sort", "in")
	in := b.AddInputStage("map", blocks(t, nMaps), TaskSpec{ComputeSec: 1, OutputBytes: 50})
	b.AddShuffleStage("reduce", []*Stage{in}, nReduces, 100, TaskSpec{ComputeSec: 2})
	return b.Build()
}

func TestJobConstruction(t *testing.T) {
	j := buildSortJob(t, 4, 2)
	if len(j.Stages) != 2 {
		t.Fatalf("stages = %d", len(j.Stages))
	}
	in := j.InputStage()
	if in == nil || !in.Input() || len(in.Tasks) != 4 {
		t.Fatalf("input stage wrong: %+v", in)
	}
	for i, task := range in.Tasks {
		if !task.IsInput() || task.Index != i || task.InputBytes != 100 {
			t.Fatalf("input task %d malformed: %+v", i, task)
		}
	}
	red := j.Stages[1]
	if red.Input() || len(red.Tasks) != 2 {
		t.Fatalf("reduce stage wrong")
	}
	for _, task := range red.Tasks {
		if task.IsInput() {
			t.Fatal("reduce task claims to be input")
		}
	}
}

func TestStageReadiness(t *testing.T) {
	j := buildSortJob(t, 2, 1)
	in, red := j.Stages[0], j.Stages[1]
	if !in.Ready() {
		t.Fatal("input stage not ready")
	}
	if red.Ready() {
		t.Fatal("reduce ready before map complete")
	}
	a := NewApplication(0, "test")
	a.AddJob(j, 1.0)
	for _, task := range in.Tasks {
		if task.State != TaskReady || task.ReadyAt != 1.0 {
			t.Fatalf("input task not readied on submit: %+v", task)
		}
	}
	for _, task := range red.Tasks {
		if task.State != TaskWaiting {
			t.Fatal("reduce task ready before parents done")
		}
	}
	// Finish the map tasks.
	sd, jd := j.MarkTaskDone(in.Tasks[0], 2.0)
	if sd || jd {
		t.Fatal("stage/job done after 1 of 2 tasks")
	}
	sd, jd = j.MarkTaskDone(in.Tasks[1], 3.0)
	if !sd || jd {
		t.Fatalf("map stage completion: stageDone=%v jobDone=%v", sd, jd)
	}
	if in.FinishedAt() != 3.0 {
		t.Fatalf("stage finish time = %v", in.FinishedAt())
	}
	if !red.Ready() {
		t.Fatal("reduce not ready after map complete")
	}
	sd, jd = j.MarkTaskDone(red.Tasks[0], 5.0)
	if !sd || !jd {
		t.Fatal("job not done after last task")
	}
	if j.FinishedAt != 5.0 || !j.Complete() {
		t.Fatalf("job finish = %v", j.FinishedAt)
	}
}

func TestMarkTaskDoneIdempotent(t *testing.T) {
	j := buildSortJob(t, 1, 1)
	in := j.Stages[0]
	j.MarkTaskDone(in.Tasks[0], 1)
	sd, jd := j.MarkTaskDone(in.Tasks[0], 2)
	if sd || jd {
		t.Fatal("double MarkTaskDone reported progress")
	}
	if in.Done() != 1 {
		t.Fatalf("done count = %d", in.Done())
	}
}

func TestUnfinishedInputTasks(t *testing.T) {
	j := buildSortJob(t, 3, 1)
	if got := len(j.UnfinishedInputTasks()); got != 3 {
		t.Fatalf("unfinished = %d", got)
	}
	j.MarkTaskDone(j.Stages[0].Tasks[1], 1)
	if got := len(j.UnfinishedInputTasks()); got != 2 {
		t.Fatalf("unfinished after one = %d", got)
	}
}

func TestReadyStages(t *testing.T) {
	j := buildSortJob(t, 1, 1)
	rs := j.ReadyStages()
	if len(rs) != 1 || !rs[0].Input() {
		t.Fatalf("ready stages = %v", rs)
	}
	j.MarkTaskDone(j.Stages[0].Tasks[0], 1)
	rs = j.ReadyStages()
	if len(rs) != 1 || rs[0].Input() {
		t.Fatalf("ready stages after map = %v", rs)
	}
}

func TestMultiParentDAG(t *testing.T) {
	b := NewJob(2, "PageRank", "in")
	in := b.AddInputStage("load", blocks(t, 2), TaskSpec{})
	it1 := b.AddShuffleStage("iter1", []*Stage{in}, 2, 10, TaskSpec{})
	it2 := b.AddShuffleStage("iter2", []*Stage{in, it1}, 2, 10, TaskSpec{})
	j := b.Build()
	if it2.Ready() {
		t.Fatal("stage with incomplete parents ready")
	}
	for _, task := range in.Tasks {
		j.MarkTaskDone(task, 1)
	}
	if it2.Ready() {
		t.Fatal("iter2 ready with iter1 incomplete")
	}
	for _, task := range it1.Tasks {
		j.MarkTaskDone(task, 2)
	}
	if !it2.Ready() {
		t.Fatal("iter2 not ready after both parents")
	}
}

func TestApplicationHistory(t *testing.T) {
	a := NewApplication(3, "wc")
	a.RecordJobLocality(4, 4)
	a.RecordJobLocality(2, 4)
	if a.LocalJobs != 1 || a.TotalJobs != 2 {
		t.Fatalf("job history = %d/%d", a.LocalJobs, a.TotalJobs)
	}
	if a.LocalTasks != 6 || a.TotalTasks != 8 {
		t.Fatalf("task history = %d/%d", a.LocalTasks, a.TotalTasks)
	}
}

func TestActiveJobs(t *testing.T) {
	a := NewApplication(0, "x")
	j1 := buildSortJob(t, 1, 1)
	a.AddJob(j1, 0)
	if got := len(a.ActiveJobs()); got != 1 {
		t.Fatalf("active = %d", got)
	}
	j1.MarkTaskDone(j1.Stages[0].Tasks[0], 1)
	j1.MarkTaskDone(j1.Stages[1].Tasks[0], 2)
	if got := len(a.ActiveJobs()); got != 0 {
		t.Fatalf("active after completion = %d", got)
	}
}

func TestDoubleSubmitPanics(t *testing.T) {
	a := NewApplication(0, "x")
	j := buildSortJob(t, 1, 1)
	a.AddJob(j, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("double submit did not panic")
		}
	}()
	a.AddJob(j, 1)
}

func TestEmptyJobPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty job did not panic")
		}
	}()
	NewJob(1, "x", "f").Build()
}

func TestTaskString(t *testing.T) {
	a := NewApplication(7, "x")
	j := buildSortJob(t, 1, 1)
	a.AddJob(j, 0)
	got := j.Stages[0].Tasks[0].String()
	want := "app7/job1/stage0/task0"
	if got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}
