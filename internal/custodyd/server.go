package custodyd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/obsv"
)

// ServerConfig shapes the concurrent edge around a Service.
type ServerConfig struct {
	// Service configures the deterministic core; Dir is the state
	// directory (intent log, checkpoint, shutdown metrics exposition, and
	// any file sinks).
	Service Config
	Dir     string

	// Admission control: per-tenant and global bounds on queued
	// submissions. Beyond either, submissions are shed with 429.
	QueueCap      int
	TotalQueueCap int

	// BatchSize is how many queued submissions one round applies in normal
	// mode; degraded mode multiplies it by the service's step factor
	// (coarser batching).
	BatchSize int

	// CheckpointEvery is the number of rounds between checkpoints.
	CheckpointEvery int

	// RoundBudget is the wall-clock budget per round: two consecutive
	// overruns trip degraded mode, three consecutive fast rounds restore
	// normal mode. Ignored when Clock is nil.
	RoundBudget time.Duration

	// RoundInterval is the expected pacing of Tick — used only to estimate
	// queue wait for Retry-After headers and request budgets.
	RoundInterval time.Duration

	// HeartbeatTimeout is the executor liveness deadline: an executor that
	// a tenant has reported via /v1/heartbeat and then stayed silent about
	// for this long is revoked (a committed revoke-exec op releases it back
	// to the pool) at the next round. Zero disables the reaper; it also
	// requires Clock, since liveness is a wall-clock judgement.
	HeartbeatTimeout time.Duration

	// Clock supplies wall time and Tick paces rounds; both are injected
	// from the cmd/ edge so internal code stays clock-free. A nil Clock
	// disables the degraded-mode ladder; a nil Tick means rounds run only
	// on submission wakeups (and explicit RoundOnce calls in tests).
	Clock func() time.Time
	Tick  <-chan time.Time

	// LogJSONL / LogCSV attach file sinks (obsv.jsonl / obsv.csv in Dir,
	// truncated per boot: sinks attach after replay, so each incarnation's
	// artifacts cover exactly its own live traffic).
	LogJSONL bool
	LogCSV   bool
}

// fill applies defaults to zero fields.
func (c *ServerConfig) fill() {
	c.Service.fill()
	if c.QueueCap == 0 {
		c.QueueCap = 16
	}
	if c.TotalQueueCap == 0 {
		c.TotalQueueCap = c.QueueCap * c.Service.MaxTenants
	}
	if c.BatchSize == 0 {
		c.BatchSize = 8
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 8
	}
	if c.RoundBudget == 0 {
		c.RoundBudget = 50 * time.Millisecond
	}
	if c.RoundInterval == 0 {
		c.RoundInterval = 100 * time.Millisecond
	}
}

// submission is one queued job request.
type submission struct {
	Workload string
	File     int
}

// Server is the concurrent edge: HTTP handlers and the round loop share
// the Service behind one mutex. The loop goroutine is the only spawner;
// handlers never touch the driver stack without mu held.
type Server struct {
	cfg ServerConfig

	stop  chan struct{}
	abort chan struct{}
	wake  chan struct{}
	done  chan struct{}

	stopOnce  sync.Once
	abortOnce sync.Once

	counts *obsv.CountingSink

	mu sync.Mutex
	//custody:guardedby mu
	svc *Service
	//custody:guardedby mu
	wal *WAL
	//custody:guardedby mu
	boot BootInfo
	//custody:guardedby mu
	queues [][]submission
	//custody:guardedby mu
	queued int
	//custody:guardedby mu
	accepted int
	//custody:guardedby mu
	shed int
	//custody:guardedby mu
	degraded bool
	//custody:guardedby mu
	slowRounds int
	//custody:guardedby mu
	fastRounds int
	//custody:guardedby mu
	modeChanges int
	//custody:guardedby mu
	sinceCkpt int
	//custody:guardedby mu
	lastBeat map[int]time.Time
	//custody:guardedby mu
	reaped int
	//custody:guardedby mu
	lastErr error
	//custody:guardedby mu
	snap Snapshot
	//custody:guardedby mu
	metricsPage []byte
	//custody:guardedby mu
	draining bool
	//custody:guardedby mu
	closed bool
	//custody:guardedby mu
	started bool
}

// NewServer boots (or recovers) the service from cfg.Dir and wires the
// provenance sinks. Call Start to run the round loop, Handler for the
// HTTP API, and Shutdown for a graceful drain.
func NewServer(cfg ServerConfig) (*Server, error) {
	cfg.fill()
	svc, wal, boot, err := Open(cfg.Dir, cfg.Service)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:    cfg,
		stop:   make(chan struct{}),
		abort:  make(chan struct{}),
		wake:   make(chan struct{}, 1),
		done:   make(chan struct{}),
		counts: &obsv.CountingSink{},
	}
	// Sinks attach only now, after Open's replay: recovery must not
	// re-emit historical records into this incarnation's artifacts.
	svc.Hub().AddSink(s.counts)
	if cfg.LogJSONL {
		f, err := os.Create(filepath.Join(cfg.Dir, "obsv.jsonl"))
		if err != nil {
			return nil, fmt.Errorf("custodyd: jsonl sink: %w", err)
		}
		svc.Hub().AddSink(obsv.NewJSONLSink(f))
	}
	if cfg.LogCSV {
		f, err := os.Create(filepath.Join(cfg.Dir, "obsv.csv"))
		if err != nil {
			return nil, fmt.Errorf("custodyd: csv sink: %w", err)
		}
		svc.Hub().AddSink(obsv.NewCSVSink(f))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.svc = svc
	s.wal = wal
	s.boot = boot
	s.queues = make([][]submission, cfg.Service.MaxTenants)
	s.lastBeat = make(map[int]time.Time)
	s.publishLocked()
	return s, nil
}

// Boot reports what recovery found.
func (s *Server) Boot() BootInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.boot
}

// Start launches the round loop.
func (s *Server) Start() {
	s.mu.Lock()
	s.started = true
	s.mu.Unlock()
	go s.loop()
}

// loop serializes rounds: ticks and submission wakeups both funnel into
// RoundOnce, SIGTERM-driven Shutdown closes stop (graceful finalize), and
// Abort (the in-process stand-in for kill -9) exits without any cleanup.
func (s *Server) loop() {
	for {
		select {
		case <-s.abort:
			close(s.done)
			return
		case <-s.stop:
			s.finalize()
			close(s.done)
			return
		case <-s.cfg.Tick:
			s.RoundOnce()
		case <-s.wake:
			s.RoundOnce()
		}
	}
}

// RoundOnce runs one allocation round (also the test hook for tickless
// deterministic servers).
func (s *Server) RoundOnce() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.roundLocked()
}

// roundLocked applies a batch of queued submissions, runs a round unless
// the service is fully idle, walks the degraded-mode ladder, checkpoints
// on schedule, and republishes the status snapshot and metrics page.
// Skipping ops entirely when idle keeps the digest stable across idle
// periods — what lets a crash/restart cycle be compared digest-for-digest.
//
//custody:holds mu
func (s *Server) roundLocked() {
	if s.closed || s.svc.Broken() != nil {
		return
	}
	if s.cfg.Clock != nil && s.cfg.HeartbeatTimeout > 0 {
		s.reapSilentLocked(s.cfg.Clock())
	}
	var start time.Time
	if s.cfg.Clock != nil {
		start = s.cfg.Clock()
	}
	batch := s.cfg.BatchSize
	if s.degraded {
		batch = int(float64(batch) * s.cfg.Service.DegradedStepFactor)
	}
	popped := s.applyQueuedLocked(batch)
	if popped > 0 || !s.svc.Idle() {
		step := s.cfg.Service.RoundSimStep
		if s.degraded {
			step *= s.cfg.Service.DegradedStepFactor
		}
		if err := s.svc.Round(step, s.degraded); err != nil {
			s.lastErr = err
		}
		s.sinceCkpt++
	}
	if s.cfg.Clock != nil {
		s.ladderLocked(s.cfg.Clock().Sub(start))
	}
	if s.sinceCkpt >= s.cfg.CheckpointEvery {
		s.checkpointLocked()
	}
	s.publishLocked()
}

// applyQueuedLocked pops up to batch queued submissions round-robin across
// tenants (so one tenant's backlog cannot starve the rest) and commits
// them.
//
//custody:holds mu
func (s *Server) applyQueuedLocked(batch int) int {
	popped := 0
	for popped < batch && s.queued > 0 {
		progress := false
		for t := range s.queues {
			if popped == batch {
				break
			}
			if len(s.queues[t]) == 0 {
				continue
			}
			sub := s.queues[t][0]
			s.queues[t] = s.queues[t][1:]
			s.queued--
			popped++
			progress = true
			if _, err := s.svc.Submit(t, sub.Workload, sub.File); err != nil {
				s.lastErr = err
			}
		}
		if !progress {
			break
		}
	}
	return popped
}

// ladderLocked walks the degraded-mode ladder on the measured round wall
// time. Transitions are tapped into provenance (Hub.Mode) so overload
// shows up in the same artifacts as the decisions it coarsens.
//
//custody:holds mu
func (s *Server) ladderLocked(d time.Duration) {
	if d > s.cfg.RoundBudget {
		s.slowRounds++
		s.fastRounds = 0
		if !s.degraded && s.slowRounds >= 2 {
			s.degraded = true
			s.modeChanges++
			s.svc.Hub().Mode(true, fmt.Sprintf("%d consecutive rounds over the %v budget", s.slowRounds, s.cfg.RoundBudget))
		}
		return
	}
	s.fastRounds++
	s.slowRounds = 0
	if s.degraded && s.fastRounds >= 3 {
		s.degraded = false
		s.modeChanges++
		s.svc.Hub().Mode(false, fmt.Sprintf("%d consecutive rounds within the %v budget", s.fastRounds, s.cfg.RoundBudget))
	}
}

// reapSilentLocked revokes every tracked executor whose last heartbeat is
// older than the deadline. Executors the normal flow already returned to
// the pool are dropped from tracking without an op — only a still-owned
// silent executor is worth a committed revocation. Candidates are revoked
// in ascending ID order so the intent log (and therefore replay) does not
// depend on map iteration order.
//
//custody:holds mu
func (s *Server) reapSilentLocked(now time.Time) {
	var silent []int
	for id, last := range s.lastBeat {
		if !s.svc.ExecOwned(id) {
			delete(s.lastBeat, id)
			continue
		}
		if now.Sub(last) >= s.cfg.HeartbeatTimeout {
			silent = append(silent, id)
		}
	}
	sort.Ints(silent)
	for _, id := range silent {
		delete(s.lastBeat, id)
		if err := s.svc.RevokeExec(id); err != nil {
			s.lastErr = err
			continue
		}
		s.reaped++
	}
}

//custody:holds mu
func (s *Server) checkpointLocked() {
	s.sinceCkpt = 0
	if err := WriteCheckpoint(filepath.Join(s.cfg.Dir, checkpointFile), CheckpointFrom(s.svc)); err != nil {
		s.lastErr = err
	}
}

// publishLocked refreshes the cached status snapshot and the /metrics
// page. The page is rendered once per round into a byte slice served
// whole, so concurrent scrapes each get one complete exposition with
// exactly one "# EOF" terminator.
//
//custody:holds mu
func (s *Server) publishLocked() {
	s.snap = s.svc.Snapshot()
	var buf bytes.Buffer
	degraded := 0.0
	if s.degraded {
		degraded = 1
	}
	extras := []obsv.Metric{
		{Name: "custody_queue_depth", Help: "queued submissions awaiting a round", Kind: "gauge", Val: float64(s.queued)},
		{Name: "custody_submissions_accepted", Help: "submissions admitted to the queues", Kind: "counter", Val: float64(s.accepted)},
		{Name: "custody_submissions_shed", Help: "submissions refused with 429", Kind: "counter", Val: float64(s.shed)},
		{Name: "custody_degraded_mode", Help: "1 while the degraded-mode ladder is tripped", Kind: "gauge", Val: degraded},
		{Name: "custody_wal_seq", Help: "last committed intent-log sequence number", Kind: "gauge", Val: float64(s.svc.Seq())},
		{Name: "custody_execs_reaped", Help: "executors revoked for missing the heartbeat deadline", Kind: "counter", Val: float64(s.reaped)},
	}
	if err := obsv.RenderOpenMetrics(&buf, s.svc.Driver().Collector(), s.svc.Hub().Flight, s.counts.Counts(), extras...); err != nil {
		s.lastErr = err
		return
	}
	s.metricsPage = buf.Bytes()
}

// finalize is the graceful path: drain every queued submission, run the
// engine dry, write the final checkpoint and metrics exposition, and flush
// and close the sinks and the intent log.
func (s *Server) finalize() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.draining = true
	for s.queued > 0 {
		if s.applyQueuedLocked(s.queued) == 0 {
			break
		}
	}
	if err := s.svc.Drain(); err != nil {
		s.lastErr = err
	}
	s.checkpointLocked()
	s.publishLocked()
	if err := os.WriteFile(filepath.Join(s.cfg.Dir, metricsFile), s.metricsPage, 0o644); err != nil {
		s.lastErr = err
	}
	if err := s.svc.Hub().Close(); err != nil {
		s.lastErr = err
	}
	if err := s.wal.Close(); err != nil {
		s.lastErr = err
	}
	s.closed = true
}

// Shutdown drains gracefully: in-flight work completes, sinks flush, and a
// final checkpoint lands before the round loop exits. Safe to call more
// than once; respects ctx for the drain's duration.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	started := s.started
	s.mu.Unlock()
	if !started {
		s.stopOnce.Do(s.finalize)
		return s.Err()
	}
	s.stopOnce.Do(func() { close(s.stop) })
	select {
	case <-s.done:
	case <-ctx.Done():
		return ctx.Err()
	}
	return s.Err()
}

// Abort kills the round loop without any draining, flushing, or
// checkpointing — the in-process equivalent of kill -9, used by crash
// tests. State on disk is whatever the write-ahead log already holds.
func (s *Server) Abort() {
	s.mu.Lock()
	started := s.started
	s.closed = true
	s.mu.Unlock()
	s.abortOnce.Do(func() { close(s.abort) })
	if started {
		<-s.done
	}
}

// Err returns the first retained failure (checkpoint writes, sink
// flushes, submission errors), if any.
func (s *Server) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lastErr != nil {
		return s.lastErr
	}
	return s.svc.Hub().Err()
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

// writeJSON writes one JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v) //custody:ignore errdrop a response-write failure means the client went away; nothing to do server-side
}

// Handler returns the versioned HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/register-app", s.handleRegister)
	mux.HandleFunc("POST /v1/submit-job", s.handleSubmit)
	mux.HandleFunc("POST /v1/heartbeat", s.handleHeartbeat)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name string `json:"name"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad request body: " + err.Error()})
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.closed {
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "draining"})
		return
	}
	tenant, err := s.svc.Register(req.Name)
	switch {
	case errors.Is(err, ErrTenantQuota):
		writeJSON(w, http.StatusForbidden, apiError{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"tenant": tenant})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Tenant   int    `json:"tenant"`
		Workload string `json:"workload"`
		File     int    `json:"file"`
		BudgetMS int    `json:"budget_ms"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad request body: " + err.Error()})
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.closed {
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "draining"})
		return
	}
	if err := s.svc.ValidateSubmit(req.Tenant, req.Workload, req.File); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	waitMS := s.estimatedWaitMSLocked()
	switch {
	case len(s.queues[req.Tenant]) >= s.cfg.QueueCap,
		s.queued >= s.cfg.TotalQueueCap:
		s.shed++
		w.Header().Set("Retry-After", s.retryAfterLocked())
		writeJSON(w, http.StatusTooManyRequests, apiError{Error: "submission queue full; retry later"})
		return
	case req.BudgetMS > 0 && waitMS > req.BudgetMS:
		s.shed++
		w.Header().Set("Retry-After", s.retryAfterLocked())
		writeJSON(w, http.StatusTooManyRequests,
			apiError{Error: fmt.Sprintf("estimated queue wait %dms exceeds the request budget %dms", waitMS, req.BudgetMS)})
		return
	}
	s.queues[req.Tenant] = append(s.queues[req.Tenant], submission{Workload: req.Workload, File: req.File})
	s.queued++
	s.accepted++
	select {
	case s.wake <- struct{}{}:
	default:
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"queued":            len(s.queues[req.Tenant]),
		"estimated_wait_ms": waitMS,
	})
}

// estimatedWaitMSLocked estimates how long a submission entering the queue
// now waits before its round, from the queue depth and the round pacing.
//
//custody:holds mu
func (s *Server) estimatedWaitMSLocked() int {
	rounds := s.queued/s.cfg.BatchSize + 1
	return int(time.Duration(rounds) * s.cfg.RoundInterval / time.Millisecond)
}

// retryAfterLocked renders the Retry-After header, in whole seconds and at
// least 1.
//
//custody:holds mu
func (s *Server) retryAfterLocked() string {
	sec := int(time.Duration(s.queued/s.cfg.BatchSize+1) * s.cfg.RoundInterval / time.Second)
	if sec < 1 {
		sec = 1
	}
	return fmt.Sprintf("%d", sec)
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Tenant int   `json:"tenant"`
		Execs  []int `json:"execs"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad request body: " + err.Error()})
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if req.Tenant < 0 || req.Tenant >= s.svc.Tenants() {
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("unknown tenant %d", req.Tenant)})
		return
	}
	// Reported executor IDs drive liveness: each one the tenant actually
	// owns refreshes its deadline. Only meaningful with a wall clock.
	tracked := 0
	if s.cfg.Clock != nil {
		now := s.cfg.Clock()
		for _, id := range req.Execs {
			if s.svc.OwnsExec(req.Tenant, id) {
				s.lastBeat[id] = now
				tracked++
			}
		}
	}
	resp := map[string]any{
		"sim_time": s.snap.SimTime,
		"degraded": s.degraded,
		"seq":      s.snap.Seq,
		"tracked":  tracked,
	}
	for _, ts := range s.snap.Tenants {
		if ts.Tenant == req.Tenant {
			resp["pending"] = ts.Pending
			resp["jobs"] = ts.Jobs
			resp["done"] = ts.Done
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// statusResponse is the full service view: the deterministic snapshot plus
// the server-side admission and recovery state.
type statusResponse struct {
	Version int `json:"version"`
	Snapshot
	Recovered          bool   `json:"recovered"`
	ReplayedOps        int    `json:"replayed_ops"`
	CheckpointVerified bool   `json:"checkpoint_verified"`
	Degraded           bool   `json:"degraded"`
	ModeChanges        int    `json:"mode_changes"`
	Queued             int    `json:"queued"`
	Accepted           int    `json:"accepted"`
	Shed               int    `json:"shed"`
	ExecsReaped        int    `json:"execs_reaped"`
	Draining           bool   `json:"draining"`
	LastError          string `json:"last_error,omitempty"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	resp := statusResponse{
		Version:            1,
		Snapshot:           s.snap,
		Recovered:          s.boot.Recovered,
		ReplayedOps:        s.boot.ReplayedOps,
		CheckpointVerified: s.boot.CheckpointVerified,
		Degraded:           s.degraded,
		ModeChanges:        s.modeChanges,
		Queued:             s.queued,
		Accepted:           s.accepted,
		Shed:               s.shed,
		ExecsReaped:        s.reaped,
		Draining:           s.draining,
	}
	if s.lastErr != nil {
		resp.LastError = s.lastErr.Error()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	page := s.metricsPage
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	w.Write(page) //custody:ignore errdrop a scrape-write failure means the scraper went away; nothing to do server-side
}
