package custodyd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// newTestServer boots a tickless server (rounds driven by RoundOnce) over
// a fresh state dir; mutate tweaks the config before boot.
func newTestServer(t *testing.T, dir string, mutate func(*ServerConfig)) *Server {
	t.Helper()
	cfg := ServerConfig{Service: testConfig(), Dir: dir}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// postJSON posts a JSON body and decodes the JSON response.
func postJSON(t *testing.T, client *http.Client, url string, body any, out any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp
}

func getStatus(t *testing.T, client *http.Client, base string) statusResponse {
	t.Helper()
	resp, err := client.Get(base + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestServerHTTPEndToEnd(t *testing.T) {
	s := newTestServer(t, t.TempDir(), nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	var reg struct {
		Tenant int `json:"tenant"`
	}
	resp := postJSON(t, client, ts.URL+"/v1/register-app", map[string]string{"name": "alice"}, &reg)
	if resp.StatusCode != http.StatusOK || reg.Tenant != 0 {
		t.Fatalf("register: status %d tenant %d", resp.StatusCode, reg.Tenant)
	}
	for i := 0; i < 3; i++ {
		resp := postJSON(t, client, ts.URL+"/v1/submit-job",
			map[string]any{"tenant": 0, "workload": "WordCount", "file": 0}, nil)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
	}
	// Bad submissions are rejected up front with 400, not queued.
	resp = postJSON(t, client, ts.URL+"/v1/submit-job", map[string]any{"tenant": 0, "workload": "Bogus"}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid workload: status %d, want 400", resp.StatusCode)
	}

	var st statusResponse
	for i := 0; i < 200; i++ {
		s.RoundOnce()
		if st = getStatus(t, client, ts.URL); st.Idle && st.Queued == 0 && st.JobsFinished == 3 {
			break
		}
	}
	if !st.Idle || st.JobsFinished != 3 || st.Accepted != 3 {
		t.Fatalf("final status: %+v", st)
	}

	var hb struct {
		Pending *int `json:"pending"`
		Done    int  `json:"done"`
	}
	resp = postJSON(t, client, ts.URL+"/v1/heartbeat", map[string]int{"tenant": 0}, &hb)
	if resp.StatusCode != http.StatusOK || hb.Pending == nil || hb.Done != 3 {
		t.Fatalf("heartbeat: status %d body %+v", resp.StatusCode, hb)
	}

	mresp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var page bytes.Buffer
	if _, err := page.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	exposition := page.String()
	if !strings.HasSuffix(exposition, "# EOF\n") {
		t.Fatalf("metrics page not EOF-terminated:\n%s", exposition)
	}
	if n := strings.Count(exposition, "# EOF"); n != 1 {
		t.Fatalf("metrics page has %d EOF markers, want exactly 1", n)
	}
	for _, want := range []string{"custody_decisions_total", "custody_queue_depth 0", "custody_submissions_accepted_total 3"} {
		if !strings.Contains(exposition, want) {
			t.Fatalf("metrics page missing %q:\n%s", want, exposition)
		}
	}
}

// TestMetricsConcurrentScrapes hammers /metrics from many goroutines while
// rounds run: every scrape must be one complete exposition with exactly
// one "# EOF" (satellite: live OpenMetrics endpoint).
func TestMetricsConcurrentScrapes(t *testing.T) {
	s := newTestServer(t, t.TempDir(), nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	postJSON(t, client, ts.URL+"/v1/register-app", map[string]string{"name": "a"}, nil)
	for i := 0; i < 4; i++ {
		postJSON(t, client, ts.URL+"/v1/submit-job", map[string]any{"tenant": 0, "workload": "Sort", "file": 1}, nil)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				resp, err := client.Get(ts.URL + "/metrics")
				if err != nil {
					errs <- err
					return
				}
				var b bytes.Buffer
				_, err = b.ReadFrom(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if n := strings.Count(b.String(), "# EOF"); n != 1 || !strings.HasSuffix(b.String(), "# EOF\n") {
					errs <- fmt.Errorf("scrape saw %d EOF markers", n)
					return
				}
			}
		}()
	}
	for i := 0; i < 30; i++ {
		s.RoundOnce()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestOverloadShedsBounded drives submissions at far beyond the
// sustainable rate (no rounds run at all while the burst lands): admission
// must shed with 429 + Retry-After once the bounded queues fill, queue
// memory must stay within the configured caps, and the accepted subset
// must still finish with a clean audit (acceptance criterion).
func TestOverloadShedsBounded(t *testing.T) {
	s := newTestServer(t, t.TempDir(), func(c *ServerConfig) {
		c.QueueCap = 4
		c.TotalQueueCap = 6
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	postJSON(t, client, ts.URL+"/v1/register-app", map[string]string{"name": "a"}, nil)
	postJSON(t, client, ts.URL+"/v1/register-app", map[string]string{"name": "b"}, nil)

	accepted, shed := 0, 0
	for i := 0; i < 60; i++ { // 10× the total queue capacity
		resp := postJSON(t, client, ts.URL+"/v1/submit-job",
			map[string]any{"tenant": i % 2, "workload": "WordCount", "file": 0}, nil)
		switch resp.StatusCode {
		case http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
			shed++
		default:
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
		// Queue memory stays bounded the whole time.
		s.mu.Lock()
		if s.queued > 6 {
			t.Fatalf("queued %d > total cap 6", s.queued)
		}
		for tn := range s.queues {
			if len(s.queues[tn]) > 4 {
				t.Fatalf("tenant %d queue %d > cap 4", tn, len(s.queues[tn]))
			}
		}
		s.mu.Unlock()
	}
	if shed == 0 || accepted > 6 {
		t.Fatalf("accepted=%d shed=%d: want bounded acceptance and nonzero shed", accepted, shed)
	}

	// A request whose budget cannot cover the current queue wait is shed
	// even though capacity might open later (deadline admission).
	s.RoundOnce() // make room
	resp := postJSON(t, client, ts.URL+"/v1/submit-job",
		map[string]any{"tenant": 0, "workload": "WordCount", "file": 0, "budget_ms": 1}, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("budget-exceeded submission: status %d, want 429", resp.StatusCode)
	}

	var st statusResponse
	for i := 0; i < 300; i++ {
		s.RoundOnce()
		if st = getStatus(t, client, ts.URL); st.Idle && st.Queued == 0 {
			break
		}
	}
	if !st.Idle || st.JobsFinished != accepted {
		t.Fatalf("accepted subset did not finish: %+v (accepted %d)", st, accepted)
	}
	s.mu.Lock()
	err := s.svc.Driver().Audit()
	s.mu.Unlock()
	if err != nil {
		t.Fatalf("audit after overload run: %v", err)
	}
	if st.LastError != "" {
		t.Fatalf("server retained error: %s", st.LastError)
	}
}

// TestGracefulShutdownDrains covers the SIGTERM path (cmd/custodyd wires
// SIGTERM to Shutdown): with a round in flight and submissions still
// queued, Shutdown must complete the work, flush the JSONL/CSV sinks,
// write the metrics exposition, and leave a loadable checkpoint whose
// digest matches a fresh replay of the intent log.
func TestGracefulShutdownDrains(t *testing.T) {
	dir := t.TempDir()
	tick := make(chan time.Time)
	s := newTestServer(t, dir, func(c *ServerConfig) {
		c.Tick = tick
		c.LogJSONL = true
		c.LogCSV = true
		c.BatchSize = 1 // keep submissions queued across rounds
	})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	postJSON(t, client, ts.URL+"/v1/register-app", map[string]string{"name": "a"}, nil)
	for i := 0; i < 5; i++ {
		postJSON(t, client, ts.URL+"/v1/submit-job", map[string]any{"tenant": 0, "workload": "Sort", "file": 1}, nil)
	}
	tick <- time.Time{} // one in-flight round, 4 submissions still queued

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	st := getStatus(t, client, ts.URL)
	if !st.Idle || st.JobsFinished != 5 || st.Queued != 0 {
		t.Fatalf("post-shutdown status: %+v", st)
	}

	for _, name := range []string{"obsv.jsonl", "obsv.csv", metricsFile} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil || len(data) == 0 {
			t.Fatalf("sink %s not flushed: err=%v len=%d", name, err, len(data))
		}
	}
	om, err := os.ReadFile(filepath.Join(dir, metricsFile))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(om), "# EOF\n") || strings.Count(string(om), "# EOF") != 1 {
		t.Fatalf("final exposition malformed:\n%s", om)
	}

	cp, err := LoadCheckpoint(filepath.Join(dir, checkpointFile))
	if err != nil {
		t.Fatalf("final checkpoint not loadable: %v", err)
	}
	if !cp.Snapshot.Idle || cp.Snapshot.JobsFinished != 5 {
		t.Fatalf("final checkpoint snapshot: %+v", cp.Snapshot)
	}
	svc2, wal2, info, err := Open(dir, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	if !info.CheckpointVerified {
		t.Fatalf("boot info %+v: checkpoint not verified", info)
	}
	if got := svc2.Digest(); got != cp.Snapshot.Digest {
		t.Fatalf("replay digest %s != checkpoint digest %s", got, cp.Snapshot.Digest)
	}
}

// TestKill9ReplayRecoversDigest is the sibling crash test: Abort the
// server mid-workload with no flushing or checkpointing (kill -9), reopen
// the state dir, and require the recovered digest to equal the digest
// published just before the kill.
func TestKill9ReplayRecoversDigest(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, dir, nil) // tickless: rounds driven manually so the crash point is exact
	ts := httptest.NewServer(s.Handler())
	client := ts.Client()

	postJSON(t, client, ts.URL+"/v1/register-app", map[string]string{"name": "a"}, nil)
	for i := 0; i < 4; i++ {
		postJSON(t, client, ts.URL+"/v1/submit-job", map[string]any{"tenant": 0, "workload": "PageRank", "file": 0}, nil)
	}
	for i := 0; i < 6; i++ {
		s.RoundOnce() // mid-workload: jobs still running
	}
	pre := getStatus(t, client, ts.URL)
	ts.Close()
	s.Abort()

	s2 := newTestServer(t, dir, nil)
	if boot := s2.Boot(); !boot.Recovered || boot.ReplayedOps == 0 {
		t.Fatalf("boot info %+v: want recovery", boot)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	post := getStatus(t, ts2.Client(), ts2.URL)
	if post.Digest != pre.Digest || post.Seq != pre.Seq {
		t.Fatalf("recovered digest %s (seq %d) != pre-kill digest %s (seq %d)", post.Digest, post.Seq, pre.Digest, pre.Seq)
	}
	// The recovered incarnation finishes the workload cleanly.
	for i := 0; i < 300 && !getStatus(t, ts2.Client(), ts2.URL).Idle; i++ {
		s2.RoundOnce()
	}
	final := getStatus(t, ts2.Client(), ts2.URL)
	if !final.Idle || final.JobsFinished != 4 {
		t.Fatalf("recovered run did not finish: %+v", final)
	}
}

// TestDegradedModeLadder drives the ladder with an injected clock: two
// consecutive over-budget rounds trip degraded mode (rounds stop forcing
// Reallocate and cover a coarser step, recorded in the op log), three fast
// rounds restore it, and every transition is visible in provenance.
func TestDegradedModeLadder(t *testing.T) {
	dir := t.TempDir()
	var now time.Time
	var slow bool
	clock := func() time.Time {
		if slow {
			now = now.Add(60 * time.Millisecond) // every call advances: rounds measure 60ms > 50ms budget
		}
		return now
	}
	s := newTestServer(t, dir, func(c *ServerConfig) {
		c.Clock = clock
		c.BatchSize = 1
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	postJSON(t, client, ts.URL+"/v1/register-app", map[string]string{"name": "a"}, nil)
	for i := 0; i < 8; i++ {
		postJSON(t, client, ts.URL+"/v1/submit-job", map[string]any{"tenant": 0, "workload": "WordCount", "file": 0}, nil)
	}

	slow = true
	s.RoundOnce()
	if getStatus(t, client, ts.URL).Degraded {
		t.Fatal("degraded after one slow round; ladder needs two")
	}
	s.RoundOnce()
	st := getStatus(t, client, ts.URL)
	if !st.Degraded || st.ModeChanges != 1 {
		t.Fatalf("after two slow rounds: %+v", st)
	}
	s.RoundOnce() // one degraded round while still slow
	slow = false
	for i := 0; i < 3; i++ {
		s.RoundOnce()
	}
	st = getStatus(t, client, ts.URL)
	if st.Degraded || st.ModeChanges != 2 {
		t.Fatalf("after three fast rounds: %+v", st)
	}
	if st.DegradedRounds == 0 {
		t.Fatal("no degraded rounds recorded")
	}

	// The mode transitions are provenance: the counting sink saw both, and
	// the op log records which rounds ran degraded (replay follows the
	// log, not the clock).
	if s.counts.Counts().ModeChanges != 2 {
		t.Fatalf("counting sink saw %d mode changes, want 2", s.counts.Counts().ModeChanges)
	}
	s.mu.Lock()
	ops := s.wal.Ops()
	s.mu.Unlock()
	degradedOps := 0
	for _, op := range ops {
		if op.Kind == OpRound && op.Degraded {
			degradedOps++
			if op.Step != testConfig().RoundSimStep*testConfig().DegradedStepFactor {
				t.Fatalf("degraded round step %v, want coarser %v", op.Step, testConfig().RoundSimStep*testConfig().DegradedStepFactor)
			}
		}
	}
	if degradedOps == 0 {
		t.Fatal("no degraded round ops in the intent log")
	}
}
