package custodyd

import (
	"sort"
	"testing"

	"repro/internal/chaos"
	"repro/internal/xrand"
)

// stormEvent is one scheduled storm action at a simulated time.
type stormEvent struct {
	at   float64
	kind string // "inject" | "restore" | "crash"
	f    chaos.Fault
}

// stormPlan draws a seeded mixed-fault schedule with six daemon-crash
// cycles and flattens it into time-ordered events. Both storm runs (with
// and without crashes) consume the identical schedule.
func stormPlan(cfg Config) []stormEvent {
	profile := chaos.Profile{
		Partitions:        1,
		LinkDegrades:      1,
		ExecutorCrashes:   2,
		NodeFlaps:         1,
		SlowDisks:         1,
		FlakyDataNodes:    1,
		StaleWindows:      1,
		DaemonCrashes:     6,
		MeanDurationSec:   4,
		DegradeFactor:     0.1,
		SlowDiskFactor:    0.2,
		PartitionFraction: 0.25,
	}
	faults := chaos.Plan(profile, 30, cfg.Nodes, cfg.Nodes*cfg.ExecutorsPerNode, xrand.New(7))
	driverFaults, crashes := chaos.Split(faults)
	var evs []stormEvent
	for _, f := range driverFaults {
		evs = append(evs, stormEvent{at: f.At, kind: "inject", f: f})
		evs = append(evs, stormEvent{at: f.At + f.Duration, kind: "restore", f: f})
	}
	for _, f := range crashes {
		evs = append(evs, stormEvent{at: f.At, kind: "crash", f: f})
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].at < evs[j].at })
	return evs
}

// runStorm drives the schedule through a Service. Crash events — honored
// only when withCrashes is set — kill the incarnation and recover a fresh
// one from the intent log, asserting the digest survives the cycle; the
// time advancement they cause is identical in both runs, so the committed
// op sequences (and therefore final digests) must match. AuditEveryOp is
// on, so every fault application, reversal, and round is audited and any
// invariant violation fails the commit.
func runStorm(t *testing.T, evs []stormEvent, withCrashes bool) (digest string, cycles int) {
	t.Helper()
	cfg := testConfig()
	jnl := NewMemJournal()
	svc, err := NewService(cfg, jnl)
	if err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := svc.Register("alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Register("bob"); err != nil {
		t.Fatal(err)
	}
	for i, kind := range []string{"WordCount", "Sort", "PageRank", "Sort", "WordCount", "PageRank"} {
		if _, err := svc.Submit(i%2, kind, i%len(svc.Files())); err != nil {
			t.Fatal(err)
		}
	}

	now := 0.0
	for _, ev := range evs {
		if ev.at > now {
			must(svc.Round(ev.at-now, false))
			now = ev.at
		}
		switch ev.kind {
		case "inject":
			must(svc.InjectFault(ev.f))
		case "restore":
			must(svc.RestoreFault(ev.f))
		case "crash":
			if !withCrashes {
				continue
			}
			before := svc.Digest()
			rejnl := NewMemJournal(jnl.Ops()...)
			recovered, err := NewService(cfg, rejnl)
			if err != nil {
				t.Fatalf("crash cycle %d at t=%.2f: recovery failed: %v", cycles+1, ev.at, err)
			}
			if got := recovered.Digest(); got != before {
				t.Fatalf("crash cycle %d at t=%.2f: recovered digest %s != pre-crash %s", cycles+1, ev.at, got, before)
			}
			svc, jnl = recovered, rejnl
			cycles++
		}
	}
	must(svc.Drain())
	if err := svc.Driver().Audit(); err != nil {
		t.Fatalf("final audit: %v", err)
	}
	if !svc.Idle() {
		t.Fatalf("storm workload did not finish: %d submitted, %d finished", svc.JobsSubmitted(), svc.JobsFinished())
	}
	return svc.Digest(), cycles
}

// TestDaemonCrashStorm is the acceptance gate: a seeded mixed-fault storm
// with at least five daemon kill/restart cycles mid-workload completes with
// zero audit violations, every cycle recovers digest-identical state, and
// the final digest is byte-identical to an uncrashed run of the same
// schedule.
func TestDaemonCrashStorm(t *testing.T) {
	evs := stormPlan(testConfig())
	crashed, cycles := runStorm(t, evs, true)
	if cycles < 5 {
		t.Fatalf("storm performed %d crash cycles, want >= 5", cycles)
	}
	clean, zero := runStorm(t, evs, false)
	if zero != 0 {
		t.Fatalf("uncrashed run performed %d crash cycles", zero)
	}
	if crashed != clean {
		t.Fatalf("crashed-run digest %s != uncrashed-run digest %s", crashed, clean)
	}
}
