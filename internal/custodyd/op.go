package custodyd

import (
	"fmt"

	"repro/internal/chaos"
)

// OpKind names one intent-log operation.
type OpKind string

// The op alphabet. Every externally visible state change of a Service is
// exactly one of these; anything not expressible as an op cannot change
// replayed state, which is what keeps recovery byte-identical.
const (
	OpRegisterApp  OpKind = "register-app"
	OpSubmitJob    OpKind = "submit-job"
	OpRound        OpKind = "round"
	OpInjectFault  OpKind = "inject-fault"
	OpRestoreFault OpKind = "restore-fault"
	OpDrain        OpKind = "drain"
	// OpRevokeExec releases one executor back to the pool — the Server
	// commits it when an executor misses its heartbeat deadline. Liveness is
	// a wall-clock judgement, so the clock-side decision lives in the
	// Server; only the committed revocation reaches the Service, which keeps
	// replay independent of when heartbeats actually arrived.
	OpRevokeExec OpKind = "revoke-exec"
)

// Op is one logged intent. Seq is assigned at commit time and must be
// contiguous from 1; unused fields stay at their zero values and are
// omitted from the encoding.
type Op struct {
	Seq  uint64 `json:"seq"`
	Kind OpKind `json:"kind"`

	// register-app
	Name string `json:"name,omitempty"`

	// submit-job
	Tenant   int    `json:"tenant,omitempty"`
	Workload string `json:"workload,omitempty"`
	File     int    `json:"file,omitempty"`

	// round: the simulated-time slice covered and whether the round ran in
	// degraded mode (no explicit Reallocate pass). Recording the mode here
	// is what makes replay independent of the wall clock that triggered it.
	Step     float64 `json:"step,omitempty"`
	Degraded bool    `json:"degraded,omitempty"`

	// inject-fault / restore-fault
	Fault *chaos.Fault `json:"fault,omitempty"`

	// revoke-exec
	Exec int `json:"exec,omitempty"`
}

func (op Op) String() string {
	switch op.Kind {
	case OpRegisterApp:
		return fmt.Sprintf("%d %s %q", op.Seq, op.Kind, op.Name)
	case OpSubmitJob:
		return fmt.Sprintf("%d %s tenant=%d workload=%s file=%d", op.Seq, op.Kind, op.Tenant, op.Workload, op.File)
	case OpRound:
		return fmt.Sprintf("%d %s step=%.3f degraded=%v", op.Seq, op.Kind, op.Step, op.Degraded)
	case OpInjectFault, OpRestoreFault:
		if op.Fault != nil {
			return fmt.Sprintf("%d %s %s node=%d exec=%d", op.Seq, op.Kind, op.Fault.Kind, op.Fault.Node, op.Fault.Exec)
		}
		return fmt.Sprintf("%d %s <nil>", op.Seq, op.Kind)
	case OpRevokeExec:
		return fmt.Sprintf("%d %s exec=%d", op.Seq, op.Kind, op.Exec)
	default:
		return fmt.Sprintf("%d %s", op.Seq, op.Kind)
	}
}

// Journal is the append-only intent log a Service commits ops to. WAL is
// the file-backed implementation; MemJournal backs tests and the model
// checker, where crash/restart is simulated by handing the ops to a fresh
// Service.
type Journal interface {
	Append(Op) error
	Ops() []Op
}

// MemJournal is an in-memory Journal.
type MemJournal struct {
	ops []Op
}

// NewMemJournal returns a journal pre-loaded with ops (replayed by
// NewService) — the in-memory equivalent of reopening a WAL.
func NewMemJournal(ops ...Op) *MemJournal {
	return &MemJournal{ops: ops}
}

// Append implements Journal.
func (j *MemJournal) Append(op Op) error {
	j.ops = append(j.ops, op)
	return nil
}

// Ops implements Journal; the returned slice is a copy.
func (j *MemJournal) Ops() []Op {
	return append([]Op(nil), j.ops...)
}
