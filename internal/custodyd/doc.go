// Package custodyd turns the batch reproduction into a long-running,
// crash-tolerant allocation service. It layers three pieces over the warm
// manager.Custody session and the driver's round machinery:
//
//   - Service: a deterministic, single-threaded event-sourced core. Every
//     externally visible state change is an Op (register-app, submit-job,
//     round, inject-fault, restore-fault, drain) validated first, appended
//     to a Journal second, and applied to the driver stack third. Because
//     ops are the only way state changes and the stack is deterministic,
//     replaying the journal into a fresh Service reproduces the exact state
//     — Digest() is byte-identical — which is the whole recovery story.
//   - WAL / Checkpoint: the file-backed Journal (append-only intent log
//     with per-line checksums and torn-tail tolerance) and a periodic
//     atomic snapshot of the allocator-visible state. The checkpoint is a
//     verifier and fast status page, not the replay source: recovery always
//     replays the log from genesis and then cross-checks the checkpoint's
//     digest against the replayed state.
//   - Server: the concurrent edge. It owns the HTTP API (register-app /
//     submit-job / heartbeat / status plus a live OpenMetrics /metrics
//     page), admission control (bounded per-tenant queues, quota checks,
//     429 shed responses with Retry-After), the wall-clock degraded-mode
//     ladder, and graceful shutdown (drain queues, run the engine dry,
//     flush sinks, final checkpoint). All wall-clock inputs are injected
//     (ServerConfig.Clock / Tick) so internal/ stays free of ambient time
//     and tests drive the ladder deterministically.
//
// Degraded rounds skip the explicit Reallocate pass (fallback-only
// locality: executors keep flowing through the driver's own event-driven
// rounds, but the service stops forcing fresh data-aware plans) and cover a
// coarser slice of simulated time per round. Whether a round was degraded
// is recorded in its Op, so replay follows the log, not the clock, and
// recovery stays deterministic even though the trigger was wall time.
package custodyd
