package custodyd

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func walOps() []Op {
	return []Op{
		{Seq: 1, Kind: OpRegisterApp, Name: "a"},
		{Seq: 2, Kind: OpSubmitJob, Tenant: 0, Workload: "Sort", File: 1},
		{Seq: 3, Kind: OpRound, Step: 1.5},
	}
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range walOps() {
		if err := w.Append(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := w2.Ops(); !reflect.DeepEqual(got, walOps()) {
		t.Fatalf("reopened ops = %+v, want %+v", got, walOps())
	}
}

// TestWALTornTail crashes mid-append: a truncated final line must be
// dropped at reopen (and physically truncated so the next append starts on
// a clean line boundary), while the intact prefix survives.
func TestWALTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range walOps() {
		if err := w.Append(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":{"seq":4,"kind":"ro`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	if got := w2.Ops(); !reflect.DeepEqual(got, walOps()) {
		t.Fatalf("ops after torn tail = %+v, want %+v", got, walOps())
	}
	if err := w2.Append(Op{Seq: 4, Kind: OpDrain}); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	w3, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if got := len(w3.Ops()); got != 4 {
		t.Fatalf("ops after truncate+append = %d, want 4", got)
	}
}

// TestWALInteriorCorruption: damage before the tail is corruption, not a
// torn append, and must refuse to open.
func TestWALInteriorCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range walOps() {
		if err := w.Append(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(data), "\n")
	lines[1] = strings.Replace(lines[1], `"kind":"submit-job"`, `"kind":"round"`, 1) // checksum now lies
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(path); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("interior corruption not detected: %v", err)
	}
}

func TestOpenVerifiesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	svc, wal, info, err := Open(dir, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if info.Recovered {
		t.Fatal("cold boot reported as recovery")
	}
	driveScript(t, svc)
	// Checkpoint mid-history, then keep going: reopen must verify the
	// checkpoint by replaying its prefix even though the log is longer.
	if err := WriteCheckpoint(filepath.Join(dir, checkpointFile), CheckpointFrom(svc)); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(0, "PageRank", 0); err != nil {
		t.Fatal(err)
	}
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	want := svc.Digest()
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}

	svc2, wal2, info2, err := Open(dir, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	if !info2.Recovered || !info2.CheckpointVerified {
		t.Fatalf("boot info %+v: want recovered + checkpoint verified", info2)
	}
	if got := svc2.Digest(); got != want {
		t.Fatalf("recovered digest %s != %s", got, want)
	}
}

func TestOpenRejectsDivergingCheckpoint(t *testing.T) {
	dir := t.TempDir()
	svc, wal, _, err := Open(dir, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	driveScript(t, svc)
	cp := CheckpointFrom(svc)
	cp.Snapshot.Digest = "deadbeefdeadbeef" // forged history
	if err := WriteCheckpoint(filepath.Join(dir, checkpointFile), cp); err != nil {
		t.Fatal(err)
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Open(dir, testConfig()); err == nil || !strings.Contains(err.Error(), "diverges") {
		t.Fatalf("diverging checkpoint not rejected: %v", err)
	}
}
