package custodyd

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/app"
	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/driver"
	"repro/internal/hdfs"
	"repro/internal/manager"
	"repro/internal/obsv"
	"repro/internal/workload"
)

// ErrTenantQuota is returned by Register when every tenant slot is taken.
var ErrTenantQuota = errors.New("custodyd: tenant quota exhausted")

// Service is the deterministic core of the allocation service: the warm
// manager.Custody session and driver stack, driven exclusively through
// committed ops. It is single-threaded by construction — the concurrent
// Server serializes access behind its mutex — so the whole package below
// this type stays inside the repo's determinism contract.
type Service struct {
	cfg Config
	jnl Journal
	drv *driver.Driver
	mgr *manager.Custody
	hub *obsv.Hub

	apps  []*app.Application
	files []*hdfs.File

	names   []string // active tenants; index is the tenant ID
	nextJob []int    // per-tenant next job ID

	seq            uint64
	submitted      int
	rounds         int
	degradedRounds int
	drains         int
	faultsApplied  int
	faultsReverted int
	revocations    int

	// broken is set when an op panicked mid-apply, leaving the stack in an
	// unknown state; every subsequent commit refuses with it.
	broken error
}

// NewService builds a fresh stack from cfg and replays jnl's ops into it.
// An empty journal is a cold boot; a loaded one is recovery. Live commits
// append to jnl, so passing a reopened WAL both replays and continues it.
func NewService(cfg Config, jnl Journal) (*Service, error) {
	cfg.fill()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Service{cfg: cfg, jnl: jnl}
	s.mgr = manager.NewCustody()
	if cfg.Policy != "" {
		if err := s.mgr.SetPolicy(cfg.Policy); err != nil {
			return nil, fmt.Errorf("custodyd: %w", err)
		}
	}
	s.hub = obsv.NewHub(0)
	dcfg := cfg.driverConfig(s.mgr)
	dcfg.Obsv = s.hub
	s.mgr.Opts.Observer = s.hub
	s.drv = driver.New(dcfg)
	for _, spec := range cfg.Files {
		f, err := s.drv.CreateInput(spec.Name, spec.Blocks*cfg.BlockSize)
		if err != nil {
			return nil, fmt.Errorf("custodyd: create input %q: %w", spec.Name, err)
		}
		s.files = append(s.files, f)
	}
	for i := 0; i < cfg.MaxTenants; i++ {
		s.apps = append(s.apps, s.drv.RegisterApp(fmt.Sprintf("slot-%d", i)))
	}
	s.drv.Start()
	s.nextJob = make([]int, cfg.MaxTenants)
	if cfg.BootHook != nil {
		cfg.BootHook(s)
	}
	for _, op := range jnl.Ops() {
		if op.Seq != s.seq+1 {
			return nil, fmt.Errorf("custodyd: journal gap: op %d follows seq %d", op.Seq, s.seq)
		}
		if err := s.checkOp(op); err != nil {
			return nil, fmt.Errorf("custodyd: replay of op %d rejected: %w", op.Seq, err)
		}
		if err := s.apply(op); err != nil {
			return nil, fmt.Errorf("custodyd: replay of op %d failed: %w", op.Seq, err)
		}
	}
	return s, nil
}

// Register activates the next tenant slot under the given name and returns
// its tenant ID.
func (s *Service) Register(name string) (int, error) {
	if err := s.commit(Op{Kind: OpRegisterApp, Name: name}); err != nil {
		return -1, err
	}
	return len(s.names) - 1, nil
}

// Submit logs and applies one job submission, returning the per-tenant job
// ID. The job itself is built deterministically from (workload kind, job
// ID, file), so the op fully determines the work.
func (s *Service) Submit(tenant int, kind string, file int) (int, error) {
	op := Op{Kind: OpSubmitJob, Tenant: tenant, Workload: kind, File: file}
	if err := s.commit(op); err != nil {
		return -1, err
	}
	return s.nextJob[tenant], nil
}

// ValidateSubmit reports whether a submission would be accepted, without
// committing anything — the Server's admission check.
func (s *Service) ValidateSubmit(tenant int, kind string, file int) error {
	return s.checkOp(Op{Kind: OpSubmitJob, Tenant: tenant, Workload: kind, File: file})
}

// Round runs one allocation round covering step simulated seconds (0 →
// the configured step). A degraded round skips the explicit Reallocate
// pass: executor churn still flows through the driver's own event-driven
// rounds (fallback-only locality), but no fresh data-aware plan is forced.
func (s *Service) Round(step float64, degraded bool) error {
	if step <= 0 {
		step = s.cfg.RoundSimStep
	}
	return s.commit(Op{Kind: OpRound, Step: step, Degraded: degraded})
}

// InjectFault logs and applies a driver-level chaos fault.
func (s *Service) InjectFault(f chaos.Fault) error {
	return s.commit(Op{Kind: OpInjectFault, Fault: &f})
}

// RestoreFault logs and reverts a previously injected fault.
func (s *Service) RestoreFault(f chaos.Fault) error {
	return s.commit(Op{Kind: OpRestoreFault, Fault: &f})
}

// Drain runs the event engine until no work remains — every accepted job
// finishes. Used by graceful shutdown and by tests comparing end states.
func (s *Service) Drain() error {
	return s.commit(Op{Kind: OpDrain})
}

// RevokeExec logs and applies the revocation of one executor presumed dead
// — the Server's heartbeat reaper calls it when an executor goes silent
// past the deadline. An idle owned executor is released back to the pool; a
// busy one is failed so its running tasks reschedule; a dead or already
// pool-resident one makes the op a no-op, live and on replay alike.
func (s *Service) RevokeExec(exec int) error {
	return s.commit(Op{Kind: OpRevokeExec, Exec: exec})
}

// ExecOwned reports whether the executor currently belongs to any tenant —
// the reaper's gate for not logging revocations of executors the normal
// flow already returned to the pool.
func (s *Service) ExecOwned(exec int) bool {
	cl := s.drv.Cluster()
	if exec < 0 || exec >= cl.TotalExecutors() {
		return false
	}
	return cl.Executor(exec).Owner() != cluster.NoApp
}

// OwnsExec reports whether the executor currently belongs to the tenant —
// the heartbeat handler's filter for which reported executor IDs to track.
func (s *Service) OwnsExec(tenant, exec int) bool {
	if tenant < 0 || tenant >= len(s.names) {
		return false
	}
	cl := s.drv.Cluster()
	if exec < 0 || exec >= cl.TotalExecutors() {
		return false
	}
	return cl.Executor(exec).Owner() == s.apps[tenant].ID
}

// commit is the write-ahead path: validate, append, apply. Validation must
// precede the append so a rejected op can never reach the log (a logged op
// must re-apply cleanly on replay).
func (s *Service) commit(op Op) error {
	if s.broken != nil {
		return s.broken
	}
	op.Seq = s.seq + 1
	if err := s.checkOp(op); err != nil {
		return err
	}
	if err := s.jnl.Append(op); err != nil {
		return fmt.Errorf("custodyd: journal append: %w", err)
	}
	return s.apply(op)
}

// checkOp validates an op against current state without side effects.
func (s *Service) checkOp(op Op) error {
	switch op.Kind {
	case OpRegisterApp:
		if op.Name == "" {
			return fmt.Errorf("custodyd: register-app needs a name")
		}
		if len(s.names) >= s.cfg.MaxTenants {
			return fmt.Errorf("%w (%d tenants)", ErrTenantQuota, s.cfg.MaxTenants)
		}
	case OpSubmitJob:
		if op.Tenant < 0 || op.Tenant >= len(s.names) {
			return fmt.Errorf("custodyd: unknown tenant %d (%d registered)", op.Tenant, len(s.names))
		}
		if !validWorkload(op.Workload) {
			return fmt.Errorf("custodyd: unknown workload %q (have %v)", op.Workload, workload.Kinds())
		}
		if op.File < 0 || op.File >= len(s.files) {
			return fmt.Errorf("custodyd: file index %d out of range (%d files)", op.File, len(s.files))
		}
	case OpRound:
		if op.Step <= 0 {
			return fmt.Errorf("custodyd: round step %v must be positive", op.Step)
		}
	case OpInjectFault, OpRestoreFault:
		if op.Fault == nil {
			return fmt.Errorf("custodyd: %s needs a fault", op.Kind)
		}
		if op.Fault.Kind == chaos.DaemonCrash {
			return fmt.Errorf("custodyd: daemon-crash is consumed by the harness, not logged as a driver fault")
		}
	case OpRevokeExec:
		if op.Exec < 0 || op.Exec >= s.drv.Cluster().TotalExecutors() {
			return fmt.Errorf("custodyd: executor %d out of range (%d executors)", op.Exec, s.drv.Cluster().TotalExecutors())
		}
	case OpDrain:
	default:
		return fmt.Errorf("custodyd: unknown op kind %q", op.Kind)
	}
	return nil
}

// apply mutates the stack. Panics anywhere below are converted into a
// permanent broken state: the op is already logged, so a deterministic
// panic would recur on every replay and refusing further writes is the
// honest failure mode.
func (s *Service) apply(op Op) (err error) {
	defer func() {
		if r := recover(); r != nil {
			s.broken = fmt.Errorf("custodyd: op %d (%s) panicked: %v", op.Seq, op.Kind, r)
			err = s.broken
		}
	}()
	s.seq = op.Seq
	eng := s.drv.Engine()
	switch op.Kind {
	case OpRegisterApp:
		s.names = append(s.names, op.Name)
	case OpSubmitJob:
		s.nextJob[op.Tenant]++
		j := workload.BuildJob(workload.Kind(op.Workload), s.nextJob[op.Tenant], s.files[op.File])
		s.drv.SubmitJobAt(eng.Now(), s.apps[op.Tenant], j)
		eng.RunUntil(eng.Now()) // deliver the submission event
		s.submitted++
	case OpRound:
		if !op.Degraded {
			s.mgr.Reallocate(s.drv)
		}
		s.drv.Kick()
		eng.RunUntil(eng.Now() + op.Step)
		s.rounds++
		if op.Degraded {
			s.degradedRounds++
		}
	case OpInjectFault:
		if chaos.Apply(s.drv, *op.Fault) {
			s.faultsApplied++
		}
	case OpRestoreFault:
		if chaos.Revert(s.drv, *op.Fault) {
			s.faultsReverted++
		}
	case OpRevokeExec:
		e := s.drv.Cluster().Executor(op.Exec)
		switch {
		case !e.Alive() || e.Owner() == cluster.NoApp:
			// Already dead or already back in the pool: the revocation was
			// raced by the normal flow and replays as the same no-op.
		case e.Running() == 0:
			s.drv.Release(e)
			s.revocations++
		default:
			// Presumed dead mid-task: releasing a busy executor would strand
			// its attempts, so fail it — the resilience layer reschedules the
			// running tasks and the manager replaces the capacity data-aware.
			s.drv.InjectExecutorFail(op.Exec)
			s.revocations++
		}
	case OpDrain:
		eng.Run()
		s.drains++
	}
	if s.cfg.AuditEveryOp {
		if aerr := s.drv.Audit(); aerr != nil {
			return fmt.Errorf("custodyd: audit after op %d (%s): %w", op.Seq, op.Kind, aerr)
		}
	}
	return nil
}

// validWorkload reports whether name is a known workload kind.
func validWorkload(name string) bool {
	for _, k := range workload.Kinds() {
		if string(k) == name {
			return true
		}
	}
	return false
}

// Accessors. The driver stack is exposed for harnesses (model checker,
// chaos storms) and the Server; mutating it outside ops voids recovery.

// Seq returns the last committed op sequence number.
func (s *Service) Seq() uint64 { return s.seq }

// Tenants returns the number of registered tenants.
func (s *Service) Tenants() int { return len(s.names) }

// JobsSubmitted returns the total accepted submissions.
func (s *Service) JobsSubmitted() int { return s.submitted }

// ExecRevocations returns how many revoke-exec ops actually moved an
// executor (conditional no-ops excluded).
func (s *Service) ExecRevocations() int { return s.revocations }

// JobsFinished returns the total completed jobs.
func (s *Service) JobsFinished() int {
	done := 0
	for _, a := range s.apps {
		for _, j := range a.Jobs {
			if j.Complete() {
				done++
			}
		}
	}
	return done
}

// Idle reports whether every accepted job has finished.
func (s *Service) Idle() bool { return s.JobsFinished() == s.submitted }

// Broken returns the permanent failure set by a panicking op, if any.
func (s *Service) Broken() error { return s.broken }

// Driver exposes the underlying driver.
func (s *Service) Driver() *driver.Driver { return s.drv }

// Manager exposes the Custody manager.
func (s *Service) Manager() *manager.Custody { return s.mgr }

// Hub exposes the provenance hub. Attach sinks only after NewService
// returns: replay runs sinkless so recovery does not re-emit history.
func (s *Service) Hub() *obsv.Hub { return s.hub }

// Files exposes the pre-created HDFS inputs.
func (s *Service) Files() []*hdfs.File { return s.files }

// TenantStatus is the per-tenant slice of a Snapshot.
type TenantStatus struct {
	Tenant  int    `json:"tenant"`
	Name    string `json:"name"`
	Jobs    int    `json:"jobs"`
	Done    int    `json:"done"`
	Pending int    `json:"pending"`
	Execs   []int  `json:"execs"`
}

// Snapshot is the allocator-visible state summary: what the status
// endpoint serves and what checkpoints persist.
type Snapshot struct {
	Seq            uint64         `json:"seq"`
	Digest         string         `json:"digest"`
	SimTime        float64        `json:"sim_time"`
	Rounds         int            `json:"rounds"`
	DegradedRounds int            `json:"degraded_rounds"`
	JobsSubmitted  int            `json:"jobs_submitted"`
	JobsFinished   int            `json:"jobs_finished"`
	Idle           bool           `json:"idle"`
	Tenants        []TenantStatus `json:"tenants"`
}

// Snapshot summarizes the current state, digest included.
func (s *Service) Snapshot() Snapshot {
	snap := Snapshot{
		Seq:            s.seq,
		Digest:         s.Digest(),
		SimTime:        s.drv.Engine().Now(),
		Rounds:         s.rounds,
		DegradedRounds: s.degradedRounds,
		JobsSubmitted:  s.submitted,
		JobsFinished:   s.JobsFinished(),
		Tenants:        s.tenantStatuses(),
	}
	snap.Idle = snap.JobsFinished == snap.JobsSubmitted
	return snap
}

// tenantStatuses renders the per-tenant state, executor sets sorted.
func (s *Service) tenantStatuses() []TenantStatus {
	var out []TenantStatus
	cl := s.drv.Cluster()
	for i, name := range s.names {
		a := s.apps[i]
		done := 0
		for _, j := range a.Jobs {
			if j.Complete() {
				done++
			}
		}
		var execs []int
		for _, e := range cl.Owned(a.ID) {
			execs = append(execs, e.ID)
		}
		sort.Ints(execs)
		out = append(out, TenantStatus{
			Tenant:  i,
			Name:    name,
			Jobs:    s.nextJob[i],
			Done:    done,
			Pending: s.drv.PendingCount(a),
			Execs:   execs,
		})
	}
	return out
}

// Digest fingerprints the allocator-visible state: op position, simulated
// time, per-tenant ledgers (jobs, completions, pending work, owned
// executors), driver metrics, and provenance counters. Replaying the same
// op log always yields the same digest — the recovery acceptance gate.
func (s *Service) Digest() string {
	var b strings.Builder
	line := func(format string, args ...any) {
		fmt.Fprintf(&b, format, args...)
		b.WriteByte('\n')
	}
	line("seq=%d t=%.6f rounds=%d degraded=%d drains=%d faults=%d/%d revoked=%d",
		s.seq, s.drv.Engine().Now(), s.rounds, s.degradedRounds, s.drains, s.faultsApplied, s.faultsReverted, s.revocations)
	for _, ts := range s.tenantStatuses() {
		line("tenant %d name=%q jobs=%d done=%d pending=%d execs=%v",
			ts.Tenant, ts.Name, ts.Jobs, ts.Done, ts.Pending, ts.Execs)
	}
	col := s.drv.Collector()
	line("jobs=%d tasks=%d realloc=%d migrations=%d retries=%d attempt_failures=%d blacklist=%d",
		len(col.Jobs), len(col.Tasks), col.Reallocations, col.ExecutorMigrations,
		col.TaskRetries, col.AttemptFailures, col.BlacklistEvents)
	dd, dg := s.hub.Flight.Dropped()
	line("obsv rounds=%d dropped=%d/%d", s.hub.Flight.Rounds(), dd, dg)
	// Inline FNV-1a, matching xrand's label-hash idiom.
	str := b.String()
	hash := uint64(14695981039346656037)
	for i := 0; i < len(str); i++ {
		hash = (hash ^ uint64(str[i])) * 0x100000001B3
	}
	return fmt.Sprintf("%016x", hash)
}
