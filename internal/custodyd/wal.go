package custodyd

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"strings"
)

// walEntry is one line of the intent log: the op plus an FNV-1a checksum
// of its canonical encoding. The checksum distinguishes a torn tail (a
// crash mid-append — tolerated by truncation) from interior corruption
// (refused: replaying past a damaged op would silently fork state).
type walEntry struct {
	Op  Op     `json:"op"`
	Sum string `json:"sum"`
}

// opSum checksums an op's canonical JSON encoding.
func opSum(opJSON []byte) string {
	hash := uint64(14695981039346656037)
	for i := 0; i < len(opJSON); i++ {
		hash = (hash ^ uint64(opJSON[i])) * 0x100000001B3
	}
	return fmt.Sprintf("%016x", hash)
}

// WAL is the file-backed Journal: one checksummed JSON line per op,
// fsynced on every append (write-ahead of apply, so an op observed in
// state is always recoverable from disk).
type WAL struct {
	path string
	f    *os.File
	ops  []Op
}

// OpenWAL opens (or creates) the intent log at path, parsing every entry.
// A damaged final line is treated as a torn append and truncated away;
// damage anywhere earlier is an error.
func OpenWAL(path string) (*WAL, error) {
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("custodyd: read wal: %w", err)
	}
	w := &WAL{path: path}
	goodLen := 0
	if len(data) > 0 {
		lines := strings.Split(string(data), "\n")
		// A well-formed file ends with "\n", leaving one empty trailing
		// element; anything after the last newline is a torn tail.
		for i, ln := range lines {
			if ln == "" {
				continue
			}
			op, perr := parseWALLine(ln)
			if perr != nil {
				if i == len(lines)-1 {
					break // torn tail: drop it below
				}
				return nil, fmt.Errorf("custodyd: wal %s line %d: %w", path, i+1, perr)
			}
			w.ops = append(w.ops, op)
			goodLen += len(ln) + 1
		}
		if goodLen < len(data) {
			if terr := os.Truncate(path, int64(goodLen)); terr != nil {
				return nil, fmt.Errorf("custodyd: truncate torn wal tail: %w", terr)
			}
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("custodyd: open wal for append: %w", err)
	}
	w.f = f
	return w, nil
}

// parseWALLine decodes and checksums one entry.
func parseWALLine(ln string) (Op, error) {
	var e walEntry
	if err := json.Unmarshal([]byte(ln), &e); err != nil {
		return Op{}, fmt.Errorf("malformed entry: %w", err)
	}
	opJSON, err := json.Marshal(e.Op)
	if err != nil {
		return Op{}, fmt.Errorf("re-encode entry: %w", err)
	}
	if sum := opSum(opJSON); sum != e.Sum {
		return Op{}, fmt.Errorf("checksum mismatch: have %s, want %s", e.Sum, sum)
	}
	return e.Op, nil
}

// Append implements Journal: encode, checksum, write, fsync.
func (w *WAL) Append(op Op) error {
	opJSON, err := json.Marshal(op)
	if err != nil {
		return fmt.Errorf("custodyd: encode op: %w", err)
	}
	entry, err := json.Marshal(walEntry{Op: op, Sum: opSum(opJSON)})
	if err != nil {
		return fmt.Errorf("custodyd: encode wal entry: %w", err)
	}
	if _, err := w.f.Write(append(entry, '\n')); err != nil {
		return fmt.Errorf("custodyd: wal write: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("custodyd: wal sync: %w", err)
	}
	w.ops = append(w.ops, op)
	return nil
}

// Ops implements Journal; the returned slice is a copy.
func (w *WAL) Ops() []Op {
	return append([]Op(nil), w.ops...)
}

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// Close closes the underlying file.
func (w *WAL) Close() error { return w.f.Close() }
