package custodyd

import (
	"net/http/httptest"
	"testing"
	"time"
)

// hbServer boots a tickless server with an injected wall clock and the
// heartbeat reaper armed.
func hbServer(t *testing.T, dir string, now *time.Time) *Server {
	t.Helper()
	return newTestServer(t, dir, func(c *ServerConfig) {
		c.Clock = func() time.Time { return *now }
		c.HeartbeatTimeout = 5 * time.Second
		c.RoundBudget = time.Hour // keep the degraded-mode ladder out of the way
	})
}

// ownedExecs returns tenant 0's currently owned executor IDs.
func ownedExecs(t *testing.T, s *Server) []int {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := s.svc.Snapshot()
	for _, ts := range snap.Tenants {
		if ts.Tenant == 0 {
			return ts.Execs
		}
	}
	return nil
}

// TestHeartbeatLivenessRevokesSilentExecutor pins the reaper contract with
// an injected clock: executors a tenant reports via /v1/heartbeat stay
// owned while the beats keep coming; once the tenant goes silent past
// HeartbeatTimeout, the next round commits revoke-exec ops that release
// the silent executors back to the pool.
func TestHeartbeatLivenessRevokesSilentExecutor(t *testing.T) {
	now := time.Unix(1000, 0)
	s := hbServer(t, t.TempDir(), &now)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	postJSON(t, client, ts.URL+"/v1/register-app", map[string]string{"name": "a"}, nil)
	for i := 0; i < 6; i++ {
		postJSON(t, client, ts.URL+"/v1/submit-job", map[string]any{"tenant": 0, "workload": "Sort", "file": 1}, nil)
	}
	s.RoundOnce()
	s.RoundOnce()
	execs := ownedExecs(t, s)
	if len(execs) == 0 {
		t.Fatal("no executors owned mid-workload; cannot exercise liveness")
	}

	// Fresh beats keep everything alive: advance close to (but under) the
	// deadline between beats and no revocation may happen.
	var hb struct {
		Tracked int `json:"tracked"`
	}
	resp := postJSON(t, client, ts.URL+"/v1/heartbeat", map[string]any{"tenant": 0, "execs": execs}, &hb)
	if resp.StatusCode != 200 || hb.Tracked != len(execs) {
		t.Fatalf("heartbeat: status %d tracked %d, want %d", resp.StatusCode, hb.Tracked, len(execs))
	}
	now = now.Add(4 * time.Second)
	postJSON(t, client, ts.URL+"/v1/heartbeat", map[string]any{"tenant": 0, "execs": ownedExecs(t, s)}, nil)
	now = now.Add(4 * time.Second) // 8s since first beat, 4s since refresh
	s.RoundOnce()
	if st := getStatus(t, client, ts.URL); st.ExecsReaped != 0 {
		t.Fatalf("refreshed executors reaped: %+v", st)
	}

	// Silence: keep the workload flowing (so executors stay owned) but stop
	// beating. The reaper must commit at least one revocation that actually
	// releases an executor, and the released ID must leave the owned set.
	for i := 0; i < 40; i++ {
		tracked := ownedExecs(t, s)
		if len(tracked) > 0 {
			postJSON(t, client, ts.URL+"/v1/heartbeat", map[string]any{"tenant": 0, "execs": tracked}, nil)
			now = now.Add(6 * time.Second) // past the 5s deadline
			s.RoundOnce()
			s.mu.Lock()
			revoked := s.svc.ExecRevocations()
			s.mu.Unlock()
			if revoked > 0 {
				break
			}
		} else {
			s.RoundOnce()
		}
	}
	st := getStatus(t, client, ts.URL)
	if st.ExecsReaped == 0 {
		t.Fatal("silent executors never reaped")
	}
	s.mu.Lock()
	revoked := s.svc.ExecRevocations()
	ops := s.wal.Ops()
	s.mu.Unlock()
	if revoked == 0 {
		t.Fatal("revoke-exec ops committed but none released an executor")
	}
	revokeOps := 0
	for _, op := range ops {
		if op.Kind == OpRevokeExec {
			revokeOps++
		}
	}
	if revokeOps == 0 {
		t.Fatal("no revoke-exec ops in the intent log")
	}
	if st.LastError != "" {
		t.Fatalf("server retained error: %s", st.LastError)
	}
}

// TestHeartbeatRevocationSurvivesCrash is the daemon-side chaos case:
// revoke a silent executor, kill -9 the daemon (no flush, no checkpoint),
// and require the recovered incarnation — which replays the revoke-exec
// ops from the intent log with no clock and no heartbeat history — to land
// on the pre-kill digest and finish the workload with a clean audit.
func TestHeartbeatRevocationSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(2000, 0)
	s := hbServer(t, dir, &now)
	ts := httptest.NewServer(s.Handler())
	client := ts.Client()

	postJSON(t, client, ts.URL+"/v1/register-app", map[string]string{"name": "a"}, nil)
	for i := 0; i < 6; i++ {
		postJSON(t, client, ts.URL+"/v1/submit-job", map[string]any{"tenant": 0, "workload": "PageRank", "file": 0}, nil)
	}
	for i := 0; i < 40; i++ {
		s.RoundOnce()
		if tracked := ownedExecs(t, s); len(tracked) > 0 {
			postJSON(t, client, ts.URL+"/v1/heartbeat", map[string]any{"tenant": 0, "execs": tracked}, nil)
			now = now.Add(6 * time.Second)
			s.RoundOnce()
		}
		s.mu.Lock()
		revoked := s.svc.ExecRevocations()
		s.mu.Unlock()
		if revoked > 0 {
			break
		}
	}
	s.mu.Lock()
	revoked := s.svc.ExecRevocations()
	s.mu.Unlock()
	if revoked == 0 {
		t.Fatal("no executor revoked before the crash; chaos case needs one")
	}
	pre := getStatus(t, client, ts.URL)
	ts.Close()
	s.Abort()

	s2 := newTestServer(t, dir, nil) // recovery: no clock, no heartbeat state
	if boot := s2.Boot(); !boot.Recovered || boot.ReplayedOps == 0 {
		t.Fatalf("boot info %+v: want recovery", boot)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	post := getStatus(t, ts2.Client(), ts2.URL)
	if post.Digest != pre.Digest || post.Seq != pre.Seq {
		t.Fatalf("recovered digest %s (seq %d) != pre-kill %s (seq %d)", post.Digest, post.Seq, pre.Digest, pre.Seq)
	}
	for i := 0; i < 400 && !getStatus(t, ts2.Client(), ts2.URL).Idle; i++ {
		s2.RoundOnce()
	}
	final := getStatus(t, ts2.Client(), ts2.URL)
	if !final.Idle || final.JobsFinished != 6 {
		t.Fatalf("recovered run did not finish: %+v", final)
	}
	s2.mu.Lock()
	err := s2.svc.Driver().Audit()
	s2.mu.Unlock()
	if err != nil {
		t.Fatalf("audit after recovered run: %v", err)
	}
}
