package custodyd

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// On-disk layout inside the service directory.
const (
	walFile        = "wal.jsonl"
	checkpointFile = "checkpoint.json"
	metricsFile    = "metrics.om"
)

// BootInfo reports what recovery found and verified.
type BootInfo struct {
	Recovered          bool   `json:"recovered"`           // a non-empty intent log was replayed
	ReplayedOps        int    `json:"replayed_ops"`        // ops replayed from the log
	CheckpointSeq      uint64 `json:"checkpoint_seq"`      // 0 when no checkpoint existed
	CheckpointVerified bool   `json:"checkpoint_verified"` // digest cross-check passed
}

// Open boots a Service from a state directory: open (or create) the intent
// log, replay it into a fresh stack, then cross-check any checkpoint's
// digest against the replayed state. A checkpoint older than the log tail
// is verified by replaying its prefix into a scratch stack — stronger than
// skipping the check, and cheap at service scale. A diverging checkpoint
// is an error: it means the log and snapshot describe different histories,
// and serving either would be a silent fork.
func Open(dir string, cfg Config) (*Service, *WAL, BootInfo, error) {
	var info BootInfo
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, info, fmt.Errorf("custodyd: state dir: %w", err)
	}
	wal, err := OpenWAL(filepath.Join(dir, walFile))
	if err != nil {
		return nil, nil, info, err
	}
	ops := wal.Ops()
	info.Recovered = len(ops) > 0
	info.ReplayedOps = len(ops)
	svc, err := NewService(cfg, wal)
	if err != nil {
		cerr := wal.Close()
		return nil, nil, info, errors.Join(err, cerr)
	}

	cp, err := LoadCheckpoint(filepath.Join(dir, checkpointFile))
	switch {
	case errors.Is(err, fs.ErrNotExist):
		return svc, wal, info, nil
	case err != nil:
		cerr := wal.Close()
		return nil, nil, info, errors.Join(err, cerr)
	}
	info.CheckpointSeq = cp.Snapshot.Seq
	digest, err := digestAt(cfg, ops, cp.Snapshot.Seq, svc)
	if err != nil {
		cerr := wal.Close()
		return nil, nil, info, errors.Join(err, cerr)
	}
	if digest != cp.Snapshot.Digest {
		cerr := wal.Close()
		return nil, nil, info, errors.Join(
			fmt.Errorf("custodyd: checkpoint diverges from intent-log replay at seq %d: checkpoint digest %s, replay digest %s",
				cp.Snapshot.Seq, cp.Snapshot.Digest, digest), cerr)
	}
	info.CheckpointVerified = true
	return svc, wal, info, nil
}

// digestAt returns the state digest after the first seq ops. When seq is
// the log tail, the already-replayed service answers directly; otherwise a
// scratch stack (no tracer, no boot hook — verification must not disturb
// the caller's observers) replays the prefix.
func digestAt(cfg Config, ops []Op, seq uint64, svc *Service) (string, error) {
	if seq == svc.Seq() {
		return svc.Digest(), nil
	}
	if seq > uint64(len(ops)) {
		return "", fmt.Errorf("custodyd: checkpoint seq %d beyond intent log (%d ops)", seq, len(ops))
	}
	scratch := cfg
	scratch.Tracer = nil
	scratch.BootHook = nil
	partial, err := NewService(scratch, NewMemJournal(ops[:seq]...))
	if err != nil {
		return "", fmt.Errorf("custodyd: checkpoint verification replay: %w", err)
	}
	return partial.Digest(), nil
}
