package custodyd

import (
	"fmt"
	"strings"

	"repro/internal/driver"
	"repro/internal/hdfs"
	"repro/internal/manager"
	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/trace"
)

// FileSpec describes one pre-created HDFS input file submissions can
// reference by index. The file set is part of the deterministic
// configuration: it must be identical across restarts for replay to
// reproduce state.
type FileSpec struct {
	Name   string
	Blocks int64
}

// Config shapes the deterministic core of a Service. Like the driver's
// tenant registry, everything here is fixed at boot: the service
// pre-registers MaxTenants application slots (the driver forbids
// registration after Start) and register-app ops activate them one by one.
type Config struct {
	Seed uint64

	// Cluster shape.
	Nodes            int
	ExecutorsPerNode int
	SlotsPerExecutor int
	RackSize         int
	Replication      int
	BlockSize        int64

	// MaxTenants caps concurrently registered applications; register-app
	// beyond it is refused with ErrTenantQuota.
	MaxTenants int

	// Files are the HDFS inputs created at boot.
	Files []FileSpec

	// RoundSimStep is the simulated-time slice a normal round covers;
	// DegradedStepFactor scales it in degraded mode (coarser batching).
	RoundSimStep       float64
	DegradedStepFactor float64

	// AuditEveryOp runs Driver.Audit after every applied op, turning any
	// invariant breach into an op error instead of a latent corruption.
	AuditEveryOp bool

	// Policy selects the manager's allocation policy ("" or "custody" keeps
	// the built-in Algorithm 1+2 session; "quincy" | "wfair" | "locmatch"
	// swap in a contender, DESIGN.md §16). The choice is part of the
	// deterministic configuration, like the file set: it must be identical
	// across restarts for replay to reproduce state.
	Policy string

	// CacheMB enables the per-node block-cache tier (0 keeps it off, the
	// default). The cache is part of the deterministic core, not durable
	// state: a crash loses it and replay rebuilds it cold, then re-warms it
	// through the same op stream — so recovery digests are unaffected.
	CacheMB     int64
	CachePolicy string // "" | "lru" | "2q"

	// Tracer receives driver timeline events (nil → discarded). The model
	// checker uses it to feed its shadow model during live runs and replay.
	Tracer trace.Tracer

	// BootHook runs after the fresh stack is built and before the journal
	// replays — the only window where a harness can attach observers that
	// need the new cluster topology (the model checker's forward tracer).
	BootHook func(*Service)
}

// DefaultConfig is the service-mode cluster: small enough that a round is
// sub-millisecond, contended enough that allocation competes.
func DefaultConfig() Config {
	return Config{
		Seed:             1,
		Nodes:            16,
		ExecutorsPerNode: 2,
		SlotsPerExecutor: 2,
		RackSize:         4,
		Replication:      2,
		BlockSize:        32 << 20,
		MaxTenants:       8,
		Files: []FileSpec{
			{Name: "svc-a", Blocks: 4},
			{Name: "svc-b", Blocks: 6},
		},
		RoundSimStep:       1,
		DegradedStepFactor: 4,
	}
}

// fill applies defaults to zero fields.
func (c *Config) fill() {
	d := DefaultConfig()
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.Nodes == 0 {
		c.Nodes = d.Nodes
	}
	if c.ExecutorsPerNode == 0 {
		c.ExecutorsPerNode = d.ExecutorsPerNode
	}
	if c.SlotsPerExecutor == 0 {
		c.SlotsPerExecutor = d.SlotsPerExecutor
	}
	if c.RackSize == 0 {
		c.RackSize = d.RackSize
	}
	if c.Replication == 0 {
		c.Replication = d.Replication
	}
	if c.BlockSize == 0 {
		c.BlockSize = d.BlockSize
	}
	if c.MaxTenants == 0 {
		c.MaxTenants = d.MaxTenants
	}
	if len(c.Files) == 0 {
		c.Files = d.Files
	}
	if c.RoundSimStep == 0 {
		c.RoundSimStep = d.RoundSimStep
	}
	if c.DegradedStepFactor == 0 {
		c.DegradedStepFactor = d.DegradedStepFactor
	}
}

// validate rejects configurations the driver would panic on.
func (c Config) validate() error {
	if c.MaxTenants <= 0 {
		return fmt.Errorf("custodyd: MaxTenants = %d", c.MaxTenants)
	}
	if len(c.Files) == 0 {
		return fmt.Errorf("custodyd: no input files configured")
	}
	for _, f := range c.Files {
		if f.Name == "" || f.Blocks <= 0 {
			return fmt.Errorf("custodyd: bad file spec %+v", f)
		}
	}
	if c.RoundSimStep <= 0 || c.DegradedStepFactor < 1 {
		return fmt.Errorf("custodyd: RoundSimStep = %v, DegradedStepFactor = %v", c.RoundSimStep, c.DegradedStepFactor)
	}
	if c.CacheMB < 0 {
		return fmt.Errorf("custodyd: CacheMB = %d", c.CacheMB)
	}
	if !hdfs.ValidCachePolicy(hdfs.CachePolicy(c.CachePolicy)) {
		return fmt.Errorf("custodyd: CachePolicy = %q", c.CachePolicy)
	}
	if c.Policy != "" {
		if _, err := policy.New(c.Policy); err != nil {
			return fmt.Errorf("custodyd: Policy = %q (valid: %s)", c.Policy, strings.Join(policy.Names(), " | "))
		}
	}
	return nil
}

// driverConfig derives the driver configuration: resilience on (a
// long-running service must survive faults), no startup noise (recovery
// digests must not depend on anything but the op stream).
func (c Config) driverConfig(mgr manager.Manager) driver.Config {
	dcfg := driver.DefaultConfig()
	dcfg.Seed = c.Seed
	dcfg.Nodes = c.Nodes
	dcfg.ExecutorsPerNode = c.ExecutorsPerNode
	dcfg.SlotsPerExecutor = c.SlotsPerExecutor
	dcfg.RackSize = c.RackSize
	dcfg.Replication = c.Replication
	dcfg.BlockSize = c.BlockSize
	dcfg.Net = netsim.Config{UplinkBps: 250e6, DownlinkBps: 5e9, DiskBps: 400e6}
	dcfg.LocalityWait = 0.5
	dcfg.ExecutorStartupSec = 0
	dcfg.ComputeNoise = 0
	dcfg.EnableResilience()
	if c.CacheMB > 0 {
		dcfg.EnableCache(c.CacheMB<<20, hdfs.CachePolicy(c.CachePolicy))
		dcfg.ReplicaSelection = &hdfs.CacheAwareSelector{}
	}
	dcfg.Manager = mgr
	dcfg.Tracer = c.Tracer
	return dcfg
}
