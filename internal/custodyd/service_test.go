package custodyd

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/chaos"
)

// testConfig is a small, audited service configuration.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Nodes = 8
	cfg.RackSize = 4
	cfg.MaxTenants = 3
	cfg.AuditEveryOp = true
	return cfg
}

// driveScript commits a representative op mix: registrations, submissions,
// normal and degraded rounds, a fault window, and a drain.
func driveScript(t *testing.T, svc *Service) {
	t.Helper()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := svc.Register("alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Register("bob"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(0, "WordCount", 0); err != nil {
		t.Fatal(err)
	}
	must(svc.Round(0, false))
	if _, err := svc.Submit(1, "Sort", 1); err != nil {
		t.Fatal(err)
	}
	must(svc.Round(0, false))
	must(svc.InjectFault(chaos.Fault{Kind: chaos.ExecutorCrash, Exec: 3}))
	must(svc.Round(0, true)) // a degraded round mid-fault
	must(svc.RestoreFault(chaos.Fault{Kind: chaos.ExecutorCrash, Exec: 3}))
	must(svc.Round(2.5, false))
	must(svc.Drain())
}

func TestReplayReproducesDigest(t *testing.T) {
	jnl := NewMemJournal()
	svc, err := NewService(testConfig(), jnl)
	if err != nil {
		t.Fatal(err)
	}
	driveScript(t, svc)
	if !svc.Idle() {
		t.Fatalf("service not idle after drain: %d submitted, %d finished", svc.JobsSubmitted(), svc.JobsFinished())
	}
	want := svc.Digest()

	replayed, err := NewService(testConfig(), NewMemJournal(jnl.Ops()...))
	if err != nil {
		t.Fatal(err)
	}
	if got := replayed.Digest(); got != want {
		t.Fatalf("replay digest %s != live digest %s", got, want)
	}
}

// TestReplayPrefixThenContinue simulates a crash after every prefix of the
// op log: recover from the prefix, re-drive the remaining ops live, and
// require the final digest to match the uncrashed run. This is the
// recovery contract at op granularity.
func TestReplayPrefixThenContinue(t *testing.T) {
	jnl := NewMemJournal()
	svc, err := NewService(testConfig(), jnl)
	if err != nil {
		t.Fatal(err)
	}
	driveScript(t, svc)
	want := svc.Digest()
	ops := jnl.Ops()

	for cut := 0; cut <= len(ops); cut++ {
		recovered, err := NewService(testConfig(), NewMemJournal(ops[:cut]...))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		for _, op := range ops[cut:] {
			op.Seq = 0 // commit reassigns
			if err := recovered.commit(op); err != nil {
				t.Fatalf("cut %d: re-commit %s: %v", cut, op.Kind, err)
			}
		}
		if got := recovered.Digest(); got != want {
			t.Fatalf("cut %d: digest %s != %s", cut, got, want)
		}
	}
}

func TestTenantQuota(t *testing.T) {
	svc, err := NewService(testConfig(), NewMemJournal())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := svc.Register("t"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := svc.Register("overflow"); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("want ErrTenantQuota, got %v", err)
	}
	// The refused registration must not have reached the journal.
	if n := len(svc.jnl.Ops()); n != 3 {
		t.Fatalf("journal has %d ops, want 3", n)
	}
}

func TestSubmitValidation(t *testing.T) {
	svc, err := NewService(testConfig(), NewMemJournal())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Register("a"); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		tenant int
		kind   string
		file   int
		want   string
	}{
		{5, "Sort", 0, "unknown tenant"},
		{0, "Bogus", 0, "unknown workload"},
		{0, "Sort", 9, "out of range"},
	}
	for _, c := range cases {
		err := svc.ValidateSubmit(c.tenant, c.kind, c.file)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("ValidateSubmit(%d, %q, %d) = %v, want %q", c.tenant, c.kind, c.file, err, c.want)
		}
		if _, err := svc.Submit(c.tenant, c.kind, c.file); err == nil {
			t.Errorf("Submit(%d, %q, %d) accepted invalid submission", c.tenant, c.kind, c.file)
		}
	}
	if n := len(svc.jnl.Ops()); n != 1 {
		t.Fatalf("journal has %d ops, want only the registration", n)
	}
}

func TestJournalGapRejected(t *testing.T) {
	jnl := NewMemJournal()
	svc, err := NewService(testConfig(), jnl)
	if err != nil {
		t.Fatal(err)
	}
	driveScript(t, svc)
	ops := jnl.Ops()
	gapped := append(append([]Op(nil), ops[:2]...), ops[3:]...)
	if _, err := NewService(testConfig(), NewMemJournal(gapped...)); err == nil {
		t.Fatal("replay of a gapped journal succeeded")
	}
}
