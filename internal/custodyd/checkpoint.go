package custodyd

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// checkpointVersion gates the on-disk format.
const checkpointVersion = 1

// Checkpoint is a periodic snapshot of the allocator-visible state. It is
// deliberately NOT the replay source — the driver stack's full state
// (event queue, flows, warm session arenas) is not serializable — it is a
// verifier: recovery replays the intent log from genesis and then checks
// that the replayed digest at the checkpoint's sequence number matches.
// It doubles as a fast status page for operators while the daemon is down.
type Checkpoint struct {
	Version  int      `json:"version"`
	Snapshot Snapshot `json:"snapshot"`
}

// CheckpointFrom snapshots a service.
func CheckpointFrom(s *Service) Checkpoint {
	return Checkpoint{Version: checkpointVersion, Snapshot: s.Snapshot()}
}

// WriteCheckpoint atomically persists a checkpoint (tmp + fsync + rename),
// so a crash mid-write leaves the previous checkpoint intact.
func WriteCheckpoint(path string, cp Checkpoint) error {
	data, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return fmt.Errorf("custodyd: encode checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".checkpoint-*.tmp")
	if err != nil {
		return fmt.Errorf("custodyd: checkpoint tmp: %w", err)
	}
	defer os.Remove(tmp.Name()) //custody:ignore errdrop best-effort cleanup; the rename below already moved the file on success
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		cerr := tmp.Close()
		return fmt.Errorf("custodyd: checkpoint write: %w (close: %v)", err, cerr)
	}
	if err := tmp.Sync(); err != nil {
		cerr := tmp.Close()
		return fmt.Errorf("custodyd: checkpoint sync: %w (close: %v)", err, cerr)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("custodyd: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("custodyd: checkpoint rename: %w", err)
	}
	return nil
}

// LoadCheckpoint reads and validates a checkpoint file.
func LoadCheckpoint(path string) (Checkpoint, error) {
	var cp Checkpoint
	data, err := os.ReadFile(path)
	if err != nil {
		return cp, err
	}
	if err := json.Unmarshal(data, &cp); err != nil {
		return cp, fmt.Errorf("custodyd: decode checkpoint: %w", err)
	}
	if cp.Version != checkpointVersion {
		return cp, fmt.Errorf("custodyd: checkpoint version %d, want %d", cp.Version, checkpointVersion)
	}
	return cp, nil
}
