package hdfs

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestCacheLRUEvictsLeastRecent(t *testing.T) {
	c := NewBlockCache(300, CacheLRU)
	for id := BlockID(1); id <= 3; id++ {
		if c.Touch(id) {
			t.Fatalf("Touch(%d) hit an empty cache", id)
		}
		c.Admit(id, 100)
	}
	if !c.Touch(1) { // renew 1: the LRU victim is now 2
		t.Fatal("Touch(1) missed a cached block")
	}
	if n := c.Admit(4, 100); n != 1 {
		t.Fatalf("Admit(4) evicted %d blocks, want 1", n)
	}
	if c.Contains(2) {
		t.Fatal("LRU evicted the wrong block: 2 should be the victim")
	}
	for _, id := range []BlockID{1, 3, 4} {
		if !c.Contains(id) {
			t.Fatalf("block %d missing after eviction", id)
		}
	}
	if c.Hits() != 1 || c.Misses() != 3 || c.Evictions() != 1 {
		t.Fatalf("counters hits=%d misses=%d evictions=%d, want 1/3/1",
			c.Hits(), c.Misses(), c.Evictions())
	}
}

func TestCacheCapacityBound(t *testing.T) {
	c := NewBlockCache(250, CacheLRU)
	for id := BlockID(0); id < 10; id++ {
		c.Admit(id, 100)
		if c.Used() > c.Capacity() {
			t.Fatalf("Used %d exceeds Capacity %d after Admit(%d)", c.Used(), c.Capacity(), id)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (250B cache holds two 100B blocks)", c.Len())
	}
	// A block larger than the whole cache is never admitted.
	if n := c.Admit(99, 300); n != 0 || c.Contains(99) {
		t.Fatalf("oversized block admitted (evictions=%d, contains=%v)", n, c.Contains(99))
	}
}

func TestCacheContainsIsPure(t *testing.T) {
	c := NewBlockCache(200, CacheLRU)
	c.Admit(1, 100)
	c.Admit(2, 100)
	// Peeking at 1 must not renew it: 1 stays the LRU victim.
	for i := 0; i < 10; i++ {
		if !c.Contains(1) {
			t.Fatal("Contains lost a cached block")
		}
	}
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Fatalf("Contains touched counters: hits=%d misses=%d", c.Hits(), c.Misses())
	}
	c.Admit(3, 100)
	if c.Contains(1) {
		t.Fatal("Contains renewed recency: 1 survived an eviction it should not have")
	}
}

func TestCache2QScanResistance(t *testing.T) {
	c := NewBlockCache(400, Cache2Q) // probationary share: 100
	c.Admit(1, 100)
	if !c.Touch(1) { // graduate the hot block into the main queue
		t.Fatal("Touch(1) missed")
	}
	// A one-pass scan of cold blocks churns the probationary FIFO but must
	// not flush the graduated hot block.
	for id := BlockID(10); id < 30; id++ {
		c.Touch(id)
		c.Admit(id, 100)
	}
	if !c.Contains(1) {
		t.Fatal("2Q let a scan evict the re-referenced hot block")
	}
}

func TestCache2QProbationEvictsFIFO(t *testing.T) {
	c := NewBlockCache(400, Cache2Q)
	// Never re-referenced: all four sit in probation, filling the cache.
	for id := BlockID(1); id <= 4; id++ {
		c.Admit(id, 100)
	}
	c.Admit(5, 100)
	if c.Contains(1) {
		t.Fatal("2Q probation is not FIFO: oldest unreferenced block survived")
	}
	if !c.Contains(5) {
		t.Fatal("new block not admitted")
	}
}

func TestCacheInvalidateAndClear(t *testing.T) {
	c := NewBlockCache(300, Cache2Q)
	c.Admit(1, 100)
	c.Admit(2, 100)
	c.Touch(2) // graduate 2 so both lists are exercised
	if !c.Invalidate(1) || c.Invalidate(1) {
		t.Fatal("Invalidate: want true then false")
	}
	if c.Contains(1) || c.Used() != 100 {
		t.Fatalf("Invalidate left state: contains=%v used=%d", c.Contains(1), c.Used())
	}
	if c.Evictions() != 0 {
		t.Fatalf("Invalidate counted as eviction: %d", c.Evictions())
	}
	hits, misses := c.Hits(), c.Misses()
	if n := c.Clear(); n != 1 {
		t.Fatalf("Clear dropped %d, want 1", n)
	}
	if c.Len() != 0 || c.Used() != 0 {
		t.Fatalf("Clear left state: len=%d used=%d", c.Len(), c.Used())
	}
	if c.Hits() != hits || c.Misses() != misses {
		t.Fatal("Clear reset the hit/miss counters; they count events, not contents")
	}
	// The cache keeps working after Clear.
	c.Admit(3, 100)
	if !c.Contains(3) {
		t.Fatal("Admit after Clear failed")
	}
}

// Property: for any access sequence, both policies keep Used within
// Capacity, agree with the entry set, and replaying the same sequence
// reproduces the exact same contents and counters — eviction order is a
// pure function of the access sequence.
func TestQuickCacheDeterminism(t *testing.T) {
	run := func(pol CachePolicy, ops []uint16) *BlockCache {
		c := NewBlockCache(500, pol)
		for _, op := range ops {
			id := BlockID(op % 16)
			size := int64(op%200) + 1
			if op%5 == 0 {
				c.Invalidate(id)
				continue
			}
			if !c.Touch(id) {
				c.Admit(id, size)
			}
		}
		return c
	}
	f := func(ops []uint16) bool {
		for _, pol := range []CachePolicy{CacheLRU, Cache2Q} {
			a, b := run(pol, ops), run(pol, ops)
			if a.Used() > a.Capacity() || a.Used() < 0 {
				return false
			}
			if a.Used() != b.Used() || a.Hits() != b.Hits() ||
				a.Misses() != b.Misses() || a.Evictions() != b.Evictions() {
				return false
			}
			ab, bb := a.Blocks(), b.Blocks()
			if len(ab) != len(bb) {
				return false
			}
			for i := range ab {
				if ab[i] != bb[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWithBlockCacheCoherence(t *testing.T) {
	nn := newNN(t, 4, WithBlockSize(100), WithReplication(2), WithBlockCache(1<<20, CacheLRU))
	if !nn.CacheEnabled() {
		t.Fatal("CacheEnabled false with WithBlockCache")
	}
	f, _ := nn.Create("a", 100)
	id := f.Blocks[0].ID
	holder := nn.Locations(id)[0]
	nn.Cache(holder).Admit(id, 100)
	if !nn.CacheContains(holder, id) {
		t.Fatal("CacheContains false after Admit")
	}

	// Suspension (a flake) retains warm state; the memory survived.
	nn.Suspend(holder)
	if !nn.CacheContains(holder, id) {
		t.Fatal("Suspend dropped cache state")
	}
	nn.Resume(holder)

	// Decommission (node failure) loses the in-memory tier entirely, and a
	// recommissioned node starts cold.
	if _, err := nn.Decommission(holder); err != nil {
		t.Fatal(err)
	}
	if nn.Cache(holder).Len() != 0 {
		t.Fatal("Decommission retained cache state")
	}
	nn.Recommission(holder)
	if nn.Cache(holder).Len() != 0 {
		t.Fatal("Recommission resurrected cache state")
	}

	// Delete invalidates every replica's cache entry.
	other := nn.Locations(f.Blocks[0].ID)[0]
	nn.Cache(other).Admit(id, 100)
	if err := nn.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if nn.CacheContains(other, id) {
		t.Fatal("Delete left a cached entry for a dropped replica")
	}
}

func TestCacheAwareSelectorPrefersWarmReplica(t *testing.T) {
	nn := newNN(t, 8, WithRacks(2), WithBlockSize(100), WithReplication(3), WithBlockCache(1<<20, CacheLRU))
	f, _ := nn.Create("a", 100)
	id := f.Blocks[0].ID
	locs := nn.Locations(id)
	rng := xrand.New(3)
	sel := &CacheAwareSelector{}

	// No replica warm: defers to the fallback (closest) selector.
	want := (ClosestSelector{}).Pick(nn, locs, locs[0], rng)
	if got := sel.PickBlock(nn, id, locs, locs[0], rng); got != want {
		t.Fatalf("cold pick = %d, want fallback's %d", got, want)
	}

	// Warm a replica: it must win regardless of rack distance.
	warm := locs[len(locs)-1]
	nn.Cache(warm).Admit(id, 100)
	for i := 0; i < 20; i++ {
		if got := sel.PickBlock(nn, id, locs, locs[0], rng); got != warm {
			t.Fatalf("warm pick = %d, want cached replica %d", got, warm)
		}
	}
}
