package hdfs

import "sort"

// PlacementPolicy chooses the DataNodes that receive a new block's replicas.
type PlacementPolicy interface {
	// Place returns the nodes for a block's replicas. Implementations must
	// return distinct, live nodes and may return fewer than replicas when
	// the cluster is too small or too full.
	Place(nn *NameNode, b *Block, replicas int) ([]int, error)
	// Name identifies the policy in reports.
	Name() string
}

// RandomPolicy places each replica on a distinct node chosen uniformly at
// random — the paper's baseline configuration ("each data block typically
// has three replicas randomly distributed in the cluster", §II).
type RandomPolicy struct{}

// Name implements PlacementPolicy.
func (RandomPolicy) Name() string { return "random" }

// Place implements PlacementPolicy.
func (RandomPolicy) Place(nn *NameNode, b *Block, replicas int) ([]int, error) {
	exclude := map[int]bool{}
	var out []int
	for len(out) < replicas {
		node, err := nn.pickNode(b.Size, exclude)
		if err != nil {
			if len(out) > 0 {
				return out, nil // partially placed: under-replicated but usable
			}
			return nil, err
		}
		out = append(out, node)
		exclude[node] = true
	}
	return out, nil
}

// RackAwarePolicy mimics HDFS's default: the first replica on a random node,
// the second on a different rack, the third on the same rack as the second
// but a different node. Extra replicas are placed randomly.
type RackAwarePolicy struct{}

// Name implements PlacementPolicy.
func (RackAwarePolicy) Name() string { return "rack-aware" }

// Place implements PlacementPolicy.
func (RackAwarePolicy) Place(nn *NameNode, b *Block, replicas int) ([]int, error) {
	exclude := map[int]bool{}
	var out []int
	add := func(node int) {
		out = append(out, node)
		exclude[node] = true
	}
	first, err := nn.pickNode(b.Size, exclude)
	if err != nil {
		return nil, err
	}
	add(first)
	if replicas == 1 {
		return out, nil
	}

	// Second replica: prefer a node on a different rack.
	second, ok := nn.pickNodeOnRack(b.Size, exclude, func(rack int) bool { return rack != nn.Rack(first) })
	if !ok {
		second, err = nn.pickNode(b.Size, exclude)
		if err != nil {
			return out, nil
		}
	}
	add(second)

	// Third replica: prefer the second replica's rack.
	if replicas >= 3 {
		third, ok := nn.pickNodeOnRack(b.Size, exclude, func(rack int) bool { return rack == nn.Rack(second) })
		if !ok {
			third, err = nn.pickNode(b.Size, exclude)
			if err != nil {
				return out, nil
			}
		}
		add(third)
	}

	for len(out) < replicas {
		node, err := nn.pickNode(b.Size, exclude)
		if err != nil {
			break
		}
		add(node)
	}
	return out, nil
}

// pickNodeOnRack picks a random live node whose rack satisfies the predicate.
func (nn *NameNode) pickNodeOnRack(size int64, exclude map[int]bool, rackOK func(int) bool) (int, bool) {
	var candidates []int
	for _, d := range nn.datanodes {
		if !d.alive || exclude[d.Node] || !rackOK(nn.Rack(d.Node)) {
			continue
		}
		if d.Capacity > 0 && d.Used+size > d.Capacity {
			continue
		}
		candidates = append(candidates, d.Node)
	}
	if len(candidates) == 0 {
		return 0, false
	}
	return candidates[nn.rng.Intn(len(candidates))], true
}

// PopularityPolicy implements a Scarlett-style strategy (§VII, [9]): blocks
// of files expected to be popular receive extra replicas, proportionally to
// their popularity weight, so hot data does not concentrate computation on
// three nodes.
type PopularityPolicy struct {
	// Weights maps file name → relative popularity (>= 1). Missing files
	// default to weight 1 (base replication).
	Weights map[string]float64
	// MaxExtra caps the additional replicas per block.
	MaxExtra int
}

// Name implements PlacementPolicy.
func (p *PopularityPolicy) Name() string { return "popularity" }

// Place implements PlacementPolicy.
func (p *PopularityPolicy) Place(nn *NameNode, b *Block, replicas int) ([]int, error) {
	w := 1.0
	if p.Weights != nil {
		if v, ok := p.Weights[b.File]; ok && v > 1 {
			w = v
		}
	}
	extra := int(w) - 1
	if p.MaxExtra > 0 && extra > p.MaxExtra {
		extra = p.MaxExtra
	}
	return RandomPolicy{}.Place(nn, b, replicas+extra)
}

// RebalanceAdvice lists moves that would even out replica counts: each move
// re-homes one replica from an overloaded node to an underloaded one.
type RebalanceAdvice struct {
	Block    BlockID
	From, To int
}

// PlanRebalance suggests replica moves until every live node is within
// `slack` replicas of the mean. It does not mutate state; use ApplyMove.
func (nn *NameNode) PlanRebalance(slack int) []RebalanceAdvice {
	if slack < 0 {
		slack = 0
	}
	var advice []RebalanceAdvice
	counts := map[int]int{}
	for _, d := range nn.datanodes {
		if d.alive {
			counts[d.Node] = d.BlockCount()
		}
	}
	if len(counts) < 2 {
		return nil
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	mean := float64(total) / float64(len(counts))
	hi := int(mean) + slack
	lo := int(mean) - slack
	if lo < 0 {
		lo = 0
	}

	// Deterministic order: scan overloaded nodes ascending.
	var over []int
	for node, c := range counts {
		if c > hi {
			over = append(over, node)
		}
	}
	sort.Ints(over)
	for _, from := range over {
		d := nn.datanodes[from]
		var ids []BlockID
		for id := range d.blocks {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			if counts[from] <= hi {
				break
			}
			// Find an underloaded target that lacks this block.
			var to = -1
			for node, c := range counts {
				if c < lo+1 && !nn.datanodes[node].Holds(id) && node != from {
					if to == -1 || c < counts[to] {
						to = node
					}
				}
			}
			if to == -1 {
				continue
			}
			advice = append(advice, RebalanceAdvice{Block: id, From: from, To: to})
			counts[from]--
			counts[to]++
		}
	}
	return advice
}

// ApplyMove executes a rebalance move: the replica on From is dropped after a
// copy is registered on To.
func (nn *NameNode) ApplyMove(m RebalanceAdvice) error {
	b, err := nn.Block(m.Block)
	if err != nil {
		return err
	}
	from := nn.datanodes[m.From]
	if !from.Holds(m.Block) {
		return ErrNotFound
	}
	if nn.datanodes[m.To].Holds(m.Block) {
		return ErrExists
	}
	nn.addReplica(b, m.To)
	delete(from.blocks, m.Block)
	from.Used -= b.Size
	locs := nn.locations[m.Block]
	for i, n := range locs {
		if n == m.From {
			nn.locations[m.Block] = append(locs[:i], locs[i+1:]...)
			break
		}
	}
	return nil
}
