package hdfs

import (
	"fmt"
	"sort"
)

// PlacementPolicy chooses the DataNodes that receive a new block's replicas.
type PlacementPolicy interface {
	// Place returns the nodes for a block's replicas. Implementations must
	// return distinct, live nodes and may return fewer than replicas when
	// the cluster is too small or too full.
	Place(nn *NameNode, b *Block, replicas int) ([]int, error)
	// Name identifies the policy in reports.
	Name() string
}

// RandomPolicy places each replica on a distinct node chosen uniformly at
// random — the paper's baseline configuration ("each data block typically
// has three replicas randomly distributed in the cluster", §II).
type RandomPolicy struct{}

// Name implements PlacementPolicy.
func (RandomPolicy) Name() string { return "random" }

// Place implements PlacementPolicy.
func (RandomPolicy) Place(nn *NameNode, b *Block, replicas int) ([]int, error) {
	exclude := map[int]bool{}
	var out []int
	for len(out) < replicas {
		node, err := nn.pickNode(b.Size, exclude)
		if err != nil {
			if len(out) > 0 {
				return out, nil // partially placed: under-replicated but usable
			}
			return nil, err
		}
		out = append(out, node)
		exclude[node] = true
	}
	return out, nil
}

// RackAwarePolicy mimics HDFS's default: the first replica on a random node,
// the second on a different rack, the third on the same rack as the second
// but a different node. Extra replicas are placed randomly.
type RackAwarePolicy struct{}

// Name implements PlacementPolicy.
func (RackAwarePolicy) Name() string { return "rack-aware" }

// Place implements PlacementPolicy.
func (RackAwarePolicy) Place(nn *NameNode, b *Block, replicas int) ([]int, error) {
	exclude := map[int]bool{}
	var out []int
	add := func(node int) {
		out = append(out, node)
		exclude[node] = true
	}
	first, err := nn.pickNode(b.Size, exclude)
	if err != nil {
		return nil, err
	}
	add(first)
	if replicas == 1 {
		return out, nil
	}

	// Second replica: prefer a node on a different rack.
	second, ok := nn.pickNodeOnRack(b.Size, exclude, func(rack int) bool { return rack != nn.Rack(first) })
	if !ok {
		second, err = nn.pickNode(b.Size, exclude)
		if err != nil {
			return out, nil
		}
	}
	add(second)

	// Third replica: prefer the second replica's rack.
	if replicas >= 3 {
		third, ok := nn.pickNodeOnRack(b.Size, exclude, func(rack int) bool { return rack == nn.Rack(second) })
		if !ok {
			third, err = nn.pickNode(b.Size, exclude)
			if err != nil {
				return out, nil
			}
		}
		add(third)
	}

	for len(out) < replicas {
		node, err := nn.pickNode(b.Size, exclude)
		if err != nil {
			break
		}
		add(node)
	}
	return out, nil
}

// pickNodeOnRack picks a random live node whose rack satisfies the predicate.
func (nn *NameNode) pickNodeOnRack(size int64, exclude map[int]bool, rackOK func(int) bool) (int, bool) {
	var candidates []int
	for _, d := range nn.datanodes {
		if !d.alive || d.suspended || exclude[d.Node] || !rackOK(nn.Rack(d.Node)) {
			continue
		}
		if d.Capacity > 0 && d.Used+size > d.Capacity {
			continue
		}
		candidates = append(candidates, d.Node)
	}
	if len(candidates) == 0 {
		return 0, false
	}
	return candidates[nn.rng.Intn(len(candidates))], true
}

// PopularityPolicy implements a Scarlett-style strategy (§VII, [9]): blocks
// of files expected to be popular receive extra replicas, proportionally to
// their popularity weight, so hot data does not concentrate computation on
// three nodes.
type PopularityPolicy struct {
	// Weights maps file name → relative popularity (>= 1). Missing files
	// default to weight 1 (base replication).
	Weights map[string]float64
	// MaxExtra caps the additional replicas per block.
	MaxExtra int
}

// Name implements PlacementPolicy.
func (p *PopularityPolicy) Name() string { return "popularity" }

// Place implements PlacementPolicy.
func (p *PopularityPolicy) Place(nn *NameNode, b *Block, replicas int) ([]int, error) {
	w := 1.0
	if p.Weights != nil {
		if v, ok := p.Weights[b.File]; ok && v > 1 {
			w = v
		}
	}
	// Round half-up so fractional weights earn their extra replicas: the
	// contract is "proportionally to popularity weight", and truncation
	// would give weight 1.9 the same zero extras as weight 1.0.
	extra := int(w+0.5) - 1
	if p.MaxExtra > 0 && extra > p.MaxExtra {
		extra = p.MaxExtra
	}
	return RandomPolicy{}.Place(nn, b, replicas+extra)
}

// RebalanceAdvice lists moves that would even out replica counts: each move
// re-homes one replica from an overloaded node to an underloaded one.
type RebalanceAdvice struct {
	Block    BlockID
	From, To int
}

// PlanRebalance suggests replica moves until every live node is within
// `slack` replicas of the mean. It does not mutate state; use ApplyMove.
func (nn *NameNode) PlanRebalance(slack int) []RebalanceAdvice {
	if slack < 0 {
		slack = 0
	}
	var advice []RebalanceAdvice
	counts := map[int]int{}
	for _, d := range nn.datanodes {
		if d.alive {
			counts[d.Node] = d.BlockCount()
		}
	}
	if len(counts) < 2 {
		return nil
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	mean := float64(total) / float64(len(counts))
	hi := int(mean) + slack
	lo := int(mean) - slack
	if lo < 0 {
		lo = 0
	}

	// Deterministic order: scan nodes ascending, both when picking the
	// overloaded sources and when breaking target-count ties below, so the
	// advice never depends on map iteration order.
	live := make([]int, 0, len(counts))
	for node := range counts {
		live = append(live, node)
	}
	sort.Ints(live)
	var over []int
	for _, node := range live {
		if counts[node] > hi {
			over = append(over, node)
		}
	}
	// planned tracks bytes this plan already routes to each target, so a
	// sequence of moves cannot collectively overflow a capacity-bounded node
	// that each single move would fit on.
	planned := map[int]int64{}
	for _, from := range over {
		d := nn.datanodes[from]
		var ids []BlockID
		for id := range d.blocks {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			if counts[from] <= hi {
				break
			}
			// Find the least-loaded underloaded target with room that lacks
			// this block; count ties break toward the lowest node ID.
			size := nn.blocks[id].Size
			to := -1
			for _, node := range live {
				if node == from || counts[node] >= lo+1 || nn.datanodes[node].Holds(id) {
					continue
				}
				if td := nn.datanodes[node]; td.Capacity > 0 && td.Used+planned[node]+size > td.Capacity {
					continue
				}
				if to == -1 || counts[node] < counts[to] {
					to = node
				}
			}
			if to == -1 {
				continue
			}
			advice = append(advice, RebalanceAdvice{Block: id, From: from, To: to})
			counts[from]--
			counts[to]++
			planned[to] += size
		}
	}
	return advice
}

// ApplyMove executes a rebalance move: the replica on From is dropped after a
// copy is registered on To.
func (nn *NameNode) ApplyMove(m RebalanceAdvice) error {
	b, err := nn.Block(m.Block)
	if err != nil {
		return err
	}
	from := nn.datanodes[m.From]
	if !from.Holds(m.Block) {
		return ErrNotFound
	}
	if nn.datanodes[m.To].Holds(m.Block) {
		return ErrExists
	}
	// Enforce the same capacity bound pickNode applies at placement time:
	// rebalancing must not overflow a capacity-bounded target.
	if to := nn.datanodes[m.To]; to.Capacity > 0 && to.Used+b.Size > to.Capacity {
		return fmt.Errorf("%w: node %d cannot take block %d", ErrNoSpace, m.To, m.Block)
	}
	nn.addReplica(b, m.To)
	delete(from.blocks, m.Block)
	from.Used -= b.Size
	from.dropCached(m.Block)
	locs := nn.locations[m.Block]
	for i, n := range locs {
		if n == m.From {
			nn.locations[m.Block] = append(locs[:i], locs[i+1:]...)
			break
		}
	}
	return nil
}
