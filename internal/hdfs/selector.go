package hdfs

import "repro/internal/xrand"

// ReplicaSelector chooses which replica a non-local reader streams from —
// HDFS's block-placement-aware read path. Selection only matters for
// non-local reads; local reads always use the reader's own node.
type ReplicaSelector interface {
	Name() string
	// Pick returns the source node for a reader on dst given the live
	// replica locations (non-empty).
	Pick(nn *NameNode, locs []int, dst int, rng *xrand.Rand) int
}

// RandomSelector picks a replica uniformly at random, spreading read load
// across the replica set.
type RandomSelector struct{}

// Name implements ReplicaSelector.
func (RandomSelector) Name() string { return "random" }

// Pick implements ReplicaSelector.
func (RandomSelector) Pick(nn *NameNode, locs []int, dst int, rng *xrand.Rand) int {
	return locs[rng.Intn(len(locs))]
}

// ClosestSelector prefers a replica on the reader's rack (HDFS's
// NetworkTopology.sortByDistance), falling back to a random remote replica.
type ClosestSelector struct{}

// Name implements ReplicaSelector.
func (ClosestSelector) Name() string { return "closest" }

// Pick implements ReplicaSelector.
func (ClosestSelector) Pick(nn *NameNode, locs []int, dst int, rng *xrand.Rand) int {
	rack := nn.Rack(dst)
	var sameRack []int
	for _, n := range locs {
		if nn.Rack(n) == rack {
			sameRack = append(sameRack, n)
		}
	}
	if len(sameRack) > 0 {
		return sameRack[rng.Intn(len(sameRack))]
	}
	return locs[rng.Intn(len(locs))]
}

// LeastLoadedSelector picks the replica holder with the fewest recorded
// block accesses — a simple read-balancing heuristic using the NameNode's
// popularity statistics as a load proxy.
type LeastLoadedSelector struct {
	// loadOf tracks reads served per node during this run.
	served map[int]int
}

// NewLeastLoadedSelector builds a stateful load-balancing selector.
func NewLeastLoadedSelector() *LeastLoadedSelector {
	return &LeastLoadedSelector{served: map[int]int{}}
}

// Name implements ReplicaSelector.
func (s *LeastLoadedSelector) Name() string { return "least-loaded" }

// Pick implements ReplicaSelector.
func (s *LeastLoadedSelector) Pick(nn *NameNode, locs []int, dst int, rng *xrand.Rand) int {
	best := locs[0]
	for _, n := range locs[1:] {
		if s.served[n] < s.served[best] || (s.served[n] == s.served[best] && n < best) {
			best = n
		}
	}
	s.served[best]++
	return best
}
