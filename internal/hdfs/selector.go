package hdfs

import "repro/internal/xrand"

// ReplicaSelector chooses which replica a non-local reader streams from —
// HDFS's block-placement-aware read path. Selection only matters for
// non-local reads; local reads always use the reader's own node.
type ReplicaSelector interface {
	Name() string
	// Pick returns the source node for a reader on dst given the live
	// replica locations (non-empty).
	Pick(nn *NameNode, locs []int, dst int, rng *xrand.Rand) int
}

// BlockAwareSelector is an optional ReplicaSelector extension for selectors
// whose choice depends on which block is being read (e.g. cache warmth).
// The driver's read path type-asserts for it and passes the block ID;
// plain selectors keep the narrower Pick signature.
type BlockAwareSelector interface {
	ReplicaSelector
	// PickBlock returns the source node for a reader on dst fetching the
	// given block, from the live replica locations (non-empty).
	PickBlock(nn *NameNode, id BlockID, locs []int, dst int, rng *xrand.Rand) int
}

// RandomSelector picks a replica uniformly at random, spreading read load
// across the replica set.
type RandomSelector struct{}

// Name implements ReplicaSelector.
func (RandomSelector) Name() string { return "random" }

// Pick implements ReplicaSelector.
func (RandomSelector) Pick(nn *NameNode, locs []int, dst int, rng *xrand.Rand) int {
	return locs[rng.Intn(len(locs))]
}

// ClosestSelector prefers a replica on the reader's rack (HDFS's
// NetworkTopology.sortByDistance), falling back to a random remote replica.
type ClosestSelector struct{}

// Name implements ReplicaSelector.
func (ClosestSelector) Name() string { return "closest" }

// Pick implements ReplicaSelector.
func (ClosestSelector) Pick(nn *NameNode, locs []int, dst int, rng *xrand.Rand) int {
	rack := nn.Rack(dst)
	var sameRack []int
	for _, n := range locs {
		if nn.Rack(n) == rack {
			sameRack = append(sameRack, n)
		}
	}
	if len(sameRack) > 0 {
		return sameRack[rng.Intn(len(sameRack))]
	}
	return locs[rng.Intn(len(locs))]
}

// LeastLoadedSelector picks the replica holder that has served the fewest
// reads through this selector — a simple read-balancing heuristic over its
// own per-run serving counters. It does not consult the NameNode's
// popularity statistics, which count accesses per file, not reads served
// per node.
type LeastLoadedSelector struct {
	// loadOf tracks reads served per node during this run.
	served map[int]int
}

// NewLeastLoadedSelector builds a stateful load-balancing selector.
func NewLeastLoadedSelector() *LeastLoadedSelector {
	return &LeastLoadedSelector{served: map[int]int{}}
}

// Name implements ReplicaSelector.
func (s *LeastLoadedSelector) Name() string { return "least-loaded" }

// Pick implements ReplicaSelector.
func (s *LeastLoadedSelector) Pick(nn *NameNode, locs []int, dst int, rng *xrand.Rand) int {
	best := locs[0]
	for _, n := range locs[1:] {
		if s.served[n] < s.served[best] || (s.served[n] == s.served[best] && n < best) {
			best = n
		}
	}
	s.served[best]++
	return best
}

// CacheAwareSelector prefers replica holders whose block cache holds the
// block warm, so remote reads stream from memory instead of disk. Among
// warm holders it prefers the reader's rack, then the lowest node ID; with
// no warm holder (or the cache tier disabled) it defers to Fallback.
type CacheAwareSelector struct {
	// Fallback picks when no replica is warm. Nil defaults to
	// ClosestSelector, matching HDFS's rack-distance read path.
	Fallback ReplicaSelector
}

// Name implements ReplicaSelector.
func (s *CacheAwareSelector) Name() string { return "cache-aware" }

// Pick implements ReplicaSelector: without a block ID there is no warmth to
// consult, so it defers straight to the fallback.
func (s *CacheAwareSelector) Pick(nn *NameNode, locs []int, dst int, rng *xrand.Rand) int {
	return s.fallback().Pick(nn, locs, dst, rng)
}

// PickBlock implements BlockAwareSelector.
func (s *CacheAwareSelector) PickBlock(nn *NameNode, id BlockID, locs []int, dst int, rng *xrand.Rand) int {
	best, bestRack := -1, false
	rack := nn.Rack(dst)
	for _, n := range locs {
		if !nn.CacheContains(n, id) {
			continue
		}
		sameRack := nn.Rack(n) == rack
		// Rack proximity first, then lowest node ID: deterministic given
		// the cache state, which is itself deterministic.
		if best == -1 || (sameRack && !bestRack) || (sameRack == bestRack && n < best) {
			best, bestRack = n, sameRack
		}
	}
	if best >= 0 {
		return best
	}
	return s.fallback().Pick(nn, locs, dst, rng)
}

func (s *CacheAwareSelector) fallback() ReplicaSelector {
	if s.Fallback != nil {
		return s.Fallback
	}
	return ClosestSelector{}
}
