package hdfs

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func newNN(t *testing.T, n int, opts ...Option) *NameNode {
	t.Helper()
	return NewNameNode(n, xrand.New(42), opts...)
}

func TestCreateSplitsIntoBlocks(t *testing.T) {
	nn := newNN(t, 10, WithBlockSize(100))
	f, err := nn.Create("a", 350)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) != 4 {
		t.Fatalf("350B file with 100B blocks → %d blocks, want 4", len(f.Blocks))
	}
	sizes := []int64{100, 100, 100, 50}
	var total int64
	for i, b := range f.Blocks {
		if b.Size != sizes[i] {
			t.Fatalf("block %d size %d, want %d", i, b.Size, sizes[i])
		}
		if b.Index != i {
			t.Fatalf("block %d has index %d", i, b.Index)
		}
		total += b.Size
	}
	if total != 350 {
		t.Fatalf("block sizes sum to %d, want 350", total)
	}
}

func TestReplication(t *testing.T) {
	nn := newNN(t, 10, WithBlockSize(100), WithReplication(3))
	f, err := nn.Create("a", 1000)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range f.Blocks {
		locs := nn.Locations(b.ID)
		if len(locs) != 3 {
			t.Fatalf("block %d has %d replicas, want 3", b.ID, len(locs))
		}
		seen := map[int]bool{}
		for _, n := range locs {
			if seen[n] {
				t.Fatalf("block %d has duplicate replica on node %d", b.ID, n)
			}
			seen[n] = true
			if !nn.DataNode(n).Holds(b.ID) {
				t.Fatalf("NameNode/DataNode disagree on block %d @ node %d", b.ID, n)
			}
		}
	}
}

func TestCreateDuplicateFails(t *testing.T) {
	nn := newNN(t, 5)
	if _, err := nn.Create("a", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := nn.Create("a", 100); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate Create error = %v, want ErrExists", err)
	}
}

func TestCreateInvalidSize(t *testing.T) {
	nn := newNN(t, 5)
	if _, err := nn.Create("z", 0); err == nil {
		t.Fatal("Create with size 0 succeeded")
	}
}

func TestOpenAndExists(t *testing.T) {
	nn := newNN(t, 5)
	if nn.Exists("a") {
		t.Fatal("Exists on empty namespace")
	}
	nn.Create("a", 100)
	if !nn.Exists("a") {
		t.Fatal("file missing after Create")
	}
	f, err := nn.Open("a")
	if err != nil || f.Name != "a" {
		t.Fatalf("Open: %v %v", f, err)
	}
	if _, err := nn.Open("b"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Open missing file error = %v", err)
	}
}

func TestDelete(t *testing.T) {
	nn := newNN(t, 5, WithBlockSize(100))
	f, _ := nn.Create("a", 300)
	ids := make([]BlockID, 0)
	for _, b := range f.Blocks {
		ids = append(ids, b.ID)
	}
	if err := nn.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if nn.Exists("a") {
		t.Fatal("file exists after Delete")
	}
	for _, id := range ids {
		if len(nn.Locations(id)) != 0 {
			t.Fatalf("block %d still has replicas after Delete", id)
		}
	}
	for i := 0; i < 5; i++ {
		if nn.DataNode(i).Used != 0 {
			t.Fatalf("node %d Used = %d after Delete", i, nn.DataNode(i).Used)
		}
	}
	if err := nn.Delete("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double Delete error = %v", err)
	}
}

func TestSmallClusterPartialReplication(t *testing.T) {
	nn := newNN(t, 2, WithReplication(3))
	f, err := nn.Create("a", 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(nn.Locations(f.Blocks[0].ID)); got != 2 {
		t.Fatalf("2-node cluster placed %d replicas, want 2", got)
	}
}

func TestCapacityLimit(t *testing.T) {
	nn := newNN(t, 3, WithBlockSize(100), WithReplication(1), WithCapacity(250))
	for i := 0; i < 6; i++ {
		name := string(rune('a' + i))
		if _, err := nn.Create(name, 100); err != nil {
			t.Fatalf("Create %s: %v (each of 3 nodes fits 2 blocks of 100)", name, err)
		}
	}
	// 7th block cannot fit anywhere (each node holds 2 at 200/250).
	if _, err := nn.Create("overflow", 100); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("over-capacity Create error = %v, want ErrNoSpace", err)
	}
}

func TestDecommissionReplicates(t *testing.T) {
	nn := newNN(t, 10, WithBlockSize(100), WithReplication(3))
	f, _ := nn.Create("a", 1000)
	victim := nn.Locations(f.Blocks[0].ID)[0]
	before := nn.DataNode(victim).BlockCount()
	if before == 0 {
		t.Fatal("victim node holds no blocks")
	}
	copies, err := nn.Decommission(victim)
	if err != nil {
		t.Fatal(err)
	}
	if len(copies) != before {
		t.Fatalf("re-replicated %d blocks, want %d", len(copies), before)
	}
	for _, cp := range copies {
		if cp.From == victim || cp.To == victim {
			t.Fatalf("copy involves the dead node: %+v", cp)
		}
		if cp.Size <= 0 {
			t.Fatalf("copy with no size: %+v", cp)
		}
		// Targets are pending until the transfer commits: not yet readable.
		if nn.DataNode(cp.To).Holds(cp.Block) {
			t.Fatalf("copy target registered before CommitReplica: %+v", cp)
		}
		found := false
		for _, n := range nn.PendingReplicas(cp.Block) {
			if n == cp.To {
				found = true
			}
		}
		if !found {
			t.Fatalf("copy target not pending: %+v", cp)
		}
		if err := nn.CommitReplica(cp.Block, cp.To); err != nil {
			t.Fatalf("CommitReplica: %v", err)
		}
		if !nn.DataNode(cp.To).Holds(cp.Block) {
			t.Fatalf("copy target missing block after commit: %+v", cp)
		}
	}
	if ids := nn.PendingBlockIDs(); len(ids) != 0 {
		t.Fatalf("pending blocks remain after all commits: %v", ids)
	}
	for _, b := range f.Blocks {
		locs := nn.Locations(b.ID)
		if len(locs) != 3 {
			t.Fatalf("block %d has %d live replicas after decommission", b.ID, len(locs))
		}
		for _, n := range locs {
			if n == victim {
				t.Fatalf("Locations returned dead node %d", victim)
			}
		}
	}
	if _, err := nn.Decommission(victim); err == nil {
		t.Fatal("double decommission succeeded")
	}
	nn.Recommission(victim)
	if !nn.DataNode(victim).Alive() {
		t.Fatal("node dead after Recommission")
	}
}

func TestRecordAccess(t *testing.T) {
	nn := newNN(t, 5, WithBlockSize(100))
	f, _ := nn.Create("a", 200)
	nn.RecordAccess(f.Blocks[0].ID)
	nn.RecordAccess(f.Blocks[1].ID)
	if f.Accesses != 2 {
		t.Fatalf("Accesses = %d, want 2", f.Accesses)
	}
}

func TestRackAwarePlacement(t *testing.T) {
	nn := newNN(t, 20, WithRacks(5), WithPolicy(RackAwarePolicy{}), WithBlockSize(100), WithReplication(3))
	f, err := nn.Create("a", 2000)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range f.Blocks {
		locs := nn.Locations(b.ID)
		if len(locs) != 3 {
			t.Fatalf("block %d: %d replicas", b.ID, len(locs))
		}
		racks := map[int]int{}
		for _, n := range locs {
			racks[nn.Rack(n)]++
		}
		if len(racks) < 2 {
			t.Fatalf("block %d: all replicas on one rack %v", b.ID, locs)
		}
		// HDFS default: replicas 2 and 3 share a rack.
		if nn.Rack(locs[1]) != nn.Rack(locs[2]) {
			t.Fatalf("block %d: second and third replica on different racks", b.ID)
		}
		if nn.Rack(locs[0]) == nn.Rack(locs[1]) {
			t.Fatalf("block %d: first and second replica share a rack", b.ID)
		}
	}
}

func TestPopularityPolicyExtraReplicas(t *testing.T) {
	p := &PopularityPolicy{Weights: map[string]float64{"hot": 3}, MaxExtra: 5}
	nn := newNN(t, 20, WithPolicy(p), WithBlockSize(100), WithReplication(3))
	hot, _ := nn.Create("hot", 300)
	cold, _ := nn.Create("cold", 300)
	for _, b := range hot.Blocks {
		if got := nn.ReplicaCount(b.ID); got != 5 {
			t.Fatalf("hot block has %d replicas, want 5 (3 + weight 3 - 1)", got)
		}
	}
	for _, b := range cold.Blocks {
		if got := nn.ReplicaCount(b.ID); got != 3 {
			t.Fatalf("cold block has %d replicas, want 3", got)
		}
	}
}

func TestPopularityMaxExtraCap(t *testing.T) {
	p := &PopularityPolicy{Weights: map[string]float64{"hot": 100}, MaxExtra: 2}
	nn := newNN(t, 20, WithPolicy(p), WithBlockSize(100), WithReplication(3))
	hot, _ := nn.Create("hot", 100)
	if got := nn.ReplicaCount(hot.Blocks[0].ID); got != 5 {
		t.Fatalf("capped hot block has %d replicas, want 5", got)
	}
}

func TestBalanceReport(t *testing.T) {
	nn := newNN(t, 10, WithBlockSize(100), WithReplication(3))
	nn.Create("a", 3000)
	r := nn.Balance()
	if r.MeanReplicas != 9.0 { // 30 blocks × 3 replicas / 10 nodes
		t.Fatalf("MeanReplicas = %v, want 9", r.MeanReplicas)
	}
	if r.MinReplicas > r.MaxReplicas {
		t.Fatalf("min %d > max %d", r.MinReplicas, r.MaxReplicas)
	}
}

func TestPlanRebalance(t *testing.T) {
	nn := newNN(t, 4, WithBlockSize(100), WithReplication(1))
	// Force imbalance: all blocks on node 0 via a capacity trick.
	for i := 1; i < 4; i++ {
		nn.DataNode(i).Capacity = 1 // too small for any block
	}
	for i := 0; i < 8; i++ {
		if _, err := nn.Create(string(rune('a'+i)), 100); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < 4; i++ {
		nn.DataNode(i).Capacity = 0 // unlimited again
	}
	moves := nn.PlanRebalance(1)
	if len(moves) == 0 {
		t.Fatal("no rebalance moves proposed for a fully skewed cluster")
	}
	for _, m := range moves {
		if err := nn.ApplyMove(m); err != nil {
			t.Fatalf("ApplyMove(%+v): %v", m, err)
		}
	}
	r := nn.Balance()
	if r.MaxReplicas-r.MinReplicas > 2 {
		t.Fatalf("still imbalanced after rebalance: %+v", r)
	}
	// Total replica count must be conserved.
	total := 0
	for i := 0; i < 4; i++ {
		total += nn.DataNode(i).BlockCount()
	}
	if total != 8 {
		t.Fatalf("replica count %d after rebalance, want 8", total)
	}
}

func TestApplyMoveErrors(t *testing.T) {
	nn := newNN(t, 3, WithBlockSize(100), WithReplication(1))
	f, _ := nn.Create("a", 100)
	id := f.Blocks[0].ID
	holder := nn.Locations(id)[0]
	other := (holder + 1) % 3
	if err := nn.ApplyMove(RebalanceAdvice{Block: id, From: other, To: holder}); err == nil {
		t.Fatal("move from non-holder succeeded")
	}
	if err := nn.ApplyMove(RebalanceAdvice{Block: 999, From: 0, To: 1}); err == nil {
		t.Fatal("move of unknown block succeeded")
	}
}

// Property: for any file size and block size, the blocks exactly tile the
// file and every block has min(replication, nodes) distinct replicas.
func TestQuickCreateInvariants(t *testing.T) {
	f := func(seed uint64, sizeRaw uint32, bsRaw uint16, nRaw, repRaw uint8) bool {
		n := int(nRaw%20) + 1
		rep := int(repRaw%5) + 1
		bs := int64(bsRaw%1000) + 1
		size := int64(sizeRaw%100000) + 1
		nn := NewNameNode(n, xrand.New(seed), WithBlockSize(bs), WithReplication(rep))
		file, err := nn.Create("f", size)
		if err != nil {
			return false
		}
		var total int64
		for _, b := range file.Blocks {
			total += b.Size
			if b.Size <= 0 || b.Size > bs {
				return false
			}
			locs := nn.Locations(b.ID)
			want := rep
			if n < rep {
				want = n
			}
			if len(locs) != want {
				return false
			}
			seen := map[int]bool{}
			for _, node := range locs {
				if seen[node] {
					return false
				}
				seen[node] = true
			}
		}
		return total == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Used accounting matches the sum of stored block sizes, through
// create/delete cycles.
func TestQuickUsedAccounting(t *testing.T) {
	f := func(seed uint64, ops []uint16) bool {
		nn := NewNameNode(6, xrand.New(seed), WithBlockSize(64), WithReplication(2))
		live := map[string]bool{}
		for i, op := range ops {
			name := string(rune('a' + i%8))
			if op%3 == 0 && live[name] {
				if nn.Delete(name) != nil {
					return false
				}
				delete(live, name)
			} else if !live[name] {
				if _, err := nn.Create(name, int64(op%500)+1); err != nil {
					return false
				}
				live[name] = true
			}
		}
		// Recompute Used from scratch.
		want := make([]int64, 6)
		for _, name := range nn.Files() {
			file, _ := nn.Open(name)
			for _, b := range file.Blocks {
				for _, node := range nn.Locations(b.ID) {
					want[node] += b.Size
				}
			}
		}
		for i := 0; i < 6; i++ {
			if nn.DataNode(i).Used != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFilesSorted(t *testing.T) {
	nn := newNN(t, 5)
	nn.Create("zeta", 10)
	nn.Create("alpha", 10)
	nn.Create("mid", 10)
	files := nn.Files()
	if len(files) != 3 || files[0] != "alpha" || files[1] != "mid" || files[2] != "zeta" {
		t.Fatalf("Files() = %v", files)
	}
}

func TestRandomSelector(t *testing.T) {
	nn := newNN(t, 10)
	rng := xrand.New(5)
	locs := []int{2, 5, 8}
	counts := map[int]int{}
	for i := 0; i < 3000; i++ {
		src := RandomSelector{}.Pick(nn, locs, 0, rng)
		counts[src]++
	}
	for _, n := range locs {
		if counts[n] < 800 {
			t.Fatalf("replica %d underpicked: %v", n, counts)
		}
	}
}

func TestClosestSelectorPrefersRack(t *testing.T) {
	nn := newNN(t, 12, WithRacks(4)) // racks: 0-3, 4-7, 8-11
	rng := xrand.New(7)
	// Reader on node 1 (rack 0); replicas on 2 (rack 0), 6 (rack 1), 10 (rack 2).
	for i := 0; i < 100; i++ {
		if src := (ClosestSelector{}).Pick(nn, []int{2, 6, 10}, 1, rng); src != 2 {
			t.Fatalf("closest picked %d, want same-rack 2", src)
		}
	}
	// No same-rack replica: any of the given is acceptable.
	src := (ClosestSelector{}).Pick(nn, []int{6, 10}, 1, rng)
	if src != 6 && src != 10 {
		t.Fatalf("fallback picked %d", src)
	}
}

func TestLeastLoadedSelectorBalances(t *testing.T) {
	nn := newNN(t, 6)
	rng := xrand.New(9)
	sel := NewLeastLoadedSelector()
	counts := map[int]int{}
	for i := 0; i < 300; i++ {
		src := sel.Pick(nn, []int{1, 3, 5}, 0, rng)
		counts[src]++
	}
	for _, n := range []int{1, 3, 5} {
		if counts[n] != 100 {
			t.Fatalf("least-loaded not balanced: %v", counts)
		}
	}
}

func TestSuspendResume(t *testing.T) {
	nn := newNN(t, 6, WithBlockSize(100), WithReplication(3))
	f, _ := nn.Create("a", 100)
	id := f.Blocks[0].ID
	victim := nn.Locations(id)[0]
	if !nn.Suspend(victim) {
		t.Fatal("Suspend returned false on a healthy node")
	}
	if nn.Suspend(victim) {
		t.Fatal("double Suspend returned true")
	}
	if nn.DataNode(victim).Alive() {
		t.Fatal("suspended node reports Alive")
	}
	for _, n := range nn.Locations(id) {
		if n == victim {
			t.Fatal("Locations lists a suspended node")
		}
	}
	if !nn.DataNode(victim).Holds(id) {
		t.Fatal("suspension dropped the replica")
	}
	if !nn.Resume(victim) {
		t.Fatal("Resume returned false on a suspended node")
	}
	if nn.Resume(victim) {
		t.Fatal("Resume of a healthy node returned true")
	}
	found := false
	for _, n := range nn.Locations(id) {
		if n == victim {
			found = true
		}
	}
	if !found {
		t.Fatal("resumed node missing from Locations")
	}
}

func TestStaleMetadataWindow(t *testing.T) {
	nn := newNN(t, 8, WithBlockSize(100), WithReplication(3))
	f, _ := nn.Create("a", 100)
	id := f.Blocks[0].ID
	before := nn.Locations(id)
	if !nn.BeginStale() {
		t.Fatal("BeginStale returned false")
	}
	if nn.BeginStale() {
		t.Fatal("nested BeginStale returned true")
	}
	victim := before[0]
	if _, err := nn.Decommission(victim); err != nil {
		t.Fatal(err)
	}
	stale := nn.Locations(id)
	if len(stale) != len(before) {
		t.Fatalf("stale Locations = %v, want frozen %v", stale, before)
	}
	if nn.ReplicaCount(id) != len(before)-1 {
		t.Fatalf("ReplicaCount = %d leaked stale data, want fresh %d", nn.ReplicaCount(id), len(before)-1)
	}
	if !nn.EndStale() {
		t.Fatal("EndStale returned false")
	}
	if nn.EndStale() {
		t.Fatal("EndStale with no window returned true")
	}
	for _, n := range nn.Locations(id) {
		if n == victim {
			t.Fatal("fresh Locations lists the dead node after EndStale")
		}
	}
}

func TestAbortReplica(t *testing.T) {
	nn := newNN(t, 6, WithBlockSize(100), WithReplication(3))
	f, _ := nn.Create("a", 100)
	id := f.Blocks[0].ID
	victim := nn.Locations(id)[0]
	copies, err := nn.Decommission(victim)
	if err != nil {
		t.Fatal(err)
	}
	if len(copies) != 1 {
		t.Fatalf("got %d copies, want 1", len(copies))
	}
	cp := copies[0]
	nn.AbortReplica(cp.Block, cp.To)
	if err := nn.CommitReplica(cp.Block, cp.To); err == nil {
		t.Fatal("CommitReplica after Abort succeeded")
	}
	if got := len(nn.PendingReplicas(cp.Block)); got != 0 {
		t.Fatalf("pending after abort = %d, want 0", got)
	}
	// A fresh decommission of another replica holder re-plans the copy.
	nn.AbortReplica(cp.Block, cp.To) // no-op on absent entry
}
