package hdfs

import (
	"errors"
	"fmt"
	"testing"
)

// skewedNN builds a cluster with every block on node 0: the other nodes are
// capacity-pinched during Create, then released.
func skewedNN(t *testing.T, nodes, blocks int) *NameNode {
	t.Helper()
	nn := newNN(t, nodes, WithBlockSize(100), WithReplication(1))
	for i := 1; i < nodes; i++ {
		nn.DataNode(i).Capacity = 1
	}
	for i := 0; i < blocks; i++ {
		if _, err := nn.Create(fmt.Sprintf("f%02d", i), 100); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < nodes; i++ {
		nn.DataNode(i).Capacity = 0
	}
	return nn
}

// Regression: PlanRebalance used to pick move targets by iterating a map of
// replica counts, so the same cluster state could yield different advice
// across runs. The plan must be a pure function of the cluster state.
func TestPlanRebalanceDeterministic(t *testing.T) {
	nn := skewedNN(t, 16, 12)
	first := nn.PlanRebalance(1)
	if len(first) == 0 {
		t.Fatal("no advice for a fully skewed cluster")
	}
	for trial := 1; trial < 20; trial++ {
		again := nn.PlanRebalance(1)
		if len(again) != len(first) {
			t.Fatalf("trial %d: %d moves, first run had %d", trial, len(again), len(first))
		}
		for i := range again {
			if again[i] != first[i] {
				t.Fatalf("trial %d move %d: %+v, first run had %+v", trial, i, again[i], first[i])
			}
		}
	}
	// With every underloaded node tied at zero blocks, the ascending-ID
	// tie-break keeps targets at the low node IDs.
	if first[0].To != 1 {
		t.Fatalf("first move targets node %d, want lowest-ID tie-break 1", first[0].To)
	}
}

// Regression: ApplyMove used to skip the capacity check pickNode applies at
// placement time, so rebalancing could overflow a nearly-full node.
func TestApplyMoveRespectsCapacity(t *testing.T) {
	nn := skewedNN(t, 3, 2) // node 0 holds two 100B blocks
	ids := []BlockID{}
	for _, name := range nn.Files() {
		f, _ := nn.Open(name)
		ids = append(ids, f.Blocks[0].ID)
	}
	nn.DataNode(1).Capacity = 60 // less than one block
	if err := nn.ApplyMove(RebalanceAdvice{Block: ids[0], From: 0, To: 1}); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("move onto a full node: err = %v, want ErrNoSpace", err)
	}
	if nn.DataNode(1).BlockCount() != 0 || nn.DataNode(0).BlockCount() != 2 {
		t.Fatal("refused move mutated replica state")
	}
	// A nearly-full node takes one block, then refuses the second.
	nn.DataNode(1).Capacity = 150
	if err := nn.ApplyMove(RebalanceAdvice{Block: ids[0], From: 0, To: 1}); err != nil {
		t.Fatalf("move within capacity: %v", err)
	}
	if err := nn.ApplyMove(RebalanceAdvice{Block: ids[1], From: 0, To: 1}); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("move overflowing a nearly-full node: err = %v, want ErrNoSpace", err)
	}
}

// Regression: PlanRebalance used to advise moves onto capacity-bounded nodes
// that could not take them — and could route several moves to a target that
// only had room for one. Every planned move must apply cleanly.
func TestPlanRebalanceRespectsCapacity(t *testing.T) {
	nn := skewedNN(t, 3, 8)
	nn.DataNode(1).Capacity = 60  // full for any block
	nn.DataNode(2).Capacity = 250 // room for two blocks, not three
	moves := nn.PlanRebalance(0)
	if len(moves) == 0 {
		t.Fatal("no advice for a skewed cluster with a usable target")
	}
	toTwo := 0
	for _, m := range moves {
		if m.To == 1 {
			t.Fatalf("planned a move onto full node 1: %+v", m)
		}
		if m.To == 2 {
			toTwo++
		}
		if err := nn.ApplyMove(m); err != nil {
			t.Fatalf("planned move does not apply: %+v: %v", m, err)
		}
	}
	if toTwo != 2 {
		t.Fatalf("routed %d moves to a node with room for 2", toTwo)
	}
}

// Regression: pickNodeOnRack ignored the suspended flag pickNode honors, so
// RackAwarePolicy could place replicas on flaking nodes.
func TestRackAwarePlacementSkipsSuspended(t *testing.T) {
	nn := newNN(t, 4, WithRacks(2), WithPolicy(RackAwarePolicy{}), WithBlockSize(100), WithReplication(3))
	nn.Suspend(2)
	nn.Suspend(3) // rack 1 is entirely suspended
	f, err := nn.Create("a", 300)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range f.Blocks {
		// Locations hides suspended nodes, so ask the DataNodes directly.
		for _, n := range []int{2, 3} {
			if nn.DataNode(n).Holds(b.ID) {
				t.Fatalf("block %d placed on suspended node %d", b.ID, n)
			}
		}
		if got := len(nn.Locations(b.ID)); got != 2 {
			t.Fatalf("block %d has %d live replicas, want 2 (both healthy nodes)", b.ID, got)
		}
	}
}

// Regression: PopularityPolicy truncated fractional weights, so weight 1.9
// earned the same zero extra replicas as weight 1.0. Weights round half-up.
func TestPopularityFractionalWeightRounds(t *testing.T) {
	p := &PopularityPolicy{Weights: map[string]float64{"warm": 1.9, "tepid": 1.4}, MaxExtra: 5}
	nn := newNN(t, 20, WithPolicy(p), WithBlockSize(100), WithReplication(3))
	warm, _ := nn.Create("warm", 100)
	if got := nn.ReplicaCount(warm.Blocks[0].ID); got != 4 {
		t.Fatalf("weight 1.9 block has %d replicas, want 4 (rounds up to 2 → 1 extra)", got)
	}
	tepid, _ := nn.Create("tepid", 100)
	if got := nn.ReplicaCount(tepid.Blocks[0].ID); got != 3 {
		t.Fatalf("weight 1.4 block has %d replicas, want 3 (rounds down to 1 → no extra)", got)
	}
}
