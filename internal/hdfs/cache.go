package hdfs

import "sort"

// CachePolicy names a BlockCache eviction policy.
type CachePolicy string

const (
	// CacheLRU evicts the least recently touched block.
	CacheLRU CachePolicy = "lru"
	// Cache2Q is a simplified 2Q [Johnson & Shasha '94]: new blocks enter a
	// probationary FIFO (A1in, a quarter of the capacity) and only graduate
	// to the main LRU queue (Am) when re-referenced, so a one-pass scan
	// cannot flush the hot set.
	Cache2Q CachePolicy = "2q"
)

// ValidCachePolicy reports whether p names a supported eviction policy.
// The empty string is accepted as CacheLRU.
func ValidCachePolicy(p CachePolicy) bool {
	return p == "" || p == CacheLRU || p == Cache2Q
}

// cacheEntry is one cached block, threaded on an intrusive recency list.
type cacheEntry struct {
	id         BlockID
	size       int64
	prev, next *cacheEntry
	probation  bool // 2Q: still in the A1in FIFO, not yet re-referenced
}

// cacheList is a doubly-linked recency list: front is most recent (or most
// recently admitted, for the 2Q FIFO), back is the eviction victim.
type cacheList struct {
	head, tail *cacheEntry
}

func (l *cacheList) pushFront(e *cacheEntry) {
	e.prev, e.next = nil, l.head
	if l.head != nil {
		l.head.prev = e
	}
	l.head = e
	if l.tail == nil {
		l.tail = e
	}
}

func (l *cacheList) remove(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// BlockCache is a per-DataNode in-memory block cache. It is deterministic by
// construction: recency is tracked by list position, never by wall clock, so
// the eviction order is a pure function of the Touch/Admit call sequence.
//
// The cache never admits a block on lookup alone — the driver admits a block
// only on the node that actually served its bytes (reader on a local disk
// read, source on a remote read), which keeps "cached implies held" an
// invariant Driver.Audit can check.
type BlockCache struct {
	capacity int64
	policy   CachePolicy
	used     int64
	a1used   int64 // 2Q: bytes in the probationary FIFO
	a1cap    int64 // 2Q: probationary share of the capacity
	entries  map[BlockID]*cacheEntry
	a1, am   cacheList // LRU uses am only

	hits, misses, evictions int64
}

// NewBlockCache builds a cache holding at most capacity bytes. An empty
// policy defaults to CacheLRU; an unknown policy panics (callers validate
// user input with ValidCachePolicy first).
func NewBlockCache(capacity int64, policy CachePolicy) *BlockCache {
	if policy == "" {
		policy = CacheLRU
	}
	if policy != CacheLRU && policy != Cache2Q {
		panic("hdfs: unknown cache policy " + string(policy))
	}
	if capacity < 0 {
		capacity = 0
	}
	return &BlockCache{
		capacity: capacity,
		policy:   policy,
		a1cap:    capacity / 4,
		entries:  make(map[BlockID]*cacheEntry),
	}
}

// Capacity returns the configured byte capacity.
func (c *BlockCache) Capacity() int64 { return c.capacity }

// Used returns the bytes currently cached. Used never exceeds Capacity.
func (c *BlockCache) Used() int64 { return c.used }

// Len returns the number of cached blocks.
func (c *BlockCache) Len() int { return len(c.entries) }

// Hits returns the number of Touch calls that found their block.
func (c *BlockCache) Hits() int64 { return c.hits }

// Misses returns the number of Touch calls that did not.
func (c *BlockCache) Misses() int64 { return c.misses }

// Evictions returns the number of blocks evicted to make room. Invalidate
// and Clear drops (coherence, not pressure) are not counted.
func (c *BlockCache) Evictions() int64 { return c.evictions }

// Contains reports whether the block is cached without touching recency or
// hit/miss accounting — the peek used by warm-replica selection and audits.
func (c *BlockCache) Contains(id BlockID) bool {
	_, ok := c.entries[id]
	return ok
}

// Touch records a lookup: on a hit the block's recency is renewed per the
// eviction policy and true is returned; on a miss false. Touch never admits —
// pair it with Admit on the node that served the read.
func (c *BlockCache) Touch(id BlockID) bool {
	e, ok := c.entries[id]
	if !ok {
		c.misses++
		return false
	}
	c.hits++
	if e.probation {
		// 2Q: a re-reference graduates the block from the probationary
		// FIFO to the front of the main queue.
		c.a1.remove(e)
		e.probation = false
		c.a1used -= e.size
		c.am.pushFront(e)
	} else {
		c.am.remove(e)
		c.am.pushFront(e)
	}
	return true
}

// Admit inserts a block after a miss, evicting per the policy until it fits.
// Blocks larger than the whole cache are not admitted. Returns the number of
// blocks evicted.
func (c *BlockCache) Admit(id BlockID, size int64) int {
	if size > c.capacity || size <= 0 {
		return 0
	}
	if _, ok := c.entries[id]; ok {
		return 0
	}
	n := 0
	for c.used+size > c.capacity {
		c.evictOne()
		c.evictions++
		n++
	}
	e := &cacheEntry{id: id, size: size}
	c.entries[id] = e
	c.used += size
	if c.policy == Cache2Q {
		e.probation = true
		c.a1used += size
		c.a1.pushFront(e)
	} else {
		c.am.pushFront(e)
	}
	return n
}

// evictOne removes the policy's victim. Callers guarantee the cache is
// non-empty (used > 0).
func (c *BlockCache) evictOne() {
	var victim *cacheEntry
	// 2Q evicts from the probationary FIFO while it is over its share (or
	// the main queue is empty); LRU keeps everything in am.
	if c.a1.tail != nil && (c.a1used > c.a1cap || c.am.tail == nil) {
		victim = c.a1.tail
	} else {
		victim = c.am.tail
	}
	c.drop(victim)
}

// Invalidate drops a block without eviction accounting (coherence: the
// node lost or moved its replica). Returns whether it was cached.
func (c *BlockCache) Invalidate(id BlockID) bool {
	e, ok := c.entries[id]
	if !ok {
		return false
	}
	c.drop(e)
	return true
}

// Clear empties the cache (node failure: the in-memory tier is gone).
// Returns the number of blocks dropped. Hit/miss/eviction counters are
// retained — they count events, not contents.
func (c *BlockCache) Clear() int {
	n := len(c.entries)
	c.entries = make(map[BlockID]*cacheEntry)
	c.a1, c.am = cacheList{}, cacheList{}
	c.used, c.a1used = 0, 0
	return n
}

func (c *BlockCache) drop(e *cacheEntry) {
	if e.probation {
		c.a1.remove(e)
		c.a1used -= e.size
	} else {
		c.am.remove(e)
	}
	delete(c.entries, e.id)
	c.used -= e.size
}

// Blocks returns the cached block IDs in ascending order — for audits and
// tests, not the hot path.
func (c *BlockCache) Blocks() []BlockID {
	out := make([]BlockID, 0, len(c.entries))
	for id := range c.entries {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
