// Package hdfs models the distributed file system substrate the paper's
// cluster runs on (HDFS, §II / §IV-C).
//
// A NameNode manages the directory tree: files are split into fixed-size
// blocks, each replicated onto several DataNodes according to a pluggable
// placement policy. Custody's only dependency on the file system is the
// NameNode's Locations query ("Custody acquires the list of relevant
// DataNodes that store the input data blocks of jobs" — §IV-C), which this
// package answers exactly as HDFS would.
package hdfs

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/xrand"
)

// BlockID identifies a block cluster-wide.
type BlockID int

// DefaultBlockSize is the paper's standard configuration (§VI-A1): 128 MB.
const DefaultBlockSize int64 = 128 << 20

// DefaultReplication is the standard HDFS replication level (§VI-A1).
const DefaultReplication = 3

// Block is one fixed-size piece of a file.
type Block struct {
	ID    BlockID
	File  string
	Index int   // position within the file
	Size  int64 // bytes; the final block of a file may be short
}

// File is a named sequence of blocks.
type File struct {
	Name   string
	Size   int64
	Blocks []*Block
	// Accesses counts reads of any block of this file; consumed by the
	// popularity placement policy (Scarlett-style, §VII).
	Accesses int64
}

// DataNode tracks the blocks stored on one worker node.
type DataNode struct {
	Node      int
	Capacity  int64 // bytes; 0 means unlimited
	Used      int64
	blocks    map[BlockID]struct{}
	alive     bool
	suspended bool        // flaky: process up, refusing reads; heartbeats missed
	cache     *BlockCache // in-memory block cache; nil when the tier is disabled
}

// Cache returns the node's block cache, or nil when the cache tier is
// disabled (the zero-default configuration).
func (d *DataNode) Cache() *BlockCache { return d.cache }

// dropCached invalidates one cached block, if the cache tier is enabled —
// called wherever the node loses a replica, so "cached implies held" stays
// an invariant.
func (d *DataNode) dropCached(id BlockID) {
	if d.cache != nil {
		d.cache.Invalidate(id)
	}
}

// Holds reports whether the DataNode stores the block.
func (d *DataNode) Holds(b BlockID) bool {
	_, ok := d.blocks[b]
	return ok
}

// BlockCount returns the number of block replicas stored on the DataNode.
func (d *DataNode) BlockCount() int { return len(d.blocks) }

// Alive reports whether the DataNode is in service (up and not suspended).
func (d *DataNode) Alive() bool { return d.alive && !d.suspended }

// Suspended reports whether the DataNode is flaking (up but not serving).
func (d *DataNode) Suspended() bool { return d.suspended }

// NameNode is the metadata service: file → blocks and block → replicas.
type NameNode struct {
	files     map[string]*File
	blocks    map[BlockID]*Block
	locations map[BlockID][]int
	pending   map[BlockID][]int // re-replication targets in flight, not yet readable
	stale     map[BlockID][]int // frozen Locations answers; nil when metadata is fresh
	datanodes []*DataNode
	racks     []int // node → rack
	policy    PlacementPolicy
	rng       *xrand.Rand
	nextBlock BlockID

	BlockSize   int64
	Replication int
}

// Option configures a NameNode.
type Option func(*NameNode)

// WithBlockSize overrides the default 128 MB block size.
func WithBlockSize(s int64) Option {
	return func(nn *NameNode) { nn.BlockSize = s }
}

// WithReplication overrides the default replication factor of 3.
func WithReplication(r int) Option {
	return func(nn *NameNode) { nn.Replication = r }
}

// WithPolicy sets the block placement policy.
func WithPolicy(p PlacementPolicy) Option {
	return func(nn *NameNode) { nn.policy = p }
}

// WithRacks assigns nodes to racks round-robin, rackSize nodes per rack.
func WithRacks(rackSize int) Option {
	return func(nn *NameNode) {
		if rackSize <= 0 {
			rackSize = len(nn.datanodes)
		}
		for i := range nn.racks {
			nn.racks[i] = i / rackSize
		}
	}
}

// WithBlockCache attaches an in-memory block cache of the given byte
// capacity to every DataNode. An empty policy defaults to CacheLRU. With no
// cache attached (the default) every cache query answers cold and the read
// path is byte-identical to the cacheless simulation.
func WithBlockCache(bytes int64, policy CachePolicy) Option {
	return func(nn *NameNode) {
		for _, d := range nn.datanodes {
			d.cache = NewBlockCache(bytes, policy)
		}
	}
}

// WithCapacity sets a per-node storage capacity in bytes.
func WithCapacity(bytes int64) Option {
	return func(nn *NameNode) {
		for _, d := range nn.datanodes {
			d.Capacity = bytes
		}
	}
}

// NewNameNode creates a NameNode managing n DataNodes.
func NewNameNode(n int, rng *xrand.Rand, opts ...Option) *NameNode {
	if n <= 0 {
		panic("hdfs: NewNameNode with n <= 0")
	}
	nn := &NameNode{
		files:       make(map[string]*File),
		blocks:      make(map[BlockID]*Block),
		locations:   make(map[BlockID][]int),
		pending:     make(map[BlockID][]int),
		racks:       make([]int, n),
		rng:         rng.Fork("hdfs"),
		BlockSize:   DefaultBlockSize,
		Replication: DefaultReplication,
	}
	for i := 0; i < n; i++ {
		nn.datanodes = append(nn.datanodes, &DataNode{
			Node:   i,
			blocks: map[BlockID]struct{}{},
			alive:  true,
		})
	}
	nn.policy = RandomPolicy{}
	for _, o := range opts {
		o(nn)
	}
	return nn
}

// Nodes returns the number of DataNodes.
func (nn *NameNode) Nodes() int { return len(nn.datanodes) }

// Rack returns the rack id of a node.
func (nn *NameNode) Rack(node int) int { return nn.racks[node] }

// DataNode returns the DataNode state for a node.
func (nn *NameNode) DataNode(node int) *DataNode { return nn.datanodes[node] }

// CacheEnabled reports whether the block-cache tier is attached.
func (nn *NameNode) CacheEnabled() bool { return nn.datanodes[0].cache != nil }

// Cache returns a node's block cache, or nil when the tier is disabled.
func (nn *NameNode) Cache(node int) *BlockCache { return nn.datanodes[node].cache }

// CacheContains reports whether a node's cache holds the block warm, without
// touching recency or hit/miss accounting. Always false when the tier is
// disabled — warm-replica preferences degrade to their fallbacks.
func (nn *NameNode) CacheContains(node int, id BlockID) bool {
	c := nn.datanodes[node].cache
	return c != nil && c.Contains(id)
}

// ErrExists is returned by Create when the file name is taken.
var ErrExists = errors.New("hdfs: file exists")

// ErrNotFound is returned when a file or block does not exist.
var ErrNotFound = errors.New("hdfs: not found")

// ErrNoSpace is returned when placement cannot find enough capacity.
var ErrNoSpace = errors.New("hdfs: insufficient datanode capacity")

// Create writes a new file of the given size, splitting it into blocks and
// placing replicas via the placement policy.
func (nn *NameNode) Create(name string, size int64) (*File, error) {
	if _, ok := nn.files[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, name)
	}
	if size <= 0 {
		return nil, fmt.Errorf("hdfs: invalid file size %d", size)
	}
	f := &File{Name: name, Size: size}
	remaining := size
	idx := 0
	for remaining > 0 {
		bs := nn.BlockSize
		if remaining < bs {
			bs = remaining
		}
		b := &Block{ID: nn.nextBlock, File: name, Index: idx, Size: bs}
		nn.nextBlock++
		nodes, err := nn.policy.Place(nn, b, nn.Replication)
		if err != nil {
			return nil, err
		}
		for _, node := range nodes {
			nn.addReplica(b, node)
		}
		nn.blocks[b.ID] = b
		f.Blocks = append(f.Blocks, b)
		remaining -= bs
		idx++
	}
	nn.files[name] = f
	return f, nil
}

func (nn *NameNode) addReplica(b *Block, node int) {
	d := nn.datanodes[node]
	if d.Holds(b.ID) {
		return
	}
	d.blocks[b.ID] = struct{}{}
	d.Used += b.Size
	nn.locations[b.ID] = append(nn.locations[b.ID], node)
}

// Open returns the file metadata.
func (nn *NameNode) Open(name string) (*File, error) {
	f, ok := nn.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return f, nil
}

// Exists reports whether a file exists.
func (nn *NameNode) Exists(name string) bool {
	_, ok := nn.files[name]
	return ok
}

// Block returns the metadata for a block id.
func (nn *NameNode) Block(id BlockID) (*Block, error) {
	b, ok := nn.blocks[id]
	if !ok {
		return nil, fmt.Errorf("%w: block %d", ErrNotFound, id)
	}
	return b, nil
}

// Locations returns the nodes holding live replicas of a block. This is the
// query Custody issues before allocation (§IV-C). The returned slice is a
// copy; callers may mutate it. During a stale-metadata window (BeginStale)
// the answer is frozen at the snapshot taken when the window opened, so it
// may name nodes that have since died or flaked.
func (nn *NameNode) Locations(id BlockID) []int {
	if nn.stale != nil {
		if locs, ok := nn.stale[id]; ok {
			return append([]int(nil), locs...)
		}
		// Blocks created after the snapshot fall through to fresh answers.
	}
	return nn.liveLocations(id)
}

// liveLocations is the always-fresh truth, immune to stale windows.
func (nn *NameNode) liveLocations(id BlockID) []int {
	locs := nn.locations[id]
	out := make([]int, 0, len(locs))
	for _, node := range locs {
		if d := nn.datanodes[node]; d.alive && !d.suspended {
			out = append(out, node)
		}
	}
	return out
}

// BeginStale freezes the metadata clients see: subsequent Locations calls
// answer from a snapshot taken now, lagging reality until EndStale. Models a
// NameNode that has not yet processed heartbeat losses/recoveries. Returns
// false if a stale window is already open.
func (nn *NameNode) BeginStale() bool {
	if nn.stale != nil {
		return false
	}
	nn.stale = make(map[BlockID][]int, len(nn.blocks))
	for id := range nn.blocks {
		nn.stale[id] = nn.liveLocations(id)
	}
	return true
}

// EndStale restores fresh metadata. Returns false if no window was open.
func (nn *NameNode) EndStale() bool {
	if nn.stale == nil {
		return false
	}
	nn.stale = nil
	return true
}

// Stale reports whether a stale-metadata window is open.
func (nn *NameNode) Stale() bool { return nn.stale != nil }

// Suspend marks a DataNode flaky: it stops serving reads and drops out of
// fresh Locations answers, but keeps its on-disk replicas. Returns false if
// the node is already suspended or dead (no-op).
func (nn *NameNode) Suspend(node int) bool {
	d := nn.datanodes[node]
	if d.suspended || !d.alive {
		return false
	}
	d.suspended = true
	return true
}

// Resume clears a Suspend. Returns false if the node was not suspended.
func (nn *NameNode) Resume(node int) bool {
	d := nn.datanodes[node]
	if !d.suspended {
		return false
	}
	d.suspended = false
	return true
}

// RecordAccess notes a read of a block, feeding popularity statistics.
func (nn *NameNode) RecordAccess(id BlockID) {
	if b, ok := nn.blocks[id]; ok {
		nn.files[b.File].Accesses++
	}
}

// Delete removes a file and all of its replicas.
func (nn *NameNode) Delete(name string) error {
	f, ok := nn.files[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	for _, b := range f.Blocks {
		for _, node := range nn.locations[b.ID] {
			d := nn.datanodes[node]
			if d.Holds(b.ID) {
				delete(d.blocks, b.ID)
				d.Used -= b.Size
			}
			d.dropCached(b.ID)
		}
		delete(nn.locations, b.ID)
		delete(nn.blocks, b.ID)
	}
	delete(nn.files, name)
	return nil
}

// ReplicaCopy records one re-replication transfer: the block is copied from
// a surviving replica holder (From) to a new node (To).
type ReplicaCopy struct {
	Block BlockID
	Size  int64
	From  int
	To    int
}

// Decommission marks a node dead and plans re-replication of its blocks so
// every block regains its target replication. The planned copies are
// returned as *pending* replicas: the new replica only becomes readable
// when the caller finishes the transfer and calls CommitReplica (or gives
// up with AbortReplica). Callers charge the transfer to the network and
// commit on completion — fire-and-forget registration would let tasks read
// replicas whose bytes have not arrived yet.
func (nn *NameNode) Decommission(node int) ([]ReplicaCopy, error) {
	d := nn.datanodes[node]
	if !d.alive {
		return nil, fmt.Errorf("hdfs: node %d already decommissioned", node)
	}
	d.alive = false
	// Coherence rule: a dead node's in-memory cache is gone. Recommission
	// brings the node back cold; a Suspend/Resume flake (process up) keeps
	// its cache warm.
	if d.cache != nil {
		d.cache.Clear()
	}
	var copies []ReplicaCopy
	ids := make([]BlockID, 0, len(d.blocks))
	for id := range d.blocks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		b := nn.blocks[id]
		live := nn.liveLocations(id)
		if len(live)+len(nn.pending[id]) >= nn.Replication || len(live) == 0 {
			continue // already replicated (or being re-replicated) enough, or no surviving source
		}
		exclude := map[int]bool{}
		for _, n := range nn.locations[id] {
			exclude[n] = true
		}
		for _, n := range nn.pending[id] {
			exclude[n] = true
		}
		target, err := nn.pickNode(b.Size, exclude)
		if err != nil {
			continue // cluster too full or too small; block stays under-replicated
		}
		nn.pending[id] = append(nn.pending[id], target)
		copies = append(copies, ReplicaCopy{Block: id, Size: b.Size, From: live[0], To: target})
	}
	return copies, nil
}

// CommitReplica registers a pending re-replication target as a readable
// replica: the transfer planned by Decommission has delivered its bytes.
func (nn *NameNode) CommitReplica(id BlockID, node int) error {
	if !nn.dropPending(id, node) {
		return fmt.Errorf("hdfs: no pending replica of block %d on node %d", id, node)
	}
	if !nn.datanodes[node].alive {
		return fmt.Errorf("hdfs: pending replica target node %d died before commit", node)
	}
	nn.addReplica(nn.blocks[id], node)
	return nil
}

// AbortReplica cancels a pending re-replication target (the transfer was
// abandoned, e.g. its source or destination died). No-op if not pending.
func (nn *NameNode) AbortReplica(id BlockID, node int) {
	nn.dropPending(id, node)
}

func (nn *NameNode) dropPending(id BlockID, node int) bool {
	for i, n := range nn.pending[id] {
		if n == node {
			nn.pending[id] = append(nn.pending[id][:i], nn.pending[id][i+1:]...)
			if len(nn.pending[id]) == 0 {
				delete(nn.pending, id)
			}
			return true
		}
	}
	return false
}

// PendingReplicas returns the in-flight re-replication targets for a block
// (copy; callers may mutate).
func (nn *NameNode) PendingReplicas(id BlockID) []int {
	return append([]int(nil), nn.pending[id]...)
}

// PendingBlockIDs returns the blocks with in-flight re-replications, sorted.
func (nn *NameNode) PendingBlockIDs() []BlockID {
	out := make([]BlockID, 0, len(nn.pending))
	for id := range nn.pending {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RegisteredReplicas returns the number of registered replicas of a block,
// counting those on dead or suspended nodes (data not lost, just
// unreachable) but not pending transfers.
func (nn *NameNode) RegisteredReplicas(id BlockID) int { return len(nn.locations[id]) }

// Recommission brings a node back into service. Its old replicas become
// visible again.
func (nn *NameNode) Recommission(node int) {
	nn.datanodes[node].alive = true
}

// pickNode selects a live node with free capacity, uniformly at random,
// excluding the given set.
func (nn *NameNode) pickNode(size int64, exclude map[int]bool) (int, error) {
	var candidates []int
	for _, d := range nn.datanodes {
		if !d.alive || d.suspended || exclude[d.Node] {
			continue
		}
		if d.Capacity > 0 && d.Used+size > d.Capacity {
			continue
		}
		candidates = append(candidates, d.Node)
	}
	if len(candidates) == 0 {
		return 0, ErrNoSpace
	}
	return candidates[nn.rng.Intn(len(candidates))], nil
}

// ReplicaCount returns the number of live replicas of a block (fresh truth,
// immune to stale-metadata windows).
func (nn *NameNode) ReplicaCount(id BlockID) int { return len(nn.liveLocations(id)) }

// Files returns the names of all files, sorted.
func (nn *NameNode) Files() []string {
	out := make([]string, 0, len(nn.files))
	for name := range nn.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// TotalBlocks returns the number of distinct blocks in the namespace.
func (nn *NameNode) TotalBlocks() int { return len(nn.blocks) }

// BalanceReport summarizes how evenly replicas are spread over DataNodes.
type BalanceReport struct {
	MinReplicas, MaxReplicas int
	MeanReplicas             float64
}

// Balance computes a replica-distribution report over live nodes.
func (nn *NameNode) Balance() BalanceReport {
	r := BalanceReport{MinReplicas: int(^uint(0) >> 1)}
	total, n := 0, 0
	for _, d := range nn.datanodes {
		if !d.alive {
			continue
		}
		c := d.BlockCount()
		if c < r.MinReplicas {
			r.MinReplicas = c
		}
		if c > r.MaxReplicas {
			r.MaxReplicas = c
		}
		total += c
		n++
	}
	if n > 0 {
		r.MeanReplicas = float64(total) / float64(n)
	} else {
		r.MinReplicas = 0
	}
	return r
}
