package chaos

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/app"
	"repro/internal/driver"
	"repro/internal/manager"
	"repro/internal/netsim"
	"repro/internal/race"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// chaosDriver builds a small resilient cluster with a two-app Sort workload
// submitted, ready to run.
func chaosDriver(t *testing.T, mgr manager.Manager, seed uint64, tr trace.Tracer) (*driver.Driver, int) {
	t.Helper()
	jobsPerApp := 3
	if race.Enabled {
		jobsPerApp = 2 // the detector costs ~10×; keep the smoke inside timeouts
	}
	cfg := driver.DefaultConfig()
	cfg.Seed = seed
	cfg.Nodes = 8
	cfg.RackSize = 4
	cfg.BlockSize = 64 << 20
	cfg.Net = netsim.Config{UplinkBps: 250e6, DownlinkBps: 5e9, DiskBps: 400e6}
	cfg.Manager = mgr
	cfg.ExecutorStartupSec = 0
	cfg.ComputeNoise = 0
	cfg.EnableResilience()
	cfg.Tracer = tr
	d := driver.New(cfg)
	spec := workload.Spec{Kind: workload.Sort, Apps: 2, JobsPerApp: jobsPerApp, MeanInterarrival: 3, DatasetFiles: 2}
	sched := workload.Generate(spec, xrand.New(seed))
	for _, fs := range sched.Files {
		if _, err := d.CreateInput(fs.Name, fs.Size); err != nil {
			t.Fatal(err)
		}
	}
	apps := []*app.Application{d.RegisterApp("a0"), d.RegisterApp("a1")}
	d.Start()
	for i, sub := range sched.Subs {
		f, err := d.NameNode().Open(sched.Files[sub.FileIdx].Name)
		if err != nil {
			t.Fatal(err)
		}
		d.SubmitJobAt(sub.At, apps[sub.App], workload.BuildJob(sched.Spec.Kind, i+1, f))
	}
	return d, len(sched.Subs)
}

// runChaos plans all seven fault kinds, injects them with auditing, runs the
// simulation to completion, and returns the recorded trace and report.
func runChaos(t *testing.T, mgr manager.Manager, seed uint64) (*trace.Recorder, *Report, int, int) {
	t.Helper()
	rec := trace.NewRecorder()
	d, jobs := chaosDriver(t, mgr, seed, rec)
	rng := xrand.New(seed).Fork("chaos-plan")
	plan := Plan(DefaultProfile(), 40, 8, 16, rng)
	rep := Inject(d, plan, true)
	col := d.Run()
	if err := d.Audit(); err != nil {
		t.Errorf("final audit: %v", err)
	}
	return rec, rep, jobs, len(col.Jobs)
}

// TestChaosSmoke is the ci.sh chaos gate: every fault kind fires against a
// live workload with the invariant auditor on, no invariant breaks, and
// every job still completes.
func TestChaosSmoke(t *testing.T) {
	for _, mk := range []struct {
		name string
		mgr  manager.Manager
	}{
		{"custody", manager.NewCustody()},
		{"standalone", manager.NewStandalone(xrand.New(7), true)},
	} {
		t.Run(mk.name, func(t *testing.T) {
			_, rep, submitted, done := runChaos(t, mk.mgr, 11)
			if rep.Total != DefaultProfile().total() {
				t.Fatalf("plan has %d faults, want %d", rep.Total, DefaultProfile().total())
			}
			if rep.Applied != rep.Total {
				t.Errorf("only %d/%d faults applied (seed must exercise every kind)", rep.Applied, rep.Total)
			}
			if !rep.Ok() {
				t.Errorf("audit violations:\n%v", rep.Violations)
			}
			if rep.AuditRuns == 0 {
				t.Error("auditor never ran")
			}
			if done != submitted {
				t.Errorf("%d of %d jobs completed under chaos", done, submitted)
			}
		})
	}
}

// TestChaosDeterministic: two same-seed chaos runs must be byte-identical —
// same trace stream, same report.
func TestChaosDeterministic(t *testing.T) {
	rec1, rep1, _, done1 := runChaos(t, manager.NewCustody(), 11)
	rec2, rep2, _, done2 := runChaos(t, manager.NewCustody(), 11)
	var b1, b2 bytes.Buffer
	if err := rec1.WriteJSONL(&b1); err != nil {
		t.Fatal(err)
	}
	if err := rec2.WriteJSONL(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Errorf("same-seed chaos traces differ (%d vs %d bytes)", b1.Len(), b2.Len())
	}
	if rep1.Applied != rep2.Applied || rep1.Noops != rep2.Noops || done1 != done2 {
		t.Errorf("same-seed reports differ: %+v vs %+v", rep1, rep2)
	}
}

// TestPlanDeterministic: identical profile + rng stream → identical schedule,
// sorted by application time.
func TestPlanDeterministic(t *testing.T) {
	p := DefaultProfile().Scale(3)
	a := Plan(p, 100, 20, 40, xrand.New(5).Fork("chaos-plan"))
	b := Plan(p, 100, 20, 40, xrand.New(5).Fork("chaos-plan"))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same-seed plans differ")
	}
	if len(a) != p.total() {
		t.Fatalf("plan has %d faults, want %d", len(a), p.total())
	}
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("plan not sorted at %d: %v > %v", i, a[i-1].At, a[i].At)
		}
	}
	c := Plan(p, 100, 20, 40, xrand.New(6).Fork("chaos-plan"))
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans")
	}
}

// TestProfileScale checks count scaling and the zero profile.
func TestProfileScale(t *testing.T) {
	p := DefaultProfile()
	if got := p.Scale(0).total(); got != 0 {
		t.Errorf("Scale(0) has %d faults, want 0", got)
	}
	if got := p.Scale(2).total(); got != 2*p.total() {
		t.Errorf("Scale(2) has %d faults, want %d", got, 2*p.total())
	}
	if got := len(Plan(p.Scale(0), 100, 8, 16, xrand.New(1))); got != 0 {
		t.Errorf("zero profile planned %d faults", got)
	}
}

// TestPartitionGroups checks group shape bounds.
func TestPartitionGroups(t *testing.T) {
	rng := xrand.New(3)
	for _, n := range []int{2, 5, 40} {
		g := partitionGroups(n, 0.25, rng)
		if len(g) != n {
			t.Fatalf("groups len %d, want %d", len(g), n)
		}
		ones := 0
		for _, v := range g {
			ones += v
		}
		if ones < 1 || ones > n-1 {
			t.Errorf("partition of %d nodes isolated %d", n, ones)
		}
	}
}
