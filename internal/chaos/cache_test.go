package chaos

import (
	"testing"

	"repro/internal/app"
	"repro/internal/driver"
	"repro/internal/hdfs"
	"repro/internal/manager"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/race"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// cachedChaosDriver is chaosDriver with the block-cache tier enabled: a
// per-node cache, the cache-aware replica selector, and a capacity small
// enough that eviction pressure is real.
func cachedChaosDriver(t *testing.T, seed uint64, tr trace.Tracer) (*driver.Driver, int) {
	t.Helper()
	jobsPerApp := 3
	if race.Enabled {
		jobsPerApp = 2
	}
	cfg := driver.DefaultConfig()
	cfg.Seed = seed
	cfg.Nodes = 8
	cfg.RackSize = 4
	cfg.BlockSize = 64 << 20
	cfg.Net = netsim.Config{UplinkBps: 250e6, DownlinkBps: 5e9, DiskBps: 400e6}
	cfg.Manager = manager.NewCustody()
	cfg.ExecutorStartupSec = 0
	cfg.ComputeNoise = 0
	cfg.EnableResilience()
	cfg.EnableCache(128<<20, hdfs.Cache2Q) // two 64MB blocks per node
	cfg.ReplicaSelection = &hdfs.CacheAwareSelector{}
	cfg.Tracer = tr
	d := driver.New(cfg)
	spec := workload.Spec{Kind: workload.Sort, Apps: 2, JobsPerApp: jobsPerApp, MeanInterarrival: 3, DatasetFiles: 2}
	sched := workload.Generate(spec, xrand.New(seed))
	for _, fs := range sched.Files {
		if _, err := d.CreateInput(fs.Name, fs.Size); err != nil {
			t.Fatal(err)
		}
	}
	apps := []*app.Application{d.RegisterApp("a0"), d.RegisterApp("a1")}
	d.Start()
	for i, sub := range sched.Subs {
		f, err := d.NameNode().Open(sched.Files[sub.FileIdx].Name)
		if err != nil {
			t.Fatal(err)
		}
		d.SubmitJobAt(sub.At, apps[sub.App], workload.BuildJob(sched.Spec.Kind, i+1, f))
	}
	return d, len(sched.Subs)
}

func runCachedChaos(t *testing.T, seed uint64) (*Report, *metrics.Collector, int, int) {
	t.Helper()
	d, jobs := cachedChaosDriver(t, seed, nil)
	rng := xrand.New(seed).Fork("chaos-plan")
	plan := Plan(DefaultProfile(), 40, 8, 16, rng)
	rep := Inject(d, plan, true)
	col := d.Run()
	if err := d.Audit(); err != nil {
		t.Errorf("final audit: %v", err)
	}
	return rep, col, jobs, len(col.Jobs)
}

// Property: with the cache tier on, every fault application and reversal
// leaves the cache invariants intact — bytes within capacity, every cached
// block held by its node, failed nodes cold — because Inject audits after
// each fault and Driver.Audit checks the cache section.
func TestChaosCacheInvariants(t *testing.T) {
	rep, col, submitted, done := runCachedChaos(t, 11)
	if !rep.Ok() {
		t.Errorf("audit violations with cache enabled:\n%v", rep.Violations)
	}
	if rep.AuditRuns == 0 {
		t.Error("auditor never ran")
	}
	if done != submitted {
		t.Errorf("%d of %d jobs completed under chaos with cache on", done, submitted)
	}
	// The run must actually exercise the cache: lookups happen, and the
	// node-flap windows must not be able to fake that by zeroing counters.
	if col.CacheHits+col.CacheMisses == 0 {
		t.Error("cache never consulted during a cached chaos run")
	}
}

// Property: the cache tier keeps chaos runs deterministic — same seed, same
// hit/miss/eviction counters, same completions.
func TestChaosCacheDeterministic(t *testing.T) {
	_, col1, _, done1 := runCachedChaos(t, 11)
	_, col2, _, done2 := runCachedChaos(t, 11)
	if done1 != done2 {
		t.Fatalf("completions differ across same-seed cached runs: %d vs %d", done1, done2)
	}
	if col1.CacheHits != col2.CacheHits || col1.CacheMisses != col2.CacheMisses ||
		col1.CacheEvictions != col2.CacheEvictions {
		t.Fatalf("cache counters differ across same-seed runs: %d/%d/%d vs %d/%d/%d",
			col1.CacheHits, col1.CacheMisses, col1.CacheEvictions,
			col2.CacheHits, col2.CacheMisses, col2.CacheEvictions)
	}
	for node, c1 := range col1.CacheByNode {
		c2 := col2.CacheByNode[node]
		if c2 == nil || *c1 != *c2 {
			t.Fatalf("per-node cache counters differ at node %d: %+v vs %+v", node, c1, c2)
		}
	}
}
