package chaos

import (
	"fmt"

	"repro/internal/driver"
)

// Report summarizes an injected plan after the run.
type Report struct {
	Total   int // faults in the plan
	Applied int // faults that actually changed state
	Noops   int // faults absorbed by idempotency guards (already-failed targets &c.)

	// AuditRuns counts invariant audits executed; Violations holds every
	// audit error observed, in event order. A clean chaos run has
	// len(Violations) == 0.
	AuditRuns  int
	Violations []string
}

// Ok reports whether every audit passed.
func (r *Report) Ok() bool { return len(r.Violations) == 0 }

// Inject schedules the plan's faults onto the driver's event engine. Each
// fault is applied at f.At; if the application took effect and the fault has
// a positive Duration, the matching revert is scheduled Duration seconds
// later. When audit is true the driver's invariant auditor runs after every
// application and reversal, and violations accumulate in the report.
//
// Call Inject after driver.Start and before driver.Run; the report is
// complete once Run returns. DaemonCrash faults are skipped (and excluded
// from Total): they target the service layer, which consumes them via
// Split rather than through the event engine.
func Inject(d *driver.Driver, faults []Fault, audit bool) *Report {
	faults, _ = Split(faults)
	r := &Report{Total: len(faults)}
	for _, f := range faults {
		f := f
		d.Engine().At(f.At, func() {
			applied := Apply(d, f)
			if applied {
				r.Applied++
			} else {
				r.Noops++
			}
			if audit {
				r.audit(d, f, "apply")
			}
			if applied && f.Duration > 0 {
				d.Engine().Schedule(f.Duration, func() {
					Revert(d, f)
					if audit {
						r.audit(d, f, "revert")
					}
				})
			}
		})
	}
	return r
}

// audit runs the driver's invariant checks and records any violation.
func (r *Report) audit(d *driver.Driver, f Fault, phase string) {
	r.AuditRuns++
	if err := d.Audit(); err != nil {
		r.Violations = append(r.Violations,
			fmt.Sprintf("after %s of %s(node=%d exec=%d): %v", phase, f.Kind, f.Node, f.Exec, err))
	}
}

// Apply performs the fault's driver-level state change; false means the
// idempotency guard absorbed it (e.g. the node was already down). Exported
// so the service layer can apply logged faults at replay time, outside the
// event engine. DaemonCrash is not a driver-level fault and returns false.
func Apply(d *driver.Driver, f Fault) bool {
	if f.Kind == DaemonCrash {
		return false
	}
	switch f.Kind {
	case Partition:
		return d.InjectPartition(f.Groups)
	case LinkDegrade:
		return d.InjectLinkDegrade(f.Node, f.Factor)
	case ExecutorCrash:
		return d.InjectExecutorFail(f.Exec)
	case NodeFlap:
		return d.InjectNodeFail(f.Node)
	case SlowDisk:
		return d.InjectSlowDisk(f.Node, f.Factor)
	case FlakyDataNode:
		return d.InjectDataNodeFlake(f.Node)
	case StaleMetadata:
		return d.InjectStaleMetadata()
	}
	panic(fmt.Sprintf("chaos: unknown fault kind %q", f.Kind))
}

// Revert undoes a previously applied fault. DaemonCrash returns false for
// the same reason as in Apply.
func Revert(d *driver.Driver, f Fault) bool {
	if f.Kind == DaemonCrash {
		return false
	}
	switch f.Kind {
	case Partition:
		return d.HealPartition()
	case LinkDegrade:
		return d.RestoreLinks(f.Node)
	case ExecutorCrash:
		return d.InjectExecutorRecover(f.Exec)
	case NodeFlap:
		return d.InjectNodeRecover(f.Node)
	case SlowDisk:
		return d.RestoreDisk(f.Node)
	case FlakyDataNode:
		return d.RestoreDataNode(f.Node)
	case StaleMetadata:
		return d.RestoreMetadata()
	}
	panic(fmt.Sprintf("chaos: unknown fault kind %q", f.Kind))
}
