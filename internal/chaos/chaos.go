// Package chaos generates and injects deterministic fault schedules into a
// driver run. A Plan is computed up front from a Profile and an xrand stream —
// no wall clock, no global randomness — so the same seed always produces the
// same faults at the same simulated times, and a chaos run replays
// byte-identically. Inject applies the plan through the driver's Inject*
// operations and optionally runs the cross-layer invariant auditor after every
// fault application and reversal.
package chaos

import (
	"sort"

	"repro/internal/xrand"
)

// Kind names a fault class.
type Kind string

// The fault taxonomy. Each kind attacks a different layer: the network
// fabric (partition, link-degrade, slow-disk), the cluster (executor-crash,
// node-flap), and HDFS (flaky-datanode suspends heartbeats, stale-metadata
// freezes the NameNode's location answers).
const (
	Partition     Kind = "partition"
	LinkDegrade   Kind = "link-degrade"
	ExecutorCrash Kind = "executor-crash"
	NodeFlap      Kind = "node-flap"
	SlowDisk      Kind = "slow-disk"
	FlakyDataNode Kind = "flaky-datanode"
	StaleMetadata Kind = "stale-metadata"
	// DaemonCrash kills and restarts the allocation service itself
	// (internal/custodyd) mid-round. It targets the control plane rather
	// than the simulated cluster, so Apply/Revert treat it as a no-op: the
	// service harness consumes it via Split and performs the kill/replay
	// cycle. It is last in planning order so profiles without daemon
	// crashes draw the same rng stream as before the kind existed.
	DaemonCrash Kind = "daemon-crash"
)

// Kinds returns every fault kind in canonical planning order.
func Kinds() []Kind {
	return []Kind{Partition, LinkDegrade, ExecutorCrash, NodeFlap, SlowDisk, FlakyDataNode, StaleMetadata, DaemonCrash}
}

// kindRank gives the canonical order used to break sort ties.
func kindRank(k Kind) int {
	for i, kk := range Kinds() {
		if kk == k {
			return i
		}
	}
	return len(Kinds())
}

// Fault is one scheduled fault event. Every fault is a window: it is applied
// at At and reverted Duration seconds later (all the driver's fault
// operations have a matching restore), so a finite plan always lets the
// workload finish.
type Fault struct {
	Kind     Kind
	At       float64 // simulated application time
	Duration float64 // window length; the revert fires at At+Duration
	Node     int     // target node (link/disk/flake/flap faults); -1 otherwise
	Exec     int     // target executor (executor-crash); -1 otherwise
	Factor   float64 // capacity scale for link-degrade / slow-disk
	Groups   []int   // per-node group assignment (partition faults)
}

// Profile sets how many faults of each kind a plan contains and their shape.
type Profile struct {
	Partitions      int
	LinkDegrades    int
	ExecutorCrashes int
	NodeFlaps       int
	SlowDisks       int
	FlakyDataNodes  int
	StaleWindows    int
	// DaemonCrashes are kill/restart cycles of the allocation service
	// itself (see DaemonCrash). Zero in DefaultProfile: they only make
	// sense against a service harness, not a plain driver run.
	DaemonCrashes int

	// MeanDurationSec is the average fault window; actual windows are drawn
	// uniformly from [0.5, 1.5] × mean.
	MeanDurationSec float64
	// DegradeFactor scales a degraded node's links (0 < f < 1).
	DegradeFactor float64
	// SlowDiskFactor scales a straggler's disk (0 < f < 1).
	SlowDiskFactor float64
	// PartitionFraction is the share of nodes isolated by a partition.
	PartitionFraction float64
}

// DefaultProfile is a moderate mixed-fault profile: one of everything.
func DefaultProfile() Profile {
	return Profile{
		Partitions:        1,
		LinkDegrades:      1,
		ExecutorCrashes:   1,
		NodeFlaps:         1,
		SlowDisks:         1,
		FlakyDataNodes:    1,
		StaleWindows:      1,
		MeanDurationSec:   10,
		DegradeFactor:     0.1,
		SlowDiskFactor:    0.2,
		PartitionFraction: 0.25,
	}
}

// Scale multiplies every fault count by f (rounding half up), keeping the
// shape parameters. Scale(0) yields a fault-free profile.
func (p Profile) Scale(f float64) Profile {
	scale := func(n int) int { return int(float64(n)*f + 0.5) }
	p.Partitions = scale(p.Partitions)
	p.LinkDegrades = scale(p.LinkDegrades)
	p.ExecutorCrashes = scale(p.ExecutorCrashes)
	p.NodeFlaps = scale(p.NodeFlaps)
	p.SlowDisks = scale(p.SlowDisks)
	p.FlakyDataNodes = scale(p.FlakyDataNodes)
	p.StaleWindows = scale(p.StaleWindows)
	p.DaemonCrashes = scale(p.DaemonCrashes)
	return p
}

// total is the number of faults a plan from this profile contains.
func (p Profile) total() int {
	return p.Partitions + p.LinkDegrades + p.ExecutorCrashes + p.NodeFlaps +
		p.SlowDisks + p.FlakyDataNodes + p.StaleWindows + p.DaemonCrashes
}

// Plan draws a deterministic fault schedule from the profile. Application
// times fall in [0.05, 0.6] × horizon so windows open while the workload is
// active and close before it drains. Kinds are drawn in canonical order and
// the result is sorted by (At, kind, Node, Exec), so the schedule depends
// only on the profile, the shape arguments, and the rng stream.
func Plan(p Profile, horizon float64, nodes, execs int, rng *xrand.Rand) []Fault {
	if p.MeanDurationSec <= 0 {
		p.MeanDurationSec = 10
	}
	if p.DegradeFactor <= 0 || p.DegradeFactor >= 1 {
		p.DegradeFactor = 0.1
	}
	if p.SlowDiskFactor <= 0 || p.SlowDiskFactor >= 1 {
		p.SlowDiskFactor = 0.2
	}
	if p.PartitionFraction <= 0 || p.PartitionFraction >= 1 {
		p.PartitionFraction = 0.25
	}
	faults := make([]Fault, 0, p.total())
	at := func() float64 { return rng.Range(0.05*horizon, 0.6*horizon) }
	dur := func() float64 { return p.MeanDurationSec * rng.Range(0.5, 1.5) }
	count := func(k Kind) int {
		switch k {
		case Partition:
			return p.Partitions
		case LinkDegrade:
			return p.LinkDegrades
		case ExecutorCrash:
			return p.ExecutorCrashes
		case NodeFlap:
			return p.NodeFlaps
		case SlowDisk:
			return p.SlowDisks
		case FlakyDataNode:
			return p.FlakyDataNodes
		case StaleMetadata:
			return p.StaleWindows
		case DaemonCrash:
			return p.DaemonCrashes
		}
		return 0
	}
	for _, k := range Kinds() {
		for i := 0; i < count(k); i++ {
			f := Fault{Kind: k, At: at(), Duration: dur(), Node: -1, Exec: -1}
			switch k {
			case Partition:
				f.Groups = partitionGroups(nodes, p.PartitionFraction, rng)
			case LinkDegrade:
				f.Node = rng.Intn(nodes)
				f.Factor = p.DegradeFactor
			case ExecutorCrash:
				f.Exec = rng.Intn(execs)
			case NodeFlap:
				f.Node = rng.Intn(nodes)
			case SlowDisk:
				f.Node = rng.Intn(nodes)
				f.Factor = p.SlowDiskFactor
			case FlakyDataNode:
				f.Node = rng.Intn(nodes)
			case StaleMetadata:
				// No target: the whole NameNode goes stale.
			case DaemonCrash:
				// No target and no window: the kill/restart cycle is
				// instantaneous from the plan's perspective.
				f.Duration = 0
			}
			faults = append(faults, f)
		}
	}
	sort.Slice(faults, func(i, j int) bool {
		a, b := faults[i], faults[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if ra, rb := kindRank(a.Kind), kindRank(b.Kind); ra != rb {
			return ra < rb
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Exec < b.Exec
	})
	return faults
}

// Split partitions a plan into the driver-level faults (everything Inject
// and Apply understand) and the daemon-crash events, preserving schedule
// order within each. A service harness injects the first set through the
// driver and consumes the second itself.
func Split(faults []Fault) (driverFaults, daemonCrashes []Fault) {
	for _, f := range faults {
		if f.Kind == DaemonCrash {
			daemonCrashes = append(daemonCrashes, f)
		} else {
			driverFaults = append(driverFaults, f)
		}
	}
	return driverFaults, daemonCrashes
}

// partitionGroups cuts a random subset of nodes (at least one, at most
// nodes-1) into group 1, the rest staying in group 0.
func partitionGroups(nodes int, fraction float64, rng *xrand.Rand) []int {
	cut := int(float64(nodes) * fraction)
	if cut < 1 {
		cut = 1
	}
	if cut > nodes-1 {
		cut = nodes - 1
	}
	groups := make([]int, nodes)
	for _, n := range rng.Perm(nodes)[:cut] {
		groups[n] = 1
	}
	return groups
}
