package event

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(3, func() { got = append(got, 3) })
	e.Schedule(1, func() { got = append(got, 1) })
	e.Schedule(2, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	if len(got) != 100 {
		t.Fatalf("executed %d events, want 100", len(got))
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events executed out of order at %d: %v", i, got[i])
		}
	}
}

func TestClockAdvances(t *testing.T) {
	e := NewEngine()
	e.Schedule(1.5, func() {
		if e.Now() != 1.5 {
			t.Errorf("Now() = %v inside event, want 1.5", e.Now())
		}
		e.Schedule(2.5, func() {
			if e.Now() != 4.0 {
				t.Errorf("Now() = %v inside nested event, want 4.0", e.Now())
			}
		})
	})
	e.Run()
	if e.Now() != 4.0 {
		t.Errorf("final Now() = %v, want 4.0", e.Now())
	}
	if e.Executed() != 2 {
		t.Errorf("Executed() = %d, want 2", e.Executed())
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(-5, func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("negative-delay event never fired")
	}
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.Schedule(1, func() { fired = true })
	e.Cancel(tm)
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !tm.Cancelled() {
		t.Fatal("timer not marked cancelled")
	}
	// Double cancel and nil cancel must be safe.
	e.Cancel(tm)
	e.Cancel(nil)
}

func TestCancelFromEvent(t *testing.T) {
	e := NewEngine()
	fired := false
	var tm *Timer
	e.Schedule(1, func() { e.Cancel(tm) })
	tm = e.Schedule(2, func() { fired = true })
	e.Run()
	if fired {
		t.Fatal("event cancelled from an earlier event still fired")
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var got []float64
	for _, d := range []float64{1, 2, 3, 4, 5} {
		d := d
		e.Schedule(d, func() { got = append(got, d) })
	}
	e.RunUntil(3)
	if len(got) != 3 {
		t.Fatalf("RunUntil(3) executed %d events, want 3", len(got))
	}
	if e.Now() != 3 {
		t.Fatalf("Now() = %v after RunUntil(3), want 3", e.Now())
	}
	e.RunUntil(10)
	if len(got) != 5 {
		t.Fatalf("after RunUntil(10) executed %d events, want 5", len(got))
	}
	if e.Now() != 10 {
		t.Fatalf("Now() = %v after RunUntil(10), want 10", e.Now())
	}
}

func TestRunUntilExactBoundary(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(3, func() { fired = true })
	e.RunUntil(3)
	if !fired {
		t.Fatal("event at exactly the horizon did not fire")
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(float64(i), func() {
			count++
			if count == 5 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 5 {
		t.Fatalf("executed %d events before Stop, want 5", count)
	}
	// Run may be resumed.
	e.Run()
	if count != 10 {
		t.Fatalf("executed %d events total, want 10", count)
	}
}

func TestAtPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("At in the past did not panic")
		}
	}()
	e.At(1, func() {})
}

func TestNaNDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("NaN delay did not panic")
		}
	}()
	e.Schedule(math.NaN(), func() {})
}

func TestPendingCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.Schedule(float64(i), func() {})
	}
	if e.Pending() != 7 {
		t.Fatalf("Pending() = %d, want 7", e.Pending())
	}
	e.Step()
	if e.Pending() != 6 {
		t.Fatalf("Pending() = %d after Step, want 6", e.Pending())
	}
}

// Property: for any set of delays, events fire in nondecreasing time order
// and the engine's final clock equals the max delay.
func TestQuickOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		e := NewEngine()
		var fireTimes []float64
		for _, r := range raw {
			d := float64(r) / 16.0
			e.Schedule(d, func() { fireTimes = append(fireTimes, e.Now()) })
		}
		e.Run()
		if len(fireTimes) != len(raw) {
			return false
		}
		if !sort.Float64sAreSorted(fireTimes) {
			return false
		}
		maxd := 0.0
		for _, r := range raw {
			if d := float64(r) / 16.0; d > maxd {
				maxd = d
			}
		}
		return e.Now() == maxd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset of timers fires exactly the others.
func TestQuickCancelSubset(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		total := int(n%64) + 1
		fired := make([]bool, total)
		timers := make([]*Timer, total)
		for i := 0; i < total; i++ {
			i := i
			timers[i] = e.Schedule(rng.Float64()*100, func() { fired[i] = true })
		}
		cancelled := make([]bool, total)
		for i := 0; i < total; i++ {
			if rng.Intn(2) == 0 {
				e.Cancel(timers[i])
				cancelled[i] = true
			}
		}
		e.Run()
		for i := 0; i < total; i++ {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestMassCancelCompaction pins the lazy-cancellation contract: cancelling
// is O(1) (the handle is only marked), dead entries are counted by Pending
// until compaction, and a mass cancel triggers a one-pass compaction that
// leaves only live timers — which then fire in exactly schedule order.
func TestMassCancelCompaction(t *testing.T) {
	e := NewEngine()
	const total = 1000
	timers := make([]*Timer, total)
	var got []int
	for i := 0; i < total; i++ {
		i := i
		timers[i] = e.Schedule(float64(i%50), func() { got = append(got, i) })
	}
	for i := 0; i < total; i++ {
		if i%10 != 0 {
			e.Cancel(timers[i])
		}
	}
	// 900 of 1000 cancelled: the >half+floor threshold fires repeatedly, so
	// at most the 100 live timers plus a below-threshold tail of dead ones
	// may remain queued (each compaction resets the dead counter).
	if e.Pending() > 100+2*compactFloor {
		t.Fatalf("Pending() = %d after mass cancel, want ≤ %d (compacted)", e.Pending(), 100+2*compactFloor)
	}
	e.Run()
	if len(got) != 100 {
		t.Fatalf("fired %d events, want 100", len(got))
	}
	for k, v := range got {
		if v%10 != 0 {
			t.Fatalf("cancelled timer %d fired", v)
		}
		_ = k
	}
	if !sort.IntsAreSorted(appendTimes(nil, got)) {
		t.Fatal("post-compaction firing order not sorted by (time, seq)")
	}
}

// appendTimes maps the fired indices back to (time, seq)-comparable keys:
// index i fired at time i%50 with tie-stamp i, so i%50*total+i is the total
// order the engine must respect.
func appendTimes(dst []int, fired []int) []int {
	for _, i := range fired {
		dst = append(dst, (i%50)*100000+i)
	}
	return dst
}

// TestCancelledPendingLazy pins that below the compaction threshold,
// cancelled events stay queued (Pending counts them) and are discarded at
// the root without counting as a step.
func TestCancelledPendingLazy(t *testing.T) {
	e := NewEngine()
	var fired int
	t1 := e.Schedule(1, func() { fired++ })
	e.Schedule(2, func() { fired++ })
	e.Cancel(t1)
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2 (lazy cancel keeps the entry)", e.Pending())
	}
	if !e.Step() {
		t.Fatal("Step() = false with a live event queued")
	}
	if fired != 1 || e.Now() != 2 {
		t.Fatalf("fired=%d now=%v, want the live event at t=2", fired, e.Now())
	}
	if e.Executed() != 1 {
		t.Fatalf("Executed() = %d, want 1 (discarded cancel must not count)", e.Executed())
	}
}

// BenchmarkTimerChurn measures the netsim/chaos pattern the 4-ary heap and
// lazy cancellation target: schedule a timeout, cancel it, reschedule.
func BenchmarkTimerChurn(b *testing.B) {
	e := NewEngine()
	for i := 0; i < b.N; i++ {
		tm := e.Schedule(100, func() {})
		e.Cancel(tm)
		if i%64 == 0 {
			e.Schedule(0, func() {})
			e.Step()
		}
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(float64(j%100), func() {})
		}
		e.Run()
	}
}
