// Package event provides a deterministic discrete-event simulation engine.
//
// Events are ordered by (time, sequence number), so two events scheduled for
// the same instant fire in the order they were scheduled. All times are in
// seconds, represented as float64. The engine is single-threaded by design:
// simulations built on it are fully deterministic given a fixed seed.
package event

import (
	"container/heap"
	"fmt"
	"math"
)

// Timer is a handle to a scheduled event. It can be used to cancel the event
// before it fires.
type Timer struct {
	time      float64
	seq       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 once popped
}

// Time returns the simulated time at which the timer fires.
func (t *Timer) Time() float64 { return t.time }

// Cancelled reports whether Cancel was called on the timer.
func (t *Timer) Cancelled() bool { return t.cancelled }

// Engine is a discrete-event simulation engine.
//
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	pq        eventHeap
	now       float64
	seq       uint64
	executed  uint64
	running   bool
	stopped   bool
	horizon   float64 // RunUntil limit; +Inf when unused
	panicWrap bool
}

// NewEngine returns an empty engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{horizon: math.Inf(1)}
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Executed returns the number of events that have fired so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of events currently scheduled (including
// cancelled events that have not yet been discarded).
func (e *Engine) Pending() int { return len(e.pq) }

// Schedule schedules fn to run delay seconds from now and returns a handle
// that may be used to cancel it. A negative delay is treated as zero.
// Panics if delay is NaN.
func (e *Engine) Schedule(delay float64, fn func()) *Timer {
	if math.IsNaN(delay) {
		panic("event: Schedule called with NaN delay")
	}
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At schedules fn to run at absolute time t, which must not be in the past.
func (e *Engine) At(t float64, fn func()) *Timer {
	if fn == nil {
		panic("event: At called with nil function")
	}
	if t < e.now {
		panic(fmt.Sprintf("event: At called with time %v < now %v", t, e.now))
	}
	tm := &Timer{time: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.pq, tm)
	return tm
}

// Cancel cancels a previously scheduled timer. Cancelling a nil timer or a
// timer that has already fired is a no-op.
func (e *Engine) Cancel(t *Timer) {
	if t == nil || t.cancelled || t.index < 0 {
		if t != nil {
			t.cancelled = true
		}
		return
	}
	t.cancelled = true
	heap.Remove(&e.pq, t.index)
}

// Step executes the next pending event, if any, and reports whether an event
// was executed. Cancelled events are discarded without counting as a step.
func (e *Engine) Step() bool {
	for len(e.pq) > 0 {
		tm := heap.Pop(&e.pq).(*Timer)
		if tm.cancelled {
			continue
		}
		if tm.time > e.horizon {
			// Past the run horizon: push back and refuse.
			heap.Push(&e.pq, tm)
			return false
		}
		e.now = tm.time
		e.executed++
		tm.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.horizon = math.Inf(1)
	e.loop()
}

// RunUntil executes events with time <= t, then advances the clock to t.
// Events scheduled for later remain pending.
func (e *Engine) RunUntil(t float64) {
	if t < e.now {
		panic(fmt.Sprintf("event: RunUntil(%v) is in the past (now=%v)", t, e.now))
	}
	e.horizon = t
	e.loop()
	e.horizon = math.Inf(1)
	if !e.stopped && e.now < t {
		e.now = t
	}
	e.stopped = false
}

// Stop aborts a Run or RunUntil in progress after the current event returns.
func (e *Engine) Stop() { e.stopped = true }

func (e *Engine) loop() {
	if e.running {
		panic("event: re-entrant Run")
	}
	e.running = true
	defer func() { e.running = false }()
	for !e.stopped && e.Step() {
	}
	if e.stopped && e.horizon == math.Inf(1) {
		e.stopped = false
	}
}

// eventHeap implements heap.Interface ordered by (time, seq).
type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}
