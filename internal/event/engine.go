// Package event provides a deterministic discrete-event simulation engine.
//
// Events are ordered by (time, tie-stamp), so two events scheduled for the
// same instant fire in the order they were scheduled. All times are in
// seconds, represented as float64. The engine is single-threaded by design:
// simulations built on it are fully deterministic given a fixed seed.
//
// The queue is a 4-ary heap with lazy cancellation: Cancel marks the handle
// and the queue discards it when it reaches the root, so cancelling under
// netsim/chaos timer churn is O(1) instead of an O(n) removal. When more
// than half the queue (and more than a fixed floor) is dead, the queue is
// compacted in one pass.
package event

import (
	"fmt"
	"math"
)

// Timer is a handle to a scheduled event. It can be used to cancel the event
// before it fires.
type Timer struct {
	time      float64
	seq       uint64 // tie-stamp: schedule order within an instant
	fn        func()
	cancelled bool
	inQueue   bool
}

// Time returns the simulated time at which the timer fires.
func (t *Timer) Time() float64 { return t.time }

// Cancelled reports whether Cancel was called on the timer.
func (t *Timer) Cancelled() bool { return t.cancelled }

// Engine is a discrete-event simulation engine.
//
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	pq       []*Timer // 4-ary min-heap by (time, seq)
	ncancel  int      // cancelled timers still in pq
	now      float64
	seq      uint64
	executed uint64
	running  bool
	stopped  bool
	horizon  float64 // RunUntil limit; +Inf when unused
}

// compactFloor is the minimum number of dead entries before a compaction is
// worth a full pass; below it the lazy discards at the root are cheaper.
const compactFloor = 32

// NewEngine returns an empty engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{horizon: math.Inf(1)}
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Executed returns the number of events that have fired so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of events currently scheduled (including
// cancelled events that have not yet been discarded).
func (e *Engine) Pending() int { return len(e.pq) }

// Schedule schedules fn to run delay seconds from now and returns a handle
// that may be used to cancel it. A negative delay is treated as zero.
// Panics if delay is NaN.
func (e *Engine) Schedule(delay float64, fn func()) *Timer {
	if math.IsNaN(delay) {
		panic("event: Schedule called with NaN delay")
	}
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At schedules fn to run at absolute time t, which must not be in the past.
func (e *Engine) At(t float64, fn func()) *Timer {
	if fn == nil {
		panic("event: At called with nil function")
	}
	if t < e.now {
		panic(fmt.Sprintf("event: At called with time %v < now %v", t, e.now))
	}
	tm := &Timer{time: t, seq: e.seq, fn: fn, inQueue: true}
	e.seq++
	e.push(tm)
	return tm
}

// Cancel cancels a previously scheduled timer in O(1): the handle is marked
// and the queue discards it lazily. Cancelling a nil timer or a timer that
// has already fired is a no-op.
func (e *Engine) Cancel(t *Timer) {
	if t == nil || t.cancelled {
		return
	}
	t.cancelled = true
	if !t.inQueue {
		return
	}
	e.ncancel++
	if e.ncancel > compactFloor && e.ncancel > len(e.pq)/2 {
		e.compact()
	}
}

// Step executes the next pending event, if any, and reports whether an event
// was executed. Cancelled events are discarded without counting as a step.
func (e *Engine) Step() bool {
	for len(e.pq) > 0 {
		tm := e.pq[0]
		if tm.cancelled {
			e.popRoot()
			e.ncancel--
			continue
		}
		if tm.time > e.horizon {
			return false // past the run horizon; leave it queued
		}
		e.popRoot()
		e.now = tm.time
		e.executed++
		tm.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.horizon = math.Inf(1)
	e.loop()
}

// RunUntil executes events with time <= t, then advances the clock to t.
// Events scheduled for later remain pending.
func (e *Engine) RunUntil(t float64) {
	if t < e.now {
		panic(fmt.Sprintf("event: RunUntil(%v) is in the past (now=%v)", t, e.now))
	}
	e.horizon = t
	e.loop()
	e.horizon = math.Inf(1)
	if !e.stopped && e.now < t {
		e.now = t
	}
	e.stopped = false
}

// Stop aborts a Run or RunUntil in progress after the current event returns.
func (e *Engine) Stop() { e.stopped = true }

func (e *Engine) loop() {
	if e.running {
		panic("event: re-entrant Run")
	}
	e.running = true
	defer func() { e.running = false }()
	for !e.stopped && e.Step() {
	}
	if e.stopped && e.horizon == math.Inf(1) {
		e.stopped = false
	}
}

// ---- 4-ary min-heap by (time, seq) ----

//custody:noalloc
func timerLess(a, b *Timer) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

//custody:noalloc
func (e *Engine) push(tm *Timer) {
	e.pq = append(e.pq, tm) //custody:ignore noalloc pq reuses capacity released by pops; growth stops once the in-flight timer set is warm
	i := len(e.pq) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !timerLess(e.pq[i], e.pq[parent]) {
			break
		}
		e.pq[i], e.pq[parent] = e.pq[parent], e.pq[i]
		i = parent
	}
}

// popRoot removes the minimum element.
//
//custody:noalloc
func (e *Engine) popRoot() {
	h := e.pq
	n := len(h) - 1
	h[0].inQueue = false
	h[0] = h[n]
	h[n] = nil
	e.pq = h[:n]
	if n > 0 {
		e.siftDown(0)
	}
}

//custody:noalloc
func (e *Engine) siftDown(i int) {
	h := e.pq
	n := len(h)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		m := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if timerLess(h[c], h[m]) {
				m = c
			}
		}
		if !timerLess(h[m], h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// compact removes every cancelled entry in one pass and restores the heap
// invariant bottom-up.
func (e *Engine) compact() {
	live := e.pq[:0]
	for _, tm := range e.pq {
		if tm.cancelled {
			tm.inQueue = false
			continue
		}
		live = append(live, tm)
	}
	for i := len(live); i < len(e.pq); i++ {
		e.pq[i] = nil
	}
	e.pq = live
	e.ncancel = 0
	for i := (len(live) - 2) / 4; i >= 0; i-- {
		e.siftDown(i)
	}
}
