//go:build !race

// Package race reports whether the race detector is enabled, mirroring the
// standard library's internal/race. Heavyweight integration tests use it to
// scale down (the detector costs roughly an order of magnitude in time and
// memory) so `go test -race ./...` finishes inside default timeouts while
// plain `go test ./...` keeps full coverage.
package race

// Enabled reports whether the build has the race detector on.
const Enabled = false
