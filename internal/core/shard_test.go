package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/obsv"
	"repro/internal/xrand"
)

// shardCounts is the differential battery's shard grid. 1 is the fully
// sequential build the others must reproduce byte-for-byte.
var shardCounts = []int{1, 2, 4, 8}

// FuzzShardedEquivalence is the gate on the sharded round build: arbitrary
// fuzz bytes decode into an allocation instance (same decoder as
// FuzzAllocateEquivalence, Fig. 7 grid seeds included) and the sharded
// Session at 2, 4, and 8 shards must produce plans byte-identical to both
// AllocateReference and a 1-shard Session — cold, and across three warm
// rounds with the demand/pool state advanced between rounds the way the
// manager would. A hostile shard function (all nodes on one shard, and a
// pathological alternation) is thrown in: the plan may not depend on the
// partition.
func FuzzShardedEquivalence(f *testing.F) {
	f.Add(fig7Seed(25, 2, 2, 4, 4))
	f.Add(fig7Seed(50, 2, 2, 4, 4))
	f.Add(fig7Seed(100, 2, 2, 6, 4))
	f.Add(fig7Seed(10, 3, 3, 2, 5))
	f.Add([]byte{3, 2, 2, 1, 0, 1, 2, 0, 1, 2})
	f.Add([]byte{8, 4, 1, 3, 3, 0, 0, 0, 0, 7, 7, 7})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		apps0, idle0 := decodeDiffInstance(data)
		optSets := []Options{DefaultOptions(), {FillToBudget: false}, {FillToBudget: true, Intra: FairnessIntra{}}}
		shardFns := []func(node int) int{nil, func(int) int { return 0 }, func(n int) int { return n & 1 }}
		for oi, base := range optSets {
			// Reference trajectory: frozen oracle + 1-shard warm session.
			apps, idle := apps0, idle0
			seq := NewSession()
			var wantPlans []string
			for round := 0; round < 3; round++ {
				want := AllocateReference(apps, idle, base)
				ws := fmt.Sprintf("%#v", want)
				if gs := fmt.Sprintf("%#v", seq.Allocate(apps, idle, base)); gs != ws {
					t.Fatalf("opts[%d] round %d: 1-shard session diverges from reference\nreference: %s\nfast path: %s", oi, round, ws, gs)
				}
				wantPlans = append(wantPlans, ws)
				apps, idle = advanceRound(apps, idle, want)
			}
			for _, shards := range shardCounts[1:] {
				for fi, fn := range shardFns {
					opts := base
					opts.Shards = shards
					opts.ShardFn = fn
					apps, idle := apps0, idle0
					sess := NewSession()
					for round := 0; round < 3; round++ {
						got := sess.Allocate(apps, idle, opts)
						if gs := fmt.Sprintf("%#v", got); gs != wantPlans[round] {
							t.Fatalf("opts[%d] shards=%d fn[%d] round %d: sharded plan diverges\nreference: %s\n  sharded: %s",
								oi, shards, fi, round, wantPlans[round], gs)
						}
						apps, idle = advanceRound(apps, idle, got)
					}
				}
			}
		}
	})
}

// traceObserver renders the full provenance stream — round boundaries,
// Algorithm 1 decisions, grants — to text, so two allocations can be
// compared trace-byte for trace-byte, not just plan for plan.
type traceObserver struct{ b strings.Builder }

func (o *traceObserver) BeginRound(apps, execs int) { fmt.Fprintf(&o.b, "round %d %d\n", apps, execs) }
func (o *traceObserver) Decide(d obsv.Decision)     { fmt.Fprintf(&o.b, "decide %#v\n", d) }
func (o *traceObserver) Grant(g obsv.Grant)         { fmt.Fprintf(&o.b, "grant %#v\n", g) }

// TestShardedDeterministicUnderShuffle is the sharding determinism
// contract: 20 trials, each with independently shuffled input slices AND a
// shard count drawn from {1, 2, 4, 8} in shuffled order, must produce
// byte-identical decision traces (provenance stream + plan) to the
// canonical 1-shard run — across three warm rounds. Goroutine interleaving
// of the build workers varies freely between trials; none of it may leak
// into the output.
func TestShardedDeterministicUnderShuffle(t *testing.T) {
	gen := xrand.New(0x5AAD)
	apps, idle := genDemands(gen, 6, 20)

	canonical := func(shards int, a []AppDemand, e []ExecInfo) ([]string, [][]AppDemand, [][]ExecInfo) {
		opts := DefaultOptions()
		opts.Shards = shards
		var traces []string
		var roundApps [][]AppDemand
		var roundIdle [][]ExecInfo
		sess := NewSession()
		for r := 0; r < 3; r++ {
			obs := &traceObserver{}
			opts.Observer = obs
			roundApps = append(roundApps, a)
			roundIdle = append(roundIdle, e)
			p := sess.Allocate(a, e, opts)
			traces = append(traces, obs.b.String()+fmt.Sprintf("%#v", p))
			a, e = advanceRound(a, e, p)
		}
		return traces, roundApps, roundIdle
	}
	want, roundApps, roundIdle := canonical(1, apps, idle)

	shuf := gen.Fork("shuffle")
	counts := append([]int(nil), shardCounts...)
	for trial := 0; trial < 20; trial++ {
		shuf.Shuffle(len(counts), func(i, j int) { counts[i], counts[j] = counts[j], counts[i] })
		shards := counts[0]
		opts := DefaultOptions()
		opts.Shards = shards
		warm := NewSession()
		for r := 0; r < 3; r++ {
			as, es := shuffled(shuf, roundApps[r], roundIdle[r])
			obs := &traceObserver{}
			opts.Observer = obs
			p := warm.Allocate(as, es, opts)
			got := obs.b.String() + fmt.Sprintf("%#v", p)
			if got != want[r] {
				t.Fatalf("trial %d shards=%d round %d: trace differs from canonical 1-shard run\n got: %s\nwant: %s",
					trial, shards, r, got, want[r])
			}
		}
	}
}

// TestShardCountChangeMidSession pins warm-state hygiene: one Session
// driven through rounds whose shard count changes every round (the
// modelcheck set-shards op does exactly this) must keep matching the
// reference.
func TestShardCountChangeMidSession(t *testing.T) {
	gen := xrand.New(0xC0DE)
	apps, idle := genDemands(gen, 5, 16)
	sess := NewSession()
	seq := []int{1, 4, 2, 8, 1, 3}
	a, e := apps, idle
	for r, shards := range seq {
		opts := DefaultOptions()
		opts.Shards = shards
		want := fmt.Sprintf("%#v", AllocateReference(a, e, DefaultOptions()))
		p := sess.Allocate(a, e, opts)
		if got := fmt.Sprintf("%#v", p); got != want {
			t.Fatalf("round %d (shards=%d): diverges from reference\n got: %s\nwant: %s", r, shards, got, want)
		}
		a, e = advanceRound(a, e, p)
	}
}
