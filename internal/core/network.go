package core

import (
	"fmt"
	"sort"
	"strings"
)

// LocalityNetwork is the §III-B flow network (Fig. 2): one source per
// application with demand τ_i, an intermediate node per input task and per
// executor, unit-capacity edges task→executor wherever the executor's node
// stores the task's block, and a common virtual sink.
type LocalityNetwork struct {
	Apps      []NetworkApp
	Executors []ExecInfo
	// Edges lists (taskIndex, executorIndex) pairs; task indices are global
	// across applications in app order.
	Edges [][2]int
	// TaskOwner maps global task index → application index.
	TaskOwner []int
	// TaskLabels are human-readable task names for rendering.
	TaskLabels []string
}

// NetworkApp is one commodity of the concurrent-flow instance.
type NetworkApp struct {
	App    int
	Demand int // τ_i: the number of input tasks
}

// BuildLocalityNetwork constructs the Fig. 2 network from demands and idle
// executors. It is the exact instance whose fractional relaxation
// FractionalMaxMin solves, exposed for inspection, testing, and rendering.
func BuildLocalityNetwork(apps []AppDemand, idle []ExecInfo) *LocalityNetwork {
	net := &LocalityNetwork{Executors: append([]ExecInfo(nil), idle...)}
	execsByNode := map[int][]int{}
	for i, e := range idle {
		execsByNode[e.Node] = append(execsByNode[e.Node], i)
	}
	for ai, a := range apps {
		demand := 0
		for _, j := range a.Jobs {
			demand += len(j.Tasks)
		}
		net.Apps = append(net.Apps, NetworkApp{App: a.App, Demand: demand})
		for _, j := range a.Jobs {
			for _, t := range j.Tasks {
				ti := len(net.TaskOwner)
				net.TaskOwner = append(net.TaskOwner, ai)
				net.TaskLabels = append(net.TaskLabels,
					fmt.Sprintf("A%d/J%d/T%d", a.App, j.Job, t.Task))
				seen := map[int]bool{}
				for _, n := range t.Nodes {
					if seen[n] {
						continue
					}
					seen[n] = true
					for _, ei := range execsByNode[n] {
						net.Edges = append(net.Edges, [2]int{ti, ei})
					}
				}
			}
		}
	}
	return net
}

// Tasks returns the number of task nodes.
func (n *LocalityNetwork) Tasks() int { return len(n.TaskOwner) }

// DOT renders the network in Graphviz format, grouping tasks under their
// application sources — a faithful rendering of the paper's Fig. 2.
func (n *LocalityNetwork) DOT() string {
	var b strings.Builder
	b.WriteString("digraph locality {\n  rankdir=LR;\n  node [shape=circle];\n")
	b.WriteString("  sink [shape=doublecircle,label=\"sink\"];\n")
	for ai, a := range n.Apps {
		fmt.Fprintf(&b, "  app%d [shape=box,label=\"A%d\\ndemand=%d\"];\n", ai, a.App, a.Demand)
	}
	for ti, label := range n.TaskLabels {
		fmt.Fprintf(&b, "  t%d [label=\"%s\"];\n", ti, label)
		fmt.Fprintf(&b, "  app%d -> t%d [label=\"1\"];\n", n.TaskOwner[ti], ti)
	}
	for ei, e := range n.Executors {
		fmt.Fprintf(&b, "  e%d [shape=square,label=\"E%d@n%d\"];\n", ei, e.ID, e.Node)
		fmt.Fprintf(&b, "  e%d -> sink [label=\"%d\"];\n", ei, e.slots())
	}
	edges := append([][2]int(nil), n.Edges...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "  t%d -> e%d;\n", e[0], e[1])
	}
	b.WriteString("}\n")
	return b.String()
}

// Degree returns per-task edge counts — tasks with zero degree can never be
// local under the current replica placement and executor pool.
func (n *LocalityNetwork) Degree() []int {
	deg := make([]int, n.Tasks())
	for _, e := range n.Edges {
		deg[e[0]]++
	}
	return deg
}

// UnservableTasks returns the labels of tasks with no locality option.
func (n *LocalityNetwork) UnservableTasks() []string {
	var out []string
	for ti, d := range n.Degree() {
		if d == 0 {
			out = append(out, n.TaskLabels[ti])
		}
	}
	return out
}
