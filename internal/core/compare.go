package core

import (
	"repro/internal/matching"
	"repro/internal/maxflow"
)

// IntraObjective is the §IV-B objective value of an intra-application
// allocation: Σ 1/µ_ij over locally-satisfied tasks, i.e. the (fractional)
// number of local jobs when each local task contributes 1/µ of a job.
func IntraObjective(jobs []JobDemand, localTasksPerJob map[int]int) float64 {
	total := 0.0
	for _, j := range jobs {
		if len(j.Tasks) == 0 {
			continue
		}
		total += float64(localTasksPerJob[j.Job]) / float64(len(j.Tasks))
	}
	return total
}

// GreedyIntraObjective runs Algorithm 2's greedy (as a standalone budgeted
// matching, without the inter-app interleaving) and returns its objective
// value and the number of fully local jobs. Used by the ablation comparing
// the 2-approximation against the exact optimum.
func GreedyIntraObjective(jobs []JobDemand, idle []ExecInfo, budget int) (objective float64, localJobs int) {
	apps := []AppDemand{{App: 0, Budget: budget, Jobs: jobs}}
	plan := Allocate(apps, idle, Options{FillToBudget: false})
	perJob := map[int]int{}
	for _, a := range plan.Assignments {
		if a.Local {
			perJob[a.Job]++
		}
	}
	for _, j := range jobs {
		if len(j.Tasks) > 0 && perJob[j.Job] == len(j.Tasks) {
			localJobs++
		}
	}
	return IntraObjective(jobs, perJob), localJobs
}

// OptimalIntraObjective solves the constrained bipartite matching problem of
// Eq. (9)–(10) exactly with a min-cost flow of value at most budget: tasks on
// the left, idle executors on the right, an edge of weight 1/µ_ij wherever
// the executor's node stores the task's block. Successive shortest paths
// are pushed only while they improve the objective, so the result is the
// maximum-weight matching of cardinality ≤ budget.
func OptimalIntraObjective(jobs []JobDemand, idle []ExecInfo, budget int) float64 {
	type taskRef struct {
		weight float64
		nodes  []int
	}
	var tasks []taskRef
	for _, j := range jobs {
		if len(j.Tasks) == 0 {
			continue
		}
		w := 1.0 / float64(len(j.Tasks))
		for _, t := range j.Tasks {
			tasks = append(tasks, taskRef{weight: w, nodes: t.Nodes})
		}
	}
	if len(tasks) == 0 || len(idle) == 0 || budget <= 0 {
		return 0
	}
	execsByNode := map[int][]int{} // node → graph indices of executors
	nTasks := len(tasks)
	// Node layout: 0 source, 1..nTasks tasks, then executors, then sink.
	execBase := 1 + nTasks
	sink := execBase + len(idle)
	g := maxflow.NewMinCostGraph(sink + 1)
	for i, e := range idle {
		execsByNode[e.Node] = append(execsByNode[e.Node], execBase+i)
		g.AddEdge(execBase+i, sink, 1, 0)
	}
	for i, t := range tasks {
		g.AddEdge(0, 1+i, 1, 0)
		seen := map[int]bool{}
		for _, n := range t.nodes {
			if seen[n] {
				continue
			}
			seen[n] = true
			for _, en := range execsByNode[n] {
				g.AddEdge(1+i, en, 1, -t.weight)
			}
		}
	}
	_, cost := g.MinCostFlowImproving(0, sink, float64(budget))
	return -cost
}

// TaskLocalityUpperBound computes, for a fixed executor-to-application
// allocation, the maximum number of tasks that could run locally — the
// maximum bipartite matching between tasks and the app's executors
// (Hopcroft–Karp). This is the "upper bound performance that can be achieved
// by task scheduling" (§III-B).
func TaskLocalityUpperBound(jobs []JobDemand, executors []ExecInfo) int {
	var adj [][]int
	execsByNode := map[int][]int{}
	for i, e := range executors {
		execsByNode[e.Node] = append(execsByNode[e.Node], i)
	}
	for _, j := range jobs {
		for _, t := range j.Tasks {
			var row []int
			seen := map[int]bool{}
			for _, n := range t.Nodes {
				if seen[n] {
					continue
				}
				seen[n] = true
				row = append(row, execsByNode[n]...)
			}
			adj = append(adj, row)
		}
	}
	_, size := matching.HopcroftKarp(len(adj), len(executors), adj)
	return size
}

// FractionalMaxMin computes the LP-relaxed maximum concurrent flow bound on
// the max-min fraction of local tasks across applications (§III-B): no
// allocation, integral or not, can give every application a larger fraction
// simultaneously.
func FractionalMaxMin(apps []AppDemand, idle []ExecInfo, tol float64) float64 {
	execIdx := map[int]int{}
	for i, e := range idle {
		execIdx[e.ID] = i
	}
	execsByNode := map[int][]int{}
	for i, e := range idle {
		execsByNode[e.Node] = append(execsByNode[e.Node], i)
	}
	cands := make([][][]int, len(apps))
	for ai, a := range apps {
		for _, j := range a.Jobs {
			for _, t := range j.Tasks {
				var c []int
				seen := map[int]bool{}
				for _, n := range t.Nodes {
					if seen[n] {
						continue
					}
					seen[n] = true
					c = append(c, execsByNode[n]...)
				}
				cands[ai] = append(cands[ai], c)
			}
		}
	}
	li := maxflow.LocalityInstance{Executors: len(idle), Candidates: cands}
	return li.FractionalUpperBound(tol)
}
