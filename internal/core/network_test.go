package core

import (
	"strings"
	"testing"
)

func fig2Instance() ([]AppDemand, []ExecInfo) {
	// The paper's Fig. 2: A1 with tasks T1, T2; A2 with task T21; three
	// executors.
	apps := []AppDemand{
		{App: 1, Budget: 3, Jobs: []JobDemand{{Job: 1, Tasks: []TaskDemand{
			task(1, 0, 0),
			task(2, 1, 0, 1),
		}}}},
		{App: 2, Budget: 3, Jobs: []JobDemand{{Job: 1, Tasks: []TaskDemand{
			task(1, 2, 1, 2),
		}}}},
	}
	idle := []ExecInfo{{ID: 0, Node: 0}, {ID: 1, Node: 1}, {ID: 2, Node: 2}}
	return apps, idle
}

func TestBuildLocalityNetworkStructure(t *testing.T) {
	apps, idle := fig2Instance()
	net := BuildLocalityNetwork(apps, idle)
	if len(net.Apps) != 2 {
		t.Fatalf("apps = %d", len(net.Apps))
	}
	if net.Apps[0].Demand != 2 || net.Apps[1].Demand != 1 {
		t.Fatalf("demands = %+v (Fig. 2: demand1=2, demand2=1)", net.Apps)
	}
	if net.Tasks() != 3 {
		t.Fatalf("tasks = %d", net.Tasks())
	}
	// T1 → E0; T2 → E0, E1; T21 → E1, E2.
	if len(net.Edges) != 5 {
		t.Fatalf("edges = %d, want 5: %v", len(net.Edges), net.Edges)
	}
	if net.TaskOwner[0] != 0 || net.TaskOwner[2] != 1 {
		t.Fatalf("task owners = %v", net.TaskOwner)
	}
}

func TestNetworkDegreeAndUnservable(t *testing.T) {
	apps := []AppDemand{{App: 0, Budget: 1, Jobs: []JobDemand{{Job: 1, Tasks: []TaskDemand{
		task(1, 0, 0),
		task(2, 1, 9), // replica on a node with no idle executor
	}}}}}
	idle := []ExecInfo{{ID: 0, Node: 0}}
	net := BuildLocalityNetwork(apps, idle)
	deg := net.Degree()
	if deg[0] != 1 || deg[1] != 0 {
		t.Fatalf("degrees = %v", deg)
	}
	uns := net.UnservableTasks()
	if len(uns) != 1 || !strings.Contains(uns[0], "T2") {
		t.Fatalf("unservable = %v", uns)
	}
}

func TestNetworkDOT(t *testing.T) {
	apps, idle := fig2Instance()
	dot := BuildLocalityNetwork(apps, idle).DOT()
	for _, want := range []string{
		"digraph locality", "sink", "demand=2", "demand=1",
		"app0 -> t0", "t0 -> e0", "e2 -> sink",
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Deterministic output.
	if dot != BuildLocalityNetwork(apps, idle).DOT() {
		t.Fatal("DOT output not deterministic")
	}
}

func TestNetworkMatchesFractionalSolver(t *testing.T) {
	// The network's structure must agree with what FractionalMaxMin solves:
	// in the Fig. 2 instance everyone can be satisfied (λ* = 1).
	apps, idle := fig2Instance()
	if got := FractionalMaxMin(apps, idle, 1e-3); got != 1 {
		t.Fatalf("fig. 2 instance λ* = %v, want 1", got)
	}
	net := BuildLocalityNetwork(apps, idle)
	if len(net.UnservableTasks()) != 0 {
		t.Fatal("fig. 2 instance has unservable tasks")
	}
}

func TestNetworkMultiSlotExecutorCapacity(t *testing.T) {
	apps := []AppDemand{{App: 0, Budget: 1, Jobs: []JobDemand{{Job: 1, Tasks: []TaskDemand{
		task(1, 0, 0),
	}}}}}
	idle := []ExecInfo{{ID: 0, Node: 0, Slots: 4}}
	dot := BuildLocalityNetwork(apps, idle).DOT()
	if !strings.Contains(dot, "e0 -> sink [label=\"4\"]") {
		t.Fatalf("multi-slot capacity missing from DOT:\n%s", dot)
	}
}
