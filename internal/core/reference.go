package core

import (
	"sort"
)

// AllocateReference is the pre-fast-path implementation of Allocate, frozen
// verbatim (modulo renames) when the incremental allocator landed. It is the
// oracle of the differential battery — FuzzAllocateEquivalence and the
// warm-session determinism tests require Allocate to produce byte-identical
// plans — and the in-run yardstick for the benchmark-regression harness
// (internal/benchreg), which is why it lives in a non-test file. Do not
// modify it and do not call it from production code: it recomputes every
// application's locality state from scratch on each pick, O(apps × jobs ×
// tasks) per granted executor.
//
// Like Allocate, it requires unique application and executor IDs.
func AllocateReference(apps []AppDemand, idle []ExecInfo, opts Options) Plan {
	st := newRefAllocator(apps, idle, opts)
	st.run()
	return Plan{Assignments: st.plan}
}

// refAllocator is the mutable working state of one reference allocation
// round.
type refAllocator struct {
	opts Options
	apps []*refAppState
	pool *refExecPool
	plan []Assignment
}

type refAppState struct {
	d    AppDemand
	held int
	jobs []*refJobState

	newLocalJobs  int
	newLocalTasks int
	fillGiven     int
	exhausted     bool // no further useful allocation possible this round
}

// fillWant returns how many more slots the app can justify in the fill
// phase: one per still-unsatisfied input task plus one per no-preference
// pending task. The executor budget is enforced at take time (slots on
// already-claimed executors are budget-free).
func (a *refAppState) fillWant() int {
	want := a.d.ExtraTasks
	for _, j := range a.jobs {
		want += j.remaining
	}
	want -= a.fillGiven
	if want < 0 {
		return 0
	}
	return want
}

type refJobState struct {
	d         JobDemand
	satisfied []bool
	remaining int
}

func newRefAllocator(apps []AppDemand, idle []ExecInfo, opts Options) *refAllocator {
	if opts.Intra == nil {
		opts.Intra = PriorityIntra{}
	}
	st := &refAllocator{opts: opts, pool: newRefExecPool(idle)}
	for _, d := range apps {
		a := &refAppState{d: d, held: d.Held}
		for _, jd := range d.Jobs {
			a.jobs = append(a.jobs, &refJobState{
				d:         jd,
				satisfied: make([]bool, len(jd.Tasks)),
				remaining: len(jd.Tasks),
			})
		}
		st.apps = append(st.apps, a)
	}
	return st
}

// pctLocalJobs is the fairness metric of Algorithm 1.
func (a *refAppState) pctLocalJobs() float64 {
	den := a.d.TotalJobs + len(a.jobs)
	if den == 0 {
		return 1
	}
	return float64(a.d.LocalJobs+a.newLocalJobs) / float64(den)
}

// pctLocalTasks is Algorithm 1's tie-breaker.
func (a *refAppState) pctLocalTasks() float64 {
	den := a.d.TotalTasks
	for _, j := range a.jobs {
		den += len(j.d.Tasks)
	}
	if den == 0 {
		return 1
	}
	return float64(a.d.LocalTasks+a.newLocalTasks) / float64(den)
}

// allowNew reports whether the app may claim a previously-unreserved
// executor under its budget σ_i.
func (a *refAppState) allowNew() bool { return a.held < a.d.Budget }

// wants reports whether the app can take another locality-carrying slot
// this round.
func (st *refAllocator) wants(a *refAppState) bool {
	if a.exhausted || st.pool.size == 0 {
		return false
	}
	for _, j := range a.jobs {
		for i, t := range j.d.Tasks {
			if j.satisfied[i] {
				continue
			}
			if st.pool.hasOnAny(t.Nodes, a.d.App, a.allowNew()) {
				return true
			}
		}
	}
	return false
}

// minLocality implements procedure MINLOCALITY by linear scan.
func (st *refAllocator) minLocality() *refAppState {
	var best *refAppState
	for _, a := range st.apps {
		if !st.wants(a) {
			continue
		}
		if best == nil || refLess(a, best) {
			best = a
		}
	}
	return best
}

func refLess(a, b *refAppState) bool {
	pa, pb := a.pctLocalJobs(), b.pctLocalJobs()
	if pa != pb {
		return pa < pb
	}
	ta, tb := a.pctLocalTasks(), b.pctLocalTasks()
	if ta != tb {
		return ta < tb
	}
	return a.d.App < b.d.App
}

// run is procedure INTER-APP FAIRNESS (Algorithm 1).
func (st *refAllocator) run() {
	for st.pool.size > 0 {
		a := st.minLocality()
		if a == nil {
			break
		}
		before := len(st.plan)
		st.intraAllocate(a)
		if len(st.plan) == before {
			// No progress: nothing in the pool is useful to this app.
			a.exhausted = true
		}
	}
	if st.opts.FillToBudget {
		st.fill()
	}
}

// intraAllocate dispatches Options.Intra onto the reference copies of the
// intra-application strategies.
func (st *refAllocator) intraAllocate(a *refAppState) {
	switch st.opts.Intra.(type) {
	case FairnessIntra:
		st.fairnessAllocate(a)
	default: // PriorityIntra (and nil, normalized in newRefAllocator)
		st.priorityAllocate(a)
	}
}

// fill hands leftover slots to applications that still have pending tasks,
// least-localized first, one slot per pending task.
func (st *refAllocator) fill() {
	blocked := map[int]bool{}
	for st.pool.size > 0 {
		var best *refAppState
		for _, a := range st.apps {
			if blocked[a.d.App] || a.fillWant() <= 0 {
				continue
			}
			if best == nil || refLess(a, best) {
				best = a
			}
		}
		if best == nil {
			return
		}
		e, newExec, ok := st.pool.takeAny(best.d.App, best.allowNew())
		if !ok {
			blocked[best.d.App] = true
			continue
		}
		st.assign(best, e, nil, 0, false, newExec)
		best.fillGiven++
	}
}

// assign records the allocation of one executor slot and updates locality
// state.
func (st *refAllocator) assign(a *refAppState, e ExecInfo, j *refJobState, taskIdx int, local, newExec bool) {
	as := Assignment{App: a.d.App, Exec: e.ID, Node: e.Node}
	if j != nil {
		as.Job = j.d.Job
		as.Task = j.d.Tasks[taskIdx].Task
		as.Block = j.d.Tasks[taskIdx].Block
		as.Local = local
		if local && !j.satisfied[taskIdx] {
			j.satisfied[taskIdx] = true
			j.remaining--
			a.newLocalTasks++
			if j.remaining == 0 {
				a.newLocalJobs++
			}
		}
	} else {
		as.Job = -1
		as.Task = -1
		as.Block = -1
	}
	if newExec {
		a.held++
	}
	st.plan = append(st.plan, as)
}

// priorityAllocate is the reference copy of PriorityIntra (Algorithm 2).
func (st *refAllocator) priorityAllocate(a *refAppState) {
	jobs := append([]*refJobState(nil), a.jobs...)
	sort.SliceStable(jobs, func(i, j int) bool {
		if jobs[i].remaining != jobs[j].remaining {
			return jobs[i].remaining < jobs[j].remaining
		}
		return jobs[i].d.Job < jobs[j].d.Job
	})
	for _, j := range jobs {
		for ti := range j.d.Tasks {
			if j.satisfied[ti] {
				continue
			}
			e, newExec, ok := st.pool.takeOnAny(j.d.Tasks[ti].Nodes, a.d.App, a.allowNew())
			if !ok {
				continue // no available executor stores this task's input
			}
			st.assign(a, e, j, ti, true, newExec)
			if st.minLocality() != a {
				return // yield to a now-less-localized application
			}
		}
	}
}

// fairnessAllocate is the reference copy of FairnessIntra (Fig. 4 strawman).
func (st *refAllocator) fairnessAllocate(a *refAppState) {
	progress := true
	for progress {
		progress = false
		for _, j := range a.jobs {
			// One unsatisfied task per job per pass.
			for ti := range j.d.Tasks {
				if j.satisfied[ti] {
					continue
				}
				e, newExec, ok := st.pool.takeOnAny(j.d.Tasks[ti].Nodes, a.d.App, a.allowNew())
				if !ok {
					continue
				}
				st.assign(a, e, j, ti, true, newExec)
				progress = true
				if st.minLocality() != a {
					return
				}
				break
			}
		}
	}
}

// refPoolExec is one idle executor's state inside the reference pool.
type refPoolExec struct {
	info     ExecInfo
	free     int
	reserved int // app ID, or -1 when unreserved
}

// refExecPool indexes idle executor slots by node for locality lookups.
type refExecPool struct {
	byNode map[int][]*refPoolExec // per node, sorted by executor ID
	order  []int                  // node ids with executors, kept sorted
	size   int                    // total free slots
}

func newRefExecPool(idle []ExecInfo) *refExecPool {
	p := &refExecPool{byNode: map[int][]*refPoolExec{}}
	sorted := append([]ExecInfo(nil), idle...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	for _, e := range sorted {
		pe := &refPoolExec{info: e, free: e.slots(), reserved: -1}
		p.byNode[e.Node] = append(p.byNode[e.Node], pe)
		p.size += pe.free
	}
	for n := range p.byNode {
		p.order = append(p.order, n)
	}
	sort.Ints(p.order)
	return p
}

// usable reports whether the entry can serve the app under the budget rule.
func (pe *refPoolExec) usable(app int, allowNew bool) bool {
	if pe.free <= 0 {
		return false
	}
	if pe.reserved == app {
		return true
	}
	return pe.reserved == -1 && allowNew
}

// hasOnAny reports whether the app could take a slot on one of the nodes.
func (p *refExecPool) hasOnAny(nodes []int, app int, allowNew bool) bool {
	for _, n := range nodes {
		for _, pe := range p.byNode[n] {
			if pe.usable(app, allowNew) {
				return true
			}
		}
	}
	return false
}

// takeOnAny takes one slot on one of the given nodes for the app.
func (p *refExecPool) takeOnAny(nodes []int, app int, allowNew bool) (e ExecInfo, newExec, ok bool) {
	var best *refPoolExec
	seen := map[int]bool{}
	for _, n := range nodes {
		if seen[n] {
			continue
		}
		seen[n] = true
		for _, pe := range p.byNode[n] {
			if !pe.usable(app, allowNew) {
				continue
			}
			if best == nil || refBetterPick(pe, best, app) {
				best = pe
			}
		}
	}
	if best == nil {
		return ExecInfo{}, false, false
	}
	return p.takeSlot(best, app)
}

// takeAny takes one slot anywhere for the app.
func (p *refExecPool) takeAny(app int, allowNew bool) (e ExecInfo, newExec, ok bool) {
	var best *refPoolExec
	for _, n := range p.order {
		for _, pe := range p.byNode[n] {
			if !pe.usable(app, allowNew) {
				continue
			}
			if best == nil || refBetterPick(pe, best, app) {
				best = pe
			}
		}
	}
	if best == nil {
		return ExecInfo{}, false, false
	}
	return p.takeSlot(best, app)
}

// refBetterPick orders candidates: app-reserved executors first (no budget
// cost), then lowest executor ID.
func refBetterPick(a, b *refPoolExec, app int) bool {
	ar := a.reserved == app
	br := b.reserved == app
	if ar != br {
		return ar
	}
	return a.info.ID < b.info.ID
}

func (p *refExecPool) takeSlot(pe *refPoolExec, app int) (ExecInfo, bool, bool) {
	newExec := pe.reserved == -1
	pe.reserved = app
	pe.free--
	p.size--
	return pe.info, newExec, true
}
