package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/hdfs"
	"repro/internal/xrand"
)

// execs builds one idle executor per node 0..n-1 with matching IDs.
func execs(n int) []ExecInfo {
	out := make([]ExecInfo, n)
	for i := range out {
		out[i] = ExecInfo{ID: i, Node: i}
	}
	return out
}

func task(id int, block hdfs.BlockID, nodes ...int) TaskDemand {
	return TaskDemand{Task: id, Block: block, Nodes: nodes}
}

// TestFig1MotivatingExample reproduces §II-B / Fig. 1: four workers each
// storing one block, two applications with one job of two tasks each. A
// data-aware allocation gives both applications 100% locality.
func TestFig1MotivatingExample(t *testing.T) {
	apps := []AppDemand{
		{App: 1, Budget: 2, Jobs: []JobDemand{
			{Job: 11, Tasks: []TaskDemand{task(1, 0, 0), task(2, 1, 1)}},
		}},
		{App: 2, Budget: 2, Jobs: []JobDemand{
			{Job: 21, Tasks: []TaskDemand{task(1, 2, 2), task(2, 3, 3)}},
		}},
	}
	plan := Allocate(apps, execs(4), DefaultOptions())
	if len(plan.Assignments) != 4 {
		t.Fatalf("assigned %d executors, want 4", len(plan.Assignments))
	}
	if plan.LocalCount() != 4 {
		t.Fatalf("local assignments = %d, want 4 (perfect locality)", plan.LocalCount())
	}
	byApp := plan.ByApp()
	wantApp1 := map[int]bool{0: true, 1: true}
	for _, e := range byApp[1] {
		if !wantApp1[e] {
			t.Fatalf("app 1 received executor %d, want {E0,E1}", e)
		}
	}
	wantApp2 := map[int]bool{2: true, 3: true}
	for _, e := range byApp[2] {
		if !wantApp2[e] {
			t.Fatalf("app 2 received executor %d, want {E2,E3}", e)
		}
	}
}

// TestFig3LocalityFairness reproduces §IV-A / Fig. 3: two applications each
// with two single-task jobs, all four jobs wanting blocks 1 and 2 (on nodes
// 0 and 1). Naive fairness could give both hot executors to one app; the
// locality-aware rule gives each application one local job.
func TestFig3LocalityFairness(t *testing.T) {
	mk := func(app int) AppDemand {
		return AppDemand{App: app, Budget: 2, Jobs: []JobDemand{
			{Job: app*10 + 1, Tasks: []TaskDemand{task(1, 0, 0)}},
			{Job: app*10 + 2, Tasks: []TaskDemand{task(1, 1, 1)}},
		}}
	}
	apps := []AppDemand{mk(3), mk(4)}
	plan := Allocate(apps, execs(4), DefaultOptions())
	local := map[int]int{}
	for _, a := range plan.Assignments {
		if a.Local {
			local[a.App]++
		}
	}
	if local[3] != 1 || local[4] != 1 {
		t.Fatalf("local jobs per app = %v, want one each (locality fairness)", local)
	}
}

// TestFig4PriorityIntra reproduces §IV-B / Fig. 4: one application with two
// jobs of two tasks each, blocks on nodes 0..3, budget of 2 executors.
// Priority allocation must fully satisfy one job (the paper's Job1) rather
// than giving each job one local task.
func TestFig4PriorityIntra(t *testing.T) {
	apps := []AppDemand{{App: 5, Budget: 2, Jobs: []JobDemand{
		{Job: 1, Tasks: []TaskDemand{task(1, 0, 0), task(2, 1, 1)}},
		{Job: 2, Tasks: []TaskDemand{task(1, 2, 2), task(2, 3, 3)}},
	}}}
	plan := Allocate(apps, execs(4), DefaultOptions())
	if len(plan.Assignments) != 2 {
		t.Fatalf("assigned %d executors, want 2 (budget)", len(plan.Assignments))
	}
	perJob := map[int]int{}
	for _, a := range plan.Assignments {
		if a.Local {
			perJob[a.Job]++
		}
	}
	if perJob[1] != 2 || perJob[2] != 0 {
		t.Fatalf("local tasks per job = %v, want job 1 fully local", perJob)
	}
}

// TestFig4FairnessIntra checks the strawman spreads locality thin: each job
// gets exactly one local task and neither is fully local.
func TestFig4FairnessIntra(t *testing.T) {
	apps := []AppDemand{{App: 5, Budget: 2, Jobs: []JobDemand{
		{Job: 1, Tasks: []TaskDemand{task(1, 0, 0), task(2, 1, 1)}},
		{Job: 2, Tasks: []TaskDemand{task(1, 2, 2), task(2, 3, 3)}},
	}}}
	plan := Allocate(apps, execs(4), Options{FillToBudget: true, Intra: FairnessIntra{}})
	perJob := map[int]int{}
	for _, a := range plan.Assignments {
		if a.Local {
			perJob[a.Job]++
		}
	}
	if perJob[1] != 1 || perJob[2] != 1 {
		t.Fatalf("fairness strawman local tasks per job = %v, want 1 and 1", perJob)
	}
}

func TestSmallestJobFirst(t *testing.T) {
	// Budget 2: job 7 (1 task) should be satisfied before job 8 (3 tasks).
	apps := []AppDemand{{App: 0, Budget: 2, Jobs: []JobDemand{
		{Job: 8, Tasks: []TaskDemand{task(1, 0, 0), task(2, 1, 1), task(3, 2, 2)}},
		{Job: 7, Tasks: []TaskDemand{task(1, 3, 3)}},
	}}}
	plan := Allocate(apps, execs(4), Options{FillToBudget: false})
	var first Assignment
	if len(plan.Assignments) == 0 {
		t.Fatal("no assignments")
	}
	first = plan.Assignments[0]
	if first.Job != 7 {
		t.Fatalf("first allocation served job %d, want 7 (fewest remaining tasks)", first.Job)
	}
}

func TestBudgetRespected(t *testing.T) {
	apps := []AppDemand{{App: 0, Budget: 3, Jobs: []JobDemand{
		{Job: 1, Tasks: []TaskDemand{
			task(1, 0, 0), task(2, 1, 1), task(3, 2, 2), task(4, 3, 3), task(5, 4, 4),
		}},
	}}}
	plan := Allocate(apps, execs(8), DefaultOptions())
	if len(plan.Assignments) != 3 {
		t.Fatalf("assigned %d, want budget 3", len(plan.Assignments))
	}
}

func TestHeldCountsAgainstBudget(t *testing.T) {
	apps := []AppDemand{{App: 0, Budget: 3, Held: 2, Jobs: []JobDemand{
		{Job: 1, Tasks: []TaskDemand{task(1, 0, 0), task(2, 1, 1)}},
	}}}
	plan := Allocate(apps, execs(4), DefaultOptions())
	if len(plan.Assignments) != 1 {
		t.Fatalf("assigned %d, want 1 (2 already held of budget 3)", len(plan.Assignments))
	}
}

func TestNoUsefulExecutorNoFill(t *testing.T) {
	// Task wants node 9; only executors on nodes 0..3 idle; FillToBudget off.
	apps := []AppDemand{{App: 0, Budget: 2, Jobs: []JobDemand{
		{Job: 1, Tasks: []TaskDemand{task(1, 0, 9)}},
	}}}
	plan := Allocate(apps, execs(4), Options{FillToBudget: false})
	if len(plan.Assignments) != 0 {
		t.Fatalf("assigned %d, want 0", len(plan.Assignments))
	}
}

func TestFillGrabsNonLocalPerPendingTask(t *testing.T) {
	apps := []AppDemand{{App: 0, Budget: 2, Jobs: []JobDemand{
		{Job: 1, Tasks: []TaskDemand{task(1, 0, 9)}},
	}}}
	plan := Allocate(apps, execs(4), DefaultOptions())
	// One pending task with no locality option → exactly one fill executor.
	if len(plan.Assignments) != 1 {
		t.Fatalf("assigned %d, want 1 (fill bounded by pending demand)", len(plan.Assignments))
	}
	for _, a := range plan.Assignments {
		if a.Local {
			t.Fatalf("impossible local assignment: %+v", a)
		}
	}
}

func TestFillCoversExtraTasks(t *testing.T) {
	apps := []AppDemand{{App: 0, Budget: 5, ExtraTasks: 3}}
	plan := Allocate(apps, execs(4), DefaultOptions())
	if len(plan.Assignments) != 3 {
		t.Fatalf("assigned %d, want 3 (one per no-preference pending task)", len(plan.Assignments))
	}
}

func TestFillFavorsLeastLocalizedApp(t *testing.T) {
	apps := []AppDemand{
		{App: 0, Budget: 2, LocalJobs: 9, TotalJobs: 9, ExtraTasks: 2},
		{App: 1, Budget: 2, LocalJobs: 0, TotalJobs: 9, ExtraTasks: 2},
	}
	plan := Allocate(apps, []ExecInfo{{ID: 0, Node: 0}}, DefaultOptions())
	if len(plan.Assignments) != 1 || plan.Assignments[0].App != 1 {
		t.Fatalf("fill went to %+v, want app 1", plan.Assignments)
	}
}

func TestEachExecutorAssignedOnce(t *testing.T) {
	apps := []AppDemand{
		{App: 0, Budget: 4, Jobs: []JobDemand{{Job: 1, Tasks: []TaskDemand{task(1, 0, 0), task(2, 1, 1)}}}},
		{App: 1, Budget: 4, Jobs: []JobDemand{{Job: 2, Tasks: []TaskDemand{task(1, 0, 0), task(2, 1, 1)}}}},
	}
	plan := Allocate(apps, execs(4), DefaultOptions())
	seen := map[int]bool{}
	for _, a := range plan.Assignments {
		if seen[a.Exec] {
			t.Fatalf("executor %d assigned twice", a.Exec)
		}
		seen[a.Exec] = true
	}
}

func TestHistoryDrivesFairness(t *testing.T) {
	// App 0 already has 100% local jobs; app 1 has 0%. Both want the single
	// executor on node 0. App 1 must get it.
	apps := []AppDemand{
		{App: 0, Budget: 2, LocalJobs: 5, TotalJobs: 5, LocalTasks: 5, TotalTasks: 5,
			Jobs: []JobDemand{{Job: 1, Tasks: []TaskDemand{task(1, 0, 0)}}}},
		{App: 1, Budget: 2, LocalJobs: 0, TotalJobs: 5, LocalTasks: 0, TotalTasks: 5,
			Jobs: []JobDemand{{Job: 2, Tasks: []TaskDemand{task(1, 0, 0)}}}},
	}
	plan := Allocate(apps, []ExecInfo{{ID: 0, Node: 0}}, Options{FillToBudget: false})
	if len(plan.Assignments) != 1 || plan.Assignments[0].App != 1 {
		t.Fatalf("hot executor went to %+v, want app 1 (least localized)", plan.Assignments)
	}
}

func TestTieBreakByLocalTasks(t *testing.T) {
	// Equal job locality (0/1 each); app 1 has lower task locality history.
	apps := []AppDemand{
		{App: 0, Budget: 1, LocalTasks: 3, TotalTasks: 4,
			Jobs: []JobDemand{{Job: 1, Tasks: []TaskDemand{task(1, 0, 0)}}}},
		{App: 1, Budget: 1, LocalTasks: 1, TotalTasks: 4,
			Jobs: []JobDemand{{Job: 2, Tasks: []TaskDemand{task(1, 0, 0)}}}},
	}
	plan := Allocate(apps, []ExecInfo{{ID: 0, Node: 0}}, Options{FillToBudget: false})
	if len(plan.Assignments) != 1 || plan.Assignments[0].App != 1 {
		t.Fatalf("executor went to %+v, want app 1 (tie-break on task locality)", plan.Assignments)
	}
}

func TestEmptyInputs(t *testing.T) {
	if p := Allocate(nil, nil, DefaultOptions()); len(p.Assignments) != 0 {
		t.Fatal("non-empty plan from empty inputs")
	}
	if p := Allocate([]AppDemand{{App: 0, Budget: 5}}, nil, DefaultOptions()); len(p.Assignments) != 0 {
		t.Fatal("assigned executors from an empty pool")
	}
	if p := Allocate(nil, execs(3), DefaultOptions()); len(p.Assignments) != 0 {
		t.Fatal("assigned executors to no apps")
	}
}

func TestReplicaChoice(t *testing.T) {
	// Task's block has replicas on nodes 1 and 3; only node 3 has an idle
	// executor.
	apps := []AppDemand{{App: 0, Budget: 1, Jobs: []JobDemand{
		{Job: 1, Tasks: []TaskDemand{task(1, 0, 1, 3)}},
	}}}
	idle := []ExecInfo{{ID: 7, Node: 3}, {ID: 9, Node: 5}}
	plan := Allocate(apps, idle, Options{FillToBudget: false})
	if len(plan.Assignments) != 1 || plan.Assignments[0].Exec != 7 || !plan.Assignments[0].Local {
		t.Fatalf("plan = %+v, want local assignment of executor 7", plan.Assignments)
	}
}

// Property: plans never violate structural invariants — each executor used
// at most once, budgets respected, Local flags truthful.
func TestQuickPlanInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		nodes := rng.IntRange(2, 10)
		var idle []ExecInfo
		id := 0
		for n := 0; n < nodes; n++ {
			for k := 0; k < rng.IntRange(0, 2); k++ {
				idle = append(idle, ExecInfo{ID: id, Node: n})
				id++
			}
		}
		nodeOf := map[int]int{}
		for _, e := range idle {
			nodeOf[e.ID] = e.Node
		}
		var apps []AppDemand
		nApps := rng.IntRange(1, 4)
		blockID := hdfs.BlockID(0)
		for a := 0; a < nApps; a++ {
			app := AppDemand{App: a, Budget: rng.IntRange(0, 6), Held: rng.IntRange(0, 2)}
			for j := 0; j < rng.IntRange(0, 3); j++ {
				jd := JobDemand{Job: a*100 + j}
				for k := 0; k < rng.IntRange(1, 4); k++ {
					reps := rng.Sample(nodes, rng.IntRange(1, min(3, nodes)))
					jd.Tasks = append(jd.Tasks, TaskDemand{Task: k, Block: blockID, Nodes: reps})
					blockID++
				}
				app.Jobs = append(app.Jobs, jd)
			}
			apps = append(apps, app)
		}
		opts := DefaultOptions()
		if rng.Bool(0.5) {
			opts.FillToBudget = false
		}
		if rng.Bool(0.3) {
			opts.Intra = FairnessIntra{}
		}
		plan := Allocate(apps, idle, opts)

		usedExec := map[int]bool{}
		perApp := map[int]int{}
		for _, as := range plan.Assignments {
			if usedExec[as.Exec] {
				return false
			}
			usedExec[as.Exec] = true
			perApp[as.App]++
			if as.Node != nodeOf[as.Exec] {
				return false
			}
			if as.Local {
				// The executor's node must hold the task's block.
				ok := false
				for _, ap := range apps {
					if ap.App != as.App {
						continue
					}
					for _, jd := range ap.Jobs {
						if jd.Job != as.Job {
							continue
						}
						for _, td := range jd.Tasks {
							if td.Task == as.Task && td.Block == as.Block {
								for _, n := range td.Nodes {
									if n == as.Node {
										ok = true
									}
								}
							}
						}
					}
				}
				if !ok {
					return false
				}
			}
		}
		for _, ap := range apps {
			allowed := ap.Budget - ap.Held
			if allowed < 0 {
				allowed = 0 // already over budget: nothing new may be added
			}
			if perApp[ap.App] > allowed {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Custody's achieved max-min fraction of local tasks never exceeds
// the fractional concurrent-flow upper bound.
func TestQuickUpperBoundHolds(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		nodes := rng.IntRange(2, 6)
		idle := execs(nodes)
		var apps []AppDemand
		nApps := rng.IntRange(1, 3)
		for a := 0; a < nApps; a++ {
			app := AppDemand{App: a, Budget: nodes}
			jd := JobDemand{Job: a}
			for k := 0; k < rng.IntRange(1, 4); k++ {
				reps := rng.Sample(nodes, 1)
				jd.Tasks = append(jd.Tasks, TaskDemand{Task: k, Block: hdfs.BlockID(a*10 + k), Nodes: reps})
			}
			app.Jobs = append(app.Jobs, jd)
			apps = append(apps, app)
		}
		bound := FractionalMaxMin(apps, idle, 1e-3)
		plan := Allocate(apps, idle, Options{FillToBudget: false})
		localPerApp := map[int]int{}
		for _, as := range plan.Assignments {
			if as.Local {
				localPerApp[as.App]++
			}
		}
		worst := 1.0
		for _, ap := range apps {
			total := 0
			for _, j := range ap.Jobs {
				total += len(j.Tasks)
			}
			frac := float64(localPerApp[ap.App]) / float64(total)
			if frac < worst {
				worst = frac
			}
		}
		return worst <= bound+5e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the greedy intra-app objective is at least half the optimum
// (2-approximation, §IV-B) and never exceeds it.
func TestQuickGreedyTwoApprox(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		nodes := rng.IntRange(2, 8)
		idle := execs(nodes)
		var jobs []JobDemand
		for j := 0; j < rng.IntRange(1, 4); j++ {
			jd := JobDemand{Job: j}
			for k := 0; k < rng.IntRange(1, 4); k++ {
				jd.Tasks = append(jd.Tasks, TaskDemand{
					Task: k, Block: hdfs.BlockID(j*10 + k),
					Nodes: rng.Sample(nodes, rng.IntRange(1, min(2, nodes))),
				})
			}
			jobs = append(jobs, jd)
		}
		budget := rng.IntRange(1, nodes)
		greedy, _ := GreedyIntraObjective(jobs, idle, budget)
		opt := OptimalIntraObjective(jobs, idle, budget)
		if greedy > opt+1e-9 {
			return false
		}
		return greedy*2+1e-9 >= opt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTaskLocalityUpperBound(t *testing.T) {
	jobs := []JobDemand{{Job: 1, Tasks: []TaskDemand{
		task(1, 0, 0), task(2, 0, 0), // both tasks need node 0
	}}}
	// Two executors on node 0: both tasks can be local.
	ex := []ExecInfo{{ID: 0, Node: 0}, {ID: 1, Node: 0}}
	if got := TaskLocalityUpperBound(jobs, ex); got != 2 {
		t.Fatalf("upper bound = %d, want 2", got)
	}
	// One executor on node 0: only one task can be local.
	if got := TaskLocalityUpperBound(jobs, ex[:1]); got != 1 {
		t.Fatalf("upper bound = %d, want 1", got)
	}
}

func TestIntraObjective(t *testing.T) {
	jobs := []JobDemand{
		{Job: 1, Tasks: []TaskDemand{task(1, 0, 0), task(2, 1, 1)}},
		{Job: 2, Tasks: []TaskDemand{task(1, 2, 2)}},
	}
	got := IntraObjective(jobs, map[int]int{1: 2, 2: 0})
	if math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("objective = %v, want 1.0", got)
	}
	got = IntraObjective(jobs, map[int]int{1: 1, 2: 1})
	if math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("objective = %v, want 1.5", got)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Property: two applications with identical demands and budgets end an
// allocation round with (nearly) the same number of perfectly-local JOBS —
// Algorithm 1 balances the percentage of local jobs, not local tasks (the
// counts of local tasks can legitimately diverge when jobs are partially
// satisfiable). "Nearly": indivisible jobs allow a difference of one.
func TestQuickSymmetricAppsJobFairness(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		nodes := rng.IntRange(4, 12)
		idle := execs(nodes)
		mkJobs := func() []JobDemand {
			var jobs []JobDemand
			r := rng.Fork("jobs") // identical stream for both apps
			for j := 0; j < r.IntRange(1, 3); j++ {
				jd := JobDemand{Job: j}
				for k := 0; k < r.IntRange(1, 4); k++ {
					jd.Tasks = append(jd.Tasks, TaskDemand{
						Task: k, Block: hdfs.BlockID(j*10 + k),
						Nodes: r.Sample(nodes, 1),
					})
				}
				jobs = append(jobs, jd)
			}
			return jobs
		}
		budget := rng.IntRange(1, nodes)
		apps := []AppDemand{
			{App: 0, Budget: budget, Jobs: mkJobs()},
			{App: 1, Budget: budget, Jobs: mkJobs()},
		}
		plan := Allocate(apps, idle, Options{FillToBudget: false})
		perJob := map[[2]int]int{}
		for _, as := range plan.Assignments {
			if as.Local {
				perJob[[2]int{as.App, as.Job}]++
			}
		}
		localJobs := map[int]int{}
		for _, a := range apps {
			for _, j := range a.Jobs {
				if perJob[[2]int{a.App, j.Job}] == len(j.Tasks) {
					localJobs[a.App]++
				}
			}
		}
		diff := localJobs[0] - localJobs[1]
		if diff < 0 {
			diff = -diff
		}
		return diff <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: with FillToBudget off, every assignment is locality-carrying.
func TestQuickNoFillMeansAllLocal(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		nodes := rng.IntRange(2, 10)
		idle := execs(nodes)
		var apps []AppDemand
		for a := 0; a < rng.IntRange(1, 3); a++ {
			ad := AppDemand{App: a, Budget: rng.IntRange(1, nodes), ExtraTasks: rng.IntRange(0, 3)}
			jd := JobDemand{Job: 0}
			for k := 0; k < rng.IntRange(1, 5); k++ {
				jd.Tasks = append(jd.Tasks, TaskDemand{
					Task: k, Block: hdfs.BlockID(a*100 + k),
					Nodes: rng.Sample(nodes, rng.IntRange(1, 2)),
				})
			}
			ad.Jobs = []JobDemand{jd}
			apps = append(apps, ad)
		}
		plan := Allocate(apps, idle, Options{FillToBudget: false})
		for _, as := range plan.Assignments {
			if !as.Local {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: multi-slot executors are never split across applications.
func TestQuickMultiSlotSingleOwner(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		nodes := rng.IntRange(2, 6)
		var idle []ExecInfo
		for n := 0; n < nodes; n++ {
			idle = append(idle, ExecInfo{ID: n, Node: n, Slots: rng.IntRange(1, 4)})
		}
		var apps []AppDemand
		for a := 0; a < rng.IntRange(2, 4); a++ {
			ad := AppDemand{App: a, Budget: rng.IntRange(1, nodes)}
			jd := JobDemand{Job: 0}
			for k := 0; k < rng.IntRange(1, 6); k++ {
				jd.Tasks = append(jd.Tasks, TaskDemand{
					Task: k, Block: hdfs.BlockID(a*100 + k),
					Nodes: rng.Sample(nodes, 1),
				})
			}
			ad.Jobs = []JobDemand{jd}
			apps = append(apps, ad)
		}
		plan := Allocate(apps, idle, DefaultOptions())
		owner := map[int]int{}
		slotUse := map[int]int{}
		for _, as := range plan.Assignments {
			if prev, ok := owner[as.Exec]; ok && prev != as.App {
				return false // executor split across apps
			}
			owner[as.Exec] = as.App
			slotUse[as.Exec]++
		}
		for _, e := range idle {
			if slotUse[e.ID] > e.Slots {
				return false // over-subscribed slots
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkAllocatePaperScale measures one allocation round at the paper's
// 100-node scale: 4 applications, ~50 pending tasks each, 200 idle
// executors. Custody runs this on every job arrival/departure.
func BenchmarkAllocatePaperScale(b *testing.B) {
	rng := xrand.New(77)
	const nodes = 100
	var idle []ExecInfo
	for n := 0; n < nodes; n++ {
		idle = append(idle, ExecInfo{ID: 2 * n, Node: n, Slots: 4})
		idle = append(idle, ExecInfo{ID: 2*n + 1, Node: n, Slots: 4})
	}
	var apps []AppDemand
	block := 0
	for a := 0; a < 4; a++ {
		ad := AppDemand{App: a, Budget: 50}
		for j := 0; j < 2; j++ {
			jd := JobDemand{Job: j}
			for k := 0; k < 25; k++ {
				jd.Tasks = append(jd.Tasks, TaskDemand{
					Task: k, Block: hdfs.BlockID(block), Nodes: rng.Sample(nodes, 3),
				})
				block++
			}
			ad.Jobs = append(ad.Jobs, jd)
		}
		apps = append(apps, ad)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan := Allocate(apps, idle, DefaultOptions())
		if len(plan.Assignments) == 0 {
			b.Fatal("empty plan")
		}
	}
}

// BenchmarkOptimalIntra measures the exact min-cost-flow comparator.
func BenchmarkOptimalIntra(b *testing.B) {
	rng := xrand.New(78)
	const nodes = 50
	idle := execs(nodes)
	var jobs []JobDemand
	block := 0
	for j := 0; j < 5; j++ {
		jd := JobDemand{Job: j}
		for k := 0; k < 10; k++ {
			jd.Tasks = append(jd.Tasks, TaskDemand{Task: k, Block: hdfs.BlockID(block), Nodes: rng.Sample(nodes, 3)})
			block++
		}
		jobs = append(jobs, jd)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if OptimalIntraObjective(jobs, idle, 30) <= 0 {
			b.Fatal("zero objective")
		}
	}
}
