//go:build !custodymutateshard

package core

// mutateShardTieStamp is the build-tag-gated seeded bug used by the model
// checker's shard mutation smoke test (internal/modelcheck): when the
// custodymutateshard tag is set, the sharded index build scans executors in
// reverse, so per-node executor lists carry descending IDs — breaking the
// ascending (executor ID, sequence) tie-stamp ordering that the merge
// contract of DESIGN.md §14 relies on and making multi-shard rounds pick
// the wrong (highest-ID) executor. In normal builds the constant is false
// and the compiler eliminates the mutated branch entirely.
const mutateShardTieStamp = false
