//go:build !custodymutate

package core

// mutateInvertFairness is the build-tag-gated seeded bug used by the
// model-based checker's mutation smoke test (internal/modelcheck): when the
// custodymutate tag is set, MINLOCALITY's job-locality comparison is
// inverted, so Algorithm 1 picks the MOST-localized application first — a
// direct violation of the fairness-key monotonicity invariant. In normal
// builds the constant is false and the compiler eliminates the inverted
// branch entirely, so tagged-off behavior is bit-identical to the
// pre-mutation code.
const mutateInvertFairness = false
