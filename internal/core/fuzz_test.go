package core

import (
	"testing"

	"repro/internal/hdfs"
)

// FuzzAllocate decodes arbitrary bytes into an allocation instance and
// checks the structural invariants of the resulting plan: no executor slot
// oversubscription, no executor split across applications, budgets
// respected, and truthful Local flags. Run with `go test -fuzz=FuzzAllocate`
// for continuous fuzzing; the seed corpus runs under plain `go test`.
func FuzzAllocate(f *testing.F) {
	f.Add([]byte{3, 2, 2, 1, 0, 1, 2, 0, 1, 2})
	f.Add([]byte{8, 4, 1, 3, 3, 0, 0, 0, 0, 7, 7, 7})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		next := func(def, mod byte) int {
			if len(data) == 0 {
				return int(def)
			}
			v := data[0]
			data = data[1:]
			if mod == 0 {
				return int(v)
			}
			return int(v % mod)
		}
		nodes := next(2, 8) + 1
		var idle []ExecInfo
		nExec := next(2, 12)
		for i := 0; i < nExec; i++ {
			idle = append(idle, ExecInfo{ID: i, Node: next(0, byte(nodes)), Slots: next(1, 4) + 1})
		}
		nApps := next(1, 3) + 1
		var apps []AppDemand
		block := 0
		for a := 0; a < nApps; a++ {
			ad := AppDemand{App: a, Budget: next(1, byte(nExec+1)), Held: next(0, 3), ExtraTasks: next(0, 4)}
			nJobs := next(0, 3)
			for j := 0; j < nJobs; j++ {
				jd := JobDemand{Job: j}
				nTasks := next(1, 4) + 1
				for k := 0; k < nTasks; k++ {
					nReps := next(1, 3) + 1
					var reps []int
					for r := 0; r < nReps; r++ {
						reps = append(reps, next(0, byte(nodes)))
					}
					jd.Tasks = append(jd.Tasks, TaskDemand{Task: k, Block: hdfs.BlockID(block), Nodes: reps})
					block++
				}
				ad.Jobs = append(ad.Jobs, jd)
			}
			apps = append(apps, ad)
		}

		for _, opts := range []Options{DefaultOptions(), {FillToBudget: false}, {FillToBudget: true, Intra: FairnessIntra{}}} {
			plan := Allocate(apps, idle, opts)
			owner := map[int]int{}
			slotUse := map[int]int{}
			perAppNew := map[int]int{}
			nodeOf := map[int]int{}
			slotsOf := map[int]int{}
			for _, e := range idle {
				nodeOf[e.ID] = e.Node
				slotsOf[e.ID] = e.slots()
			}
			for _, as := range plan.Assignments {
				if prev, ok := owner[as.Exec]; ok {
					if prev != as.App {
						t.Fatalf("executor %d split across apps %d and %d", as.Exec, prev, as.App)
					}
				} else {
					owner[as.Exec] = as.App
					perAppNew[as.App]++
				}
				slotUse[as.Exec]++
				if slotUse[as.Exec] > slotsOf[as.Exec] {
					t.Fatalf("executor %d oversubscribed: %d > %d", as.Exec, slotUse[as.Exec], slotsOf[as.Exec])
				}
				if as.Node != nodeOf[as.Exec] {
					t.Fatalf("assignment node mismatch: %+v", as)
				}
				if as.Local {
					ok := false
					for _, ap := range apps {
						if ap.App != as.App {
							continue
						}
						for _, jd := range ap.Jobs {
							if jd.Job != as.Job {
								continue
							}
							for _, td := range jd.Tasks {
								if td.Task != as.Task {
									continue
								}
								for _, n := range td.Nodes {
									if n == as.Node {
										ok = true
									}
								}
							}
						}
					}
					if !ok {
						t.Fatalf("untruthful Local flag: %+v", as)
					}
				}
			}
			for _, ap := range apps {
				allowed := ap.Budget - ap.Held
				if allowed < 0 {
					allowed = 0
				}
				if perAppNew[ap.App] > allowed {
					t.Fatalf("app %d claimed %d new executors, budget allows %d", ap.App, perAppNew[ap.App], allowed)
				}
			}
		}
	})
}
