package core

import (
	"sort"
)

// Session carries the allocator's incremental state across allocation
// rounds: the per-app locality indices (node → pending-task postings,
// per-task availability counters), the executor pool's node indexes, and
// every scratch arena the round needs. A manager that allocates repeatedly
// (internal/manager's Custody driver round-trips) keeps one Session alive so
// each round reuses the previous round's memory instead of re-deriving the
// index structures from scratch; the package-level Allocate creates a
// throwaway Session per call.
//
// A Session is not safe for concurrent use. Plans returned by Allocate are
// freshly allocated and remain valid after further rounds.
type Session struct {
	st allocator

	appArena  []appState
	jobArena  []jobState
	taskArena []taskState
}

// NewSession returns an empty allocation session.
func NewSession() *Session {
	s := &Session{}
	s.st.pool = &execPool{
		byNode: map[int]int32{},
		naIdx:  map[naKey]int32{},
	}
	return s
}

// Allocate runs one allocation round over the session's reusable state. It
// is semantically identical to the package-level Allocate (and byte-identical
// to AllocateReference): only the memory is warm, never the decisions.
func (s *Session) Allocate(apps []AppDemand, idle []ExecInfo, opts Options) Plan {
	if opts.Intra == nil {
		opts.Intra = PriorityIntra{}
	}
	st := &s.st
	st.opts = opts
	st.obs = opts.Observer
	st.decPending = false
	st.plan = nil // handed to the caller; must not be reused
	if st.obs != nil {
		st.obs.BeginRound(len(apps), len(idle))
	}
	st.pool.reset(idle)
	s.buildApps(apps)
	st.heapInit()
	st.run()
	return Plan{Assignments: st.plan}
}

// buildApps fills the app/job/task arenas from the demand snapshot and
// posts every pending task's replica nodes into the pool's locality index.
func (s *Session) buildApps(apps []AppDemand) {
	st := &s.st
	nJobs, nTasks := 0, 0
	for i := range apps {
		nJobs += len(apps[i].Jobs)
		for j := range apps[i].Jobs {
			nTasks += len(apps[i].Jobs[j].Tasks)
		}
	}
	s.appArena = grow(s.appArena, len(apps))
	s.jobArena = grow(s.jobArena, nJobs)
	s.taskArena = grow(s.taskArena, nTasks)
	st.apps = st.apps[:0]
	st.heap = st.heap[:0]

	jb, tb := 0, 0
	for i := range apps {
		d := apps[i]
		a := &s.appArena[i]
		resBuf := a.resHeap[:0]
		*a = appState{
			d:       d,
			idx:     i,
			held:    d.Held,
			resHeap: resBuf,
			denJobs: d.TotalJobs + len(d.Jobs),
		}
		a.jobs = s.jobArena[jb : jb+len(d.Jobs)]
		jb += len(d.Jobs)
		denTasks := d.TotalTasks
		for k := range d.Jobs {
			jd := d.Jobs[k]
			j := &a.jobs[k]
			j.d = jd
			j.remaining = len(jd.Tasks)
			j.tasks = s.taskArena[tb : tb+len(jd.Tasks)]
			tb += len(jd.Tasks)
			denTasks += len(jd.Tasks)
			a.wantSum += j.remaining
			for x := range jd.Tasks {
				t := &j.tasks[x]
				*t = taskState{d: &jd.Tasks[x], owner: a, job: j}
				st.pool.post(t)
				if t.unresAvail > 0 {
					a.satUnres++
				}
			}
		}
		a.denTasks = denTasks
		st.apps = append(st.apps, a)
		st.heap = append(st.heap, a)
	}
}

// grow returns buf resliced to length n, reusing its backing array and
// growing it when needed. Entries are NOT zeroed: callers fully initialize
// every entry they use (preserving inner-slice capacity for reuse).
func grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		buf = append(buf[:cap(buf)], make([]T, n-cap(buf))...)
	}
	return buf[:n]
}

// ---- executor pool with incremental locality index ----

// poolExec is one idle executor's state inside the pool. Once a slot is
// taken by an application, the executor is reserved: its remaining slots may
// only serve the same application (an executor belongs to one app,
// constraint (2)).
type poolExec struct {
	info     ExecInfo
	free     int32
	reserved int32 // 1 when reserved (ownership tracked per claim), 0 free
	app      int   // reserving app ID; meaningful when reserved == 1
}

// nodeState indexes one node's executors and the pending tasks posted to it.
type nodeState struct {
	execIdx []int32 // indices into pool.execs, ascending executor ID
	// cursor is the node's min-unreserved scan position. Unreserved
	// executors at a node are always consumed lowest-ID-first (every take
	// path picks the per-node or global minimum), so entries behind the
	// cursor are permanently reserved and the scan never backs up.
	cursor int32
	unres  int32 // unreserved executors remaining at this node
	// posts holds one entry per (pending task, replica-on-this-node)
	// occurrence, across all apps; walked once when the node's last
	// unreserved executor is claimed (the unres-drain transition).
	posts []*taskState
}

// nodeApp is the per-(node, app) slice of the index: the app's posted tasks
// on the node and the app's claimed executors there.
type nodeApp struct {
	posts   []*taskState
	execIdx []int32 // claimed executors, ascending ID by construction
	cursor  int32   // min-free scan position; free never recovers in-round
	ownFree int32   // claimed executors with free slots remaining
}

type naKey struct {
	node int32
	app  int
}

// execPool indexes idle executor slots by node for locality lookups, with
// availability counters that keep per-app satisfiability (appState.satOwn /
// satUnres) current in amortized O(1) per grant.
type execPool struct {
	execs []poolExec // ascending executor ID
	size  int        // total free slots

	nodes    []nodeState
	nodesLen int
	byNode   map[int]int32 // node ID → index into nodes

	na     []nodeApp
	naLen  int
	naIdx  map[naKey]int32
	cursor int // global min-unreserved scan over execs (takeAny)
}

// reset rebuilds the pool for a new round, reusing all arenas.
func (p *execPool) reset(idle []ExecInfo) {
	p.execs = grow(p.execs, len(idle))
	for i, e := range idle {
		p.execs[i] = poolExec{info: e, free: int32(e.slots()), app: -1}
	}
	sort.Slice(p.execs, func(i, j int) bool { return p.execs[i].info.ID < p.execs[j].info.ID })
	p.size = 0
	p.nodesLen = 0
	p.naLen = 0
	p.cursor = 0
	clear(p.byNode)
	clear(p.naIdx)
	for i := range p.execs {
		pe := &p.execs[i]
		ni, ok := p.byNode[pe.info.Node]
		if !ok {
			ni = p.newNode()
			p.byNode[pe.info.Node] = ni
		}
		ns := &p.nodes[ni]
		ns.execIdx = append(ns.execIdx, int32(i))
		ns.unres++
		p.size += int(pe.free)
	}
}

func (p *execPool) newNode() int32 {
	if p.nodesLen < len(p.nodes) {
		ns := &p.nodes[p.nodesLen]
		ns.execIdx = ns.execIdx[:0]
		ns.posts = ns.posts[:0]
		ns.cursor = 0
		ns.unres = 0
	} else {
		p.nodes = append(p.nodes, nodeState{})
	}
	p.nodesLen++
	return int32(p.nodesLen - 1)
}

// nodeApp returns the (node, app) index entry, creating it on first use.
//
//custody:noalloc
func (p *execPool) nodeApp(ni int32, app int) int32 {
	key := naKey{node: ni, app: app}
	if i, ok := p.naIdx[key]; ok {
		return i
	}
	var i int32
	if p.naLen < len(p.na) {
		i = int32(p.naLen)
		na := &p.na[i]
		na.posts = na.posts[:0]
		na.execIdx = na.execIdx[:0]
		na.cursor = 0
		na.ownFree = 0
	} else {
		i = int32(len(p.na))
		p.na = append(p.na, nodeApp{}) //custody:ignore noalloc na arena grows only until the (node, app) working set is warm
	}
	p.naLen++
	p.naIdx[key] = i
	return i
}

// post registers a pending task's replica nodes in the locality index and
// initializes its unreserved-availability counter. Nodes without executors
// are not posted: they can never satisfy the task and never transition.
//
//custody:noalloc
func (p *execPool) post(t *taskState) {
	for _, n := range t.d.Nodes {
		ni, ok := p.byNode[n]
		if !ok {
			continue
		}
		ns := &p.nodes[ni]
		ns.posts = append(ns.posts, t) //custody:ignore noalloc posts arenas keep their capacity across rounds; growth stops once warm
		nai := p.nodeApp(ni, t.owner.d.App)
		na := &p.na[nai]
		na.posts = append(na.posts, t) //custody:ignore noalloc posts arenas keep their capacity across rounds; growth stops once warm
		t.unresAvail++                 // at build time every executor is unreserved
	}
}

// minUnres returns the node's lowest-ID unreserved executor, or -1.
//
//custody:noalloc
func (p *execPool) minUnres(ns *nodeState) int32 {
	for int(ns.cursor) < len(ns.execIdx) {
		ei := ns.execIdx[ns.cursor]
		if p.execs[ei].reserved == 0 {
			return ei
		}
		ns.cursor++
	}
	return -1
}

// minOwnFree returns the app's lowest-ID claimed executor with free slots
// on the node, or -1.
//
//custody:noalloc
func (p *execPool) minOwnFree(nai int32) int32 {
	na := &p.na[nai]
	for int(na.cursor) < len(na.execIdx) {
		ei := na.execIdx[na.cursor]
		if p.execs[ei].free > 0 {
			return ei
		}
		na.cursor++
	}
	return -1
}

// better reports whether cand beats best under the reference pick order:
// app-reserved executors first (no budget cost), then lowest executor ID;
// first-considered wins ties.
//
//custody:noalloc
func (p *execPool) better(cand int32, candRes bool, best int32, bestRes bool) bool {
	if best < 0 {
		return true
	}
	if candRes != bestRes {
		return candRes
	}
	return p.execs[cand].info.ID < p.execs[best].info.ID
}

// takeOnAny takes one slot on one of the given nodes for the app. Slots on
// executors already reserved for the app are preferred (they are free with
// respect to the budget); ties break toward the lowest executor ID.
// newExec reports whether a previously-unreserved executor was claimed.
//
//custody:noalloc
func (p *execPool) takeOnAny(nodes []int, a *appState) (e ExecInfo, newExec, ok bool) {
	allowNew := a.allowNew()
	best := int32(-1)
	bestRes := false
	for _, n := range nodes {
		ni, present := p.byNode[n]
		if !present {
			continue
		}
		if nai, has := p.naIdx[naKey{node: ni, app: a.d.App}]; has {
			if ei := p.minOwnFree(nai); ei >= 0 && p.better(ei, true, best, bestRes) {
				best, bestRes = ei, true
			}
		}
		if allowNew {
			ns := &p.nodes[ni]
			if ns.unres > 0 {
				if ei := p.minUnres(ns); ei >= 0 && p.better(ei, false, best, bestRes) {
					best, bestRes = ei, false
				}
			}
		}
	}
	if best < 0 {
		return ExecInfo{}, false, false
	}
	return p.takeSlot(best, a)
}

// takeAny takes one slot anywhere for the app: its lowest-ID claimed
// executor with free slots, else (budget permitting) the globally lowest-ID
// unreserved executor.
//
//custody:noalloc
func (p *execPool) takeAny(a *appState) (e ExecInfo, newExec, ok bool) {
	for len(a.resHeap) > 0 {
		ei := a.resHeap[0]
		if p.execs[ei].free > 0 {
			return p.takeSlot(ei, a)
		}
		popIntHeap(&a.resHeap) // exhausted executor; discard lazily
	}
	if a.allowNew() {
		for p.cursor < len(p.execs) {
			if p.execs[p.cursor].reserved == 0 {
				return p.takeSlot(int32(p.cursor), a)
			}
			p.cursor++
		}
	}
	return ExecInfo{}, false, false
}

// takeSlot consumes one slot on the executor for the app, firing the
// availability transitions that keep satisfiability counters current:
//
//   - claiming a node's last unreserved executor drains unresAvail for
//     every task posted there (each node drains at most once per round);
//   - the app's first free claimed executor on a node raises ownAvail for
//     the app's tasks posted there, and losing the last one drains it.
//
//custody:noalloc
func (p *execPool) takeSlot(ei int32, a *appState) (ExecInfo, bool, bool) {
	pe := &p.execs[ei]
	newExec := pe.reserved == 0
	ni := p.byNode[pe.info.Node]
	if newExec {
		pe.reserved = 1
		pe.app = a.d.App
		ns := &p.nodes[ni]
		ns.unres--
		if ns.unres == 0 {
			p.drainUnres(ns)
		}
		nai := p.nodeApp(ni, a.d.App)
		na := &p.na[nai]
		na.execIdx = append(na.execIdx, ei) //custody:ignore noalloc execIdx arenas keep their capacity across rounds; growth stops once warm
		pushIntHeap(&a.resHeap, ei)
		pe.free--
		if pe.free > 0 {
			na.ownFree++
			if na.ownFree == 1 {
				p.raiseOwn(na)
			}
		}
	} else {
		nai := p.naIdx[naKey{node: ni, app: a.d.App}] // created at claim time
		na := &p.na[nai]
		pe.free--
		if pe.free == 0 {
			na.ownFree--
			if na.ownFree == 0 {
				p.drainOwn(na)
			}
		}
	}
	p.size--
	return pe.info, newExec, true
}

//custody:noalloc
func (p *execPool) drainUnres(ns *nodeState) {
	for _, t := range ns.posts {
		if t.satisfied {
			continue
		}
		t.unresAvail--
		if t.unresAvail == 0 {
			t.owner.satUnres--
		}
	}
}

//custody:noalloc
func (p *execPool) raiseOwn(na *nodeApp) {
	for _, t := range na.posts {
		if t.satisfied {
			continue
		}
		if t.ownAvail == 0 {
			t.owner.satOwn++
		}
		t.ownAvail++
	}
}

//custody:noalloc
func (p *execPool) drainOwn(na *nodeApp) {
	for _, t := range na.posts {
		if t.satisfied {
			continue
		}
		t.ownAvail--
		if t.ownAvail == 0 {
			t.owner.satOwn--
		}
	}
}

// ---- int32 min-heap (executor indices; index order is ID order) ----

//custody:noalloc
func pushIntHeap(h *[]int32, v int32) {
	s := append(*h, v) //custody:ignore noalloc resHeap keeps its capacity across rounds; growth stops once warm
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent] <= s[i] {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
	*h = s
}

//custody:noalloc
func popIntHeap(h *[]int32) int32 {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && s[r] < s[l] {
			m = r
		}
		if s[i] <= s[m] {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	*h = s
	return top
}
