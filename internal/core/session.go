package core

import (
	"sort"
)

// Session carries the allocator's incremental state across allocation
// rounds: the per-app locality indices (node → pending-task postings,
// per-task availability counters), the executor pool's node indexes, and
// every scratch arena the round needs. A manager that allocates repeatedly
// (internal/manager's Custody driver round-trips) keeps one Session alive so
// each round reuses the previous round's memory instead of re-deriving the
// index structures from scratch; the package-level Allocate creates a
// throwaway Session per call.
//
// A Session is not safe for concurrent use. Plans returned by Allocate are
// freshly allocated and remain valid after further rounds.
type Session struct {
	st allocator

	appArena  []appState
	jobArena  []jobState
	taskArena []taskState
	jobMeta   []shardJobMeta // sharded-build scratch; see buildAppsSharded
	occOff    []int32        // sharded-build scratch: task i's replica occurrences are occ[occOff[i]:occOff[i+1]]
	occ       []int64        // sharded-build scratch: resolved (shard, node index) per occurrence, -1 if the node has no executors
}

// NewSession returns an empty allocation session.
func NewSession() *Session {
	s := &Session{}
	s.st.pool = &execPool{}
	return s
}

// Allocate runs one allocation round over the session's reusable state. It
// is semantically identical to the package-level Allocate (and byte-identical
// to AllocateReference): only the memory is warm, never the decisions.
func (s *Session) Allocate(apps []AppDemand, idle []ExecInfo, opts Options) Plan {
	if opts.Intra == nil {
		opts.Intra = PriorityIntra{}
	}
	st := &s.st
	st.opts = opts
	st.obs = opts.Observer
	st.decPending = false
	st.plan = nil // handed to the caller; must not be reused
	if st.obs != nil {
		st.obs.BeginRound(len(apps), len(idle))
	}
	st.pool.reset(idle, opts.Shards, opts.ShardFn)
	s.buildApps(apps)
	st.heapInit()
	st.run()
	return Plan{Assignments: st.plan}
}

// buildApps fills the app/job/task arenas from the demand snapshot and
// posts every pending task's replica nodes into the pool's locality index.
// With more than one shard the arena fill, posting walk, and availability
// counters run on the parallel worker phases in shard.go; the sequential
// loop below is the one-shard (default) path and the semantic model the
// sharded build must reproduce exactly.
func (s *Session) buildApps(apps []AppDemand) {
	st := &s.st
	nJobs, nTasks := 0, 0
	for i := range apps {
		nJobs += len(apps[i].Jobs)
		for j := range apps[i].Jobs {
			nTasks += len(apps[i].Jobs[j].Tasks)
		}
	}
	s.appArena = grow(s.appArena, len(apps))
	s.jobArena = grow(s.jobArena, nJobs)
	s.taskArena = grow(s.taskArena, nTasks)
	st.apps = st.apps[:0]
	st.heap = st.heap[:0]

	if st.pool.nShards > 1 {
		s.buildAppsSharded(apps, nJobs, nTasks)
		return
	}

	jb, tb := 0, 0
	for i := range apps {
		d := apps[i]
		a := &s.appArena[i]
		resBuf := a.resHeap[:0]
		*a = appState{
			d:       d,
			idx:     i,
			held:    d.Held,
			resHeap: resBuf,
			denJobs: d.TotalJobs + len(d.Jobs),
		}
		a.jobs = s.jobArena[jb : jb+len(d.Jobs)]
		jb += len(d.Jobs)
		denTasks := d.TotalTasks
		for k := range d.Jobs {
			jd := d.Jobs[k]
			j := &a.jobs[k]
			j.d = jd
			j.remaining = len(jd.Tasks)
			j.tasks = s.taskArena[tb : tb+len(jd.Tasks)]
			tb += len(jd.Tasks)
			denTasks += len(jd.Tasks)
			a.wantSum += j.remaining
			for x := range jd.Tasks {
				t := &j.tasks[x]
				*t = taskState{d: &jd.Tasks[x], owner: a, job: j}
				st.pool.post(t)
				if t.unresAvail > 0 {
					a.satUnres++
				}
			}
		}
		a.denTasks = denTasks
		st.apps = append(st.apps, a)
		st.heap = append(st.heap, a)
	}
}

// grow returns buf resliced to length n, reusing its backing array and
// growing it when needed. Entries are NOT zeroed: callers fully initialize
// every entry they use (preserving inner-slice capacity for reuse).
func grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		buf = append(buf[:cap(buf)], make([]T, n-cap(buf))...)
	}
	return buf[:n]
}

// ---- executor pool with incremental locality index ----

// poolExec is one idle executor's state inside the pool. Once a slot is
// taken by an application, the executor is reserved: its remaining slots may
// only serve the same application (an executor belongs to one app,
// constraint (2)).
type poolExec struct {
	info     ExecInfo
	free     int32
	reserved int32 // 1 when reserved (ownership tracked per claim), 0 free
	app      int   // reserving app ID; meaningful when reserved == 1
}

// nodeState indexes one node's executors and the pending tasks posted to it.
type nodeState struct {
	execIdx []int32 // indices into pool.execs, ascending executor ID
	// cursor is the node's min-unreserved scan position. Unreserved
	// executors at a node are always consumed lowest-ID-first (every take
	// path picks the per-node or global minimum), so entries behind the
	// cursor are permanently reserved and the scan never backs up.
	cursor int32
	unres  int32 // unreserved executors remaining at this node
	// posts holds one entry per (pending task, replica-on-this-node)
	// occurrence, across all apps; walked once when the node's last
	// unreserved executor is claimed (the unres-drain transition).
	posts []*taskState
}

// nodeApp is the per-(node, app) slice of the index: the app's posted tasks
// on the node and the app's claimed executors there.
type nodeApp struct {
	posts   []*taskState
	execIdx []int32 // claimed executors, ascending ID by construction
	cursor  int32   // min-free scan position; free never recovers in-round
	ownFree int32   // claimed executors with free slots remaining
}

type naKey struct {
	node int32
	app  int
}

// poolShard holds the node-keyed index structures for one build shard: the
// nodes whose IDs hash to the shard, their executor indexes, and the
// (node, app) slices of the locality index. With one shard (the default)
// the whole pool lives in shards[0]; with more, the shards are built by
// parallel workers writing disjoint arenas (see shard.go) and consulted by
// the sequential decision loop through shardFor, which routes each node to
// its owning shard. Executor entries themselves stay in execPool.execs —
// one global array in ascending executor-ID order — so every pick-order
// contract (lowest ID wins, app-reserved first) is shard-agnostic.
type poolShard struct {
	nodes    []nodeState
	nodesLen int
	byNode   map[int]int32 // node ID → index into nodes

	na    []nodeApp
	naLen int
	naIdx map[naKey]int32

	pre  []int32 // this shard's executor indices, ascending; filled by reset's partition pass
	size int     // free slots on this shard's nodes; merged in fixed shard order
}

// execPool indexes idle executor slots by node for locality lookups, with
// availability counters that keep per-app satisfiability (appState.satOwn /
// satUnres) current in amortized O(1) per grant.
type execPool struct {
	execs []poolExec // ascending executor ID
	size  int        // total free slots

	shards  []poolShard // arenas persist across rounds; first nShards active
	nShards int
	shardFn func(node int) int

	cursor int // global min-unreserved scan over execs (takeAny)
}

// reset rebuilds the pool for a new round, reusing all arenas. nShards and
// shardFn come from Options; with nShards > 1 the per-shard node indexes
// are built by parallel workers and their sizes merged in fixed shard
// order.
func (p *execPool) reset(idle []ExecInfo, nShards int, shardFn func(node int) int) {
	if nShards < 1 {
		nShards = 1
	}
	p.nShards = nShards
	p.shardFn = shardFn
	for len(p.shards) < nShards {
		p.shards = append(p.shards, poolShard{byNode: map[int]int32{}, naIdx: map[naKey]int32{}})
	}
	for s := 0; s < nShards; s++ {
		sh := &p.shards[s]
		sh.nodesLen = 0
		sh.naLen = 0
		sh.size = 0
		sh.pre = sh.pre[:0]
		clear(sh.byNode)
		clear(sh.naIdx)
	}
	p.execs = grow(p.execs, len(idle))
	for i, e := range idle {
		p.execs[i] = poolExec{info: e, free: int32(e.slots()), app: -1}
	}
	sort.Slice(p.execs, func(i, j int) bool { return p.execs[i].info.ID < p.execs[j].info.ID })
	p.size = 0
	p.cursor = 0
	if nShards == 1 {
		p.buildShard(0)
		p.size = p.shards[0].size
		return
	}
	// Partition pass: compute each executor's shard exactly once and hand
	// the index to that shard's pre-list. The scan follows the global
	// ID-ascending order, so every pre-list is ascending too — and total
	// build work stays ~flat in the shard count (at most one hash per
	// executor plus the same index inserts the one-shard build does),
	// instead of every worker re-scanning the full array. Executors sorted
	// by ID usually arrive node-clustered, so memoizing the last node's
	// shard skips most hash evaluations.
	lastNode, lastShard := 0, 0
	for i := range p.execs {
		n := p.execs[i].info.Node
		if i == 0 || n != lastNode {
			lastNode, lastShard = n, p.shardOf(n)
		}
		p.shards[lastShard].pre = append(p.shards[lastShard].pre, int32(i))
	}
	p.buildShardsParallel()
	for s := 0; s < nShards; s++ { // fixed shard order; sizes merge by sum
		p.size += p.shards[s].size
	}
}

// buildShard indexes shard s's executors — the whole ID-ordered array with
// one shard, the shard's pre-partitioned index list otherwise. Both walks
// follow ascending executor ID, so every per-node execIdx list comes out
// ascending — the tie-stamp ordering minUnres and the availability
// transitions rely on.
func (p *execPool) buildShard(s int) {
	sh := &p.shards[s]
	if p.nShards == 1 {
		for i := range p.execs {
			p.indexExec(sh, int32(i))
		}
		return
	}
	if mutateShardTieStamp {
		// Seeded bug (build tag custodymutateshard): walk the pre-list in
		// reverse, so per-node executor lists come out descending by ID —
		// breaking the tie-stamp ordering the merge contract guarantees.
		for x := len(sh.pre) - 1; x >= 0; x-- {
			p.indexExec(sh, sh.pre[x])
		}
		return
	}
	for _, i := range sh.pre {
		p.indexExec(sh, i)
	}
}

// indexExec registers executor i in shard sh's node index.
func (p *execPool) indexExec(sh *poolShard, i int32) {
	pe := &p.execs[i]
	ni, ok := sh.byNode[pe.info.Node]
	if !ok {
		ni = sh.newNode()
		sh.byNode[pe.info.Node] = ni
	}
	ns := &sh.nodes[ni]
	ns.execIdx = append(ns.execIdx, i)
	ns.unres++
	sh.size += int(pe.free)
}

func (sh *poolShard) newNode() int32 {
	if sh.nodesLen < len(sh.nodes) {
		ns := &sh.nodes[sh.nodesLen]
		ns.execIdx = ns.execIdx[:0]
		ns.posts = ns.posts[:0]
		ns.cursor = 0
		ns.unres = 0
	} else {
		sh.nodes = append(sh.nodes, nodeState{})
	}
	sh.nodesLen++
	return int32(sh.nodesLen - 1)
}

// nodeApp returns the (node, app) index entry, creating it on first use.
//
//custody:noalloc
func (sh *poolShard) nodeApp(ni int32, app int) int32 {
	key := naKey{node: ni, app: app}
	if i, ok := sh.naIdx[key]; ok {
		return i
	}
	var i int32
	if sh.naLen < len(sh.na) {
		i = int32(sh.naLen)
		na := &sh.na[i]
		na.posts = na.posts[:0]
		na.execIdx = na.execIdx[:0]
		na.cursor = 0
		na.ownFree = 0
	} else {
		i = int32(len(sh.na))
		sh.na = append(sh.na, nodeApp{}) //custody:ignore noalloc na arena grows only until the (node, app) working set is warm
	}
	sh.naLen++
	sh.naIdx[key] = i
	return i
}

// post registers a pending task's replica nodes in the locality index and
// initializes its unreserved-availability counter. Nodes without executors
// are not posted: they can never satisfy the task and never transition.
// Single-shard build path; the sharded build reproduces the same postings
// via the per-shard posting walk in shard.go.
//
//custody:noalloc
func (p *execPool) post(t *taskState) {
	for _, n := range t.d.Nodes {
		sh := p.shardFor(n)
		ni, ok := sh.byNode[n]
		if !ok {
			continue
		}
		ns := &sh.nodes[ni]
		ns.posts = append(ns.posts, t) //custody:ignore noalloc posts arenas keep their capacity across rounds; growth stops once warm
		nai := sh.nodeApp(ni, t.owner.d.App)
		na := &sh.na[nai]
		na.posts = append(na.posts, t) //custody:ignore noalloc posts arenas keep their capacity across rounds; growth stops once warm
		t.unresAvail++                 // at build time every executor is unreserved
	}
}

// minUnres returns the node's lowest-ID unreserved executor, or -1.
//
//custody:noalloc
func (p *execPool) minUnres(ns *nodeState) int32 {
	for int(ns.cursor) < len(ns.execIdx) {
		ei := ns.execIdx[ns.cursor]
		if p.execs[ei].reserved == 0 {
			return ei
		}
		ns.cursor++
	}
	return -1
}

// minOwnFree returns the app's lowest-ID claimed executor with free slots
// on the node, or -1.
//
//custody:noalloc
func (p *execPool) minOwnFree(na *nodeApp) int32 {
	for int(na.cursor) < len(na.execIdx) {
		ei := na.execIdx[na.cursor]
		if p.execs[ei].free > 0 {
			return ei
		}
		na.cursor++
	}
	return -1
}

// better reports whether cand beats best under the reference pick order:
// app-reserved executors first (no budget cost), then lowest executor ID;
// first-considered wins ties.
//
//custody:noalloc
func (p *execPool) better(cand int32, candRes bool, best int32, bestRes bool) bool {
	if best < 0 {
		return true
	}
	if candRes != bestRes {
		return candRes
	}
	return p.execs[cand].info.ID < p.execs[best].info.ID
}

// takeOnAny takes one slot on one of the given nodes for the app. Slots on
// executors already reserved for the app are preferred (they are free with
// respect to the budget); ties break toward the lowest executor ID.
// newExec reports whether a previously-unreserved executor was claimed.
//
//custody:noalloc
func (p *execPool) takeOnAny(nodes []int, a *appState) (e ExecInfo, newExec, ok bool) {
	allowNew := a.allowNew()
	best := int32(-1)
	bestRes := false
	for _, n := range nodes {
		sh := p.shardFor(n)
		ni, present := sh.byNode[n]
		if !present {
			continue
		}
		if nai, has := sh.naIdx[naKey{node: ni, app: a.d.App}]; has {
			if ei := p.minOwnFree(&sh.na[nai]); ei >= 0 && p.better(ei, true, best, bestRes) {
				best, bestRes = ei, true
			}
		}
		if allowNew {
			ns := &sh.nodes[ni]
			if ns.unres > 0 {
				if ei := p.minUnres(ns); ei >= 0 && p.better(ei, false, best, bestRes) {
					best, bestRes = ei, false
				}
			}
		}
	}
	if best < 0 {
		return ExecInfo{}, false, false
	}
	return p.takeSlot(best, a)
}

// takeAny takes one slot anywhere for the app: its lowest-ID claimed
// executor with free slots, else (budget permitting) the globally lowest-ID
// unreserved executor.
//
//custody:noalloc
func (p *execPool) takeAny(a *appState) (e ExecInfo, newExec, ok bool) {
	for len(a.resHeap) > 0 {
		ei := a.resHeap[0]
		if p.execs[ei].free > 0 {
			return p.takeSlot(ei, a)
		}
		popIntHeap(&a.resHeap) // exhausted executor; discard lazily
	}
	if a.allowNew() {
		for p.cursor < len(p.execs) {
			if p.execs[p.cursor].reserved == 0 {
				return p.takeSlot(int32(p.cursor), a)
			}
			p.cursor++
		}
	}
	return ExecInfo{}, false, false
}

// takeSlot consumes one slot on the executor for the app, firing the
// availability transitions that keep satisfiability counters current:
//
//   - claiming a node's last unreserved executor drains unresAvail for
//     every task posted there (each node drains at most once per round);
//   - the app's first free claimed executor on a node raises ownAvail for
//     the app's tasks posted there, and losing the last one drains it.
//
//custody:noalloc
func (p *execPool) takeSlot(ei int32, a *appState) (ExecInfo, bool, bool) {
	pe := &p.execs[ei]
	newExec := pe.reserved == 0
	sh := p.shardFor(pe.info.Node)
	ni := sh.byNode[pe.info.Node]
	if newExec {
		pe.reserved = 1
		pe.app = a.d.App
		ns := &sh.nodes[ni]
		ns.unres--
		if ns.unres == 0 {
			p.drainUnres(ns)
		}
		nai := sh.nodeApp(ni, a.d.App)
		na := &sh.na[nai]
		na.execIdx = append(na.execIdx, ei) //custody:ignore noalloc execIdx arenas keep their capacity across rounds; growth stops once warm
		pushIntHeap(&a.resHeap, ei)
		pe.free--
		if pe.free > 0 {
			na.ownFree++
			if na.ownFree == 1 {
				p.raiseOwn(na)
			}
		}
	} else {
		nai := sh.naIdx[naKey{node: ni, app: a.d.App}] // created at claim time
		na := &sh.na[nai]
		pe.free--
		if pe.free == 0 {
			na.ownFree--
			if na.ownFree == 0 {
				p.drainOwn(na)
			}
		}
	}
	p.size--
	return pe.info, newExec, true
}

//custody:noalloc
func (p *execPool) drainUnres(ns *nodeState) {
	for _, t := range ns.posts {
		if t.satisfied {
			continue
		}
		t.unresAvail--
		if t.unresAvail == 0 {
			t.owner.satUnres--
		}
	}
}

//custody:noalloc
func (p *execPool) raiseOwn(na *nodeApp) {
	for _, t := range na.posts {
		if t.satisfied {
			continue
		}
		if t.ownAvail == 0 {
			t.owner.satOwn++
		}
		t.ownAvail++
	}
}

//custody:noalloc
func (p *execPool) drainOwn(na *nodeApp) {
	for _, t := range na.posts {
		if t.satisfied {
			continue
		}
		t.ownAvail--
		if t.ownAvail == 0 {
			t.owner.satOwn--
		}
	}
}

// ---- int32 min-heap (executor indices; index order is ID order) ----

//custody:noalloc
func pushIntHeap(h *[]int32, v int32) {
	s := append(*h, v) //custody:ignore noalloc resHeap keeps its capacity across rounds; growth stops once warm
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent] <= s[i] {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
	*h = s
}

//custody:noalloc
func popIntHeap(h *[]int32) int32 {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && s[r] < s[l] {
			m = r
		}
		if s[i] <= s[m] {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	*h = s
	return top
}
