package core

import (
	"repro/internal/matching"
)

// ExactJobLevelMaxMin solves the job-level data-aware sharing problem of
// Eq. (6) exactly by exhaustive search: it enumerates every assignment of
// executors to applications (within budgets) and, for each application,
// every subset of its jobs, checking with a bipartite matching whether the
// subset can be made perfectly local on the assigned executors. It returns
// the best achievable minimum fraction of local jobs across applications.
//
// This is the NP-hard objective the paper's two-level heuristic
// approximates (§III-C); it is exponential in both executors and jobs, so
// only tiny instances are feasible — use it to validate the heuristic.
func ExactJobLevelMaxMin(apps []AppDemand, idle []ExecInfo) float64 {
	nE := len(idle)
	nA := len(apps)
	if nA == 0 {
		return 1
	}
	// owner[e] ∈ [0..nA]: which app holds executor e (nA = unassigned).
	owner := make([]int, nE)
	best := -1.0

	var rec func(e int)
	rec = func(e int) {
		if e == nE {
			score := evaluateAssignment(apps, idle, owner)
			if score > best {
				best = score
			}
			return
		}
		for o := 0; o <= nA; o++ {
			if o < nA && countOwned(owner[:e], o)+apps[o].Held >= apps[o].Budget {
				continue // budget σ exhausted
			}
			owner[e] = o
			rec(e + 1)
		}
		owner[e] = nA
	}
	rec(0)
	if best < 0 {
		best = 0
	}
	return best
}

func countOwned(owner []int, app int) int {
	n := 0
	for _, o := range owner {
		if o == app {
			n++
		}
	}
	return n
}

// evaluateAssignment computes min over apps of (max local jobs / jobs)
// under a fixed executor assignment.
func evaluateAssignment(apps []AppDemand, idle []ExecInfo, owner []int) float64 {
	minFrac := 1.0
	for ai, a := range apps {
		if len(a.Jobs) == 0 {
			continue
		}
		// Slots available to this app (one slot = one task, Slots-aware).
		var slots []int // node per slot
		for ei, e := range idle {
			if owner[ei] != ai {
				continue
			}
			for s := 0; s < e.slots(); s++ {
				slots = append(slots, e.Node)
			}
		}
		bestLocal := 0
		nJ := len(a.Jobs)
		for mask := 0; mask < (1 << nJ); mask++ {
			// Count and collect tasks of the selected jobs.
			cnt := popcount(mask)
			if cnt <= bestLocal {
				continue
			}
			var adj [][]int
			feasibleBuild := true
			for j := 0; j < nJ; j++ {
				if mask&(1<<j) == 0 {
					continue
				}
				for _, t := range a.Jobs[j].Tasks {
					var row []int
					for si, node := range slots {
						for _, n := range t.Nodes {
							if n == node {
								row = append(row, si)
								break
							}
						}
					}
					if len(row) == 0 {
						feasibleBuild = false
						break
					}
					adj = append(adj, row)
				}
				if !feasibleBuild {
					break
				}
			}
			if !feasibleBuild {
				continue
			}
			if _, size := matching.HopcroftKarp(len(adj), len(slots), adj); size == len(adj) {
				bestLocal = cnt
			}
		}
		frac := float64(bestLocal) / float64(nJ)
		if frac < minFrac {
			minFrac = frac
		}
	}
	return minFrac
}

func popcount(x int) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// HeuristicJobLevelMaxMin runs Custody's two-level allocation on the same
// instance and returns the achieved minimum fraction of perfectly-local
// jobs — directly comparable with ExactJobLevelMaxMin.
func HeuristicJobLevelMaxMin(apps []AppDemand, idle []ExecInfo) float64 {
	plan := Allocate(apps, idle, Options{FillToBudget: false})
	localTasks := map[[2]int]int{} // (app, job) → local tasks
	for _, as := range plan.Assignments {
		if as.Local {
			localTasks[[2]int{as.App, as.Job}]++
		}
	}
	minFrac := 1.0
	for _, a := range apps {
		if len(a.Jobs) == 0 {
			continue
		}
		local := 0
		for _, j := range a.Jobs {
			if len(j.Tasks) > 0 && localTasks[[2]int{a.App, j.Job}] == len(j.Tasks) {
				local++
			}
		}
		frac := float64(local) / float64(len(a.Jobs))
		if frac < minFrac {
			minFrac = frac
		}
	}
	return minFrac
}
