package core

import (
	"fmt"
	"testing"

	"repro/internal/hdfs"
	"repro/internal/xrand"
)

// genDemands builds a deterministic but non-trivial allocation instance:
// several apps with uneven budgets, jobs of varying size, replicated
// blocks, and contention (more locality demand than executors on the hot
// nodes).
func genDemands(rng *xrand.Rand, apps, nodes int) ([]AppDemand, []ExecInfo) {
	var ds []AppDemand
	block := hdfs.BlockID(0)
	for a := 0; a < apps; a++ {
		d := AppDemand{
			App:        a,
			Budget:     rng.IntRange(2, 6),
			Held:       rng.Intn(2),
			ExtraTasks: rng.Intn(3),
			LocalJobs:  rng.Intn(3),
			TotalJobs:  3 + rng.Intn(3),
			LocalTasks: rng.Intn(10),
			TotalTasks: 10 + rng.Intn(10),
		}
		for j := 0; j < rng.IntRange(1, 4); j++ {
			jd := JobDemand{Job: j}
			for t := 0; t < rng.IntRange(1, 5); t++ {
				n1 := rng.Intn(nodes)
				n2 := rng.Intn(nodes)
				jd.Tasks = append(jd.Tasks, TaskDemand{
					Task:  t,
					Block: block,
					Nodes: []int{n1, n2},
				})
				block++
			}
			d.Jobs = append(d.Jobs, jd)
		}
		ds = append(ds, d)
	}
	var idle []ExecInfo
	for e := 0; e < nodes; e++ {
		idle = append(idle, ExecInfo{ID: e, Node: e % (nodes / 2), Slots: 1 + rng.Intn(2)})
	}
	return ds, idle
}

// shuffled returns deep-enough copies of the inputs with every
// order-insensitive slice permuted: the app list, each app's job list, and
// the idle executor list. Task order within a job is intentionally kept —
// Algorithm 2 serves a job's tasks in demand order, so task position is
// semantically meaningful input, not incidental ordering.
func shuffled(rng *xrand.Rand, apps []AppDemand, idle []ExecInfo) ([]AppDemand, []ExecInfo) {
	as := append([]AppDemand(nil), apps...)
	rng.Shuffle(len(as), func(i, j int) { as[i], as[j] = as[j], as[i] })
	for i := range as {
		jobs := append([]JobDemand(nil), as[i].Jobs...)
		rng.Shuffle(len(jobs), func(x, y int) { jobs[x], jobs[y] = jobs[y], jobs[x] })
		as[i].Jobs = jobs
	}
	es := append([]ExecInfo(nil), idle...)
	rng.Shuffle(len(es), func(i, j int) { es[i], es[j] = es[j], es[i] })
	return as, es
}

// TestAllocateWarmSessionDeterministicUnderShuffle extends the shuffle
// contract to the incremental fast path's warm state: a Session carried
// across three consecutive rounds (demands advanced between rounds the way
// the manager would) must produce byte-identical plans for every round no
// matter how each round's input slices are ordered, and must agree with the
// frozen reference implementation at every round. 20 trials with
// independently shuffled inputs per round.
func TestAllocateWarmSessionDeterministicUnderShuffle(t *testing.T) {
	for _, opts := range []Options{DefaultOptions(), {FillToBudget: false}} {
		name := fmt.Sprintf("fill=%v", opts.FillToBudget)
		t.Run(name, func(t *testing.T) {
			gen := xrand.New(0xBEEF)
			apps, idle := genDemands(gen, 6, 20)

			// Canonical three-round trajectory through one warm session.
			type round struct {
				apps []AppDemand
				idle []ExecInfo
				plan string
			}
			var rounds []round
			sess := NewSession()
			a, e := apps, idle
			for r := 0; r < 3; r++ {
				p := sess.Allocate(a, e, opts)
				rounds = append(rounds, round{apps: a, idle: e, plan: fmt.Sprintf("%#v", p)})
				if ref := fmt.Sprintf("%#v", AllocateReference(a, e, opts)); ref != rounds[r].plan {
					t.Fatalf("round %d: warm session diverges from reference\n got: %s\nwant: %s", r, rounds[r].plan, ref)
				}
				a, e = advanceRound(a, e, p)
			}

			shuf := gen.Fork("shuffle")
			for trial := 0; trial < 20; trial++ {
				warm := NewSession()
				for r, rd := range rounds {
					as, es := shuffled(shuf, rd.apps, rd.idle)
					got := fmt.Sprintf("%#v", warm.Allocate(as, es, opts))
					if got != rd.plan {
						t.Fatalf("trial %d round %d: warm plan differs under input shuffle\n got: %s\nwant: %s", trial, r, got, rd.plan)
					}
				}
			}
		})
	}
}

// TestAllocateDeterministicUnderShuffle pins the documented contract of
// Allocate ("Deterministic: ties are broken by identifiers"): the plan must
// be byte-identical no matter how the input slices are ordered. 20 trials
// with independently shuffled inputs, against both intra-app strategies'
// default option sets.
func TestAllocateDeterministicUnderShuffle(t *testing.T) {
	for _, opts := range []Options{DefaultOptions(), {FillToBudget: false}} {
		name := fmt.Sprintf("fill=%v", opts.FillToBudget)
		t.Run(name, func(t *testing.T) {
			gen := xrand.New(0xC0DE)
			apps, idle := genDemands(gen, 6, 20)

			base := fmt.Sprintf("%#v", Allocate(apps, idle, opts))
			shuf := gen.Fork("shuffle")
			for trial := 0; trial < 20; trial++ {
				as, es := shuffled(shuf, apps, idle)
				got := fmt.Sprintf("%#v", Allocate(as, es, opts))
				if got != base {
					t.Fatalf("trial %d: plan differs under input shuffle\n got: %s\nwant: %s", trial, got, base)
				}
			}
		})
	}
}
