package core

import (
	"sort"
)

// Allocate runs Custody's two-level data-aware allocation (Algorithms 1 and
// 2) over a snapshot of application demands and idle executors, returning
// the executor assignments. Deterministic: ties are broken by identifiers.
func Allocate(apps []AppDemand, idle []ExecInfo, opts Options) Plan {
	st := newAllocator(apps, idle, opts)
	st.run()
	return Plan{Assignments: st.plan}
}

// allocator is the mutable working state of one allocation round.
type allocator struct {
	opts Options
	apps []*appState
	pool *execPool
	plan []Assignment
}

type appState struct {
	d    AppDemand
	held int
	jobs []*jobState

	newLocalJobs  int
	newLocalTasks int
	fillGiven     int
	exhausted     bool // no further useful allocation possible this round
}

// fillWant returns how many more slots the app can justify in the fill
// phase: one per still-unsatisfied input task plus one per no-preference
// pending task. The executor budget is enforced at take time (slots on
// already-claimed executors are budget-free).
func (a *appState) fillWant() int {
	want := a.d.ExtraTasks
	for _, j := range a.jobs {
		want += j.remaining
	}
	want -= a.fillGiven
	if want < 0 {
		return 0
	}
	return want
}

type jobState struct {
	d         JobDemand
	satisfied []bool
	remaining int
}

func newAllocator(apps []AppDemand, idle []ExecInfo, opts Options) *allocator {
	if opts.Intra == nil {
		opts.Intra = PriorityIntra{}
	}
	st := &allocator{opts: opts, pool: newExecPool(idle)}
	for _, d := range apps {
		a := &appState{d: d, held: d.Held}
		for _, jd := range d.Jobs {
			a.jobs = append(a.jobs, &jobState{
				d:         jd,
				satisfied: make([]bool, len(jd.Tasks)),
				remaining: len(jd.Tasks),
			})
		}
		st.apps = append(st.apps, a)
	}
	return st
}

// pctLocalJobs is the fairness metric of Algorithm 1: the fraction of the
// app's jobs (history + this round's pending jobs) that achieve perfect
// locality. Apps with no jobs at all count as fully satisfied.
func (a *appState) pctLocalJobs() float64 {
	den := a.d.TotalJobs + len(a.jobs)
	if den == 0 {
		return 1
	}
	return float64(a.d.LocalJobs+a.newLocalJobs) / float64(den)
}

// pctLocalTasks is Algorithm 1's tie-breaker.
func (a *appState) pctLocalTasks() float64 {
	den := a.d.TotalTasks
	for _, j := range a.jobs {
		den += len(j.d.Tasks)
	}
	if den == 0 {
		return 1
	}
	return float64(a.d.LocalTasks+a.newLocalTasks) / float64(den)
}

// allowNew reports whether the app may claim a previously-unreserved
// executor under its budget σ_i.
func (a *appState) allowNew() bool { return a.held < a.d.Budget }

// wants reports whether the app can take another locality-carrying slot
// this round.
func (st *allocator) wants(a *appState) bool {
	if a.exhausted || st.pool.size == 0 {
		return false
	}
	for _, j := range a.jobs {
		for i, t := range j.d.Tasks {
			if j.satisfied[i] {
				continue
			}
			if st.pool.hasOnAny(t.Nodes, a.d.App, a.allowNew()) {
				return true
			}
		}
	}
	return false
}

// minLocality implements procedure MINLOCALITY: among the apps that still
// want executors, return the one with the lowest percentage of local jobs,
// breaking ties by percentage of local tasks, then app ID.
func (st *allocator) minLocality() *appState {
	var best *appState
	for _, a := range st.apps {
		if !st.wants(a) {
			continue
		}
		if best == nil || less(a, best) {
			best = a
		}
	}
	return best
}

func less(a, b *appState) bool {
	pa, pb := a.pctLocalJobs(), b.pctLocalJobs()
	if pa != pb {
		return pa < pb
	}
	ta, tb := a.pctLocalTasks(), b.pctLocalTasks()
	if ta != tb {
		return ta < tb
	}
	return a.d.App < b.d.App
}

// run is procedure INTER-APP FAIRNESS (Algorithm 1): while idle executors
// remain, hand the least-localized application to the intra-app allocator;
// once no locality demand can be met, distribute leftovers (fill phase).
func (st *allocator) run() {
	for st.pool.size > 0 {
		a := st.minLocality()
		if a == nil {
			break
		}
		before := len(st.plan)
		st.opts.Intra.allocate(st, a)
		if len(st.plan) == before {
			// No progress: nothing in the pool is useful to this app.
			a.exhausted = true
		}
	}
	if st.opts.FillToBudget {
		st.fill()
	}
}

// fill hands leftover slots to applications that still have pending tasks,
// least-localized first, one slot per pending task.
func (st *allocator) fill() {
	blocked := map[int]bool{}
	for st.pool.size > 0 {
		var best *appState
		for _, a := range st.apps {
			if blocked[a.d.App] || a.fillWant() <= 0 {
				continue
			}
			if best == nil || less(a, best) {
				best = a
			}
		}
		if best == nil {
			return
		}
		e, newExec, ok := st.pool.takeAny(best.d.App, best.allowNew())
		if !ok {
			blocked[best.d.App] = true
			continue
		}
		st.assign(best, e, nil, 0, false, newExec)
		best.fillGiven++
	}
}

// assign records the allocation of one executor slot and updates locality
// state. newExec marks the first slot claimed on an executor, which is the
// unit the budget σ_i counts.
func (st *allocator) assign(a *appState, e ExecInfo, j *jobState, taskIdx int, local, newExec bool) {
	as := Assignment{App: a.d.App, Exec: e.ID, Node: e.Node}
	if j != nil {
		as.Job = j.d.Job
		as.Task = j.d.Tasks[taskIdx].Task
		as.Block = j.d.Tasks[taskIdx].Block
		as.Local = local
		if local && !j.satisfied[taskIdx] {
			j.satisfied[taskIdx] = true
			j.remaining--
			a.newLocalTasks++
			if j.remaining == 0 {
				a.newLocalJobs++
			}
		}
	} else {
		as.Job = -1
		as.Task = -1
		as.Block = -1
	}
	if newExec {
		a.held++
	}
	st.plan = append(st.plan, as)
}

// IntraStrategy selects the executors an application receives once
// Algorithm 1 has picked it.
type IntraStrategy interface {
	Name() string
	// allocate assigns executors from st.pool to a. It must return when the
	// app stops being the minimum-locality app (Algorithm 2's
	// ALLOCATEEXECUTOR flag), when the budget is exhausted, or when no
	// useful executor remains.
	allocate(st *allocator, a *appState)
}

// PriorityIntra is the paper's Algorithm 2: jobs sorted by number of
// unsatisfied input tasks ascending; all of a job's demands are served
// before the next job ("apply for all the desired executors of a job before
// moving to the next job"). The budget-fill loop of lines 17–20 runs later,
// in the allocator's shared fill phase (see Options.FillToBudget).
type PriorityIntra struct{}

// Name implements IntraStrategy.
func (PriorityIntra) Name() string { return "priority" }

func (PriorityIntra) allocate(st *allocator, a *appState) {
	jobs := append([]*jobState(nil), a.jobs...)
	sort.SliceStable(jobs, func(i, j int) bool {
		if jobs[i].remaining != jobs[j].remaining {
			return jobs[i].remaining < jobs[j].remaining
		}
		return jobs[i].d.Job < jobs[j].d.Job
	})
	for _, j := range jobs {
		for ti := range j.d.Tasks {
			if j.satisfied[ti] {
				continue
			}
			e, newExec, ok := st.pool.takeOnAny(j.d.Tasks[ti].Nodes, a.d.App, a.allowNew())
			if !ok {
				continue // no available executor stores this task's input
			}
			st.assign(a, e, j, ti, true, newExec)
			if st.minLocality() != a {
				return // yield to a now-less-localized application
			}
		}
	}
}

// FairnessIntra is the strawman of Fig. 4: it round-robins over jobs giving
// each one local task per pass, spreading locality thin so no job becomes
// fully local. Used by the ablation benchmarks.
type FairnessIntra struct{}

// Name implements IntraStrategy.
func (FairnessIntra) Name() string { return "fairness" }

func (FairnessIntra) allocate(st *allocator, a *appState) {
	progress := true
	for progress {
		progress = false
		for _, j := range a.jobs {
			// One unsatisfied task per job per pass.
			for ti := range j.d.Tasks {
				if j.satisfied[ti] {
					continue
				}
				e, newExec, ok := st.pool.takeOnAny(j.d.Tasks[ti].Nodes, a.d.App, a.allowNew())
				if !ok {
					continue
				}
				st.assign(a, e, j, ti, true, newExec)
				progress = true
				if st.minLocality() != a {
					return
				}
				break
			}
		}
	}
}

// poolExec is one idle executor's state inside the pool. Once a slot is
// taken by an application, the executor is reserved: its remaining slots may
// only serve the same application (an executor belongs to one app,
// constraint (2)).
type poolExec struct {
	info     ExecInfo
	free     int
	reserved int // app ID, or -1 when unreserved
}

// execPool indexes idle executor slots by node for locality lookups.
type execPool struct {
	byNode map[int][]*poolExec // per node, sorted by executor ID
	order  []int               // node ids with executors, kept sorted
	size   int                 // total free slots
}

func newExecPool(idle []ExecInfo) *execPool {
	p := &execPool{byNode: map[int][]*poolExec{}}
	sorted := append([]ExecInfo(nil), idle...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	for _, e := range sorted {
		pe := &poolExec{info: e, free: e.slots(), reserved: -1}
		p.byNode[e.Node] = append(p.byNode[e.Node], pe)
		p.size += pe.free
	}
	for n := range p.byNode {
		p.order = append(p.order, n)
	}
	sort.Ints(p.order)
	return p
}

// usable reports whether the entry can serve the app under the budget rule.
func (pe *poolExec) usable(app int, allowNew bool) bool {
	if pe.free <= 0 {
		return false
	}
	if pe.reserved == app {
		return true
	}
	return pe.reserved == -1 && allowNew
}

// hasOnAny reports whether the app could take a slot on one of the nodes.
func (p *execPool) hasOnAny(nodes []int, app int, allowNew bool) bool {
	for _, n := range nodes {
		for _, pe := range p.byNode[n] {
			if pe.usable(app, allowNew) {
				return true
			}
		}
	}
	return false
}

// takeOnAny takes one slot on one of the given nodes for the app. Slots on
// executors already reserved for the app are preferred (they are free with
// respect to the budget); ties break toward the lowest executor ID.
// newExec reports whether a previously-unreserved executor was claimed.
func (p *execPool) takeOnAny(nodes []int, app int, allowNew bool) (e ExecInfo, newExec, ok bool) {
	var best *poolExec
	seen := map[int]bool{}
	for _, n := range nodes {
		if seen[n] {
			continue
		}
		seen[n] = true
		for _, pe := range p.byNode[n] {
			if !pe.usable(app, allowNew) {
				continue
			}
			if best == nil || betterPick(pe, best, app) {
				best = pe
			}
		}
	}
	if best == nil {
		return ExecInfo{}, false, false
	}
	return p.takeSlot(best, app)
}

// takeAny takes one slot anywhere for the app.
func (p *execPool) takeAny(app int, allowNew bool) (e ExecInfo, newExec, ok bool) {
	var best *poolExec
	for _, n := range p.order {
		for _, pe := range p.byNode[n] {
			if !pe.usable(app, allowNew) {
				continue
			}
			if best == nil || betterPick(pe, best, app) {
				best = pe
			}
		}
	}
	if best == nil {
		return ExecInfo{}, false, false
	}
	return p.takeSlot(best, app)
}

// betterPick orders candidates: app-reserved executors first (no budget
// cost), then lowest executor ID.
func betterPick(a, b *poolExec, app int) bool {
	ar := a.reserved == app
	br := b.reserved == app
	if ar != br {
		return ar
	}
	return a.info.ID < b.info.ID
}

func (p *execPool) takeSlot(pe *poolExec, app int) (ExecInfo, bool, bool) {
	newExec := pe.reserved == -1
	pe.reserved = app
	pe.free--
	p.size--
	return pe.info, newExec, true
}
