package core

import (
	"sort"

	"repro/internal/obsv"
)

// Allocate runs Custody's two-level data-aware allocation (Algorithms 1 and
// 2) over a snapshot of application demands and idle executors, returning
// the executor assignments. Deterministic: ties are broken by identifiers
// (application and executor IDs must be unique).
//
// This is the incremental fast path: instead of recomputing every
// application's locality state from scratch on each pick — O(apps × jobs ×
// tasks) per granted executor, the pre-PR3 behavior frozen in
// AllocateReference — it maintains per-app locality indices (node →
// pending-task postings, per-task availability counters) that are updated in
// amortized O(1) per executor grant, and a lazy min-heap over pctLocalJobs
// so Algorithm 1's "pick the least-localized app" is O(log apps). The plan
// is byte-identical to the reference implementation; the differential
// battery in fuzz_diff_test.go is the gate.
func Allocate(apps []AppDemand, idle []ExecInfo, opts Options) Plan {
	return NewSession().Allocate(apps, idle, opts)
}

// allocator is the mutable working state of one allocation round. Its
// arenas and index structures are owned by a Session and reused across
// rounds.
type allocator struct {
	opts Options
	apps []*appState
	pool *execPool
	plan []Assignment
	heap []*appState // lazy min-heap; see minLocality

	jobScratch []*jobState // sortedJobs scratch, reused across picks

	// obs receives decision provenance; nil disables instrumentation. dec
	// holds the pending Decision of the current pick: it is emitted on the
	// pick's first grant (so it can carry the job Algorithm 2 actually
	// served), or with Job=-1 when the pick produced nothing.
	obs        obsv.AllocObserver
	dec        obsv.Decision
	decPending bool
}

type appState struct {
	d    AppDemand
	idx  int // input position; tiebreak of last resort
	held int
	jobs []jobState

	newLocalJobs  int
	newLocalTasks int
	fillGiven     int
	wantSum       int // Σ remaining over jobs, kept incrementally for fillWant
	exhausted     bool

	// denJobs/denTasks are the fixed denominators of the fairness metrics:
	// history plus this round's pending jobs/tasks.
	denJobs  int
	denTasks int

	// satOwn counts unsatisfied tasks with at least one replica node where
	// the app holds a reserved executor with free slots; satUnres counts
	// those with at least one replica node holding an unreserved executor.
	// Together they answer wants() in O(1): the app can take a
	// locality-carrying slot iff satOwn > 0, or allowNew and satUnres > 0.
	satOwn   int
	satUnres int

	// resHeap is a min-heap (by pool index, equivalently executor ID) of
	// the executors this app has claimed, for O(log n) budget-free picks in
	// takeAny. Entries whose free slots are exhausted are skipped lazily.
	resHeap []int32

	// keyJobs/keyTasks snapshot (newLocalJobs, newLocalTasks) at the app's
	// last (re-)insertion into the allocator heap. Both counters only grow,
	// so the fairness keys only grow, which is what makes the lazy heap
	// sound: a stale root is re-keyed and sifted down.
	keyJobs  int
	keyTasks int
}

// fillWant returns how many more slots the app can justify in the fill
// phase: one per still-unsatisfied input task plus one per no-preference
// pending task. The executor budget is enforced at take time (slots on
// already-claimed executors are budget-free).
func (a *appState) fillWant() int {
	want := a.d.ExtraTasks + a.wantSum - a.fillGiven
	if want < 0 {
		return 0
	}
	return want
}

type jobState struct {
	d         JobDemand
	tasks     []taskState
	remaining int
}

type taskState struct {
	d         *TaskDemand
	owner     *appState
	job       *jobState
	satisfied bool

	// ownAvail counts this task's replica postings at nodes where the owner
	// currently has a reserved executor with free slots; unresAvail counts
	// postings at nodes that still hold an unreserved executor. Both are
	// maintained by the pool's drain/raise transitions.
	ownAvail   int32
	unresAvail int32
}

// pctLocalJobs is the fairness metric of Algorithm 1: the fraction of the
// app's jobs (history + this round's pending jobs) that achieve perfect
// locality. Apps with no jobs at all count as fully satisfied.
//
//custody:noalloc
func (a *appState) pctLocalJobs() float64 { return a.pctJobsAt(a.newLocalJobs) }

// pctLocalTasks is Algorithm 1's tie-breaker.
//
//custody:noalloc
func (a *appState) pctLocalTasks() float64 { return a.pctTasksAt(a.newLocalTasks) }

//custody:noalloc
func (a *appState) pctJobsAt(newLocal int) float64 {
	if a.denJobs == 0 {
		return 1
	}
	return float64(a.d.LocalJobs+newLocal) / float64(a.denJobs)
}

//custody:noalloc
func (a *appState) pctTasksAt(newLocal int) float64 {
	if a.denTasks == 0 {
		return 1
	}
	return float64(a.d.LocalTasks+newLocal) / float64(a.denTasks)
}

// allowNew reports whether the app may claim a previously-unreserved
// executor under its budget σ_i.
//
//custody:noalloc
func (a *appState) allowNew() bool { return a.held < a.d.Budget }

// wants reports whether the app can take another locality-carrying slot
// this round. O(1): the satisfiability counters are maintained by the
// pool's availability transitions.
//
//custody:noalloc
func (st *allocator) wants(a *appState) bool {
	if a.exhausted || st.pool.size == 0 {
		return false
	}
	return a.satOwn > 0 || (a.satUnres > 0 && a.allowNew())
}

// less orders applications by (pctLocalJobs, pctLocalTasks, app ID), the
// total order of procedure MINLOCALITY. The input-position tiebreak mirrors
// the reference scan's first-wins behavior and is only reachable with
// duplicate app IDs.
//
//custody:noalloc
func less(a, b *appState) bool {
	pa, pb := a.pctLocalJobs(), b.pctLocalJobs()
	if pa != pb {
		if mutateInvertFairness {
			return pa > pb // seeded bug: prefer the MOST-localized app
		}
		return pa < pb
	}
	ta, tb := a.pctLocalTasks(), b.pctLocalTasks()
	if ta != tb {
		return ta < tb
	}
	if a.d.App != b.d.App {
		return a.d.App < b.d.App
	}
	return a.idx < b.idx
}

// heapLess orders heap entries by their snapshotted keys. Live values may
// run ahead of the snapshot (they only grow); minLocality re-keys stale
// roots before trusting them.
//
//custody:noalloc
func heapLess(a, b *appState) bool {
	pa, pb := a.pctJobsAt(a.keyJobs), b.pctJobsAt(b.keyJobs)
	if pa != pb {
		if mutateInvertFairness {
			return pa > pb // seeded bug: prefer the MOST-localized app
		}
		return pa < pb
	}
	ta, tb := a.pctTasksAt(a.keyTasks), b.pctTasksAt(b.keyTasks)
	if ta != tb {
		return ta < tb
	}
	if a.d.App != b.d.App {
		return a.d.App < b.d.App
	}
	return a.idx < b.idx
}

// minLocality implements procedure MINLOCALITY: among the apps that still
// want executors, return the one with the lowest percentage of local jobs,
// breaking ties by percentage of local tasks, then app ID.
//
// The heap is lazy: because an app's fairness keys only grow within a
// round, and wants() can only transition true→false for any app other than
// the one currently being served (whose claims are the only events that
// raise availability), the root can be repaired in place — re-key and sift
// down when stale, drop permanently when no longer wanting — and the first
// fresh, wanting root is the true minimum. Amortized O(log apps) per call.
//
//custody:noalloc
func (st *allocator) minLocality() *appState {
	for len(st.heap) > 0 {
		top := st.heap[0]
		if !st.wants(top) {
			st.heapPop()
			continue
		}
		if top.keyJobs != top.newLocalJobs || top.keyTasks != top.newLocalTasks {
			top.keyJobs = top.newLocalJobs
			top.keyTasks = top.newLocalTasks
			st.heapSiftDown(0)
			continue
		}
		return top
	}
	return nil
}

// run is procedure INTER-APP FAIRNESS (Algorithm 1): while idle executors
// remain, hand the least-localized application to the intra-app allocator;
// once no locality demand can be met, distribute leftovers (fill phase).
//
//custody:noalloc
func (st *allocator) run() {
	for st.pool.size > 0 {
		a := st.minLocality()
		if a == nil {
			break
		}
		if st.obs != nil {
			st.beginPick(a, obsv.PhaseLocality, st.runnerUp())
		}
		before := len(st.plan)
		st.opts.Intra.allocate(st, a) //custody:ignore noalloc intra strategies are the round's workhorses and own their scratch; their allocs are budgeted by the benchreg gate
		if len(st.plan) == before {
			// No progress: nothing in the pool is useful to this app.
			a.exhausted = true
			if st.obs != nil {
				st.emitPick(nil) // records the exhausted pick (no-grant)
			}
		}
	}
	if st.opts.FillToBudget {
		st.fill() //custody:ignore noalloc fill runs once per round after the per-grant hot loop; its sort scratch is budgeted by the benchreg gate
	}
}

// ---- decision provenance (all paths guarded by st.obs != nil) ----

// runnerUp returns the application the current pick beat: the
// second-smallest heap entry, which in a binary min-heap is always one of
// the root's two children. Non-root entries always carry fresh keys — only
// the app being served accrues locality, and it sits at the root until
// minLocality re-keys it — so comparing the children with the live order
// is exact. The runner-up is reported whether or not it can still take an
// executor (lazy deletion may not have reached it); nil when uncontested.
//
//custody:noalloc
func (st *allocator) runnerUp() *appState {
	var ru *appState
	for _, i := range [2]int{1, 2} {
		if i < len(st.heap) && (ru == nil || less(st.heap[i], ru)) {
			ru = st.heap[i]
		}
	}
	return ru
}

// beginPick stages the Decision for a fresh pick. It is emitted by the
// first grant (emitPick via assign), which fills in the served job; a
// pending decision from a grantless fill pick is simply overwritten.
//
//custody:noalloc
func (st *allocator) beginPick(a *appState, phase obsv.Phase, ru *appState) {
	st.dec = obsv.Decision{
		Phase:    phase,
		App:      a.d.App,
		Key:      obsv.Key{Jobs: a.pctLocalJobs(), Tasks: a.pctLocalTasks()},
		RunnerUp: -1,
		Job:      -1,
	}
	if ru != nil {
		st.dec.RunnerUp = ru.d.App
		st.dec.RunnerUpKey = obsv.Key{Jobs: ru.pctLocalJobs(), Tasks: ru.pctLocalTasks()}
	}
	st.decPending = true
}

// emitPick flushes the pending Decision, recording the first job
// Algorithm 2 served for this pick (j) and its unsatisfied-task count at
// grant time; j is nil for no-grant and fill decisions.
//
//custody:noalloc
func (st *allocator) emitPick(j *jobState) {
	if !st.decPending {
		return
	}
	st.decPending = false
	if j != nil {
		st.dec.Job = j.d.Job
		st.dec.Unsat = j.remaining
	}
	st.obs.Decide(st.dec) //custody:ignore noalloc dynamic observer dispatch; the in-tree FlightRecorder implementation is itself //custody:noalloc
}

// fill hands leftover slots to applications that still have pending tasks,
// least-localized first, one slot per pending task. The fairness keys are
// frozen during fill (fill assignments carry no locality), so a single
// stable sort replaces the reference's per-grant rescans; a takeAny failure
// is permanent (availability only shrinks), matching the reference's
// blocked set.
func (st *allocator) fill() {
	var order []*appState
	for _, a := range st.apps {
		if a.fillWant() > 0 {
			order = append(order, a)
		}
	}
	sort.SliceStable(order, func(i, j int) bool { return less(order[i], order[j]) })
	for i, a := range order {
		if st.pool.size == 0 {
			return
		}
		if st.obs != nil {
			// Fill picks are decided by the frozen sort above, so the
			// runner-up is simply the next app in fill order. The staged
			// decision is emitted only if the app actually receives a slot;
			// a blocked app's pending decision is overwritten or dropped.
			var ru *appState
			if i+1 < len(order) {
				ru = order[i+1]
			}
			st.beginPick(a, obsv.PhaseFill, ru)
		}
		for a.fillWant() > 0 {
			e, newExec, ok := st.pool.takeAny(a)
			if !ok {
				break
			}
			st.assign(a, e, nil, nil, false, newExec)
			a.fillGiven++
			if st.pool.size == 0 {
				return
			}
		}
	}
}

// assign records the allocation of one executor slot and updates locality
// state. newExec marks the first slot claimed on an executor, which is the
// unit the budget σ_i counts.
//
//custody:noalloc
func (st *allocator) assign(a *appState, e ExecInfo, j *jobState, t *taskState, local, newExec bool) {
	if st.obs != nil {
		st.emitPick(j)
		g := obsv.Grant{App: a.d.App, Exec: e.ID, Node: e.Node, Job: -1, Task: -1, Reason: obsv.ReasonArbitraryFill}
		if j != nil && local {
			g.Job = j.d.Job
			g.Task = t.d.Task
			switch {
			case t.d.Fallback:
				g.Reason = obsv.ReasonRackFallback
			case t.d.warmOn(e.Node):
				g.Reason = obsv.ReasonCacheHit
			default:
				g.Reason = obsv.ReasonLocalBlock
			}
		}
		st.obs.Grant(g) //custody:ignore noalloc dynamic observer dispatch; the in-tree FlightRecorder implementation is itself //custody:noalloc
	}
	as := Assignment{App: a.d.App, Exec: e.ID, Node: e.Node}
	if j != nil {
		as.Job = j.d.Job
		as.Task = t.d.Task
		as.Block = t.d.Block
		as.Local = local
		if local && !t.satisfied {
			if t.unresAvail > 0 {
				a.satUnres--
			}
			if t.ownAvail > 0 {
				a.satOwn--
			}
			t.satisfied = true
			j.remaining--
			a.wantSum--
			a.newLocalTasks++
			if j.remaining == 0 {
				a.newLocalJobs++
			}
		}
	} else {
		as.Job = -1
		as.Task = -1
		as.Block = -1
	}
	if newExec {
		a.held++
	}
	st.plan = append(st.plan, as) //custody:ignore noalloc the plan is the round's output, handed to the caller; its growth is the deliverable and is budgeted by the benchreg gate
}

// IntraStrategy selects the executors an application receives once
// Algorithm 1 has picked it.
type IntraStrategy interface {
	Name() string
	// allocate assigns executors from st.pool to a. It must return when the
	// app stops being the minimum-locality app (Algorithm 2's
	// ALLOCATEEXECUTOR flag), when the budget is exhausted, or when no
	// useful executor remains.
	allocate(st *allocator, a *appState)
}

// takeable reports whether takeOnAny would succeed for the task — the O(1)
// equivalent of attempting it: an executor is usable iff it is reserved to
// the app with free slots, or unreserved while the budget allows a claim.
//
//custody:noalloc
func takeable(a *appState, t *taskState) bool {
	return t.ownAvail > 0 || (t.unresAvail > 0 && a.allowNew())
}

// PriorityIntra is the paper's Algorithm 2: jobs sorted by number of
// unsatisfied input tasks ascending; all of a job's demands are served
// before the next job ("apply for all the desired executors of a job before
// moving to the next job"). The budget-fill loop of lines 17–20 runs later,
// in the allocator's shared fill phase (see Options.FillToBudget).
type PriorityIntra struct{}

// Name implements IntraStrategy.
func (PriorityIntra) Name() string { return "priority" }

func (PriorityIntra) allocate(st *allocator, a *appState) {
	jobs := st.sortedJobs(a)
	for _, j := range jobs {
		for ti := range j.tasks {
			t := &j.tasks[ti]
			if t.satisfied || !takeable(a, t) {
				continue // no available executor stores this task's input
			}
			e, newExec, ok := st.pool.takeOnAny(t.d.Nodes, a)
			if !ok {
				continue
			}
			st.assign(a, e, j, t, true, newExec)
			if st.minLocality() != a {
				return // yield to a now-less-localized application
			}
		}
	}
}

// FairnessIntra is the strawman of Fig. 4: it round-robins over jobs giving
// each one local task per pass, spreading locality thin so no job becomes
// fully local. Used by the ablation benchmarks.
type FairnessIntra struct{}

// Name implements IntraStrategy.
func (FairnessIntra) Name() string { return "fairness" }

func (FairnessIntra) allocate(st *allocator, a *appState) {
	progress := true
	for progress {
		progress = false
		for ji := range a.jobs {
			j := &a.jobs[ji]
			// One unsatisfied task per job per pass.
			for ti := range j.tasks {
				t := &j.tasks[ti]
				if t.satisfied || !takeable(a, t) {
					continue
				}
				e, newExec, ok := st.pool.takeOnAny(t.d.Nodes, a)
				if !ok {
					continue
				}
				st.assign(a, e, j, t, true, newExec)
				progress = true
				if st.minLocality() != a {
					return
				}
				break
			}
		}
	}
}

// sortedJobs returns the app's jobs ordered by (remaining unsatisfied
// tasks, job ID), using the session's scratch slice.
func (st *allocator) sortedJobs(a *appState) []*jobState {
	jobs := st.jobScratch[:0]
	for i := range a.jobs {
		jobs = append(jobs, &a.jobs[i])
	}
	sort.SliceStable(jobs, func(i, j int) bool {
		if jobs[i].remaining != jobs[j].remaining {
			return jobs[i].remaining < jobs[j].remaining
		}
		return jobs[i].d.Job < jobs[j].d.Job
	})
	st.jobScratch = jobs
	return jobs
}

// ---- allocator heap (lazy min-heap of *appState by snapshotted keys) ----

//custody:noalloc
func (st *allocator) heapInit() {
	for i := len(st.heap)/2 - 1; i >= 0; i-- {
		st.heapSiftDown(i)
	}
}

//custody:noalloc
func (st *allocator) heapPop() {
	h := st.heap
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	st.heap = h[:n]
	if n > 0 {
		st.heapSiftDown(0)
	}
}

//custody:noalloc
func (st *allocator) heapSiftDown(i int) {
	h := st.heap
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && heapLess(h[r], h[l]) {
			m = r
		}
		if !heapLess(h[m], h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}
