package core

import (
	"reflect"
	"testing"
)

func TestFallbackNodes(t *testing.T) {
	const nodes = 8
	rackOf := func(n int) int { return n / 4 } // racks: 0-3, 4-7
	alive := func(dead ...int) func(int) bool {
		d := map[int]bool{}
		for _, n := range dead {
			d[n] = true
		}
		return func(n int) bool { return !d[n] }
	}

	cases := []struct {
		name   string
		locs   []int
		usable func(int) bool
		want   []int
	}{
		{"all replicas usable", []int{5, 1, 3}, alive(), []int{1, 3, 5}},
		{"one replica dead", []int{5, 1, 3}, alive(1), []int{3, 5}},
		{"duplicates collapse", []int{1, 1, 5}, alive(), []int{1, 5}},
		{"all dead, rack fallback", []int{1, 2}, alive(1, 2), []int{0, 3}},
		{"rack fallback spans both racks", []int{1, 5}, alive(1, 5), []int{0, 2, 3, 4, 6, 7}},
		{"whole rack dead, any", []int{1, 2}, alive(0, 1, 2, 3), nil},
		{"no locations", nil, alive(), nil},
		{"out of range ignored", []int{-1, 99, 2}, alive(), []int{2}},
	}
	for _, tc := range cases {
		got := FallbackNodes(tc.locs, tc.usable, rackOf, nodes)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: FallbackNodes = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestFallbackNodesEdgeCases pins the degradation ladder — usable replicas
// → rack-local → any (nil) — at its boundary conditions: total replica
// loss, an entire rack down, a single-node cluster, and blacklisting
// layered on top of liveness.
func TestFallbackNodesEdgeCases(t *testing.T) {
	const nodes = 8
	rackOf := func(n int) int { return n / 4 } // racks: 0-3, 4-7
	only := func(ok ...int) func(int) bool {
		u := map[int]bool{}
		for _, n := range ok {
			u[n] = true
		}
		return func(n int) bool { return u[n] }
	}

	cases := []struct {
		name   string
		locs   []int
		usable func(int) bool
		nodes  int
		want   []int
		rung   string // which ladder rung must produce the answer
	}{
		{
			name: "all replicas dead, rack survivors take over",
			locs: []int{1, 6}, usable: only(0, 2, 3, 4, 5, 7), nodes: nodes,
			want: []int{0, 2, 3, 4, 5, 7}, rung: "rack-local",
		},
		{
			name: "entire rack of the only replica dead",
			locs: []int{2}, usable: only(4, 5, 6, 7), nodes: nodes,
			want: nil, rung: "any",
		},
		{
			name: "both racks entirely dead",
			locs: []int{1, 5}, usable: only(), nodes: nodes,
			want: nil, rung: "any",
		},
		{
			name: "single-node cluster, node usable",
			locs: []int{0}, usable: only(0), nodes: 1,
			want: []int{0}, rung: "node-local",
		},
		{
			name: "single-node cluster, node unusable",
			locs: []int{0}, usable: only(), nodes: 1,
			want: nil, rung: "any",
		},
		{
			name: "replica blacklisted but alive rackmates remain",
			locs: []int{1}, usable: only(0, 2, 3, 4, 5, 6, 7), nodes: nodes,
			want: []int{0, 2, 3}, rung: "rack-local",
		},
		{
			name: "one replica blacklisted, the other serves node-local",
			locs: []int{1, 6}, usable: only(0, 2, 3, 4, 5, 6, 7), nodes: nodes,
			want: []int{6}, rung: "node-local",
		},
		{
			name: "stale out-of-range replica does not widen the rack set",
			locs: []int{99, 1}, usable: only(0, 2, 3, 4, 5, 6, 7), nodes: nodes,
			want: []int{0, 2, 3}, rung: "rack-local",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := FallbackNodes(tc.locs, tc.usable, rackOf, tc.nodes)
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("FallbackNodes = %v, want %v (%s rung)", got, tc.want, tc.rung)
			}
			switch tc.rung {
			case "node-local":
				// Every answer must be an advertised replica.
				locs := map[int]bool{}
				for _, n := range tc.locs {
					locs[n] = true
				}
				for _, n := range got {
					if !locs[n] {
						t.Fatalf("node-local rung returned non-replica node %d", n)
					}
				}
			case "rack-local":
				// No answer may be a usable replica (that would be rung 1),
				// and every answer must share a rack with some replica.
				for _, n := range got {
					for _, l := range tc.locs {
						if n == l {
							t.Fatalf("rack-local rung returned replica node %d", n)
						}
					}
					shared := false
					for _, l := range tc.locs {
						if l >= 0 && l < tc.nodes && rackOf(l) == rackOf(n) {
							shared = true
						}
					}
					if !shared {
						t.Fatalf("rack-local rung returned off-rack node %d", n)
					}
				}
			case "any":
				if got != nil {
					t.Fatalf("any rung must return nil, got %v", got)
				}
			}
		})
	}
}

func TestFallbackNodesDeterministic(t *testing.T) {
	rackOf := func(n int) int { return n % 3 }
	usable := func(n int) bool { return n%2 == 0 }
	a := FallbackNodes([]int{9, 3, 7, 1}, usable, rackOf, 12)
	b := FallbackNodes([]int{1, 7, 3, 9}, usable, rackOf, 12)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("order-sensitive result: %v vs %v", a, b)
	}
}
