package core

import (
	"reflect"
	"testing"
)

func TestFallbackNodes(t *testing.T) {
	const nodes = 8
	rackOf := func(n int) int { return n / 4 } // racks: 0-3, 4-7
	alive := func(dead ...int) func(int) bool {
		d := map[int]bool{}
		for _, n := range dead {
			d[n] = true
		}
		return func(n int) bool { return !d[n] }
	}

	cases := []struct {
		name   string
		locs   []int
		usable func(int) bool
		want   []int
	}{
		{"all replicas usable", []int{5, 1, 3}, alive(), []int{1, 3, 5}},
		{"one replica dead", []int{5, 1, 3}, alive(1), []int{3, 5}},
		{"duplicates collapse", []int{1, 1, 5}, alive(), []int{1, 5}},
		{"all dead, rack fallback", []int{1, 2}, alive(1, 2), []int{0, 3}},
		{"rack fallback spans both racks", []int{1, 5}, alive(1, 5), []int{0, 2, 3, 4, 6, 7}},
		{"whole rack dead, any", []int{1, 2}, alive(0, 1, 2, 3), nil},
		{"no locations", nil, alive(), nil},
		{"out of range ignored", []int{-1, 99, 2}, alive(), []int{2}},
	}
	for _, tc := range cases {
		got := FallbackNodes(tc.locs, tc.usable, rackOf, nodes)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: FallbackNodes = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestFallbackNodesDeterministic(t *testing.T) {
	rackOf := func(n int) int { return n % 3 }
	usable := func(n int) bool { return n%2 == 0 }
	a := FallbackNodes([]int{9, 3, 7, 1}, usable, rackOf, 12)
	b := FallbackNodes([]int{1, 7, 3, 9}, usable, rackOf, 12)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("order-sensitive result: %v vs %v", a, b)
	}
}
